module webbase

go 1.22
