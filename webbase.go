// Package webbase is a database system for querying dynamic Web content —
// a reproduction of Davulcu, Freire, Kifer & Ramakrishnan, "A Layered
// Architecture for Querying Dynamic Web Content" (SIGMOD 1999).
//
// A webbase stacks three layers over the raw Web (Figure 1 of the paper):
//
//   - the virtual physical schema (navigation independence): relations
//     populated by executing navigation expressions — serial-Horn
//     Transaction F-logic programs that follow links, fill out forms and
//     extract tuples from data pages;
//   - the logical layer (site independence): relational-algebra views over
//     the VPS, evaluated with binding propagation and dependent joins so
//     that form-mandatory attributes are always supplied;
//   - the external schema: a structured universal relation — the user
//     names output attributes and conditions; concept hierarchies and
//     compatibility rules replace the classical UR's lossless-join
//     semantics.
//
// Quick start:
//
//	world := webbase.NewSimulatedWorld()          // the built-in 12-site car Web
//	wb, err := webbase.New(webbase.Config{Fetcher: world.Server})
//	res, stats, err := wb.QueryString(
//	    "SELECT Make, Model, Year, Price, BBPrice " +
//	    "WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' " +
//	    "AND Condition = 'good' AND Price < BBPrice")
//	fmt.Println(res.Relation, stats)
//
// Every query can be observed as well as answered: System.QueryTraced
// returns a span tree mirroring the layered evaluation (query → maximal
// object → operator → handle → page fetch), System.ExplainAnalyze renders
// the plan annotated with actual per-operator cardinalities and costs, and
// System.Metrics aggregates counters/gauges/histograms across queries.
//
// The package re-exports the types needed to use the system; the
// implementation lives under internal/ (relation, htmlkit, web, sites,
// flogic, tlogic, navcalc, navmap, mapbuilder, vps, algebra, logical, ur,
// trace, core).
package webbase

import (
	"webbase/internal/apartments"
	"webbase/internal/core"
	"webbase/internal/prune"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/store"
	"webbase/internal/trace"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// Core system types.
type (
	// System is an assembled three-layer webbase.
	System = core.Webbase
	// Config controls webbase assembly.
	Config = core.Config
	// QueryStats reports what one query cost.
	QueryStats = core.QueryStats

	// Query is a universal-relation query: outputs plus conditions.
	Query = ur.Query
	// Result is a query's answer with its plan and skipped objects.
	Result = ur.Result

	// Relation is an in-memory relation (schema + tuples).
	Relation = relation.Relation
	// Schema is an ordered attribute list.
	Schema = relation.Schema
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is a dynamically typed relational value.
	Value = relation.Value

	// Trace is one query's execution-span tree (from System.QueryTraced).
	Trace = trace.Trace
	// MetricsRegistry aggregates counters, gauges and histograms across
	// queries (from System.Metrics).
	MetricsRegistry = trace.Registry

	// Degradation reports the maximal objects a query lost to site
	// outages and the pages it served stale (see Result.Degradation).
	Degradation = ur.Degradation
	// SiteFailure attributes one abandoned maximal object to the failing
	// site.
	SiteFailure = ur.SiteFailure

	// ObjectDelivery is one maximal object's finished contribution to a
	// streaming answer (System.QueryStream).
	ObjectDelivery = ur.ObjectDelivery
	// ObjectSink receives streaming deliveries in plan order.
	ObjectSink = ur.ObjectSink

	// Fetcher retrieves Web pages; implement it to point the webbase at
	// your own Web.
	Fetcher = web.Fetcher
	// LatencyModel simulates network latency deterministically.
	LatencyModel = web.LatencyModel
	// BreakerConfig tunes the per-host circuit breaker (Config.Breaker).
	BreakerConfig = web.BreakerConfig
	// Backoff spaces retry attempts exponentially with deterministic
	// per-URL jitter (Config.Backoff).
	Backoff = web.Backoff
	// Flaky injects deterministic fetch failures — the chaos-testing
	// fetcher wrapper (and the CLI's -failevery).
	Flaky = web.Flaky
	// Redesign rewrites a host's pages on demand — the site-redesign
	// test double driving the self-healing subsystem.
	Redesign = web.Redesign
	// Rewrite is one textual substitution a Redesign applies.
	Rewrite = web.Rewrite
	// QueryClass is a query's admission priority (Config.QueryClass,
	// WithQueryClass); under overload ClassBatch sheds first.
	QueryClass = core.QueryClass
	// World is the built-in simulated car-shopping Web with its
	// ground-truth datasets.
	World = sites.World
)

// New assembles the standard used-car webbase over cfg.Fetcher.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// NewSimulatedWorld builds the deterministic 12-site simulated Web the
// paper's evaluation is reproduced against.
func NewSimulatedWorld() *World { return sites.BuildWorld() }

// ApartmentWorld is the second application domain's simulated Web
// (apartment hunting), demonstrating the architecture's domain
// independence.
type ApartmentWorld = apartments.World

// NewApartmentWorld builds the apartment-domain simulated Web.
func NewApartmentWorld() *ApartmentWorld { return apartments.BuildWorld() }

// NewApartments assembles a webbase for the apartment-hunting domain.
func NewApartments(cfg Config) (*System, error) {
	return core.NewDomain(cfg, core.Domain{
		Registry: apartments.Registry,
		Logical:  apartments.Logical,
		UR:       apartments.UR,
	})
}

// ParseQuery parses the SELECT ... WHERE ... query syntax against a
// system's universal relation.
func ParseQuery(sys *System, text string) (Query, error) {
	return ur.ParseQuery(sys.UR, text)
}

// ErrBadQuery classifies malformed query text from ParseQuery: every
// syntax error wraps it (errors.Is), including rejected ORDER BY shapes
// such as trailing commas and duplicate sort keys.
var ErrBadQuery = ur.ErrBadQuery

// Error taxonomy helpers (see internal/web's taxonomy): classify a
// query or fetch failure with errors.Is semantics.
var (
	// IsOutage reports a terminal site failure (retries exhausted,
	// breaker open, host down).
	IsOutage = web.IsOutage
	// IsTransient reports a retryable failure.
	IsTransient = web.IsTransient
	// IsSiteAnswer reports that the site answered, unsuccessfully
	// (e.g. a non-success status).
	IsSiteAnswer = web.IsSiteAnswer
	// FailingHost names the host a failure is attributed to ("" when
	// unattributed).
	FailingHost = web.FailingHost
	// IsBudgetExhausted reports that a query (or one of its objects) was
	// degraded because its Config.Deadline budget ran out.
	IsBudgetExhausted = web.IsBudgetExhausted
	// IsDrift reports a site that answered but whose pages no longer
	// match its navigation map (a redesign; see Config.DriftThreshold
	// and System.SiteHealth).
	IsDrift = web.IsDrift
)

// Admission priority classes (Config.QueryClass, WithQueryClass).
const (
	// ClassInteractive: a user is waiting; shed last.
	ClassInteractive = core.ClassInteractive
	// ClassBatch: background work; shed first under overload.
	ClassBatch = core.ClassBatch
)

// WithQueryClass marks ctx so queries issued under it are admitted at the
// given class, overriding Config.QueryClass.
var WithQueryClass = core.WithQueryClass

// Durable state tier (Config.StateDir). The store sits strictly below the
// in-memory stacks as a second cache tier — never a source of truth — so
// answers are byte-identical with it on or off. What survives a restart:
// warmed pages (honoring CacheMaxAge/AllowStale), repaired navigation
// maps, and breaker/health verdicts (a restarted process does not
// re-probe a known-dead host or reset its repair budget). A missing,
// truncated, bit-flipped or version-skewed state file falls back to cold
// state with a store_corrupt_total{tier=...} metric; it never fails a
// query. System.FlushState forces dirty state to disk; System.Close is
// the graceful shutdown (flush + stop background writers).
var (
	// ErrStoreCorrupt classifies a state file that failed an integrity
	// check. Match with errors.Is; corrupt state is self-healing (cold
	// fallback), so this surfaces only through store-level APIs, never
	// from queries.
	ErrStoreCorrupt = store.ErrCorrupt
)

// Overload-protection sentinels. Match with errors.Is.
var (
	// ErrShedded is returned when the admission gate (Config.MaxInFlight /
	// Config.QueueDepth) rejects a query without executing it.
	ErrShedded = core.ErrShedded
	// ErrHostSaturated is the cause recorded when a per-host bulkhead
	// (Config.HostLimit / Config.HostQueue) sheds a fetch.
	ErrHostSaturated = web.ErrHostSaturated
	// ErrBudgetExhausted is the cause recorded when a deadline budget
	// (Config.Deadline) refuses to start more work.
	ErrBudgetExhausted = web.ErrBudgetExhausted
)

// Access-relevance pruning reasons (Config.Prune). They key
// QueryStats.PrunedByReason and label the fetches_pruned_total metric,
// and appear as pruned-reason attributes on pruned=1 spans in traces and
// EXPLAIN ANALYZE output.
const (
	// PruneUnsatWhere: the access's already-bound attributes violate the
	// query's WHERE clause, so it cannot contribute an answer tuple; the
	// fetch was skipped before any page was requested.
	PruneUnsatWhere = prune.ReasonUnsatWhere
	// PruneLimit: the query's LIMIT was already satisfied by maximal
	// objects earlier in plan order, so the object was never launched.
	PruneLimit = prune.ReasonLimit
)

// Value constructors.
var (
	// String wraps a string value.
	String = relation.String
	// Int wraps an integer value.
	Int = relation.Int
	// Float wraps a float value.
	Float = relation.Float
)

// DefaultLatency is the latency model used by the experiment harness.
var DefaultLatency = core.DefaultLatency
