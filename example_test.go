package webbase_test

import (
	"fmt"
	"log"

	"webbase"
)

// Example runs the paper's headline query end to end against the built-in
// simulated Web: used jaguars, 1993 or later, good safety rating, selling
// below blue book. The simulated datasets are seeded, so the counts are
// reproducible.
func Example() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := sys.QueryString(
		"SELECT Make, Model, Year, Price, BBPrice " +
			"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' " +
			"AND Condition = 'good' AND Price < BBPrice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bargain jaguars found\n", res.Relation.Len())
	fmt.Printf("planned over %d maximal objects\n", len(res.Plan.Objects))
	// Output:
	// 75 bargain jaguars found
	// planned over 2 maximal objects
}

// Example_orderAndLimit shows the presentation clauses of the query
// language.
func Example_orderAndLimit() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := sys.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'saab' ORDER BY Price LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Relation.Tuples() {
		model, _ := res.Relation.Get(t, "Model")
		year, _ := res.Relation.Get(t, "Year")
		price, _ := res.Relation.Get(t, "Price")
		fmt.Printf("saab %v, %v: $%v\n", model, year, price)
	}
	// Output:
	// saab 9000, 1988: $6137
	// saab 9000, 1989: $7157
	// saab 9000, 1989: $7869
}

// Example_maximalObjects lists the compatible site combinations the
// structured universal relation plans over.
func Example_maximalObjects() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range sys.UR.MaximalObjects() {
		fmt.Println(obj)
	}
	// Output:
	// [BluePrice Classifieds Interest Reviews Safety]
	// [BluePrice Dealers Interest Reviews Safety]
}
