package webbase_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"webbase"
	"webbase/internal/server"
)

// Example runs the paper's headline query end to end against the built-in
// simulated Web: used jaguars, 1993 or later, good safety rating, selling
// below blue book. The simulated datasets are seeded, so the counts are
// reproducible.
func Example() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := sys.QueryString(
		"SELECT Make, Model, Year, Price, BBPrice " +
			"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' " +
			"AND Condition = 'good' AND Price < BBPrice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bargain jaguars found\n", res.Relation.Len())
	fmt.Printf("planned over %d maximal objects\n", len(res.Plan.Objects))
	// Output:
	// 75 bargain jaguars found
	// planned over 2 maximal objects
}

// Example_orderAndLimit shows the presentation clauses of the query
// language.
func Example_orderAndLimit() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := sys.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'saab' ORDER BY Price LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Relation.Tuples() {
		model, _ := res.Relation.Get(t, "Model")
		year, _ := res.Relation.Get(t, "Year")
		price, _ := res.Relation.Get(t, "Price")
		fmt.Printf("saab %v, %v: $%v\n", model, year, price)
	}
	// Output:
	// saab 9000, 1988: $6137
	// saab 9000, 1989: $7157
	// saab 9000, 1989: $7869
}

// Example_queryService serves the webbase as a networked query service
// (the same server cmd/webbased runs) and drives it over HTTP: the
// answer arrives as an NDJSON stream, one event per maximal object as it
// completes, then a trailer. The streamed union is exactly the
// in-process answer.
func Example_queryService() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{System: sys})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(
		"SELECT Make, Model, Year, Price, BBPrice "+
			"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' "+
			"AND Condition = 'good' AND Price < BBPrice"))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	total := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		// "tuples" carries the rows in a tuples event but the total count
		// in the trailer, so decode each line generically.
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev["event"] {
		case "tuples":
			count := int(ev["count"].(float64))
			total += count
			var names []string
			for _, rel := range ev["object"].([]any) {
				names = append(names, rel.(string))
			}
			fmt.Printf("object {%s}: %d tuples\n", strings.Join(names, ", "), count)
		case "trailer":
			fmt.Printf("stream total %d, trailer says %d\n", total, int(ev["tuples"].(float64)))
		}
	}
	// Output:
	// object {BluePrice, Classifieds, Safety}: 40 tuples
	// object {BluePrice, Dealers, Safety}: 35 tuples
	// stream total 75, trailer says 75
}

// Example_maximalObjects lists the compatible site combinations the
// structured universal relation plans over.
func Example_maximalObjects() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range sys.UR.MaximalObjects() {
		fmt.Println(obj)
	}
	// Output:
	// [BluePrice Classifieds Interest Reviews Safety]
	// [BluePrice Dealers Interest Reviews Safety]
}
