package client

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"webbase/internal/core"
)

// TestFailoverRestartDeterminism is the end-to-end 409-failover proof
// against real replicas: the origin replica's connection dies mid-stream
// and the resume lands on a survivor whose web view differs — the
// survivor cleared its page cache, so its consistency token no longer
// matches the origin's resume token. The survivor refuses with 409
// resume-inconsistent; the client restarts from zero instead of failing
// or splicing, and the post-restart iteration is byte-identical to a
// healthy single-replica run against the survivor — whatever the worker
// count.
func TestFailoverRestartDeterminism(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tsA, _ := newCarService(t, core.Config{Workers: workers})
			tsB, wbB := newCarService(t, core.Config{Workers: workers})
			// Shift the survivor's web view: the clear bumps its cache
			// generation, so B's token can never match a resume minted by A.
			wbB.Cache().Clear()

			// Ground truth: one healthy run against the survivor alone.
			calm, err := New(Config{BaseURL: tsB.URL})
			if err != nil {
				t.Fatal(err)
			}
			calmStream, err := calm.Query(context.Background(), wideQuery)
			if err != nil {
				t.Fatal(err)
			}
			want := drain(t, calmStream)

			// The chaos client prefers A; the first /query response — A's
			// stream — is severed after enough bytes for meta and at least
			// one delivery.
			c, err := New(Config{
				Endpoints:   []string{tsA.URL, tsB.URL},
				HTTPClient:  &http.Client{Transport: &killNth{base: http.DefaultTransport, n: 1, allow: 600}},
				MaxAttempts: 10,
				sleep:       noSleep,
			})
			if err != nil {
				t.Fatal(err)
			}
			st, err := c.Query(context.Background(), wideQuery)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			// Restart-aware drain: a Restarts() advance voids everything
			// accumulated before it.
			var got []string
			restarts := 0
			for st.Next() {
				if r := st.Restarts(); r > restarts {
					restarts = r
					got = nil
				}
				d := st.Delivery()
				got = append(got, fmt.Sprintf("seq=%d index=%d object=%v skipped=%q failure=%v tuples=%v",
					d.Seq, d.Index, d.Object, d.Skipped, d.Failure, d.Tuples))
			}
			if st.Err() != nil {
				t.Fatal(st.Err())
			}
			if st.Trailer() == nil {
				t.Fatal("clean end without trailer")
			}
			if st.Restarts() != 1 {
				t.Fatalf("restarts = %d, want 1 — the refused resume must restart from zero", st.Restarts())
			}
			if st.Failovers() != 1 || st.Endpoint() != tsB.URL {
				t.Fatalf("failovers=%d endpoint=%s, want 1/%s", st.Failovers(), st.Endpoint(), tsB.URL)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("post-restart iteration differs from healthy survivor run:\n got %v\nwant %v", got, want)
			}
		})
	}
}
