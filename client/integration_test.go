package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/core"
	"webbase/internal/server"
	"webbase/internal/sites"
)

// End-to-end resilience: the typed client against the real query server,
// with the transport sabotaged under it. The property under test is the
// tentpole promise — one uninterrupted iteration whose deliveries are
// byte-identical to an unbroken run, across killed connections and a
// full server restart onto a warm state dir.

const carQuery = "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'jaguar' AND Year >= 1993 " +
	"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice"

const wideQuery = "SELECT Make, Model, Year, Price, BBPrice, Contact " +
	"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice"

func newCarService(t *testing.T, cfg core.Config) (*httptest.Server, *core.Webbase) {
	t.Helper()
	if cfg.Fetcher == nil {
		cfg.Fetcher = sites.BuildWorld().Server
	}
	wb, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{System: wb})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, wb
}

// drain renders a stream's deliveries in order: the byte-comparison form
// for stitched-vs-unbroken checks.
func drain(t *testing.T, st *Stream) []string {
	t.Helper()
	var out []string
	for st.Next() {
		d := st.Delivery()
		out = append(out, fmt.Sprintf("seq=%d index=%d object=%v skipped=%q failure=%v tuples=%v",
			d.Seq, d.Index, d.Object, d.Skipped, d.Failure, d.Tuples))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if st.Trailer() == nil {
		t.Fatal("clean end without trailer")
	}
	return out
}

// killNth severs the n-th /query response after allowing a byte budget
// through — later responses pass untouched.
type killNth struct {
	base  http.RoundTripper
	mu    sync.Mutex
	n     int // responses left to kill
	allow int64
}

func (k *killNth) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := k.base.RoundTrip(req)
	if err != nil || req.URL.Path != "/query" || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	k.mu.Lock()
	kill := k.n > 0
	if kill {
		k.n--
	}
	allow := k.allow
	k.mu.Unlock()
	if kill {
		resp.Body = &cutBody{rc: resp.Body, remaining: allow}
	}
	return resp, nil
}

type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errors.New("integration test: connection severed")
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// TestClientResumesAcrossKilledConnections: two consecutive connection
// kills mid-stream; the iteration is indistinguishable from an unbroken
// one.
func TestClientResumesAcrossKilledConnections(t *testing.T) {
	ts, _ := newCarService(t, core.Config{Workers: 8})

	calm, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	calmStream, err := calm.Query(context.Background(), wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, calmStream)

	chaos, err := New(Config{
		BaseURL:     ts.URL,
		HTTPClient:  &http.Client{Transport: &killNth{base: http.DefaultTransport, n: 2, allow: 600}},
		MaxAttempts: 10,
		sleep:       noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := chaos.Query(context.Background(), wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := drain(t, st)

	if st.Attempts() < 2 {
		t.Fatalf("attempts = %d — the chaos transport never bit", st.Attempts())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("resumed iteration differs from unbroken run:\n got %v\nwant %v", got, want)
	}
}

// reroute directs requests at whichever backend is currently alive — the
// restart seam: the client's base URL never changes, the process behind
// it does. Until the valve trips, response bodies are fed one byte per
// read so the client never buffers ahead of what it has consumed; when
// the old process is killed the valve trips and the next read fails like
// a dropped connection.
type reroute struct {
	mu      sync.Mutex
	target  string // host:port
	tripped atomic.Bool
}

func (r *reroute) set(hostport string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.target = hostport
}

func (r *reroute) RoundTrip(req *http.Request) (*http.Response, error) {
	r.mu.Lock()
	req.URL.Host = r.target
	r.mu.Unlock()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil || req.URL.Path != "/query" || resp.StatusCode != http.StatusOK || r.tripped.Load() {
		return resp, err
	}
	resp.Body = &valveBody{rc: resp.Body, tripped: &r.tripped}
	return resp, nil
}

type valveBody struct {
	rc      io.ReadCloser
	tripped *atomic.Bool
}

func (v *valveBody) Read(p []byte) (int, error) {
	if v.tripped.Load() {
		return 0, errors.New("integration test: server process killed")
	}
	return v.rc.Read(p[:1])
}

func (v *valveBody) Close() error { return v.rc.Close() }

// TestClientResumesAcrossServerRestart: the stream's origin process is
// killed mid-answer; a new process boots onto the warm state dir; the
// client reconnects, resumes, and the caller never notices — the
// deliveries equal an unbroken run's.
func TestClientResumesAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	world := sites.BuildWorld()
	boot := func() (*httptest.Server, *core.Webbase) {
		wb, err := core.New(core.Config{Fetcher: world.Server, Workers: 8, StateDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{System: wb})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(srv.Handler()), wb
	}

	// Ground truth from a throwaway service on its own (equally warm)
	// state: actually just the stream we interrupt — captured fully first.
	ts0, wb0 := newCarService(t, core.Config{Fetcher: world.Server, Workers: 8})
	calm, err := New(Config{BaseURL: ts0.URL})
	if err != nil {
		t.Fatal(err)
	}
	calmStream, err := calm.Query(context.Background(), wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, calmStream)
	ts0.Close()
	wb0.Close()

	ts1, wb1 := boot()
	route := &reroute{}
	route.set(ts1.Listener.Addr().String())
	c, err := New(Config{
		BaseURL:     "http://webbase.invalid", // never dialed; reroute rewrites the host
		HTTPClient:  &http.Client{Transport: route},
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Query(context.Background(), wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatal(st.Err())
	}
	got := []string{fmt.Sprintf("seq=%d index=%d object=%v skipped=%q failure=%v tuples=%v",
		st.Delivery().Seq, st.Delivery().Index, st.Delivery().Object,
		st.Delivery().Skipped, st.Delivery().Failure, st.Delivery().Tuples)}

	// Kill the process mid-stream: trip the valve so the in-flight read
	// fails, sever its connections, flush its durable state, boot a
	// successor on the same dir, repoint the route.
	route.tripped.Store(true)
	ts1.CloseClientConnections()
	ts1.Close()
	wb1.Close()
	ts2, wb2 := boot()
	defer ts2.Close()
	defer wb2.Close()
	route.set(ts2.Listener.Addr().String())

	for st.Next() {
		d := st.Delivery()
		got = append(got, fmt.Sprintf("seq=%d index=%d object=%v skipped=%q failure=%v tuples=%v",
			d.Seq, d.Index, d.Object, d.Skipped, d.Failure, d.Tuples))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if st.Trailer() == nil {
		t.Fatal("no trailer after restart resume")
	}
	if st.Attempts() < 2 {
		t.Fatalf("attempts = %d, want a reconnect", st.Attempts())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("restart-resumed iteration differs from unbroken run:\n got %v\nwant %v", got, want)
	}
}

// TestClientAgainstRealErrorPaths: the real server's envelopes round-trip
// through the typed taxonomy (not just scripted ones).
func TestClientAgainstRealErrorPaths(t *testing.T) {
	ts, _ := newCarService(t, core.Config{})
	c, err := New(Config{BaseURL: ts.URL, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "SELECT Bogus"); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("bad query err = %v, want ErrBadQuery", err)
	}

	// A tenant-gated server: the wrong key maps to ErrUnauthorized (not
	// retried), the right one streams.
	wb, err := core.New(core.Config{Fetcher: sites.BuildWorld().Server})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		System:  wb,
		Tenants: []server.Tenant{{Key: "goodkey", Name: "alice"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tsAuth := httptest.NewServer(srv.Handler())
	t.Cleanup(tsAuth.Close)

	bad, err := New(Config{BaseURL: tsAuth.URL, APIKey: "wrongkey", sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Query(context.Background(), carQuery); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong key err = %v, want ErrUnauthorized", err)
	}

	good, err := New(Config{BaseURL: tsAuth.URL, APIKey: "goodkey", sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	st, err := good.Query(context.Background(), carQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := drain(t, st); len(got) == 0 {
		t.Fatal("authenticated stream delivered nothing")
	}
}

// TestClientStreamsRealAnswer: the happy path against the real service —
// typed deliveries, a trailer with stats, tuples matching the carQuery
// ground truth count.
func TestClientStreamsRealAnswer(t *testing.T) {
	ts, wb := newCarService(t, core.Config{Workers: 4})
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Query(context.Background(), carQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Meta().Query == "" || st.Meta().ResumeToken == "" || len(st.Meta().Schema) == 0 {
		t.Fatalf("meta = %+v", st.Meta())
	}
	n := 0
	for st.Next() {
		n += len(st.Delivery().Tuples)
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	res, _, err := wb.QueryString(carQuery)
	if err != nil {
		t.Fatal(err)
	}
	if n != res.Relation.Len() || st.Trailer().Tuples != n {
		t.Fatalf("streamed %d tuples, trailer says %d, in-process answer has %d",
			n, st.Trailer().Tuples, res.Relation.Len())
	}
	if st.Trailer().Stats == nil {
		t.Fatal("trailer without stats")
	}
}
