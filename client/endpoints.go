package client

import (
	"sync"
	"time"
)

// Fleet failover: a Client can hold a set of replica endpoints instead of
// one URL. Every attempt asks the set for the best endpoint right now —
// pick-first with health-ordered rotation — and reports the outcome back,
// so the set accumulates a breaker-style failure memory per replica:
// consecutive failures bench an endpoint for a doubling, capped cooldown,
// and a single success resets it. A benched replica is skipped while any
// healthy one remains; when every replica is benched the one whose bench
// expires soonest is tried anyway (the client would rather probe a
// suspect replica than refuse to try at all).

// endpointState is one replica's failure memory.
type endpointState struct {
	url          string
	fails        int       // consecutive endpoint-attributed failures
	benchedUntil time.Time // skipped while in the future and a healthy peer exists
}

// endpointSet is the client's replica set, in configured order. Safe for
// concurrent use by the client's streams — they share one failure memory,
// which is the point: a replica one stream watched die is a replica the
// next stream avoids.
type endpointSet struct {
	mu   sync.Mutex
	eps  []*endpointState
	now  func() time.Time
	base time.Duration // first bench cooldown; doubles per consecutive failure
	max  time.Duration // cooldown cap
}

func newEndpointSet(urls []string, base, max time.Duration, now func() time.Time) *endpointSet {
	s := &endpointSet{now: now, base: base, max: max}
	for _, u := range urls {
		s.eps = append(s.eps, &endpointState{url: u})
	}
	return s
}

// multi reports whether the set holds more than one replica — the switch
// that arms failover-only behaviors (5xx rotation).
func (s *endpointSet) multi() bool { return len(s.eps) > 1 }

// pick returns the endpoint the next attempt should use: the first (in
// configured order) unbenched endpoint with the fewest consecutive
// failures; if every endpoint is benched, the one whose bench expires
// soonest. With one endpoint it is always that endpoint — pacing is the
// backoff sleep's job, not the bench's.
func (s *endpointSet) pick() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var best *endpointState
	for _, ep := range s.eps {
		if ep.benchedUntil.After(now) {
			continue
		}
		if best == nil || ep.fails < best.fails {
			best = ep
		}
	}
	if best != nil {
		return best.url
	}
	// Everything is benched: probe the replica closest to parole.
	best = s.eps[0]
	for _, ep := range s.eps[1:] {
		if ep.benchedUntil.Before(best.benchedUntil) {
			best = ep
		}
	}
	return best.url
}

// ok resets an endpoint's failure memory after a successful connection.
func (s *endpointSet) ok(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ep := range s.eps {
		if ep.url == url {
			ep.fails = 0
			ep.benchedUntil = time.Time{}
			return
		}
	}
}

// fail records an endpoint-attributed failure (transport error, 5xx,
// shed, stall): the endpoint is benched for a cooldown that doubles with
// each consecutive failure, capped, so rotation prefers its peers while
// it recovers but re-probes it on a bounded schedule.
func (s *endpointSet) fail(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ep := range s.eps {
		if ep.url != url {
			continue
		}
		ep.fails++
		cooldown := s.base
		for i := 1; i < ep.fails && cooldown < s.max; i++ {
			cooldown *= 2
		}
		if cooldown > s.max {
			cooldown = s.max
		}
		ep.benchedUntil = s.now().Add(cooldown)
		return
	}
}
