// Package client is the typed Go client for the webbase query service
// (internal/server, cmd/webbased): a self-healing consumer of the NDJSON
// stream protocol.
//
// One call — Client.Query — yields a Stream iterator over the same
// ObjectDelivery values an in-process System.QueryStream caller sees, in
// plan order, duplicate-free. The client survives what networks do to
// long streams: a dropped connection, a truncated response, or a full
// server restart mid-answer triggers an automatic reconnect with capped
// exponential backoff and deterministic jitter, and the repeated request
// carries the stream's resume offset and consistency token, so the
// server suppresses the already-delivered prefix and the caller observes
// one uninterrupted, byte-identical answer.
//
// The client also survives the loss of whole replicas. Config.Endpoints
// holds a replica set instead of one URL: attempts pick the healthiest
// endpoint (pick-first with health-ordered rotation over a breaker-style
// per-replica failure memory) and rotate away from a replica on
// transport errors, 5xx answers, shed classes and stalls. A resume the
// surviving replica refuses with 409 resume-inconsistent — its web view
// differs from the dead replica's — restarts the stream cleanly from
// zero on that replica instead of failing, with Stream.Restarted raised
// so the caller knows the delivered prefix is being re-fetched and must
// be discarded. Against a keepalive-enabled server (webbased -keepalive),
// Config.StallTimeout arms a per-event watchdog that kills only true
// stalls: keepalive events reset it, so an idle-but-alive stream is
// never mistaken for a dead one.
//
// When the failure is one a retry cannot change (bad query, quota,
// strict-mode outage), iteration stops with a typed error that mirrors
// the server's status code table — see errors.go.
package client

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Defaults for the zero Config fields.
const (
	// DefaultMaxAttempts is the per-query connection budget: the initial
	// connect plus reconnects, however they interleave.
	DefaultMaxAttempts = 5
	// DefaultBackoffBase spaces the first reconnect.
	DefaultBackoffBase = 100 * time.Millisecond
	// DefaultBackoffMax caps the exponential backoff.
	DefaultBackoffMax = 3 * time.Second
)

// Config assembles a Client.
type Config struct {
	// BaseURL roots the service, e.g. "http://127.0.0.1:8080". Required
	// unless Endpoints is set.
	BaseURL string
	// Endpoints is the replica set for fleet failover: every entry is a
	// base URL of one webbased replica serving the same web. Attempts
	// pick the healthiest endpoint and rotate on transport errors, 5xx,
	// shed classes and stalls. BaseURL, when also set, is prepended as
	// the first (preferred) endpoint.
	Endpoints []string
	// APIKey authenticates as a tenant (Authorization: Bearer). Empty
	// runs as the anonymous tenant on an open server.
	APIKey string
	// HTTPClient issues the requests. nil means a fresh http.Client with
	// no Timeout — a whole-response timeout would kill long streams; use
	// AttemptTimeout and context deadlines instead.
	HTTPClient *http.Client
	// MaxAttempts is the per-query connection budget (initial connect
	// included); 0 means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase is the delay before the second attempt; it doubles per
	// attempt up to BackoffMax. 0 means DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffMax caps the backoff; 0 means DefaultBackoffMax.
	BackoffMax time.Duration
	// AttemptTimeout bounds each attempt's time to its first event
	// (connect, send, response headers, first line). An attempt that
	// blows it counts against MaxAttempts and retries. 0 disables.
	AttemptTimeout time.Duration
	// StallTimeout bounds the gap between events on a live stream: a
	// stream that goes silent for longer is treated as stalled — the
	// attempt is killed, the endpoint marked failed, and the stream
	// reconnects and resumes elsewhere. Only sound against a server
	// emitting keepalive events (webbased -keepalive) at a shorter
	// interval — without them a legitimately slow object looks like a
	// stall. 0 disables.
	StallTimeout time.Duration

	// sleep is the backoff seam; tests replace it to run instantly.
	sleep func(context.Context, time.Duration) error
	// now is the endpoint-bench clock seam; tests replace it.
	now func() time.Time
}

// Client issues queries against one webbase service — or a fleet of
// replicas serving the same web (Config.Endpoints). Safe for concurrent
// use; each Query returns its own Stream, and all streams share the
// per-replica failure memory.
type Client struct {
	endpoints      *endpointSet
	apiKey         string
	hc             *http.Client
	maxAttempts    int
	backoffBase    time.Duration
	backoffMax     time.Duration
	attemptTimeout time.Duration
	stallTimeout   time.Duration
	sleep          func(context.Context, time.Duration) error
	reqSeq         atomic.Int64
}

// New validates cfg and assembles a client.
func New(cfg Config) (*Client, error) {
	var urls []string
	if cfg.BaseURL != "" {
		urls = append(urls, cfg.BaseURL)
	}
	urls = append(urls, cfg.Endpoints...)
	if len(urls) == 0 {
		return nil, fmt.Errorf("client: Config.BaseURL or Config.Endpoints is required")
	}
	for i, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("client: endpoint %q is not an absolute URL", raw)
		}
		urls[i] = strings.TrimRight(raw, "/")
	}
	c := &Client{
		apiKey:         cfg.APIKey,
		hc:             cfg.HTTPClient,
		maxAttempts:    cfg.MaxAttempts,
		backoffBase:    cfg.BackoffBase,
		backoffMax:     cfg.BackoffMax,
		attemptTimeout: cfg.AttemptTimeout,
		stallTimeout:   cfg.StallTimeout,
		sleep:          cfg.sleep,
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = DefaultMaxAttempts
	}
	if c.backoffBase <= 0 {
		c.backoffBase = DefaultBackoffBase
	}
	if c.backoffMax <= 0 {
		c.backoffMax = DefaultBackoffMax
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	// The bench cooldown reuses the backoff scale: a replica's first
	// failure benches it for one backoff base, doubling to the cap.
	c.endpoints = newEndpointSet(urls, c.backoffBase, c.backoffMax, now)
	return c, nil
}

// Query starts one streaming query and returns its Stream with the meta
// event already read (Stream.Meta is valid). Connection-level failures
// and retryable rejections are retried within the attempt budget before
// Query gives up; the returned error is typed (errors.Is against the
// package sentinels). ctx governs the whole stream, not just the call —
// canceling it aborts iteration.
func (c *Client) Query(ctx context.Context, query string) (*Stream, error) {
	s := &Stream{
		c:     c,
		ctx:   ctx,
		query: query,
		rid:   fmt.Sprintf("c-%06d", c.reqSeq.Add(1)),
	}
	if err := s.connect(); err != nil {
		return nil, err
	}
	return s, nil
}

// backoffDelay spaces attempt n (n >= 2): base doubled per prior retry,
// capped, with deterministic jitter in [1/2, 1) of the cap derived from
// (request ID, attempt) — two clients thundering against a restarted
// server spread out, yet every run of the same client is reproducible.
func (c *Client) backoffDelay(rid string, attempt int) time.Duration {
	d := c.backoffBase
	for i := 2; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	h := fnv.New64a()
	h.Write([]byte(rid))
	binary.Write(h, binary.LittleEndian, int64(attempt))
	frac := h.Sum64() % 1024
	half := d / 2
	return half + time.Duration(uint64(half)*frac/1024)
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctxErr(ctx)
	case <-t.C:
		return nil
	}
}
