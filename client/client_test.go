package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/relation"
)

// noSleep makes retry loops instant in tests.
func noSleep(context.Context, time.Duration) error { return nil }

func newTestClient(t *testing.T, url string, maxAttempts int) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: url, MaxAttempts: maxAttempts, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// envelopeHandler answers every request with one scripted error envelope
// and counts the requests it saw.
func envelopeHandler(code string, status int, hits *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":{"code":%q,"status":%d,"message":"scripted failure","request_id":"r-1"}}`+"\n", code, status)
	}
}

// TestErrorEnvelopeTable drives the client through the server's whole
// error-envelope table and asserts two things per row: the error matches
// its sentinel under errors.Is, and the client retried exactly when the
// class is retryable — shedded and tenant-saturated spend the attempt
// budget, everything else fails on the first answer.
func TestErrorEnvelopeTable(t *testing.T) {
	const budget = 3
	cases := []struct {
		code     string
		status   int
		sentinel error
		attempts int64 // requests the server should see
	}{
		{"bad-query", 400, ErrBadQuery, 1},
		{"bad-resume", 400, ErrBadResume, 1},
		{"unauthorized", 401, ErrUnauthorized, 1},
		{"resume-inconsistent", 409, ErrResumeInconsistent, 1},
		{"body-too-large", 413, ErrBodyTooLarge, 1},
		{"quota-exhausted", 429, ErrQuotaExhausted, 1},
		{"shedded", 429, ErrShedded, budget},
		{"tenant-saturated", 429, ErrTenantSaturated, budget},
		{"site-outage", 502, ErrSiteOutage, 1},
		{"site-drift", 502, ErrSiteDrift, 1},
		{"site-answer", 502, ErrSiteAnswer, 1},
		{"deadline", 504, ErrDeadline, 1},
		{"internal", 500, ErrInternal, 1},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			var hits atomic.Int64
			ts := httptest.NewServer(envelopeHandler(tc.code, tc.status, &hits))
			defer ts.Close()

			c := newTestClient(t, ts.URL, budget)
			_, err := c.Query(context.Background(), "SELECT Make")
			if err == nil {
				t.Fatal("Query succeeded against a scripted failure")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want errors.Is %v", err, tc.sentinel)
			}
			var ae *APIError
			if !errors.As(err, &ae) || ae.Code != tc.code || ae.Status != tc.status {
				t.Fatalf("err = %v, want APIError{%s, %d}", err, tc.code, tc.status)
			}
			if tc.attempts == budget && !errors.Is(err, ErrRetriesExhausted) {
				t.Fatalf("retryable class err = %v, want ErrRetriesExhausted wrap", err)
			}
			if hits.Load() != tc.attempts {
				t.Fatalf("server saw %d requests, want %d", hits.Load(), tc.attempts)
			}
		})
	}
}

// scriptedStream writes NDJSON lines verbatim.
func scriptedStream(lines ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		f, _ := w.(http.Flusher)
		for _, l := range lines {
			fmt.Fprintln(w, l)
			if f != nil {
				f.Flush()
			}
		}
	}
}

const scriptedMeta = `{"event":"meta","seq":0,"request_id":"r-1","query":"SELECT Make","schema":["Make"],"resume_token":"tok-1"}`

// TestMidStreamErrorEvent: a terminal error event after deliveries is a
// typed failure on the same taxonomy — no retry for a non-retryable
// class, and the deliveries before it are kept.
func TestMidStreamErrorEvent(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		scriptedStream(
			scriptedMeta,
			`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["jaguar"]]}`,
			`{"event":"error","seq":2,"error":{"code":"deadline","status":504,"message":"budget exhausted","request_id":"r-1"}}`,
		)(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, 3)
	st, err := c.Query(context.Background(), "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got int
	for st.Next() {
		got += len(st.Delivery().Tuples)
	}
	if !errors.Is(st.Err(), ErrDeadline) {
		t.Fatalf("Err = %v, want ErrDeadline", st.Err())
	}
	if got != 1 {
		t.Fatalf("delivered %d tuples before the error, want 1", got)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (deadline is not retryable)", hits.Load())
	}
}

// TestMidStreamRetryableErrorResumes: a retryable mid-stream error event
// triggers a reconnect that carries the resume offset and token, and the
// stitched iteration delivers each event exactly once.
func TestMidStreamRetryableErrorResumes(t *testing.T) {
	var hits atomic.Int64
	var gotResume struct {
		sync.Mutex
		index, token string
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n == 1 {
			scriptedStream(
				scriptedMeta,
				`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["jaguar"]]}`,
				`{"event":"error","seq":2,"error":{"code":"shedded","status":429,"message":"overload","request_id":"r-1"}}`,
			)(w, r)
			return
		}
		var qr queryRequest
		readJSON(r, &qr)
		gotResume.Lock()
		if qr.LastEventIndex != nil {
			gotResume.index = fmt.Sprint(*qr.LastEventIndex)
		}
		gotResume.token = qr.ResumeToken
		gotResume.Unlock()
		scriptedStream(
			`{"event":"tuples","seq":2,"index":1,"object":["dealers"],"count":1,"tuples":[["saab"]]}`,
			`{"event":"trailer","seq":3,"tuples":2,"objects":2,"stats":{}}`,
		)(w, r)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, 3)
	st, err := c.Query(context.Background(), "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var tuples []string
	for st.Next() {
		for _, tp := range st.Delivery().Tuples {
			tuples = append(tuples, fmt.Sprint(tp))
		}
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	if len(tuples) != 2 {
		t.Fatalf("delivered %v, want 2 tuples exactly once", tuples)
	}
	if st.Trailer() == nil || st.Trailer().Tuples != 2 {
		t.Fatalf("trailer = %+v", st.Trailer())
	}
	gotResume.Lock()
	defer gotResume.Unlock()
	if gotResume.index != "1" || gotResume.token != "tok-1" {
		t.Fatalf("resume carried index=%q token=%q, want 1/tok-1", gotResume.index, gotResume.token)
	}
	if st.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", st.Attempts())
	}
}

// TestValueKindsRoundTrip: wire tuples decode to the right relational
// kinds — strings, ints, floats, bools, nulls.
func TestValueKindsRoundTrip(t *testing.T) {
	ts := httptest.NewServer(scriptedStream(
		scriptedMeta,
		`{"event":"tuples","seq":1,"index":0,"object":["x"],"count":1,"tuples":[["s",7,2.5,true,null]]}`,
		`{"event":"trailer","seq":2,"tuples":1,"objects":1,"stats":{}}`,
	))
	defer ts.Close()

	c := newTestClient(t, ts.URL, 1)
	st, err := c.Query(context.Background(), "SELECT X")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatal(st.Err())
	}
	tp := st.Delivery().Tuples[0]
	kinds := []relation.Kind{relation.KindString, relation.KindInt, relation.KindFloat, relation.KindBool, relation.KindNull}
	for i, want := range kinds {
		if tp[i].Kind() != want {
			t.Fatalf("value %d kind = %v, want %v", i, tp[i].Kind(), want)
		}
	}
	if tp[1].IntVal() != 7 || tp[2].FloatVal() != 2.5 || tp[3].BoolVal() != true {
		t.Fatalf("values decoded wrong: %v", tp)
	}
}

// TestContextCancellationMidStream: canceling the caller's context ends
// iteration with the context error — no reconnect attempts.
func TestContextCancellationMidStream(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, _ := w.(http.Flusher)
		fmt.Fprintln(w, scriptedMeta)
		fmt.Fprintln(w, `{"event":"tuples","seq":1,"index":0,"object":["x"],"count":0,"tuples":[]}`)
		if f != nil {
			f.Flush()
		}
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer ts.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	c := newTestClient(t, ts.URL, 5)
	st, err := c.Query(ctx, "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatal(st.Err())
	}
	cancel()
	if st.Next() {
		t.Fatal("Next delivered after cancellation")
	}
	if !errors.Is(st.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", st.Err())
	}
	if st.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1 — cancellation must not retry", st.Attempts())
	}
}

// TestAttemptTimeout: a server that never sends the first event trips
// the per-attempt watchdog; each timeout burns one attempt until the
// budget ends.
func TestAttemptTimeout(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush() // headers out; then stall before the meta event
		}
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer ts.Close()
	defer close(release)

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 2, AttemptTimeout: 50 * time.Millisecond, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), "SELECT Make")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits.Load())
	}
}

// TestBackoffDeterministicJitter: the schedule is a pure function of
// (request ID, attempt), capped, and distinct across request IDs.
func TestBackoffDeterministicJitter(t *testing.T) {
	c, err := New(Config{BaseURL: "http://x", BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 2; attempt <= 8; attempt++ {
		d1 := c.backoffDelay("r-1", attempt)
		d2 := c.backoffDelay("r-1", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 > c.backoffMax {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, d1, c.backoffMax)
		}
		if d1 < c.backoffBase/2 {
			t.Fatalf("attempt %d: backoff %v below base/2", attempt, d1)
		}
	}
	if c.backoffDelay("r-1", 3) == c.backoffDelay("r-2", 3) {
		t.Fatal("jitter does not vary with request ID")
	}
}

func readJSON(r *http.Request, v any) {
	defer r.Body.Close()
	json.NewDecoder(r.Body).Decode(v)
}
