package client

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// The client-side error taxonomy mirrors the server's status-code table
// one to one: every error envelope and terminal error event decodes to an
// *APIError whose Code is the server's stable machine-readable code, and
// each code matches a sentinel below under errors.Is — so callers branch
// on classes (`errors.Is(err, client.ErrQuotaExhausted)`) without string
// comparisons, exactly as they would against the in-process taxonomy.

// Sentinels, one per server error code. Match with errors.Is.
var (
	// ErrUnauthorized: 401 unauthorized — the API key names no tenant.
	ErrUnauthorized = errors.New("client: unauthorized")
	// ErrQuotaExhausted: 429 quota-exhausted — the tenant's fixed-window
	// quota is spent. Not retried: the window must roll first.
	ErrQuotaExhausted = errors.New("client: tenant quota exhausted")
	// ErrTenantSaturated: 429 tenant-saturated — the tenant's concurrent
	// stream limit is full. Retried: a slot frees when a stream ends.
	ErrTenantSaturated = errors.New("client: tenant saturated")
	// ErrShedded: 429 shedded — the admission gate shed the query under
	// overload. Retried with backoff.
	ErrShedded = errors.New("client: query shed by admission gate")
	// ErrBadQuery: 400 bad-query — the query text failed to parse or plan.
	ErrBadQuery = errors.New("client: bad query")
	// ErrBadResume: 400 bad-resume — malformed resume parameters.
	ErrBadResume = errors.New("client: bad resume parameters")
	// ErrResumeInconsistent: 409 resume-inconsistent — the web view
	// changed since the stream began (cache clear, map repair); the
	// delivered prefix cannot be extended soundly. Restart the query.
	ErrResumeInconsistent = errors.New("client: resume inconsistent with current web state")
	// ErrBodyTooLarge: 413 body-too-large.
	ErrBodyTooLarge = errors.New("client: request body too large")
	// ErrDeadline: 504 deadline — the server-side deadline budget ran out.
	ErrDeadline = errors.New("client: server deadline budget exhausted")
	// ErrSiteOutage: 502 site-outage — strict mode surfaced a dead site.
	ErrSiteOutage = errors.New("client: site outage")
	// ErrSiteDrift: 502 site-drift — strict mode surfaced a redesigned site.
	ErrSiteDrift = errors.New("client: site drift")
	// ErrSiteAnswer: 502 site-answer — a site answered unsuccessfully.
	ErrSiteAnswer = errors.New("client: site answered with an error")
	// ErrInternal: 500 internal.
	ErrInternal = errors.New("client: internal server error")

	// ErrRetriesExhausted wraps the last failure after the per-query retry
	// budget (Config.MaxAttempts) is spent.
	ErrRetriesExhausted = errors.New("client: retry budget exhausted")
	// ErrProtocol reports a malformed stream (undecodable event, missing
	// meta). Never retried — the server is speaking a different protocol.
	ErrProtocol = errors.New("client: protocol error")
)

// codeSentinel maps a server error code to its sentinel.
var codeSentinel = map[string]error{
	"unauthorized":        ErrUnauthorized,
	"quota-exhausted":     ErrQuotaExhausted,
	"tenant-saturated":    ErrTenantSaturated,
	"shedded":             ErrShedded,
	"bad-query":           ErrBadQuery,
	"bad-resume":          ErrBadResume,
	"resume-inconsistent": ErrResumeInconsistent,
	"body-too-large":      ErrBodyTooLarge,
	"deadline":            ErrDeadline,
	"site-outage":         ErrSiteOutage,
	"site-drift":          ErrSiteDrift,
	"site-answer":         ErrSiteAnswer,
	"internal":            ErrInternal,
}

// APIError is a typed server failure: an error envelope (pre-stream) or
// terminal error event (mid-stream) decoded off the wire.
type APIError struct {
	// Code is the server's stable machine-readable code ("bad-query",
	// "resume-inconsistent", ...).
	Code string
	// Status is the HTTP status the server assigned the failure. For a
	// mid-stream error event the response was already 200; Status carries
	// the status an envelope would have used.
	Status int
	// Message is the server's rendered cause.
	Message string
	// RequestID identifies the request for log correlation.
	RequestID string
	// RetryAfter is the server's Retry-After hint (whole seconds, from
	// the envelope's response headers), zero when absent. The client
	// honors it on retryable 429s, capped by the backoff ceiling.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server error %s (status %d, request %s): %s",
		e.Code, e.Status, e.RequestID, e.Message)
}

// Is matches the sentinel assigned to the error's code, so
// errors.Is(err, client.ErrBadQuery) works through any wrapping.
func (e *APIError) Is(target error) bool { return codeSentinel[e.Code] == target }

// retryableCode lists the server codes worth retrying: transient
// server-side pressure that a backed-off reattempt can outwait. Quota
// exhaustion, query errors, consistency refusals and site failures are
// deliberately absent — retrying cannot change their outcome.
var retryableCode = map[string]bool{
	"shedded":          true,
	"tenant-saturated": true,
}

// retryable classifies a failure for the reconnect loop: true for
// transport-level failures (dropped connections, truncated bodies, dead
// servers mid-restart) and for the retryable server codes; false for
// everything whose outcome a retry cannot change. With a multi-replica
// endpoint set (failover true), 5xx answers are also retryable: the
// failure may be local to the replica that produced it — a restarting
// process, a replica whose breakers are open — and the rotation will
// put the next attempt on a different replica. Context errors are
// judged by the caller against its own context — a canceled attempt
// watchdog looks like context.Canceled but is retryable, so the stream
// checks its parent context before consulting this.
func retryable(err error, failover bool) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		if retryableCode[ae.Code] {
			return true
		}
		return failover && ae.Status >= 500
	}
	if errors.Is(err, ErrProtocol) {
		return false
	}
	return true
}

// endpointFault reports whether a failure indicts the endpoint that
// produced it — the classes that feed the per-replica failure memory:
// transport errors (including stall kills), 5xx answers, and shed
// classes. 4xx answers say nothing about the replica's health, and a 409
// consistency refusal is a correct answer, not a fault.
func endpointFault(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500 || retryableCode[ae.Code]
	}
	if errors.Is(err, ErrProtocol) {
		return true
	}
	return true // transport-level: dropped connection, truncated body, stall
}

// retryAfterOf extracts a failure's Retry-After hint, zero when absent.
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// ctxErr normalizes an abort caused by the caller's context.
func ctxErr(ctx context.Context) error {
	if err := context.Cause(ctx); err != nil {
		return err
	}
	return ctx.Err()
}
