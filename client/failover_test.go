package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The failover surface, unit-scale: endpoint rotation and benching,
// failover on 5xx, restart-from-zero after a refused cross-replica
// resume, Retry-After honored under the backoff ceiling, and the stall
// watchdog with its keepalive antidote. The multi-process version of the
// same story is internal/loadgen's fleet harness.

// TestEndpointSetRotation drives the bench bookkeeping directly: config
// order is preference order, failures bench with a doubling cooldown,
// success resets, and a fully benched set degrades to soonest-parole.
func TestEndpointSetRotation(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	eps := newEndpointSet([]string{"http://a", "http://b", "http://c"},
		10*time.Millisecond, 80*time.Millisecond, now)

	if got := eps.pick(); got != "http://a" {
		t.Fatalf("healthy pick = %s, want the preferred endpoint", got)
	}
	eps.fail("http://a")
	if got := eps.pick(); got != "http://b" {
		t.Fatalf("pick after benching a = %s, want b", got)
	}
	eps.fail("http://b")
	if got := eps.pick(); got != "http://c" {
		t.Fatalf("pick after benching a,b = %s, want c", got)
	}
	// All benched: the soonest parole wins rather than nothing.
	eps.fail("http://c")
	eps.fail("http://c") // c's cooldown doubles past a's and b's
	if got := eps.pick(); got != "http://a" {
		t.Fatalf("all-benched pick = %s, want the soonest parole (a)", got)
	}
	// Past a's cooldown the bench expires on its own.
	clock = clock.Add(15 * time.Millisecond)
	if got := eps.pick(); got != "http://a" {
		t.Fatalf("post-cooldown pick = %s, want a", got)
	}
	// Success wipes the failure memory; a is fully preferred again.
	eps.ok("http://a")
	eps.fail("http://b")
	clock = clock.Add(time.Second)
	if got := eps.pick(); got != "http://a" {
		t.Fatalf("pick after reset = %s, want a", got)
	}
}

// TestFailoverOn5xx: with a replica set, a 500 is no longer terminal —
// the client benches the failing replica and completes on the next one.
// (Single-endpoint 500 stays fail-fast: TestErrorEnvelopeTable.)
func TestFailoverOn5xx(t *testing.T) {
	var sick atomic.Int64
	bad := httptest.NewServer(envelopeHandler("internal", 500, &sick))
	defer bad.Close()
	good := httptest.NewServer(scriptedStream(
		scriptedMeta,
		`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["jaguar"]]}`,
		`{"event":"trailer","seq":2,"tuples":1,"objects":1,"stats":{}}`,
	))
	defer good.Close()

	c, err := New(Config{Endpoints: []string{bad.URL, good.URL}, MaxAttempts: 3, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Query(context.Background(), "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var tuples int
	for st.Next() {
		tuples += len(st.Delivery().Tuples)
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	if tuples != 1 || st.Failovers() != 1 || st.Endpoint() != good.URL {
		t.Fatalf("tuples=%d failovers=%d endpoint=%s, want 1/1/%s",
			tuples, st.Failovers(), st.Endpoint(), good.URL)
	}
	if sick.Load() != 1 {
		t.Fatalf("failing replica saw %d requests, want 1 — it should be benched after one failure", sick.Load())
	}
}

// TestFailoverRestartsAfterRefusedResume: replica A dies mid-stream; the
// resume lands on replica B, whose web view differs, so B refuses with
// 409 resume-inconsistent. The client must not fail — and must not splice
// — it starts the stream over from seq zero on B and surfaces the restart
// so consumers can drop the pre-restart prefix.
func TestFailoverRestartsAfterRefusedResume(t *testing.T) {
	// Replica A: meta + one tuple, then the connection dies.
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		scriptedStream(
			scriptedMeta,
			`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["stale"]]}`,
		)(w, r)
		// Returning without a trailer closes the body: the client reads EOF
		// mid-stream, a transport fault.
	}))
	defer a.Close()

	// Replica B: refuses any resume, serves fresh queries in full.
	var resumesRefused, fresh atomic.Int64
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var qr queryRequest
		readJSON(r, &qr)
		if qr.LastEventIndex != nil {
			resumesRefused.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(409)
			fmt.Fprintln(w, `{"error":{"code":"resume-inconsistent","status":409,"message":"web view changed","request_id":"r-2"}}`)
			return
		}
		fresh.Add(1)
		scriptedStream(
			`{"event":"meta","seq":0,"request_id":"r-2","query":"SELECT Make","schema":["Make"],"resume_token":"tok-2"}`,
			`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["jaguar"]]}`,
			`{"event":"tuples","seq":2,"index":1,"object":["dealers"],"count":1,"tuples":[["saab"]]}`,
			`{"event":"trailer","seq":3,"tuples":2,"objects":2,"stats":{}}`,
		)(w, r)
	}))
	defer b.Close()

	c, err := New(Config{Endpoints: []string{a.URL, b.URL}, MaxAttempts: 5, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Query(context.Background(), "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Restart-aware drain: a Restarts() advance voids the prefix.
	var tuples []string
	restarts := 0
	for st.Next() {
		if r := st.Restarts(); r > restarts {
			restarts = r
			tuples = nil
		}
		for _, tp := range st.Delivery().Tuples {
			tuples = append(tuples, fmt.Sprint(tp))
		}
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	if !st.Restarted() || st.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1 — the refused resume must restart, not fail", st.Restarts())
	}
	if len(tuples) != 2 {
		t.Fatalf("post-restart answer = %v, want the full 2-tuple answer from zero", tuples)
	}
	if st.Failovers() != 1 || st.Endpoint() != b.URL {
		t.Fatalf("failovers=%d endpoint=%s, want 1/%s", st.Failovers(), st.Endpoint(), b.URL)
	}
	if resumesRefused.Load() != 1 || fresh.Load() != 1 {
		t.Fatalf("replica B saw %d refused resumes and %d fresh queries, want 1/1",
			resumesRefused.Load(), fresh.Load())
	}
	if st.Trailer() == nil || st.Trailer().Tuples != 2 {
		t.Fatalf("trailer = %+v", st.Trailer())
	}
}

// TestRetryAfterHonored: a 429 shedded envelope carrying Retry-After
// stretches the reconnect delay to the server's ask — but never past the
// client's own backoff ceiling.
func TestRetryAfterHonored(t *testing.T) {
	cases := []struct {
		name       string
		retryAfter string
		backoffMax time.Duration
		wantSleep  time.Duration
	}{
		{"honored", "1", 10 * time.Second, 1 * time.Second},
		{"capped", "60", 2 * time.Second, 2 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Retry-After", tc.retryAfter)
				w.WriteHeader(429)
				fmt.Fprintln(w, `{"error":{"code":"shedded","status":429,"message":"overload","request_id":"r-1"}}`)
			}))
			defer ts.Close()

			var mu sync.Mutex
			var sleeps []time.Duration
			record := func(_ context.Context, d time.Duration) error {
				mu.Lock()
				sleeps = append(sleeps, d)
				mu.Unlock()
				return nil
			}
			c, err := New(Config{
				BaseURL:     ts.URL,
				MaxAttempts: 3,
				BackoffBase: time.Millisecond,
				BackoffMax:  tc.backoffMax,
				sleep:       record,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Query(context.Background(), "SELECT Make"); err == nil {
				t.Fatal("Query succeeded against a permanently shedding server")
			}
			mu.Lock()
			defer mu.Unlock()
			if len(sleeps) != 2 { // attempts-1 reconnect waits
				t.Fatalf("recorded %d sleeps, want 2", len(sleeps))
			}
			for i, d := range sleeps {
				if d != tc.wantSleep {
					t.Fatalf("sleep %d = %v, want %v (Retry-After %s under a %v ceiling)",
						i, d, tc.wantSleep, tc.retryAfter, tc.backoffMax)
				}
			}
		})
	}
}

// TestStallWatchdogKillsSilentStream: a stream that goes silent after a
// delivery is dead to a StallTimeout client — the watchdog severs it and
// the resume completes the answer on the next attempt.
func TestStallWatchdogKillsSilentStream(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			scriptedStream(
				scriptedMeta,
				`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["jaguar"]]}`,
			)(w, r)
			<-r.Context().Done() // stall: no more events, connection held open
			return
		}
		scriptedStream(
			`{"event":"tuples","seq":2,"index":1,"object":["dealers"],"count":1,"tuples":[["saab"]]}`,
			`{"event":"trailer","seq":3,"tuples":2,"objects":2,"stats":{}}`,
		)(w, r)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 3, StallTimeout: 50 * time.Millisecond, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Query(context.Background(), "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var tuples int
	for st.Next() {
		tuples += len(st.Delivery().Tuples)
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	if tuples != 2 || st.Attempts() != 2 {
		t.Fatalf("tuples=%d attempts=%d, want 2/2 — the watchdog must kill the stall and resume", tuples, st.Attempts())
	}
}

// TestKeepalivesDisarmStallWatchdog: a stream that is idle far past
// StallTimeout but keeps sending keepalives is alive, not stalled — the
// watchdog re-arms on every event, keepalives included, and the stream
// completes on the first attempt.
func TestKeepalivesDisarmStallWatchdog(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		f, _ := w.(http.Flusher)
		emit := func(line string) {
			fmt.Fprintln(w, line)
			if f != nil {
				f.Flush()
			}
		}
		emit(scriptedMeta)
		// 300ms of idleness — three times the stall timeout — bridged only
		// by keepalives.
		for i := 0; i < 15; i++ {
			time.Sleep(20 * time.Millisecond)
			emit(`{"event":"keepalive"}`)
		}
		emit(`{"event":"tuples","seq":1,"index":0,"object":["cars"],"count":1,"tuples":[["jaguar"]]}`)
		emit(`{"event":"trailer","seq":2,"tuples":1,"objects":1,"stats":{}}`)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 1, StallTimeout: 100 * time.Millisecond, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Query(context.Background(), "SELECT Make")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var tuples int
	for st.Next() {
		tuples += len(st.Delivery().Tuples)
	}
	if st.Err() != nil {
		t.Fatalf("a keepalive-bridged idle stream was killed: %v", st.Err())
	}
	if tuples != 1 || st.Attempts() != 1 {
		t.Fatalf("tuples=%d attempts=%d, want 1/1", tuples, st.Attempts())
	}
	if st.Keepalives() == 0 {
		t.Fatal("client consumed no keepalives from a keepalive-bridged stream")
	}
}
