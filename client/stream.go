package client

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"webbase"
	"webbase/internal/relation"
)

// Meta is the stream's opening event: the request identity, the answer
// schema, and the consistency token resumes present back to the server.
type Meta struct {
	RequestID   string
	Query       string
	Schema      []string
	ResumeToken string
}

// TrailerDegradation mirrors the trailer's degradation report.
type TrailerDegradation struct {
	Unavailable []webbase.SiteFailure `json:"unavailable"`
	StaleServed int64                 `json:"stale_served"`
	Report      string                `json:"report"`
}

// Trailer is the stream's closing event: the answer's totals and the
// server-side QueryStats. On a resumed stream the totals cover the whole
// answer, delivered prefix included, while Stats covers only the final
// (resumed) execution.
type Trailer struct {
	Tuples      int
	Objects     int
	Skipped     []string
	Degradation *TrailerDegradation
	Stats       *webbase.QueryStats
}

// Stream iterates one query's answer in the bufio.Scanner style:
//
//	st, err := c.Query(ctx, "SELECT Make, Model WHERE ...")
//	if err != nil { ... }
//	defer st.Close()
//	for st.Next() {
//	    d := st.Delivery()
//	    ... // d.Tuples, d.Failure, d.Skipped — plan order, duplicate-free
//	}
//	if err := st.Err(); err != nil { ... }
//	trailer := st.Trailer() // non-nil iff Err() == nil
//
// The stream is self-healing: when the connection drops — mid-body,
// between events, or because the server restarted — Next transparently
// reconnects with capped exponential backoff and resumes from the last
// delivered event, so the caller observes one uninterrupted, exactly-once
// delivery sequence, byte-identical to an unbroken run. Reconnection
// spends the same per-query attempt budget as the initial connect; when
// it is exhausted, or the failure is one a retry cannot change, Next
// returns false and Err reports the typed cause.
//
// With a multi-replica Client, each reconnect may land on a different
// replica. When the new replica refuses the resume with 409
// resume-inconsistent — its web view diverged from the replica that
// delivered the prefix, so splicing their answers would be unsound —
// the stream restarts from zero on that replica instead of failing:
// Restarted flips true and every delivery is re-fetched, so a caller
// accumulating tuples must discard what it holds when it sees the flag.
//
// A Stream is not safe for concurrent use.
type Stream struct {
	c     *Client
	ctx   context.Context
	query string
	rid   string

	attempts   int
	lastErr    error
	ep         string // endpoint serving (or last to serve) this stream
	failovers  int    // attempts that switched endpoints
	restarts   int    // restart-from-zero count (409 on resume)
	keepalives int    // keepalive events consumed

	resp     *http.Response
	body     *bufio.Reader
	cancel   context.CancelFunc // aborts the current attempt's request context
	watchdog *time.Timer        // first-event / inter-event stall watchdog

	meta    Meta
	gotMeta bool
	lastSeq int // highest delivery seq handed to the caller; the resume offset

	cur     webbase.ObjectDelivery
	trailer *Trailer
	err     error
	done    bool
}

// Meta returns the stream's opening event. Valid as soon as Query returns.
func (s *Stream) Meta() Meta { return s.meta }

// Delivery returns the current delivery. Valid after Next returns true,
// until the next call to Next.
func (s *Stream) Delivery() webbase.ObjectDelivery { return s.cur }

// Trailer returns the closing event: non-nil exactly when the stream
// ended cleanly (Next returned false and Err is nil).
func (s *Stream) Trailer() *Trailer { return s.trailer }

// Err returns the terminal error, nil for a clean end. Typed: match with
// errors.Is against the package sentinels.
func (s *Stream) Err() error { return s.err }

// Attempts reports how many connection attempts the stream has used,
// the initial connect included.
func (s *Stream) Attempts() int { return s.attempts }

// Endpoint reports the replica serving (or last to serve) the stream.
func (s *Stream) Endpoint() string { return s.ep }

// Failovers reports how many attempts switched to a different replica.
func (s *Stream) Failovers() int { return s.failovers }

// Restarts reports how many times the stream restarted from zero after a
// replica refused its resume (409 resume-inconsistent). Each restart
// re-fetches the whole answer; a caller accumulating deliveries must
// discard its prefix whenever Restarts advances between Next calls.
func (s *Stream) Restarts() int { return s.restarts }

// Restarted reports whether the stream has restarted from zero at least
// once, i.e. whether deliveries before the most recent restart were
// superseded by a re-fetch.
func (s *Stream) Restarted() bool { return s.restarts > 0 }

// Keepalives reports how many keepalive events the stream has consumed.
// Keepalives are seq-less liveness probes — never surfaced as deliveries,
// never acked — whose only effect is re-arming the stall watchdog.
func (s *Stream) Keepalives() int { return s.keepalives }

// Close releases the stream's connection. Safe to call at any point and
// more than once; iterating a closed stream returns false.
func (s *Stream) Close() error {
	s.closeBody()
	if !s.done && s.err == nil {
		s.err = fmt.Errorf("client: stream closed before completion")
		s.done = true
	}
	return nil
}

// Next advances to the next delivery, transparently reconnecting and
// resuming across dropped connections. It returns false at the trailer
// (clean end) or on a terminal error — check Err to tell them apart.
func (s *Stream) Next() bool {
	if s.done {
		return false
	}
	for {
		line, err := s.readLine()
		if err != nil {
			if !s.recover(err) {
				return false
			}
			continue
		}
		ev, err := parseEvent(line)
		if err != nil {
			s.terminate(err)
			return false
		}
		switch ev.kind {
		case "meta":
			// A repeated meta (server replayed from scratch after the
			// client lost state) carries nothing new; skip it.
			continue
		case "tuples", "unavailable", "skipped":
			// Exactly-once guard: the server suppresses the acked prefix,
			// but a delivery at or below the resume offset (a replay bug or
			// a hostile server) must still never reach the caller twice.
			if ev.delivery.Seq <= s.lastSeq {
				continue
			}
			s.lastSeq = ev.delivery.Seq
			s.cur = ev.delivery
			return true
		case "keepalive":
			// Seq-less liveness probe. Its whole effect — re-arming the
			// stall watchdog — already happened in readLine.
			s.keepalives++
			continue
		case "trailer":
			s.trailer = ev.trailer
			s.done = true
			s.closeBody()
			return false
		case "error":
			if !s.recover(ev.apiErr) {
				return false
			}
			continue
		default:
			s.terminate(fmt.Errorf("%w: unknown event %q", ErrProtocol, ev.kind))
			return false
		}
	}
}

// recover handles a mid-stream failure: reconnect-and-resume when the
// failure class is retryable and budget remains, terminate otherwise.
// Returns true when the stream is live again.
func (s *Stream) recover(cause error) bool {
	s.closeBody()
	if s.ctx.Err() != nil {
		// The caller gave up; the attempt-level cancel that surfaced as
		// cause is just its echo.
		s.terminate(ctxErr(s.ctx))
		return false
	}
	if s.ep != "" && endpointFault(cause) {
		s.c.endpoints.fail(s.ep)
	}
	if s.gotMeta && errors.Is(cause, ErrResumeInconsistent) {
		// The replica refused to extend the delivered prefix: its web
		// view diverged from the one that produced it. Splicing would be
		// unsound (see DESIGN.md), so restart from zero instead.
		s.restart()
	} else if !retryable(cause, s.c.endpoints.multi()) {
		s.terminate(cause)
		return false
	}
	s.lastErr = cause
	if err := s.connect(); err != nil {
		s.terminate(err)
		return false
	}
	return true
}

// restart abandons the delivered prefix and rewinds the stream to a
// fresh query: the next dial carries no resume parameters and the whole
// answer is re-fetched. Restarts/Restarted surface this to the caller.
func (s *Stream) restart() {
	s.restarts++
	s.gotMeta = false
	s.meta = Meta{}
	s.lastSeq = 0
}

func (s *Stream) terminate(err error) {
	s.err = err
	s.done = true
	s.closeBody()
}

// connect runs the attempt loop until a live 200 stream is open (with
// the meta event read, on a fresh stream) or the failure is terminal.
// On reconnects it asks the server to resume from lastSeq.
func (s *Stream) connect() error {
	for {
		if s.ctx.Err() != nil {
			return ctxErr(s.ctx)
		}
		if s.attempts >= s.c.maxAttempts {
			return fmt.Errorf("%w: %d attempts, last failure: %w", ErrRetriesExhausted, s.attempts, s.lastErr)
		}
		s.attempts++
		if s.attempts > 1 {
			// The server's Retry-After hint (429 shed classes) stretches
			// the computed backoff when it asks for more patience, never
			// past the backoff ceiling.
			delay := s.c.backoffDelay(s.rid, s.attempts)
			if ra := retryAfterOf(s.lastErr); ra > delay {
				delay = ra
				if delay > s.c.backoffMax {
					delay = s.c.backoffMax
				}
			}
			if err := s.c.sleep(s.ctx, delay); err != nil {
				return err
			}
		}
		err := s.dial()
		if err == nil {
			return nil
		}
		s.lastErr = err
		if s.ctx.Err() != nil {
			return ctxErr(s.ctx)
		}
		if s.ep != "" && endpointFault(err) {
			s.c.endpoints.fail(s.ep)
		}
		if s.gotMeta && errors.Is(err, ErrResumeInconsistent) {
			// This replica cannot extend the prefix another replica
			// delivered; restart from zero rather than fail (a fresh
			// query's 409 stays terminal — only a refused resume
			// reaches here).
			s.restart()
			continue
		}
		if !retryable(err, s.c.endpoints.multi()) {
			return err
		}
	}
}

// dial makes one connection attempt: POST /query (with resume parameters
// when a meta is held), expect a 200 NDJSON stream, and on a fresh stream
// read the meta event. Any non-200 decodes to an *APIError.
func (s *Stream) dial() error {
	req := queryRequest{Query: s.query}
	if s.gotMeta {
		idx := s.lastSeq
		req.LastEventIndex = &idx
		req.ResumeToken = s.meta.ResumeToken
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("%w: encoding request: %v", ErrProtocol, err)
	}

	// Each attempt asks the replica set for its healthiest endpoint and
	// reports the outcome back: failures rotate the next attempt away
	// from a dying replica while its peers keep serving.
	ep := s.c.endpoints.pick()
	if s.ep != "" && ep != s.ep {
		s.failovers++
	}
	s.ep = ep

	// The attempt context must outlive dial — the response body reads
	// under it — so it is stored and canceled by closeBody, not deferred.
	actx, cancel := context.WithCancel(s.ctx)
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, ep+"/query", bytes.NewReader(payload))
	if err != nil {
		cancel()
		return fmt.Errorf("%w: building request: %v", ErrProtocol, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", s.rid)
	hreq.Header.Set("Accept-Encoding", "gzip")
	if s.c.apiKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+s.c.apiKey)
	}

	// The watchdog bounds this attempt's time to first event; it is
	// disarmed by the first successful read (here for a fresh stream's
	// meta, in readLine for a resumed stream's first delivery).
	if s.c.attemptTimeout > 0 {
		s.watchdog = time.AfterFunc(s.c.attemptTimeout, cancel)
	}
	fail := func(err error) error {
		s.stopWatchdog()
		cancel()
		return err
	}

	resp, err := s.c.hc.Do(hreq)
	if err != nil {
		return fail(fmt.Errorf("client: connecting: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return fail(decodeEnvelope(resp))
	}
	// Accept-Encoding was set explicitly, so the transport does not
	// decompress for us; unwrap the stream here. gzip.NewReader reads the
	// archive header, which the server flushes with its first event — a
	// stall here is bounded by the attempt watchdog like any first read.
	var events io.Reader = resp.Body
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			resp.Body.Close()
			return fail(fmt.Errorf("client: opening compressed stream: %w", err))
		}
		events = zr
	}
	s.resp = resp
	s.cancel = cancel
	s.body = bufio.NewReader(events)

	if !s.gotMeta {
		line, err := s.readLine()
		if err != nil {
			s.closeBody()
			return err
		}
		ev, err := parseEvent(line)
		if err != nil {
			s.closeBody()
			return err
		}
		if ev.kind != "meta" {
			s.closeBody()
			return fmt.Errorf("%w: stream opened with %q, want meta", ErrProtocol, ev.kind)
		}
		s.meta = *ev.meta
		s.gotMeta = true
	}
	s.c.endpoints.ok(ep)
	return nil
}

// readLine reads one NDJSON event line. EOF before a terminal event is a
// truncated stream and surfaces as io.ErrUnexpectedEOF (retryable).
func (s *Stream) readLine() ([]byte, error) {
	if s.body == nil {
		return nil, io.ErrUnexpectedEOF
	}
	line, err := s.body.ReadBytes('\n')
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	s.stopWatchdog()
	// With a stall timeout the watchdog re-arms after every event — any
	// event, keepalives included — so only a stream that goes truly
	// silent gets its attempt killed. Without one the first event
	// disarms it for good (the pre-keepalive behavior).
	if s.c.stallTimeout > 0 && s.cancel != nil {
		s.watchdog = time.AfterFunc(s.c.stallTimeout, s.cancel)
	}
	return line, nil
}

func (s *Stream) stopWatchdog() {
	if s.watchdog != nil {
		s.watchdog.Stop()
		s.watchdog = nil
	}
}

func (s *Stream) closeBody() {
	s.stopWatchdog()
	if s.resp != nil {
		s.resp.Body.Close()
		s.resp = nil
	}
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
	s.body = nil
}

// queryRequest is the JSON request body; the resume fields mirror the
// server's Last-Event-Index / X-Resume-Token headers.
type queryRequest struct {
	Query          string `json:"query"`
	LastEventIndex *int   `json:"last_event_index,omitempty"`
	ResumeToken    string `json:"resume_token,omitempty"`
}

// wireError is the server's error payload, both envelope and event form.
type wireError struct {
	Code      string `json:"code"`
	Status    int    `json:"status"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

func (we wireError) api() *APIError {
	return &APIError{Code: we.Code, Status: we.Status, Message: we.Message, RequestID: we.RequestID}
}

// decodeEnvelope turns a non-200 response into its *APIError.
func decodeEnvelope(resp *http.Response) error {
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("client: reading error envelope: %w", err)
	}
	var env struct {
		Error wireError `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
		return fmt.Errorf("%w: status %d with undecodable error envelope %q",
			ErrProtocol, resp.StatusCode, truncate(raw, 200))
	}
	ae := env.Error.api()
	// Retry-After (whole seconds) rides the envelope's headers; the
	// reconnect loop honors it on retryable codes, capped by BackoffMax.
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// event is one parsed NDJSON line.
type event struct {
	kind     string
	meta     *Meta
	delivery webbase.ObjectDelivery
	trailer  *Trailer
	apiErr   *APIError
}

// parseEvent decodes one stream line. Numbers inside tuples decode via
// json.Number so integer values stay integers.
func parseEvent(line []byte) (event, error) {
	var probe struct {
		Event string `json:"event"`
	}
	if err := json.Unmarshal(line, &probe); err != nil || probe.Event == "" {
		return event{}, fmt.Errorf("%w: undecodable event line %q", ErrProtocol, truncate(line, 200))
	}
	switch probe.Event {
	case "meta":
		var ev struct {
			RequestID   string   `json:"request_id"`
			Query       string   `json:"query"`
			Schema      []string `json:"schema"`
			ResumeToken string   `json:"resume_token"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return event{}, fmt.Errorf("%w: meta: %v", ErrProtocol, err)
		}
		return event{kind: "meta", meta: &Meta{
			RequestID: ev.RequestID, Query: ev.Query, Schema: ev.Schema, ResumeToken: ev.ResumeToken,
		}}, nil
	case "tuples":
		var ev struct {
			Seq      int      `json:"seq"`
			Index    int      `json:"index"`
			Object   []string `json:"object"`
			Buffered bool     `json:"buffered"`
			Tuples   [][]any  `json:"tuples"`
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&ev); err != nil {
			return event{}, fmt.Errorf("%w: tuples: %v", ErrProtocol, err)
		}
		tuples, err := decodeTuples(ev.Tuples)
		if err != nil {
			return event{}, err
		}
		return event{kind: "tuples", delivery: webbase.ObjectDelivery{
			Seq: ev.Seq, Index: ev.Index, Object: ev.Object, Buffered: ev.Buffered, Tuples: tuples,
		}}, nil
	case "unavailable":
		var ev struct {
			Seq     int                 `json:"seq"`
			Index   int                 `json:"index"`
			Object  []string            `json:"object"`
			Failure webbase.SiteFailure `json:"failure"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return event{}, fmt.Errorf("%w: unavailable: %v", ErrProtocol, err)
		}
		return event{kind: "unavailable", delivery: webbase.ObjectDelivery{
			Seq: ev.Seq, Index: ev.Index, Object: ev.Object, Failure: &ev.Failure,
		}}, nil
	case "skipped":
		var ev struct {
			Seq    int      `json:"seq"`
			Index  int      `json:"index"`
			Object []string `json:"object"`
			Reason string   `json:"reason"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return event{}, fmt.Errorf("%w: skipped: %v", ErrProtocol, err)
		}
		return event{kind: "skipped", delivery: webbase.ObjectDelivery{
			Seq: ev.Seq, Index: ev.Index, Object: ev.Object, Skipped: ev.Reason,
		}}, nil
	case "trailer":
		var ev struct {
			Tuples      int                 `json:"tuples"`
			Objects     int                 `json:"objects"`
			Skipped     []string            `json:"skipped"`
			Degradation *TrailerDegradation `json:"degradation"`
			Stats       *webbase.QueryStats `json:"stats"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return event{}, fmt.Errorf("%w: trailer: %v", ErrProtocol, err)
		}
		return event{kind: "trailer", trailer: &Trailer{
			Tuples: ev.Tuples, Objects: ev.Objects, Skipped: ev.Skipped,
			Degradation: ev.Degradation, Stats: ev.Stats,
		}}, nil
	case "keepalive":
		// Liveness probe: no seq, no payload worth decoding.
		return event{kind: "keepalive"}, nil
	case "error":
		var ev struct {
			Error wireError `json:"error"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return event{}, fmt.Errorf("%w: error event: %v", ErrProtocol, err)
		}
		return event{kind: "error", apiErr: ev.Error.api()}, nil
	default:
		return event{kind: probe.Event}, nil
	}
}

// decodeTuples converts wire tuples (JSON arrays of null/string/number/
// bool) back into relation tuples. Numeric kinds normalize over the wire:
// a float with an integral value (5.0) encodes as "5" and decodes as an
// Int — the JSON number grammar carries no float/int distinction for
// integral values.
func decodeTuples(rows [][]any) ([]relation.Tuple, error) {
	out := make([]relation.Tuple, len(rows))
	for i, row := range rows {
		t := make(relation.Tuple, len(row))
		for j, v := range row {
			switch x := v.(type) {
			case nil:
				t[j] = relation.Null()
			case string:
				t[j] = relation.String(x)
			case bool:
				t[j] = relation.Bool(x)
			case json.Number:
				if n, err := x.Int64(); err == nil && !strings.ContainsAny(x.String(), ".eE") {
					t[j] = relation.Int(n)
				} else {
					f, err := x.Float64()
					if err != nil {
						return nil, fmt.Errorf("%w: bad number %q in tuple", ErrProtocol, x.String())
					}
					t[j] = relation.Float(f)
				}
			default:
				return nil, fmt.Errorf("%w: unexpected tuple value of type %T", ErrProtocol, v)
			}
		}
		out[i] = t
	}
	return out, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
