// Command webbased serves a webbase as a networked query service: the
// simulated Web and the three-layer system in one process, drivable
// with curl.
//
// Usage:
//
//	webbased                                # open server on :8080
//	webbased -addr :9090 -domain apartments
//	webbased -tenant alice:alicekey:interactive:100:1m \
//	         -tenant bob:bobkey:batch:20:1m # per-tenant keys, classes, quotas
//	webbased -failevery 3 -retries 2        # chaos: serve through a flaky Web
//	webbased -max-inflight 8 -queue-depth 8 -deadline 500ms   # overload protection
//
// Then:
//
//	curl -N -d "SELECT Make, Model, Price WHERE Make = 'jaguar' AND Price < BBPrice AND Condition = 'good'" localhost:8080/query
//	curl -N -H "Authorization: Bearer alicekey" -d '{"query":"SELECT Make, Price WHERE Make = '\''saab'\''"}' localhost:8080/query
//	curl localhost:8080/metrics
//	curl localhost:8080/healthz
//
// POST /query streams the answer as NDJSON: a meta event, one event per
// maximal object as it completes (tuples, or why the object is
// missing), and a trailer with the query's stats and degradation
// report. Errors come back as JSON envelopes with accurate status codes
// (400 unparsable, 401 unknown key, 429 shed or over quota, 502 site
// outage in strict mode, 504 deadline exhausted).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"webbase"
	"webbase/internal/core"
	"webbase/internal/server"
)

// tenantFlags collects repeated -tenant
// name:key[:class[:quota[:window[:maxconc]]]] values.
type tenantFlags []server.Tenant

func (t *tenantFlags) String() string { return fmt.Sprintf("%d tenant(s)", len(*t)) }

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 6 {
		return fmt.Errorf("want name:key[:class[:quota[:window[:maxconc]]]], got %q", v)
	}
	tn := server.Tenant{Name: parts[0], Key: parts[1]}
	if len(parts) > 2 {
		switch parts[2] {
		case "interactive", "":
			tn.Class = core.ClassInteractive
		case "batch":
			tn.Class = core.ClassBatch
		default:
			return fmt.Errorf("unknown class %q (interactive or batch)", parts[2])
		}
	}
	if len(parts) > 3 && parts[3] != "" {
		q, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil || q < 0 {
			return fmt.Errorf("bad quota %q", parts[3])
		}
		tn.Quota = q
	}
	if len(parts) > 4 && parts[4] != "" {
		w, err := time.ParseDuration(parts[4])
		if err != nil {
			return fmt.Errorf("bad window %q: %v", parts[4], err)
		}
		tn.Window = w
	}
	if len(parts) > 5 && parts[5] != "" {
		mc, err := strconv.ParseInt(parts[5], 10, 64)
		if err != nil || mc < 0 {
			return fmt.Errorf("bad maxconc %q", parts[5])
		}
		tn.MaxConcurrent = mc
	}
	*t = append(*t, tn)
	return nil
}

func main() {
	var tenants tenantFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		domain      = flag.String("domain", "usedcars", "application domain: usedcars or apartments")
		workers     = flag.Int("workers", 0, "parallel evaluation width (0 = GOMAXPROCS, 1 = sequential)")
		retries     = flag.Int("retries", 0, "retry failed page fetches this many additional times")
		failEvery   = flag.Uint64("failevery", 0, "chaos: deterministically fail roughly every n-th fetch attempt (0 = off)")
		withLatency = flag.Bool("latency", false, "simulate network latency (sleeping)")
		strict      = flag.Bool("strict", false, "fail whole queries on any site outage instead of degrading")
		deadline    = flag.Duration("deadline", 0, "per-maximal-object time budget (0 = none)")
		maxInflight = flag.Int("max-inflight", 0, "admission control: max concurrently executing queries (0 = unlimited)")
		queueDepth  = flag.Int("queue-depth", 0, "admission control: bounded FIFO wait queue behind -max-inflight")
		allowStale  = flag.Bool("allow-stale", false, "serve expired cached pages when a site is unreachable")
		cacheMaxAge = flag.Duration("cache-maxage", 0, "cached pages older than this no longer count as fresh (0 = never expire)")
		driftThr    = flag.Int("drift-threshold", 0, "drift reports that confirm a site redesign (0 = default 2)")
		maxBody     = flag.Int64("max-body", 0, "request body size bound in bytes (0 = default 1MiB)")
		pruneOn     = flag.Bool("prune", false, "skip page fetches that cannot contribute answer tuples (access-relevance pruning)")
		stateDir    = flag.String("state-dir", "", "durable state directory: persist warmed pages, repaired maps and breaker/health verdicts across restarts (empty = no persistence)")
		stateMax    = flag.Int64("state-max-bytes", 0, "size bound for the durable page tier; least-recently-used pages are evicted past it (0 = unbounded)")
		recoveryBkf = flag.Duration("recovery-backoff", 0, "re-probe repair-exhausted quarantined sites in the background, starting at this interval and doubling (0 = off)")
		keepalive   = flag.Duration("keepalive", 0, "emit a seq-less keepalive event on idle streams at this interval so clients can detect stalls (0 = off; off keeps stream bytes identical to older servers)")
	)
	flag.Var(&tenants, "tenant", "tenant spec name:key[:class[:quota[:window[:maxconc]]]]; repeatable. Empty = open server")
	flag.Parse()

	logger := log.New(os.Stderr, "webbased ", log.LstdFlags)

	cfg := webbase.Config{
		Workers:         *workers,
		Retries:         *retries,
		Strict:          *strict,
		Deadline:        *deadline,
		MaxInFlight:     *maxInflight,
		QueueDepth:      *queueDepth,
		AllowStale:      *allowStale,
		CacheMaxAge:     *cacheMaxAge,
		DriftThreshold:  *driftThr,
		Prune:           *pruneOn,
		StateDir:        *stateDir,
		StateMaxBytes:   *stateMax,
		RecoveryBackoff: *recoveryBkf,
	}
	if *withLatency {
		cfg.Latency = webbase.DefaultLatency
		cfg.Latency.Sleep = true
	}
	chaos := func(f webbase.Fetcher) webbase.Fetcher {
		if *failEvery > 0 {
			return &webbase.Flaky{Inner: f, FailEvery: *failEvery}
		}
		return f
	}
	var (
		sys *webbase.System
		err error
	)
	switch *domain {
	case "usedcars":
		cfg.Fetcher = chaos(webbase.NewSimulatedWorld().Server)
		sys, err = webbase.New(cfg)
	case "apartments":
		cfg.Fetcher = chaos(webbase.NewApartmentWorld().Server)
		sys, err = webbase.NewApartments(cfg)
	default:
		err = fmt.Errorf("unknown domain %q (usedcars or apartments)", *domain)
	}
	if err != nil {
		logger.Fatal(err)
	}

	srv, err := server.New(server.Config{
		System:            sys,
		Tenants:           tenants,
		Logger:            logger,
		MaxBodyBytes:      *maxBody,
		KeepaliveInterval: *keepalive,
	})
	if err != nil {
		logger.Fatal(err)
	}

	// Listen before announcing so -addr :0 logs the port the kernel
	// actually assigned — the fleet harness boots replicas on port 0 and
	// scrapes the address from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Graceful shutdown is two phases in strict order: drain in-flight
	// streams (Shutdown), then flush dirty durable state (Close) —
	// flushing first would miss breaker/health transitions and page fills
	// from the queries still draining. main waits on done so the process
	// cannot exit between the two.
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Println("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		sys.Close()
		if *stateDir != "" {
			logger.Printf("state flushed to %s", *stateDir)
		}
	}()
	logger.Printf("serving %s domain on %s (tenants: %s)", *domain, ln.Addr().String(), tenants.String())
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	<-done
}
