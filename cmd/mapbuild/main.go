// Command mapbuild demonstrates mapping by example (Section 7): it replays
// the recorded browsing sessions against the simulated Web, builds each
// site's navigation map, prints the automation statistics, and can export
// a map as text or Graphviz DOT.
//
// Usage:
//
//	mapbuild                  # map every site, print the stats table
//	mapbuild -site newsday    # print the newsday map
//	mapbuild -site newsday -dot > newsday.dot
//	mapbuild -check           # verify every map against the (unchanged) sites
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"webbase/internal/carmaps"
	"webbase/internal/core"
	"webbase/internal/mapbuilder"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/sites"
)

func main() {
	var (
		site  = flag.String("site", "", "print the named site's built map instead of the stats table")
		dot   = flag.Bool("dot", false, "with -site: emit Graphviz DOT")
		expr  = flag.Bool("expr", false, "with -site: also print the derived navigation expression")
		check = flag.Bool("check", false, "re-crawl every map against the sites and report drift")
		save  = flag.String("save", "", "directory to save every built map as <relation>.json")
		load  = flag.String("load", "", "load a saved map file and print it (with -expr: its expression)")
	)
	flag.Parse()

	world := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: world.Server}

	if *check {
		runCheck(b)
		return
	}
	if *load != "" {
		runLoad(*load, *expr)
		return
	}
	if *save != "" {
		runSave(b, world, *save)
		return
	}
	if *site == "" {
		stats, err := core.MapStats(world.Server)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Mapping by example — automation statistics per site:")
		for _, s := range stats {
			fmt.Println("  " + s.String())
		}
		return
	}

	m := findMap(b, world, *site)
	if m == nil {
		fatal(fmt.Errorf("no session for site %q", *site))
	}
	if *dot {
		fmt.Print(m.DOT())
		return
	}
	fmt.Print(m)
	if *expr {
		e, err := navmap.Translate(m)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nDerived navigation expression (textual syntax):")
		fmt.Print(navcalc.FormatExpression(e))
	}
}

func findMap(b *mapbuilder.Builder, world *sites.World, name string) *navmap.Map {
	featURL, err := sampleURL(world)
	if err != nil {
		fatal(err)
	}
	for _, s := range carmaps.Sessions(featURL) {
		if s.Relation == name {
			m, _, err := b.Build(s)
			if err != nil {
				fatal(err)
			}
			return m
		}
	}
	return nil
}

func sampleURL(world *sites.World) (string, error) {
	expr, err := navmap.Translate(carmaps.Newsday())
	if err != nil {
		return "", err
	}
	rel, _, err := expr.Execute(world.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil || rel.Len() == 0 {
		return "", fmt.Errorf("sampling features url: %v", err)
	}
	u, _ := rel.Get(rel.Tuples()[0], "Url")
	return u.Str(), nil
}

func runCheck(b *mapbuilder.Builder) {
	inputs := map[string]string{
		"Make": "ford", "Model": "escort", "Condition": "good",
		"ZipCode": "11201", "Duration": "36", "Year": "1994",
	}
	clean := true
	for name, m := range carmaps.AllMaps() {
		if m.StartURLVar != "" {
			continue // entered via query-time URL; nothing to re-crawl from
		}
		drifts, err := b.CheckMap(m, inputs)
		if err != nil {
			fmt.Printf("%-20s ERROR: %v\n", name, err)
			clean = false
			continue
		}
		if len(drifts) == 0 {
			fmt.Printf("%-20s ok\n", name)
			continue
		}
		clean = false
		for _, d := range drifts {
			fmt.Printf("%-20s DRIFT: %s\n", name, d)
		}
	}
	if !clean {
		os.Exit(1)
	}
}

// runSave builds every session map and writes the JSON persistence form.
func runSave(b *mapbuilder.Builder, world *sites.World, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	featURL, err := sampleURL(world)
	if err != nil {
		fatal(err)
	}
	for _, s := range carmaps.Sessions(featURL) {
		m, _, err := b.Build(s)
		if err != nil {
			fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, m.Name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("saved", path)
	}
}

// runLoad reads a saved map and prints it.
func runLoad(path string, withExpr bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var m navmap.Map
	if err := json.Unmarshal(data, &m); err != nil {
		fatal(err)
	}
	fmt.Print(&m)
	if withExpr {
		e, err := navmap.Translate(&m)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nDerived navigation expression (textual syntax):")
		fmt.Print(navcalc.FormatExpression(e))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapbuild:", err)
	os.Exit(1)
}
