// Command webbase runs ad hoc universal-relation queries against the
// simulated car-shopping Web.
//
// Usage:
//
//	webbase [-plan] [-stats] [-latency] "SELECT Make, Price WHERE Make = 'jaguar' AND Price < BBPrice AND Condition = 'good'"
//	webbase -attrs            # list the universal relation's attributes
//	webbase -objects          # list the maximal objects
//	webbase -explain-analyze "SELECT ..."   # run and print actual per-operator costs
//	webbase -trace out.json  "SELECT ..."   # run and export the span tree as JSON
//	webbase -metrics         "SELECT ..."   # print the metrics snapshot afterwards
//	webbase -failevery 3 -retries 2 "SELECT ..."       # chaos: survive a flaky Web
//	webbase -failevery 3 -strict    "SELECT ..."       # ... or fail fast instead
//	webbase -breaker-threshold 0.5 -allow-stale "SELECT ..."   # breaker + stale-on-error
//	webbase -max-inflight 8 -queue-depth 8 -deadline 500ms -hedge-after 50ms "SELECT ..."   # overload protection
//	webbase -prune -stats    "SELECT ... LIMIT 3"      # skip fetches that cannot contribute answers
//
// The query language is the structured universal relation interface of
// Section 6: name output attributes, constrain others; the system figures
// out which sites to navigate and in what order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"webbase"
)

func main() {
	var (
		showPlan    = flag.Bool("plan", false, "print the query plan (maximal objects and covers)")
		explain     = flag.Bool("explain", false, "explain the query (plan, bindings, handles) without fetching, then exit")
		showStats   = flag.Bool("stats", false, "print fetch statistics")
		withLatency = flag.Bool("latency", false, "simulate network latency (sleeping)")
		listAttrs   = flag.Bool("attrs", false, "list the universal relation's attributes and exit")
		listObjects = flag.Bool("objects", false, "list the maximal objects and exit")
		domain      = flag.String("domain", "usedcars", "application domain: usedcars or apartments")
		workers     = flag.Int("workers", 0, "parallel evaluation width (0 = GOMAXPROCS, 1 = sequential)")
		hostLimit   = flag.Int("hostlimit", 0, "max concurrent fetches per site (0 = default, negative = unlimited)")
		timeout     = flag.Duration("timeout", 0, "abort the query after this long (0 = no deadline)")
		analyze     = flag.Bool("explain-analyze", false, "run the query and print the plan annotated with actual per-operator costs")
		traceFile   = flag.String("trace", "", "run the query traced and write the span tree as JSON to this file")
		showMetrics = flag.Bool("metrics", false, "print the webbase metrics snapshot after the query")
		retries     = flag.Int("retries", 0, "retry failed page fetches this many additional times")
		failEvery   = flag.Uint64("failevery", 0, "chaos: deterministically fail roughly every n-th fetch attempt (0 = off)")
		breakerThr  = flag.Float64("breaker-threshold", 0, "per-host circuit-breaker failure-rate threshold in (0,1]; 0 disables the breaker")
		allowStale  = flag.Bool("allow-stale", false, "serve expired cached pages when a site is unreachable (stale-on-error)")
		cacheMaxAge = flag.Duration("cache-maxage", 0, "cached pages older than this no longer count as fresh (0 = never expire)")
		strict      = flag.Bool("strict", false, "fail the whole query on any site outage instead of degrading to the surviving maximal objects")
		deadline    = flag.Duration("deadline", 0, "per-maximal-object time budget; objects over budget degrade out of the answer (0 = none)")
		maxInflight = flag.Int("max-inflight", 0, "admission control: max concurrently executing queries (0 = unlimited)")
		queueDepth  = flag.Int("queue-depth", 0, "admission control: bounded FIFO wait queue behind -max-inflight; excess queries shed immediately")
		hedgeAfter  = flag.Duration("hedge-after", 0, "issue a second attempt for any fetch still unanswered after this delay (0 = off)")
		hostQueue   = flag.Int("host-queue", 0, "per-host bulkhead wait-queue bound; fetches beyond it are shed (0 = unbounded)")
		hedgeBudget = flag.Int64("hedge-budget", 0, "max hedged (duplicate) fetch attempts per query (0 = unlimited)")
		queryClass  = flag.String("query-class", "interactive", "admission class: interactive (shed last) or batch (shed first)")
		driftThr    = flag.Int("drift-threshold", 0, "drift reports that confirm a site redesign and quarantine the site (0 = default 2)")
		maxRepairs  = flag.Int("max-repair-attempts", 0, "background remap attempts per quarantined site (0 = default 3)")
		repairWait  = flag.Duration("repair-backoff", 0, "wait before the second remap attempt, doubling per attempt (0 = default 100ms)")
		pruneOn     = flag.Bool("prune", false, "skip page fetches that cannot contribute answer tuples (access-relevance pruning)")
	)
	flag.Parse()

	var cfg webbase.Config
	if *withLatency {
		cfg.Latency = webbase.DefaultLatency
		cfg.Latency.Sleep = true
	}
	cfg.Workers = *workers
	cfg.HostLimit = *hostLimit
	cfg.Retries = *retries
	cfg.AllowStale = *allowStale
	cfg.CacheMaxAge = *cacheMaxAge
	cfg.Strict = *strict
	cfg.Deadline = *deadline
	cfg.MaxInFlight = *maxInflight
	cfg.QueueDepth = *queueDepth
	cfg.HedgeAfter = *hedgeAfter
	cfg.HostQueue = *hostQueue
	cfg.HedgeBudget = *hedgeBudget
	cfg.DriftThreshold = *driftThr
	cfg.MaxRepairAttempts = *maxRepairs
	cfg.RepairBackoff = *repairWait
	cfg.Prune = *pruneOn
	switch *queryClass {
	case "interactive":
		cfg.QueryClass = webbase.ClassInteractive
	case "batch":
		cfg.QueryClass = webbase.ClassBatch
	default:
		fatal(fmt.Errorf("unknown -query-class %q (interactive or batch)", *queryClass))
	}
	if *breakerThr > 0 {
		cfg.Breaker = &webbase.BreakerConfig{FailureRatio: *breakerThr}
	}
	chaos := func(f webbase.Fetcher) webbase.Fetcher {
		if *failEvery > 0 {
			return &webbase.Flaky{Inner: f, FailEvery: *failEvery}
		}
		return f
	}
	var (
		sys *webbase.System
		err error
	)
	switch *domain {
	case "usedcars":
		cfg.Fetcher = chaos(webbase.NewSimulatedWorld().Server)
		sys, err = webbase.New(cfg)
	case "apartments":
		cfg.Fetcher = chaos(webbase.NewApartmentWorld().Server)
		sys, err = webbase.NewApartments(cfg)
	default:
		err = fmt.Errorf("unknown domain %q (usedcars or apartments)", *domain)
	}
	if err != nil {
		fatal(err)
	}

	switch {
	case *listAttrs:
		fmt.Println("UsedCarUR attributes:")
		for _, a := range sys.UR.Hierarchy.AllAttrs() {
			fmt.Println("  " + a)
		}
		return
	case *listObjects:
		fmt.Println("Maximal objects:")
		for _, o := range sys.UR.MaximalObjects() {
			fmt.Println("  " + strings.Join(o, " ⋈ "))
		}
		return
	}

	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		fmt.Fprintln(os.Stderr, "usage: webbase [flags] \"SELECT attrs WHERE conditions\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	parsed, err := webbase.ParseQuery(sys, query)
	if err != nil {
		fatal(err)
	}
	if *explain {
		out, err := sys.Explain(parsed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *analyze {
		out, err := sys.ExplainAnalyzeContext(ctx, parsed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if *showMetrics {
			fmt.Print(sys.Metrics().Snapshot())
		}
		return
	}
	var (
		res   *webbase.Result
		stats *webbase.QueryStats
		tr    *webbase.Trace
	)
	if *traceFile != "" {
		res, stats, tr, err = sys.QueryTraced(ctx, parsed)
	} else {
		res, stats, err = sys.QueryContext(ctx, parsed)
	}
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		data, err := tr.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceFile, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "webbase: trace written to %s\n", *traceFile)
	}
	if *showPlan {
		fmt.Println(res.Plan)
	}
	out := res.Relation
	if len(parsed.OrderBy) == 0 {
		out = out.SortBy(out.Schema()...) // stable default presentation
	}
	fmt.Print(out)
	fmt.Printf("(%d answers)\n", res.Relation.Len())
	for _, s := range res.Skipped {
		fmt.Printf("note: skipped %s\n", s)
	}
	if res.Degradation != nil {
		fmt.Print("note: partial answer — ", res.Degradation)
	}
	if *showStats {
		fmt.Println(stats)
	}
	if *showMetrics {
		fmt.Print(sys.Metrics().Snapshot())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "webbase:", err)
	os.Exit(1)
}
