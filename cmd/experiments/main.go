// Command experiments regenerates every table and figure of the paper's
// evaluation against the simulated Web. Run without flags to produce the
// full report (the content of EXPERIMENTS.md's measured columns), or
// select one artifact:
//
//	experiments -table 1|2|3|mapstats|timings|parallel|split
//	experiments -figure 2|3|4|5
//	experiments -example 6.2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"webbase/internal/core"
	"webbase/internal/sites"
	"webbase/internal/web"
)

func main() {
	var (
		table   = flag.String("table", "", "regenerate one table: 1, 2, 3, mapstats, timings, parallel, scaled, split")
		figure  = flag.String("figure", "", "regenerate one figure: 2, 3, 4, 5")
		example = flag.String("example", "", "regenerate one example: 6.2")
	)
	flag.Parse()

	world := sites.BuildWorld()
	wb, err := core.New(core.Config{Fetcher: world.Server})
	if err != nil {
		fatal(err)
	}

	selected := *table + *figure + *example
	emit := func(name string, fn func() (string, error)) {
		out, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(out)
	}

	run := map[string]func() (string, error){
		"table1":     func() (string, error) { return wb.Table1(), nil },
		"table2":     func() (string, error) { return wb.Table2(), nil },
		"table3":     func() (string, error) { return wb.Table3(), nil },
		"figure2":    func() (string, error) { t, d := core.Figure2(); return t + "\n" + d, nil },
		"figure3":    func() (string, error) { return core.Figure3(), nil },
		"figure4":    core.Figure4,
		"figure5":    func() (string, error) { return wb.Figure5(), nil },
		"example6.2": core.Example62,
		"tablemapstats": func() (string, error) {
			stats, err := core.MapStats(world.Server)
			if err != nil {
				return "", err
			}
			out := "Section 7: mapping-by-example automation statistics\n"
			for _, s := range stats {
				out += "  " + s.String() + "\n"
			}
			return out, nil
		},
		"tabletimings": func() (string, error) {
			rows, err := core.SiteTimings(world.Server, core.DefaultLatency)
			if err != nil {
				return "", err
			}
			return core.FormatSiteTimings(rows), nil
		},
		"tableparallel": func() (string, error) {
			rows, err := core.ParallelSweep(world.Server, parallelModel(), []int{1, 2, 4, 8, 10})
			if err != nil {
				return "", err
			}
			return core.FormatParallelSweep(rows), nil
		},
		"tablescaled": func() (string, error) {
			model := web.LatencyModel{PerRequest: 2 * time.Millisecond}
			out := "Site-count scaling of parallel evaluation (2ms/page, sleeping)\n"
			out += fmt.Sprintf("  %-8s %-8s %12s\n", "sites", "workers", "elapsed")
			for _, n := range []int{10, 25, 50} {
				rows, err := core.ScaledSweep(n, model, []int{1, 16})
				if err != nil {
					return "", err
				}
				for _, r := range rows {
					out += fmt.Sprintf("  %-8d %-8d %12v\n", r.Sites, r.Workers, r.Elapsed.Round(time.Millisecond))
				}
			}
			return out, nil
		},
		"tablesplit": func() (string, error) {
			ts, err := core.MeasureTimeSplit(world.Server, core.DefaultLatency)
			if err != nil {
				return "", err
			}
			return "Section 7: time split of the newsday ford/escort navigation\n  " + ts.String(), nil
		},
	}

	if selected == "" {
		// Full report in paper order.
		for _, name := range []string{
			"table1", "table2", "table3",
			"figure2", "figure3", "figure4", "figure5",
			"example6.2",
			"tablemapstats", "tabletimings", "tableparallel", "tablescaled", "tablesplit",
		} {
			emit(name, run[name])
		}
		return
	}
	var key string
	switch {
	case *table != "":
		key = "table" + *table
	case *figure != "":
		key = "figure" + *figure
	case *example != "":
		key = "example" + *example
	}
	fn, ok := run[key]
	if !ok {
		fatal(fmt.Errorf("unknown artifact %q", key))
	}
	emit(key, fn)
}

// parallelModel returns the sleeping latency model for the parallel sweep.
func parallelModel() web.LatencyModel {
	m := core.DefaultLatency
	m.Sleep = true
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
