// Benchmarks regenerating every quantitative artifact of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark notes
// the experiment id from DESIGN.md's per-experiment index.
package webbase_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase"
	"webbase/internal/algebra"
	"webbase/internal/carmaps"
	"webbase/internal/core"
	"webbase/internal/htmlkit"
	"webbase/internal/mapbuilder"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/ur"
	"webbase/internal/vps"
	"webbase/internal/web"
)

// T1 — Table 1: populating every VPS relation once (navigation +
// extraction cost per relation).
func BenchmarkTable1VPSPopulate(b *testing.B) {
	world := sites.BuildWorld()
	reg, err := vps.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	for _, ri := range reg.Relations() {
		name := ri.Name
		if name == "newsdayCarFeatures" {
			continue // needs a live Url; covered in the newsday bench path
		}
		b.Run(name, func(b *testing.B) {
			inputs := core.TimingQueryInputs(name)
			for i := 0; i < b.N; i++ {
				if _, _, err := reg.Populate(world.Server, name, inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// S7b — the Section 7 timing table: per-site evaluation of
// SELECT make, model, year, price WHERE make=ford AND model=escort.
// b.ReportMetric carries the pages-navigated column.
func BenchmarkTableSiteTimings(b *testing.B) {
	world := sites.BuildWorld()
	reg, err := vps.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range core.TimingTableRelations {
		name := name
		b.Run(name, func(b *testing.B) {
			inputs := core.TimingQueryInputs(name)
			var pages int64
			for i := 0; i < b.N; i++ {
				stats := &web.Stats{}
				f := web.Counting(world.Server, stats)
				if _, _, err := reg.Populate(f, name, inputs); err != nil {
					b.Fatal(err)
				}
				pages = stats.Pages()
			}
			b.ReportMetric(float64(pages), "pages")
		})
	}
}

// S7a — Section 7 map-builder statistics: replaying all mapping-by-example
// sessions. Metrics carry the Newsday objects/attributes counts.
func BenchmarkMapBuilder(b *testing.B) {
	world := sites.BuildWorld()
	builder := &mapbuilder.Builder{Fetcher: world.Server}
	var newsdayObjects, newsdayAttrs, manualPct float64
	for i := 0; i < b.N; i++ {
		stats, err := core.MapStats(world.Server)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range stats {
			if s.Site == "newsday" {
				newsdayObjects = float64(s.Objects)
				newsdayAttrs = float64(s.Attributes)
				manualPct = 100 * s.ManualRatio()
			}
		}
	}
	_ = builder
	b.ReportMetric(newsdayObjects, "newsday-objects")
	b.ReportMetric(newsdayAttrs, "newsday-attrs")
	b.ReportMetric(manualPct, "manual-%")
}

// S7c — parallelization: all ten timing-table sites under a sleeping
// network model, swept over worker counts. Elapsed time is the metric;
// the paper's conclusion is the 1→10 worker drop.
func BenchmarkParallelEvaluation(b *testing.B) {
	world := sites.BuildWorld()
	model := web.LatencyModel{PerRequest: 2 * time.Millisecond, Sleep: true}
	for _, workers := range []int{1, 2, 4, 8, 10} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ParallelSweep(world.Server, model, []int{workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// S7c extension — site-count scaling: the parallel sweep over generated
// homogeneous dealer fleets, past the paper's ten sites.
func BenchmarkScaledSweep(b *testing.B) {
	model := web.LatencyModel{PerRequest: 2 * time.Millisecond}
	for _, n := range []int{10, 25, 50} {
		for _, workers := range []int{1, 16} {
			b.Run(fmt.Sprintf("sites=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ScaledSweep(n, model, []int{workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// A3 — caching ablation: the same query cold (every page fetched) vs warm
// (every page from cache).
func BenchmarkCacheEffect(b *testing.B) {
	world := sites.BuildWorld()
	query := "SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'"

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := sys.QueryString(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sys.QueryString(query); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.QueryString(query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// S7c at the query level — one end-to-end query, sequential (Workers=1)
// vs parallel: union branches, dependent-join handle invocations and
// maximal objects all fan out under the sleeping latency model. A fresh
// webbase per iteration keeps the cache cold, so every fetch pays the
// modeled network; metrics carry the fetches the singleflight saved and
// how wide the fetch stack actually ran.
func BenchmarkQuerySequentialVsParallel(b *testing.B) {
	world := sites.BuildWorld()
	model := web.LatencyModel{PerRequest: 2 * time.Millisecond, Sleep: true}
	queries := []struct{ name, q string }{
		// Eight ad sites fan out wide; the Workers=4 run comes in well
		// over 2x faster than sequential.
		{"wide", "SELECT Make, Model, Year, Price, Safety WHERE Make = 'honda' AND Model = 'civic'"},
		// Both maximal objects race to the same kellys form submissions;
		// the singleflight absorbs the duplicates (deduped-fetches), at
		// the cost of a longer sequential tail behind the dependent join.
		{"bbprice", "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'ford' AND Model = 'escort' AND Condition = 'good'"},
	}
	for _, q := range queries {
		for _, workers := range []int{1, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers=%d", q.name, workers), func(b *testing.B) {
				var deduped, peak float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sys, err := webbase.New(webbase.Config{Fetcher: world.Server, Latency: model, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					_, stats, err := sys.QueryString(q.q)
					if err != nil {
						b.Fatal(err)
					}
					deduped = float64(stats.Deduped)
					peak = float64(stats.PeakInFlight)
				}
				b.ReportMetric(deduped, "deduped-fetches")
				b.ReportMetric(peak, "peak-inflight")
			})
		}
	}
}

// S7d — fetch vs parse split: parsing throughput over the actual site
// corpus, the cost Section 7 singles out next to fetching.
func BenchmarkParseVsFetch(b *testing.B) {
	world := sites.BuildWorld()
	// Collect a corpus: every page of a full newsday navigation.
	var bodies [][]byte
	recorder := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		resp, err := world.Server.Fetch(req)
		if err == nil {
			bodies = append(bodies, resp.Body)
		}
		return resp, err
	})
	expr, err := navmap.Translate(carmaps.Newsday())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := expr.Execute(recorder, map[string]string{"Make": "ford"}); err != nil {
		b.Fatal(err)
	}
	var total int
	for _, body := range bodies {
		total += len(body)
	}

	b.Run("fetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := expr.Execute(world.Server, map[string]string{"Make": "ford"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		b.SetBytes(int64(total))
		for i := 0; i < b.N; i++ {
			for _, body := range bodies {
				htmlkit.Parse(body)
			}
		}
	})
}

// A1 — join ordering ablation: the complete greedy closure vs the
// exhaustive min-cost planner over growing join chains
// R1(A1) ⋈ R2(A1→A2) ⋈ ... where each Ri's binding needs its
// predecessor's attribute.
func BenchmarkJoinOrdering(b *testing.B) {
	buildChain := func(n int) []algebra.Operand {
		ops := make([]algebra.Operand, n)
		for i := 0; i < n; i++ {
			ops[i] = algebra.Operand{
				Name:     fmt.Sprintf("r%d", i),
				Schema:   relation.NewSchema(fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1)),
				Bindings: []relation.AttrSet{relation.NewAttrSet(fmt.Sprintf("A%d", i))},
			}
		}
		// Reverse so the planner has to discover the chain order.
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			ops[i], ops[j] = ops[j], ops[i]
		}
		return ops
	}
	for _, n := range []int{4, 8, 12, 16} {
		ops := buildChain(n)
		bound := relation.NewAttrSet("A0")
		b.Run(fmt.Sprintf("greedy/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.GreedyOrder(ops, bound); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n <= 16 {
			b.Run(fmt.Sprintf("mincost/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := algebra.MinCostOrder(ops, bound, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// A2 — linear-time map→expression translation: translation time against
// map size (a chain of n pages ending in a data node).
func BenchmarkTranslateLinear(b *testing.B) {
	buildMap := func(n int) *navmap.Map {
		m := navmap.New("chain", "http://x/", relation.NewSchema("A"))
		for i := 0; i < n; i++ {
			id := navmap.NodeID(fmt.Sprintf("n%d", i))
			node := &navmap.Node{ID: id}
			if i == n-1 {
				node.IsData = true
				node.Extract = navcalc.ExtractSpec{Columns: []navcalc.Column{{Header: "A", Attr: "A"}}}
			}
			m.AddNode(node)
			if i > 0 {
				m.AddEdge(navmap.NodeID(fmt.Sprintf("n%d", i-1)),
					navmap.Action{Kind: navmap.ActFollowLink, LinkName: fmt.Sprintf("l%d", i)}, id)
			}
		}
		return m
	}
	for _, n := range []int{10, 100, 1000} {
		m := buildMap(n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := navmap.Translate(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A4 — faulty-HTML recovery: lenient parsing throughput on well-formed vs
// deliberately malformed markup.
func BenchmarkLenientParse(b *testing.B) {
	clean := []byte(strings.Repeat(
		`<tr><td>ford</td><td>escort</td><td>1994</td><td>$3,000</td></tr>`, 200))
	sloppy := []byte(strings.Repeat(
		`<TR><td>ford<td>escort<td>1994<td>$3,000 &amp junk <a href='x`, 200))
	b.Run("wellformed", func(b *testing.B) {
		b.SetBytes(int64(len(clean)))
		for i := 0; i < b.N; i++ {
			htmlkit.Parse(clean)
		}
	})
	b.Run("malformed", func(b *testing.B) {
		b.SetBytes(int64(len(sloppy)))
		for i := 0; i < b.N; i++ {
			htmlkit.Parse(sloppy)
		}
	})
}

// E62 — maximal-object enumeration cost for the paper's Example 6.2
// configuration and for the operational UsedCarUR.
func BenchmarkMaximalObjects(b *testing.B) {
	ex, err := ur.Example62()
	if err != nil {
		b.Fatal(err)
	}
	rels := ex.Hierarchy.Relations()
	b.Run("example6.2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ur.MaximalObjects(rels, ex.Rules)
		}
	})
	op, err := ur.UsedCarUR()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("usedcarur", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ur.MaximalObjects(op.Hierarchy.Relations(), op.Rules)
		}
	})
}

// Headline — the paper's Section 1 query end to end (warm cache excluded:
// a fresh webbase per iteration).
func BenchmarkHeadlineQuery(b *testing.B) {
	world := sites.BuildWorld()
	query := "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'jaguar' AND Year >= 1993 " +
		"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice"
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := sys.QueryString(query); err != nil {
			b.Fatal(err)
		}
	}
}

// R1 — robustness: the headline query healthy vs with one classifieds
// site down. The degraded run skips the dead maximal object but pays the
// failed probes and retries; the metrics carry the answer size and how
// many objects the degradation dropped (recorded in BENCH_degraded.json).
func BenchmarkDegradedQuery(b *testing.B) {
	world := sites.BuildWorld()
	query := "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'jaguar' AND Year >= 1993 " +
		"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice"
	down := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if web.HostOf(req.URL) == sites.NewsdayHost {
			return nil, fmt.Errorf("host %s: connection refused", sites.NewsdayHost)
		}
		return world.Server.Fetch(req)
	})
	run := func(b *testing.B, f web.Fetcher) {
		var tuples, degraded float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := webbase.New(webbase.Config{Fetcher: f, Retries: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, _, err := sys.QueryString(query)
			if err != nil {
				b.Fatal(err)
			}
			tuples = float64(res.Relation.Len())
			if res.Degradation != nil {
				degraded = float64(len(res.Degradation.Unavailable))
			}
		}
		b.ReportMetric(tuples, "tuples")
		b.ReportMetric(degraded, "degraded-objects")
	}
	b.Run("healthy", func(b *testing.B) { run(b, world.Server) })
	b.Run("newsday-down", func(b *testing.B) { run(b, down) })
}

// R2 — overload protection: 32 concurrent clients hammering a webbase
// whose busiest classifieds host has a deterministic straggler problem
// (every 7th request takes 25ms instead of 1ms). The unprotected run lets
// all 32 queries pile onto the host's four fetch slots; the protected run
// admits 8 at a time (queueing 8, shedding the rest with ErrShedded) and
// hedges any fetch still unanswered after 3ms. The metrics carry the
// client-observed p50/p99 of the queries that were served, plus how many
// were shed — the overload-protection trade made explicit (recorded in
// BENCH_overload.json).
func BenchmarkOverloadedQuery(b *testing.B) {
	world := sites.BuildWorld()
	var reqs atomic.Int64
	slow := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if web.HostOf(req.URL) == sites.NewsdayHost {
			if reqs.Add(1)%7 == 0 {
				time.Sleep(25 * time.Millisecond) // the straggler tail
			}
		}
		return world.Server.Fetch(req)
	})
	makes := []string{"ford", "honda", "jaguar", "saab"}
	run := func(b *testing.B, cfg webbase.Config) {
		cfg.Fetcher = slow
		cfg.DisableCache = true // every query pays its own fetches
		sys, err := webbase.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		queries := make([]webbase.Query, len(makes))
		for i, m := range makes {
			q, err := webbase.ParseQuery(sys,
				fmt.Sprintf("SELECT Make, Model, Year, Price WHERE Make = '%s'", m))
			if err != nil {
				b.Fatal(err)
			}
			queries[i] = q
		}
		const clients = 32
		var served []time.Duration
		var sheds int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var (
				mu sync.Mutex
				wg sync.WaitGroup
			)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					start := time.Now()
					_, _, err := sys.QueryContext(context.Background(), queries[c%len(queries)])
					lat := time.Since(start)
					mu.Lock()
					defer mu.Unlock()
					if errors.Is(err, webbase.ErrShedded) {
						sheds++
						return
					}
					if err != nil {
						b.Errorf("client %d: %v", c, err)
						return
					}
					served = append(served, lat)
				}(c)
			}
			wg.Wait()
		}
		b.StopTimer()
		sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })
		if len(served) > 0 {
			b.ReportMetric(float64(served[len(served)/2])/1e6, "p50_ms")
			b.ReportMetric(float64(served[len(served)*99/100])/1e6, "p99_ms")
		}
		b.ReportMetric(float64(sheds)/float64(b.N), "sheds/op")
	}
	b.Run("unprotected", func(b *testing.B) { run(b, webbase.Config{}) })
	b.Run("admission-only", func(b *testing.B) {
		run(b, webbase.Config{MaxInFlight: 8, HostLimit: 8, HostQueue: 64})
	})
	b.Run("protected", func(b *testing.B) {
		run(b, webbase.Config{
			MaxInFlight: 8,
			HostLimit:   8,
			HedgeAfter:  8 * time.Millisecond,
			HostQueue:   64,
		})
	})
}

// Optimizer ablation: rewrite cost of the headline query's plan
// expressions, and the whole headline query with and without the rewrite
// (the optimizer is structural; evaluation-time constant pushing keeps the
// page counts equal, so the interesting metric is that optimize adds only
// microseconds).
func BenchmarkOptimize(b *testing.B) {
	world := sites.BuildWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		b.Fatal(err)
	}
	q, err := ur.ParseQuery(sys.UR, "SELECT Make, Price WHERE Make = 'jaguar' AND Year >= 1993 AND Price < BBPrice AND Condition = 'good'")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sys.UR.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, obj := range plan.Objects {
			algebra.Optimize(obj.Expr, sys.Logical)
		}
	}
}

// Binding propagation over the standard logical views (the static
// derivation Section 5 performs at design time).
func BenchmarkBindingPropagation(b *testing.B) {
	world := sites.BuildWorld()
	reg, err := vps.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		b.Fatal(err)
	}
	_ = reg
	views := sys.Logical.Views()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range views {
			if _, err := sys.Logical.Bindings(v.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// R3 — access-relevance pruning: the paper's headline query with a LIMIT,
// pruning off vs on (Workers=1 so the fetch counts are deterministic,
// cache disabled via a fresh system per iteration so every run pays its
// own fetches). With pruning on, statically doomed WHERE combinations are
// skipped pre-fetch and the second plan-order object is never launched
// once the LIMIT is provably satisfied; the metrics carry the page counts
// and pruned-access counts for both modes (recorded in BENCH_pruning.json).
func BenchmarkPrunedQuery(b *testing.B) {
	world := sites.BuildWorld()
	query := "SELECT Make, Model, Year, Price, BBPrice, Contact WHERE Make = 'jaguar' AND Year >= 1993 " +
		"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice LIMIT 3"
	run := func(b *testing.B, prune bool) {
		var pages, pruned, tuples float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := webbase.New(webbase.Config{Fetcher: world.Server, Workers: 1, Prune: prune})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, qs, err := sys.QueryString(query)
			if err != nil {
				b.Fatal(err)
			}
			pages = float64(qs.Pages)
			pruned = float64(qs.PrunedFetches)
			tuples = float64(res.Relation.Len())
		}
		b.ReportMetric(pages, "pages")
		b.ReportMetric(pruned, "pruned")
		b.ReportMetric(tuples, "tuples")
	}
	b.Run("prune-off", func(b *testing.B) { run(b, false) })
	b.Run("prune-on", func(b *testing.B) { run(b, true) })
}
