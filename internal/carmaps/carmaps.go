// Package carmaps defines the navigation maps of the simulated car-
// shopping Web: one map per VPS relation of Table 1, plus maps for the
// timing-table sites that Table 1 omits. These are the maps a webbase
// designer would produce with the map builder (mapping by example); here
// they are the checked-in ground truth that the map builder's output is
// compared against and that the VPS layer executes.
package carmaps

import (
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/sites"
)

// column builds a plain extraction column mapping a table header to the
// identically named attribute.
func column(name string) navcalc.Column { return navcalc.Column{Header: name, Attr: name} }

// money builds a currency extraction column.
func money(name string) navcalc.Column { return navcalc.Column{Header: name, Attr: name, Money: true} }

// Newsday returns the Figure 2 navigation map: the newsday VPS relation
// newsday(Make, Model, Year, Price, Contact, Url).
func Newsday() *navmap.Map {
	m := navmap.New("newsday", "http://"+sites.NewsdayHost+"/",
		relation.NewSchema("Make", "Model", "Year", "Price", "Contact", "Url"))
	m.AddNode(&navmap.Node{ID: "newsdayPg", Title: "newsday"})
	m.AddNode(&navmap.Node{ID: "UsedCarPg", Title: "UsedCarPg"})
	m.AddNode(&navmap.Node{ID: "carPg", Title: "carPg"})
	m.AddNode(&navmap.Node{ID: "carData", Title: "carData(make, model, year, ...)", IsData: true,
		Extract: navcalc.ExtractSpec{
			Columns: []navcalc.Column{
				column("Make"), column("Model"), column("Year"),
				money("Price"), column("Contact"),
			},
			LinkCols: []navcalc.LinkCol{{LinkName: "Car Features", Attr: "Url"}},
		}})

	m.AddEdge("newsdayPg", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Automobiles"}, "UsedCarPg")
	f1 := navmap.Action{Kind: navmap.ActSubmitForm, FormName: "f1",
		Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make")}}
	// form f1 leads either directly to a data page or to the narrowing
	// page carPg — the two parallel edges of Figure 2.
	m.AddEdge("UsedCarPg", f1, "carData")
	m.AddEdge("UsedCarPg", f1, "carPg")
	m.AddEdge("carPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "f2",
		Fills: []navcalc.FieldFill{navcalc.Fill("model", "Model"), navcalc.Fill("featrs", "Featrs")}}, "carData")
	// The More self-loop: repeatedly hitting the "More" button.
	m.AddEdge("carData", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "carData")
	return m
}

// NewsdayCarFeatures returns the map of the newsdayCarFeatures(Url,
// Features, Picture) VPS relation: entered directly at the Url captured by
// the newsday relation, extracting the single features row.
func NewsdayCarFeatures() *navmap.Map {
	m := navmap.New("newsdayCarFeatures", "",
		relation.NewSchema("Url", "Features", "Picture"))
	m.StartURLVar = "Url"
	m.AddNode(&navmap.Node{ID: "featuresPg", Title: "newsdayCarFeatures(features, picture)", IsData: true,
		Extract: navcalc.ExtractSpec{
			Columns: []navcalc.Column{column("Features"), column("Picture")},
			EnvCols: []navcalc.EnvCol{{Var: "Url", Attr: "Url"}},
		}})
	return m
}

// NYTimes returns the map of nyTimes(Make, Model, Features, Price,
// Contact) — plus Year, which the simulated site also lists.
func NYTimes() *navmap.Map {
	m := navmap.New("nyTimes", "http://"+sites.NYTimesHost+"/",
		relation.NewSchema("Make", "Model", "Year", "Features", "Price", "Contact"))
	m.AddNode(&navmap.Node{ID: "home", Title: "nytimes"})
	m.AddNode(&navmap.Node{ID: "searchPg", Title: "classifieds"})
	m.AddNode(&navmap.Node{ID: "data", Title: "results", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("Make"), column("Model"), column("Year"),
			column("Features"), money("Price"), column("Contact"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Classifieds"}, "searchPg")
	m.AddEdge("searchPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "search",
		Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make"), navcalc.Fill("model", "Model")}}, "data")
	m.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")
	return m
}

// NewYorkDaily returns the map of newYorkDaily(Make, Model, Year, Price,
// Contact): two link hops, a form, a paginated listing.
func NewYorkDaily() *navmap.Map {
	m := navmap.New("newYorkDaily", "http://"+sites.NewYorkDailyHost+"/",
		relation.NewSchema("Make", "Model", "Year", "Price", "Contact"))
	m.AddNode(&navmap.Node{ID: "home", Title: "nydailynews"})
	m.AddNode(&navmap.Node{ID: "autosPg", Title: "autos"})
	m.AddNode(&navmap.Node{ID: "searchPg", Title: "search"})
	m.AddNode(&navmap.Node{ID: "data", Title: "listings", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("Make"), column("Model"), column("Year"),
			money("Price"), column("Contact"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Auto Classifieds"}, "autosPg")
	m.AddEdge("autosPg", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Search Used Cars"}, "searchPg")
	m.AddEdge("searchPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "carsearch",
		Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make")}}, "data")
	m.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")
	return m
}

// dealerSchema is the schema of the dealer VPS relations of Table 1.
var dealerSchema = relation.NewSchema("Make", "Model", "Year", "Price", "Features", "ZipCode", "Contact")

func dealerExtract() navcalc.ExtractSpec {
	return navcalc.ExtractSpec{Columns: []navcalc.Column{
		column("Make"), column("Model"), column("Year"), money("Price"),
		column("Features"), column("ZipCode"), column("Contact"),
	}}
}

// CarPoint returns the map of carPoint(Car, Price, Features, ZipCode,
// Contact): a one-form site.
func CarPoint() *navmap.Map {
	m := navmap.New("carPoint", "http://"+sites.CarPointHost+"/", dealerSchema.Clone())
	m.AddNode(&navmap.Node{ID: "home", Title: "carpoint"})
	m.AddNode(&navmap.Node{ID: "data", Title: "inventory", IsData: true, Extract: dealerExtract()})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "finder",
		Fills: []navcalc.FieldFill{
			navcalc.Fill("make", "Make"), navcalc.Fill("model", "Model"),
			navcalc.Fill("zipcode", "ZipCode"),
		}}, "data")
	m.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")
	return m
}

// AutoWeb returns the map of autoWeb(Car, Price, Features, ZipCode,
// Contact): a two-form drill-down behind an entry link.
func AutoWeb() *navmap.Map {
	m := navmap.New("autoWeb", "http://"+sites.AutoWebHost+"/", dealerSchema.Clone())
	m.AddNode(&navmap.Node{ID: "home", Title: "autoweb"})
	m.AddNode(&navmap.Node{ID: "usedPg", Title: "used car search"})
	m.AddNode(&navmap.Node{ID: "modelPg", Title: "pick a model"})
	m.AddNode(&navmap.Node{ID: "data", Title: "stock", IsData: true, Extract: dealerExtract()})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Used Car Search"}, "usedPg")
	m.AddEdge("usedPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "pickmake",
		Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make")}}, "modelPg")
	m.AddEdge("modelPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "pickmodel",
		Fills: []navcalc.FieldFill{navcalc.Fill("model", "Model")}}, "data")
	m.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")
	return m
}

// WWWheels returns the map of wwWheels(...): one form, one data page.
func WWWheels() *navmap.Map {
	m := navmap.New("wwWheels", "http://"+sites.WWWheelsHost+"/", dealerSchema.Clone())
	m.AddNode(&navmap.Node{ID: "home", Title: "wwwheels"})
	m.AddNode(&navmap.Node{ID: "data", Title: "results", IsData: true, Extract: dealerExtract()})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "q",
		Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make"), navcalc.Fill("model", "Model")}}, "data")
	return m
}

// AutoConnect returns the map of autoConnect(Make, Model, Year, Condition,
// Price, ZipCode, Contact): its form's condition radio group is mandatory.
func AutoConnect() *navmap.Map {
	m := navmap.New("autoConnect", "http://"+sites.AutoConnectHost+"/",
		relation.NewSchema("Make", "Model", "Year", "Condition", "Price", "ZipCode", "Contact"))
	m.AddNode(&navmap.Node{ID: "home", Title: "autoconnect"})
	m.AddNode(&navmap.Node{ID: "finderPg", Title: "finder"})
	m.AddNode(&navmap.Node{ID: "data", Title: "inventory", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("Make"), column("Model"), column("Year"), column("Condition"),
			money("Price"), column("ZipCode"), column("Contact"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Find a Car"}, "finderPg")
	m.AddEdge("finderPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "finder",
		Fills: []navcalc.FieldFill{
			navcalc.Fill("make", "Make"), navcalc.Fill("model", "Model"),
			navcalc.Fill("condition", "Condition"),
		}}, "data")
	m.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")
	return m
}

// YahooCars returns the map of yahooCars(...): make and model are
// link-defined attributes, so the edges are variable link follows.
func YahooCars() *navmap.Map {
	m := navmap.New("yahooCars", "http://"+sites.YahooCarsHost+"/", dealerSchema.Clone())
	m.AddNode(&navmap.Node{ID: "home", Title: "browse by make"})
	m.AddNode(&navmap.Node{ID: "makePg", Title: "browse by model"})
	m.AddNode(&navmap.Node{ID: "data", Title: "listing", IsData: true, Extract: dealerExtract()})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowVar, EnvVar: "Make"}, "makePg")
	m.AddEdge("makePg", navmap.Action{Kind: navmap.ActFollowVar, EnvVar: "Model"}, "data")
	m.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")
	return m
}

// Kellys returns the map of kellys(Make, Model, Year, Condition, BBPrice).
func Kellys() *navmap.Map {
	m := navmap.New("kellys", "http://"+sites.KellysHost+"/",
		relation.NewSchema("Make", "Model", "Year", "Condition", "BBPrice"))
	m.AddNode(&navmap.Node{ID: "home", Title: "kbb"})
	m.AddNode(&navmap.Node{ID: "pricerPg", Title: "price a used car"})
	m.AddNode(&navmap.Node{ID: "data", Title: "blue book value", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("Make"), column("Model"), column("Year"),
			column("Condition"), money("BBPrice"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Price a Used Car"}, "pricerPg")
	m.AddEdge("pricerPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "pricer",
		Fills: []navcalc.FieldFill{
			navcalc.Fill("make", "Make"), navcalc.Fill("model", "Model"),
			navcalc.Fill("year", "Year"), navcalc.Fill("condition", "Condition"),
		}}, "data")
	return m
}

// CarAndDriver returns the map of carAndDriver(Make, Model, Safety).
func CarAndDriver() *navmap.Map {
	m := navmap.New("carAndDriver", "http://"+sites.CarAndDriverHost+"/",
		relation.NewSchema("Make", "Model", "Safety"))
	m.AddNode(&navmap.Node{ID: "home", Title: "caranddriver"})
	m.AddNode(&navmap.Node{ID: "safetyPg", Title: "safety ratings"})
	m.AddNode(&navmap.Node{ID: "data", Title: "ratings", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("Make"), column("Model"), column("Safety"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Safety Ratings"}, "safetyPg")
	m.AddEdge("safetyPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "safety",
		Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make")}}, "data")
	return m
}

// CarReviews returns the map of carReviews(Make, Model, Reliability): a
// link directory two levels deep.
func CarReviews() *navmap.Map {
	m := navmap.New("carReviews", "http://"+sites.CarReviewsHost+"/",
		relation.NewSchema("Make", "Model", "Reliability"))
	m.AddNode(&navmap.Node{ID: "home", Title: "reviews by make"})
	m.AddNode(&navmap.Node{ID: "makePg", Title: "model reviews"})
	m.AddNode(&navmap.Node{ID: "data", Title: "review", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("Make"), column("Model"), column("Reliability"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowVar, EnvVar: "Make"}, "makePg")
	m.AddEdge("makePg", navmap.Action{Kind: navmap.ActFollowVar, EnvVar: "Model"}, "data")
	return m
}

// CarFinance returns the map of carFinance(ZipCode, Duration, Rate).
func CarFinance() *navmap.Map {
	m := navmap.New("carFinance", "http://"+sites.CarFinanceHost+"/",
		relation.NewSchema("ZipCode", "Duration", "Rate"))
	m.AddNode(&navmap.Node{ID: "home", Title: "carfinance"})
	m.AddNode(&navmap.Node{ID: "data", Title: "rates", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			column("ZipCode"), column("Duration"), column("Rate"),
		}}})
	m.AddEdge("home", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "rates",
		Fills: []navcalc.FieldFill{navcalc.Fill("zipcode", "ZipCode"), navcalc.Fill("duration", "Duration")}}, "data")
	return m
}

// AllMaps returns every standard map, keyed by VPS relation name.
func AllMaps() map[string]*navmap.Map {
	maps := []*navmap.Map{
		Newsday(), NewsdayCarFeatures(), NYTimes(), NewYorkDaily(),
		CarPoint(), AutoWeb(), WWWheels(), AutoConnect(), YahooCars(),
		Kellys(), CarAndDriver(), CarReviews(), CarFinance(),
	}
	out := make(map[string]*navmap.Map, len(maps))
	for _, m := range maps {
		out[m.Name] = m
	}
	return out
}
