package carmaps

import (
	"strings"
	"testing"

	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/sites"
)

func TestAllMapsValidateAndTranslate(t *testing.T) {
	for name, m := range AllMaps() {
		if err := m.Validate(); err != nil {
			t.Errorf("map %s invalid: %v", name, err)
			continue
		}
		expr, err := navmap.Translate(m)
		if err != nil {
			t.Errorf("map %s translation: %v", name, err)
			continue
		}
		if expr.Name != name {
			t.Errorf("expression name %q for map %q", expr.Name, name)
		}
	}
	if len(AllMaps()) != 13 {
		t.Errorf("expected 13 maps (12 sites + newsdayCarFeatures), got %d", len(AllMaps()))
	}
}

// TestDerivedExpressionsRunAgainstWorld executes the automatically derived
// expression for each map against the simulated Web with the ford/escort
// query of Section 7 and checks the result against the dataset oracle.
func TestDerivedExpressionsRunAgainstWorld(t *testing.T) {
	w := sites.BuildWorld()
	inputs := map[string]string{"Make": "ford", "Model": "escort"}

	cases := []struct {
		mapName string
		host    string // dataset host for the oracle; "" = no ad oracle
		want    func() int
	}{
		{"newsday", sites.NewsdayHost, nil},
		{"nyTimes", sites.NYTimesHost, nil},
		{"carPoint", sites.CarPointHost, nil},
		{"autoWeb", sites.AutoWebHost, nil},
		{"wwWheels", sites.WWWheelsHost, nil},
		{"yahooCars", sites.YahooCarsHost, nil},
	}
	maps := AllMaps()
	for _, c := range cases {
		t.Run(c.mapName, func(t *testing.T) {
			expr, err := navmap.Translate(maps[c.mapName])
			if err != nil {
				t.Fatal(err)
			}
			rel, info, err := expr.Execute(w.Server, inputs)
			if err != nil {
				t.Fatal(err)
			}
			want := len(w.Datasets[c.host].ByMakeModel("ford", "escort"))
			if rel.Len() != want {
				t.Errorf("collected %d tuples, dataset has %d", rel.Len(), want)
			}
			if info.PathLength < 2 {
				t.Errorf("suspiciously short path: %d", info.PathLength)
			}
		})
	}
}

func TestNewYorkDailyFullMake(t *testing.T) {
	// NewYorkDaily's form only takes make; the oracle is all fords.
	w := sites.BuildWorld()
	expr, err := navmap.Translate(AllMaps()["newYorkDaily"])
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford"})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.Datasets[sites.NewYorkDailyHost].ByMake("ford"))
	if rel.Len() != want {
		t.Errorf("collected %d, want %d", rel.Len(), want)
	}
}

func TestAutoConnectNeedsCondition(t *testing.T) {
	w := sites.BuildWorld()
	expr, err := navmap.Translate(AllMaps()["autoConnect"])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford"}); err == nil {
		t.Error("autoConnect without Condition should fail (mandatory radio)")
	}
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford", "Condition": "good"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := 0
	for _, a := range w.Datasets[sites.AutoConnectHost].ByMake("ford") {
		if a.Condition == "good" {
			oracle++
		}
	}
	if rel.Len() != oracle {
		t.Errorf("collected %d, want %d", rel.Len(), oracle)
	}
}

func TestReferenceSiteExpressions(t *testing.T) {
	w := sites.BuildWorld()
	maps := AllMaps()

	t.Run("kellys", func(t *testing.T) {
		expr, _ := navmap.Translate(maps["kellys"])
		rel, _, err := expr.Execute(w.Server, map[string]string{
			"Make": "jaguar", "Model": "xj6", "Year": "1994", "Condition": "good"})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 {
			t.Fatalf("rows = %d", rel.Len())
		}
		bb, _ := rel.Get(rel.Tuples()[0], "BBPrice")
		if int(bb.IntVal()) != sites.BlueBook("jaguar", "xj6", 1994, "good") {
			t.Errorf("bbprice = %v", bb)
		}
	})

	t.Run("carAndDriver", func(t *testing.T) {
		expr, _ := navmap.Translate(maps["carAndDriver"])
		rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "jaguar"})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != len(sites.Catalog["jaguar"]) {
			t.Errorf("rows = %d", rel.Len())
		}
	})

	t.Run("carReviews", func(t *testing.T) {
		expr, _ := navmap.Translate(maps["carReviews"])
		rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "honda", "Model": "civic"})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 {
			t.Fatalf("rows = %d", rel.Len())
		}
	})

	t.Run("carFinance", func(t *testing.T) {
		expr, _ := navmap.Translate(maps["carFinance"])
		rel, _, err := expr.Execute(w.Server, map[string]string{"ZipCode": "11201", "Duration": "36"})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 {
			t.Fatalf("rows = %d", rel.Len())
		}
	})

	t.Run("newsdayCarFeatures", func(t *testing.T) {
		// First get a Url via the newsday relation, then enter directly.
		newsday, _ := navmap.Translate(maps["newsday"])
		ads, _, err := newsday.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
		if err != nil {
			t.Fatal(err)
		}
		u, _ := ads.Get(ads.Tuples()[0], "Url")
		feats, _ := navmap.Translate(maps["newsdayCarFeatures"])
		rel, _, err := feats.Execute(w.Server, map[string]string{"Url": u.Str()})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 {
			t.Fatalf("rows = %d", rel.Len())
		}
		gotURL, _ := rel.Get(rel.Tuples()[0], "Url")
		if gotURL.Str() != u.Str() {
			t.Errorf("Url echo = %v, want %v", gotURL, u)
		}
		f, _ := rel.Get(rel.Tuples()[0], "Features")
		if f.Str() == "" {
			t.Error("empty features")
		}
		// Without the Url input the expression must fail.
		if _, _, err := feats.Execute(w.Server, nil); err == nil {
			t.Error("missing Url input should fail")
		}
	})
}

// TestTextualSyntaxCoversAllMaps formats every derived expression in the
// textual navigation-expression syntax, re-parses it, and checks the
// re-parsed expression collects the same tuples — the syntax covers the
// whole operational surface.
func TestTextualSyntaxCoversAllMaps(t *testing.T) {
	w := sites.BuildWorld()
	inputs := map[string]map[string]string{
		"newsday":      {"Make": "ford", "Model": "escort"},
		"nyTimes":      {"Make": "ford", "Model": "escort"},
		"newYorkDaily": {"Make": "ford"},
		"carPoint":     {"Make": "ford", "Model": "escort"},
		"autoWeb":      {"Make": "ford", "Model": "escort"},
		"wwWheels":     {"Make": "ford", "Model": "escort"},
		"autoConnect":  {"Make": "ford", "Condition": "good"},
		"yahooCars":    {"Make": "ford", "Model": "escort"},
		"kellys":       {"Make": "jaguar", "Model": "xj6", "Condition": "good"},
		"carAndDriver": {"Make": "jaguar"},
		"carReviews":   {"Make": "honda", "Model": "civic"},
		"carFinance":   {"ZipCode": "11201"},
	}
	for name, m := range AllMaps() {
		in, ok := inputs[name]
		if !ok {
			continue // newsdayCarFeatures needs a live Url; syntax covered elsewhere
		}
		t.Run(name, func(t *testing.T) {
			expr, err := navmap.Translate(m)
			if err != nil {
				t.Fatal(err)
			}
			text := navcalc.FormatExpression(expr)
			reparsed, err := navcalc.ParseExpression(text)
			if err != nil {
				t.Fatalf("re-parse: %v\n%s", err, text)
			}
			a, _, err := expr.Execute(w.Server, in)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := reparsed.Execute(w.Server, in)
			if err != nil {
				t.Fatalf("re-parsed execute: %v\n%s", err, text)
			}
			if a.Len() != b.Len() {
				t.Errorf("tuples %d vs %d\n%s", a.Len(), b.Len(), text)
			}
		})
	}
}

// TestFigure2Rendering checks that the Newsday map prints the structures
// Figure 2 shows.
func TestFigure2Rendering(t *testing.T) {
	m := Newsday()
	s := m.String()
	for _, want := range []string{"newsdayPg", "UsedCarPg", "carPg", "carData",
		"link(Automobiles)", "form f1(make)", "form f2(model, featrs)", "link(More)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 2 rendering missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(m.DOT(), "carData") {
		t.Error("DOT output missing nodes")
	}
}
