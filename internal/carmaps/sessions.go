package carmaps

import (
	"webbase/internal/mapbuilder"
	"webbase/internal/navcalc"
	"webbase/internal/relation"
	"webbase/internal/sites"
)

// Sessions returns the recorded mapping-by-example browsing sessions that
// rebuild the standard navigation maps of AllMaps: the designer's clicks,
// form fill-outs, data-page declarations and manual hints for each site
// (Section 7). featuresURL is a concrete car-features URL used to record
// the newsdayCarFeatures session (obtain one by running the newsday
// expression first).
func Sessions(featuresURL string) []*mapbuilder.Session {
	dealer := func(header string) navcalc.Column { return navcalc.Column{Header: header, Attr: header} }
	money := func(header string) navcalc.Column {
		return navcalc.Column{Header: header, Attr: header, Money: true}
	}

	newsdaySpec := navcalc.ExtractSpec{
		Columns: []navcalc.Column{
			dealer("Make"), dealer("Model"), dealer("Year"), money("Price"), dealer("Contact"),
		},
		LinkCols: []navcalc.LinkCol{{LinkName: "Car Features", Attr: "Url"}},
	}
	dealerSpec := navcalc.ExtractSpec{Columns: []navcalc.Column{
		dealer("Make"), dealer("Model"), dealer("Year"), money("Price"),
		dealer("Features"), dealer("ZipCode"), dealer("Contact"),
	}}

	return []*mapbuilder.Session{
		{
			Relation: "newsday",
			StartURL: "http://" + sites.NewsdayHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Year", "Price", "Contact", "Url"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Automobiles"},
				{Kind: mapbuilder.EvSubmit, FormName: "f1",
					Values: map[string]string{"make": "ford"},
					VarOf:  map[string]string{"make": "Make"}},
				{Kind: mapbuilder.EvSubmit, FormName: "f2",
					Values: map[string]string{"model": "escort"},
					VarOf:  map[string]string{"model": "Model"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "carData", Extract: newsdaySpec, MoreLink: "More"},
				// Second browse: a rare make goes straight to the data page,
				// recording Figure 2's direct f1 → carData edge.
				{Kind: mapbuilder.EvRestart},
				{Kind: mapbuilder.EvFollow, LinkName: "Automobiles"},
				{Kind: mapbuilder.EvSubmit, FormName: "f1",
					Values: map[string]string{"make": "saab"},
					VarOf:  map[string]string{"make": "Make"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "carData", Extract: newsdaySpec, MoreLink: "More"},
				// The paper: "10 to 12 facts to standardize attribute and
				// domain value names" — a representative pair.
				{Kind: mapbuilder.EvHint, Hint: "rename field featrs → Features"},
				{Kind: mapbuilder.EvHint, Hint: "contact numbers are NYC area"},
			},
		},
		{
			Relation: "newsdayCarFeatures",
			StartURL: featuresURL,
			StartVar: "Url",
			Schema:   relation.NewSchema("Url", "Features", "Picture"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvMarkData, NodeName: "featuresPg", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{dealer("Features"), dealer("Picture")},
					EnvCols: []navcalc.EnvCol{{Var: "Url", Attr: "Url"}},
				}},
			},
		},
		{
			Relation: "nyTimes",
			StartURL: "http://" + sites.NYTimesHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Year", "Features", "Price", "Contact"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Classifieds"},
				{Kind: mapbuilder.EvSubmit, FormName: "search",
					Values: map[string]string{"make": "ford", "model": "escort"},
					VarOf:  map[string]string{"make": "Make", "model": "Model"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "results", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{
						dealer("Make"), dealer("Model"), dealer("Year"),
						dealer("Features"), money("Price"), dealer("Contact"),
					}}, MoreLink: "More"},
				{Kind: mapbuilder.EvHint, Hint: "prices include dealer fees"},
			},
		},
		{
			Relation: "newYorkDaily",
			StartURL: "http://" + sites.NewYorkDailyHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Year", "Price", "Contact"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Auto Classifieds"},
				{Kind: mapbuilder.EvFollow, LinkName: "Search Used Cars"},
				{Kind: mapbuilder.EvSubmit, FormName: "carsearch",
					Values: map[string]string{"make": "ford"},
					VarOf:  map[string]string{"make": "Make"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "listings", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{
						dealer("Make"), dealer("Model"), dealer("Year"),
						money("Price"), dealer("Contact"),
					}}, MoreLink: "More"},
			},
		},
		{
			Relation: "carPoint",
			StartURL: "http://" + sites.CarPointHost + "/",
			Schema:   dealerSchema.Clone(),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvSubmit, FormName: "finder",
					Values: map[string]string{"make": "ford", "model": "escort"},
					VarOf:  map[string]string{"make": "Make", "model": "Model"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "inventory", Extract: dealerSpec, MoreLink: "More"},
			},
		},
		{
			Relation: "autoWeb",
			StartURL: "http://" + sites.AutoWebHost + "/",
			Schema:   dealerSchema.Clone(),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Used Car Search"},
				{Kind: mapbuilder.EvSubmit, FormName: "pickmake",
					Values: map[string]string{"make": "ford"},
					VarOf:  map[string]string{"make": "Make"}},
				{Kind: mapbuilder.EvSubmit, FormName: "pickmodel",
					Values: map[string]string{"model": "escort"},
					VarOf:  map[string]string{"model": "Model"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "stock", Extract: dealerSpec, MoreLink: "More"},
			},
		},
		{
			Relation: "wwWheels",
			StartURL: "http://" + sites.WWWheelsHost + "/",
			Schema:   dealerSchema.Clone(),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvSubmit, FormName: "q",
					Values: map[string]string{"make": "ford", "model": "escort"},
					VarOf:  map[string]string{"make": "Make", "model": "Model"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "results", Extract: dealerSpec},
			},
		},
		{
			Relation: "autoConnect",
			StartURL: "http://" + sites.AutoConnectHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Year", "Condition", "Price", "ZipCode", "Contact"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Find a Car"},
				{Kind: mapbuilder.EvSubmit, FormName: "finder",
					Values: map[string]string{"make": "ford", "condition": "good"},
					VarOf:  map[string]string{"make": "Make", "condition": "Condition"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "inventory", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{
						dealer("Make"), dealer("Model"), dealer("Year"), dealer("Condition"),
						money("Price"), dealer("ZipCode"), dealer("Contact"),
					}}, MoreLink: "More"},
			},
		},
		{
			Relation: "yahooCars",
			StartURL: "http://" + sites.YahooCarsHost + "/",
			Schema:   dealerSchema.Clone(),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "ford", BindVar: "Make"},
				{Kind: mapbuilder.EvFollow, LinkName: "escort", BindVar: "Model"},
				{Kind: mapbuilder.EvMarkData, NodeName: "listing", Extract: dealerSpec, MoreLink: "More"},
			},
		},
		{
			Relation: "kellys",
			StartURL: "http://" + sites.KellysHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Year", "Condition", "BBPrice"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Price a Used Car"},
				{Kind: mapbuilder.EvSubmit, FormName: "pricer",
					Values: map[string]string{"make": "jaguar", "model": "xj6", "year": "1994", "condition": "good"},
					VarOf:  map[string]string{"make": "Make", "model": "Model", "year": "Year", "condition": "Condition"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "blue book value", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{
						dealer("Make"), dealer("Model"), dealer("Year"),
						dealer("Condition"), money("BBPrice"),
					}}},
			},
		},
		{
			Relation: "carAndDriver",
			StartURL: "http://" + sites.CarAndDriverHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Safety"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "Safety Ratings"},
				{Kind: mapbuilder.EvSubmit, FormName: "safety",
					Values: map[string]string{"make": "jaguar"},
					VarOf:  map[string]string{"make": "Make"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "ratings", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{dealer("Make"), dealer("Model"), dealer("Safety")},
				}},
			},
		},
		{
			Relation: "carReviews",
			StartURL: "http://" + sites.CarReviewsHost + "/",
			Schema:   relation.NewSchema("Make", "Model", "Reliability"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvFollow, LinkName: "honda", BindVar: "Make"},
				{Kind: mapbuilder.EvFollow, LinkName: "civic", BindVar: "Model"},
				{Kind: mapbuilder.EvMarkData, NodeName: "review", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{dealer("Make"), dealer("Model"), dealer("Reliability")},
				}},
			},
		},
		{
			Relation: "carFinance",
			StartURL: "http://" + sites.CarFinanceHost + "/",
			Schema:   relation.NewSchema("ZipCode", "Duration", "Rate"),
			Events: []mapbuilder.Event{
				{Kind: mapbuilder.EvSubmit, FormName: "rates",
					Values: map[string]string{"zipcode": "11201", "duration": "36"},
					VarOf:  map[string]string{"zipcode": "ZipCode", "duration": "Duration"}},
				{Kind: mapbuilder.EvMarkData, NodeName: "rates", Extract: navcalc.ExtractSpec{
					Columns: []navcalc.Column{dealer("ZipCode"), dealer("Duration"), dealer("Rate")},
				}},
			},
		},
	}
}
