package logical

import (
	"strings"
	"testing"

	"webbase/internal/algebra"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/vps"
	"webbase/internal/web"
)

func standard(t *testing.T) (*Catalog, *sites.World, *web.Stats) {
	t.Helper()
	w := sites.BuildWorld()
	reg, err := vps.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	var stats web.Stats
	f := web.WithCache(web.Counting(w.Server, &stats), web.NewCache())
	cat, err := StandardCatalog(reg, f)
	if err != nil {
		t.Fatal(err)
	}
	return cat, w, &stats
}

func sv(s string) relation.Value { return relation.String(s) }

func TestStandardCatalogViews(t *testing.T) {
	cat, _, _ := standard(t)
	if got := len(cat.Views()); got != 6 {
		t.Fatalf("views = %d, want 6", got)
	}
	sch, err := cat.Schema("classifieds")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewSchema("Make", "Model", "Year", "Price", "Contact", "Features")
	if !sch.Equal(want) {
		t.Errorf("classifieds schema = %v", sch)
	}
	if _, err := cat.Schema("ghost"); err == nil {
		t.Error("unknown view should error")
	}
	if _, ok := cat.View("dealers"); !ok {
		t.Error("dealers view missing")
	}
}

// TestClassifiedsBindingIsMake reproduces the paper's binding propagation
// example (Section 5): "{Make} turns out also to be the only mandatory
// binding for newsday ⋈ newsdayCarFeatures... Therefore, by the union and
// projection rules, {Make} is the only mandatory binding for classifieds."
func TestClassifiedsBindingIsMake(t *testing.T) {
	cat, _, _ := standard(t)
	bs, err := cat.Bindings("classifieds")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || !bs[0].Equal(relation.NewAttrSet("Make")) {
		t.Errorf("classifieds bindings = %v, want [{Make}]", bs)
	}
}

func TestDealersRelaxedBindings(t *testing.T) {
	cat, _, _ := standard(t)
	bs, err := cat.Bindings("dealers")
	if err != nil {
		t.Fatal(err)
	}
	// Relaxed union: {Make} (carPoint/autoWeb/wwWheels) survives
	// minimization; yahooCars' {Make, Model} is a superset and is dropped.
	if len(bs) != 1 || !bs[0].Equal(relation.NewAttrSet("Make")) {
		t.Errorf("dealers bindings = %v", bs)
	}
}

func TestClassifiedsPopulation(t *testing.T) {
	cat, w, _ := standard(t)
	rel, err := cat.Populate("classifieds", map[string]relation.Value{
		"Make": sv("ford"), "Model": sv("escort")})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: newsday escorts (each with features joined) + nyTimes
	// escorts, deduplicated as sets. The synthetic datasets are disjoint
	// in practice (contacts differ), so the count is the sum.
	wantMin := len(w.Datasets[sites.NewsdayHost].ByMakeModel("ford", "escort"))
	nyt := len(w.Datasets[sites.NYTimesHost].ByMakeModel("ford", "escort"))
	if rel.Len() < wantMin || rel.Len() > wantMin+nyt {
		t.Errorf("classifieds rows = %d, want in [%d, %d]", rel.Len(), wantMin, wantMin+nyt)
	}
	// Every row carries Features from one of the two sources.
	for _, tp := range rel.Tuples() {
		f, _ := rel.Get(tp, "Features")
		if f.IsNull() || f.Str() == "" {
			t.Fatalf("missing features: %v", tp)
		}
	}
}

func TestDealersRelaxedPopulation(t *testing.T) {
	cat, w, _ := standard(t)
	// Make-only query: yahooCars (needs Model) is skipped; the other
	// three dealers answer.
	rel, err := cat.Populate("dealers", map[string]relation.Value{"Make": sv("bmw")})
	if err != nil {
		t.Fatal(err)
	}
	oracle := len(w.Datasets[sites.CarPointHost].ByMake("bmw")) +
		len(w.Datasets[sites.AutoWebHost].ByMake("bmw")) +
		len(w.Datasets[sites.WWWheelsHost].ByMake("bmw"))
	if rel.Len() != oracle {
		t.Errorf("dealers rows = %d, want %d (yahooCars skipped)", rel.Len(), oracle)
	}
	// Make+Model query: yahooCars participates too.
	rel2, err := cat.Populate("dealers", map[string]relation.Value{
		"Make": sv("bmw"), "Model": sv("325i")})
	if err != nil {
		t.Fatal(err)
	}
	oracle2 := len(w.Datasets[sites.CarPointHost].ByMakeModel("bmw", "325i")) +
		len(w.Datasets[sites.AutoWebHost].ByMakeModel("bmw", "325i")) +
		len(w.Datasets[sites.WWWheelsHost].ByMakeModel("bmw", "325i")) +
		len(w.Datasets[sites.YahooCarsHost].ByMakeModel("bmw", "325i"))
	if rel2.Len() != oracle2 {
		t.Errorf("dealers rows = %d, want %d (all four)", rel2.Len(), oracle2)
	}
}

func TestViewJoinAcrossLayers(t *testing.T) {
	// The logical catalog is itself an algebra.Catalog: join classifieds
	// with bluePrice and reliability through it (what the UR layer will
	// generate), asking for cheap good-safety jaguars.
	cat, _, _ := standard(t)
	expr := &algebra.Select{
		Input: &algebra.Select{
			Input: algebra.JoinAll(
				&algebra.Scan{Relation: "classifieds"},
				&algebra.Scan{Relation: "bluePrice"},
				&algebra.Scan{Relation: "reliability"},
			),
			Cond: algebra.Condition{Attr: "Safety", Op: algebra.EQ, Val: sv("good")},
		},
		Cond: algebra.Condition{Attr: "Price", Op: algebra.LT, Attr2: "BBPrice"},
	}
	rel, err := algebra.Eval(expr, cat, map[string]relation.Value{
		"Make": sv("jaguar"), "Condition": sv("good")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("no cheap good jaguars found; dataset should contain some")
	}
	for _, tp := range rel.Tuples() {
		mk, _ := rel.Get(tp, "Make")
		p, _ := rel.Get(tp, "Price")
		bb, _ := rel.Get(tp, "BBPrice")
		s, _ := rel.Get(tp, "Safety")
		if mk.Str() != "jaguar" || s.Str() != "good" || p.FloatVal() >= bb.FloatVal() {
			t.Fatalf("bad row: %v", tp)
		}
	}
}

func TestPopulateUnknownAndBindingErrors(t *testing.T) {
	cat, _, _ := standard(t)
	if _, err := cat.Populate("ghost", nil); err == nil {
		t.Error("unknown view should error")
	}
	if _, err := cat.Bindings("ghost"); err == nil {
		t.Error("unknown view bindings should error")
	}
	// classifieds without Make cannot run.
	_, err := cat.Populate("classifieds", map[string]relation.Value{"Model": sv("escort")})
	if err == nil {
		t.Error("classifieds without Make should fail")
	}
}

func TestDefineValidation(t *testing.T) {
	cat, _, _ := standard(t)
	if err := cat.Define("classifieds", &algebra.Scan{Relation: "kellys"}); err == nil {
		t.Error("duplicate view should fail")
	}
	if err := cat.Define("bad", &algebra.Scan{Relation: "ghost"}); err == nil {
		t.Error("view over unknown relation should fail")
	}
}

func TestVPSCatalogErrorTranslation(t *testing.T) {
	w := sites.BuildWorld()
	reg, _ := vps.StandardRegistry()
	base := &VPSCatalog{Registry: reg, Fetcher: w.Server}
	_, err := base.Populate("kellys", map[string]relation.Value{"Make": sv("jaguar")})
	if err == nil || !strings.Contains(err.Error(), "no handle") {
		t.Fatalf("err = %v", err)
	}
	// The error must be recognizable as a binding failure for relaxed
	// unions.
	if !errorsIsBinding(err) {
		t.Error("vps no-handle error not translated to binding failure")
	}
	if _, err := base.Schema("ghost"); err == nil {
		t.Error("unknown VPS relation")
	}
}

func errorsIsBinding(err error) bool {
	return strings.Contains(err.Error(), algebra.ErrBindingUnsatisfied.Error())
}
