// Package logical implements the logical layer of the webbase (Section 5):
// a uniform, site-independent view of the data arriving from multiple
// sources. Logical relations are relational-algebra views over VPS
// relations; because VPS relations can only be accessed by supplying
// mandatory attributes, the layer derives each view's binding sets with
// the paper's binding propagation rules and evaluates views with
// binding-aware join ordering (package algebra does the heavy lifting).
package logical

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"webbase/internal/algebra"
	"webbase/internal/prune"
	"webbase/internal/relation"
	"webbase/internal/vps"
	"webbase/internal/web"
)

// VPSCatalog adapts a VPS registry plus a fetcher to algebra.Catalog, so
// algebra expressions can scan VPS relations directly. Handle-missing
// errors are translated to algebra.ErrBindingUnsatisfied, which relaxed
// unions and join planners understand.
type VPSCatalog struct {
	Registry *vps.Registry
	Fetcher  web.Fetcher
}

// Schema implements algebra.Catalog.
func (c *VPSCatalog) Schema(name string) (relation.Schema, error) {
	ri, ok := c.Registry.Relation(name)
	if !ok {
		return nil, fmt.Errorf("logical: unknown VPS relation %q", name)
	}
	return ri.Schema, nil
}

// Bindings implements algebra.Catalog.
func (c *VPSCatalog) Bindings(name string) ([]relation.AttrSet, error) {
	return c.Registry.Bindings(name)
}

// Populate implements algebra.Catalog by executing the relation's
// navigation expression against the Web.
func (c *VPSCatalog) Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	return c.PopulateContext(context.Background(), name, inputs)
}

// PopulateContext implements algebra.CatalogContext: the context reaches
// navigation execution, so cancellation stops page fetches.
func (c *VPSCatalog) PopulateContext(ctx context.Context, name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	rel, _, err := c.Registry.PopulateContext(ctx, c.Fetcher, name, inputs)
	if err != nil {
		if errors.Is(err, vps.ErrNoUsableHandle) {
			return nil, fmt.Errorf("%w: %v", algebra.ErrBindingUnsatisfied, err)
		}
		return nil, err
	}
	return rel, nil
}

var _ algebra.CatalogContext = (*VPSCatalog)(nil)

// View is one logical relation: a named algebra expression over VPS
// relations (a row of Table 2).
type View struct {
	Name string
	Def  algebra.Expr
}

// Catalog is the logical layer: named views over a base catalog. It itself
// implements algebra.Catalog, so the external schema layer can run algebra
// (and the UR translation) over logical relations without knowing they are
// views — exactly the layering of Figure 1.
type Catalog struct {
	base  algebra.Catalog
	views map[string]*View
	// Derived-schema and binding caches: views are static, so both are
	// computed once.
	schemas  map[string]relation.Schema
	bindings map[string][]relation.AttrSet
}

// NewCatalog returns an empty logical catalog over the base.
func NewCatalog(base algebra.Catalog) *Catalog {
	return &Catalog{
		base:     base,
		views:    make(map[string]*View),
		schemas:  make(map[string]relation.Schema),
		bindings: make(map[string][]relation.AttrSet),
	}
}

// Define registers a view, validating its definition and precomputing its
// schema and binding sets ("instead of deriving bindings for a given query
// on the fly, it statically determines all allowed bindings for each
// logical relation").
func (c *Catalog) Define(name string, def algebra.Expr) error {
	if _, ok := c.views[name]; ok {
		return fmt.Errorf("logical: view %q already defined", name)
	}
	sch, err := def.Schema(c.base)
	if err != nil {
		return fmt.Errorf("logical: view %q: %w", name, err)
	}
	bs, err := algebra.Bindings(def, c.base)
	if err != nil {
		return fmt.Errorf("logical: view %q bindings: %w", name, err)
	}
	c.views[name] = &View{Name: name, Def: def}
	c.schemas[name] = sch
	c.bindings[name] = bs
	return nil
}

// View returns the named view.
func (c *Catalog) View(name string) (*View, bool) {
	v, ok := c.views[name]
	return v, ok
}

// Views returns all views sorted by name.
func (c *Catalog) Views() []*View {
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Schema implements algebra.Catalog.
func (c *Catalog) Schema(name string) (relation.Schema, error) {
	if sch, ok := c.schemas[name]; ok {
		return sch, nil
	}
	return nil, fmt.Errorf("logical: unknown relation %q", name)
}

// Bindings implements algebra.Catalog: the statically derived binding sets
// of the view.
func (c *Catalog) Bindings(name string) ([]relation.AttrSet, error) {
	if bs, ok := c.bindings[name]; ok {
		return bs, nil
	}
	return nil, fmt.Errorf("logical: unknown relation %q", name)
}

// Populate implements algebra.Catalog by evaluating the view definition
// over the base catalog with the inputs as bound values, then restricting
// the result to tuples matching the inputs.
func (c *Catalog) Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	return c.PopulateContext(context.Background(), name, inputs)
}

// PopulateContext implements algebra.CatalogContext, forwarding the
// context (with any worker pool it carries) into the view's evaluation —
// a view whose definition unions several sites evaluates those sites
// concurrently under the query's pool.
func (c *Catalog) PopulateContext(ctx context.Context, name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	v, ok := c.views[name]
	if !ok {
		return nil, fmt.Errorf("logical: unknown relation %q", name)
	}
	// Scope the access-relevance state to the view's output schema before
	// descending: an attribute the view consumes internally but does not
	// export is not the query's attribute of the same name (its column
	// never reaches the selections above), so conditions on it must not
	// prune inside the view. Conditions on exported attributes remain
	// checkable at full strength — their values flow to the output.
	if st := prune.FromContext(ctx); st != nil {
		if r := st.Restrict(c.schemas[name]); r != st {
			ctx = prune.ContextWith(ctx, r)
		}
	}
	rel, err := algebra.EvalContext(ctx, v.Def, c.base, inputs)
	if err != nil {
		return nil, fmt.Errorf("logical: populating %s: %w", name, err)
	}
	sch := rel.Schema()
	return rel.Select(func(t relation.Tuple) bool {
		for a, val := range inputs {
			i := sch.IndexOf(a)
			if i < 0 || val.IsNull() {
				continue
			}
			if !t[i].Equal(val) {
				return false
			}
		}
		return true
	}), nil
}

var _ algebra.CatalogContext = (*Catalog)(nil)
