package logical

import (
	"webbase/internal/algebra"
	"webbase/internal/vps"
	"webbase/internal/web"
)

// StandardCatalog builds the logical layer of the used-car webbase: the
// Table 2 views over the standard VPS.
//
//	classifieds(Make, Model, Year, Price, Contact, Features) =
//	    π(newsday ⋈ newsdayCarFeatures) ∪ π(nyTimes)
//	dealers(Make, Model, Year, Price, Features, ZipCode, Contact) =
//	    carPoint ∪ʳ autoWeb ∪ʳ wwWheels ∪ʳ yahooCars
//	bluePrice(Make, Model, Year, Condition, BBPrice) = kellys
//	reliability(Make, Model, Safety)                 = carAndDriver
//	reviews(Make, Model, Reliability)                = carReviews
//	interest(ZipCode, Duration, Rate)                = carFinance
//
// dealers uses the relaxed union: yahooCars demands {Make, Model}, and a
// strict union would impose that on the whole view; relaxed, a Make-only
// query still answers from the other three dealers.
func StandardCatalog(reg *vps.Registry, f web.Fetcher) (*Catalog, error) {
	base := &VPSCatalog{Registry: reg, Fetcher: f}
	cat := NewCatalog(base)

	scan := func(name string) algebra.Expr { return &algebra.Scan{Relation: name} }
	classifiedAttrs := []string{"Make", "Model", "Year", "Price", "Contact", "Features"}

	classifieds := algebra.UnionAll(
		&algebra.Project{
			Input: &algebra.Join{Left: scan("newsday"), Right: scan("newsdayCarFeatures")},
			Attrs: classifiedAttrs,
		},
		&algebra.Project{Input: scan("nyTimes"), Attrs: classifiedAttrs},
	)
	if err := cat.Define("classifieds", classifieds); err != nil {
		return nil, err
	}

	dealers := algebra.RelaxedUnionAll(
		scan("carPoint"), scan("autoWeb"), scan("wwWheels"), scan("yahooCars"),
	)
	if err := cat.Define("dealers", dealers); err != nil {
		return nil, err
	}

	if err := cat.Define("bluePrice", scan("kellys")); err != nil {
		return nil, err
	}
	if err := cat.Define("reliability", scan("carAndDriver")); err != nil {
		return nil, err
	}
	if err := cat.Define("reviews", scan("carReviews")); err != nil {
		return nil, err
	}
	if err := cat.Define("interest", scan("carFinance")); err != nil {
		return nil, err
	}
	return cat, nil
}
