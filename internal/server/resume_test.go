package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"webbase/internal/core"
	"webbase/internal/sites"
)

// The resume determinism proof. The stream protocol's contract is that a
// client which received events through seq k can repeat the request with
// Last-Event-Index: k and the meta's resume token, and the concatenation
// of its prefix with the resumed response is byte-identical to an
// uninterrupted stream — for every possible kill point, at any worker
// count, and across a server restart onto a warm state dir. These tests
// enumerate exactly that: every k for a corpus of queries, under
// Workers 1 and 8, same-process and killed-then-restarted.

// resumeCorpus exercises the three stream shapes: multi-object
// incremental (wideQuery), single-object incremental (carQuery), and the
// buffered ORDER BY degenerate case (one delivery).
var resumeCorpus = []struct {
	name  string
	query string
}{
	{"wide", wideQuery},
	{"car", carQuery},
	{"ordered", "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'jaguar' AND Year >= 1993 " +
		"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice ORDER BY Price"},
}

// postResume repeats a query with resume headers.
func postResume(t *testing.T, url, query string, lastIndex int, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-Index", strconv.Itoa(lastIndex))
	req.Header.Set("X-Resume-Token", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// normalizeStream renders decoded stream lines with the run-dependent
// fields (trailer stats, meta request id) removed, one JSON line per
// event — the byte-comparison form.
func normalizeStream(t *testing.T, lines []map[string]any) string {
	t.Helper()
	var sb strings.Builder
	for _, l := range lines {
		delete(l, "stats")
		delete(l, "request_id")
		sb.WriteString(mustJSON(t, l))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// fullStream runs one uninterrupted stream and returns its decoded lines
// plus the meta's resume token. It also checks the seq invariant: line i
// carries seq i, 0..N-1, contiguous.
func fullStream(t *testing.T, url, query string) ([]map[string]any, string) {
	t.Helper()
	resp := postQuery(t, url, "", query)
	if resp.StatusCode != 200 {
		t.Fatalf("uninterrupted stream status = %d", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) < 2 || lines[0]["event"] != "meta" || lines[len(lines)-1]["event"] != "trailer" {
		t.Fatalf("malformed stream: %d lines", len(lines))
	}
	for i, l := range lines {
		if int(l["seq"].(float64)) != i {
			t.Fatalf("line %d carries seq %v, want %d — seq numbering must be dense", i, l["seq"], i)
		}
	}
	token, _ := lines[0]["resume_token"].(string)
	if token == "" {
		t.Fatal("meta carries no resume_token")
	}
	return lines, token
}

// checkEveryResumePoint kills the (already captured) stream after every
// possible event index and verifies each stitch is byte-identical to the
// uninterrupted run. resumeURL may be a different server than the one
// that produced lines (the restart case).
func checkEveryResumePoint(t *testing.T, resumeURL, query string, lines []map[string]any, token string) {
	t.Helper()
	want := normalizeStream(t, deepCopyLines(t, lines))
	// A resume means the stream died before its terminal event, so the
	// kill points run from "only meta seen" (k=0) through "all deliveries
	// seen, trailer lost" (k=N); a client that has the trailer is done.
	for k := 0; k < len(lines)-1; k++ {
		resp := postResume(t, resumeURL, query, k, token)
		if resp.StatusCode != 200 {
			t.Fatalf("resume at k=%d: status = %d", k, resp.StatusCode)
		}
		resumed := decodeLines(t, resp.Body)
		for _, l := range resumed {
			if int(l["seq"].(float64)) <= k {
				t.Fatalf("resume at k=%d re-sent suppressed event seq=%v", k, l["seq"])
			}
		}
		stitched := append(deepCopyLines(t, lines[:k+1]), resumed...)
		if got := normalizeStream(t, stitched); got != want {
			t.Fatalf("resume at k=%d stitches differently:\n got %s\nwant %s", k, got, want)
		}
	}
}

// deepCopyLines guards against normalizeStream's deletes mutating shared
// maps between comparisons.
func deepCopyLines(t *testing.T, lines []map[string]any) []map[string]any {
	t.Helper()
	out := make([]map[string]any, len(lines))
	for i, l := range lines {
		m := make(map[string]any, len(l))
		for k, v := range l {
			m[k] = v
		}
		out[i] = m
	}
	return out
}

// TestResumeStitchesByteIdentical is the same-process half of the proof:
// corpus x Workers {1,8} x every kill index.
func TestResumeStitchesByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		for _, tc := range resumeCorpus {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				ts, _ := newCarServer(t, core.Config{Workers: workers}, Config{})
				lines, token := fullStream(t, ts.URL, tc.query)
				checkEveryResumePoint(t, ts.URL, tc.query, lines, token)
			})
		}
	}
}

// TestResumeAcrossServerRestart is the crash half: the stream's origin
// process dies, a new process boots onto the warm state dir, and every
// resume point still stitches byte-identically — the consistency token
// survives the restart because the page-tier generation is durable.
func TestResumeAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	world := sites.BuildWorld()

	boot := func() (*httptest.Server, *core.Webbase) {
		wb, err := core.New(core.Config{Fetcher: world.Server, Workers: 8, StateDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{System: wb})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(srv.Handler()), wb
	}

	ts1, wb1 := boot()
	lines, token := fullStream(t, ts1.URL, wideQuery)
	// Kill the process: connections die, the durable tier flushes.
	ts1.Close()
	wb1.Close()

	ts2, wb2 := boot()
	defer ts2.Close()
	defer wb2.Close()
	if tok2 := wb2.ConsistencyToken(); tok2 != token {
		t.Fatalf("consistency token changed across warm restart: %s -> %s", token, tok2)
	}
	checkEveryResumePoint(t, ts2.URL, wideQuery, lines, token)
}

// TestResumeRefusedOnCacheClear: clearing the page cache changes the web
// view; every resume against the old token must be a typed 409, never a
// spliced answer.
func TestResumeRefusedOnCacheClear(t *testing.T) {
	ts, wb := newCarServer(t, core.Config{}, Config{})
	lines, token := fullStream(t, ts.URL, wideQuery)

	wb.Cache().Clear()

	for _, k := range []int{0, 1, len(lines) - 1} {
		resp := postResume(t, ts.URL, wideQuery, k, token)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("resume at k=%d after cache clear: status = %d, want 409", k, resp.StatusCode)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		decodeJSONBody(t, resp, &env)
		if env.Error.Code != "resume-inconsistent" {
			t.Fatalf("resume after cache clear: code = %q, want resume-inconsistent", env.Error.Code)
		}
	}

	// A fresh (non-resuming) request still works and issues the new token.
	lines2, token2 := fullStream(t, ts.URL, wideQuery)
	if token2 == token {
		t.Fatal("cache clear did not rotate the consistency token")
	}
	_ = lines2
}

// TestResumeRefusedOnMapSwap: a navigation-map repair (version bump) also
// invalidates outstanding resume tokens.
func TestResumeRefusedOnMapSwap(t *testing.T) {
	ts, wb := newCarServer(t, core.Config{}, Config{})
	_, token := fullStream(t, ts.URL, wideQuery)

	rels := wb.Registry.Relations()
	if len(rels) == 0 {
		t.Fatal("no relations")
	}
	name := rels[0].Name
	if _, err := wb.Registry.SwapMap(name, wb.Registry.CurrentMap(name).Clone()); err != nil {
		t.Fatal(err)
	}

	resp := postResume(t, ts.URL, wideQuery, 1, token)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume after map swap: status = %d, want 409", resp.StatusCode)
	}
}

// TestBadResumeRequests: half-specified or malformed resume parameters
// are a 400 bad-resume, distinct from bad-query.
func TestBadResumeRequests(t *testing.T) {
	ts, wb := newCarServer(t, core.Config{}, Config{})
	token := wb.ConsistencyToken()

	cases := []struct {
		name    string
		headers map[string]string
		body    string
	}{
		{"index-without-token", map[string]string{"Last-Event-Index": "3"}, wideQuery},
		{"token-without-index", map[string]string{"X-Resume-Token": token}, wideQuery},
		{"negative-index", map[string]string{"Last-Event-Index": "-1", "X-Resume-Token": token}, wideQuery},
		{"non-numeric-index", map[string]string{"Last-Event-Index": "three", "X-Resume-Token": token}, wideQuery},
		{"negative-json-index", nil,
			`{"query":` + strconv.Quote(wideQuery) + `,"last_event_index":-2,"resume_token":"` + token + `"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range tc.headers {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			decodeJSONBody(t, resp, &env)
			if env.Error.Code != "bad-resume" {
				t.Fatalf("code = %q, want bad-resume", env.Error.Code)
			}
		})
	}
}

// TestResumeViaJSONBody: the body-field spelling of a resume behaves
// exactly like the header spelling.
func TestResumeViaJSONBody(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	lines, token := fullStream(t, ts.URL, wideQuery)
	want := normalizeStream(t, deepCopyLines(t, lines))

	k := 1
	body := `{"query":` + strconv.Quote(wideQuery) + `,"last_event_index":` + strconv.Itoa(k) +
		`,"resume_token":"` + token + `"}`
	resp := postQuery(t, ts.URL, "", body)
	if resp.StatusCode != 200 {
		t.Fatalf("JSON-body resume status = %d", resp.StatusCode)
	}
	stitched := append(deepCopyLines(t, lines[:k+1]), decodeLines(t, resp.Body)...)
	if got := normalizeStream(t, stitched); got != want {
		t.Fatalf("JSON-body resume stitches differently:\n got %s\nwant %s", got, want)
	}
}

// TestResumePastEndDeliversTrailerOnly: an offset at or past the last
// delivery suppresses everything but the terminal event, so a client
// that lost only the trailer recovers just the trailer.
func TestResumePastEndDeliversTrailerOnly(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	lines, token := fullStream(t, ts.URL, wideQuery)

	resp := postResume(t, ts.URL, wideQuery, len(lines)+100, token)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resumed := decodeLines(t, resp.Body)
	if len(resumed) != 1 || resumed[0]["event"] != "trailer" {
		t.Fatalf("resume past end delivered %d events (%v), want the trailer alone", len(resumed), resumed)
	}
}

// TestResumeAccounting: resumed streams are visible in /metrics — the
// resume itself and the suppressed (acked-not-resent) events.
func TestResumeAccounting(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	lines, token := fullStream(t, ts.URL, wideQuery)

	k := 1 // suppresses meta (seq 0) and delivery seq 1
	resp := postResume(t, ts.URL, wideQuery, k, token)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	decodeLines(t, resp.Body)
	_ = lines

	metrics := fetchMetrics(t, ts.URL)
	for _, want := range []string{"server_resumes_total 1", "server_resume_skipped_total 2"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func fetchMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func decodeJSONBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
