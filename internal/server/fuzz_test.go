package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"webbase/internal/core"
	"webbase/internal/sites"
)

// FuzzQueryEndpoint throws arbitrary bytes at POST /query. Whatever the
// body — malformed UR text, truncated JSON envelopes, invalid UTF-8,
// oversized payloads — the endpoint must not panic and must answer with
// well-formed JSON: either an NDJSON stream whose every line parses (a
// 200), or an error envelope whose status/code agree with the HTTP
// status line.
func FuzzQueryEndpoint(f *testing.F) {
	wb, err := core.New(core.Config{Fetcher: sites.BuildWorld().Server, Workers: 2})
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(Config{System: wb, MaxBodyBytes: 4096})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add("SELECT Make, Model WHERE Make = 'saab'")
	f.Add("SELECT")
	f.Add("{")
	f.Add(`{"query":"SELECT Make"}`)
	f.Add(`{"query": "SELECT`)
	f.Add("\xff\xfe\xfd SELECT")
	f.Add(strings.Repeat("x", 8192))
	f.Add("SELECT Bogus")
	f.Add("")
	f.Add("SELECT Make WHERE Price < ")
	f.Add(`{"query": 42}`)
	// Pruning-relevant and newly-rejected query shapes: LIMIT, ORDER BY,
	// constant selections, unsatisfiable clauses, trailing commas and
	// duplicate sort keys (the latter two must 400 as bad-query).
	f.Add("SELECT Make, Model, Price WHERE Make = 'ford' LIMIT 1")
	f.Add("SELECT Make, Model WHERE Make = 'jaguar' AND Make = 'ford'")
	f.Add("SELECT Make, Year WHERE Year >= 1995 AND Year <= 1992 LIMIT 3")
	f.Add("SELECT Make, Model WHERE Make = 'jaguar' ORDER BY Make LIMIT 2")
	f.Add("SELECT Make ORDER BY Price DESC, Make ASC LIMIT 5")
	f.Add("SELECT Make ORDER BY Make,")
	f.Add("SELECT Make ORDER BY Price, Price")

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic

		resp := rec.Result()
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			n := 0
			last := ""
			for sc.Scan() {
				var m map[string]any
				if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
					t.Fatalf("body %q: malformed stream line %q: %v", body, sc.Text(), err)
				}
				ev, _ := m["event"].(string)
				if ev == "" {
					t.Fatalf("body %q: stream line without event: %q", body, sc.Text())
				}
				last = ev
				n++
			}
			if n == 0 || (last != "trailer" && last != "error") {
				t.Fatalf("body %q: 200 stream of %d events ends with %q, want trailer or error", body, n, last)
			}
		default:
			var env errorEnvelope
			dec := json.NewDecoder(resp.Body)
			if err := dec.Decode(&env); err != nil {
				t.Fatalf("body %q: status %d with non-envelope body: %v", body, resp.StatusCode, err)
			}
			if env.Error.Code == "" || env.Error.Status != resp.StatusCode {
				t.Fatalf("body %q: malformed envelope %+v for status %d", body, env.Error, resp.StatusCode)
			}
		}
	})
}

// FuzzResumeOffset throws arbitrary resume parameters — offsets and
// tokens, via header and body — at POST /query. Whatever the input, the
// endpoint must not panic and must answer one of exactly three ways: a
// typed error envelope (bad-resume, resume-inconsistent, bad-query, ...),
// or a 200 stream that is well-formed AND honors the suppression
// contract — no event at or below the offset, no duplicate sequence
// numbers, and a terminal event present.
func FuzzResumeOffset(f *testing.F) {
	wb, err := core.New(core.Config{Fetcher: sites.BuildWorld().Server, Workers: 2})
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(Config{System: wb, MaxBodyBytes: 4096})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()
	token := wb.ConsistencyToken()
	const q = "SELECT Make, Model WHERE Make = 'saab'"

	f.Add("0", token, false)
	f.Add("1", token, true)
	f.Add("2", token, false)
	f.Add("999999999", token, true)
	f.Add("-1", token, false)
	f.Add("0x10", token, false)
	f.Add("", token, false)
	f.Add("3", "", false)
	f.Add("3", "deadbeefdead", true)
	f.Add("9223372036854775808", token, false) // int64 overflow
	f.Add("1e3", token, true)
	f.Add("+2", token, false)

	f.Fuzz(func(t *testing.T, offset, tok string, viaBody bool) {
		var req *http.Request
		if viaBody {
			body, err := json.Marshal(map[string]any{
				"query": q, "last_event_index": json.RawMessage(offset), "resume_token": tok,
			})
			if err != nil || !json.Valid(body) {
				t.Skip() // offset made the envelope unencodable; not a server input
			}
			req = httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(string(body)))
		} else {
			req = httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(q))
			req.Header.Set("Last-Event-Index", offset)
			req.Header.Set("X-Resume-Token", tok)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic

		resp := rec.Result()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var env errorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("offset %q token %q: status %d with non-envelope body: %v", offset, tok, resp.StatusCode, err)
			}
			if env.Error.Code == "" || env.Error.Status != resp.StatusCode {
				t.Fatalf("offset %q token %q: malformed envelope %+v for status %d", offset, tok, env.Error, resp.StatusCode)
			}
			return
		}
		// Parse the resume offset the way the server would have; a 200
		// with an unparsable offset means it ran as a fresh stream.
		resumeFrom := -1
		if n, err := strconv.Atoi(offset); err == nil && n >= 0 && tok != "" {
			resumeFrom = n
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		seen := map[int]bool{}
		last := ""
		for sc.Scan() {
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatalf("offset %q: malformed stream line %q: %v", offset, sc.Text(), err)
			}
			ev, _ := m["event"].(string)
			seq := int(m["seq"].(float64))
			if seen[seq] {
				t.Fatalf("offset %q: duplicate seq %d", offset, seq)
			}
			seen[seq] = true
			if seq <= resumeFrom && ev != "trailer" && ev != "error" {
				t.Fatalf("offset %q: non-terminal event %q at suppressed seq %d", offset, ev, seq)
			}
			last = ev
		}
		if last != "trailer" && last != "error" {
			t.Fatalf("offset %q: stream ends with %q, want trailer or error", offset, last)
		}
	})
}
