package server

import (
	"testing"
	"time"

	"webbase/internal/core"
	"webbase/internal/sites"
	"webbase/internal/web"
)

// Keepalive regression proofs. The -keepalive contract has two halves:
// with it off (the default) not a single byte of any stream changes, and
// with it on the keepalive events are pure liveness — seq-less, never
// acked, invisible to resume numbering — so stripping them recovers the
// exact golden stream.

// slowFetcher delays every page fetch, opening real idle gaps between
// deliveries for the keepalive ticker to fill.
type slowFetcher struct {
	inner web.Fetcher
	delay time.Duration
}

func (s slowFetcher) Fetch(req *web.Request) (*web.Response, error) {
	time.Sleep(s.delay)
	return s.inner.Fetch(req)
}

// stripKeepalives splits a decoded stream into its real events and the
// count of keepalive lines interleaved among them.
func stripKeepalives(lines []map[string]any) (kept []map[string]any, keepalives int) {
	for _, l := range lines {
		if l["event"] == "keepalive" {
			keepalives++
			continue
		}
		kept = append(kept, l)
	}
	return kept, keepalives
}

// TestKeepaliveSeqlessAndStrippable: a stream served with keepalives on
// interleaves seq-less keepalive events between deliveries, and stripping
// them yields a stream normalized-byte-identical to one served with
// keepalives off — the flag changes liveness, never content.
func TestKeepaliveSeqlessAndStrippable(t *testing.T) {
	slow := slowFetcher{inner: sites.BuildWorld().Server, delay: 20 * time.Millisecond}
	tsOn, _ := newCarServer(t, core.Config{Workers: 1, Fetcher: slow},
		Config{KeepaliveInterval: 4 * time.Millisecond})

	resp := postQuery(t, tsOn.URL, "", wideQuery)
	if resp.StatusCode != 200 {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	kept, keepalives := stripKeepalives(lines)
	if keepalives == 0 {
		t.Fatal("a 20ms-per-fetch stream under a 4ms keepalive interval emitted no keepalives")
	}
	for _, l := range lines {
		if l["event"] != "keepalive" {
			continue
		}
		if _, has := l["seq"]; has {
			t.Fatalf("keepalive event carries a seq: %v — keepalives must stay outside the numbering", l)
		}
	}
	for i, l := range kept {
		if int(l["seq"].(float64)) != i {
			t.Fatalf("real event %d carries seq %v, want %d — keepalives must not consume sequence numbers",
				i, l["seq"], i)
		}
	}

	// The same query on a keepalive-off server over the same deterministic
	// world: the stripped stream must normalize to identical bytes.
	tsOff, _ := newCarServer(t, core.Config{Workers: 1}, Config{})
	respOff := postQuery(t, tsOff.URL, "", wideQuery)
	if respOff.StatusCode != 200 {
		t.Fatalf("keepalive-off stream status = %d", respOff.StatusCode)
	}
	linesOff := decodeLines(t, respOff.Body)
	if got, want := normalizeStream(t, kept), normalizeStream(t, linesOff); got != want {
		t.Fatalf("stripped keepalive-on stream differs from keepalive-off stream:\n got %s\nwant %s", got, want)
	}
}

// TestResumeAcrossKeepalive: resuming a stream that interleaved keepalives
// stitches byte-identically at every kill point. Keepalives are never
// acked — Last-Event-Index counts only real events — so if they leaked
// into the numbering, suppression would miscount and some stitch would
// duplicate or drop a delivery.
func TestResumeAcrossKeepalive(t *testing.T) {
	slow := slowFetcher{inner: sites.BuildWorld().Server, delay: 20 * time.Millisecond}
	ts, _ := newCarServer(t, core.Config{Workers: 1, Fetcher: slow},
		Config{KeepaliveInterval: 4 * time.Millisecond})

	resp := postQuery(t, ts.URL, "", wideQuery)
	if resp.StatusCode != 200 {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	kept, keepalives := stripKeepalives(decodeLines(t, resp.Body))
	if keepalives == 0 {
		t.Fatal("original stream interleaved no keepalives — the resume would cross nothing")
	}
	token, _ := kept[0]["resume_token"].(string)
	if token == "" {
		t.Fatal("meta carries no resume_token")
	}
	want := normalizeStream(t, deepCopyLines(t, kept))
	for k := 0; k < len(kept)-1; k++ {
		resp := postResume(t, ts.URL, wideQuery, k, token)
		if resp.StatusCode != 200 {
			t.Fatalf("resume at k=%d: status = %d", k, resp.StatusCode)
		}
		resumed, _ := stripKeepalives(decodeLines(t, resp.Body))
		for _, l := range resumed {
			if int(l["seq"].(float64)) <= k {
				t.Fatalf("resume at k=%d re-sent suppressed event seq=%v", k, l["seq"])
			}
		}
		stitched := append(deepCopyLines(t, kept[:k+1]), resumed...)
		if got := normalizeStream(t, stitched); got != want {
			t.Fatalf("resume at k=%d across keepalives stitches differently:\n got %s\nwant %s", k, got, want)
		}
	}
}
