package server

import (
	"compress/gzip"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"webbase/internal/core"
	"webbase/internal/relation"
	"webbase/internal/ur"
)

// The NDJSON wire protocol: one JSON object per line, flushed as
// produced. A successful stream is
//
//	{"event":"meta","seq":0, ...}
//	{"event":"tuples"|"unavailable"|"skipped","seq":1..N, ...}   // one per maximal object, plan order
//	{"event":"trailer","seq":N+1, ...}
//
// and a query that fails after streaming began ends with an
// {"event":"error", ...} line instead of the trailer. A query that
// fails before anything streamed gets a plain JSON error envelope with
// an accurate status code (see writeEnvelope); the stream path is
// committed to 200 only once the first event is written.
//
// Every event carries a deterministic sequence number: deliveries are
// released by the UR layer's plan-order gate, so seq k names the same
// event bytes on every execution of the same query against the same web
// state. That makes the stream resumable — a client that received events
// through seq k repeats the request with Last-Event-Index: k and the
// original meta event's resume_token, and the server re-executes the
// query with events seq <= k suppressed (acked, not re-sent). The
// stitched sequence is byte-identical to an uninterrupted run; if the
// token no longer matches (a cache clear or a map swap changed the web
// view), the resume is refused with 409 resume-inconsistent instead of
// splicing answers from two different webs.

// metaEvent opens a stream: the request identity, the answer schema, and
// the consistency token a resume must present.
type metaEvent struct {
	Event     string   `json:"event"` // "meta"
	Seq       int      `json:"seq"`   // always 0
	RequestID string   `json:"request_id"`
	Query     string   `json:"query"`
	Schema    []string `json:"schema"`
	// ResumeToken fingerprints the web view (cache generation + map
	// versions) this stream's bytes are a function of. A reconnecting
	// client echoes it in X-Resume-Token.
	ResumeToken string `json:"resume_token"`
}

// tuplesEvent carries one maximal object's new unique tuples — or, for
// an ORDER BY / LIMIT query (index -1, buffered), the whole sorted
// answer at once.
type tuplesEvent struct {
	Event    string   `json:"event"` // "tuples"
	Seq      int      `json:"seq"`
	Index    int      `json:"index"`
	Object   []string `json:"object,omitempty"`
	Buffered bool     `json:"buffered,omitempty"`
	Count    int      `json:"count"`
	Tuples   [][]any  `json:"tuples"`
}

// unavailableEvent reports a maximal object degraded out of the answer.
type unavailableEvent struct {
	Event   string         `json:"event"` // "unavailable"
	Seq     int            `json:"seq"`
	Index   int            `json:"index"`
	Object  []string       `json:"object"`
	Failure ur.SiteFailure `json:"failure"`
}

// skippedEvent reports a maximal object skipped on binding grounds.
type skippedEvent struct {
	Event  string   `json:"event"` // "skipped"
	Seq    int      `json:"seq"`
	Index  int      `json:"index"`
	Object []string `json:"object"`
	Reason string   `json:"reason"`
}

// keepaliveEvent is a seq-less liveness probe: emitted on a timer while
// evaluation sits between deliveries, so a client watchdog can tell an
// idle-but-alive stream from a stalled one. It carries no sequence
// number, is never acked by a resume, and never counts toward resume
// numbering — suppression and seq continuation see only real events.
type keepaliveEvent struct {
	Event string `json:"event"` // "keepalive"
}

// errorBody is the error payload shared by mid-stream error events and
// pre-stream error envelopes.
type errorBody struct {
	Code      string `json:"code"`
	Status    int    `json:"status"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// errorEvent ends a stream that failed after its 200 was committed.
type errorEvent struct {
	Event string    `json:"event"` // "error"
	Seq   int       `json:"seq"`
	Error errorBody `json:"error"`
}

// trailerEvent closes a successful stream with everything the
// in-process caller would have gotten from Result and QueryStats.
type trailerEvent struct {
	Event   string   `json:"event"` // "trailer"
	Seq     int      `json:"seq"`
	Tuples  int      `json:"tuples"`
	Objects int      `json:"objects"`
	Skipped []string `json:"skipped,omitempty"`
	// Degradation mirrors Result.Degradation; Report is its exact
	// String() rendering so remote callers see byte-for-byte what an
	// in-process caller would print.
	Degradation *degradationReport `json:"degradation,omitempty"`
	Stats       *core.QueryStats   `json:"stats"`
}

type degradationReport struct {
	Unavailable []ur.SiteFailure `json:"unavailable"`
	StaleServed int64            `json:"stale_served"`
	Report      string           `json:"report"`
}

// streamWriter writes the NDJSON protocol onto one response. Deliveries
// come through the plan-order gate and the trailer is written after
// evaluation joins its workers, so those writers are serialized among
// themselves — but the keepalive ticker is an out-of-band goroutine that
// writes between deliveries, so every write path takes mu.
//
// resumeFrom >= 0 turns the writer into the suppressed tail of a resumed
// stream: the meta event and every delivery with seq <= resumeFrom are
// acked (counted in skipped) but not re-sent, while sequence numbering
// continues exactly as in an uninterrupted run. Terminal events (trailer,
// error) are never suppressed — a resume means the client did not see the
// stream end.
type streamWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	gz      *gzip.Writer
	enc     *json.Encoder
	meta    metaEvent
	started bool

	resumeFrom int // suppress events with seq <= resumeFrom; -1 = fresh stream
	lastSeq    int // highest delivery seq observed, sent or suppressed
	skipped    int // events suppressed by resume (meta included)
	useGzip    bool

	kaStop chan struct{} // closes to stop the keepalive ticker
	kaDone chan struct{} // closes when the ticker goroutine has exited
}

func newStreamWriter(w http.ResponseWriter, rid, query string, schema []string, token string, resumeFrom int, useGzip bool) *streamWriter {
	f, _ := w.(http.Flusher)
	return &streamWriter{
		w: w, flusher: f, enc: json.NewEncoder(w),
		meta:       metaEvent{Event: "meta", Seq: 0, RequestID: rid, Query: query, Schema: schema, ResumeToken: token},
		resumeFrom: resumeFrom,
		useGzip:    useGzip,
	}
}

// startLocked commits the response to a 200 NDJSON stream and emits the
// meta event (suppressed on a resume — the client has it). Idempotent;
// called lazily by the first event so pre-stream failures can still use
// a proper status code. Callers hold mu.
func (sw *streamWriter) startLocked() {
	if sw.started {
		return
	}
	sw.started = true
	sw.w.Header().Set("Content-Type", "application/x-ndjson")
	sw.w.Header().Set("X-Request-Id", sw.meta.RequestID)
	if sw.useGzip {
		sw.w.Header().Set("Content-Encoding", "gzip")
		sw.w.Header().Set("Vary", "Accept-Encoding")
	}
	sw.w.WriteHeader(http.StatusOK)
	if sw.useGzip {
		sw.gz = gzip.NewWriter(sw.w)
		sw.enc = json.NewEncoder(sw.gz)
	}
	if sw.resumeFrom >= 0 {
		sw.skipped++ // the meta event, seq 0, already delivered originally
		return
	}
	sw.emitLocked(sw.meta)
}

func (sw *streamWriter) emitLocked(event any) {
	sw.enc.Encode(event) // an aborted client surfaces at the next write; nothing to do here
	if sw.gz != nil {
		// Push the event out of the compressor: resumability depends on the
		// client seeing each event as soon as it exists, compressed or not.
		sw.gz.Flush()
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// finishLocked closes the compression layer (if any) after the terminal
// event. Callers hold mu and have already stopped the keepalive ticker.
func (sw *streamWriter) finishLocked() {
	if sw.gz != nil {
		sw.gz.Close()
	}
}

// startKeepalive launches the keepalive ticker: every interval it emits
// one seq-less keepalive event, flushed through the compression layer
// like any other event, but only once the stream has committed — a query
// still failing pre-stream keeps its accurate error envelope. A zero
// interval (the default) is a no-op: not a single byte of any stream
// changes, which is what keeps the golden stream tests byte-identical.
func (sw *streamWriter) startKeepalive(interval time.Duration) {
	if interval <= 0 {
		return
	}
	sw.kaStop = make(chan struct{})
	sw.kaDone = make(chan struct{})
	go func() {
		defer close(sw.kaDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-sw.kaStop:
				return
			case <-t.C:
				sw.mu.Lock()
				if sw.started {
					sw.emitLocked(keepaliveEvent{Event: "keepalive"})
				}
				sw.mu.Unlock()
			}
		}
	}()
}

// stopKeepalive stops the ticker and waits for its goroutine to exit, so
// after it returns no keepalive can interleave with a terminal event or
// land on a closed gzip writer. Idempotent; a no-op when keepalives were
// never started.
func (sw *streamWriter) stopKeepalive() {
	if sw.kaStop == nil {
		return
	}
	close(sw.kaStop)
	<-sw.kaDone
	sw.kaStop = nil
}

// writeDelivery ships one gate delivery as its wire event. Deliveries at
// or before the resume offset were already delivered to this client by a
// previous attempt: they are acked but not re-sent.
func (sw *streamWriter) writeDelivery(d ur.ObjectDelivery) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.startLocked()
	if d.Seq > sw.lastSeq {
		sw.lastSeq = d.Seq
	}
	if sw.resumeFrom >= 0 && d.Seq <= sw.resumeFrom {
		sw.skipped++
		return
	}
	switch {
	case d.Failure != nil:
		sw.emitLocked(unavailableEvent{Event: "unavailable", Seq: d.Seq, Index: d.Index, Object: d.Object, Failure: *d.Failure})
	case d.Skipped != "":
		sw.emitLocked(skippedEvent{Event: "skipped", Seq: d.Seq, Index: d.Index, Object: d.Object, Reason: d.Skipped})
	default:
		sw.emitLocked(tuplesEvent{Event: "tuples", Seq: d.Seq, Index: d.Index, Object: d.Object,
			Buffered: d.Buffered, Count: len(d.Tuples), Tuples: encodeTuples(d.Tuples)})
	}
}

// writeTrailer closes a successful stream. The trailer's sequence number
// continues the delivery numbering — suppressed deliveries count — so a
// stitched resumed stream is numbered exactly like an uninterrupted one.
func (sw *streamWriter) writeTrailer(res *ur.Result, qs *core.QueryStats) {
	sw.stopKeepalive()
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.startLocked()
	ev := trailerEvent{
		Event:   "trailer",
		Seq:     sw.lastSeq + 1,
		Tuples:  res.Relation.Len(),
		Objects: len(res.Plan.Objects),
		Skipped: res.Skipped,
		Stats:   qs,
	}
	if res.Degradation != nil {
		ev.Degradation = &degradationReport{
			Unavailable: res.Degradation.Unavailable,
			StaleServed: res.Degradation.StaleServed,
			Report:      res.Degradation.String(),
		}
	}
	sw.emitLocked(ev)
	sw.finishLocked()
}

// writeErrorEvent ends a stream whose query failed after events were
// already written.
func (sw *streamWriter) writeErrorEvent(body errorBody) {
	sw.stopKeepalive()
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.emitLocked(errorEvent{Event: "error", Seq: sw.lastSeq + 1, Error: body})
	sw.finishLocked()
}

// encodeTuples renders tuples as JSON arrays of native values (null,
// string, number, bool), positionally aligned with the meta schema.
func encodeTuples(ts []relation.Tuple) [][]any {
	out := make([][]any, len(ts))
	for i, t := range ts {
		row := make([]any, len(t))
		for j, v := range t {
			switch v.Kind() {
			case relation.KindString:
				row[j] = v.Str()
			case relation.KindInt:
				row[j] = v.IntVal()
			case relation.KindFloat:
				row[j] = v.FloatVal()
			case relation.KindBool:
				row[j] = v.BoolVal()
			default:
				row[j] = nil
			}
		}
		out[i] = row
	}
	return out
}

// gzipAccepted reports whether the request allows a gzip response body.
func gzipAccepted(r *http.Request) bool {
	for _, enc := range r.Header.Values("Accept-Encoding") {
		for _, part := range splitComma(enc) {
			if part == "gzip" || hasPrefixFold(part, "gzip;") {
				return true
			}
		}
	}
	return false
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := trimSpace(s[start:i])
			if part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		a, b := s[i], prefix[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// gzipWriter compresses one non-streaming response (GET /metrics).
func writeGzipped(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Set("Vary", "Accept-Encoding")
	w.WriteHeader(status)
	gz := gzip.NewWriter(w)
	gz.Write(body)
	gz.Close()
}
