package server

import (
	"encoding/json"
	"net/http"

	"webbase/internal/core"
	"webbase/internal/relation"
	"webbase/internal/ur"
)

// The NDJSON wire protocol: one JSON object per line, flushed as
// produced. A successful stream is
//
//	{"event":"meta", ...}
//	{"event":"tuples"|"unavailable"|"skipped", ...}   // one per maximal object, plan order
//	{"event":"trailer", ...}
//
// and a query that fails after streaming began ends with an
// {"event":"error", ...} line instead of the trailer. A query that
// fails before anything streamed gets a plain JSON error envelope with
// an accurate status code (see writeEnvelope); the stream path is
// committed to 200 only once the first event is written.

// metaEvent opens a stream: the request identity and the answer schema.
type metaEvent struct {
	Event     string   `json:"event"` // "meta"
	RequestID string   `json:"request_id"`
	Query     string   `json:"query"`
	Schema    []string `json:"schema"`
}

// tuplesEvent carries one maximal object's new unique tuples — or, for
// an ORDER BY / LIMIT query (index -1, buffered), the whole sorted
// answer at once.
type tuplesEvent struct {
	Event    string   `json:"event"` // "tuples"
	Index    int      `json:"index"`
	Object   []string `json:"object,omitempty"`
	Buffered bool     `json:"buffered,omitempty"`
	Count    int      `json:"count"`
	Tuples   [][]any  `json:"tuples"`
}

// unavailableEvent reports a maximal object degraded out of the answer.
type unavailableEvent struct {
	Event   string         `json:"event"` // "unavailable"
	Index   int            `json:"index"`
	Object  []string       `json:"object"`
	Failure ur.SiteFailure `json:"failure"`
}

// skippedEvent reports a maximal object skipped on binding grounds.
type skippedEvent struct {
	Event  string   `json:"event"` // "skipped"
	Index  int      `json:"index"`
	Object []string `json:"object"`
	Reason string   `json:"reason"`
}

// errorBody is the error payload shared by mid-stream error events and
// pre-stream error envelopes.
type errorBody struct {
	Code      string `json:"code"`
	Status    int    `json:"status"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// errorEvent ends a stream that failed after its 200 was committed.
type errorEvent struct {
	Event string    `json:"event"` // "error"
	Error errorBody `json:"error"`
}

// trailerEvent closes a successful stream with everything the
// in-process caller would have gotten from Result and QueryStats.
type trailerEvent struct {
	Event   string   `json:"event"` // "trailer"
	Tuples  int      `json:"tuples"`
	Objects int      `json:"objects"`
	Skipped []string `json:"skipped,omitempty"`
	// Degradation mirrors Result.Degradation; Report is its exact
	// String() rendering so remote callers see byte-for-byte what an
	// in-process caller would print.
	Degradation *degradationReport `json:"degradation,omitempty"`
	Stats       *core.QueryStats   `json:"stats"`
}

type degradationReport struct {
	Unavailable []ur.SiteFailure `json:"unavailable"`
	StaleServed int64            `json:"stale_served"`
	Report      string           `json:"report"`
}

// streamWriter writes the NDJSON protocol onto one response. Writes are
// already serialized — deliveries come through the plan-order gate and
// the trailer is written after evaluation joins its workers — so the
// writer needs no lock of its own.
type streamWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
	meta    metaEvent
	started bool
}

func newStreamWriter(w http.ResponseWriter, rid, query string, schema []string) *streamWriter {
	f, _ := w.(http.Flusher)
	return &streamWriter{
		w: w, flusher: f, enc: json.NewEncoder(w),
		meta: metaEvent{Event: "meta", RequestID: rid, Query: query, Schema: schema},
	}
}

// start commits the response to a 200 NDJSON stream and emits the meta
// event. Idempotent; called lazily by the first event so pre-stream
// failures can still use a proper status code.
func (sw *streamWriter) start() {
	if sw.started {
		return
	}
	sw.started = true
	sw.w.Header().Set("Content-Type", "application/x-ndjson")
	sw.w.Header().Set("X-Request-Id", sw.meta.RequestID)
	sw.w.WriteHeader(http.StatusOK)
	sw.emit(sw.meta)
}

func (sw *streamWriter) emit(event any) {
	sw.enc.Encode(event) // an aborted client surfaces at the next write; nothing to do here
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// writeDelivery ships one gate delivery as its wire event.
func (sw *streamWriter) writeDelivery(d ur.ObjectDelivery) {
	sw.start()
	switch {
	case d.Failure != nil:
		sw.emit(unavailableEvent{Event: "unavailable", Index: d.Index, Object: d.Object, Failure: *d.Failure})
	case d.Skipped != "":
		sw.emit(skippedEvent{Event: "skipped", Index: d.Index, Object: d.Object, Reason: d.Skipped})
	default:
		sw.emit(tuplesEvent{Event: "tuples", Index: d.Index, Object: d.Object,
			Buffered: d.Buffered, Count: len(d.Tuples), Tuples: encodeTuples(d.Tuples)})
	}
}

// writeTrailer closes a successful stream.
func (sw *streamWriter) writeTrailer(res *ur.Result, qs *core.QueryStats) {
	sw.start()
	ev := trailerEvent{
		Event:   "trailer",
		Tuples:  res.Relation.Len(),
		Objects: len(res.Plan.Objects),
		Skipped: res.Skipped,
		Stats:   qs,
	}
	if res.Degradation != nil {
		ev.Degradation = &degradationReport{
			Unavailable: res.Degradation.Unavailable,
			StaleServed: res.Degradation.StaleServed,
			Report:      res.Degradation.String(),
		}
	}
	sw.emit(ev)
}

// writeErrorEvent ends a stream whose query failed after events were
// already written.
func (sw *streamWriter) writeErrorEvent(body errorBody) {
	sw.emit(errorEvent{Event: "error", Error: body})
}

// encodeTuples renders tuples as JSON arrays of native values (null,
// string, number, bool), positionally aligned with the meta schema.
func encodeTuples(ts []relation.Tuple) [][]any {
	out := make([][]any, len(ts))
	for i, t := range ts {
		row := make([]any, len(t))
		for j, v := range t {
			switch v.Kind() {
			case relation.KindString:
				row[j] = v.Str()
			case relation.KindInt:
				row[j] = v.IntVal()
			case relation.KindFloat:
				row[j] = v.FloatVal()
			case relation.KindBool:
				row[j] = v.BoolVal()
			default:
				row[j] = nil
			}
		}
		out[i] = row
	}
	return out
}
