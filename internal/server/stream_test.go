package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"webbase/internal/core"
	"webbase/internal/sites"
	"webbase/internal/web"
)

// wideQuery projects Contact too, so both source objects contribute
// distinct tuple shapes — a stricter determinism probe than the headline
// projection.
const wideQuery = "SELECT Make, Model, Year, Price, BBPrice, Contact " +
	"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' " +
	"AND Condition = 'good' AND Price < BBPrice"

// streamOutcome runs wideQuery through a freshly built server — its own
// simulated world, optional deterministic fault injection — and folds
// the NDJSON stream minus the trailer's stats (wall-clock and
// scheduling detail) into one comparable string.
func streamOutcome(t *testing.T, failEvery uint64, workers int) string {
	t.Helper()
	var fetcher web.Fetcher = sites.BuildWorld().Server
	if failEvery > 0 {
		fetcher = &web.Flaky{Inner: fetcher, FailEvery: failEvery}
	}
	wb, err := core.New(core.Config{Fetcher: fetcher, Workers: workers, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: wb})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postQuery(t, ts.URL, "", wideQuery)
	if resp.StatusCode != 200 {
		t.Fatalf("failEvery=%d workers=%d: status = %d", failEvery, workers, resp.StatusCode)
	}
	var sb strings.Builder
	for _, l := range decodeLines(t, resp.Body) {
		delete(l, "stats")      // trailer: elapsed, cache hits etc. are run-dependent
		delete(l, "request_id") // meta: server-assigned sequence number
		sb.WriteString(mustJSON(t, l))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestStreamDeterminism is the streaming-layer version of the chaos
// determinism guarantee: the entire NDJSON stream — event order, tuple
// order, degradation — is byte-identical whether the UR layer evaluates
// sequentially or with 8 workers, healthy or under deterministic fault
// injection. The plan-order gate is what's under test; run with -race.
func TestStreamDeterminism(t *testing.T) {
	for _, failEvery := range []uint64{0, 3} {
		seq := streamOutcome(t, failEvery, 1)
		for run := 0; run < 2; run++ {
			if par := streamOutcome(t, failEvery, 8); par != seq {
				t.Errorf("failEvery=%d run %d: workers=8 stream differs from workers=1\nseq:\n%spar:\n%s",
					failEvery, run, seq, par)
			}
		}
	}
}

// TestStreamMatchesInProcessUnderChaos: under the same deterministic
// fault schedule, the streamed union equals the in-process answer a twin
// webbase computes — remote callers lose nothing to the wire.
func TestStreamMatchesInProcessUnderChaos(t *testing.T) {
	chaos := func() web.Fetcher {
		return &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: 3}
	}
	wb, err := core.New(core.Config{Fetcher: chaos(), Workers: 8, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: wb})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postQuery(t, ts.URL, "", wideQuery)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got := mustJSON(t, streamedTuples(decodeLines(t, resp.Body)))

	twin, err := core.New(core.Config{Fetcher: chaos(), Workers: 8, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := twin.QueryString(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustJSON(t, encodeTuples(res.Relation.Tuples())); got != want {
		t.Errorf("streamed union != in-process answer under chaos\nstream:     %s\nin-process: %s", got, want)
	}
}
