package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webbase/internal/apartments"
	"webbase/internal/core"
	"webbase/internal/sites"
	"webbase/internal/web"
)

// carQuery is the paper's headline query: no ORDER BY, so the answer
// streams incrementally, one event per maximal object.
const carQuery = "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'jaguar' AND Year >= 1993 " +
	"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice"

// apartmentsDomain assembles the second application domain, proving the
// server is domain-independent.
var apartmentsDomain = core.Domain{
	Registry: apartments.Registry,
	Logical:  apartments.Logical,
	UR:       apartments.UR,
}

// newCarServer builds a usedcars webbase (default fetcher: the simulated
// world) and serves it over httptest.
func newCarServer(t *testing.T, cfg core.Config, scfg Config) (*httptest.Server, *core.Webbase) {
	t.Helper()
	if cfg.Fetcher == nil {
		cfg.Fetcher = sites.BuildWorld().Server
	}
	wb, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.System = wb
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, wb
}

// postQuery POSTs a query body, optionally with an API key.
func postQuery(t *testing.T, url, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeLines parses an NDJSON body into generic JSON objects, failing
// on any malformed line.
func decodeLines(t *testing.T, body io.Reader) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// streamedTuples concatenates every tuples event's rows, in stream order.
func streamedTuples(lines []map[string]any) []any {
	var out []any
	for _, l := range lines {
		if l["event"] == "tuples" {
			out = append(out, l["tuples"].([]any)...)
		}
	}
	return out
}

// mustJSON marshals for byte-level comparisons, canonicalized through a
// decode/encode round trip so struct field order and map key order
// compare equal.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var generic any
	if err := json.Unmarshal(b, &generic); err != nil {
		t.Fatal(err)
	}
	b, err = json.Marshal(generic)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStreamGoldenOrdering pins the golden NDJSON stream of the headline
// query: meta, one tuples event per maximal object in plan order with
// the exact per-object contribution counts, then the trailer. Workers=8
// on purpose — the plan-order gate must make the stream independent of
// scheduling.
func TestStreamGoldenOrdering(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{Workers: 8}, Config{})
	resp := postQuery(t, ts.URL, "", carQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := decodeLines(t, resp.Body)
	if len(lines) != 4 {
		t.Fatalf("got %d events, want 4 (meta, 2 objects, trailer): %v", len(lines), lines)
	}
	events := make([]string, len(lines))
	for i, l := range lines {
		events[i] = l["event"].(string)
	}
	if got, want := fmt.Sprint(events), "[meta tuples tuples trailer]"; got != want {
		t.Fatalf("event sequence = %s, want %s", got, want)
	}
	if got := mustJSON(t, lines[0]["schema"]); got != `["Make","Model","Year","Price","BBPrice"]` {
		t.Errorf("meta schema = %s", got)
	}
	type objGold struct {
		index  float64
		object string
		count  float64
	}
	golds := []objGold{
		{0, `["BluePrice","Classifieds","Safety"]`, 40},
		{1, `["BluePrice","Dealers","Safety"]`, 35},
	}
	for i, g := range golds {
		l := lines[i+1]
		if l["index"] != g.index || mustJSON(t, l["object"]) != g.object || l["count"] != g.count {
			t.Errorf("object event %d = index %v object %s count %v, want %v %s %v",
				i, l["index"], mustJSON(t, l["object"]), l["count"], g.index, g.object, g.count)
		}
		if n := len(l["tuples"].([]any)); float64(n) != g.count {
			t.Errorf("object event %d carries %d tuples, count says %v", i, n, g.count)
		}
	}
	if first := mustJSON(t, lines[1]["tuples"].([]any)[0]); first != `["jaguar","xj6",1996,27007,34120]` {
		t.Errorf("first streamed tuple = %s", first)
	}
	trailer := lines[3]
	if trailer["tuples"] != float64(75) || trailer["objects"] != float64(2) {
		t.Errorf("trailer tuples=%v objects=%v, want 75 and 2", trailer["tuples"], trailer["objects"])
	}
	if trailer["stats"] == nil {
		t.Error("trailer missing stats")
	}
}

// TestStreamUnionEqualsInProcess asserts the acceptance-criterion
// equivalence on both fixture domains: the union of the streamed tuples
// is exactly the answer an in-process twin computes — including for an
// ORDER BY query, where the stream degenerates to one buffered delivery.
func TestStreamUnionEqualsInProcess(t *testing.T) {
	cases := []struct {
		name     string
		assemble func(cfg core.Config) (*core.Webbase, error)
		query    string
		buffered bool
	}{
		{"usedcars", func(cfg core.Config) (*core.Webbase, error) {
			cfg.Fetcher = sites.BuildWorld().Server
			return core.New(cfg)
		}, carQuery, false},
		{"apartments", func(cfg core.Config) (*core.Webbase, error) {
			cfg.Fetcher = apartments.BuildWorld().Server
			return core.NewDomain(cfg, apartmentsDomain)
		}, "SELECT Neighborhood, Rent, Fee WHERE Borough = 'queens' AND Bedrooms = 1 AND Fee < 120", false},
		{"apartments-orderby", func(cfg core.Config) (*core.Webbase, error) {
			cfg.Fetcher = apartments.BuildWorld().Server
			return core.NewDomain(cfg, apartmentsDomain)
		}, "SELECT Neighborhood, Rent, MedianRent, CrimeRate WHERE Borough = 'brooklyn' AND Bedrooms = 2 " +
			"AND Rent < MedianRent AND CrimeRate <= 5 ORDER BY Rent", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			served, err := tc.assemble(core.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(Config{System: served})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			resp := postQuery(t, ts.URL, "", tc.query)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			lines := decodeLines(t, resp.Body)

			twin, err := tc.assemble(core.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := twin.QueryString(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			want := mustJSON(t, encodeTuples(res.Relation.Tuples()))
			got := mustJSON(t, streamedTuples(lines))
			if got != want {
				t.Errorf("streamed union != in-process answer\nstream:     %s\nin-process: %s", got, want)
			}
			if tc.buffered {
				var ev map[string]any
				for _, l := range lines {
					if l["event"] == "tuples" {
						if ev != nil {
							t.Fatal("ORDER BY query streamed more than one tuples event")
						}
						ev = l
					}
				}
				if ev == nil || ev["buffered"] != true || ev["index"] != float64(-1) {
					t.Errorf("ORDER BY query should deliver one buffered event with index -1, got %v", ev)
				}
			}
		})
	}
}

// downNewsday refuses connections to the newsday classifieds host and
// passes everything else through to a fresh simulated world.
func downNewsday() web.Fetcher {
	world := sites.BuildWorld()
	return web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if web.HostOf(req.URL) == sites.NewsdayHost {
			return nil, fmt.Errorf("host %s: connection refused", sites.NewsdayHost)
		}
		return world.Server.Fetch(req)
	})
}

// slowClassifieds delays both classifieds hosts so a Config.Deadline
// budget expires mid-object.
func slowClassifieds(delay time.Duration) web.Fetcher {
	world := sites.BuildWorld()
	slow := map[string]bool{sites.NewsdayHost: true, sites.NYTimesHost: true}
	return web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if slow[web.HostOf(req.URL)] {
			time.Sleep(delay)
		}
		return world.Server.Fetch(req)
	})
}

// envelope decodes a JSON error envelope, failing if the body is not
// exactly that shape.
func envelope(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	var env errorEnvelope
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("response is not a JSON error envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Status != resp.StatusCode || env.Error.Message == "" || env.Error.RequestID == "" {
		t.Fatalf("malformed envelope: %+v (http status %d)", env.Error, resp.StatusCode)
	}
	return env.Error
}

// TestStatusCodeMapping drives one request per taxonomy class and
// asserts the promised status code and machine-readable error code.
func TestStatusCodeMapping(t *testing.T) {
	cases := []struct {
		name   string
		cfg    core.Config
		scfg   Config
		key    string
		body   string
		status int
		code   string
	}{
		{name: "parse-error", body: "not a query", status: 400, code: "bad-query"},
		{name: "empty-body", body: "", status: 400, code: "bad-query"},
		{name: "truncated-json", body: `{"query": "SELECT`, status: 400, code: "bad-query"},
		{name: "invalid-utf8", body: "\xff\xfe\xfd", status: 400, code: "bad-query"},
		{name: "unknown-attribute", body: "SELECT Bogus", status: 400, code: "bad-query"},
		{name: "oversized-body", scfg: Config{MaxBodyBytes: 32},
			body: "SELECT Make WHERE " + strings.Repeat("x", 64), status: 413, code: "body-too-large"},
		{name: "unknown-key", scfg: Config{Tenants: []Tenant{{Key: "k", Name: "alice"}}},
			key: "wrong", body: carQuery, status: 401, code: "unauthorized"},
		{name: "strict-outage", cfg: core.Config{Fetcher: downNewsday(), Strict: true},
			body: carQuery, status: 502, code: "site-outage"},
		{name: "strict-deadline",
			cfg:  core.Config{Fetcher: slowClassifieds(400 * time.Millisecond), Strict: true, Deadline: 100 * time.Millisecond},
			body: carQuery, status: 504, code: "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, _ := newCarServer(t, tc.cfg, tc.scfg)
			resp := postQuery(t, ts.URL, tc.key, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if got := envelope(t, resp); got.Code != tc.code {
				t.Errorf("code = %q, want %q (message: %s)", got.Code, tc.code, got.Message)
			}
		})
	}
}

// TestQuotaExhausted exercises the tenant quota: requests beyond the
// window's budget shed with 429 before any work happens, and both
// outcomes land in /metrics under the tenant's label.
func TestQuotaExhausted(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{
		Tenants: []Tenant{{Key: "alicekey", Name: "alice", Quota: 2, Window: time.Hour}},
	})
	for i := 0; i < 2; i++ {
		resp := postQuery(t, ts.URL, "alicekey", carQuery)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
	}
	resp := postQuery(t, ts.URL, "alicekey", carQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if got := envelope(t, resp); got.Code != "quota-exhausted" {
		t.Errorf("code = %q", got.Code)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`counter server_queries_served_total{tenant="alice"} 2`,
		`counter server_queries_shed_total{tenant="alice"} 1`,
		`counter server_queries_total{tenant="alice"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}
}

// TestAdmissionShedded exercises the other 429: the webbase's own
// admission gate is full (MaxInFlight=1, no queue) while a query holds
// the only slot, so the next request sheds with core.ErrShedded.
func TestAdmissionShedded(t *testing.T) {
	world := sites.BuildWorld()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	blocking := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return world.Server.Fetch(req)
	})
	ts, _ := newCarServer(t, core.Config{Fetcher: blocking, MaxInFlight: 1}, Config{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(carQuery))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // the first query owns the only admission slot

	resp := postQuery(t, ts.URL, "", carQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := envelope(t, resp); got.Code != "shedded" {
		t.Errorf("code = %q, want shedded", got.Code)
	}
	close(release)
	wg.Wait()
}

// TestMidStreamOutageTrailer is the degradation acceptance case: with
// the newsday classifieds host down, the stream's 200 is already
// committed when the dead object's turn comes, so the object arrives as
// an unavailable event and the trailer's degradation report matches the
// in-process Result.Degradation byte for byte.
func TestMidStreamOutageTrailer(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{Fetcher: downNewsday(), Workers: 1}, Config{})
	resp := postQuery(t, ts.URL, "", carQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (non-strict degradation)", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	events := make([]string, len(lines))
	for i, l := range lines {
		events[i] = l["event"].(string)
	}
	if got, want := fmt.Sprint(events), "[meta unavailable tuples trailer]"; got != want {
		t.Fatalf("event sequence = %s, want %s", got, want)
	}
	unav := lines[1]
	failure := unav["failure"].(map[string]any)
	if failure["Host"] != sites.NewsdayHost || failure["Kind"] != "outage" {
		t.Errorf("unavailable failure = %v", failure)
	}

	// The in-process twin: identical fresh configuration, same query.
	twin, err := core.New(core.Config{Fetcher: downNewsday(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := twin.QueryString(carQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation == nil {
		t.Fatal("twin did not degrade")
	}
	trailer := lines[len(lines)-1]
	deg, ok := trailer["degradation"].(map[string]any)
	if !ok {
		t.Fatalf("trailer has no degradation: %v", trailer)
	}
	if got, want := deg["report"].(string), res.Degradation.String(); got != want {
		t.Errorf("trailer degradation report differs from in-process rendering\nwire:       %q\nin-process: %q", got, want)
	}
	if got, want := mustJSON(t, deg["unavailable"]), mustJSON(t, res.Degradation.Unavailable); got != want {
		t.Errorf("trailer unavailable list differs\nwire:       %s\nin-process: %s", got, want)
	}
	if got, want := mustJSON(t, streamedTuples(lines)), mustJSON(t, encodeTuples(res.Relation.Tuples())); got != want {
		t.Errorf("degraded stream union differs from in-process answer")
	}
}

// TestHealthz covers both healthz states: ok on a healthy webbase, and
// degraded naming the quarantined site once drift is confirmed and the
// repair worker has exhausted its attempts against a dead host.
func TestHealthz(t *testing.T) {
	getHealthz := func(t *testing.T, url string) healthzResponse {
		t.Helper()
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		var hz healthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		return hz
	}

	t.Run("ok", func(t *testing.T) {
		ts, _ := newCarServer(t, core.Config{}, Config{})
		if hz := getHealthz(t, ts.URL); hz.Status != "ok" || len(hz.Quarantined) != 0 {
			t.Errorf("healthz = %+v", hz)
		}
	})

	t.Run("degraded", func(t *testing.T) {
		// The repair worker fetches through the same down fetcher, so the
		// quarantined site cannot be repaired and stays quarantined.
		ts, wb := newCarServer(t, core.Config{
			Fetcher:           downNewsday(),
			MaxRepairAttempts: 1,
			RepairBackoff:     time.Millisecond,
		}, Config{})
		wb.SiteHealth().ReportDrift(sites.NewsdayHost)
		wb.SiteHealth().ReportDrift(sites.NewsdayHost) // threshold 2: quarantined
		wb.SiteHealth().Wait()                         // repair worker done (and failed)
		hz := getHealthz(t, ts.URL)
		if hz.Status != "degraded" || fmt.Sprint(hz.Quarantined) != "["+sites.NewsdayHost+"]" {
			t.Errorf("healthz = %+v, want degraded with %s quarantined", hz, sites.NewsdayHost)
		}
	})
}

// TestRequestID: a caller-supplied request ID is echoed on the response
// header and threaded through the stream's meta event.
func TestRequestID(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(carQuery))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-7" {
		t.Errorf("response X-Request-Id = %q", got)
	}
	lines := decodeLines(t, resp.Body)
	if lines[0]["request_id"] != "trace-me-7" {
		t.Errorf("meta request_id = %v", lines[0]["request_id"])
	}
}

// TestJSONQueryBody: the {"query": ...} envelope form is equivalent to a
// raw text body.
func TestJSONQueryBody(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	body, err := json.Marshal(queryRequest{Query: carQuery})
	if err != nil {
		t.Fatal(err)
	}
	resp := postQuery(t, ts.URL, "", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	trailer := lines[len(lines)-1]
	if trailer["event"] != "trailer" || trailer["tuples"] != float64(75) {
		t.Errorf("trailer = %v", trailer)
	}
}
