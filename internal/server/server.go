// Package server exposes a webbase as a networked query service: the
// layered architecture's external schema, drivable over HTTP.
//
// POST /query evaluates a universal-relation query and streams the
// answer incrementally as NDJSON — one event per maximal object, shipped
// the moment the object completes, then a trailer carrying QueryStats
// and the degradation report. The union-of-maximal-objects semantics is
// what makes this sound: each object's contribution is final when it
// finishes, so partial answers are well-defined, and the plan-order gate
// in the UR layer keeps the stream byte-identical whatever the worker
// count.
//
// Failures map the error taxonomy onto accurate status codes: a shed
// query (admission gate or tenant quota) is 429, an exhausted deadline
// budget is 504, a malformed or unplannable query is 400, and a
// strict-mode site outage or drift is 502 — each as a JSON error
// envelope when nothing has streamed yet, or a terminal error event when
// the failure struck mid-stream.
//
// Tenancy rides on the existing admission classes: each API key names a
// tenant with an interactive or batch class and a fixed-window quota,
// and both served and shed queries are accounted per tenant in /metrics.
// GET /healthz reports the self-healing tracker's quarantine state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"webbase/internal/core"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// DefaultMaxBodyBytes bounds POST /query bodies when Config.MaxBodyBytes
// is zero. Queries are one SELECT line; a megabyte is generous.
const DefaultMaxBodyBytes = 1 << 20

// Config assembles a Server.
type Config struct {
	// System is the webbase to serve. Required.
	System *core.Webbase
	// Tenants are the API keys admitted to POST /query. Empty means the
	// server is open: every request runs as the anonymous interactive
	// tenant with no quota.
	Tenants []Tenant
	// Logger receives one structured line per request. nil discards.
	Logger *log.Logger
	// Clock drives tenant quota windows; nil means time.Now. Tests
	// inject a fake clock for exact shed accounting.
	Clock func() time.Time
	// MaxBodyBytes bounds the request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Server handles the query service's three routes. Build one with New
// and mount Handler on any http.Server.
type Server struct {
	sys     *core.Webbase
	tenants *tenantSet
	logger  *log.Logger
	maxBody int64
	reqSeq  atomic.Int64
}

// New validates cfg and assembles the server.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("server: Config.System is required")
	}
	tenants, err := newTenantSet(cfg.Tenants, cfg.Clock)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	return &Server{sys: cfg.System, tenants: tenants, logger: logger, maxBody: maxBody}, nil
}

// Handler returns the route mux: POST /query, GET /metrics, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleQuery is the streaming query endpoint. The response stays
// uncommitted until the first object delivery, so everything that can
// fail up front — auth, quota, body, parse, admission — still gets an
// accurate status code; after the stream starts, failures become a
// terminal error event.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
	}

	tenant, release, err := s.tenants.admit(apiKey(r))
	if err != nil {
		body := s.errorBody(rid, err)
		s.account(tenant.Name, body.Status)
		writeEnvelope(w, body)
		s.logger.Printf("req=%s tenant=%s status=%d code=%s", rid, tenantLabel(tenant), body.Status, body.Code)
		return
	}
	// The concurrency slot is held for the whole request, streaming
	// included — a tenant's limit bounds open streams, not just admissions.
	defer release()
	s.count("server_queries_total", tenant.Name)

	text, err := readQueryText(r.Body, s.maxBody)
	if err != nil {
		s.fail(w, rid, tenant, err)
		return
	}
	q, err := ur.ParseQuery(s.sys.UR, text)
	if err != nil {
		s.fail(w, rid, tenant, badQuery(err))
		return
	}

	ctx := core.WithQueryClass(r.Context(), tenant.Class)
	sw := newStreamWriter(w, rid, q.String(), q.Output)
	res, qs, tr, err := s.sys.QueryStreamTraced(ctx, q, sw.writeDelivery)
	if tr != nil {
		// Request identity on the root span: a Label, not a Set, because
		// it is request-scoped rather than a deterministic counter.
		tr.Root.Label("request-id", rid)
		tr.Root.Label("tenant", tenant.Name)
	}
	if err != nil {
		body := s.errorBody(rid, err)
		s.account(tenant.Name, body.Status)
		if sw.started {
			sw.writeErrorEvent(body)
		} else {
			writeEnvelope(w, body)
		}
		s.logger.Printf("req=%s tenant=%s status=%d code=%s query=%q",
			rid, tenant.Name, body.Status, body.Code, text)
		return
	}
	sw.writeTrailer(res, qs)
	s.count("server_queries_served_total", tenant.Name)
	s.logger.Printf("req=%s tenant=%s status=200 tuples=%d objects=%d elapsed=%s query=%q",
		rid, tenant.Name, res.Relation.Len(), len(res.Plan.Objects), qs.Elapsed, text)
}

// fail writes a pre-stream error envelope and accounts it.
func (s *Server) fail(w http.ResponseWriter, rid string, tenant Tenant, err error) {
	body := s.errorBody(rid, err)
	s.account(tenant.Name, body.Status)
	writeEnvelope(w, body)
	s.logger.Printf("req=%s tenant=%s status=%d code=%s", rid, tenant.Name, body.Status, body.Code)
}

// handleMetrics renders the webbase registry — every in-process counter,
// gauge and histogram plus the server's per-tenant accounting — in the
// registry's sorted text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.sys.Metrics().Snapshot().String())
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status      string   `json:"status"` // "ok" or "degraded"
	Quarantined []string `json:"quarantined"`
}

// handleHealthz reports the self-healing tracker's view: ok unless some
// site is drift-quarantined. The server itself answering is the
// liveness signal, so the status code stays 200 either way.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hz := healthzResponse{Status: "ok", Quarantined: []string{}}
	for host := range s.sys.SiteHealth().Quarantined() {
		hz.Quarantined = append(hz.Quarantined, host)
	}
	sort.Strings(hz.Quarantined)
	if len(hz.Quarantined) > 0 {
		hz.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(hz)
}

// count bumps a counter twice: the overall total and the per-tenant
// labeled series.
func (s *Server) count(name, tenant string) {
	m := s.sys.Metrics()
	m.Counter(name).Add(1)
	if tenant != "" {
		m.Counter(name + `{tenant="` + tenant + `"}`).Add(1)
	}
}

// account attributes one failed request to its tenant: 429s are sheds
// (quota or admission gate — the query never ran), everything else a
// failure.
func (s *Server) account(tenant string, status int) {
	if status == http.StatusTooManyRequests {
		s.count("server_queries_shed_total", tenant)
	} else {
		s.count("server_queries_failed_total", tenant)
	}
}

// errParse tags query-text failures so errorBody maps them to 400.
type parseError struct{ err error }

func (e *parseError) Error() string { return e.err.Error() }
func (e *parseError) Unwrap() error { return e.err }

func badQuery(err error) error { return &parseError{err: err} }

// errBodyTooLarge is returned when the request body exceeds the bound.
var errBodyTooLarge = errors.New("server: request body too large")

// errorBody maps the error taxonomy onto the wire: status code + stable
// machine-readable code. Order matters — a strict-mode budget error is
// classified both budget-exhausted and outage, and 504 (the caller's
// deadline economics) must win over 502 (the site's fault).
func (s *Server) errorBody(rid string, err error) errorBody {
	status, code := http.StatusInternalServerError, "internal"
	var pe *parseError
	switch {
	case errors.Is(err, errUnknownKey):
		status, code = http.StatusUnauthorized, "unauthorized"
	case errors.Is(err, errQuotaExhausted):
		status, code = http.StatusTooManyRequests, "quota-exhausted"
	case errors.Is(err, errTenantSaturated):
		status, code = http.StatusTooManyRequests, "tenant-saturated"
	case errors.Is(err, core.ErrShedded):
		status, code = http.StatusTooManyRequests, "shedded"
	case errors.Is(err, errBodyTooLarge):
		status, code = http.StatusRequestEntityTooLarge, "body-too-large"
	case errors.As(err, &pe),
		errors.Is(err, ur.ErrBadQuery),
		errors.Is(err, ur.ErrUnknownAttribute),
		errors.Is(err, ur.ErrNotCoverable):
		status, code = http.StatusBadRequest, "bad-query"
	case web.IsBudgetExhausted(err), errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline"
	case web.IsDrift(err):
		status, code = http.StatusBadGateway, "site-drift"
	case web.IsOutage(err):
		status, code = http.StatusBadGateway, "site-outage"
	case web.IsSiteAnswer(err):
		status, code = http.StatusBadGateway, "site-answer"
	case errors.Is(err, context.Canceled):
		// Client went away; the nginx convention for "nobody is reading
		// this status anyway".
		status, code = 499, "client-closed-request"
	}
	return errorBody{Code: code, Status: status, Message: err.Error(), RequestID: rid}
}

// errorEnvelope is the pre-stream error shape: {"error":{...}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func writeEnvelope(w http.ResponseWriter, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", body.RequestID)
	w.WriteHeader(body.Status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: body})
}

// queryRequest is the JSON form of a query body.
type queryRequest struct {
	Query string `json:"query"`
}

// readQueryText extracts the UR query text from the body: either a JSON
// envelope {"query":"SELECT ..."} or the raw query text itself,
// distinguished by the first non-space byte.
func readQueryText(body io.Reader, maxBody int64) (string, error) {
	raw, err := io.ReadAll(io.LimitReader(body, maxBody+1))
	if err != nil {
		return "", badQuery(fmt.Errorf("server: reading request body: %w", err))
	}
	if int64(len(raw)) > maxBody {
		return "", errBodyTooLarge
	}
	text := strings.TrimSpace(string(raw))
	if strings.HasPrefix(text, "{") {
		var qr queryRequest
		if err := json.Unmarshal([]byte(text), &qr); err != nil {
			return "", badQuery(fmt.Errorf("server: decoding JSON query body: %w", err))
		}
		text = qr.Query
	}
	if text == "" {
		return "", badQuery(errors.New("server: empty query"))
	}
	return text, nil
}

// tenantLabel names a tenant in log lines, tolerating the zero Tenant an
// unauthorized request resolves to.
func tenantLabel(t Tenant) string {
	if t.Name == "" {
		return "-"
	}
	return t.Name
}
