// Package server exposes a webbase as a networked query service: the
// layered architecture's external schema, drivable over HTTP.
//
// POST /query evaluates a universal-relation query and streams the
// answer incrementally as NDJSON — one event per maximal object, shipped
// the moment the object completes, then a trailer carrying QueryStats
// and the degradation report. The union-of-maximal-objects semantics is
// what makes this sound: each object's contribution is final when it
// finishes, so partial answers are well-defined, and the plan-order gate
// in the UR layer keeps the stream byte-identical whatever the worker
// count.
//
// Failures map the error taxonomy onto accurate status codes: a shed
// query (admission gate or tenant quota) is 429, an exhausted deadline
// budget is 504, a malformed or unplannable query is 400, and a
// strict-mode site outage or drift is 502 — each as a JSON error
// envelope when nothing has streamed yet, or a terminal error event when
// the failure struck mid-stream.
//
// Tenancy rides on the existing admission classes: each API key names a
// tenant with an interactive or batch class and a fixed-window quota,
// and both served and shed queries are accounted per tenant in /metrics.
// GET /healthz reports the self-healing tracker's quarantine state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"webbase/internal/core"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// DefaultMaxBodyBytes bounds POST /query bodies when Config.MaxBodyBytes
// is zero. Queries are one SELECT line; a megabyte is generous.
const DefaultMaxBodyBytes = 1 << 20

// Config assembles a Server.
type Config struct {
	// System is the webbase to serve. Required.
	System *core.Webbase
	// Tenants are the API keys admitted to POST /query. Empty means the
	// server is open: every request runs as the anonymous interactive
	// tenant with no quota.
	Tenants []Tenant
	// Logger receives one structured line per request. nil discards.
	Logger *log.Logger
	// Clock drives tenant quota windows; nil means time.Now. Tests
	// inject a fake clock for exact shed accounting.
	Clock func() time.Time
	// MaxBodyBytes bounds the request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// KeepaliveInterval, when positive, emits a seq-less keepalive event
	// on every committed stream each time the interval elapses between
	// real events, so clients can arm a stall watchdog that idle-but-
	// alive streams never trip. Keepalives carry no sequence number and
	// are invisible to resume accounting. Zero (the default) disables
	// them entirely: every stream's bytes are identical to a server
	// without the feature.
	KeepaliveInterval time.Duration
}

// Server handles the query service's three routes. Build one with New
// and mount Handler on any http.Server.
type Server struct {
	sys       *core.Webbase
	tenants   *tenantSet
	logger    *log.Logger
	maxBody   int64
	keepalive time.Duration
	reqSeq    atomic.Int64
}

// New validates cfg and assembles the server.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("server: Config.System is required")
	}
	tenants, err := newTenantSet(cfg.Tenants, cfg.Clock)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	return &Server{sys: cfg.System, tenants: tenants, logger: logger, maxBody: maxBody,
		keepalive: cfg.KeepaliveInterval}, nil
}

// Handler returns the route mux: POST /query, GET /metrics, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleQuery is the streaming query endpoint. The response stays
// uncommitted until the first object delivery, so everything that can
// fail up front — auth, quota, body, parse, admission — still gets an
// accurate status code; after the stream starts, failures become a
// terminal error event.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
	}

	tenant, release, err := s.tenants.admit(apiKey(r))
	if err != nil {
		body := s.errorBody(rid, err)
		s.account(tenant.Name, body.Status)
		writeEnvelope(w, body)
		s.logger.Printf("req=%s tenant=%s status=%d code=%s", rid, tenantLabel(tenant), body.Status, body.Code)
		return
	}
	// The concurrency slot is held for the whole request, streaming
	// included — a tenant's limit bounds open streams, not just admissions.
	defer release()
	s.count("server_queries_total", tenant.Name)

	text, qr, err := readQueryRequest(r.Body, s.maxBody)
	if err != nil {
		s.fail(w, rid, tenant, err)
		return
	}
	q, err := ur.ParseQuery(s.sys.UR, text)
	if err != nil {
		s.fail(w, rid, tenant, badQuery(err))
		return
	}
	resume, err := parseResume(r, qr)
	if err != nil {
		s.fail(w, rid, tenant, err)
		return
	}

	// The consistency token fingerprints the web view the stream's bytes
	// are a function of. A resume presenting a stale token would stitch
	// answers from two different webs — refuse it rather than splice.
	token := s.sys.ConsistencyToken()
	resumeFrom := -1
	if resume != nil {
		if resume.token != token {
			s.fail(w, rid, tenant, fmt.Errorf("%w: stream was %s, web is now %s",
				errResumeInconsistent, resume.token, token))
			return
		}
		resumeFrom = resume.lastIndex
	}

	ctx := core.WithQueryClass(r.Context(), tenant.Class)
	sw := newStreamWriter(w, rid, q.String(), q.Output, token, resumeFrom, gzipAccepted(r))
	// The ticker (if configured) is the one writer outside the gate's
	// serialization; the terminal-event writers stop it themselves, and
	// the defer covers the pre-stream envelope paths below.
	sw.startKeepalive(s.keepalive)
	defer sw.stopKeepalive()
	res, qs, tr, err := s.sys.QueryStreamTraced(ctx, q, sw.writeDelivery)
	if tr != nil {
		// Request identity on the root span: a Label, not a Set, because
		// it is request-scoped rather than a deterministic counter.
		tr.Root.Label("request-id", rid)
		tr.Root.Label("tenant", tenant.Name)
	}
	if err != nil {
		body := s.errorBody(rid, err)
		s.account(tenant.Name, body.Status)
		if sw.started {
			sw.writeErrorEvent(body)
		} else {
			writeEnvelope(w, body)
		}
		s.logger.Printf("req=%s tenant=%s status=%d code=%s query=%q",
			rid, tenant.Name, body.Status, body.Code, text)
		return
	}
	sw.writeTrailer(res, qs)
	if resumeFrom >= 0 {
		// Resume accounting: the query ran again end to end, but the
		// already-delivered prefix was acked, not re-sent.
		s.count("server_resumes_total", tenant.Name)
		s.sys.Metrics().Counter("server_resume_skipped_total").Add(int64(sw.skipped))
	}
	s.count("server_queries_served_total", tenant.Name)
	s.logger.Printf("req=%s tenant=%s status=200 tuples=%d objects=%d elapsed=%s query=%q",
		rid, tenant.Name, res.Relation.Len(), len(res.Plan.Objects), qs.Elapsed, text)
}

// fail writes a pre-stream error envelope and accounts it.
func (s *Server) fail(w http.ResponseWriter, rid string, tenant Tenant, err error) {
	body := s.errorBody(rid, err)
	s.account(tenant.Name, body.Status)
	writeEnvelope(w, body)
	s.logger.Printf("req=%s tenant=%s status=%d code=%s", rid, tenant.Name, body.Status, body.Code)
}

// handleMetrics renders the webbase registry — every in-process counter,
// gauge and histogram plus the server's per-tenant accounting — in the
// registry's sorted text format. Compressed when the client accepts gzip;
// the decompressed bytes are identical either way.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := []byte(s.sys.Metrics().Snapshot().String())
	if gzipAccepted(r) {
		writeGzipped(w, http.StatusOK, "text/plain; charset=utf-8", body)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status      string   `json:"status"` // "ok" or "degraded"
	Quarantined []string `json:"quarantined"`
}

// handleHealthz reports the self-healing tracker's view: ok unless some
// site is drift-quarantined. The server itself answering is the
// liveness signal, so the status code stays 200 either way.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hz := healthzResponse{Status: "ok", Quarantined: []string{}}
	for host := range s.sys.SiteHealth().Quarantined() {
		hz.Quarantined = append(hz.Quarantined, host)
	}
	sort.Strings(hz.Quarantined)
	if len(hz.Quarantined) > 0 {
		hz.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(hz)
}

// count bumps a counter twice: the overall total and the per-tenant
// labeled series.
func (s *Server) count(name, tenant string) {
	m := s.sys.Metrics()
	m.Counter(name).Add(1)
	if tenant != "" {
		m.Counter(name + `{tenant="` + tenant + `"}`).Add(1)
	}
}

// account attributes one failed request to its tenant: 429s are sheds
// (quota or admission gate — the query never ran), everything else a
// failure.
func (s *Server) account(tenant string, status int) {
	if status == http.StatusTooManyRequests {
		s.count("server_queries_shed_total", tenant)
	} else {
		s.count("server_queries_failed_total", tenant)
	}
}

// errParse tags query-text failures so errorBody maps them to 400.
type parseError struct{ err error }

func (e *parseError) Error() string { return e.err.Error() }
func (e *parseError) Unwrap() error { return e.err }

func badQuery(err error) error { return &parseError{err: err} }

// errBodyTooLarge is returned when the request body exceeds the bound.
var errBodyTooLarge = errors.New("server: request body too large")

// errResumeInconsistent refuses a resume whose token no longer matches
// the current web view (a cache clear or a map swap happened since the
// stream began). Re-running would not reproduce the delivered prefix, so
// splicing is unsound; the client must restart the query from scratch.
var errResumeInconsistent = errors.New("server: resume token does not match the current web state")

// resumeError tags malformed resume parameters so errorBody maps them to
// 400 bad-resume rather than bad-query.
type resumeError struct{ err error }

func (e *resumeError) Error() string { return e.err.Error() }
func (e *resumeError) Unwrap() error { return e.err }

func badResume(err error) error { return &resumeError{err: err} }

// errorBody maps the error taxonomy onto the wire: status code + stable
// machine-readable code. Order matters — a strict-mode budget error is
// classified both budget-exhausted and outage, and 504 (the caller's
// deadline economics) must win over 502 (the site's fault).
func (s *Server) errorBody(rid string, err error) errorBody {
	status, code := http.StatusInternalServerError, "internal"
	var pe *parseError
	var re *resumeError
	switch {
	case errors.Is(err, errUnknownKey):
		status, code = http.StatusUnauthorized, "unauthorized"
	case errors.Is(err, errQuotaExhausted):
		status, code = http.StatusTooManyRequests, "quota-exhausted"
	case errors.Is(err, errTenantSaturated):
		status, code = http.StatusTooManyRequests, "tenant-saturated"
	case errors.Is(err, core.ErrShedded):
		status, code = http.StatusTooManyRequests, "shedded"
	case errors.Is(err, errBodyTooLarge):
		status, code = http.StatusRequestEntityTooLarge, "body-too-large"
	case errors.Is(err, errResumeInconsistent):
		status, code = http.StatusConflict, "resume-inconsistent"
	case errors.As(err, &re):
		status, code = http.StatusBadRequest, "bad-resume"
	case errors.As(err, &pe),
		errors.Is(err, ur.ErrBadQuery),
		errors.Is(err, ur.ErrUnknownAttribute),
		errors.Is(err, ur.ErrNotCoverable):
		status, code = http.StatusBadRequest, "bad-query"
	case web.IsBudgetExhausted(err), errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline"
	case web.IsDrift(err):
		status, code = http.StatusBadGateway, "site-drift"
	case web.IsOutage(err):
		status, code = http.StatusBadGateway, "site-outage"
	case web.IsSiteAnswer(err):
		status, code = http.StatusBadGateway, "site-answer"
	case errors.Is(err, context.Canceled):
		// Client went away; the nginx convention for "nobody is reading
		// this status anyway".
		status, code = 499, "client-closed-request"
	}
	return errorBody{Code: code, Status: status, Message: err.Error(), RequestID: rid}
}

// errorEnvelope is the pre-stream error shape: {"error":{...}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func writeEnvelope(w http.ResponseWriter, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", body.RequestID)
	if body.Status == http.StatusTooManyRequests && body.Code != "quota-exhausted" {
		// Shed and saturation clear as soon as load drains or a stream
		// slot frees; hint clients to pause a beat before retrying. A
		// spent quota needs its window to roll, so no hint there.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(body.Status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: body})
}

// queryRequest is the JSON form of a query body. The two resume fields
// mirror the Last-Event-Index / X-Resume-Token headers for clients that
// prefer everything in the body.
type queryRequest struct {
	Query          string `json:"query"`
	LastEventIndex *int   `json:"last_event_index,omitempty"`
	ResumeToken    string `json:"resume_token,omitempty"`
}

// readQueryRequest extracts the UR query text from the body: either a
// JSON envelope {"query":"SELECT ..."} or the raw query text itself,
// distinguished by the first non-space byte. For JSON bodies the parsed
// envelope is also returned so resume fields can be read from it.
func readQueryRequest(body io.Reader, maxBody int64) (string, *queryRequest, error) {
	raw, err := io.ReadAll(io.LimitReader(body, maxBody+1))
	if err != nil {
		return "", nil, badQuery(fmt.Errorf("server: reading request body: %w", err))
	}
	if int64(len(raw)) > maxBody {
		return "", nil, errBodyTooLarge
	}
	text := strings.TrimSpace(string(raw))
	var envelope *queryRequest
	if strings.HasPrefix(text, "{") {
		var qr queryRequest
		if err := json.Unmarshal([]byte(text), &qr); err != nil {
			return "", nil, badQuery(fmt.Errorf("server: decoding JSON query body: %w", err))
		}
		envelope = &qr
		text = qr.Query
	}
	if text == "" {
		return "", nil, badQuery(errors.New("server: empty query"))
	}
	return text, envelope, nil
}

// resumeSpec is a validated resume request: the last event index the
// client received and the stream's original consistency token.
type resumeSpec struct {
	lastIndex int
	token     string
}

// parseResume reads the resume parameters from headers (which win) or
// the JSON body envelope. No parameters at all means a fresh stream
// (nil, nil); a half-specified or malformed resume is a 400 bad-resume.
func parseResume(r *http.Request, qr *queryRequest) (*resumeSpec, error) {
	var lastIndex *int
	if h := r.Header.Get("Last-Event-Index"); h != "" {
		n, err := strconv.Atoi(h)
		if err != nil || n < 0 {
			return nil, badResume(fmt.Errorf("server: Last-Event-Index %q is not a non-negative integer", h))
		}
		lastIndex = &n
	}
	token := r.Header.Get("X-Resume-Token")
	if qr != nil {
		if lastIndex == nil && qr.LastEventIndex != nil {
			if *qr.LastEventIndex < 0 {
				return nil, badResume(fmt.Errorf("server: last_event_index %d is negative", *qr.LastEventIndex))
			}
			lastIndex = qr.LastEventIndex
		}
		if token == "" {
			token = qr.ResumeToken
		}
	}
	switch {
	case lastIndex == nil && token == "":
		return nil, nil
	case lastIndex == nil:
		return nil, badResume(errors.New("server: resume token without a last event index"))
	case token == "":
		return nil, badResume(errors.New("server: resume requires the stream's resume_token"))
	}
	return &resumeSpec{lastIndex: *lastIndex, token: token}, nil
}

// tenantLabel names a tenant in log lines, tolerating the zero Tenant an
// unauthorized request resolves to.
func tenantLabel(t Tenant) string {
	if t.Name == "" {
		return "-"
	}
	return t.Name
}
