package server

import (
	"compress/gzip"
	"io"
	"net/http"
	"strings"
	"testing"

	"webbase/internal/core"
)

// rawClient disables Go's transparent decompression so tests see the
// wire bytes exactly as sent.
var rawClient = &http.Client{Transport: &http.Transport{DisableCompression: true}}

// TestQueryStreamGzip: a stream requested with Accept-Encoding: gzip
// arrives compressed and decompresses to byte-identical NDJSON — same
// request ID pinned, only the run-dependent trailer stats normalized.
func TestQueryStreamGzip(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})

	fetch := func(gzipped bool) []map[string]any {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(wideQuery))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", "r-gzip-test")
		if gzipped {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := rawClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		body := io.Reader(resp.Body)
		if gzipped {
			if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
				t.Fatalf("Content-Encoding = %q, want gzip", enc)
			}
			zr, err := gzip.NewReader(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			body = zr
		} else if enc := resp.Header.Get("Content-Encoding"); enc != "" {
			t.Fatalf("plain request got Content-Encoding %q", enc)
		}
		return decodeLines(t, body)
	}

	plain := normalizeStream(t, fetch(false))
	compressed := normalizeStream(t, fetch(true))
	if plain != compressed {
		t.Fatalf("gzip stream decompresses differently:\nplain %s\n gzip %s", plain, compressed)
	}
}

// TestQueryStreamGzipResume: compression composes with resume — a
// compressed resumed stream stitches byte-identically too.
func TestQueryStreamGzipResume(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	lines, token := fullStream(t, ts.URL, wideQuery)
	want := normalizeStream(t, deepCopyLines(t, lines))

	k := 1
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(wideQuery))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	req.Header.Set("Last-Event-Index", "1")
	req.Header.Set("X-Resume-Token", token)
	resp, err := rawClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	stitched := append(deepCopyLines(t, lines[:k+1]), decodeLines(t, zr)...)
	if got := normalizeStream(t, stitched); got != want {
		t.Fatalf("gzip resume stitches differently:\n got %s\nwant %s", got, want)
	}
}

// TestMetricsGzip: /metrics honors Accept-Encoding: gzip and the
// decompressed page is byte-identical to the plain one.
func TestMetricsGzip(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{}, Config{})
	// Put something in the registry so the page is non-trivial.
	resp := postQuery(t, ts.URL, "", wideQuery)
	io.Copy(io.Discard, resp.Body)

	get := func(gzipped bool) string {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if gzipped {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := rawClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body := io.Reader(resp.Body)
		if gzipped {
			if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
				t.Fatalf("Content-Encoding = %q, want gzip", enc)
			}
			zr, err := gzip.NewReader(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			body = zr
		}
		raw, err := io.ReadAll(body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	plain := get(false)
	compressed := get(true)
	if plain != compressed {
		t.Fatalf("gzip /metrics decompresses differently:\nplain:\n%s\ngzip:\n%s", plain, compressed)
	}
	if !strings.Contains(plain, "server_queries_total") {
		t.Fatal("metrics page is empty")
	}
}
