package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"webbase/internal/core"
)

// readStream parses a 200 NDJSON response into its event lines and
// returns (all lines, the decoded trailer).
func readStream(t *testing.T, resp *http.Response) ([]map[string]any, map[string]any) {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var events []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("malformed stream line %q: %v", sc.Text(), err)
		}
		events = append(events, m)
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	last := events[len(events)-1]
	if last["event"] != "trailer" {
		t.Fatalf("stream ends with %v, want trailer", last["event"])
	}
	return events, last
}

// renderAnswerEvents flattens everything answer-defining about a stream —
// every event except the trailer's volatile stats — for byte comparison.
func renderAnswerEvents(t *testing.T, events []map[string]any, trailer map[string]any) string {
	t.Helper()
	var sb strings.Builder
	for _, ev := range events[:len(events)-1] {
		if ev["event"] == "meta" {
			continue // carries the per-request ID
		}
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	// The trailer minus stats: tuples, objects, skipped, degradation.
	clean := make(map[string]any, len(trailer))
	for k, v := range trailer {
		if k != "stats" {
			clean[k] = v
		}
	}
	b, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(b)
	return sb.String()
}

// TestPrunedQueryEndToEnd drives a LIMIT query through the HTTP server
// with pruning on: the stream's answer events must be byte-identical to
// the pruning-off server's, the trailer's stats must report the pruned
// accesses, and /metrics must expose a fetches_pruned_total that agrees
// with them (and per-reason labels that sum to it).
func TestPrunedQueryEndToEnd(t *testing.T) {
	const query = "SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 1"

	tsOff, _ := newCarServer(t, core.Config{Workers: 1}, Config{})
	offEvents, offTrailer := readStream(t, postQuery(t, tsOff.URL, "", query))
	offAnswer := renderAnswerEvents(t, offEvents, offTrailer)

	tsOn, _ := newCarServer(t, core.Config{Workers: 1, Prune: true}, Config{})
	onEvents, onTrailer := readStream(t, postQuery(t, tsOn.URL, "", query))
	onAnswer := renderAnswerEvents(t, onEvents, onTrailer)

	if onAnswer != offAnswer {
		t.Errorf("pruned stream diverges\n--- prune=off ---\n%s\n--- prune=on ---\n%s", offAnswer, onAnswer)
	}

	stats, ok := onTrailer["stats"].(map[string]any)
	if !ok {
		t.Fatalf("trailer without stats: %v", onTrailer)
	}
	pruned, _ := stats["PrunedFetches"].(float64)
	if pruned == 0 {
		t.Fatalf("trailer reports no pruned fetches: %v", stats)
	}
	byReason, _ := stats["PrunedByReason"].(map[string]any)
	var reasonSum float64
	for _, n := range byReason {
		f, _ := n.(float64)
		reasonSum += f
	}
	if reasonSum != pruned {
		t.Errorf("trailer PrunedByReason sums to %v, PrunedFetches=%v", reasonSum, pruned)
	}

	mresp, err := http.Get(tsOn.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"counter fetches_pruned_total 1",
		`counter fetches_pruned_total{reason="limit"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	// The pruning-off server's /metrics must not mention pruning at all —
	// the historical output stays byte-identical.
	moff, err := http.Get(tsOff.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer moff.Body.Close()
	offMetrics, _ := io.ReadAll(moff.Body)
	if strings.Contains(string(offMetrics), "fetches_pruned_total") {
		t.Errorf("pruning disabled but /metrics mentions fetches_pruned_total:\n%s", offMetrics)
	}
}

// TestBadOrderByQueriesRejected pins the server-side classification of
// the newly rejected ORDER BY shapes: trailing commas and duplicate sort
// keys must 400 as bad-query, not reach evaluation.
func TestBadOrderByQueriesRejected(t *testing.T) {
	ts, _ := newCarServer(t, core.Config{Workers: 1}, Config{})
	for _, q := range []string{
		"SELECT Make ORDER BY Make,",
		"SELECT Make ORDER BY Price, Price",
		"SELECT Make ORDER BY Price DESC, Price",
	} {
		resp := postQuery(t, ts.URL, "", q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", q, resp.StatusCode)
			continue
		}
		if got := envelope(t, resp); got.Code != "bad-query" {
			t.Errorf("%q: code = %q, want bad-query", q, got.Code)
		}
	}
}
