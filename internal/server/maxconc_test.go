package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"webbase/internal/core"
	"webbase/internal/sites"
	"webbase/internal/web"
)

// TestTenantMaxConcurrent: a tenant at its per-tenant concurrency cap is
// shed with 429/"tenant-saturated" — and, unlike a served query, the shed
// does not spend quota. The slot is held for the whole stream, not just
// admission.
func TestTenantMaxConcurrent(t *testing.T) {
	world := sites.BuildWorld()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	blocking := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return world.Server.Fetch(req)
	})
	ts, _ := newCarServer(t, core.Config{Fetcher: blocking}, Config{
		Tenants: []Tenant{{Key: "alicekey", Name: "alice",
			Quota: 2, Window: time.Hour, MaxConcurrent: 1}},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postQuery(t, ts.URL, "alicekey", carQuery)
		io.Copy(io.Discard, resp.Body)
	}()
	<-started // alice's only slot is now owned by a mid-stream query

	resp := postQuery(t, ts.URL, "alicekey", carQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if got := envelope(t, resp); got.Code != "tenant-saturated" {
		t.Errorf("code = %q, want tenant-saturated", got.Code)
	}

	close(release)
	wg.Wait()

	// The shed must not have spent quota: with Quota=2 and one query
	// served, one full budget unit remains.
	resp = postQuery(t, ts.URL, "alicekey", carQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query status = %d, want 200 (shed spent quota?)", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	// And the budget is now genuinely gone — accounting is exact.
	resp = postQuery(t, ts.URL, "alicekey", carQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if got := envelope(t, resp); got.Code != "quota-exhausted" {
		t.Errorf("code = %q, want quota-exhausted", got.Code)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`counter server_queries_served_total{tenant="alice"} 2`,
		`counter server_queries_shed_total{tenant="alice"} 2`, // saturated + over-quota
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenantMaxConcurrentZeroIsUnlimited: the zero value keeps the
// historical behavior — no concurrency cap.
func TestTenantMaxConcurrentZeroIsUnlimited(t *testing.T) {
	world := sites.BuildWorld()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	blocking := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return world.Server.Fetch(req)
	})
	ts, _ := newCarServer(t, core.Config{Fetcher: blocking}, Config{
		Tenants: []Tenant{{Key: "bobkey", Name: "bob"}},
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postQuery(t, ts.URL, "bobkey", carQuery)
		io.Copy(io.Discard, resp.Body)
	}()
	<-started
	// A second concurrent query is admitted (it blocks on the same
	// fetcher, so only check the status line arrives before release).
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(carQuery))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer bobkey")
	wg.Add(1)
	var second *http.Response
	go func() {
		defer wg.Done()
		second, err = http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, second.Body)
			second.Body.Close()
		}
	}()
	close(release)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if second.StatusCode != http.StatusOK {
		t.Fatalf("uncapped concurrent query status = %d, want 200", second.StatusCode)
	}
}
