package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"webbase/internal/core"
)

// Tenant identification errors; writeEnvelope maps them onto 401/429.
var (
	errUnknownKey      = errors.New("server: unknown API key")
	errQuotaExhausted  = errors.New("server: tenant quota exhausted")
	errTenantSaturated = errors.New("server: tenant concurrency limit reached")
)

// DefaultQuotaWindow is the fixed quota window applied when a Tenant
// sets a Quota but no Window.
const DefaultQuotaWindow = time.Minute

// Tenant is one API key's identity and service level: the admission
// class its queries run at (interactive queries outrank batch under
// overload) and a fixed-window request quota — the access-limited-source
// discipline, applied to callers instead of sites.
type Tenant struct {
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-API-Key: <key>". Required.
	Key string
	// Name labels the tenant in metrics and logs. Required.
	Name string
	// Class is the admission class of the tenant's queries.
	Class core.QueryClass
	// Quota caps admitted queries per Window; beyond it requests are
	// shed with 429 before any work happens. 0 = unlimited.
	Quota int64
	// Window is the fixed quota window. 0 means DefaultQuotaWindow.
	Window time.Duration
	// MaxConcurrent caps the tenant's concurrently executing queries
	// (streams held open count for their whole duration). Beyond it,
	// requests are shed with 429 — and, unlike quota sheds, do not spend
	// quota: a saturated burst does not eat the tenant's window budget.
	// 0 = unlimited.
	MaxConcurrent int64
}

// tenantState is a Tenant plus its current quota window and in-flight
// count.
type tenantState struct {
	Tenant
	windowStart time.Time
	used        int64
	inflight    int64
}

// tenantSet maps API keys to tenants and enforces fixed-window quotas.
// With no tenants configured the set is open: every request runs as the
// anonymous interactive tenant with no quota.
type tenantSet struct {
	clock func() time.Time

	mu    sync.Mutex
	byKey map[string]*tenantState
	anon  *Tenant // non-nil when the set is open
}

func newTenantSet(tenants []Tenant, clock func() time.Time) (*tenantSet, error) {
	if clock == nil {
		clock = time.Now
	}
	ts := &tenantSet{clock: clock, byKey: make(map[string]*tenantState, len(tenants))}
	if len(tenants) == 0 {
		ts.anon = &Tenant{Name: "anonymous", Class: core.ClassInteractive}
		return ts, nil
	}
	names := make(map[string]bool, len(tenants))
	for _, t := range tenants {
		if t.Key == "" || t.Name == "" {
			return nil, fmt.Errorf("server: tenant needs both a key and a name: %+v", t)
		}
		if _, dup := ts.byKey[t.Key]; dup {
			return nil, fmt.Errorf("server: duplicate tenant key %q", t.Key)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("server: duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		if t.Window <= 0 {
			t.Window = DefaultQuotaWindow
		}
		ts.byKey[t.Key] = &tenantState{Tenant: t}
	}
	return ts, nil
}

// admit authenticates the key, checks the tenant's concurrency limit and
// spends one unit of its quota. It returns the tenant's identity even
// when the request is shed, so the caller can attribute the shed to the
// right tenant, plus a release the caller must invoke when the request
// finishes (safe to call more than once; a no-op on error). The
// concurrency check runs before the quota spend, so a saturated request
// never consumes window budget.
func (ts *tenantSet) admit(key string) (Tenant, func(), error) {
	release := func() {}
	if ts.anon != nil {
		return *ts.anon, release, nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.byKey[key]
	if !ok {
		return Tenant{}, release, errUnknownKey
	}
	if st.MaxConcurrent > 0 && st.inflight >= st.MaxConcurrent {
		return st.Tenant, release, fmt.Errorf("%w: tenant %q has %d of %d queries in flight",
			errTenantSaturated, st.Name, st.inflight, st.MaxConcurrent)
	}
	if st.Quota > 0 {
		now := ts.clock()
		if now.Sub(st.windowStart) >= st.Window {
			st.windowStart = now
			st.used = 0
		}
		if st.used >= st.Quota {
			return st.Tenant, release, fmt.Errorf("%w: tenant %q spent %d of %d this window",
				errQuotaExhausted, st.Name, st.used, st.Quota)
		}
		st.used++
	}
	st.inflight++
	var once sync.Once
	release = func() {
		once.Do(func() {
			ts.mu.Lock()
			st.inflight--
			ts.mu.Unlock()
		})
	}
	return st.Tenant, release, nil
}

// apiKey extracts the request's API key: a Bearer token, else the
// X-API-Key header.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if k, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
	}
	return r.Header.Get("X-API-Key")
}
