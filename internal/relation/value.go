// Package relation implements the relational model substrate used by every
// layer of the webbase: typed values, schemas, tuples and in-memory
// relations with the usual algebraic operations.
//
// The paper represents the user-level view of the Web with the relational
// model (Section 2); this package is the common currency passed between the
// virtual physical, logical and external schema layers.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The value kinds supported by webbase relations.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed relational value. The zero Value is null.
// Values are immutable and safe to copy.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// String wraps a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int wraps an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool wraps a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is the empty string for non-string
// values; use String() for a printable rendering of any value.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload (0 for non-int values).
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the numeric payload as a float64. Integers are widened;
// other kinds yield 0.
func (v Value) FloatVal() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// BoolVal returns the boolean payload (false for non-bool values).
func (v Value) BoolVal() bool { return v.b }

// IsNumeric reports whether v is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display. Strings render without quotes.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "∅"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Key returns a string that uniquely identifies the value within its kind,
// suitable for use as a map key when deduplicating tuples. This sits on
// the hot path of joins, unions and distinct, so it avoids fmt.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n:"
	case KindString:
		return "s:" + v.s
	case KindInt:
		return "i:" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	default: // KindBool
		if v.b {
			return "b:1"
		}
		return "b:0"
	}
}

// Equal reports value equality. Numeric values compare across int/float.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare orders two values. The ordering is total: values of different,
// non-comparable kinds order by kind. Numeric kinds compare numerically
// across int/float; strings compare case-insensitively (Web form values are
// case-normalized by sites, per Section 7's attribute standardization).
//
// A string compared against a numeric value is coerced to a number when it
// parses as one — everything on the Web is text, so the user's quoted
// '9000' must match the 9000 a site's table cell parsed to. (The coercion
// admits a corner intransitivity — "9000" and "9000.0" each equal 9000 but
// not each other — which cannot arise from a single consistently formatted
// column.)
func (v Value) Compare(o Value) int {
	if v.IsNumeric() && o.IsNumeric() {
		return compareFloats(v.FloatVal(), o.FloatVal())
	}
	if v.kind == KindString && o.IsNumeric() {
		if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
			return compareFloats(f, o.FloatVal())
		}
	}
	if o.kind == KindString && v.IsNumeric() {
		if f, err := strconv.ParseFloat(strings.TrimSpace(o.s), 64); err == nil {
			return compareFloats(v.FloatVal(), f)
		}
	}
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(strings.ToLower(v.s), strings.ToLower(o.s))
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case o.b:
			return -1
		default:
			return 1
		}
	default: // KindNull
		return 0
	}
}

func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Parse converts raw text (typically extracted from an HTML page or typed
// into a form) into the most specific value kind: int, then float, then
// bool, then string. Empty text parses to null.
func Parse(text string) Value {
	t := strings.TrimSpace(text)
	if t == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	if b, err := strconv.ParseBool(t); err == nil {
		return Bool(b)
	}
	return String(t)
}

// ParseMoney parses a price rendered with currency decorations, e.g.
// "$12,500" or "12,500.00". It returns the null value if no digits are
// present.
func ParseMoney(text string) Value {
	var sb strings.Builder
	for _, r := range text {
		switch {
		case r >= '0' && r <= '9', r == '.', r == '-':
			sb.WriteRune(r)
		}
	}
	t := sb.String()
	if t == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	return Null()
}
