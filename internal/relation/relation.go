package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a row of values positionally aligned with a relation's schema.
type Tuple []Value

// Key returns a canonical key for deduplication.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x00")
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple{}, t...) }

// Relation is an in-memory relation: a named schema plus a bag of tuples.
// Operations that produce new relations never mutate their receivers.
type Relation struct {
	name   string
	schema Schema
	tuples []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{name: name, schema: schema.Clone()}
}

// Name returns the relation's name (possibly empty for intermediate
// results).
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Insert appends a tuple, validating arity.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.schema) {
		return fmt.Errorf("relation %s: tuple arity %d does not match schema %s", r.name, len(t), r.schema)
	}
	r.tuples = append(r.tuples, t.Clone())
	return nil
}

// MustInsert inserts values as a tuple and panics on arity mismatch. It is
// intended for tests and static site data where a mismatch is a bug.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// InsertMap inserts a tuple given attribute → value assignments. Attributes
// missing from the map become null; unknown attributes are an error.
func (r *Relation) InsertMap(m map[string]Value) error {
	t := make(Tuple, len(r.schema))
	for a, v := range m {
		i := r.schema.IndexOf(a)
		if i < 0 {
			return fmt.Errorf("relation %s: unknown attribute %q", r.name, a)
		}
		t[i] = v
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// Get returns the value of attr in tuple t (by schema position).
func (r *Relation) Get(t Tuple, attr string) (Value, bool) {
	i := r.schema.IndexOf(attr)
	if i < 0 || i >= len(t) {
		return Null(), false
	}
	return t[i], true
}

// Rename returns a copy of r with name newName and schema attributes
// renamed per the mapping (attributes not in the mapping keep their names).
func (r *Relation) Rename(newName string, mapping map[string]string) *Relation {
	sch := make(Schema, len(r.schema))
	for i, a := range r.schema {
		if n, ok := mapping[a]; ok {
			sch[i] = n
		} else {
			sch[i] = a
		}
	}
	out := &Relation{name: newName, schema: sch, tuples: make([]Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	return out
}

// Project returns the projection of r onto attrs (which must all exist),
// with duplicates removed — projection is a set operation in the paper's
// algebra.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.schema.IndexOf(a)
		if j < 0 {
			return nil, fmt.Errorf("project: attribute %q not in schema %s of %s", a, r.schema, r.name)
		}
		idx[i] = j
	}
	sch, err := ParseSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("project: %w", err)
	}
	out := New("", sch)
	seen := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		k := nt.Key()
		if !seen[k] {
			seen[k] = true
			out.tuples = append(out.tuples, nt)
		}
	}
	return out, nil
}

// Select returns the tuples of r satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.name, r.schema)
	for _, t := range r.tuples {
		if pred(t) {
			out.tuples = append(out.tuples, t.Clone())
		}
	}
	return out
}

// SelectEq returns the tuples whose attr equals val. Selecting on an
// attribute absent from the schema yields an error — in the webbase this
// indicates a query attribute the site does not expose.
func (r *Relation) SelectEq(attr string, val Value) (*Relation, error) {
	i := r.schema.IndexOf(attr)
	if i < 0 {
		return nil, fmt.Errorf("select: attribute %q not in schema %s of %s", attr, r.schema, r.name)
	}
	return r.Select(func(t Tuple) bool { return t[i].Equal(val) }), nil
}

// Union returns the set union of r and other. The schemas must contain the
// same attribute set; other's columns are permuted to match r's order.
func (r *Relation) Union(other *Relation) (*Relation, error) {
	perm, err := alignment(r.schema, other.schema, "union")
	if err != nil {
		return nil, err
	}
	out := New("", r.schema)
	seen := make(map[string]bool, len(r.tuples)+len(other.tuples))
	add := func(t Tuple) {
		if k := t.Key(); !seen[k] {
			seen[k] = true
			out.tuples = append(out.tuples, t)
		}
	}
	for _, t := range r.tuples {
		add(t.Clone())
	}
	for _, t := range other.tuples {
		nt := make(Tuple, len(perm))
		for i, j := range perm {
			nt[i] = t[j]
		}
		add(nt)
	}
	return out, nil
}

// Diff returns the set difference r − other. Schemas must contain the same
// attribute set.
func (r *Relation) Diff(other *Relation) (*Relation, error) {
	perm, err := alignment(r.schema, other.schema, "difference")
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(other.tuples))
	for _, t := range other.tuples {
		nt := make(Tuple, len(perm))
		for i, j := range perm {
			nt[i] = t[j]
		}
		drop[nt.Key()] = true
	}
	out := New("", r.schema)
	for _, t := range r.tuples {
		if !drop[t.Key()] {
			out.tuples = append(out.tuples, t.Clone())
		}
	}
	return out, nil
}

// alignment returns, for each attribute of want, its index in have.
func alignment(want, have Schema, op string) ([]int, error) {
	if !want.EqualUnordered(have) {
		return nil, fmt.Errorf("%s: schemas %s and %s differ", op, want, have)
	}
	perm := make([]int, len(want))
	for i, a := range want {
		perm[i] = have.IndexOf(a)
	}
	return perm, nil
}

// NaturalJoin returns the natural join of r and other on their common
// attributes. With no common attributes it degenerates to the cartesian
// product, as in the standard algebra.
func (r *Relation) NaturalJoin(other *Relation) *Relation {
	common := r.schema.Intersect(other.schema)
	outSchema := r.schema.Union(other.schema)
	out := New("", outSchema)

	rIdx := make([]int, len(common))
	oIdx := make([]int, len(common))
	for i, a := range common {
		rIdx[i] = r.schema.IndexOf(a)
		oIdx[i] = other.schema.IndexOf(a)
	}
	// Attributes of other that are appended after r's.
	extra := other.schema.Minus(r.schema)
	extraIdx := make([]int, len(extra))
	for i, a := range extra {
		extraIdx[i] = other.schema.IndexOf(a)
	}

	// Hash join on the common-attribute key.
	buckets := make(map[string][]Tuple, len(other.tuples))
	for _, t := range other.tuples {
		key := joinKey(t, oIdx)
		buckets[key] = append(buckets[key], t)
	}
	for _, t := range r.tuples {
		key := joinKey(t, rIdx)
		for _, ot := range buckets[key] {
			nt := make(Tuple, 0, len(outSchema))
			nt = append(nt, t...)
			for _, j := range extraIdx {
				nt = append(nt, ot[j])
			}
			out.tuples = append(out.tuples, nt)
		}
	}
	return out
}

func joinKey(t Tuple, idx []int) string {
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = t[j].Key()
	}
	return strings.Join(parts, "\x00")
}

// Distinct returns r with duplicate tuples removed.
func (r *Relation) Distinct() *Relation {
	out := New(r.name, r.schema)
	seen := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		if k := t.Key(); !seen[k] {
			seen[k] = true
			out.tuples = append(out.tuples, t.Clone())
		}
	}
	return out
}

// SortBy returns a copy of r sorted by the given attributes in order.
// Unknown attributes are ignored so that callers can pass a preferred
// ordering without knowing the exact schema.
func (r *Relation) SortBy(attrs ...string) *Relation {
	var idx []int
	for _, a := range attrs {
		if j := r.schema.IndexOf(a); j >= 0 {
			idx = append(idx, j)
		}
	}
	out := New(r.name, r.schema)
	out.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	sort.SliceStable(out.tuples, func(i, j int) bool {
		for _, k := range idx {
			if c := out.tuples[i][k].Compare(out.tuples[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// SortKey orders a relation by one attribute, optionally descending.
type SortKey struct {
	Attr string
	Desc bool
}

// SortKeys returns a copy of r sorted by the keys in order. Unknown
// attributes are ignored.
func (r *Relation) SortKeys(keys ...SortKey) *Relation {
	type ik struct {
		idx  int
		desc bool
	}
	var idx []ik
	for _, k := range keys {
		if j := r.schema.IndexOf(k.Attr); j >= 0 {
			idx = append(idx, ik{j, k.Desc})
		}
	}
	out := New(r.name, r.schema)
	out.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	sort.SliceStable(out.tuples, func(i, j int) bool {
		for _, k := range idx {
			c := out.tuples[i][k.idx].Compare(out.tuples[j][k.idx])
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Limit returns the first n tuples of r (all of them when n <= 0 or n
// exceeds the size).
func (r *Relation) Limit(n int) *Relation {
	out := New(r.name, r.schema)
	if n <= 0 || n > len(r.tuples) {
		n = len(r.tuples)
	}
	out.tuples = make([]Tuple, n)
	for i := 0; i < n; i++ {
		out.tuples[i] = r.tuples[i].Clone()
	}
	return out
}

// String renders the relation as an aligned text table, the format used by
// the experiment harness to print the paper's tables.
func (r *Relation) String() string {
	widths := make([]int, len(r.schema))
	for i, a := range r.schema {
		widths[i] = len(a)
	}
	rows := make([][]string, len(r.tuples))
	for ti, t := range r.tuples {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows[ti] = row
	}
	var sb strings.Builder
	if r.name != "" {
		fmt.Fprintf(&sb, "%s:\n", r.name)
	}
	for i, a := range r.schema {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], a)
	}
	sb.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
