package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered list of attribute names. Attribute names are treated
// case-sensitively; the logical layer is responsible for standardizing names
// across sites (Section 5 of the paper).
type Schema []string

// NewSchema builds a schema from attribute names, panicking on duplicates —
// a schema with duplicate attributes is a programming error, not a runtime
// condition. For schemas arriving from user input (query text, persisted
// files), use ParseSchema instead.
func NewSchema(attrs ...string) Schema {
	s, err := ParseSchema(attrs)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// ParseSchema builds a schema from attribute names supplied by external
// input, rejecting duplicates and empty names with an error.
func ParseSchema(attrs []string) (Schema, error) {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name in schema")
		}
		if seen[a] {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema", a)
		}
		seen[a] = true
	}
	return Schema(attrs), nil
}

// IndexOf returns the position of attr in s, or -1 if absent.
func (s Schema) IndexOf(attr string) int {
	for i, a := range s {
		if a == attr {
			return i
		}
	}
	return -1
}

// Has reports whether attr is in the schema.
func (s Schema) Has(attr string) bool { return s.IndexOf(attr) >= 0 }

// ContainsAll reports whether every attribute of other appears in s.
func (s Schema) ContainsAll(other Schema) bool {
	for _, a := range other {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s Schema) Equal(other Schema) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// EqualUnordered reports whether two schemas contain the same attribute set.
func (s Schema) EqualUnordered(other Schema) bool {
	return len(s) == len(other) && s.ContainsAll(other)
}

// Intersect returns the attributes common to s and other, in s's order.
func (s Schema) Intersect(other Schema) Schema {
	var out Schema
	for _, a := range s {
		if other.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Union returns s followed by the attributes of other not already in s.
func (s Schema) Union(other Schema) Schema {
	out := append(Schema{}, s...)
	for _, a := range other {
		if !out.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Minus returns the attributes of s not present in other.
func (s Schema) Minus(other Schema) Schema {
	var out Schema
	for _, a := range s {
		if !other.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema { return append(Schema{}, s...) }

// Sorted returns a lexicographically sorted copy, useful for canonical
// rendering of attribute sets.
func (s Schema) Sorted() Schema {
	out := s.Clone()
	sort.Strings(out)
	return out
}

// String renders the schema as (A, B, C).
func (s Schema) String() string {
	return "(" + strings.Join(s, ", ") + ")"
}

// AttrSet is an unordered set of attribute names, used for binding
// propagation (the sets of mandatory attributes of Section 5) and
// compatibility reasoning in the UR layer.
type AttrSet map[string]bool

// NewAttrSet builds a set from names.
func NewAttrSet(attrs ...string) AttrSet {
	s := make(AttrSet, len(attrs))
	for _, a := range attrs {
		s[a] = true
	}
	return s
}

// SetFromSchema converts a schema to a set.
func SetFromSchema(sch Schema) AttrSet { return NewAttrSet(sch...) }

// Has reports membership.
func (s AttrSet) Has(attr string) bool { return s[attr] }

// Add inserts attr.
func (s AttrSet) Add(attr string) { s[attr] = true }

// Clone copies the set.
func (s AttrSet) Clone() AttrSet {
	out := make(AttrSet, len(s))
	for a := range s {
		out[a] = true
	}
	return out
}

// Union returns a new set holding every attribute of s and other.
func (s AttrSet) Union(other AttrSet) AttrSet {
	out := s.Clone()
	for a := range other {
		out[a] = true
	}
	return out
}

// Intersect returns a new set holding the attributes in both s and other.
func (s AttrSet) Intersect(other AttrSet) AttrSet {
	out := make(AttrSet)
	for a := range s {
		if other[a] {
			out[a] = true
		}
	}
	return out
}

// Minus returns a new set holding the attributes of s not in other.
func (s AttrSet) Minus(other AttrSet) AttrSet {
	out := make(AttrSet)
	for a := range s {
		if !other[a] {
			out[a] = true
		}
	}
	return out
}

// SubsetOf reports whether every attribute of s is in other.
func (s AttrSet) SubsetOf(other AttrSet) bool {
	for a := range s {
		if !other[a] {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s AttrSet) Equal(other AttrSet) bool {
	return len(s) == len(other) && s.SubsetOf(other)
}

// Sorted returns the members in lexicographic order.
func (s AttrSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// String renders the set canonically as {A, B}.
func (s AttrSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}

// Key returns a canonical string usable as a map key for deduplicating
// attribute sets (e.g. alternative binding sets for one relation).
func (s AttrSet) Key() string { return strings.Join(s.Sorted(), "\x00") }
