package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null()},
		{"  ", Null()},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.5", Float(3.5)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"ford", String("ford")},
		{"  escort ", String("escort")},
		{"1993", Int(1993)},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseMoney(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"$12,500", Int(12500)},
		{"12,500.50", Float(12500.50)},
		{"USD 900", Int(900)},
		{"free", Null()},
		{"", Null()},
		{"$-100", Int(-100)},
	}
	for _, c := range cases {
		if got := ParseMoney(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseMoney(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Int(3).Compare(Float(3.0)) != 0 {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(2).Compare(Float(2.5)) >= 0 {
		t.Error("Int(2) should be less than Float(2.5)")
	}
	if Float(10).Compare(Int(4)) <= 0 {
		t.Error("Float(10) should be greater than Int(4)")
	}
}

func TestCompareStringNumericCoercion(t *testing.T) {
	// A quoted '9000' in a query must match the 9000 a table cell parsed
	// to — everything on the Web is text.
	if !String("9000").Equal(Int(9000)) || !Int(9000).Equal(String("9000")) {
		t.Error("numeric string should equal the number")
	}
	if !String(" 3.5 ").Equal(Float(3.5)) {
		t.Error("whitespace-padded numeric string should coerce")
	}
	if String("12").Compare(Int(100)) >= 0 {
		t.Error("coerced comparison should be numeric, not lexicographic")
	}
	if String("escort").Equal(Int(0)) {
		t.Error("non-numeric string must not coerce")
	}
}

func TestCompareStringsCaseInsensitive(t *testing.T) {
	if !String("Ford").Equal(String("ford")) {
		t.Error("string comparison should be case-insensitive")
	}
	if String("audi").Compare(String("BMW")) >= 0 {
		t.Error("audi should sort before BMW case-insensitively")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "∅"},
		{Int(5), "5"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{String("x"), "x"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(int64(r.Intn(2000) - 1000))
	case 2:
		return Float(float64(r.Intn(2000)-1000) / 4)
	case 3:
		return Bool(r.Intn(2) == 0)
	default:
		letters := []rune("abcdefgXYZ")
		n := r.Intn(6)
		s := make([]rune, n)
		for i := range s {
			s[i] = letters[r.Intn(len(letters))]
		}
		return String(string(s))
	}
}

// genValue adapts randomValue to testing/quick.
type genValue struct{ V Value }

func (genValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue{randomValue(r)})
}

// Property: Compare is reflexive, antisymmetric and transitive (a total
// preorder) over arbitrary values.
func TestCompareTotalOrderProperties(t *testing.T) {
	reflexive := func(a genValue) bool { return a.V.Compare(a.V) == 0 }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
	antisym := func(a, b genValue) bool {
		return sign(a.V.Compare(b.V)) == -sign(b.V.Compare(a.V))
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	transitive := func(a, b, c genValue) bool {
		x, y, z := a.V, b.V, c.V
		// Order the three and verify ends compare consistently.
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 {
			return x.Compare(z) <= 0
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Error(err)
	}
}

// Property: equal values have equal keys, and distinct kinds/payloads give
// distinct keys for the common kinds.
func TestKeyConsistentWithEqual(t *testing.T) {
	prop := func(a, b genValue) bool {
		if a.V.Equal(b.V) && a.V.Kind() == b.V.Kind() {
			// Case-insensitive string equality may legitimately produce
			// different keys ("A" vs "a"); skip that corner.
			if a.V.Kind() == KindString && a.V.Str() != b.V.Str() {
				return true
			}
			return a.V.Key() == b.V.Key()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
