package relation

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func carRel(t *testing.T) *Relation {
	t.Helper()
	r := New("cars", NewSchema("Make", "Model", "Year", "Price"))
	r.MustInsert(String("ford"), String("escort"), Int(1994), Int(3000))
	r.MustInsert(String("ford"), String("taurus"), Int(1996), Int(7000))
	r.MustInsert(String("jaguar"), String("xj6"), Int(1993), Int(15000))
	r.MustInsert(String("jaguar"), String("xj6"), Int(1995), Int(21000))
	return r
}

func TestInsertArity(t *testing.T) {
	r := New("r", NewSchema("A", "B"))
	if err := r.Insert(Tuple{Int(1)}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := r.Insert(Tuple{Int(1), Int(2)}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestInsertMap(t *testing.T) {
	r := New("r", NewSchema("A", "B"))
	if err := r.InsertMap(map[string]Value{"B": Int(2)}); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get(r.Tuples()[0], "A"); !got.IsNull() {
		t.Errorf("missing attribute should be null, got %v", got)
	}
	if err := r.InsertMap(map[string]Value{"Z": Int(1)}); err == nil {
		t.Error("expected error for unknown attribute")
	}
}

func TestNewSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate attribute")
		}
	}()
	NewSchema("A", "A")
}

func TestProject(t *testing.T) {
	r := carRel(t)
	p, err := r.Project("Make")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("projecting onto Make should dedupe to 2 tuples, got %d", p.Len())
	}
	if _, err := r.Project("Nope"); err == nil {
		t.Error("expected error projecting onto unknown attribute")
	}
}

func TestSelectEq(t *testing.T) {
	r := carRel(t)
	s, err := r.SelectEq("Make", String("jaguar"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("got %d jaguars, want 2", s.Len())
	}
	if _, err := r.SelectEq("Nope", Int(1)); err == nil {
		t.Error("expected error selecting on unknown attribute")
	}
}

func TestUnionAlignsSchemas(t *testing.T) {
	a := New("a", NewSchema("X", "Y"))
	a.MustInsert(Int(1), Int(2))
	b := New("b", NewSchema("Y", "X"))
	b.MustInsert(Int(2), Int(1)) // same tuple, permuted
	b.MustInsert(Int(9), Int(8))
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("union should dedupe permuted duplicates: got %d, want 2", u.Len())
	}
	c := New("c", NewSchema("X", "Z"))
	if _, err := a.Union(c); err == nil {
		t.Error("expected schema mismatch error")
	}
}

func TestDiff(t *testing.T) {
	a := New("a", NewSchema("X"))
	a.MustInsert(Int(1))
	a.MustInsert(Int(2))
	b := New("b", NewSchema("X"))
	b.MustInsert(Int(2))
	d, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !d.Tuples()[0][0].Equal(Int(1)) {
		t.Errorf("diff = %v, want [1]", d.Tuples())
	}
}

func TestNaturalJoin(t *testing.T) {
	cars := carRel(t)
	safety := New("safety", NewSchema("Make", "Model", "Safety"))
	safety.MustInsert(String("jaguar"), String("xj6"), String("good"))
	j := cars.NaturalJoin(safety)
	if j.Len() != 2 {
		t.Fatalf("join produced %d tuples, want 2", j.Len())
	}
	wantSchema := NewSchema("Make", "Model", "Year", "Price", "Safety")
	if !j.Schema().Equal(wantSchema) {
		t.Errorf("join schema = %v, want %v", j.Schema(), wantSchema)
	}
}

func TestNaturalJoinNoCommonIsProduct(t *testing.T) {
	a := New("a", NewSchema("X"))
	a.MustInsert(Int(1))
	a.MustInsert(Int(2))
	b := New("b", NewSchema("Y"))
	b.MustInsert(Int(10))
	b.MustInsert(Int(20))
	b.MustInsert(Int(30))
	if got := a.NaturalJoin(b).Len(); got != 6 {
		t.Errorf("cartesian product size = %d, want 6", got)
	}
}

func TestDistinctAndSort(t *testing.T) {
	r := New("r", NewSchema("A", "B"))
	r.MustInsert(Int(2), String("b"))
	r.MustInsert(Int(1), String("a"))
	r.MustInsert(Int(2), String("b"))
	d := r.Distinct()
	if d.Len() != 2 {
		t.Errorf("distinct = %d, want 2", d.Len())
	}
	s := d.SortBy("A")
	if !s.Tuples()[0][0].Equal(Int(1)) {
		t.Error("sort by A should place 1 first")
	}
	// Sorting by an unknown attribute must not panic.
	_ = d.SortBy("Nope")
}

func TestSortKeysAndLimit(t *testing.T) {
	r := New("r", NewSchema("A", "B"))
	r.MustInsert(Int(1), String("x"))
	r.MustInsert(Int(3), String("y"))
	r.MustInsert(Int(2), String("x"))
	s := r.SortKeys(SortKey{Attr: "A", Desc: true})
	if !s.Tuples()[0][0].Equal(Int(3)) || !s.Tuples()[2][0].Equal(Int(1)) {
		t.Errorf("desc sort: %v", s.Tuples())
	}
	// Secondary key applies after ties in the first.
	s2 := r.SortKeys(SortKey{Attr: "B"}, SortKey{Attr: "A", Desc: true})
	if !s2.Tuples()[0][0].Equal(Int(2)) { // (x,2) before (x,1) on desc A
		t.Errorf("multi-key sort: %v", s2.Tuples())
	}
	// Unknown key ignored, no panic.
	_ = r.SortKeys(SortKey{Attr: "Nope"})

	l := r.Limit(2)
	if l.Len() != 2 {
		t.Errorf("limit = %d", l.Len())
	}
	if r.Limit(0).Len() != 3 || r.Limit(99).Len() != 3 {
		t.Error("limit edge cases")
	}
}

func TestRename(t *testing.T) {
	r := carRel(t)
	n := r.Rename("autos", map[string]string{"Price": "Cost"})
	if n.Name() != "autos" || !n.Schema().Has("Cost") || n.Schema().Has("Price") {
		t.Errorf("rename failed: %v %v", n.Name(), n.Schema())
	}
	// Original untouched.
	if !r.Schema().Has("Price") {
		t.Error("rename mutated the source relation")
	}
}

func TestStringRendering(t *testing.T) {
	r := carRel(t)
	s := r.String()
	for _, want := range []string{"cars:", "Make", "jaguar", "15000"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestSchemaOps(t *testing.T) {
	a := NewSchema("A", "B", "C")
	b := NewSchema("B", "D")
	if got := a.Intersect(b); !got.Equal(NewSchema("B")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(NewSchema("A", "B", "C", "D")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewSchema("A", "C")) {
		t.Errorf("Minus = %v", got)
	}
	if !a.ContainsAll(NewSchema("A", "C")) || a.ContainsAll(b) {
		t.Error("ContainsAll wrong")
	}
	if !a.EqualUnordered(NewSchema("C", "B", "A")) {
		t.Error("EqualUnordered should ignore order")
	}
}

func TestAttrSetOps(t *testing.T) {
	s := NewAttrSet("Make", "Model")
	u := s.Union(NewAttrSet("Year"))
	if !u.Equal(NewAttrSet("Make", "Model", "Year")) {
		t.Errorf("Union = %v", u)
	}
	if !s.SubsetOf(u) || u.SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	i := u.Intersect(NewAttrSet("Year", "Price"))
	if !i.Equal(NewAttrSet("Year")) {
		t.Errorf("Intersect = %v", i)
	}
	m := u.Minus(s)
	if !m.Equal(NewAttrSet("Year")) {
		t.Errorf("Minus = %v", m)
	}
	if s.String() != "{Make, Model}" {
		t.Errorf("String = %q", s.String())
	}
	if s.Key() == u.Key() {
		t.Error("distinct sets must have distinct keys")
	}
}

// genRel generates a small random relation over schema (A, B) for property
// tests.
type genRel struct{ R *Relation }

func (genRel) Generate(r *rand.Rand, _ int) reflect.Value {
	rel := New("g", NewSchema("A", "B"))
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		rel.MustInsert(Int(int64(r.Intn(4))), Int(int64(r.Intn(4))))
	}
	return reflect.ValueOf(genRel{rel})
}

// Property: union is commutative and idempotent on tuple sets.
func TestUnionProperties(t *testing.T) {
	comm := func(a, b genRel) bool {
		ab, err1 := a.R.Union(b.R)
		ba, err2 := b.R.Union(a.R)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameTupleSet(ab, ba)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	idem := func(a genRel) bool {
		aa, err := a.R.Union(a.R)
		if err != nil {
			return false
		}
		return sameTupleSet(aa, a.R.Distinct())
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
}

// Property: r − r is empty, and (r − s) ⊆ r.
func TestDiffProperties(t *testing.T) {
	selfEmpty := func(a genRel) bool {
		d, err := a.R.Diff(a.R)
		return err == nil && d.Len() == 0
	}
	if err := quick.Check(selfEmpty, nil); err != nil {
		t.Error(err)
	}
	subset := func(a, b genRel) bool {
		d, err := a.R.Diff(b.R)
		if err != nil {
			return false
		}
		in := make(map[string]bool)
		for _, t := range a.R.Tuples() {
			in[t.Key()] = true
		}
		for _, t := range d.Tuples() {
			if !in[t.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(subset, nil); err != nil {
		t.Error(err)
	}
}

// Property: natural join with a relation sharing all attributes equals
// intersection of tuple sets (as sets).
func TestJoinSelfSchemaIsIntersection(t *testing.T) {
	prop := func(a, b genRel) bool {
		j := a.R.NaturalJoin(b.R).Distinct()
		in := make(map[string]bool)
		for _, t := range b.R.Tuples() {
			in[t.Key()] = true
		}
		want := a.R.Select(func(t Tuple) bool { return in[t.Key()] }).Distinct()
		return sameTupleSet(j, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func sameTupleSet(a, b *Relation) bool {
	if !a.Schema().EqualUnordered(b.Schema()) {
		return false
	}
	d1, err1 := a.Diff(b)
	d2, err2 := b.Diff(a)
	return err1 == nil && err2 == nil && d1.Len() == 0 && d2.Len() == 0
}
