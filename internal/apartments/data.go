// Package apartments is a second application domain for the webbase,
// demonstrating that the layered architecture is domain-generic — the
// paper: "we believe that webbases will be designed for application
// domains (such as cars, jobs, houses) by the experts in those domains."
//
// The domain covers New York apartment hunting across four simulated
// sites: two listing sources (an owner-classifieds site and a broker site
// that charges fees), a rent-index reference and a neighborhood-safety
// reference. Everything is assembled through the same packages the
// used-car domain uses: sites → navigation maps → VPS handles → logical
// views → a structured universal relation.
package apartments

import (
	"fmt"
	"math/rand"
	"sort"
)

// Listing is one apartment ad.
type Listing struct {
	ID           int
	Borough      string
	Neighborhood string
	Bedrooms     int
	Rent         int
	Fee          int // broker fee in dollars; 0 for owner listings
	Contact      string
}

// Boroughs lists the five boroughs.
var Boroughs = []string{"bronx", "brooklyn", "manhattan", "queens", "statenisland"}

// Neighborhoods per borough.
var Neighborhoods = map[string][]string{
	"manhattan":    {"chelsea", "harlem", "soho", "tribeca"},
	"brooklyn":     {"bushwick", "dumbo", "parkslope", "williamsburg"},
	"queens":       {"astoria", "flushing", "jacksonheights"},
	"bronx":        {"fordham", "riverdale"},
	"statenisland": {"stgeorge", "tottenville"},
}

// baseRent is the studio median per borough.
var baseRent = map[string]int{
	"manhattan": 1400, "brooklyn": 950, "queens": 800,
	"bronx": 650, "statenisland": 600,
}

// neighborhoodPremium scales rent by desirability, deterministic per
// neighborhood.
func neighborhoodPremium(n string) float64 {
	var h uint32
	for _, c := range n {
		h = h*31 + uint32(c)
	}
	return 0.85 + float64(h%40)/100 // 0.85 .. 1.24
}

// MedianRent is the RentIndex site's figure for a borough/bedroom
// combination (1999 dollars).
func MedianRent(borough string, bedrooms int) int {
	base, ok := baseRent[borough]
	if !ok || bedrooms < 0 {
		return 0
	}
	return int(float64(base) * (1 + 0.45*float64(bedrooms)))
}

// CrimeRate is SafeStreets' 1 (safest) to 10 (worst) figure per
// neighborhood: deterministic, anti-correlated with the neighborhood's
// rent premium (desirable places are safer) plus a little per-name
// jitter.
func CrimeRate(neighborhood string) int {
	var h uint32
	for _, c := range neighborhood {
		h = h*17 + uint32(c)
	}
	c := int((1.25-neighborhoodPremium(neighborhood))*20) + int(h%3)
	if c < 1 {
		c = 1
	}
	if c > 10 {
		c = 10
	}
	return c
}

// Dataset is a deterministic collection of listings.
type Dataset struct {
	Listings []Listing
}

// NewDataset generates n listings from the seed. Rents scatter ±30%
// around the neighborhood-adjusted borough median so that "below median"
// queries are selective but non-empty. withFees marks the dataset as a
// broker's (every listing carries a fee).
func NewDataset(seed int64, n int, withFees bool) *Dataset {
	r := rand.New(rand.NewSource(seed))
	ds := &Dataset{Listings: make([]Listing, 0, n)}
	for i := 0; i < n; i++ {
		borough := Boroughs[r.Intn(len(Boroughs))]
		hoods := Neighborhoods[borough]
		hood := hoods[r.Intn(len(hoods))]
		beds := r.Intn(4)
		median := float64(MedianRent(borough, beds)) * neighborhoodPremium(hood)
		rent := int(median * (0.7 + r.Float64()*0.6))
		fee := 0
		if withFees {
			fee = rent * (8 + r.Intn(8)) / 100 // 8–15% of a month
		}
		ds.Listings = append(ds.Listings, Listing{
			ID:           i + 1,
			Borough:      borough,
			Neighborhood: hood,
			Bedrooms:     beds,
			Rent:         rent,
			Fee:          fee,
			Contact:      fmt.Sprintf("(212) 555-%04d", 1000+r.Intn(9000)),
		})
	}
	return ds
}

// ByBorough returns the listings in a borough, optionally restricted to a
// bedroom count (bedrooms < 0 means any).
func (d *Dataset) ByBorough(borough string, bedrooms int) []Listing {
	var out []Listing
	for _, l := range d.Listings {
		if l.Borough == borough && (bedrooms < 0 || l.Bedrooms == bedrooms) {
			out = append(out, l)
		}
	}
	return out
}

// HoodsOf returns the distinct neighborhoods present for a borough in the
// dataset, sorted.
func (d *Dataset) HoodsOf(borough string) []string {
	seen := map[string]bool{}
	for _, l := range d.Listings {
		if l.Borough == borough {
			seen[l.Neighborhood] = true
		}
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
