package apartments

import (
	"fmt"
	"strconv"
	"strings"

	"webbase/internal/htmlkit"
	"webbase/internal/web"
)

// Hosts of the apartment-domain sites.
const (
	CityRentalsHost = "cityrentals.example"
	AptFinderHost   = "aptfinder.example"
	RentIndexHost   = "rentindex.example"
	SafeStreetsHost = "safestreets.example"
)

// pageSize is the listings-per-page of the paginated sites.
const pageSize = 6

// CityRentals builds the owner-classifieds site: home → link("Apartment
// Classifieds") → form(borough mandatory select, bedrooms optional) →
// paginated listings.
func CityRentals(ds *Dataset) web.Site {
	m := web.NewMux(CityRentalsHost)
	base := "http://" + CityRentalsHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, page("CityRentals",
			link("Apartment Classifieds", base+"/classifieds"))), nil
	}))
	m.Handle("/classifieds", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, page("Apartment Classifieds",
			form("search", base+"/cgi/search", "get",
				selectField("borough", Boroughs...),
				textField("bedrooms")))), nil
	}))
	m.Handle("/cgi/search", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		borough := req.Param("borough")
		if borough == "" {
			return web.HTML(req.URL, page("Error", "<p>borough is required</p>")), nil
		}
		beds := -1
		if b := req.Param("bedrooms"); b != "" {
			if n, err := strconv.Atoi(b); err == nil {
				beds = n
			}
		}
		listings := ds.ByBorough(borough, beds)
		pg := atoi(req.Param("page"))
		start, end := bounds(len(listings), pg)
		var rows strings.Builder
		for _, l := range listings[start:end] {
			fmt.Fprintf(&rows, "<tr><td>%s</td><td>%s</td><td>%d</td><td>$%d</td><td>%s</td></tr>\n",
				l.Borough, l.Neighborhood, l.Bedrooms, l.Rent, l.Contact)
		}
		body := fmt.Sprintf(`<h1>Listings %d–%d of %d</h1>
<table><tr><th>Borough</th><th>Neighborhood</th><th>Bedrooms</th><th>Rent</th><th>Contact</th></tr>
%s</table>`, start+1, end, len(listings), rows.String())
		if end < len(listings) {
			body += fmt.Sprintf(`<a href="%s/cgi/search?borough=%s&bedrooms=%s&page=%d">More</a>`,
				base, borough, req.Param("bedrooms"), pg+1)
		}
		return web.HTML(req.URL, page("Listings", body)), nil
	}))
	return m
}

// AptFinder builds the broker site: a bedrooms radio group (mandatory, as
// the map builder infers from the widget) plus a borough select, listings
// carrying the broker Fee column.
func AptFinder(ds *Dataset) web.Site {
	m := web.NewMux(AptFinderHost)
	base := "http://" + AptFinderHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, page("AptFinder",
			form("finder", base+"/cgi/find", "post",
				selectField("borough", Boroughs...),
				radioField("bedrooms", "0", "1", "2", "3")))), nil
	}))
	m.Handle("/cgi/find", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		borough, bedsStr := req.Param("borough"), req.Param("bedrooms")
		if borough == "" || bedsStr == "" {
			return web.HTML(req.URL, page("Error", "<p>borough and bedrooms are required</p>")), nil
		}
		beds, _ := strconv.Atoi(bedsStr)
		listings := ds.ByBorough(borough, beds)
		pg := atoi(req.Param("page"))
		start, end := bounds(len(listings), pg)
		var rows strings.Builder
		for _, l := range listings[start:end] {
			fmt.Fprintf(&rows, "<tr><td>%s</td><td>%s</td><td>%d</td><td>$%d</td><td>$%d</td><td>%s</td></tr>\n",
				l.Borough, l.Neighborhood, l.Bedrooms, l.Rent, l.Fee, l.Contact)
		}
		body := fmt.Sprintf(`<h1>Brokered listings %d–%d of %d</h1>
<table><tr><th>Borough</th><th>Neighborhood</th><th>Bedrooms</th><th>Rent</th><th>Fee</th><th>Contact</th></tr>
%s</table>`, start+1, end, len(listings), rows.String())
		if end < len(listings) {
			body += fmt.Sprintf(`<a href="%s/cgi/find?borough=%s&bedrooms=%d&page=%d">More</a>`,
				base, borough, beds, pg+1)
		}
		return web.HTML(req.URL, page("Brokered Listings", body)), nil
	}))
	return m
}

// RentIndex builds the rent-statistics reference: form(borough; bedrooms
// optional) → median-rent table.
func RentIndex() web.Site {
	m := web.NewMux(RentIndexHost)
	base := "http://" + RentIndexHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, page("RentIndex",
			link("Median Rents", base+"/medians"))), nil
	}))
	m.Handle("/medians", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, page("Median Rents",
			form("medians", base+"/cgi/medians", "get",
				selectField("borough", Boroughs...),
				textField("bedrooms")))), nil
	}))
	m.Handle("/cgi/medians", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		borough := req.Param("borough")
		if borough == "" {
			return web.HTML(req.URL, page("Error", "<p>borough is required</p>")), nil
		}
		var rows strings.Builder
		emit := func(beds int) {
			fmt.Fprintf(&rows, "<tr><td>%s</td><td>%d</td><td>$%d</td></tr>\n",
				borough, beds, MedianRent(borough, beds))
		}
		if b := req.Param("bedrooms"); b != "" {
			if n, err := strconv.Atoi(b); err == nil {
				emit(n)
			}
		} else {
			for beds := 0; beds <= 3; beds++ {
				emit(beds)
			}
		}
		body := fmt.Sprintf(`<table><tr><th>Borough</th><th>Bedrooms</th><th>MedianRent</th></tr>%s</table>`, rows.String())
		return web.HTML(req.URL, page("Medians", body)), nil
	}))
	return m
}

// SafeStreets builds the neighborhood-safety reference: borough links
// (link-defined attribute) → crime-rate table per neighborhood.
func SafeStreets() web.Site {
	m := web.NewMux(SafeStreetsHost)
	base := "http://" + SafeStreetsHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		var links strings.Builder
		for _, b := range Boroughs {
			fmt.Fprintf(&links, `<a href="%s/borough?b=%s">%s</a><br>`, base, b, b)
		}
		return web.HTML(req.URL, page("SafeStreets", links.String())), nil
	}))
	m.Handle("/borough", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		b := req.Param("b")
		hoods, ok := Neighborhoods[b]
		if !ok {
			return web.NotFound(req.URL), nil
		}
		var rows strings.Builder
		for _, h := range hoods {
			fmt.Fprintf(&rows, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>\n", b, h, CrimeRate(h))
		}
		body := fmt.Sprintf(`<table><tr><th>Borough</th><th>Neighborhood</th><th>CrimeRate</th></tr>%s</table>`, rows.String())
		return web.HTML(req.URL, page("Safety: "+b, body)), nil
	}))
	return m
}

// World bundles the apartment Web with its ground-truth datasets.
type World struct {
	Server      *web.Server
	CityRentals *Dataset
	AptFinder   *Dataset
}

// BuildWorld assembles the apartment-domain Web deterministically.
func BuildWorld() *World {
	w := &World{
		Server:      web.NewServer(),
		CityRentals: NewDataset(101, 500, false),
		AptFinder:   NewDataset(102, 400, true),
	}
	w.Server.Register(CityRentals(w.CityRentals))
	w.Server.Register(AptFinder(w.AptFinder))
	w.Server.Register(RentIndex())
	w.Server.Register(SafeStreets())
	return w
}

// Small HTML helpers (era-style markup, kept local to the domain).

func page(title, body string) string {
	return "<html><head><title>" + htmlkit.EscapeText(title) + "</title></head><body>\n" +
		body + "\n<hr><a href=\"/about\">About</a> <a href=\"/help\">Help</a>\n</body></html>\n"
}

func link(name, href string) string {
	return fmt.Sprintf(`<a href="%s">%s</a>`, htmlkit.EscapeAttr(href), htmlkit.EscapeText(name))
}

func form(name, action, method string, fields ...string) string {
	return fmt.Sprintf(`<form name="%s" action="%s" method="%s">%s<input type="submit" value="Search"></form>`,
		name, action, method, strings.Join(fields, ""))
}

func selectField(name string, options ...string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `%s: <select name="%s">`, name, name)
	for _, o := range options {
		fmt.Fprintf(&sb, `<option value="%s">%s</option>`, o, o)
	}
	sb.WriteString("</select><br>")
	return sb.String()
}

func textField(name string) string {
	return fmt.Sprintf(`%s: <input type="text" name="%s"><br>`, name, name)
}

func radioField(name string, options ...string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: ", name)
	for _, o := range options {
		fmt.Fprintf(&sb, `<input type="radio" name="%s" value="%s">%s `, name, o, o)
	}
	sb.WriteString("<br>")
	return sb.String()
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func bounds(total, page int) (int, int) {
	start := page * pageSize
	if start > total {
		start = total
	}
	end := start + pageSize
	if end > total {
		end = total
	}
	return start, end
}
