package apartments

import (
	"fmt"

	"webbase/internal/algebra"
	"webbase/internal/logical"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/ur"
	"webbase/internal/vps"
	"webbase/internal/web"
)

// Maps returns the navigation maps of the apartment domain, keyed by VPS
// relation name.
func Maps() map[string]*navmap.Map {
	col := func(h string) navcalc.Column { return navcalc.Column{Header: h, Attr: h} }
	money := func(h string) navcalc.Column { return navcalc.Column{Header: h, Attr: h, Money: true} }

	cityRentals := navmap.New("cityRentals", "http://"+CityRentalsHost+"/",
		relation.NewSchema("Borough", "Neighborhood", "Bedrooms", "Rent", "Contact"))
	cityRentals.AddNode(&navmap.Node{ID: "home"})
	cityRentals.AddNode(&navmap.Node{ID: "searchPg"})
	cityRentals.AddNode(&navmap.Node{ID: "data", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			col("Borough"), col("Neighborhood"), col("Bedrooms"), money("Rent"), col("Contact"),
		}}})
	cityRentals.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Apartment Classifieds"}, "searchPg")
	cityRentals.AddEdge("searchPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "search",
		Fills: []navcalc.FieldFill{navcalc.Fill("borough", "Borough"), navcalc.Fill("bedrooms", "Bedrooms")}}, "data")
	cityRentals.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")

	aptFinder := navmap.New("aptFinder", "http://"+AptFinderHost+"/",
		relation.NewSchema("Borough", "Neighborhood", "Bedrooms", "Rent", "Fee", "Contact"))
	aptFinder.AddNode(&navmap.Node{ID: "home"})
	aptFinder.AddNode(&navmap.Node{ID: "data", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			col("Borough"), col("Neighborhood"), col("Bedrooms"), money("Rent"), money("Fee"), col("Contact"),
		}}})
	aptFinder.AddEdge("home", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "finder",
		Fills: []navcalc.FieldFill{navcalc.Fill("borough", "Borough"), navcalc.Fill("bedrooms", "Bedrooms")}}, "data")
	aptFinder.AddEdge("data", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "More"}, "data")

	rentIndex := navmap.New("rentIndex", "http://"+RentIndexHost+"/",
		relation.NewSchema("Borough", "Bedrooms", "MedianRent"))
	rentIndex.AddNode(&navmap.Node{ID: "home"})
	rentIndex.AddNode(&navmap.Node{ID: "mediansPg"})
	rentIndex.AddNode(&navmap.Node{ID: "data", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			col("Borough"), col("Bedrooms"), money("MedianRent"),
		}}})
	rentIndex.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Median Rents"}, "mediansPg")
	rentIndex.AddEdge("mediansPg", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "medians",
		Fills: []navcalc.FieldFill{navcalc.Fill("borough", "Borough"), navcalc.Fill("bedrooms", "Bedrooms")}}, "data")

	safeStreets := navmap.New("safeStreets", "http://"+SafeStreetsHost+"/",
		relation.NewSchema("Borough", "Neighborhood", "CrimeRate"))
	safeStreets.AddNode(&navmap.Node{ID: "home"})
	safeStreets.AddNode(&navmap.Node{ID: "data", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
			col("Borough"), col("Neighborhood"), col("CrimeRate"),
		}}})
	safeStreets.AddEdge("home", navmap.Action{Kind: navmap.ActFollowVar, EnvVar: "Borough"}, "data")

	return map[string]*navmap.Map{
		"cityRentals": cityRentals,
		"aptFinder":   aptFinder,
		"rentIndex":   rentIndex,
		"safeStreets": safeStreets,
	}
}

// Registry builds the apartment-domain VPS.
func Registry() (*vps.Registry, error) {
	reg := vps.NewRegistry()
	handles := []struct {
		relation  string
		mandatory []string
		selection []string
	}{
		{"cityRentals", []string{"Borough"}, []string{"Borough", "Bedrooms"}},
		{"aptFinder", []string{"Borough", "Bedrooms"}, []string{"Borough", "Bedrooms"}},
		{"rentIndex", []string{"Borough"}, []string{"Borough", "Bedrooms"}},
		{"safeStreets", []string{"Borough"}, []string{"Borough"}},
	}
	maps := Maps()
	for name, m := range maps {
		expr, err := navmap.Translate(m)
		if err != nil {
			return nil, fmt.Errorf("apartments: %s: %w", name, err)
		}
		if err := reg.Declare(name, m.Schema); err != nil {
			return nil, err
		}
		for _, h := range handles {
			if h.relation != name {
				continue
			}
			if err := reg.AddHandle(&vps.Handle{
				Relation:  name,
				Mandatory: relation.NewAttrSet(h.mandatory...),
				Selection: relation.NewAttrSet(h.selection...),
				Expr:      expr,
			}); err != nil {
				return nil, err
			}
		}
	}
	return reg, nil
}

// Logical builds the apartment-domain view catalog:
//
//	listings(Borough, Neighborhood, Bedrooms, Rent, Contact) =
//	    cityRentals ∪ʳ π(aptFinder)      — owner and broker ads, fee dropped
//	brokered(…, Fee)  = aptFinder        — fee-aware view
//	medians(Borough, Bedrooms, MedianRent) = rentIndex
//	safety(Borough, Neighborhood, CrimeRate) = safeStreets
func Logical(reg *vps.Registry, f web.Fetcher) (*logical.Catalog, error) {
	base := &logical.VPSCatalog{Registry: reg, Fetcher: f}
	cat := logical.NewCatalog(base)
	scan := func(n string) algebra.Expr { return &algebra.Scan{Relation: n} }

	listings := &algebra.RelaxedUnion{
		Left: scan("cityRentals"),
		Right: &algebra.Project{Input: scan("aptFinder"),
			Attrs: []string{"Borough", "Neighborhood", "Bedrooms", "Rent", "Contact"}},
	}
	if err := cat.Define("listings", listings); err != nil {
		return nil, err
	}
	if err := cat.Define("brokered", scan("aptFinder")); err != nil {
		return nil, err
	}
	if err := cat.Define("medians", scan("rentIndex")); err != nil {
		return nil, err
	}
	if err := cat.Define("safety", scan("safeStreets")); err != nil {
		return nil, err
	}
	return cat, nil
}

// UR builds the apartment universal relation: the hunter names boroughs,
// bedrooms, rents, medians and crime rates; compatibility keeps owner and
// broker listings apart and attaches the references to either.
func UR() (*ur.Schema, error) {
	h := &ur.Hierarchy{Root: ur.Cat("ApartmentUR",
		ur.Cat("Source",
			ur.Rel("Listings", ur.Attrs("Borough", "Neighborhood", "Bedrooms", "Rent", "Contact")...),
			ur.Rel("Brokered", ur.Attrs("Borough", "Neighborhood", "Bedrooms", "Rent", "Fee", "Contact")...),
		),
		ur.Cat("References",
			ur.Rel("Medians", ur.Attrs("Borough", "Bedrooms", "MedianRent")...),
			ur.Rel("Safety", ur.Attrs("Borough", "Neighborhood", "CrimeRate")...),
		),
	)}
	rules := []ur.Rule{
		ur.Plus("Listings"),
		ur.Plus("Brokered"),
		ur.Minus("Listings", "Brokered"), // an ad has one source
		ur.Plus("Medians", "Listings"),
		ur.Plus("Medians", "Brokered"),
		ur.Plus("Safety", "Listings"),
		ur.Plus("Safety", "Brokered"),
	}
	mapping := map[string]string{
		"Listings": "listings", "Brokered": "brokered",
		"Medians": "medians", "Safety": "safety",
	}
	return ur.NewSchema("ApartmentUR", h, rules, mapping)
}
