package apartments

import (
	"strings"
	"testing"

	"webbase/internal/core"
	"webbase/internal/navmap"
	"webbase/internal/relation"
)

// Domain bundles the apartment layers for core.NewDomain.
func domain() core.Domain {
	return core.Domain{Registry: Registry, Logical: Logical, UR: UR}
}

func TestDatasetShapes(t *testing.T) {
	ds := NewDataset(1, 300, true)
	if len(ds.Listings) != 300 {
		t.Fatal("size")
	}
	for _, l := range ds.Listings {
		if l.Rent <= 0 || l.Fee <= 0 {
			t.Fatalf("bad listing %+v", l)
		}
		if CrimeRate(l.Neighborhood) < 1 || CrimeRate(l.Neighborhood) > 10 {
			t.Fatalf("bad crime rate for %s", l.Neighborhood)
		}
	}
	owner := NewDataset(2, 100, false)
	for _, l := range owner.Listings {
		if l.Fee != 0 {
			t.Fatal("owner listings must be fee-free")
		}
	}
	if MedianRent("manhattan", 2) <= MedianRent("bronx", 2) {
		t.Error("manhattan should out-price the bronx")
	}
	if MedianRent("manhattan", 2) <= MedianRent("manhattan", 0) {
		t.Error("more bedrooms should cost more")
	}
	if MedianRent("atlantis", 1) != 0 || MedianRent("manhattan", -1) != 0 {
		t.Error("unknown inputs should price at 0")
	}
	if got := ds.ByBorough("brooklyn", -1); len(got) == 0 {
		t.Error("no brooklyn listings")
	}
	if got := ds.HoodsOf("queens"); len(got) == 0 {
		t.Error("no queens hoods")
	}
}

func TestMapsTranslateAndRun(t *testing.T) {
	w := BuildWorld()
	inputs := map[string]string{"Borough": "brooklyn", "Bedrooms": "2"}
	for name, m := range Maps() {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		expr, err := navmap.Translate(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rel, _, err := expr.Execute(w.Server, inputs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel.Len() == 0 {
			t.Errorf("%s: no tuples", name)
		}
	}
	// Oracles.
	cr, _ := navmap.Translate(Maps()["cityRentals"])
	rel, _, err := cr.Execute(w.Server, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(w.CityRentals.ByBorough("brooklyn", 2)); rel.Len() != want {
		t.Errorf("cityRentals = %d, want %d", rel.Len(), want)
	}
}

func TestApartmentURPlanning(t *testing.T) {
	s, err := UR()
	if err != nil {
		t.Fatal(err)
	}
	objs := s.MaximalObjects()
	if len(objs) != 2 {
		t.Fatalf("maximal objects = %v", objs)
	}
	for _, o := range objs {
		joined := strings.Join(o, "+")
		if strings.Contains(joined, "Listings") && strings.Contains(joined, "Brokered") {
			t.Errorf("sources mixed in one object: %v", o)
		}
	}
}

// TestApartmentHeadlineQuery is the domain's flagship: two-bedroom
// apartments in Brooklyn renting below the borough median in
// low-crime neighborhoods.
func TestApartmentHeadlineQuery(t *testing.T) {
	w := BuildWorld()
	sys, err := core.NewDomain(core.Config{Fetcher: w.Server}, domain())
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := sys.QueryString(
		"SELECT Neighborhood, Rent, MedianRent, CrimeRate, Contact " +
			"WHERE Borough = 'brooklyn' AND Bedrooms = 2 " +
			"AND Rent < MedianRent AND CrimeRate <= 5 ORDER BY Rent")
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() == 0 {
		t.Fatal("no qualifying apartments; dataset should contain some")
	}
	for _, tp := range res.Relation.Tuples() {
		rent, _ := res.Relation.Get(tp, "Rent")
		median, _ := res.Relation.Get(tp, "MedianRent")
		crime, _ := res.Relation.Get(tp, "CrimeRate")
		if rent.FloatVal() >= median.FloatVal() || crime.IntVal() > 5 {
			t.Fatalf("bad answer: %v", tp)
		}
	}
	if stats.Pages == 0 {
		t.Error("no pages fetched")
	}
	t.Logf("found %d apartments; %s", res.Relation.Len(), stats)
}

func TestBrokeredFeeQuery(t *testing.T) {
	w := BuildWorld()
	sys, err := core.NewDomain(core.Config{Fetcher: w.Server}, domain())
	if err != nil {
		t.Fatal(err)
	}
	// Fee lives only in the Brokered relation: the planner must pick the
	// Brokered maximal object.
	res, _, err := sys.QueryString(
		"SELECT Neighborhood, Rent, Fee WHERE Borough = 'queens' AND Bedrooms = 1 AND Fee < 120")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Plan.Objects {
		for _, r := range o.Relations {
			if r == "Listings" {
				t.Errorf("fee query planned over owner listings: %v", o.Relations)
			}
		}
	}
	for _, tp := range res.Relation.Tuples() {
		fee, _ := res.Relation.Get(tp, "Fee")
		if fee.IntVal() >= 120 {
			t.Fatalf("fee filter leaked: %v", tp)
		}
	}
}

func TestListingsRelaxedUnion(t *testing.T) {
	w := BuildWorld()
	sys, err := core.NewDomain(core.Config{Fetcher: w.Server}, domain())
	if err != nil {
		t.Fatal(err)
	}
	// Borough-only: aptFinder (mandatory Bedrooms radio) is skipped; only
	// owner listings answer.
	rel, err := sys.Logical.Populate("listings", map[string]relation.Value{
		"Borough": relation.String("bronx")})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.CityRentals.ByBorough("bronx", -1))
	if rel.Len() != want {
		t.Errorf("listings = %d, want %d (owner side only)", rel.Len(), want)
	}
	// Borough+Bedrooms: both sides answer.
	rel2, err := sys.Logical.Populate("listings", map[string]relation.Value{
		"Borough": relation.String("bronx"), "Bedrooms": relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	want2 := len(w.CityRentals.ByBorough("bronx", 1)) + len(w.AptFinder.ByBorough("bronx", 1))
	if rel2.Len() != want2 {
		t.Errorf("listings = %d, want %d (both sides)", rel2.Len(), want2)
	}
}
