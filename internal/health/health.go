// Package health tracks per-site health for the self-healing subsystem:
// it turns query-time drift reports into a quarantine decision and drives
// the background repair worker that re-maps a drifted site.
//
// Each site moves through a small state machine:
//
//	healthy → suspect → quarantined ⇄ repairing → healthy
//
// A drift report moves a healthy site to suspect; once the confirmation
// threshold is reached the site is quarantined (one bad page never
// triggers a remap) and a single background repair worker is launched for
// it. The worker retries with exponential backoff up to a bounded number
// of attempts; on success the site returns to healthy, on exhaustion it
// stays quarantined with no further workers — a truly dead site cannot
// remap-loop. While a site is quarantined or repairing, further drift
// reports are no-ops, which is what makes the repair single-flighted.
package health

import (
	"sync"
	"time"

	"webbase/internal/trace"
)

// State is a site's position in the health state machine.
type State uint8

// Health states.
const (
	// Healthy: no unconfirmed drift evidence.
	Healthy State = iota
	// Suspect: drift reported, below the confirmation threshold.
	Suspect
	// Quarantined: drift confirmed; queries short-circuit the site. Also
	// the terminal state once repair attempts are exhausted.
	Quarantined
	// Repairing: a background worker is currently rebuilding the site's
	// navigation maps. Queries still treat the site as quarantined.
	Repairing
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Repairing:
		return "repairing"
	default:
		return "healthy"
	}
}

// Config tunes a Tracker.
type Config struct {
	// Threshold is how many drift reports confirm a redesign and
	// quarantine the site. <= 0 means the default of 2.
	Threshold int
	// MaxAttempts bounds the repair attempts per quarantine episode.
	// <= 0 means the default of 3.
	MaxAttempts int
	// Backoff is the wait before the second repair attempt; it doubles
	// per attempt. <= 0 means the default of 100ms.
	Backoff time.Duration
	// Repair rebuilds the site's navigation maps and hot-swaps them in.
	// nil disables background repair: sites still quarantine, but stay
	// quarantined until an operator intervenes.
	Repair func(host string) error
	// Sleep waits between repair attempts; tests inject an instant sleep.
	// nil uses time.Sleep.
	Sleep func(d time.Duration)
	// Clock supplies the current time for state timestamps (injectable
	// for deterministic tests); nil uses time.Now.
	Clock func() time.Time
	// Metrics, when non-nil, receives remaps_started_total,
	// remaps_succeeded_total, recovery_probes_total and the
	// sites_quarantined gauge.
	Metrics *trace.Registry
	// RecoveryBackoff, when > 0, enables slow background recovery probes
	// for repair-exhausted quarantined sites: after this initial wait
	// (doubling per failed probe, capped at 64×) the site gets one more
	// repair attempt, so a permanently-quarantined-then-fixed site
	// eventually heals without a restart. 0 keeps exhaustion terminal
	// (the historical behavior).
	RecoveryBackoff time.Duration
	// OnChange, when non-nil, is called (outside the tracker's lock) after
	// every state transition — the durable store's persist hook. It must
	// be safe for concurrent calls and must not report drift.
	OnChange func()
}

// Tracker is the per-site health state machine. A nil *Tracker is a valid
// no-op tracker (sites are always healthy), mirroring the nil admission
// gate, so callers need no guards when self-healing is not configured.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	sites map[string]*site
	wg    sync.WaitGroup

	stop      chan struct{} // closed by Close; ends recovery probe loops
	closeOnce sync.Once
}

type site struct {
	state      State
	drifts     int  // drift reports since last healthy
	attempts   int  // repair attempts spent in the current quarantine
	exhausted  bool // attempts bound hit: no more workers for this site
	recovering bool // a slow recovery probe loop is running for this site
	since      time.Time
}

// New returns a tracker with the given configuration.
func New(cfg Config) *Tracker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Tracker{cfg: cfg, sites: make(map[string]*site), stop: make(chan struct{})}
}

// changed fires the persist hook; call without holding t.mu.
func (t *Tracker) changed() {
	if t.cfg.OnChange != nil {
		t.cfg.OnChange()
	}
}

// stopped reports whether Close has been called.
func (t *Tracker) stopped() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// Close ends the tracker's slow recovery probe loops. Repair workers
// launched by quarantine finish their bounded attempts on their own
// (Wait); recovery loops are unbounded by design, so shutdown must cut
// them. Safe to call more than once; a nil tracker is a no-op.
func (t *Tracker) Close() {
	if t == nil {
		return
	}
	t.closeOnce.Do(func() { close(t.stop) })
}

// ReportDrift records one query-time drift observation against the host
// and returns the host's resulting state. Crossing the confirmation
// threshold quarantines the site and launches its (single) background
// repair worker.
func (t *Tracker) ReportDrift(host string) State {
	if t == nil || host == "" {
		return Healthy
	}
	t.mu.Lock()
	s := t.sites[host]
	if s == nil {
		s = &site{}
		t.sites[host] = s
	}
	switch s.state {
	case Quarantined, Repairing:
		// Already confirmed; the worker (or its exhaustion) owns the site.
		st := s.state
		t.mu.Unlock()
		return st
	case Healthy:
		s.state = Suspect
		s.since = t.cfg.Clock()
	}
	s.drifts++
	if s.drifts < t.cfg.Threshold {
		t.mu.Unlock()
		t.changed()
		return Suspect
	}
	s.state = Quarantined
	s.since = t.cfg.Clock()
	launch := t.cfg.Repair != nil && !s.exhausted
	if launch {
		t.wg.Add(1)
	}
	t.gaugeLocked()
	t.mu.Unlock()
	t.changed()
	if launch {
		go t.repairLoop(host)
	}
	return Quarantined
}

// repairLoop is the single-flight background worker for one quarantined
// site: bounded attempts with exponential backoff, then either a return
// to healthy or terminal exhaustion.
func (t *Tracker) repairLoop(host string) {
	defer t.wg.Done()
	for {
		t.mu.Lock()
		s := t.sites[host]
		if s.attempts >= t.cfg.MaxAttempts {
			s.exhausted = true
			s.state = Quarantined
			t.gaugeLocked()
			t.launchRecoveryLocked(host, s)
			t.mu.Unlock()
			t.changed()
			return
		}
		s.attempts++
		attempt := s.attempts
		s.state = Repairing
		t.mu.Unlock()
		t.changed()

		counter(t.cfg.Metrics, "remaps_started_total")
		err := t.cfg.Repair(host)

		t.mu.Lock()
		if err == nil {
			s.state = Healthy
			s.drifts = 0
			s.attempts = 0
			s.exhausted = false
			s.since = t.cfg.Clock()
			t.gaugeLocked()
			t.mu.Unlock()
			counter(t.cfg.Metrics, "remaps_succeeded_total")
			t.changed()
			return
		}
		s.state = Quarantined
		exhausted := attempt >= t.cfg.MaxAttempts
		if exhausted {
			s.exhausted = true
			t.launchRecoveryLocked(host, s)
		}
		t.gaugeLocked()
		t.mu.Unlock()
		t.changed()
		if exhausted {
			return
		}
		t.cfg.Sleep(t.cfg.Backoff << (attempt - 1))
	}
}

// launchRecoveryLocked starts the slow recovery probe loop for an
// exhausted site, if enabled and not already running. t.mu must be held.
// Recovery loops are deliberately not part of t.wg: they run for as long
// as the site stays dead, and Wait — the tests' quiescence point — must
// not block on them. Close ends them.
func (t *Tracker) launchRecoveryLocked(host string, s *site) {
	if t.cfg.RecoveryBackoff <= 0 || t.cfg.Repair == nil || s.recovering {
		return
	}
	s.recovering = true
	go t.recoverLoop(host)
}

// recoverLoop is the satellite to repair exhaustion: a clock-driven
// background re-probe with long, doubling backoff. A probe is one more
// repair attempt — success returns the site to healthy exactly as a
// normal repair would; failure re-quarantines and waits longer. Probes do
// not count against MaxAttempts (the exhaustion bound is about the fast
// remap loop, not about eventual recovery).
func (t *Tracker) recoverLoop(host string) {
	backoff := t.cfg.RecoveryBackoff
	maxBackoff := t.cfg.RecoveryBackoff << 6
	for {
		t.cfg.Sleep(backoff)
		if t.stopped() {
			return
		}
		t.mu.Lock()
		s := t.sites[host]
		if s == nil || s.state != Quarantined || !s.exhausted {
			// Healed by other means (operator restart path, a successful
			// swap); this loop's job is done.
			if s != nil {
				s.recovering = false
			}
			t.mu.Unlock()
			return
		}
		s.state = Repairing
		t.mu.Unlock()
		t.changed()

		counter(t.cfg.Metrics, "recovery_probes_total")
		err := t.cfg.Repair(host)

		t.mu.Lock()
		if err == nil {
			s.state = Healthy
			s.drifts = 0
			s.attempts = 0
			s.exhausted = false
			s.recovering = false
			s.since = t.cfg.Clock()
			t.gaugeLocked()
			t.mu.Unlock()
			counter(t.cfg.Metrics, "remaps_succeeded_total")
			t.changed()
			return
		}
		s.state = Quarantined
		t.gaugeLocked()
		t.mu.Unlock()
		t.changed()
		if t.stopped() {
			return
		}
		if backoff < maxBackoff {
			backoff <<= 1
		}
	}
}

// SiteState reports the host's current state.
func (t *Tracker) SiteState(host string) State {
	if t == nil {
		return Healthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.sites[host]; s != nil {
		return s.state
	}
	return Healthy
}

// Attempts reports how many repair attempts the host's current quarantine
// has spent — the observable the remap-loop bound is asserted on.
func (t *Tracker) Attempts(host string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.sites[host]; s != nil {
		return s.attempts
	}
	return 0
}

// Quarantined returns the set of hosts queries must short-circuit:
// everything confirmed drifted (quarantined or mid-repair). Callers
// snapshot this once per query so mid-query transitions cannot make
// outcomes schedule-dependent. Returns nil when the set is empty or the
// tracker is nil.
func (t *Tracker) Quarantined() map[string]bool {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out map[string]bool
	for host, s := range t.sites {
		if s.state == Quarantined || s.state == Repairing {
			if out == nil {
				out = make(map[string]bool)
			}
			out[host] = true
		}
	}
	return out
}

// SiteSnapshot is the durable view of one site's health: state plus the
// counters that make restart indistinguishable from a long pause — a
// restored process must not re-probe a known-dead host or hand a
// quarantined site a fresh MaxAttempts budget.
type SiteSnapshot struct {
	State     string    `json:"state"`
	Drifts    int       `json:"drifts"`
	Attempts  int       `json:"attempts"`
	Exhausted bool      `json:"exhausted"`
	Since     time.Time `json:"since"`
}

// Snapshot captures every site with health evidence. A site mid-repair is
// recorded as quarantined: the worker goroutine does not survive a
// restart, but the quarantine (and the attempts already spent) does.
func (t *Tracker) Snapshot() map[string]SiteSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]SiteSnapshot, len(t.sites))
	for host, s := range t.sites {
		st := s.state
		if st == Repairing {
			st = Quarantined
		}
		if st == Healthy && s.drifts == 0 {
			continue // cold default; nothing worth persisting
		}
		out[host] = SiteSnapshot{State: st.String(), Drifts: s.drifts,
			Attempts: s.attempts, Exhausted: s.exhausted, Since: s.since}
	}
	return out
}

// Restore pre-populates sites from a persisted snapshot, before the
// tracker takes drift reports. Restored quarantines resume where they
// left off: a site with repair budget remaining relaunches its worker
// (continuing, not restarting, the attempt count); an exhausted site
// stays terminal — except that when RecoveryBackoff is enabled it gets a
// slow probe loop, exactly as it would have in the original process.
// Unknown state strings are ignored (version-skew tolerance: fall back to
// cold, never guess).
func (t *Tracker) Restore(snap map[string]SiteSnapshot) {
	if t == nil {
		return
	}
	type relaunch struct{ host string }
	var workers []relaunch
	t.mu.Lock()
	for host, ss := range snap {
		if _, exists := t.sites[host]; exists {
			continue
		}
		s := &site{drifts: ss.Drifts, attempts: ss.Attempts,
			exhausted: ss.Exhausted, since: ss.Since}
		switch ss.State {
		case Suspect.String():
			s.state = Suspect
		case Quarantined.String(), Repairing.String():
			s.state = Quarantined
		case Healthy.String():
			s.state = Healthy
		default:
			continue
		}
		t.sites[host] = s
		if s.state != Quarantined {
			continue
		}
		if s.exhausted || s.attempts >= t.cfg.MaxAttempts {
			s.exhausted = true
			t.launchRecoveryLocked(host, s)
		} else if t.cfg.Repair != nil {
			t.wg.Add(1)
			workers = append(workers, relaunch{host})
		}
	}
	t.gaugeLocked()
	t.mu.Unlock()
	for _, w := range workers {
		go t.repairLoop(w.host)
	}
}

// Wait blocks until every launched repair worker has finished — the
// quiescent point deterministic tests sequence phases on.
func (t *Tracker) Wait() {
	if t == nil {
		return
	}
	t.wg.Wait()
}

// gaugeLocked publishes the sites_quarantined gauge; t.mu must be held.
func (t *Tracker) gaugeLocked() {
	if t.cfg.Metrics == nil {
		return
	}
	n := int64(0)
	for _, s := range t.sites {
		if s.state == Quarantined || s.state == Repairing {
			n++
		}
	}
	t.cfg.Metrics.Gauge("sites_quarantined").Set(n)
}

func counter(m *trace.Registry, name string) {
	if m != nil {
		m.Counter(name).Add(1)
	}
}
