// Package health tracks per-site health for the self-healing subsystem:
// it turns query-time drift reports into a quarantine decision and drives
// the background repair worker that re-maps a drifted site.
//
// Each site moves through a small state machine:
//
//	healthy → suspect → quarantined ⇄ repairing → healthy
//
// A drift report moves a healthy site to suspect; once the confirmation
// threshold is reached the site is quarantined (one bad page never
// triggers a remap) and a single background repair worker is launched for
// it. The worker retries with exponential backoff up to a bounded number
// of attempts; on success the site returns to healthy, on exhaustion it
// stays quarantined with no further workers — a truly dead site cannot
// remap-loop. While a site is quarantined or repairing, further drift
// reports are no-ops, which is what makes the repair single-flighted.
package health

import (
	"sync"
	"time"

	"webbase/internal/trace"
)

// State is a site's position in the health state machine.
type State uint8

// Health states.
const (
	// Healthy: no unconfirmed drift evidence.
	Healthy State = iota
	// Suspect: drift reported, below the confirmation threshold.
	Suspect
	// Quarantined: drift confirmed; queries short-circuit the site. Also
	// the terminal state once repair attempts are exhausted.
	Quarantined
	// Repairing: a background worker is currently rebuilding the site's
	// navigation maps. Queries still treat the site as quarantined.
	Repairing
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Repairing:
		return "repairing"
	default:
		return "healthy"
	}
}

// Config tunes a Tracker.
type Config struct {
	// Threshold is how many drift reports confirm a redesign and
	// quarantine the site. <= 0 means the default of 2.
	Threshold int
	// MaxAttempts bounds the repair attempts per quarantine episode.
	// <= 0 means the default of 3.
	MaxAttempts int
	// Backoff is the wait before the second repair attempt; it doubles
	// per attempt. <= 0 means the default of 100ms.
	Backoff time.Duration
	// Repair rebuilds the site's navigation maps and hot-swaps them in.
	// nil disables background repair: sites still quarantine, but stay
	// quarantined until an operator intervenes.
	Repair func(host string) error
	// Sleep waits between repair attempts; tests inject an instant sleep.
	// nil uses time.Sleep.
	Sleep func(d time.Duration)
	// Clock supplies the current time for state timestamps (injectable
	// for deterministic tests); nil uses time.Now.
	Clock func() time.Time
	// Metrics, when non-nil, receives remaps_started_total,
	// remaps_succeeded_total and the sites_quarantined gauge.
	Metrics *trace.Registry
}

// Tracker is the per-site health state machine. A nil *Tracker is a valid
// no-op tracker (sites are always healthy), mirroring the nil admission
// gate, so callers need no guards when self-healing is not configured.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	sites map[string]*site
	wg    sync.WaitGroup
}

type site struct {
	state     State
	drifts    int  // drift reports since last healthy
	attempts  int  // repair attempts spent in the current quarantine
	exhausted bool // attempts bound hit: no more workers for this site
	since     time.Time
}

// New returns a tracker with the given configuration.
func New(cfg Config) *Tracker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Tracker{cfg: cfg, sites: make(map[string]*site)}
}

// ReportDrift records one query-time drift observation against the host
// and returns the host's resulting state. Crossing the confirmation
// threshold quarantines the site and launches its (single) background
// repair worker.
func (t *Tracker) ReportDrift(host string) State {
	if t == nil || host == "" {
		return Healthy
	}
	t.mu.Lock()
	s := t.sites[host]
	if s == nil {
		s = &site{}
		t.sites[host] = s
	}
	switch s.state {
	case Quarantined, Repairing:
		// Already confirmed; the worker (or its exhaustion) owns the site.
		st := s.state
		t.mu.Unlock()
		return st
	case Healthy:
		s.state = Suspect
		s.since = t.cfg.Clock()
	}
	s.drifts++
	if s.drifts < t.cfg.Threshold {
		t.mu.Unlock()
		return Suspect
	}
	s.state = Quarantined
	s.since = t.cfg.Clock()
	launch := t.cfg.Repair != nil && !s.exhausted
	if launch {
		t.wg.Add(1)
	}
	t.gaugeLocked()
	t.mu.Unlock()
	if launch {
		go t.repairLoop(host)
	}
	return Quarantined
}

// repairLoop is the single-flight background worker for one quarantined
// site: bounded attempts with exponential backoff, then either a return
// to healthy or terminal exhaustion.
func (t *Tracker) repairLoop(host string) {
	defer t.wg.Done()
	for {
		t.mu.Lock()
		s := t.sites[host]
		if s.attempts >= t.cfg.MaxAttempts {
			s.exhausted = true
			s.state = Quarantined
			t.gaugeLocked()
			t.mu.Unlock()
			return
		}
		s.attempts++
		attempt := s.attempts
		s.state = Repairing
		t.mu.Unlock()

		counter(t.cfg.Metrics, "remaps_started_total")
		err := t.cfg.Repair(host)

		t.mu.Lock()
		if err == nil {
			s.state = Healthy
			s.drifts = 0
			s.attempts = 0
			s.exhausted = false
			s.since = t.cfg.Clock()
			t.gaugeLocked()
			t.mu.Unlock()
			counter(t.cfg.Metrics, "remaps_succeeded_total")
			return
		}
		s.state = Quarantined
		exhausted := attempt >= t.cfg.MaxAttempts
		if exhausted {
			s.exhausted = true
		}
		t.gaugeLocked()
		t.mu.Unlock()
		if exhausted {
			return
		}
		t.cfg.Sleep(t.cfg.Backoff << (attempt - 1))
	}
}

// SiteState reports the host's current state.
func (t *Tracker) SiteState(host string) State {
	if t == nil {
		return Healthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.sites[host]; s != nil {
		return s.state
	}
	return Healthy
}

// Attempts reports how many repair attempts the host's current quarantine
// has spent — the observable the remap-loop bound is asserted on.
func (t *Tracker) Attempts(host string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.sites[host]; s != nil {
		return s.attempts
	}
	return 0
}

// Quarantined returns the set of hosts queries must short-circuit:
// everything confirmed drifted (quarantined or mid-repair). Callers
// snapshot this once per query so mid-query transitions cannot make
// outcomes schedule-dependent. Returns nil when the set is empty or the
// tracker is nil.
func (t *Tracker) Quarantined() map[string]bool {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out map[string]bool
	for host, s := range t.sites {
		if s.state == Quarantined || s.state == Repairing {
			if out == nil {
				out = make(map[string]bool)
			}
			out[host] = true
		}
	}
	return out
}

// Wait blocks until every launched repair worker has finished — the
// quiescent point deterministic tests sequence phases on.
func (t *Tracker) Wait() {
	if t == nil {
		return
	}
	t.wg.Wait()
}

// gaugeLocked publishes the sites_quarantined gauge; t.mu must be held.
func (t *Tracker) gaugeLocked() {
	if t.cfg.Metrics == nil {
		return
	}
	n := int64(0)
	for _, s := range t.sites {
		if s.state == Quarantined || s.state == Repairing {
			n++
		}
	}
	t.cfg.Metrics.Gauge("sites_quarantined").Set(n)
}

func counter(m *trace.Registry, name string) {
	if m != nil {
		m.Counter(name).Add(1)
	}
}
