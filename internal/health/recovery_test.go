package health

import (
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/trace"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecoveryProbeHealsExhaustedSite: with RecoveryBackoff enabled,
// repair exhaustion is no longer terminal — a slow probe loop keeps
// re-trying, and when the site comes back it returns to healthy without a
// process restart. Probes do not touch remaps_started_total (the fast
// remap loop's budget) and are counted separately.
func TestRecoveryProbeHealsExhaustedSite(t *testing.T) {
	reg := trace.NewRegistry()
	var fixed atomic.Bool
	var repairCalls atomic.Int64
	tr := New(Config{
		Threshold:       1,
		MaxAttempts:     2,
		Backoff:         time.Nanosecond,
		RecoveryBackoff: time.Nanosecond,
		Sleep:           func(time.Duration) { time.Sleep(time.Microsecond) },
		Metrics:         reg,
		Repair: func(host string) error {
			repairCalls.Add(1)
			if fixed.Load() {
				return nil
			}
			return errors.New("still broken")
		},
	})
	defer tr.Close()

	tr.ReportDrift("flaky.test")
	tr.Wait() // fast repair loop exhausts its budget
	if got := reg.Snapshot().Counters["remaps_started_total"]; got != 2 {
		t.Fatalf("remaps_started_total = %d, want MaxAttempts = 2", got)
	}
	if tr.SiteState("flaky.test") != Quarantined || tr.Attempts("flaky.test") != 2 {
		t.Fatalf("after exhaustion: state=%v attempts=%d", tr.SiteState("flaky.test"), tr.Attempts("flaky.test"))
	}

	// The site comes back; the next probe heals it.
	fixed.Store(true)
	waitFor(t, "recovery probe to heal the site", func() bool {
		return tr.SiteState("flaky.test") == Healthy
	})
	snap := reg.Snapshot()
	if snap.Counters["recovery_probes_total"] == 0 {
		t.Error("no recovery probes counted")
	}
	if snap.Counters["remaps_started_total"] != 2 {
		t.Errorf("probes leaked into remaps_started_total: %d", snap.Counters["remaps_started_total"])
	}
	if snap.Counters["remaps_succeeded_total"] != 1 {
		t.Errorf("remaps_succeeded_total = %d, want 1", snap.Counters["remaps_succeeded_total"])
	}
	if tr.Attempts("flaky.test") != 0 {
		t.Errorf("healed site keeps attempts = %d", tr.Attempts("flaky.test"))
	}
	if q := tr.Quarantined(); q["flaky.test"] {
		t.Error("healed site still quarantined")
	}
	_ = repairCalls.Load()
}

// TestCloseStopsRecoveryProbes: recovery loops are unbounded by design,
// so Close must end them; a probe sleeping through shutdown wakes, sees
// the stop, and exits without one more repair attempt.
func TestCloseStopsRecoveryProbes(t *testing.T) {
	recoverySleeps := make(chan struct{})
	var repairCalls atomic.Int64
	reg := trace.NewRegistry()
	tr := New(Config{
		Threshold:       1,
		MaxAttempts:     2,
		Backoff:         time.Nanosecond,
		RecoveryBackoff: time.Hour,
		Sleep: func(d time.Duration) {
			if d >= time.Hour { // only the recovery loop sleeps this long
				<-recoverySleeps
			}
		},
		Metrics: reg,
		Repair: func(string) error {
			repairCalls.Add(1)
			return errors.New("down")
		},
	})
	tr.ReportDrift("dead.test")
	tr.Wait()
	if repairCalls.Load() != 2 {
		t.Fatalf("repair calls = %d, want 2", repairCalls.Load())
	}
	tr.Close()
	close(recoverySleeps) // wake the sleeping probe loop
	time.Sleep(10 * time.Millisecond)
	if repairCalls.Load() != 2 {
		t.Errorf("probe fired after Close: %d calls", repairCalls.Load())
	}
	if reg.Snapshot().Counters["recovery_probes_total"] != 0 {
		t.Error("recovery probe counted after Close")
	}
}

func TestHealthSnapshotRestore(t *testing.T) {
	// Build real evidence: one site repairs to exhaustion, one stays
	// suspect below the threshold.
	tr := New(Config{
		Threshold:   2,
		MaxAttempts: 2,
		Backoff:     time.Nanosecond,
		Sleep:       func(time.Duration) {},
		Repair:      func(string) error { return errors.New("down") },
	})
	tr.ReportDrift("bad.test")
	tr.ReportDrift("bad.test")
	tr.ReportDrift("iffy.test")
	tr.Wait()

	snap := tr.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]SiteSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if s := decoded["bad.test"]; s.State != "quarantined" || s.Attempts != 2 || !s.Exhausted {
		t.Fatalf("bad.test snapshot = %+v", s)
	}
	if s := decoded["iffy.test"]; s.State != "suspect" || s.Drifts != 1 {
		t.Fatalf("iffy.test snapshot = %+v", s)
	}

	// "Restart": a fresh tracker with a now-working Repair. The exhausted
	// quarantine must hold — no worker relaunch, no fresh attempt budget —
	// and the suspect site must carry its drift count.
	var repairCalls atomic.Int64
	tr2 := New(Config{
		Threshold:   2,
		MaxAttempts: 2,
		Backoff:     time.Nanosecond,
		Sleep:       func(time.Duration) {},
		Repair:      func(string) error { repairCalls.Add(1); return nil },
	})
	tr2.Restore(decoded)
	tr2.Wait()
	if repairCalls.Load() != 0 {
		t.Errorf("exhausted quarantine re-probed at boot: %d calls", repairCalls.Load())
	}
	if tr2.SiteState("bad.test") != Quarantined || tr2.Attempts("bad.test") != 2 {
		t.Errorf("bad.test after restore: state=%v attempts=%d",
			tr2.SiteState("bad.test"), tr2.Attempts("bad.test"))
	}
	if !tr2.Quarantined()["bad.test"] {
		t.Error("restored quarantine not visible to queries")
	}
	// One more drift confirms the carried-over suspect evidence.
	if st := tr2.ReportDrift("iffy.test"); st != Quarantined {
		t.Errorf("drift on restored suspect = %v, want quarantined (drifts carry over)", st)
	}
}

// TestRestoreResumesRepairBudget: a quarantine persisted mid-repair
// relaunches its worker with the attempts already spent — restart does
// not hand the site a fresh MaxAttempts.
func TestRestoreResumesRepairBudget(t *testing.T) {
	var repairCalls atomic.Int64
	tr := New(Config{
		Threshold:   1,
		MaxAttempts: 3,
		Backoff:     time.Nanosecond,
		Sleep:       func(time.Duration) {},
		Repair:      func(string) error { repairCalls.Add(1); return errors.New("down") },
	})
	tr.Restore(map[string]SiteSnapshot{
		"mid.test":   {State: "repairing", Attempts: 1}, // mid-repair persists as quarantined
		"weird.test": {State: "glitched"},               // version skew: ignored, cold
	})
	tr.Wait()
	if repairCalls.Load() != 2 {
		t.Errorf("resumed worker made %d attempts, want 2 (3 max - 1 spent)", repairCalls.Load())
	}
	if tr.SiteState("mid.test") != Quarantined || tr.Attempts("mid.test") != 3 {
		t.Errorf("mid.test: state=%v attempts=%d", tr.SiteState("mid.test"), tr.Attempts("mid.test"))
	}
	if tr.SiteState("weird.test") != Healthy {
		t.Error("unknown snapshot state was not ignored")
	}
}

// TestRestoreSkipsLiveSites: restore never clobbers a site that already
// accumulated live evidence.
func TestRestoreSkipsLiveSites(t *testing.T) {
	tr := New(Config{Threshold: 3})
	tr.ReportDrift("live.test")
	tr.Restore(map[string]SiteSnapshot{
		"live.test": {State: "quarantined", Attempts: 2, Exhausted: true},
	})
	if tr.SiteState("live.test") != Suspect {
		t.Fatalf("restore clobbered live site: %v", tr.SiteState("live.test"))
	}
}

// TestRestoredExhaustionGetsRecoveryProbe: an exhausted quarantine
// restored into a tracker with RecoveryBackoff enabled gets its slow
// probe loop, exactly as in the original process.
func TestRestoredExhaustionGetsRecoveryProbe(t *testing.T) {
	tr := New(Config{
		Threshold:       1,
		MaxAttempts:     2,
		RecoveryBackoff: time.Nanosecond,
		Sleep:           func(time.Duration) { time.Sleep(time.Microsecond) },
		Repair:          func(string) error { return nil },
	})
	defer tr.Close()
	tr.Restore(map[string]SiteSnapshot{
		"dead.test": {State: "quarantined", Attempts: 2, Exhausted: true},
	})
	waitFor(t, "restored exhausted site to heal via recovery probe", func() bool {
		return tr.SiteState("dead.test") == Healthy
	})
}
