package health

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/trace"
)

// instant returns a Sleep that records requested waits without sleeping.
func instant(got *[]time.Duration, mu *sync.Mutex) func(time.Duration) {
	return func(d time.Duration) {
		mu.Lock()
		*got = append(*got, d)
		mu.Unlock()
	}
}

// TestThresholdConfirmsDrift: one drift report is suspicion, not a
// quarantine; the configured threshold confirms and launches the repair.
func TestThresholdConfirmsDrift(t *testing.T) {
	var repairs atomic.Int64
	tr := New(Config{
		Threshold: 3,
		Repair:    func(string) error { repairs.Add(1); return errors.New("keep quarantined") },
		Sleep:     func(time.Duration) {},
	})
	if got := tr.ReportDrift("a.example"); got != Suspect {
		t.Fatalf("after 1 report: %v, want suspect", got)
	}
	if got := tr.ReportDrift("a.example"); got != Suspect {
		t.Fatalf("after 2 reports: %v, want suspect", got)
	}
	if tr.Quarantined() != nil {
		t.Fatal("suspect site already quarantined")
	}
	if got := tr.ReportDrift("a.example"); got != Quarantined {
		t.Fatalf("after 3 reports: %v, want quarantined", got)
	}
	tr.Wait()
	if repairs.Load() == 0 {
		t.Fatal("threshold crossed but no repair ran")
	}
}

// TestRepairSuccessRestoresHealthy: a successful repair returns the site
// to healthy, resets its counters, and counts the remap metrics.
func TestRepairSuccessRestoresHealthy(t *testing.T) {
	metrics := trace.NewRegistry()
	tr := New(Config{
		Threshold: 2,
		Repair:    func(string) error { return nil },
		Sleep:     func(time.Duration) {},
		Metrics:   metrics,
	})
	tr.ReportDrift("a.example")
	tr.ReportDrift("a.example")
	tr.Wait()
	if got := tr.SiteState("a.example"); got != Healthy {
		t.Fatalf("state after successful repair: %v, want healthy", got)
	}
	if tr.Attempts("a.example") != 0 {
		t.Error("attempts not reset after success")
	}
	if tr.Quarantined() != nil {
		t.Error("healthy site still in the quarantine set")
	}
	snap := metrics.Snapshot()
	if got := snap.Counters["remaps_started_total"]; got != 1 {
		t.Errorf("remaps_started_total = %d, want 1", got)
	}
	if got := snap.Counters["remaps_succeeded_total"]; got != 1 {
		t.Errorf("remaps_succeeded_total = %d, want 1", got)
	}
	if got := snap.Gauges["sites_quarantined"]; got != 0 {
		t.Errorf("sites_quarantined = %d, want 0", got)
	}
}

// TestRepairAttemptsBounded is the remap-loop bound: a site whose repair
// never succeeds gets exactly MaxAttempts attempts with exponentially
// spaced backoff, stays quarantined, and — crucially — further drift
// reports launch no new workers.
func TestRepairAttemptsBounded(t *testing.T) {
	var (
		mu      sync.Mutex
		waits   []time.Duration
		repairs atomic.Int64
	)
	metrics := trace.NewRegistry()
	tr := New(Config{
		Threshold:   2,
		MaxAttempts: 3,
		Backoff:     10 * time.Millisecond,
		Repair:      func(string) error { repairs.Add(1); return errors.New("site is gone") },
		Sleep:       instant(&waits, &mu),
		Metrics:     metrics,
	})
	tr.ReportDrift("dead.example")
	tr.ReportDrift("dead.example")
	tr.Wait()
	if got := repairs.Load(); got != 3 {
		t.Fatalf("repair ran %d times, want exactly MaxAttempts=3", got)
	}
	if got := tr.SiteState("dead.example"); got != Quarantined {
		t.Fatalf("state after exhaustion: %v, want quarantined", got)
	}
	mu.Lock()
	wantWaits := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(waits) != len(wantWaits) {
		t.Fatalf("slept %d times (%v), want %v", len(waits), waits, wantWaits)
	}
	for i := range waits {
		if waits[i] != wantWaits[i] {
			t.Errorf("backoff %d = %v, want %v", i, waits[i], wantWaits[i])
		}
	}
	mu.Unlock()
	// Exhausted: more drift reports must not restart the remap loop.
	tr.ReportDrift("dead.example")
	tr.ReportDrift("dead.example")
	tr.Wait()
	if got := repairs.Load(); got != 3 {
		t.Fatalf("exhausted site re-launched repair: %d runs", got)
	}
	if got := metrics.Snapshot().Counters["remaps_started_total"]; got != 3 {
		t.Errorf("remaps_started_total = %d, want 3", got)
	}
	if got := metrics.Snapshot().Gauges["sites_quarantined"]; got != 1 {
		t.Errorf("sites_quarantined = %d, want 1", got)
	}
}

// TestRepairSingleFlight: drift reports arriving while a repair is running
// do not launch a second worker for the same site.
func TestRepairSingleFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var repairs atomic.Int64
	tr := New(Config{
		Threshold: 1,
		Repair: func(string) error {
			repairs.Add(1)
			close(started)
			<-release
			return nil
		},
		Sleep: func(time.Duration) {},
	})
	tr.ReportDrift("a.example")
	<-started
	if got := tr.SiteState("a.example"); got != Repairing {
		t.Fatalf("state mid-repair: %v, want repairing", got)
	}
	for i := 0; i < 5; i++ {
		if got := tr.ReportDrift("a.example"); got != Repairing {
			t.Fatalf("drift during repair: %v, want repairing no-op", got)
		}
	}
	if !tr.Quarantined()["a.example"] {
		t.Error("repairing site missing from the quarantine snapshot")
	}
	close(release)
	tr.Wait()
	if got := repairs.Load(); got != 1 {
		t.Fatalf("repair ran %d times, want 1 (single flight)", got)
	}
}

// TestPerSiteIsolation: one site's quarantine does not leak onto another.
func TestPerSiteIsolation(t *testing.T) {
	tr := New(Config{
		Threshold: 2,
		Repair:    func(string) error { return errors.New("stay down") },
		Sleep:     func(time.Duration) {},
		Backoff:   time.Nanosecond,
	})
	tr.ReportDrift("a.example")
	tr.ReportDrift("a.example")
	tr.ReportDrift("b.example")
	tr.Wait()
	if got := tr.SiteState("b.example"); got != Suspect {
		t.Errorf("b state: %v, want suspect", got)
	}
	q := tr.Quarantined()
	if !q["a.example"] || q["b.example"] {
		t.Errorf("quarantine set %v, want a.example only", q)
	}
}

// TestNilTrackerIsNoOp: a nil tracker (self-healing disabled) accepts
// every call and reports everything healthy.
func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	if got := tr.ReportDrift("a.example"); got != Healthy {
		t.Errorf("nil ReportDrift = %v", got)
	}
	if got := tr.SiteState("a.example"); got != Healthy {
		t.Errorf("nil SiteState = %v", got)
	}
	if tr.Quarantined() != nil || tr.Attempts("a.example") != 0 {
		t.Error("nil tracker not empty")
	}
	tr.Wait() // must not panic
}

// TestStateStrings pins the rendered state names (used in logs/metrics).
func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Healthy: "healthy", Suspect: "suspect",
		Quarantined: "quarantined", Repairing: "repairing",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
