package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"webbase/client"
)

// Connection-chaos mode: the resilience half of the load harness. Where
// Run measures a healthy service, RunChaos attacks the transport — a
// chaos RoundTripper randomly severs in-flight streams, sometimes on an
// event boundary, sometimes mid-line — and drives every query through
// the resumable client, which reconnects and resumes. The harness then
// audits the one property resumability promises: each stream's delivered
// tuple multiset is exactly the uninterrupted answer — zero duplicates,
// zero missing — no matter how many times its connection died.

// ChaosLoad configures one chaos run.
type ChaosLoad struct {
	// Clients is the number of concurrent chaos clients; PerClient the
	// streams each runs sequentially.
	Clients   int `json:"clients"`
	PerClient int `json:"per_client"`
	// Query is the streamed query text.
	Query string `json:"-"`
	// APIKey authenticates the streams (empty on an open server).
	APIKey string `json:"-"`
	// KillProb is the probability a given connection attempt gets its
	// stream severed (0 defaults to 0.7). Severed offsets grow over the
	// run, so every stream makes progress and finishes.
	KillProb float64 `json:"kill_prob"`
	// Seed drives the kill schedule deterministically.
	Seed int64 `json:"seed"`
}

// ChaosReport aggregates a chaos run. A run proves resumability exactly
// when DuplicateTuples == MissingTuples == Failed == 0 while Kills > 0.
type ChaosReport struct {
	Load            ChaosLoad `json:"load"`
	Streams         int       `json:"streams"`
	Completed       int       `json:"completed"`
	Failed          int       `json:"failed"`
	Kills           int64     `json:"kills"`            // connections severed by the chaos transport
	Resumes         int       `json:"resumes"`          // reconnect attempts the client spent
	DuplicateTuples int       `json:"duplicate_tuples"` // tuples delivered more than once within a stream
	MissingTuples   int       `json:"missing_tuples"`   // expected tuples a stream never delivered
	P50Ms           float64   `json:"p50_ms"`           // completed-stream latency, kills and backoff included
	P99Ms           float64   `json:"p99_ms"`
}

// RunChaos executes load.Clients*load.PerClient streams against baseURL
// through the resumable client over a connection-killing transport, and
// audits every completed stream's tuples against the uninterrupted
// answer fetched once up front.
func RunChaos(baseURL string, load ChaosLoad) (*ChaosReport, error) {
	if load.Clients <= 0 || load.PerClient <= 0 || load.Query == "" {
		return nil, fmt.Errorf("loadgen: bad chaos load %+v", load)
	}
	if load.KillProb == 0 {
		load.KillProb = 0.7
	}
	ctx := context.Background()

	// Ground truth: one uninterrupted stream over a plain transport.
	calm, err := client.New(client.Config{BaseURL: baseURL, APIKey: load.APIKey})
	if err != nil {
		return nil, err
	}
	want, err := collectTuples(ctx, calm, load.Query)
	if err != nil {
		return nil, fmt.Errorf("loadgen: ground-truth stream: %w", err)
	}

	chaos := &chaosTransport{
		base: &http.Transport{MaxIdleConnsPerHost: 256},
		rng:  rand.New(rand.NewSource(load.Seed)),
		prob: load.KillProb,
	}
	defer chaos.base.(*http.Transport).CloseIdleConnections()
	victim, err := client.New(client.Config{
		BaseURL:     baseURL,
		APIKey:      load.APIKey,
		HTTPClient:  &http.Client{Transport: chaos},
		MaxAttempts: 100, // the chaos schedule guarantees progress, not luck
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	rep := &ChaosReport{Load: load, Streams: load.Clients * load.PerClient}
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	for i := 0; i < load.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < load.PerClient; n++ {
				start := time.Now()
				got, resumes, err := collectChaos(ctx, victim, load.Query)
				elapsed := time.Since(start)
				mu.Lock()
				rep.Resumes += resumes
				if err != nil {
					rep.Failed++
				} else {
					rep.Completed++
					latencies = append(latencies, elapsed)
					dup, miss := diffMultiset(got, want)
					rep.DuplicateTuples += dup
					rep.MissingTuples += miss
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Kills = chaos.kills.Load()
	rep.P50Ms = percentileMs(latencies, 50)
	rep.P99Ms = percentileMs(latencies, 99)
	return rep, nil
}

// collectTuples drains one stream into a tuple multiset.
func collectTuples(ctx context.Context, c *client.Client, query string) (map[string]int, error) {
	got, _, err := collectChaos(ctx, c, query)
	return got, err
}

func collectChaos(ctx context.Context, c *client.Client, query string) (map[string]int, int, error) {
	st, err := c.Query(ctx, query)
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	got := map[string]int{}
	for st.Next() {
		for _, t := range st.Delivery().Tuples {
			got[fmt.Sprint(t)]++
		}
	}
	return got, st.Attempts() - 1, st.Err()
}

// diffMultiset reports how many tuple deliveries exceeded (dup) or fell
// short of (miss) the expected multiset.
func diffMultiset(got, want map[string]int) (dup, miss int) {
	for k, w := range want {
		if g := got[k]; g < w {
			miss += w - g
		}
	}
	for k, g := range got {
		w := want[k]
		if g > w {
			dup += g - w
		}
	}
	return dup, miss
}

// chaosTransport severs /query streams. Each kill truncates the response
// after a byte allowance drawn around a floor that grows with every
// response served, so retried attempts always get further than their
// predecessors and every stream eventually completes — deterministic
// progress, not probabilistic hope. About half the kills cut mid-line to
// exercise the client's truncated-event path.
type chaosTransport struct {
	base  http.RoundTripper
	mu    sync.Mutex
	rng   *rand.Rand
	prob  float64
	seq   atomic.Int64
	kills atomic.Int64
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil || req.URL.Path != "/query" || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	n := t.seq.Add(1)
	t.mu.Lock()
	kill := t.rng.Float64() < t.prob
	allowance := int64(192) + n*96 + t.rng.Int63n(128)
	midLine := t.rng.Intn(2) == 0
	t.mu.Unlock()
	if !kill {
		return resp, nil
	}
	t.kills.Add(1)
	resp.Body = &killedBody{rc: resp.Body, remaining: allowance, midLine: midLine}
	return resp, nil
}

// killedBody passes remaining bytes through, then fails the read as a
// dropped connection would. midLine backs off a few bytes short of the
// cut so the last event line arrives truncated.
type killedBody struct {
	rc        io.ReadCloser
	remaining int64
	midLine   bool
}

func (k *killedBody) Read(p []byte) (int, error) {
	if k.remaining <= 0 {
		return 0, fmt.Errorf("loadgen: connection severed by chaos transport")
	}
	if int64(len(p)) > k.remaining {
		p = p[:k.remaining]
	}
	n, err := k.rc.Read(p)
	k.remaining -= int64(n)
	if k.remaining <= 0 && k.midLine && n > 3 {
		// Withhold the tail of the final chunk: the client sees a line
		// cut off mid-event.
		n -= 3
	}
	return n, err
}

func (k *killedBody) Close() error { return k.rc.Close() }
