package loadgen

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"webbase/internal/core"
	"webbase/internal/server"
	"webbase/internal/sites"
)

const loadQuery = "SELECT Make, Model, Year, Price WHERE Make = 'jaguar' AND Condition = 'good' AND Price < BBPrice"

// TestServerLoad is the load-harness acceptance run: 64 concurrent
// clients split across an interactive and a batch tenant hammer one
// admission-protected server. The fixed-window quotas make shed
// accounting exact — alice (quota 10) sheds exactly 54 of her 64
// requests, bob (quota 6) sheds exactly 58 — and the interactive
// tenant's served p99 must sit inside the committed overload envelope's
// worst case: the protection stack keeps the served tail flat no matter
// how wide the burst is. The run's numbers are emitted as
// BENCH_server.json.
func TestServerLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness")
	}
	wb, err := core.New(core.Config{
		Fetcher: sites.BuildWorld().Server,
		Workers: runtime.GOMAXPROCS(0),
		// The admission gate bounds executing queries; the deep queue
		// means nothing sheds at this layer (quota sheds stay exact) while
		// freed slots go to interactive waiters first, shielding alice's
		// tail from bob's batch load.
		MaxInFlight: 2,
		QueueDepth:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		System: wb,
		Tenants: []server.Tenant{
			{Key: "alicekey", Name: "alice", Class: core.ClassInteractive, Quota: 10, Window: time.Hour},
			{Key: "bobkey", Name: "bob", Class: core.ClassBatch, Quota: 6, Window: time.Hour},
			{Key: "warmkey", Name: "warmup", Class: core.ClassBatch}, // no quota; pre-run cache warming only
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One warmup query populates the page cache, so the measured run
	// exercises HTTP + streaming + admission rather than 64 simultaneous
	// cold crawls of the simulated web — matching the envelope's
	// steady-state framing.
	if _, err := Run(ts.URL, []TenantLoad{{Name: "warmup", Key: "warmkey", Clients: 1, PerClient: 1}}, loadQuery); err != nil {
		t.Fatal(err)
	}

	loads := []TenantLoad{
		{Name: "alice", Key: "alicekey", Clients: 32, PerClient: 2},
		{Name: "bob", Key: "bobkey", Clients: 32, PerClient: 2},
	}
	rep, err := Run(ts.URL, loads, loadQuery)
	if err != nil {
		t.Fatal(err)
	}

	// Exact per-tenant shed accounting: requests beyond the window quota
	// shed, nothing fails.
	wantOutcomes := []struct {
		name         string
		served, shed int
	}{
		{"alice", 10, 54},
		{"bob", 6, 58},
	}
	for _, w := range wantOutcomes {
		tr := rep.ByTenant(w.name)
		if tr == nil {
			t.Fatalf("no report for tenant %s", w.name)
		}
		if tr.Requests != 64 || tr.Served != w.served || tr.Shed != w.shed || tr.Failed != 0 {
			t.Errorf("%s: requests=%d served=%d shed=%d failed=%d, want 64/%d/%d/0",
				w.name, tr.Requests, tr.Served, tr.Shed, tr.Failed, w.served, w.shed)
		}
		if tr.Served > 0 && (tr.P50Ms <= 0 || tr.P99Ms < tr.P50Ms) {
			t.Errorf("%s: implausible latency percentiles p50=%.1fms p99=%.1fms", w.name, tr.P50Ms, tr.P99Ms)
		}
	}

	// The server's own accounting must agree with the client's view.
	metrics := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`counter server_queries_served_total{tenant="alice"} 10`,
		`counter server_queries_shed_total{tenant="alice"} 54`,
		`counter server_queries_served_total{tenant="bob"} 6`,
		`counter server_queries_shed_total{tenant="bob"} 58`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The interactive tenant's tail must stay inside the overload
	// envelope's worst case — the committed unprotected p99, measured
	// with the cache disabled and a straggler-injecting web. This run is
	// strictly gentler (warm cache, healthy web), so clearing the bound
	// says the HTTP+streaming layer adds no pathological overhead. Race
	// instrumentation slows everything severalfold, so that build gets a
	// proportionally wider bound.
	bound := envelopeP99(t)
	if raceEnabled {
		bound *= 4
	}
	alice := rep.ByTenant("alice")
	if alice.P99Ms >= bound {
		t.Errorf("interactive p99 = %.1fms, want < %.1fms (BENCH_overload.json unprotected envelope)", alice.P99Ms, bound)
	}

	writeBenchReport(t, rep, bound)
}

func fetchMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// envelopeP99 reads the committed overload benchmark's unprotected p99 —
// the loosest latency this system has ever called acceptable.
func envelopeP99(t *testing.T) float64 {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_overload.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results struct {
			Unprotected struct {
				P99Ms float64 `json:"p99_ms"`
			} `json:"unprotected"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results.Unprotected.P99Ms <= 0 {
		t.Fatal("BENCH_overload.json carries no unprotected p99")
	}
	return doc.Results.Unprotected.P99Ms
}

// writeBenchReport emits the run as BENCH_server.json in the repo root,
// alongside the other committed benchmark artifacts.
func writeBenchReport(t *testing.T, rep *Report, bound float64) {
	t.Helper()
	doc := map[string]any{
		"benchmark": "TestServerLoad",
		"query":     loadQuery,
		"scenario": "64 concurrent clients split across two tenants (alice: interactive, quota 10; " +
			"bob: batch, quota 6; 1h windows) against one admission-protected server (max-inflight 2, " +
			"queue 64) over HTTP; each client posts 2 queries and drains the full NDJSON stream. " +
			"Sheds are quota rejections; the deep admission queue sheds nothing, it only gives freed " +
			"slots to interactive waiters first.",
		"envelope": map[string]any{
			"source":                   "BENCH_overload.json results.unprotected.p99_ms",
			"interactive_p99_bound_ms": bound,
		},
		"results": rep,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_server.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
