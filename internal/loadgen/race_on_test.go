//go:build race

package loadgen

// raceEnabled widens wall-clock bounds when the race detector's
// instrumentation (typically 2-10x slowdown) is in the measurement.
const raceEnabled = true
