// Package loadgen drives concurrent query load against a running
// webbase query server and reports per-tenant outcomes: how many
// requests were served, shed, or failed, and the served-latency
// distribution. It is the measurement half of the networked service —
// the same role the in-process bench harness plays for the core layer,
// but exercised end to end through HTTP, streaming, and tenant
// admission.
package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TenantLoad describes one tenant's share of the load: Clients
// concurrent clients, each posting PerClient queries sequentially with
// the tenant's API key.
type TenantLoad struct {
	Name      string `json:"name"`
	Key       string `json:"-"`
	Clients   int    `json:"clients"`
	PerClient int    `json:"per_client"`
}

// TenantReport is one tenant's aggregated outcome. Latency percentiles
// are over served (HTTP 200) requests only, measured from POST to the
// last byte of the stream.
type TenantReport struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Served   int     `json:"served"`
	Shed     int     `json:"shed"`   // HTTP 429: tenant quota or admission gate
	Failed   int     `json:"failed"` // any other non-200
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Report is a full run's outcome, one entry per tenant in input order.
type Report struct {
	Tenants []TenantReport `json:"tenants"`
}

// ByTenant returns the named tenant's report, or nil.
func (r *Report) ByTenant(name string) *TenantReport {
	for i := range r.Tenants {
		if r.Tenants[i].Name == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// tally accumulates one tenant's outcomes under a lock shared by its
// clients.
type tally struct {
	mu        sync.Mutex
	served    int
	shed      int
	failed    int
	latencies []time.Duration
}

// Run fires every tenant's clients concurrently at baseURL and blocks
// until all requests complete. Each request POSTs query to /query with
// the tenant's key and drains the whole response stream, so measured
// latency covers the full answer, not just the first byte.
func Run(baseURL string, loads []TenantLoad, query string) (*Report, error) {
	for _, l := range loads {
		if l.Name == "" || l.Clients <= 0 || l.PerClient <= 0 {
			return nil, fmt.Errorf("loadgen: bad tenant load %+v", l)
		}
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	defer client.CloseIdleConnections()

	tallies := make([]*tally, len(loads))
	var wg sync.WaitGroup
	for i, l := range loads {
		tallies[i] = &tally{}
		for c := 0; c < l.Clients; c++ {
			wg.Add(1)
			go func(l TenantLoad, ty *tally) {
				defer wg.Done()
				for n := 0; n < l.PerClient; n++ {
					shoot(client, baseURL, l.Key, query, ty)
				}
			}(l, tallies[i])
		}
	}
	wg.Wait()

	rep := &Report{Tenants: make([]TenantReport, len(loads))}
	for i, l := range loads {
		ty := tallies[i]
		rep.Tenants[i] = TenantReport{
			Name:     l.Name,
			Requests: l.Clients * l.PerClient,
			Served:   ty.served,
			Shed:     ty.shed,
			Failed:   ty.failed,
			P50Ms:    percentileMs(ty.latencies, 50),
			P99Ms:    percentileMs(ty.latencies, 99),
		}
	}
	return rep, nil
}

// shoot issues one query and files its outcome.
func shoot(client *http.Client, baseURL, key, query string, ty *tally) {
	req, err := http.NewRequest(http.MethodPost, baseURL+"/query", strings.NewReader(query))
	if err != nil {
		ty.record(0, err)
		return
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		ty.record(0, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)

	ty.mu.Lock()
	defer ty.mu.Unlock()
	switch resp.StatusCode {
	case http.StatusOK:
		ty.served++
		ty.latencies = append(ty.latencies, elapsed)
	case http.StatusTooManyRequests:
		ty.shed++
	default:
		ty.failed++
	}
}

func (ty *tally) record(_ time.Duration, _ error) {
	ty.mu.Lock()
	defer ty.mu.Unlock()
	ty.failed++
}

// percentileMs is the nearest-rank percentile of a latency sample, in
// milliseconds. 0 for an empty sample.
func percentileMs(sample []time.Duration, p int) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1]) / float64(time.Millisecond)
}
