package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os/exec"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"webbase/client"
)

// Fleet mode: the multi-process half of the chaos harness. Where RunChaos
// attacks the transport under a single in-process server, RunFleet boots a
// real fleet — N webbased replicas as separate OS processes, each building
// the same deterministic simulated Web, so together they serve one logical
// Web — and attacks the fleet itself: replicas are SIGKILLed and restarted
// on a schedule keyed to stream progress while a connection-severing
// transport keeps killing individual streams. Every query runs through one
// multi-endpoint client, so the run exercises the whole failover surface:
// replica benching, health-ordered rotation, cross-replica resume (fresh
// replicas share a consistency token over the same deterministic world),
// and — should a resume be refused — restart-from-zero. The audit is the
// same absolute property as RunChaos: every stream's final tuple multiset
// equals the uninterrupted answer, exactly once.

// FleetLoad configures one fleet chaos run.
type FleetLoad struct {
	// Replicas is the number of webbased processes to boot (at least 2,
	// so a killed replica always leaves a survivor).
	Replicas int `json:"replicas"`
	// Streams is the total number of client streams; Workers how many run
	// concurrently.
	Streams int `json:"streams"`
	Workers int `json:"workers"`
	// Query is the streamed query text.
	Query string `json:"-"`
	// KillProb is the connection-sever probability of the transport-level
	// chaos riding along (0 defaults to 0.4) — replica kills come on top.
	KillProb float64 `json:"kill_prob"`
	// Seed drives the connection-kill schedule deterministically.
	Seed int64 `json:"seed"`
	// Keepalive is the -keepalive interval the replicas are booted with
	// (0 defaults to 25ms), so client stall watchdogs stay sound.
	Keepalive time.Duration `json:"keepalive_ns"`
}

// FleetReport aggregates a fleet run. A run proves fleet-grade failover
// exactly when DuplicateTuples == MissingTuples == Failed == 0 while
// ReplicaKills > 0 and ConnKills > 0.
type FleetReport struct {
	Load            FleetLoad `json:"load"`
	Streams         int       `json:"streams"`
	Completed       int       `json:"completed"`
	Failed          int       `json:"failed"`
	ReplicaKills    int       `json:"replica_kills"`    // whole processes SIGKILLed
	ReplicaRestarts int       `json:"replica_restarts"` // processes booted again on their old port
	ConnKills       int64     `json:"conn_kills"`       // connections severed by the chaos transport
	Resumes         int       `json:"resumes"`          // reconnect attempts the client spent
	Failovers       int       `json:"failovers"`        // reconnects that switched replica
	ClientRestarts  int       `json:"client_restarts"`  // restart-from-zero after a refused resume
	Keepalives      int       `json:"keepalives"`       // keepalive events consumed by clients
	DuplicateTuples int       `json:"duplicate_tuples"`
	MissingTuples   int       `json:"missing_tuples"`
	P50Ms           float64   `json:"p50_ms"` // completed-stream latency, chaos included
	P99Ms           float64   `json:"p99_ms"`
}

// fleetServingRE scrapes the actual listen address from a replica's
// announce line — replicas boot on port 0 and let the kernel pick.
var fleetServingRE = regexp.MustCompile(` serving \S+ domain on (\S+) \(`)

// fleetReplica manages one webbased process. The address is fixed at first
// boot and reused on restart, so a restarted replica comes back where the
// client's endpoint set expects it.
type fleetReplica struct {
	bin  string
	addr string // host:port, set by the first start

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan error // receives cmd.Wait's result
}

// start boots the process and blocks until it announces its address and
// answers /healthz.
func (r *fleetReplica) start(keepalive time.Duration) error {
	addr := r.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	cmd := exec.Command(r.bin, "-addr", addr, "-keepalive", keepalive.String())
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	addrCh := make(chan string, 1)
	go func() {
		// Scan for the announce line, then keep draining so the process
		// never blocks on a full stderr pipe.
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := fleetServingRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case a := <-addrCh:
		r.addr = a
	case err := <-done:
		return fmt.Errorf("loadgen: replica exited before announcing its address: %v", err)
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("loadgen: replica on %s never announced its address", addr)
	}
	r.mu.Lock()
	r.cmd, r.done = cmd, done
	r.mu.Unlock()
	return r.waitHealthy()
}

// kill SIGKILLs the process — no drain, no flush; the mid-stream
// connections die with it — and reaps it.
func (r *fleetReplica) kill() {
	r.mu.Lock()
	cmd, done := r.cmd, r.done
	r.cmd, r.done = nil, nil
	r.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Kill()
	<-done
}

// restart boots the replica again on the port it held before, retrying
// briefly in case the kernel has not released the address yet.
func (r *fleetReplica) restart(keepalive time.Duration) error {
	var err error
	for i := 0; i < 10; i++ {
		if err = r.start(keepalive); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}

func (r *fleetReplica) waitHealthy() error {
	url := "http://" + r.addr + "/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: replica %s never became healthy", r.addr)
}

// RunFleet boots load.Replicas webbased processes from bin, drives
// load.Streams queries through one multi-endpoint client over a
// connection-severing transport, and — on a schedule keyed to completed
// streams — SIGKILLs replicas and restarts them on their old ports. Every
// completed stream's tuples are audited against a ground-truth answer
// fetched once from a healthy replica.
func RunFleet(bin string, load FleetLoad) (*FleetReport, error) {
	if load.Replicas < 2 || load.Streams <= 0 || load.Workers <= 0 || load.Query == "" {
		return nil, fmt.Errorf("loadgen: bad fleet load %+v", load)
	}
	if load.KillProb == 0 {
		load.KillProb = 0.4
	}
	if load.Keepalive == 0 {
		load.Keepalive = 25 * time.Millisecond
	}
	ctx := context.Background()

	replicas := make([]*fleetReplica, load.Replicas)
	for i := range replicas {
		r := &fleetReplica{bin: bin}
		if err := r.start(load.Keepalive); err != nil {
			for _, prev := range replicas[:i] {
				prev.kill()
			}
			return nil, err
		}
		replicas[i] = r
	}
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
	}()

	endpoints := make([]string, len(replicas))
	for i, r := range replicas {
		endpoints[i] = "http://" + r.addr
	}

	// Ground truth: one uninterrupted stream from replica 0 over a plain
	// transport. This also warms replica 0's page cache; the others warm
	// on first contact, which is part of what the run exercises.
	calm, err := client.New(client.Config{BaseURL: endpoints[0]})
	if err != nil {
		return nil, err
	}
	want, err := collectTuples(ctx, calm, load.Query)
	if err != nil {
		return nil, fmt.Errorf("loadgen: ground-truth stream: %w", err)
	}

	chaos := &chaosTransport{
		base: &http.Transport{MaxIdleConnsPerHost: 256},
		rng:  rand.New(rand.NewSource(load.Seed)),
		prob: load.KillProb,
	}
	defer chaos.base.(*http.Transport).CloseIdleConnections()
	fleet, err := client.New(client.Config{
		Endpoints:    endpoints,
		HTTPClient:   &http.Client{Transport: chaos},
		MaxAttempts:  200, // the chaos schedule guarantees progress, not luck
		BackoffBase:  time.Millisecond,
		BackoffMax:   16 * time.Millisecond,
		StallTimeout: 10 * time.Second, // replicas emit keepalives, so this only fires on true stalls
	})
	if err != nil {
		return nil, err
	}

	rep := &FleetReport{Load: load, Streams: load.Streams}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		ctlErr    error
		completed atomic.Int64
	)

	// Chaos controller: replica kills and restarts keyed to aggregate
	// stream progress, so the fleet loses capacity while streams are
	// provably in flight and gets it back before the run drains. At most
	// one replica is down at a time — a survivor always exists.
	stop := make(chan struct{})
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		s := int64(load.Streams)
		record := func(f func()) {
			mu.Lock()
			f()
			mu.Unlock()
		}
		steps := []struct {
			at  int64
			act func()
		}{
			{s / 4, func() {
				replicas[1].kill()
				record(func() { rep.ReplicaKills++ })
			}},
			{s / 2, func() {
				if err := replicas[1].restart(load.Keepalive); err != nil {
					record(func() { ctlErr = err })
					return
				}
				record(func() { rep.ReplicaRestarts++ })
				replicas[2%len(replicas)].kill()
				record(func() { rep.ReplicaKills++ })
			}},
			{3 * s / 4, func() {
				if err := replicas[2%len(replicas)].restart(load.Keepalive); err != nil {
					record(func() { ctlErr = err })
					return
				}
				record(func() { rep.ReplicaRestarts++ })
			}},
		}
		for _, step := range steps {
			for completed.Load() < step.at {
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
			step.act()
		}
	}()

	var wg sync.WaitGroup
	work := make(chan struct{})
	for w := 0; w < load.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				start := time.Now()
				got, st, err := collectFleet(ctx, fleet, load.Query)
				elapsed := time.Since(start)
				mu.Lock()
				rep.Resumes += st.resumes
				rep.Failovers += st.failovers
				rep.ClientRestarts += st.restarts
				rep.Keepalives += st.keepalives
				if err != nil {
					rep.Failed++
				} else {
					rep.Completed++
					latencies = append(latencies, elapsed)
					dup, miss := diffMultiset(got, want)
					rep.DuplicateTuples += dup
					rep.MissingTuples += miss
				}
				mu.Unlock()
				completed.Add(1)
			}
		}()
	}
	for i := 0; i < load.Streams; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	close(stop)
	<-ctlDone

	rep.ConnKills = chaos.kills.Load()
	rep.P50Ms = percentileMs(latencies, 50)
	rep.P99Ms = percentileMs(latencies, 99)
	if ctlErr != nil {
		return rep, fmt.Errorf("loadgen: chaos controller: %w", ctlErr)
	}
	return rep, nil
}

// fleetStreamStats is what one stream's iteration spent to finish.
type fleetStreamStats struct {
	resumes, failovers, restarts, keepalives int
}

// collectFleet drains one stream into a tuple multiset, restart-aware:
// when Restarts() advances between deliveries, everything accumulated so
// far belongs to an answer the fleet refused to resume — the client
// started over from seq zero, so the audit must too.
func collectFleet(ctx context.Context, c *client.Client, query string) (map[string]int, fleetStreamStats, error) {
	var stats fleetStreamStats
	st, err := c.Query(ctx, query)
	if err != nil {
		return nil, stats, err
	}
	defer st.Close()
	got := map[string]int{}
	restarts := 0
	for st.Next() {
		if r := st.Restarts(); r > restarts {
			restarts = r
			got = map[string]int{}
		}
		for _, t := range st.Delivery().Tuples {
			got[fmt.Sprint(t)]++
		}
	}
	stats.resumes = st.Attempts() - 1
	stats.failovers = st.Failovers()
	stats.restarts = st.Restarts()
	stats.keepalives = st.Keepalives()
	return got, stats, st.Err()
}
