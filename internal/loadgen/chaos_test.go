package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"webbase/internal/core"
	"webbase/internal/server"
	"webbase/internal/sites"
)

// TestConnectionChaos is the resilience acceptance run: 8 concurrent
// clients stream 4 queries each through a transport that severs about 70%
// of the connections — some on event boundaries, some mid-line — while
// the resumable client reconnects and resumes. The pass condition is
// absolute: every stream completes, and every completed stream's tuple
// multiset equals the uninterrupted answer — zero duplicates, zero
// missing — while the kill counter proves the chaos actually happened.
// The run's numbers are emitted as BENCH_resume.json.
func TestConnectionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness")
	}
	wb, err := core.New(core.Config{
		Fetcher: sites.BuildWorld().Server,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{System: wb})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	load := ChaosLoad{
		Clients:   8,
		PerClient: 4,
		Query:     loadQuery,
		KillProb:  0.7,
		Seed:      1,
	}
	rep, err := RunChaos(ts.URL, load)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Kills == 0 {
		t.Fatal("chaos transport severed nothing — the run proved nothing")
	}
	if rep.Completed != rep.Streams || rep.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0 — resumability must survive every kill",
			rep.Completed, rep.Failed, rep.Streams)
	}
	if rep.DuplicateTuples != 0 || rep.MissingTuples != 0 {
		t.Fatalf("duplicate=%d missing=%d tuples, want 0/0 — resumed streams must be exactly-once",
			rep.DuplicateTuples, rep.MissingTuples)
	}
	if rep.Resumes == 0 {
		t.Fatal("no stream ever reconnected, yet connections were killed")
	}

	writeChaosReport(t, rep)
}

// writeChaosReport emits the run as BENCH_resume.json in the repo root,
// alongside the other committed benchmark artifacts.
func writeChaosReport(t *testing.T, rep *ChaosReport) {
	t.Helper()
	doc := map[string]any{
		"benchmark": "TestConnectionChaos",
		"query":     loadQuery,
		"scenario": "8 concurrent clients stream 4 queries each through a chaos transport that severs " +
			"~70% of connections (half of them mid-line) with a deterministic, progress-guaranteeing " +
			"byte schedule; the resumable client reconnects with Last-Event-Index and the server " +
			"suppresses the already-delivered prefix. Pass requires every stream to complete with a " +
			"tuple multiset exactly equal to the uninterrupted answer.",
		"results": rep,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_resume.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
