package loadgen

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestFleetChaos is the fleet acceptance run: three webbased replica
// processes serve one deterministic simulated Web while 32 streams run
// through a single multi-endpoint client; mid-run, two replicas are (one
// at a time) SIGKILLed and later rebooted on their old ports, and the
// chaos transport keeps severing individual connections on top. The pass
// condition is absolute: every stream completes, every completed stream's
// tuple multiset equals the uninterrupted answer — zero duplicates, zero
// missing — and the kill counters prove the fleet actually lost and
// regained processes. The run's numbers are emitted as BENCH_fleet.json.
func TestFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet harness")
	}
	bin := buildWebbased(t)
	load := FleetLoad{
		Replicas: 3,
		Streams:  32,
		Workers:  8,
		Query:    loadQuery,
		KillProb: 0.4,
		Seed:     1,
	}
	rep, err := RunFleet(bin, load)
	if err != nil {
		t.Fatal(err)
	}

	if rep.ReplicaKills < 2 || rep.ReplicaRestarts < 2 {
		t.Fatalf("replica kills=%d restarts=%d, want >=2/>=2 — the fleet chaos never happened",
			rep.ReplicaKills, rep.ReplicaRestarts)
	}
	if rep.ConnKills == 0 {
		t.Fatal("chaos transport severed nothing — the transport chaos never happened")
	}
	if rep.Completed != rep.Streams || rep.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0 — failover must survive every kill",
			rep.Completed, rep.Failed, rep.Streams)
	}
	if rep.DuplicateTuples != 0 || rep.MissingTuples != 0 {
		t.Fatalf("duplicate=%d missing=%d tuples, want 0/0 — failover must stay exactly-once",
			rep.DuplicateTuples, rep.MissingTuples)
	}
	if rep.Failovers == 0 {
		t.Fatal("no stream ever switched replica, yet whole processes were killed")
	}

	writeFleetReport(t, rep)
}

// buildWebbased compiles the real cmd/webbased binary the fleet boots —
// the run must prove the shipped process, not a test double.
func buildWebbased(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "webbased")
	cmd := exec.Command("go", "build", "-o", bin, "webbase/cmd/webbased")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building webbased: %v\n%s", err, out)
	}
	return bin
}

// writeFleetReport emits the run as BENCH_fleet.json in the repo root,
// alongside the other committed benchmark artifacts.
func writeFleetReport(t *testing.T, rep *FleetReport) {
	t.Helper()
	doc := map[string]any{
		"benchmark": "TestFleetChaos",
		"query":     loadQuery,
		"scenario": "3 webbased replica processes serve the same deterministic simulated Web; 32 streams " +
			"run through one multi-endpoint client over a transport severing ~40% of connections while " +
			"two replicas are SIGKILLed mid-run (one at a time) and rebooted on their old ports. The " +
			"client benches dead replicas, fails over, resumes across replicas via the shared " +
			"consistency token, and restarts from zero if a resume is refused. Pass requires every " +
			"stream to complete with a tuple multiset exactly equal to the uninterrupted answer.",
		"results": rep,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_fleet.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
