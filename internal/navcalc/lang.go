package navcalc

import (
	"fmt"
	"strings"

	"webbase/internal/relation"
	"webbase/internal/tlogic"
	"webbase/internal/wrapper"
)

// This file gives navigation expressions a concrete textual syntax — the
// machine-readable analogue of the paper's Figure 4 — so expressions can
// be stored, inspected and hand-authored:
//
//	expression newsday(Make, Model, Year, Price, Contact, Url)
//	start "http://newsday.example/"
//	goal follow("Automobiles") ; submit("f1"; make=?Make) ;
//	     ( collect
//	     | submit("f2"; model=?Model, featrs=?Featrs) ; collect )
//	rule collect =
//	     extract(Make <- "Make", Model <- "Model", Year <- "Year",
//	             Price <- money "Price", Contact <- "Contact",
//	             Url <- link "Car Features")
//	     ; ( follow("More") ; collect | () )
//
// ";" is the serial conjunction ⊗ (binds tighter), "|" the choice ∨, "()"
// the empty formula ε. Primitives: follow("text") / follow(?Var),
// submit("form"; field=?Var, field="const"), extract(...), guards
// hasform("f"), haslink("l"), isdata("H1","H2"), and not(...). Bare
// identifiers call rules.

// FormatExpression renders an expression in the textual syntax. Only
// expressions built from this package's primitives (plus tlogic's
// combinators) can be rendered; foreign actions render as their Name().
func FormatExpression(e *Expression) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "expression %s(%s)\n", e.Name, strings.Join(e.Schema, ", "))
	if e.StartURLVar != "" {
		fmt.Fprintf(&sb, "start ?%s\n", e.StartURLVar)
	} else {
		fmt.Fprintf(&sb, "start %q\n", e.StartURL)
	}
	fmt.Fprintf(&sb, "goal %s\n", formatFormula(e.Goal, false))
	if e.Program != nil {
		for _, name := range ruleNames(e.Program) {
			body, _ := e.Program.Rule(name)
			fmt.Fprintf(&sb, "rule %s = %s\n", name, formatFormula(body, false))
		}
	}
	return sb.String()
}

func ruleNames(p *tlogic.Program) []string {
	// Program.String() renders sorted "name ← body" lines; reuse it to
	// discover names without widening tlogic's API surface.
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(p.String()), "\n") {
		if i := strings.Index(line, " ←"); i > 0 {
			names = append(names, line[:i])
		}
	}
	return names
}

// formatFormula renders a formula; parenthesize marks choice contexts.
func formatFormula(f tlogic.Formula, inSerial bool) string {
	switch f := f.(type) {
	case tlogic.Empty:
		return "()"
	case tlogic.Serial:
		return formatFormula(f.Left, true) + " ; " + formatFormula(f.Right, true)
	case tlogic.Choice:
		s := formatFormula(f.Left, false) + " | " + formatFormula(f.Right, false)
		return "( " + s + " )"
	case tlogic.Call:
		return f.Rule
	case tlogic.Not:
		return "not(" + formatFormula(f.Body, false) + ")"
	case tlogic.Prim:
		return formatAction(f.Action)
	default:
		return f.String()
	}
}

func formatAction(a tlogic.Action) string {
	switch a := a.(type) {
	case followLink:
		if a.fromVar != "" {
			return fmt.Sprintf("follow(?%s)", a.fromVar)
		}
		return fmt.Sprintf("follow(%q)", a.name)
	case submitForm:
		parts := make([]string, len(a.fills))
		for i, fl := range a.fills {
			if fl.Const != "" {
				parts[i] = fmt.Sprintf("%s=%q", fl.Field, fl.Const)
			} else {
				parts[i] = fmt.Sprintf("%s=?%s", fl.Field, fl.Var)
			}
		}
		return fmt.Sprintf("submit(%q; %s)", a.form, strings.Join(parts, ", "))
	case extract:
		return formatExtract(a.spec)
	case guard:
		return a.name // guards carry their canonical syntax as their name
	default:
		return a.Name()
	}
}

func formatExtract(spec ExtractSpec) string {
	if spec.Pattern != nil {
		parts := make([]string, len(spec.Pattern.Fields))
		for i, f := range spec.Pattern.Fields {
			s := fmt.Sprintf("%s <- %q", f.Attr, f.Label)
			if f.Money {
				s = fmt.Sprintf("%s <- money %q", f.Attr, f.Label)
			}
			parts[i] = s
		}
		return fmt.Sprintf("extract pattern(%q; %s)", spec.Pattern.ItemTag, strings.Join(parts, ", "))
	}
	var parts []string
	for _, c := range spec.Columns {
		if c.Money {
			parts = append(parts, fmt.Sprintf("%s <- money %q", c.Attr, c.Header))
		} else {
			parts = append(parts, fmt.Sprintf("%s <- %q", c.Attr, c.Header))
		}
	}
	for _, lc := range spec.LinkCols {
		parts = append(parts, fmt.Sprintf("%s <- link %q", lc.Attr, lc.LinkName))
	}
	for _, ec := range spec.EnvCols {
		parts = append(parts, fmt.Sprintf("%s <- env ?%s", ec.Attr, ec.Var))
	}
	return fmt.Sprintf("extract(%s)", strings.Join(parts, ", "))
}

// ParseExpression parses the textual syntax into an executable expression.
func ParseExpression(text string) (*Expression, error) {
	p := &exprParser{lex: newLexer(text)}
	return p.parse()
}

// ─── lexer ───────────────────────────────────────────────────────────────

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // "..."
	tokVar    // ?Name
	tokPunct  // one of ( ) ; | , = and the two-char <-
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '"':
			start := l.pos + 1
			end := strings.IndexByte(l.src[start:], '"')
			if end < 0 {
				l.toks = append(l.toks, token{tokString, l.src[start:], l.pos})
				l.pos = len(l.src)
				continue
			}
			l.toks = append(l.toks, token{tokString, l.src[start : start+end], l.pos})
			l.pos = start + end + 1
		case c == '?':
			start := l.pos + 1
			end := start
			for end < len(l.src) && isIdentChar(l.src[end]) {
				end++
			}
			l.toks = append(l.toks, token{tokVar, l.src[start:end], l.pos})
			l.pos = end
		case c == '<' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.toks = append(l.toks, token{tokPunct, "<-", l.pos})
			l.pos += 2
		case strings.IndexByte("();|,=", c) >= 0:
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		case isIdentChar(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: len(l.src)})
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// ─── parser ──────────────────────────────────────────────────────────────

type exprParser struct {
	lex *lexer
	i   int
}

func (p *exprParser) peek() token { return p.lex.toks[p.i] }
func (p *exprParser) next() token { t := p.lex.toks[p.i]; p.i++; return t }

func (p *exprParser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("navcalc: parse error at offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

func (p *exprParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *exprParser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return p.errf(t, "expected %q, got %q", word, t.text)
	}
	return nil
}

func (p *exprParser) parse() (*Expression, error) {
	if err := p.expectIdent("expression"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, p.errf(nameTok, "expected expression name")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var attrs []string
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected attribute name")
		}
		attrs = append(attrs, t.text)
		sep := p.next()
		if sep.kind == tokPunct && sep.text == ")" {
			break
		}
		if sep.kind != tokPunct || sep.text != "," {
			return nil, p.errf(sep, "expected , or ) in schema")
		}
	}

	if err := p.expectIdent("start"); err != nil {
		return nil, err
	}
	schema, err := relation.ParseSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("navcalc: %s: %w", nameTok.text, err)
	}
	expr := &Expression{
		Name:    nameTok.text,
		Schema:  schema,
		Program: tlogic.NewProgram(),
	}
	switch t := p.next(); t.kind {
	case tokString:
		expr.StartURL = t.text
	case tokVar:
		expr.StartURLVar = t.text
	default:
		return nil, p.errf(t, "expected start URL string or ?Var")
	}

	if err := p.expectIdent("goal"); err != nil {
		return nil, err
	}
	goal, err := p.parseChoice()
	if err != nil {
		return nil, err
	}
	expr.Goal = goal

	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if err := p.expectIdent("rule"); err != nil {
			return nil, err
		}
		nameT := p.next()
		if nameT.kind != tokIdent {
			return nil, p.errf(nameT, "expected rule name")
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		body, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		expr.Program.Define(nameT.text, body)
	}
	return expr, nil
}

// parseChoice: serial ( "|" serial )*
func (p *exprParser) parseChoice() (tlogic.Formula, error) {
	left, err := p.parseSerial()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPunct && p.peek().text == "|" {
		p.next()
		right, err := p.parseSerial()
		if err != nil {
			return nil, err
		}
		left = tlogic.Choice{Left: left, Right: right}
	}
	return left, nil
}

// parseSerial: atom ( ";" atom )*
func (p *exprParser) parseSerial() (tlogic.Formula, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPunct && p.peek().text == ";" {
		p.next()
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		left = tlogic.Serial{Left: left, Right: right}
	}
	return left, nil
}

func (p *exprParser) parseAtom() (tlogic.Formula, error) {
	t := p.next()
	switch {
	case t.kind == tokPunct && t.text == "(":
		// Either ε "()" or a parenthesized formula.
		if n := p.peek(); n.kind == tokPunct && n.text == ")" {
			p.next()
			return tlogic.Empty{}, nil
		}
		inner, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil

	case t.kind == tokIdent:
		switch strings.ToLower(t.text) {
		case "follow":
			return p.parseFollow()
		case "submit":
			return p.parseSubmit()
		case "extract":
			return p.parseExtract()
		case "not":
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			body, err := p.parseChoice()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return tlogic.Not{Body: body}, nil
		case "hasform", "haslink", "isdata":
			return p.parseGuard(strings.ToLower(t.text))
		default:
			// A bare identifier is a rule call.
			return tlogic.Call{Rule: t.text}, nil
		}
	}
	return nil, p.errf(t, "expected a formula, got %q", t.text)
}

func (p *exprParser) parseFollow() (tlogic.Formula, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	t := p.next()
	var f tlogic.Formula
	switch t.kind {
	case tokString:
		f = Follow(t.text)
	case tokVar:
		f = FollowVar(t.text)
	default:
		return nil, p.errf(t, "follow expects a string or ?Var")
	}
	return f, p.expectPunct(")")
}

func (p *exprParser) parseSubmit() (tlogic.Formula, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	formT := p.next()
	if formT.kind != tokString {
		return nil, p.errf(formT, "submit expects a quoted form name")
	}
	var fills []FieldFill
	sep := p.next()
	switch {
	case sep.kind == tokPunct && sep.text == ")":
		return Submit(formT.text), nil
	case sep.kind == tokPunct && sep.text == ";":
		for {
			fieldT := p.next()
			if fieldT.kind != tokIdent {
				return nil, p.errf(fieldT, "expected form field name")
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			valT := p.next()
			switch valT.kind {
			case tokVar:
				fills = append(fills, Fill(fieldT.text, valT.text))
			case tokString:
				fills = append(fills, FillConst(fieldT.text, valT.text))
			default:
				return nil, p.errf(valT, "expected ?Var or string value")
			}
			n := p.next()
			if n.kind == tokPunct && n.text == ")" {
				return Submit(formT.text, fills...), nil
			}
			if n.kind != tokPunct || n.text != "," {
				return nil, p.errf(n, "expected , or ) in submit")
			}
		}
	default:
		return nil, p.errf(sep, "expected ; or ) after form name")
	}
}

func (p *exprParser) parseExtract() (tlogic.Formula, error) {
	// Either extract( cols ) or extract pattern("tag"; fields).
	if n := p.peek(); n.kind == tokIdent && strings.EqualFold(n.text, "pattern") {
		p.next()
		return p.parseExtractPattern()
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var spec ExtractSpec
	for {
		attrT := p.next()
		if attrT.kind != tokIdent {
			return nil, p.errf(attrT, "expected output attribute")
		}
		if err := p.expectPunct("<-"); err != nil {
			return nil, err
		}
		t := p.next()
		switch {
		case t.kind == tokString:
			spec.Columns = append(spec.Columns, Column{Header: t.text, Attr: attrT.text})
		case t.kind == tokIdent && strings.EqualFold(t.text, "money"):
			h := p.next()
			if h.kind != tokString {
				return nil, p.errf(h, "money expects a header string")
			}
			spec.Columns = append(spec.Columns, Column{Header: h.text, Attr: attrT.text, Money: true})
		case t.kind == tokIdent && strings.EqualFold(t.text, "link"):
			h := p.next()
			if h.kind != tokString {
				return nil, p.errf(h, "link expects a link-name string")
			}
			spec.LinkCols = append(spec.LinkCols, LinkCol{LinkName: h.text, Attr: attrT.text})
		case t.kind == tokIdent && strings.EqualFold(t.text, "env"):
			v := p.next()
			if v.kind != tokVar {
				return nil, p.errf(v, "env expects a ?Var")
			}
			spec.EnvCols = append(spec.EnvCols, EnvCol{Var: v.text, Attr: attrT.text})
		default:
			return nil, p.errf(t, "expected header string, money, link or env")
		}
		n := p.next()
		if n.kind == tokPunct && n.text == ")" {
			return Extract(spec), nil
		}
		if n.kind != tokPunct || n.text != "," {
			return nil, p.errf(n, "expected , or ) in extract")
		}
	}
}

func (p *exprParser) parseExtractPattern() (tlogic.Formula, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tagT := p.next()
	if tagT.kind != tokString {
		return nil, p.errf(tagT, "pattern expects a quoted item tag (may be empty)")
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	script := &wrapper.Script{ItemTag: tagT.text}
	for {
		attrT := p.next()
		if attrT.kind != tokIdent {
			return nil, p.errf(attrT, "expected output attribute")
		}
		if err := p.expectPunct("<-"); err != nil {
			return nil, err
		}
		t := p.next()
		money := false
		if t.kind == tokIdent && strings.EqualFold(t.text, "money") {
			money = true
			t = p.next()
		}
		if t.kind != tokString {
			return nil, p.errf(t, "expected label string")
		}
		script.Fields = append(script.Fields, wrapper.Field{Label: t.text, Attr: attrT.text, Money: money})
		n := p.next()
		if n.kind == tokPunct && n.text == ")" {
			return Extract(ExtractSpec{Pattern: script}), nil
		}
		if n.kind != tokPunct || n.text != "," {
			return nil, p.errf(n, "expected , or ) in pattern")
		}
	}
}

func (p *exprParser) parseGuard(kind string) (tlogic.Formula, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	switch kind {
	case "hasform", "haslink":
		t := p.next()
		if t.kind != tokString {
			return nil, p.errf(t, "%s expects a string", kind)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if kind == "hasform" {
			return HasForm(t.text), nil
		}
		return HasLink(t.text), nil
	default: // isdata
		var headers []string
		for {
			t := p.next()
			if t.kind != tokString {
				return nil, p.errf(t, "isdata expects header strings")
			}
			headers = append(headers, t.text)
			n := p.next()
			if n.kind == tokPunct && n.text == ")" {
				return IsDataPage(headers...), nil
			}
			if n.kind != tokPunct || n.text != "," {
				return nil, p.errf(n, "expected , or ) in isdata")
			}
		}
	}
}
