package navcalc

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"

	"webbase/internal/htmlkit"
	"webbase/internal/relation"
	"webbase/internal/tlogic"
	"webbase/internal/web"
	"webbase/internal/wrapper"
)

// followLink is the primitive action of Figure 3's follow_link class:
// follow the page link whose text matches. With fromVar set, the link name
// to follow is taken from the environment — this is how "attributes
// defined through a set of links" (Yahoo-style directories) are filled.
type followLink struct {
	name    string // literal link text; used when fromVar is empty
	fromVar string // environment variable holding the link text
}

func (a followLink) Name() string {
	if a.fromVar != "" {
		return fmt.Sprintf("follow(link = ?%s)", a.fromVar)
	}
	return fmt.Sprintf("follow(link %q)", a.name)
}

func (a followLink) Run(st tlogic.State, env tlogic.Env) ([]tlogic.Outcome, error) {
	b := st.(*BrowseState)
	want := a.name
	if a.fromVar != "" {
		v, ok := env.Lookup(a.fromVar)
		if !ok {
			// Unbound variable: this branch cannot proceed. That is a
			// statement about the invocation, not the page.
			b.budget.noteInputShortfall()
			return nil, nil
		}
		want = v
	}
	var outs []tlogic.Outcome
	matched := false
	// The calculus consults the F-logic view: every follow_link action
	// object whose link's name matches is a possible next step.
	for _, actID := range b.store.Members("follow_link") {
		nameT, ok := b.store.Path(actID, "object", "name")
		if !ok || !strings.EqualFold(nameT.Str, want) {
			continue
		}
		matched = true
		addrT, ok := b.store.Path(actID, "object", "address")
		if !ok {
			continue
		}
		nb, err := b.navigate(web.NewGet(addrT.Str))
		if err != nil {
			if isFatalNav(err) {
				return nil, err
			}
			continue // dead link: fail softly, try other matches/branches
		}
		outs = append(outs, tlogic.Outcome{State: nb, Env: env})
	}
	if !matched && a.fromVar == "" {
		// A literal link the map recorded is simply not on the page any
		// more — structural drift evidence. A variable-named link with no
		// match is different: the directory just doesn't list that value.
		b.budget.noteStructural()
	}
	return outs, nil
}

// FieldFill instructs submitForm how to fill one form field: from a
// constant or from the environment (the handle's input attributes).
type FieldFill struct {
	Field string // form field name
	Var   string // environment variable to read, when Const is empty
	Const string // literal value
}

// submitForm fills out and submits a form on the current page, the
// primitive of Figure 3's submit_form class. Fields not named in fills
// keep their page defaults (hidden state, pre-selected options).
type submitForm struct {
	form  string // form name; empty selects the page's first form
	fills []FieldFill
}

func (a submitForm) Name() string {
	parts := make([]string, len(a.fills))
	for i, f := range a.fills {
		if f.Const != "" {
			parts[i] = fmt.Sprintf("%s=%q", f.Field, f.Const)
		} else {
			parts[i] = fmt.Sprintf("%s=?%s", f.Field, f.Var)
		}
	}
	name := a.form
	if name == "" {
		name = "#0"
	}
	return fmt.Sprintf("submit(form %s; %s)", name, strings.Join(parts, ", "))
}

func (a submitForm) Run(st tlogic.State, env tlogic.Env) ([]tlogic.Outcome, error) {
	b := st.(*BrowseState)
	form, ok := findForm(b, a.form)
	if !ok {
		// The form the map expects is gone from the page: structural
		// drift evidence.
		b.budget.noteStructural()
		return nil, nil
	}
	values := url.Values{}
	// Page defaults first (hidden fields carrying server state, checked
	// radio buttons, selected options).
	for _, fl := range form.Fields {
		if fl.Widget == htmlkit.WidgetSubmit {
			continue
		}
		if fl.Default != "" {
			values.Set(fl.Name, fl.Default)
		}
	}
	// Then the explicit fills.
	for _, f := range a.fills {
		v := f.Const
		if v == "" {
			v, _ = env.Lookup(f.Var)
		}
		if v == "" {
			continue // unbound optional input: leave the field alone
		}
		if _, exists := form.Field(f.Field); !exists {
			// We hold a value for a field the form no longer carries:
			// structural drift evidence.
			b.budget.noteStructural()
			return nil, nil
		}
		values.Set(f.Field, v)
	}
	// Mandatory fields must have ended up with a value. An empty one
	// means the invocation didn't supply the input, not that the site
	// changed.
	for _, name := range form.MandatoryFields() {
		if values.Get(name) == "" {
			b.budget.noteInputShortfall()
			return nil, nil
		}
	}
	nb, err := b.navigate(web.NewSubmit(form.Action, form.Method, values))
	if err != nil {
		if isFatalNav(err) {
			return nil, err
		}
		return nil, nil // submission rejected: soft failure
	}
	return []tlogic.Outcome{{State: nb, Env: env}}, nil
}

// isFatalNav reports whether a navigation error must abort the whole
// execution (cancellation, exhausted page budget) instead of triggering
// backtracking into other branches.
func isFatalNav(err error) bool {
	return errors.Is(err, ErrPageBudget) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

func findForm(b *BrowseState, name string) (htmlkit.Form, bool) {
	forms := htmlkit.Forms(b.doc, b.url)
	if name == "" {
		if len(forms) == 0 {
			return htmlkit.Form{}, false
		}
		return forms[0], true
	}
	for _, f := range forms {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return htmlkit.Form{}, false
}

// Column maps a data-table column onto an output attribute.
type Column struct {
	Header string // table header text (case-insensitive)
	Attr   string // output attribute
	Money  bool   // parse as a currency amount ("$3,000" → 3000)
}

// LinkCol maps a per-row link onto an output attribute holding its URL —
// how Newsday's Url attribute (the key into newsdayCarFeatures) is
// captured.
type LinkCol struct {
	LinkName string
	Attr     string
}

// EnvCol copies an input binding into every extracted tuple — how a
// relation keyed on its own inputs (newsdayCarFeatures(Url, Features,
// Picture), keyed on the Url the handle was invoked with) echoes the key.
type EnvCol struct {
	Var  string
	Attr string
}

// ExtractSpec is a declarative data-extraction script for data pages
// (Figure 3's "data pages have a data extraction method"). Columns,
// LinkCols and EnvCols drive table extraction; Pattern, when set, replaces
// table extraction with a label–value wrapper script for data pages that
// do not use tables.
type ExtractSpec struct {
	Columns  []Column
	LinkCols []LinkCol
	EnvCols  []EnvCol
	Pattern  *wrapper.Script
}

// headers returns the table headers the spec requires.
func (s ExtractSpec) headers() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Header
	}
	return out
}

// extract pulls the current page's data table into the collected tuple
// set. It fails (backtracks) when the page carries no matching table —
// which is exactly how the "either extract data, or fill form f2" choice
// of Figure 4 distinguishes data pages from refine-your-search pages.
type extract struct {
	spec ExtractSpec
}

func (a extract) Name() string {
	attrs := make([]string, 0, len(a.spec.Columns)+len(a.spec.LinkCols))
	for _, c := range a.spec.Columns {
		attrs = append(attrs, c.Attr)
	}
	for _, lc := range a.spec.LinkCols {
		attrs = append(attrs, lc.Attr)
	}
	if a.spec.Pattern != nil {
		attrs = append(attrs, a.spec.Pattern.Attrs()...)
	}
	return fmt.Sprintf("extract(tuple[%s])", strings.Join(attrs, ", "))
}

func (a extract) Run(st tlogic.State, env tlogic.Env) ([]tlogic.Outcome, error) {
	b := st.(*BrowseState)
	if a.spec.Pattern != nil {
		return a.runPattern(b, env)
	}
	rows := htmlkit.DataTable(b.doc, b.url, a.spec.headers()...)
	if rows == nil {
		// No table carries the expected headers. On the page the map calls
		// a data page this is the classic wrapper-breaking redesign; on a
		// branch probing whether this IS the data page it is neutralized
		// by whichever signal the other branch ends on.
		b.budget.noteStructural()
		return nil, nil
	}
	nb := b.Clone().(*BrowseState)
	for _, row := range rows {
		t := make(relation.Tuple, len(nb.schema))
		for _, c := range a.spec.Columns {
			i := nb.schema.IndexOf(c.Attr)
			if i < 0 {
				return nil, fmt.Errorf("navcalc: extract attribute %q not in schema %v", c.Attr, nb.schema)
			}
			raw := row.Cells[strings.ToLower(c.Header)]
			if c.Money {
				t[i] = relation.ParseMoney(raw)
			} else {
				t[i] = relation.Parse(raw)
			}
		}
		for _, lc := range a.spec.LinkCols {
			i := nb.schema.IndexOf(lc.Attr)
			if i < 0 {
				return nil, fmt.Errorf("navcalc: link attribute %q not in schema %v", lc.Attr, nb.schema)
			}
			if addr, ok := row.Links[lc.LinkName]; ok {
				t[i] = relation.String(addr)
			}
		}
		for _, ec := range a.spec.EnvCols {
			i := nb.schema.IndexOf(ec.Attr)
			if i < 0 {
				return nil, fmt.Errorf("navcalc: env attribute %q not in schema %v", ec.Attr, nb.schema)
			}
			if v, ok := env.Lookup(ec.Var); ok {
				t[i] = relation.Parse(v)
			}
		}
		nb.collected = append(nb.collected, t)
	}
	return []tlogic.Outcome{{State: nb, Env: env}}, nil
}

// runPattern extracts via the wrapper script instead of a table.
func (a extract) runPattern(b *BrowseState, env tlogic.Env) ([]tlogic.Outcome, error) {
	records := a.spec.Pattern.Extract(b.doc)
	if len(records) == 0 {
		// Not a (matching) data page: backtrack. Structurally suspect for
		// the same reason as a missing data table.
		b.budget.noteStructural()
		return nil, nil
	}
	nb := b.Clone().(*BrowseState)
	for _, rec := range records {
		t := make(relation.Tuple, len(nb.schema))
		for attr, val := range rec {
			i := nb.schema.IndexOf(attr)
			if i < 0 {
				return nil, fmt.Errorf("navcalc: pattern attribute %q not in schema %v", attr, nb.schema)
			}
			t[i] = val
		}
		for _, ec := range a.spec.EnvCols {
			i := nb.schema.IndexOf(ec.Attr)
			if i < 0 {
				return nil, fmt.Errorf("navcalc: env attribute %q not in schema %v", ec.Attr, nb.schema)
			}
			if v, ok := env.Lookup(ec.Var); ok {
				t[i] = relation.Parse(v)
			}
		}
		nb.collected = append(nb.collected, t)
	}
	return []tlogic.Outcome{{State: nb, Env: env}}, nil
}

// guard is a state-preserving test.
type guard struct {
	name string
	test func(b *BrowseState, env tlogic.Env) bool
}

func (g guard) Name() string { return g.name }
func (g guard) Run(st tlogic.State, env tlogic.Env) ([]tlogic.Outcome, error) {
	b := st.(*BrowseState)
	if g.test(b, env) {
		return []tlogic.Outcome{{State: b, Env: env}}, nil
	}
	return nil, nil
}

// Follow returns the formula that follows the named link.
func Follow(linkName string) tlogic.Formula {
	return tlogic.Prim{Action: followLink{name: linkName}}
}

// FollowVar returns the formula that follows the link named by the
// environment variable.
func FollowVar(envVar string) tlogic.Formula {
	return tlogic.Prim{Action: followLink{fromVar: envVar}}
}

// Submit returns the formula that fills and submits the named form ("" =
// the page's first form).
func Submit(formName string, fills ...FieldFill) tlogic.Formula {
	return tlogic.Prim{Action: submitForm{form: formName, fills: fills}}
}

// Fill binds a form field to an environment variable.
func Fill(field, envVar string) FieldFill { return FieldFill{Field: field, Var: envVar} }

// FillConst binds a form field to a constant.
func FillConst(field, value string) FieldFill { return FieldFill{Field: field, Const: value} }

// Extract returns the formula that runs the extraction spec on the current
// page.
func Extract(spec ExtractSpec) tlogic.Formula {
	return tlogic.Prim{Action: extract{spec: spec}}
}

// HasLink succeeds iff the current page has a link with the given text.
func HasLink(linkName string) tlogic.Formula {
	return tlogic.Prim{Action: guard{
		name: fmt.Sprintf("haslink(%q)", linkName),
		test: func(b *BrowseState, _ tlogic.Env) bool {
			for _, id := range b.store.Members("link") {
				if n, ok := b.store.Path(id, "name"); ok && strings.EqualFold(n.Str, linkName) {
					return true
				}
			}
			return false
		},
	}}
}

// HasForm succeeds iff the current page has a form with the given name.
func HasForm(formName string) tlogic.Formula {
	return tlogic.Prim{Action: guard{
		name: fmt.Sprintf("hasform(%q)", formName),
		test: func(b *BrowseState, _ tlogic.Env) bool {
			_, ok := findForm(b, formName)
			return ok
		},
	}}
}

// IsDataPage succeeds iff the current page is a data page carrying a table
// with all the given headers — the "CarPg : data_page" test of Figure 4.
func IsDataPage(headers ...string) tlogic.Formula {
	return tlogic.Prim{Action: guard{
		name: func() string {
			qs := make([]string, len(headers))
			for i, h := range headers {
				qs[i] = fmt.Sprintf("%q", h)
			}
			return fmt.Sprintf("isdata(%s)", strings.Join(qs, ", "))
		}(),
		test: func(b *BrowseState, _ tlogic.Env) bool {
			if !b.store.IsA(b.pageID, "data_page") {
				return false
			}
			return htmlkit.DataTable(b.doc, b.url, headers...) != nil
		},
	}}
}
