package navcalc

import (
	"errors"
	"testing"

	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/tlogic"
	"webbase/internal/web"
)

// These tests pin the drift taxonomy at the navcalc boundary: a failed
// navigation is classified as site drift only when the page evidence is
// structural (a mapped link, form, field or data table is gone from pages
// the site happily served) and never when the shortfall was on our side
// (an input the query did not bind). Getting this split wrong either
// quarantines healthy sites on under-bound queries or hides real
// redesigns behind generic navigation failures.

// redesignedNewsday wraps the simulated world with an already-active
// Redesign of the newsday host.
func redesignedNewsday(rewrites ...web.Rewrite) web.Fetcher {
	rd := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: rewrites},
	}
	rd.Activate()
	return rd
}

// TestRenamedLinkClassifiesAsDrift: the mapped home-page link vanished
// from a live, answering site — structural evidence, so the failure
// carries ErrSiteDrift (and still matches ErrNavigationFailed).
func TestRenamedLinkClassifiesAsDrift(t *testing.T) {
	f := redesignedNewsday(web.Rewrite{Old: ">Automobiles<", New: ">Cars and Trucks<"})
	expr := newsdayExpression()
	_, _, err := expr.Execute(f, map[string]string{"Make": "ford", "Model": "escort"})
	if !web.IsDrift(err) {
		t.Fatalf("renamed link: IsDrift=false: %v", err)
	}
	if !errors.Is(err, ErrNavigationFailed) {
		t.Errorf("drift error no longer matches ErrNavigationFailed: %v", err)
	}
	if got := web.FailingHost(err); got != sites.NewsdayHost {
		t.Errorf("drift attributed to host %q, want %s", got, sites.NewsdayHost)
	}
}

// TestRenamedFormClassifiesAsDrift: the mapped form name is gone while
// the page still answers.
func TestRenamedFormClassifiesAsDrift(t *testing.T) {
	f := redesignedNewsday(web.Rewrite{Old: `"f1"`, New: `"searchform"`})
	expr := newsdayExpression()
	_, _, err := expr.Execute(f, map[string]string{"Make": "ford", "Model": "escort"})
	if !web.IsDrift(err) {
		t.Fatalf("renamed form: IsDrift=false: %v", err)
	}
}

// TestRenamedTableHeaderClassifiesAsDrift: navigation still works but the
// data page's extraction table lost a mapped header — the empty
// extraction is structural drift, not a silent empty answer.
func TestRenamedTableHeaderClassifiesAsDrift(t *testing.T) {
	f := redesignedNewsday(web.Rewrite{Old: ">Price<", New: ">Asking<"})
	expr := newsdayExpression()
	_, _, err := expr.Execute(f, map[string]string{"Make": "ford", "Model": "escort"})
	if !web.IsDrift(err) {
		t.Fatalf("renamed table header: IsDrift=false: %v", err)
	}
}

// TestMissingInputIsNotDrift: kellys without its mandatory Condition
// fails navigation because WE could not fill the form — an input
// shortfall, never drift (a false positive here would quarantine a
// perfectly healthy site).
func TestMissingInputIsNotDrift(t *testing.T) {
	w := sites.BuildWorld()
	kellys := &Expression{
		Name:     "kellys",
		StartURL: "http://" + sites.KellysHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Condition", "BBPrice"),
		Program:  tlogic.NewProgram(),
		Goal: tlogic.Seq(
			Follow("Price a Used Car"),
			Submit("pricer", Fill("make", "Make"), Fill("model", "Model"),
				Fill("year", "Year"), Fill("condition", "Condition")),
			Extract(ExtractSpec{Columns: []Column{
				{Header: "Make", Attr: "Make"},
				{Header: "BBPrice", Attr: "BBPrice", Money: true},
			}}),
		),
	}
	_, _, err := kellys.Execute(w.Server, map[string]string{"Make": "jaguar", "Model": "xj6"})
	if !errors.Is(err, ErrNavigationFailed) {
		t.Fatalf("missing mandatory input should fail navigation: %v", err)
	}
	if web.IsDrift(err) {
		t.Fatal("missing mandatory input misclassified as site drift")
	}
}

// TestUnboundFollowVarIsNotDrift: an unbound variable link is our
// shortfall, not the site's.
func TestUnboundFollowVarIsNotDrift(t *testing.T) {
	w := sites.BuildWorld()
	prog := tlogic.NewProgram()
	collect := CollectLoop(prog, "collect", ExtractSpec{Columns: []Column{
		{Header: "Make", Attr: "Make"},
		{Header: "Model", Attr: "Model"},
		{Header: "Year", Attr: "Year"},
		{Header: "Price", Attr: "Price", Money: true},
	}}, "More")
	expr := &Expression{
		Name:     "yahooCars",
		StartURL: "http://" + sites.YahooCarsHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Price"),
		Program:  prog,
		Goal:     tlogic.Seq(FollowVar("Make"), FollowVar("Model"), collect),
	}
	_, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford"})
	if !errors.Is(err, ErrNavigationFailed) {
		t.Fatalf("unbound Model should fail navigation: %v", err)
	}
	if web.IsDrift(err) {
		t.Fatal("unbound FollowVar misclassified as site drift")
	}
}

// TestBoundFollowVarWithNoMatchingLinkIsNotDrift: the variable is bound
// but the site lists no such directory entry — absence of data, neither
// structural drift nor an input shortfall.
func TestBoundFollowVarWithNoMatchingLinkIsNotDrift(t *testing.T) {
	w := sites.BuildWorld()
	prog := tlogic.NewProgram()
	collect := CollectLoop(prog, "collect", ExtractSpec{Columns: []Column{
		{Header: "Make", Attr: "Make"},
		{Header: "Model", Attr: "Model"},
		{Header: "Year", Attr: "Year"},
		{Header: "Price", Attr: "Price", Money: true},
	}}, "More")
	expr := &Expression{
		Name:     "yahooCars",
		StartURL: "http://" + sites.YahooCarsHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Price"),
		Program:  prog,
		Goal:     tlogic.Seq(FollowVar("Make"), FollowVar("Model"), collect),
	}
	_, _, err := expr.Execute(w.Server, map[string]string{"Make": "zeppelin", "Model": "led"})
	if !errors.Is(err, ErrNavigationFailed) {
		t.Fatalf("unknown make should fail navigation: %v", err)
	}
	if web.IsDrift(err) {
		t.Fatal("absent directory entry misclassified as site drift")
	}
}

// TestOutageIsNotDrift: a host that refuses to answer is an outage; the
// drift classification requires the site to have answered.
func TestOutageIsNotDrift(t *testing.T) {
	f := &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: 1}
	expr := newsdayExpression()
	_, _, err := expr.Execute(f, map[string]string{"Make": "ford", "Model": "escort"})
	if err == nil {
		t.Fatal("fully failing fetcher succeeded")
	}
	if web.IsDrift(err) {
		t.Fatalf("outage misclassified as drift: %v", err)
	}
}
