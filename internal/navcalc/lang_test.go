package navcalc

import (
	"strings"
	"testing"

	"webbase/internal/sites"
)

const newsdayText = `
# The Figure 4 navigation process, in the textual syntax.
expression newsday(Make, Model, Year, Price, Contact, Url)
start "http://newsday.example/"
goal follow("Automobiles") ; submit("f1"; make=?Make) ;
     ( isdata("Make", "Model", "Year", "Price", "Contact") ; collect
     | submit("f2"; model=?Model, featrs=?Featrs) ; collect )
rule collect =
     extract(Make <- "Make", Model <- "Model", Year <- "Year",
             Price <- money "Price", Contact <- "Contact",
             Url <- link "Car Features")
     ; ( follow("More") ; collect | () )
`

func TestParseExpressionExecutes(t *testing.T) {
	expr, err := ParseExpression(newsdayText)
	if err != nil {
		t.Fatal(err)
	}
	if expr.Name != "newsday" || len(expr.Schema) != 6 {
		t.Fatalf("header: %s %v", expr.Name, expr.Schema)
	}
	w := sites.BuildWorld()
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.Datasets[sites.NewsdayHost].ByMakeModel("ford", "escort"))
	if rel.Len() != want {
		t.Errorf("parsed expression collected %d, want %d", rel.Len(), want)
	}
}

// TestFormatParseRoundTrip: formatting then re-parsing an expression
// yields the same behaviour, and re-formatting is a fixed point.
func TestFormatParseRoundTrip(t *testing.T) {
	orig, err := ParseExpression(newsdayText)
	if err != nil {
		t.Fatal(err)
	}
	text1 := FormatExpression(orig)
	reparsed, err := ParseExpression(text1)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text1)
	}
	text2 := FormatExpression(reparsed)
	if text1 != text2 {
		t.Errorf("format not a fixed point:\n%s\nvs\n%s", text1, text2)
	}
	w := sites.BuildWorld()
	a, _, err := orig.Execute(w.Server, map[string]string{"Make": "honda", "Model": "civic"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := reparsed.Execute(w.Server, map[string]string{"Make": "honda", "Model": "civic"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Errorf("behaviour changed: %d vs %d", a.Len(), b.Len())
	}
}

func TestParseStartVarAndEnvExtract(t *testing.T) {
	text := `
expression features(Url, Features, Picture)
start ?Url
goal extract(Features <- "Features", Picture <- "Picture", Url <- env ?Url)
`
	expr, err := ParseExpression(text)
	if err != nil {
		t.Fatal(err)
	}
	if expr.StartURLVar != "Url" {
		t.Errorf("start var = %q", expr.StartURLVar)
	}
	// Behaves like the standard newsdayCarFeatures expression.
	w := sites.BuildWorld()
	nd, err := ParseExpression(newsdayText)
	if err != nil {
		t.Fatal(err)
	}
	ads, _, err := nd.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := ads.Get(ads.Tuples()[0], "Url")
	rel, _, err := expr.Execute(w.Server, map[string]string{"Url": u.Str()})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("rows = %d", rel.Len())
	}
}

func TestParsePatternExtract(t *testing.T) {
	text := `
expression lots(Make, Price)
start "http://x/"
goal extract pattern("h3"; Make <- "Make", Price <- money "Price")
`
	expr, err := ParseExpression(text)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatExpression(expr)
	if !strings.Contains(out, `extract pattern("h3"; Make <- "Make", Price <- money "Price")`) {
		t.Errorf("pattern formatting:\n%s", out)
	}
}

func TestParseGuardsAndNot(t *testing.T) {
	text := `
expression g(A)
start "http://x/"
goal not(hasform("f2")) ; haslink("More") ; extract(A <- "A")
`
	expr, err := ParseExpression(text)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatExpression(expr)
	for _, want := range []string{`not(hasform("f2"))`, `haslink("More")`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestParseSubmitConstAndBareForm(t *testing.T) {
	text := `
expression s(A)
start "http://x/"
goal submit("q"; make="ford") ; submit("q") ; extract(A <- "A")
`
	expr, err := ParseExpression(text)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatExpression(expr)
	if !strings.Contains(out, `submit("q"; make="ford")`) {
		t.Errorf("const fill lost:\n%s", out)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`expression`,
		`expression x`,
		`expression x(A) start`,
		`expression x(A) start "u"`,      // missing goal
		`expression x(A) start "u" goal`, // empty goal
		`expression x(A) start "u" goal follow(42)`,              // bad follow arg
		`expression x(A) start "u" goal submit(f)`,               // unquoted form
		`expression x(A) start "u" goal extract(A <- bogus "H")`, // bad column kind
		`expression x(A) start "u" goal extract(A "H")`,          // missing arrow
		`expression x(A) start "u" goal () rule`,                 // dangling rule
		`expression x(A) start "u" goal () rule r`,               // rule missing =
		`expression x(A) start "u" goal ( ()`,                    // unbalanced paren
		`expression x(A) start "u" goal isdata(Make)`,            // unquoted header
		`expression x(A) start "u" goal submit("f"; a=b)`,        // bare value
		`expression x(A,) start "u" goal ()`,                     // trailing comma
	}
	for _, text := range bad {
		if _, err := ParseExpression(text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

// TestFormatStandardExpressions formats every map-derived expression and
// re-parses it, proving the syntax covers the whole operational surface.
func TestFormatStandardExpressions(t *testing.T) {
	w := sites.BuildWorld()
	// Build via the hand map (avoiding an import cycle with carmaps by
	// re-deriving here through text): use the newsday text plus the
	// simpler kellys expression.
	kellys := `
expression kellys(Make, Model, Year, Condition, BBPrice)
start "http://kbb.example/"
goal follow("Price a Used Car") ;
     submit("pricer"; make=?Make, model=?Model, year=?Year, condition=?Condition) ;
     extract(Make <- "Make", Model <- "Model", Year <- "Year",
             Condition <- "Condition", BBPrice <- money "BBPrice")
`
	expr, err := ParseExpression(kellys)
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := expr.Execute(w.Server, map[string]string{
		"Make": "jaguar", "Model": "xj6", "Year": "1994", "Condition": "good"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("kellys rows = %d", rel.Len())
	}
	bb, _ := rel.Get(rel.Tuples()[0], "BBPrice")
	if int(bb.IntVal()) != sites.BlueBook("jaguar", "xj6", 1994, "good") {
		t.Errorf("bbprice = %v", bb)
	}
}
