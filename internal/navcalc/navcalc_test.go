package navcalc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/tlogic"
	"webbase/internal/web"
	"webbase/internal/wrapper"
)

// newsdayExpression hand-builds the Figure 4 navigation process for the
// Newsday VPS relation newsday(Make, Model, Year, Price, Contact, Url).
// (The navmap package later derives this same expression automatically.)
func newsdayExpression() *Expression {
	spec := ExtractSpec{
		Columns: []Column{
			{Header: "Make", Attr: "Make"},
			{Header: "Model", Attr: "Model"},
			{Header: "Year", Attr: "Year"},
			{Header: "Price", Attr: "Price", Money: true},
			{Header: "Contact", Attr: "Contact"},
		},
		LinkCols: []LinkCol{{LinkName: "Car Features", Attr: "Url"}},
	}
	prog := tlogic.NewProgram()
	collect := CollectLoop(prog, "collect", spec, "More")
	goal := tlogic.Seq(
		Follow("Automobiles"),
		Submit("f1", Fill("make", "Make")),
		tlogic.Choice{
			// Either the answer page is already a data page and we collect,
			Left: tlogic.Seq(IsDataPage("Make", "Model", "Year", "Price", "Contact"), collect),
			// or we must narrow via form f2 first (Figure 2's branch).
			Right: tlogic.Seq(
				Submit("f2", Fill("model", "Model"), Fill("featrs", "Featrs")),
				collect,
			),
		},
	)
	return &Expression{
		Name:     "newsday",
		StartURL: "http://" + sites.NewsdayHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Price", "Contact", "Url"),
		Program:  prog,
		Goal:     goal,
	}
}

func TestNewsdayExpressionBroadMake(t *testing.T) {
	w := sites.BuildWorld()
	expr := newsdayExpression()
	var stats web.Stats
	f := web.Counting(w.Server, &stats)

	rel, info, err := expr.Execute(f, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.Datasets[sites.NewsdayHost].ByMakeModel("ford", "escort"))
	if rel.Len() != want {
		t.Errorf("collected %d tuples, dataset has %d", rel.Len(), want)
	}
	if info.Tuples != rel.Len() {
		t.Errorf("info.Tuples = %d", info.Tuples)
	}
	// Path: home, auto page, f2 page, then ceil(want/5) data pages.
	if info.PathLength < 4 {
		t.Errorf("path length = %d, too short", info.PathLength)
	}
	// Every tuple is a ford escort with a priced, linked row.
	for _, tp := range rel.Tuples() {
		mk, _ := rel.Get(tp, "Make")
		md, _ := rel.Get(tp, "Model")
		pr, _ := rel.Get(tp, "Price")
		u, _ := rel.Get(tp, "Url")
		if mk.Str() != "ford" || md.Str() != "escort" {
			t.Fatalf("wrong tuple: %v", tp)
		}
		if pr.Kind() != relation.KindInt || pr.IntVal() <= 0 {
			t.Fatalf("price not parsed as money: %v", pr)
		}
		if !strings.Contains(u.Str(), "/features?id=") {
			t.Fatalf("url column not captured: %v", u)
		}
	}
	if stats.Pages() == 0 {
		t.Error("no pages counted")
	}
}

func TestNewsdayExpressionRareMakeTakesDataBranch(t *testing.T) {
	w := sites.BuildWorld()
	ds := w.Datasets[sites.NewsdayHost]
	var rare string
	for _, mk := range sites.Makes() {
		if n := len(ds.ByMake(mk)); n > 0 && n <= sites.TooManyMatches {
			rare = mk
			break
		}
	}
	if rare == "" {
		t.Skip("no rare make; adjust dataset sizes")
	}
	expr := newsdayExpression()
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": rare})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != len(ds.ByMake(rare)) {
		t.Errorf("collected %d, want %d", rel.Len(), len(ds.ByMake(rare)))
	}
}

func TestExpressionFailsWithoutMandatoryInput(t *testing.T) {
	w := sites.BuildWorld()
	expr := newsdayExpression()
	// No Make: form f1 cannot be filled (its only field stays at the page
	// default, which exists for selects) — Newsday's select has a default,
	// so instead test Kelly's, whose condition radio group has no default.
	_, _, err := expr.Execute(w.Server, nil)
	// The select's default lets f1 submit; the execution still either
	// succeeds (collecting the default make) or fails cleanly.
	if err != nil && !errors.Is(err, ErrNavigationFailed) {
		t.Errorf("unexpected hard error: %v", err)
	}

	kellys := &Expression{
		Name:     "kellys",
		StartURL: "http://" + sites.KellysHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Condition", "BBPrice"),
		Program:  tlogic.NewProgram(),
		Goal: tlogic.Seq(
			Follow("Price a Used Car"),
			Submit("pricer", Fill("make", "Make"), Fill("model", "Model"),
				Fill("year", "Year"), Fill("condition", "Condition")),
			Extract(ExtractSpec{Columns: []Column{
				{Header: "Make", Attr: "Make"},
				{Header: "Model", Attr: "Model"},
				{Header: "Year", Attr: "Year"},
				{Header: "Condition", Attr: "Condition"},
				{Header: "BBPrice", Attr: "BBPrice", Money: true},
			}}),
		),
	}
	_, _, err = kellys.Execute(w.Server, map[string]string{"Make": "jaguar", "Model": "xj6"})
	if !errors.Is(err, ErrNavigationFailed) {
		t.Errorf("missing mandatory radio input should fail navigation, got %v", err)
	}
	// With the full mandatory set it succeeds.
	rel, _, err := kellys.Execute(w.Server, map[string]string{
		"Make": "jaguar", "Model": "xj6", "Condition": "good"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 11 { // one row per model year 1988–1998
		t.Errorf("kellys rows = %d, want 11", rel.Len())
	}
}

func TestFollowVarDirectoryNavigation(t *testing.T) {
	w := sites.BuildWorld()
	// Yahoo! Cars: make and model are link-defined attributes.
	prog := tlogic.NewProgram()
	collect := CollectLoop(prog, "collect", ExtractSpec{Columns: []Column{
		{Header: "Make", Attr: "Make"},
		{Header: "Model", Attr: "Model"},
		{Header: "Year", Attr: "Year"},
		{Header: "Price", Attr: "Price", Money: true},
	}}, "More")
	expr := &Expression{
		Name:     "yahooCars",
		StartURL: "http://" + sites.YahooCarsHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Price"),
		Program:  prog,
		Goal:     tlogic.Seq(FollowVar("Make"), FollowVar("Model"), collect),
	}
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.Datasets[sites.YahooCarsHost].ByMakeModel("ford", "escort"))
	if rel.Len() != want {
		t.Errorf("collected %d, want %d", rel.Len(), want)
	}
	// Unbound variable: soft failure.
	_, _, err = expr.Execute(w.Server, map[string]string{"Make": "ford"})
	if !errors.Is(err, ErrNavigationFailed) {
		t.Errorf("unbound Model should fail navigation: %v", err)
	}
}

func TestGuards(t *testing.T) {
	w := sites.BuildWorld()
	st, err := NewBrowseState(w.Server, "http://"+sites.NewsdayHost+"/auto", relation.NewSchema("X"))
	if err != nil {
		t.Fatal(err)
	}
	in := &tlogic.Interp{Program: tlogic.NewProgram()}
	check := func(f tlogic.Formula, want bool) {
		t.Helper()
		_, _, ok, err := in.Run(f, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Errorf("%s = %v, want %v", f, ok, want)
		}
	}
	check(HasForm("f1"), true)
	check(HasForm("f2"), false)
	check(HasLink("zzz"), false)
	check(IsDataPage("Make"), false)
	check(tlogic.Not{Body: HasForm("f2")}, true)
}

func TestPageToObjectsShape(t *testing.T) {
	w := sites.BuildWorld()
	st, err := NewBrowseState(w.Server, "http://"+sites.NewsdayHost+"/auto", relation.NewSchema("X"))
	if err != nil {
		t.Fatal(err)
	}
	store := st.Store()
	if errs := store.TypeErrors(); len(errs) != 0 {
		t.Errorf("page objects violate Figure 3 signatures: %v", errs)
	}
	if !store.IsA(st.PageID(), "web_page") {
		t.Error("page object missing")
	}
	forms := store.Members("form")
	if len(forms) != 1 {
		t.Fatalf("forms = %v", forms)
	}
	if cgi, ok := store.Path(forms[0], "cgi"); !ok || !strings.Contains(cgi.Str, "nclassy") {
		t.Errorf("form cgi = %v", cgi)
	}
	// The make select is an optional attrValPair with a domain.
	avs := store.Members("attrValPair")
	foundMake := false
	for _, av := range avs {
		if n, _ := store.Path(av, "attrName"); n.Str == "make" {
			foundMake = true
			if d := store.Get(av).GetAll("domain"); len(d) != len(sites.Catalog) {
				t.Errorf("make domain = %v", d)
			}
		}
	}
	if !foundMake {
		t.Error("make attrValPair missing")
	}
	// Actions hang off the page object.
	if acts := store.Get(st.PageID()).GetAll("actions"); len(acts) == 0 {
		t.Error("page has no actions")
	}
}

func TestBrowseStateCloneIsolation(t *testing.T) {
	w := sites.BuildWorld()
	st, err := NewBrowseState(w.Server, "http://"+sites.NewsdayHost+"/", relation.NewSchema("A"))
	if err != nil {
		t.Fatal(err)
	}
	st.collected = append(st.collected, relation.Tuple{relation.Int(1)})
	cp := st.Clone().(*BrowseState)
	cp.collected = append(cp.collected, relation.Tuple{relation.Int(2)})
	if len(st.Collected()) != 1 {
		t.Error("clone leaked collected tuples into original")
	}
}

func TestExpressionString(t *testing.T) {
	expr := newsdayExpression()
	s := expr.String()
	for _, want := range []string{"newsday", "follow", "submit", "extract", "collect", "⊗"} {
		if !strings.Contains(s, want) {
			t.Errorf("expression rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExtractSchemaMismatchIsHardError(t *testing.T) {
	w := sites.BuildWorld()
	expr := &Expression{
		Name:     "bad",
		StartURL: "http://" + sites.WWWheelsHost + "/",
		Schema:   relation.NewSchema("Make"),
		Program:  tlogic.NewProgram(),
		Goal: tlogic.Seq(
			Submit("q", FillConst("make", "ford")),
			Extract(ExtractSpec{Columns: []Column{{Header: "Make", Attr: "NotInSchema"}}}),
		),
	}
	if _, _, err := expr.Execute(w.Server, nil); err == nil {
		t.Error("schema mismatch must be a hard error")
	}
}

// TestPatternExtraction drives a synthetic site whose data page uses
// label–value records instead of tables, exercising the wrapper-script
// extraction path end to end.
func TestPatternExtraction(t *testing.T) {
	host := "detail.example"
	m := web.NewMux(host)
	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, `<html><body><a href="/lot">Inventory</a></body></html>`), nil
	}))
	m.Handle("/lot", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, `<html><body>
<h3>Lot 1</h3><p>Make: ford</p><p>Price: $3,000</p>
<h3>Lot 2</h3><p>Make: jaguar</p><p>Price: $19,500</p>
</body></html>`), nil
	}))
	server := web.NewServer()
	server.Register(m)

	expr := &Expression{
		Name:     "lot",
		StartURL: "http://" + host + "/",
		Schema:   relation.NewSchema("Make", "Price"),
		Program:  tlogic.NewProgram(),
		Goal: tlogic.Seq(
			Follow("Inventory"),
			Extract(ExtractSpec{Pattern: &wrapper.Script{
				ItemTag: "h3",
				Fields: []wrapper.Field{
					{Label: "Make", Attr: "Make"},
					{Label: "Price", Attr: "Price", Money: true},
				},
			}}),
		),
	}
	rel, _, err := expr.Execute(server, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("records = %d\n%s", rel.Len(), rel)
	}
	p0, _ := rel.Get(rel.Tuples()[0], "Price")
	if p0.IntVal() != 3000 {
		t.Errorf("price = %v", p0)
	}
	// A page with no matching records is not a data page: navigation
	// fails rather than collecting garbage.
	empty := &Expression{
		Name:     "empty",
		StartURL: "http://" + host + "/",
		Schema:   relation.NewSchema("X"),
		Program:  tlogic.NewProgram(),
		Goal: Extract(ExtractSpec{Pattern: &wrapper.Script{
			Fields: []wrapper.Field{{Label: "Nothing", Attr: "X"}},
		}}),
	}
	if _, _, err := empty.Execute(server, nil); !errors.Is(err, ErrNavigationFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestBrowseStateAccessorsAndFirstForm(t *testing.T) {
	w := sites.BuildWorld()
	url := "http://" + sites.WWWheelsHost + "/"
	st, err := NewBrowseState(w.Server, url, relation.NewSchema("A"))
	if err != nil {
		t.Fatal(err)
	}
	if st.URL() != url {
		t.Errorf("URL = %q", st.URL())
	}
	if st.Doc() == nil || st.Doc().Find("form") == nil {
		t.Error("Doc should expose the parsed page")
	}
	// Submitting the page's first form (empty name selects it).
	expr := &Expression{
		Name:     "first",
		StartURL: url,
		Schema:   relation.NewSchema("Make", "Price"),
		Program:  tlogic.NewProgram(),
		Goal: tlogic.Seq(
			Submit("", FillConst("make", "dodge")),
			Extract(ExtractSpec{Columns: []Column{
				{Header: "Make", Attr: "Make"},
				{Header: "Price", Attr: "Price", Money: true},
			}}),
		),
	}
	rel, _, err := expr.Execute(w.Server, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Error("first-form submit collected nothing")
	}
}

func TestPatternSchemaMismatchIsHardError(t *testing.T) {
	// Pattern matching something but targeting a missing attribute must
	// surface as a hard error, not a silent skip.
	host := "labels.example"
	m := web.NewMux(host)
	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, `<html><body><p>X: 1</p></body></html>`), nil
	}))
	server := web.NewServer()
	server.Register(m)
	expr := &Expression{
		Name:     "badpattern",
		StartURL: "http://" + host + "/",
		Schema:   relation.NewSchema("A"),
		Program:  tlogic.NewProgram(),
		Goal: Extract(ExtractSpec{Pattern: &wrapper.Script{
			Fields: []wrapper.Field{{Label: "X", Attr: "NotInSchema"}},
		}}),
	}
	if _, _, err := expr.Execute(server, nil); err == nil {
		t.Error("expected schema error")
	}
}

func TestPageBudgetAbortsRunawayPagination(t *testing.T) {
	w := sites.BuildWorld()
	expr := newsdayExpression()
	expr.MaxPages = 4 // home + auto + f1-result + one data page, then stop
	_, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if !errors.Is(err, ErrPageBudget) {
		t.Fatalf("err = %v, want page-budget abort", err)
	}
	// A generous budget succeeds.
	expr.MaxPages = 100
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Error("no tuples under generous budget")
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	w := sites.BuildWorld()
	expr := newsdayExpression()
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after the third fetch: the navigation must abort with the
	// context error rather than backtrack into other branches.
	n := 0
	f := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if n++; n == 3 {
			cancel()
		}
		return w.Server.Fetch(req)
	})
	_, _, err := expr.ExecuteContext(ctx, f, map[string]string{"Make": "ford", "Model": "escort"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Pre-cancelled context fails on the start page.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := expr.ExecuteContext(ctx2, w.Server, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestStartPageFetchFailure(t *testing.T) {
	w := sites.BuildWorld()
	expr := &Expression{
		Name:     "ghost",
		StartURL: "http://nosuchhost.example/",
		Schema:   relation.NewSchema("A"),
		Program:  tlogic.NewProgram(),
		Goal:     tlogic.Empty{},
	}
	if _, _, err := expr.Execute(w.Server, nil); err == nil {
		t.Error("unknown host must error")
	}
}
