package navcalc

import (
	"context"
	"errors"
	"fmt"

	"webbase/internal/relation"
	"webbase/internal/tlogic"
	"webbase/internal/web"
)

// ErrNavigationFailed is returned when a navigation expression has no
// successful execution — the site's structure no longer matches the
// expression (the staleness condition Section 7's map maintenance
// discusses), or the inputs do not lead to any data.
var ErrNavigationFailed = errors.New("navcalc: navigation expression has no successful execution")

// Expression is an executable navigation expression: a Transaction F-logic
// goal plus the rule program it may call into, the URL the navigation
// starts from, and the schema of the tuples it collects.
type Expression struct {
	Name     string
	StartURL string
	// MaxPages caps the pages one execution may fetch (0 = unlimited) —
	// runaway protection against sites whose pagination never ends.
	MaxPages int
	// StartURLVar, when non-empty, names the input binding that supplies
	// the start URL at execution time, overriding StartURL. This is how
	// handles keyed on a URL attribute (newsdayCarFeatures(Url, ...)) jump
	// straight to a page deep inside a site.
	StartURLVar string
	Schema      relation.Schema
	Program     *tlogic.Program
	Goal        tlogic.Formula
}

// String renders the expression with its rules, the way Figure 4 prints
// the Newsday process.
func (e *Expression) String() string {
	return fmt.Sprintf("%s(%v) ← %s\n%s", e.Name, e.Schema, e.Goal, e.Program)
}

// ExecInfo reports what an execution did.
type ExecInfo struct {
	PathLength int // number of states the successful path passed through
	Tuples     int // tuples collected
}

// Execute runs the expression against the fetcher with the given input
// bindings (attribute name → value, e.g. {"Make": "ford"}) and returns the
// collected relation named name.
func (e *Expression) Execute(f web.Fetcher, inputs map[string]string) (*relation.Relation, *ExecInfo, error) {
	return e.ExecuteContext(context.Background(), f, inputs)
}

// ExecuteContext is Execute with cancellation: the navigation aborts at
// the next page load once ctx is done.
func (e *Expression) ExecuteContext(ctx context.Context, f web.Fetcher, inputs map[string]string) (*relation.Relation, *ExecInfo, error) {
	start := e.StartURL
	if e.StartURLVar != "" {
		v, ok := inputs[e.StartURLVar]
		if !ok || v == "" {
			return nil, nil, fmt.Errorf("%w: %s requires input %q for its start URL",
				ErrNavigationFailed, e.Name, e.StartURLVar)
		}
		start = v
	}
	st, err := NewBrowseStateContext(ctx, f, start, e.Schema, e.MaxPages)
	if err != nil {
		return nil, nil, fmt.Errorf("navcalc: fetching start page of %s: %w", e.Name, err)
	}
	env := tlogic.Env{}
	for k, v := range inputs {
		env = env.With(k, v)
	}
	in := &tlogic.Interp{Program: e.Program}
	out, path, ok, err := in.Run(e.Goal, st, env)
	if err != nil {
		return nil, nil, fmt.Errorf("navcalc: executing %s: %w", e.Name, err)
	}
	if !ok {
		// Navigation within one execution is sequential, so the recorded
		// failure is schedule-independent; wrapping it preserves the error
		// taxonomy (IsOutage/FailingHost) through the backtracking.
		if last := st.lastNavError(); last != nil {
			return nil, nil, fmt.Errorf("%w: %s: last navigation failure: %w",
				ErrNavigationFailed, e.Name, last)
		}
		// Every fetch succeeded, yet the expression had no successful
		// execution. If the failure's evidence is structural — a mapped
		// link, form, field or data table missing from a page we actually
		// received — and no branch failed merely for lack of an input
		// binding, the site has drifted from its map: classify as drift,
		// attributed to the start host, so the health tracker can
		// quarantine and remap it.
		if st.budget.sawStructural && !st.budget.sawInputShortfall {
			return nil, nil, web.MarkDrift(&web.HostError{
				Host: web.HostOf(start),
				Err: fmt.Errorf("%w: %s: site answered but its pages no longer match the navigation map",
					ErrNavigationFailed, e.Name),
			})
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrNavigationFailed, e.Name)
	}
	final := out.State.(*BrowseState)
	rel := final.Relation(e.Name)
	return rel, &ExecInfo{PathLength: len(path), Tuples: rel.Len()}, nil
}

// CollectLoop builds the canonical pagination idiom of Figure 2: a rule
// named ruleName that extracts the current page and then either follows
// the named link (typically "More") and recurses, or stops.
//
//	ruleName ← extract ⊗ (follow(link) ⊗ ruleName ∨ ε)
func CollectLoop(program *tlogic.Program, ruleName string, spec ExtractSpec, moreLink string) tlogic.Formula {
	program.Define(ruleName, tlogic.Seq(
		Extract(spec),
		tlogic.Choice{
			Left:  tlogic.Seq(Follow(moreLink), tlogic.Call{Rule: ruleName}),
			Right: tlogic.Empty{},
		},
	))
	return tlogic.Call{Rule: ruleName}
}
