// Package navcalc implements the paper's navigation calculus (Section 4):
// the subset of serial-Horn Transaction F-logic used to encode navigation
// processes, together with an interpreter that executes navigation
// expressions against a Web fetcher and collects relational tuples.
//
// The object half (package flogic) models each fetched page as the common
// WWW data structures of Figure 3 — web_page, link, form, attrValPair and
// the action classes. The process half (package tlogic) sequences the
// primitive actions: following links, submitting forms, and extracting
// tuples from data pages.
package navcalc

import (
	"context"
	"errors"
	"fmt"

	"webbase/internal/flogic"
	"webbase/internal/htmlkit"
	"webbase/internal/relation"
	"webbase/internal/tlogic"
	"webbase/internal/trace"
	"webbase/internal/web"
)

// pageBudget caps and counts the pages one navigation execution may
// fetch. It is shared (not cloned) across the execution's states:
// backtracking does not refund fetches that actually happened.
type pageBudget struct {
	fetched int
	max     int // 0 = unlimited
	// lastErr remembers the most recent soft navigation failure (a dead
	// link or rejected submission the calculus backtracked over). When the
	// whole expression ends up with no successful execution, this is the
	// best available cause — and it keeps the error taxonomy intact: a
	// navigation that kept hitting an Outage-classified fetch failure
	// stays recognizable as an outage instead of collapsing into a bare
	// "no successful execution".
	lastErr error
	// Drift evidence, recorded by the primitive actions as they fail
	// softly. sawStructural: a map-expected link, form, fill field or
	// data table was absent from a successfully fetched page — the
	// signature of a site redesign. sawInputShortfall: a branch failed
	// because the invocation supplied no binding for a variable the map
	// needs, which says nothing about the site. A failed execution is
	// classified as drift only on structural evidence with no input
	// shortfall, so under-bound handle invocations against healthy sites
	// never look like redesigns.
	sawStructural     bool
	sawInputShortfall bool
}

// noteStructural records that a successfully fetched page was missing a
// link, form, field or table the navigation map expects.
func (p *pageBudget) noteStructural() { p.sawStructural = true }

// noteInputShortfall records that a branch failed for lack of an input
// binding rather than because of anything the site served.
func (p *pageBudget) noteInputShortfall() { p.sawInputShortfall = true }

// ErrPageBudget is returned when a navigation exceeds its page budget —
// the runaway protection a webbase needs on live sites whose pagination
// may never end.
var ErrPageBudget = errors.New("navcalc: page budget exceeded")

// BrowseState is the database state of a navigation execution: the current
// page (both parsed and as F-logic objects), the fetcher used to move, and
// the tuples collected so far. It implements tlogic.State.
type BrowseState struct {
	ctx     context.Context
	fetcher web.Fetcher
	budget  *pageBudget // shared across clones
	url     string
	doc     *htmlkit.Node // parsed page; immutable once built
	store   *flogic.Store // F-logic view of the page; immutable once built
	pageID  flogic.OID

	schema    relation.Schema
	collected []relation.Tuple
}

// NewBrowseState fetches startURL and returns the initial state of a
// navigation whose extracted tuples will have the given schema.
func NewBrowseState(f web.Fetcher, startURL string, schema relation.Schema) (*BrowseState, error) {
	return NewBrowseStateContext(context.Background(), f, startURL, schema, 0)
}

// NewBrowseStateContext is NewBrowseState with cancellation and a page
// budget (0 = unlimited).
func NewBrowseStateContext(ctx context.Context, f web.Fetcher, startURL string,
	schema relation.Schema, maxPages int) (*BrowseState, error) {
	st := &BrowseState{
		ctx:     ctx,
		fetcher: f,
		budget:  &pageBudget{max: maxPages},
		schema:  schema,
	}
	if err := st.load(web.NewGet(startURL)); err != nil {
		return nil, err
	}
	return st, nil
}

// load fetches req and replaces the current page. A non-success status is
// reported as an error; callers that want soft failure check first.
// Cancellation and budget exhaustion are hard errors: they must abort the
// whole execution rather than trigger backtracking into other branches
// (which would fetch even more).
func (b *BrowseState) load(req *web.Request) error {
	if err := b.ctx.Err(); err != nil {
		return fmt.Errorf("navcalc: navigation cancelled: %w", err)
	}
	if b.budget.max > 0 && b.budget.fetched >= b.budget.max {
		return fmt.Errorf("%w (%d pages)", ErrPageBudget, b.budget.fetched)
	}
	b.budget.fetched++
	// One trace span per page load, created here — navigation within a
	// handle invocation is sequential, so fetch spans land in deterministic
	// order. The navigation context always rides the request (the retry,
	// breaker and outage-memo middlewares consult it for cancellation and
	// per-query state); the span is added to it when tracing is on so the
	// middleware stack can annotate how the load was served (cache /
	// network / dedup / stale).
	rctx := b.ctx
	sp := trace.Start(b.ctx, trace.KindFetch, req.URL)
	if sp != nil {
		rctx = trace.ContextWith(b.ctx, sp)
	}
	req = req.WithContext(rctx)
	resp, err := b.fetcher.Fetch(req)
	if err != nil {
		sp.EndErr(err)
		return err
	}
	sp.Add("bytes", int64(len(resp.Body)))
	if !resp.OK() {
		sp.EndErr(fmt.Errorf("status %d", resp.Status))
		// The site answered; the answer just wasn't a success. Classified
		// as SiteAnswer so upper layers don't mistake a 404 for an outage.
		return web.MarkSiteAnswer(fmt.Errorf("navcalc: %s returned status %d", req.URL, resp.Status))
	}
	sp.End()
	b.url = resp.URL
	b.doc = htmlkit.Parse(resp.Body)
	b.store, b.pageID = PageToObjects(b.doc, b.url)
	return nil
}

// Clone implements tlogic.State. The page document and object store are
// immutable after construction and therefore shared; the collected-tuple
// list is copied so that backtracking discards a failed branch's
// extractions.
func (b *BrowseState) Clone() tlogic.State {
	nb := *b
	nb.collected = append([]relation.Tuple(nil), b.collected...)
	return &nb
}

// URL returns the current page's URL.
func (b *BrowseState) URL() string { return b.url }

// Doc returns the parsed current page.
func (b *BrowseState) Doc() *htmlkit.Node { return b.doc }

// Store returns the F-logic object view of the current page.
func (b *BrowseState) Store() *flogic.Store { return b.store }

// PageID returns the OID of the current page object in Store.
func (b *BrowseState) PageID() flogic.OID { return b.pageID }

// Collected returns the tuples extracted so far.
func (b *BrowseState) Collected() []relation.Tuple { return b.collected }

// Relation materializes the collected tuples as a relation over the
// navigation's schema.
func (b *BrowseState) Relation(name string) *relation.Relation {
	r := relation.New(name, b.schema)
	for _, t := range b.collected {
		// Tuples were built against the same schema; Insert re-checks.
		if err := r.Insert(t); err != nil {
			panic(fmt.Sprintf("navcalc: collected tuple does not match schema: %v", err))
		}
	}
	return r
}

// navigate returns a successor state on the page reached by req, carrying
// the collected tuples forward.
func (b *BrowseState) navigate(req *web.Request) (*BrowseState, error) {
	nb := b.Clone().(*BrowseState)
	if err := nb.load(req); err != nil {
		b.budget.lastErr = err
		return nil, err
	}
	return nb, nil
}

// lastNavError returns the most recent navigation failure this execution
// backtracked over, or nil.
func (b *BrowseState) lastNavError() error { return b.budget.lastErr }

// DeclareWWWSignatures registers the Figure 3 class signatures on a store.
func DeclareWWWSignatures(st *flogic.Store) {
	st.DeclareClass(&flogic.Signature{Class: "web_page", Attrs: []flogic.AttrSig{
		{Name: "address", Type: "string"},
		{Name: "title", Type: "string"},
		{Name: "contents", Type: "string"},
		{Name: "actions", SetValued: true, Type: "action"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "data_page", Attrs: []flogic.AttrSig{
		{Name: "extract", Type: "string"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "action", Attrs: []flogic.AttrSig{
		{Name: "source", Type: "web_page"},
		{Name: "targets", SetValued: true, Type: "string"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "follow_link", Attrs: []flogic.AttrSig{
		{Name: "object", Type: "link"},
		{Name: "source", Type: "web_page"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "submit_form", Attrs: []flogic.AttrSig{
		{Name: "object", Type: "form"},
		{Name: "source", Type: "web_page"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "link", Attrs: []flogic.AttrSig{
		{Name: "name", Type: "string"},
		{Name: "address", Type: "string"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "form", Attrs: []flogic.AttrSig{
		{Name: "name", Type: "string"},
		{Name: "cgi", Type: "string"},
		{Name: "method", Type: "string"},
		{Name: "mandatory", SetValued: true, Type: "attrValPair"},
		{Name: "optional", SetValued: true, Type: "attrValPair"},
		{Name: "state", SetValued: true, Type: "attrValPair"},
	}})
	st.DeclareClass(&flogic.Signature{Class: "attrValPair", Attrs: []flogic.AttrSig{
		{Name: "attrName", Type: "string"},
		{Name: "type", Type: "string"},
		{Name: "default", Type: "string"},
		{Name: "domain", SetValued: true, Type: "string"},
		{Name: "maxLength", Type: "int"},
	}})
	st.DeclareSubclass("follow_link", "action")
	st.DeclareSubclass("submit_form", "action")
	st.DeclareSubclass("data_page", "web_page")
}

// PageToObjects parses a page into its F-logic object representation per
// Figure 3: one web_page object whose set-valued actions attribute holds a
// follow_link object per hyperlink and a submit_form object per form, with
// link, form and attrValPair objects beneath them. The returned OID names
// the page object.
//
// This is the representation the map builder records (Section 7 reports
// "85 objects with over 600 attributes" for Newsday's map) and the one the
// calculus' guards query.
func PageToObjects(doc *htmlkit.Node, pageURL string) (*flogic.Store, flogic.OID) {
	st := flogic.NewStore()
	DeclareWWWSignatures(st)

	pageID := flogic.OID("page")
	st.AddClass(pageID, "web_page")
	st.SetAttr(pageID, "address", flogic.S(pageURL))
	st.SetAttr(pageID, "title", flogic.S(htmlkit.Title(doc)))

	for i, l := range htmlkit.Links(doc, pageURL) {
		linkID := flogic.OID(fmt.Sprintf("link%02d", i))
		st.AddClass(linkID, "link")
		st.SetAttr(linkID, "name", flogic.S(l.Name))
		st.SetAttr(linkID, "address", flogic.S(l.Address))

		actID := flogic.OID(fmt.Sprintf("follow%02d", i))
		st.AddClass(actID, "follow_link")
		st.SetAttr(actID, "object", flogic.R(linkID))
		st.SetAttr(actID, "source", flogic.R(pageID))
		st.AddAttr(pageID, "actions", flogic.R(actID))
	}

	for i, f := range htmlkit.Forms(doc, pageURL) {
		formID := flogic.OID(fmt.Sprintf("form%02d", i))
		st.AddClass(formID, "form")
		st.SetAttr(formID, "name", flogic.S(f.Name))
		st.SetAttr(formID, "cgi", flogic.S(f.Action))
		st.SetAttr(formID, "method", flogic.S(f.Method))
		for j, fl := range f.Fields {
			avID := flogic.OID(fmt.Sprintf("attr%02d_%02d", i, j))
			st.AddClass(avID, "attrValPair")
			st.SetAttr(avID, "attrName", flogic.S(fl.Name))
			st.SetAttr(avID, "type", flogic.S(string(fl.Widget)))
			if fl.Default != "" {
				st.SetAttr(avID, "default", flogic.S(fl.Default))
			}
			if fl.MaxLength > 0 {
				st.SetAttr(avID, "maxLength", flogic.I(int64(fl.MaxLength)))
			}
			for _, d := range fl.Domain {
				st.AddAttr(avID, "domain", flogic.S(d))
			}
			if fl.Mandatory {
				st.AddAttr(formID, "mandatory", flogic.R(avID))
			} else if fl.Widget != htmlkit.WidgetSubmit {
				st.AddAttr(formID, "optional", flogic.R(avID))
			}
		}

		actID := flogic.OID(fmt.Sprintf("submit%02d", i))
		st.AddClass(actID, "submit_form")
		st.SetAttr(actID, "object", flogic.R(formID))
		st.SetAttr(actID, "source", flogic.R(pageID))
		st.AddAttr(pageID, "actions", flogic.R(actID))
	}

	// A page carrying at least one data table is also a data_page.
	if len(doc.FindAll("table")) > 0 {
		st.AddClass(pageID, "data_page")
		st.SetAttr(pageID, "extract", flogic.S("table"))
	}
	return st, pageID
}
