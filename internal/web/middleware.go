package web

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"webbase/internal/trace"
)

// Stats accumulates fetch statistics. It is safe for concurrent use and is
// how the experiment harness reports the paper's "# of pages" column.
type Stats struct {
	pages   atomic.Int64
	bytes   atomic.Int64
	virtual atomic.Int64 // accumulated simulated latency, nanoseconds
	// Concurrency counters, maintained by WithSingleflight and
	// WithHostLimit.
	deduped      atomic.Int64
	inflight     atomic.Int64
	peakInflight atomic.Int64
	limiterWait  atomic.Int64 // accumulated time spent waiting for host slots, ns
	retries      atomic.Int64 // failed attempts that WithRetry re-issued
	// breakerRejects counts fetches the circuit breaker refused without
	// touching the network.
	breakerRejects atomic.Int64
	// Overload-protection counters, maintained by WithHedge, WithBulkhead
	// and WithDeadlineBudget.
	hedges           atomic.Int64
	hedgeWins        atomic.Int64
	hedgesSuppressed atomic.Int64
	bulkheadSheds    atomic.Int64
	budgetSheds      atomic.Int64
	mu               sync.Mutex
	perHost          map[string]int64
}

// Pages returns the number of successful fetches observed.
func (s *Stats) Pages() int64 { return s.pages.Load() }

// Bytes returns the total body bytes fetched.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// SimulatedLatency returns the total simulated network latency accumulated
// by latency fetchers sharing this Stats, whether or not they actually
// slept.
func (s *Stats) SimulatedLatency() time.Duration {
	return time.Duration(s.virtual.Load())
}

// Deduped returns how many fetches were collapsed onto an identical
// in-flight request by WithSingleflight (each counted fetch got its answer
// without touching the network).
func (s *Stats) Deduped() int64 { return s.deduped.Load() }

// PeakInFlight returns the high-water mark of concurrently executing
// fetches observed by WithHostLimit — how parallel the fetch stack
// actually ran.
func (s *Stats) PeakInFlight() int64 { return s.peakInflight.Load() }

// LimiterWait returns the total time fetches spent queued behind the
// per-host concurrency cap of WithHostLimit.
func (s *Stats) LimiterWait() time.Duration {
	return time.Duration(s.limiterWait.Load())
}

// Retries returns how many failed fetch attempts WithRetry re-issued.
func (s *Stats) Retries() int64 { return s.retries.Load() }

// BreakerRejects returns how many fetches an open circuit breaker
// rejected without touching the network.
func (s *Stats) BreakerRejects() int64 { return s.breakerRejects.Load() }

// Hedges returns how many fetches WithHedge backed with a second
// attempt because the first had not answered within the hedge delay.
func (s *Stats) Hedges() int64 { return s.hedges.Load() }

// HedgeWins returns how many hedged fetches were answered by the second
// attempt rather than the first.
func (s *Stats) HedgeWins() int64 { return s.hedgeWins.Load() }

// HedgesSuppressed returns how many hedges WithHedge declined to issue
// because the query's hedge budget was dry.
func (s *Stats) HedgesSuppressed() int64 { return s.hedgesSuppressed.Load() }

// BulkheadSheds returns how many fetches a saturated host bulkhead shed
// without queueing.
func (s *Stats) BulkheadSheds() int64 { return s.bulkheadSheds.Load() }

// BudgetSheds returns how many fetches were refused because their
// evaluation unit's deadline budget was exhausted.
func (s *Stats) BudgetSheds() int64 { return s.budgetSheds.Load() }

// PerHost returns a copy of the per-host page counts.
func (s *Stats) PerHost() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.perHost))
	for h, n := range s.perHost {
		out[h] = n
	}
	return out
}

func (s *Stats) record(req *Request, resp *Response) {
	s.pages.Add(1)
	if resp != nil {
		s.bytes.Add(int64(len(resp.Body)))
	}
	host := hostOf(req.URL)
	s.mu.Lock()
	if s.perHost == nil {
		s.perHost = make(map[string]int64)
	}
	s.perHost[host]++
	s.mu.Unlock()
}

// HostOf returns the host part of a URL as the per-host statistics and
// the host limiter see it.
func HostOf(rawurl string) string { return hostOf(rawurl) }

func hostOf(rawurl string) string {
	// Cheap host extraction; URLs in the simulator are well-formed.
	const scheme = "://"
	i := indexOf(rawurl, scheme)
	if i < 0 {
		return rawurl
	}
	rest := rawurl[i+len(scheme):]
	for j := 0; j < len(rest); j++ {
		if rest[j] == '/' || rest[j] == '?' {
			return rest[:j]
		}
	}
	return rest
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Counting wraps inner so that every fetch is recorded in stats. A fetch
// that reaches this layer touched the network (the cache and singleflight
// sit above), so the request's trace span — when one rides the request
// context — is marked outcome=network.
func Counting(inner Fetcher, stats *Stats) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		resp, err := inner.Fetch(req)
		if err == nil {
			stats.record(req, resp)
			trace.FromContext(req.Context()).Label("outcome", "network")
		}
		return resp, err
	})
}

// LatencyModel describes deterministic simulated network latency:
// PerRequest is charged per fetch and PerKB per 1024 body bytes. Jitter
// adds a per-URL deterministic extra in [0, Jitter) derived from a hash of
// the URL, so runs are reproducible but sites are not uniform.
type LatencyModel struct {
	PerRequest time.Duration
	PerKB      time.Duration
	Jitter     time.Duration
	// Sleep controls whether the fetcher actually sleeps (true: elapsed
	// time in benchmarks reflects the model) or only accounts virtual time
	// in Stats (false: fast tests).
	Sleep bool
}

// Latency returns the deterministic delay the model assigns to a fetch of
// the given URL returning n body bytes.
func (m LatencyModel) Latency(rawurl string, n int) time.Duration {
	d := m.PerRequest + m.PerKB*time.Duration(n/1024)
	if m.Jitter > 0 {
		h := fnv.New32a()
		h.Write([]byte(rawurl))
		d += time.Duration(uint64(h.Sum32()) % uint64(m.Jitter))
	}
	return d
}

// WithLatency wraps inner with the latency model, accumulating simulated
// latency into stats (which may be shared with Counting).
func WithLatency(inner Fetcher, model LatencyModel, stats *Stats) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		resp, err := inner.Fetch(req)
		if err != nil {
			return resp, err
		}
		d := model.Latency(req.URL, len(resp.Body))
		stats.virtual.Add(int64(d))
		trace.FromContext(req.Context()).Label("simulated-latency", d.String())
		if model.Sleep {
			time.Sleep(d)
		}
		return resp, err
	})
}

// Cache is a concurrency-safe page cache keyed by the full request key.
// The paper's Section 7 observes that caching is one of the techniques
// needed for acceptable response time when querying many sites.
//
// Entries carry their fetch timestamp. With MaxAge set, an entry older
// than MaxAge no longer satisfies a fetch — but it is kept, and when
// AllowStale is on it is served as a last resort if the network path
// fails ("Maintaining Consistency of Data on the Web": possibly-stale
// content beats no content when the source is unreachable). MaxAge,
// AllowStale and Clock are configuration: set them before the cache is
// used, not concurrently with fetching.
type Cache struct {
	// MaxAge bounds how long an entry satisfies a fetch outright.
	// 0 means entries never expire (the historical behavior).
	MaxAge time.Duration
	// AllowStale serves an expired entry when the wrapped fetch fails
	// (stale-on-error). The serve is labeled outcome=stale on the trace
	// span and counted in Stale.
	AllowStale bool
	// Clock supplies entry timestamps; nil means time.Now.
	Clock func() time.Time
	// Tier, when non-nil, is a second cache tier strictly below this one
	// (typically disk-backed): misses consult it before the network, fills
	// write through to it, and Clear invalidates it. Like MaxAge it is
	// configuration — set before the cache is used.
	Tier CacheTier

	mu      sync.RWMutex
	entries map[string]*cacheEntry
	gen     uint64 // bumped by Clear; fills from older generations are dropped
	hits    atomic.Int64
	misses  atomic.Int64
	stale   atomic.Int64
	// tierHits counts misses answered by the second tier instead of the
	// network. Tier hits also count as Hits: above this layer they are
	// indistinguishable from memory hits.
	tierHits atomic.Int64
}

// CacheTier is a second cache tier below Cache — the seam the durable
// store plugs into without this package importing it. Implementations
// must be safe for concurrent use. Load returns the page and its original
// fetch time (freshness is judged by the same MaxAge as memory entries);
// any internal failure is reported as a plain miss. Store and Invalidate
// are called while the Cache holds its own lock, so a tier observes
// fills and invalidations in a consistent order; they must not call back
// into the Cache.
type CacheTier interface {
	Load(key string) (*Response, time.Time, bool)
	Store(key string, resp *Response, fetchedAt time.Time)
	Invalidate()
}

// cacheEntry is a cached response stamped with when it was fetched.
type cacheEntry struct {
	resp      *Response
	fetchedAt time.Time
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Hits returns the number of cache hits served.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of fetches that went to the network.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Stale returns the number of expired entries served because the network
// path failed (stale-on-error).
func (c *Cache) Stale() int64 { return c.stale.Load() }

// TierHits returns the number of misses answered by the second tier
// instead of the network (also counted in Hits).
func (c *Cache) TierHits() int64 { return c.tierHits.Load() }

// Generation reports how many times the cache has been cleared. Each
// Clear invalidates every page the system had seen, so the generation is
// a cheap staleness guard: two observations under the same generation
// were answered from the same set of pages (a resumed query stream uses
// this to refuse splicing answers from two different webs).
func (c *Cache) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Len returns the number of cached responses.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Clear empties the cache (e.g. when the map builder detects site change)
// and invalidates in-flight fills: a response that started fetching
// before the Clear will not be stored, so a deliberately-dropped page
// cannot resurrect itself mid-flight.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.gen++
	// Invalidate the lower tier under the same lock: a fill racing this
	// Clear either committed before it (and is now invalid in both tiers)
	// or will fail the generation check and store nowhere.
	if c.Tier != nil {
		c.Tier.Invalidate()
	}
}

func (c *Cache) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// WithCache wraps inner with the cache. Responses are cached by full
// request key, so identical form submissions hit too — dynamic pages for
// the same inputs are assumed stable within a query session.
func WithCache(inner Fetcher, cache *Cache) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		key := req.Key()
		cache.mu.RLock()
		e := cache.entries[key]
		gen := cache.gen
		cache.mu.RUnlock()
		now := cache.now()
		if e != nil && (cache.MaxAge <= 0 || now.Sub(e.fetchedAt) <= cache.MaxAge) {
			cache.hits.Add(1)
			trace.FromContext(req.Context()).Label("outcome", "cache")
			return e.resp, nil
		}
		// Memory miss: consult the lower tier before the network. A tier
		// entry is judged by the same freshness rule; a fresh one is
		// promoted into memory (under the generation check, so a racing
		// Clear still wins) and served as a hit. An expired one stands in
		// for an expired memory entry: kept for stale-on-error below.
		if e == nil && cache.Tier != nil {
			if resp, fetchedAt, ok := cache.Tier.Load(key); ok {
				te := &cacheEntry{resp: resp, fetchedAt: fetchedAt}
				cache.mu.Lock()
				if cache.gen == gen {
					cache.entries[key] = te
				}
				cache.mu.Unlock()
				if cache.MaxAge <= 0 || now.Sub(fetchedAt) <= cache.MaxAge {
					cache.hits.Add(1)
					cache.tierHits.Add(1)
					trace.FromContext(req.Context()).Label("outcome", "cache")
					return resp, nil
				}
				e = te
			}
		}
		resp, err := inner.Fetch(req)
		if err != nil {
			// Stale-on-error: the site is unreachable but we still hold
			// its last answer. Cancellation is the caller's choice, not
			// the site's failure — never paper over it with stale data.
			if e != nil && cache.AllowStale &&
				!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				cache.stale.Add(1)
				sp := trace.FromContext(req.Context())
				sp.Label("outcome", "stale")
				sp.Label("stale-age", now.Sub(e.fetchedAt).String())
				return e.resp, nil
			}
			return nil, err
		}
		cache.misses.Add(1)
		cache.mu.Lock()
		// Drop fills that began under an older generation: Clear() was
		// called while this fetch was in flight, so the response may be
		// exactly the page the clear meant to discard. The tier write-through
		// happens inside the same guarded section: a dropped fill must not
		// reach disk either, or it would resurrect at the next restart.
		if cache.gen == gen {
			fetchedAt := cache.now()
			cache.entries[key] = &cacheEntry{resp: resp, fetchedAt: fetchedAt}
			if cache.Tier != nil {
				cache.Tier.Store(key, resp, fetchedAt)
			}
		}
		cache.mu.Unlock()
		return resp, nil
	})
}
