package web

import (
	"context"
	"time"

	"webbase/internal/trace"
)

type hedgeBudgetKey struct{}

// ContextWithHedgeBudget attaches a per-query hedge budget consulted by
// WithHedge. It reuses the RetryBudget mechanism: each hedged (second)
// attempt consumes one unit, and when the budget runs dry the fetch waits
// for its primary attempt instead of issuing a hedge — so a query over a
// slow site amplifies load by at most the budget, not by its fetch count.
func ContextWithHedgeBudget(ctx context.Context, b *RetryBudget) context.Context {
	return context.WithValue(ctx, hedgeBudgetKey{}, b)
}

func hedgeBudgetFrom(ctx context.Context) *RetryBudget {
	b, _ := ctx.Value(hedgeBudgetKey{}).(*RetryBudget)
	return b
}

// WithHedge wraps inner with hedged requests: when a fetch has not
// answered after the configured delay, a second identical attempt is
// issued and the first success wins ("The Tail at Scale": a small
// percentage of duplicated work buys a large cut of tail latency).
//
// Placement: below the singleflight and the outage memo, above the
// breaker. The singleflight guarantees at most one logical fetch per
// request key is in flight, so the hedge duplicates network attempts,
// never logical work, and every follower shares whichever attempt won.
//
// Determinism: the simulated web is deterministic per request key, so
// both attempts carry identical bytes and it does not matter which one
// wins. When both fail, the PRIMARY attempt's error is returned whatever
// order the two failures arrived in, so error text, host attribution and
// the resulting degradation report are schedule-independent. The losing
// attempt is not cancelled — its pages land in volatile stats only.
func WithHedge(inner Fetcher, after time.Duration, stats *Stats) Fetcher {
	if after <= 0 {
		return inner
	}
	return FetcherFunc(func(req *Request) (*Response, error) {
		ctx := req.Context()
		type attempt struct {
			resp  *Response
			err   error
			hedge bool
		}
		// Buffered so the losing attempt's goroutine never leaks blocked.
		results := make(chan attempt, 2)
		launch := func(hedge bool) {
			go func() {
				resp, err := inner.Fetch(req)
				results <- attempt{resp: resp, err: err, hedge: hedge}
			}()
		}
		launch(false)
		timer := time.NewTimer(after)
		defer timer.Stop()
		select {
		case a := <-results:
			return a.resp, a.err // primary answered within the hedge delay
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
		}
		if !hedgeBudgetFrom(ctx).take() {
			// Budget dry: no second attempt. Waiting on the primary keeps
			// the outcome identical to an unhedged fetch, so suppression
			// never changes what a query answers — only its tail latency.
			if stats != nil {
				stats.hedgesSuppressed.Add(1)
			}
			trace.FromContext(ctx).Label("hedge", "suppressed")
			select {
			case a := <-results:
				return a.resp, a.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if stats != nil {
			stats.hedges.Add(1)
		}
		trace.FromContext(ctx).Label("hedged", "true")
		launch(true)
		var primaryErr error
		for seen := 0; seen < 2; seen++ {
			select {
			case a := <-results:
				if a.err == nil {
					if a.hedge {
						if stats != nil {
							stats.hedgeWins.Add(1)
						}
						trace.FromContext(ctx).Label("hedge", "win")
					}
					return a.resp, nil
				}
				if !a.hedge {
					primaryErr = a.err
				}
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Both attempts failed: surface the primary's error so the
		// failure a query reports does not depend on which attempt lost
		// the race.
		return nil, primaryErr
	})
}
