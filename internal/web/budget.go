package web

import (
	"context"
	"errors"
	"time"

	"webbase/internal/trace"
)

// This file implements deadline budgets: per-evaluation-unit time bounds
// that let an overloaded query degrade instead of running forever. A
// Budget is minted per maximal object (the UR layer owns that boundary)
// and checked — never awaited — at the points where new work would
// start: before a fetch and before a dependent-join invocation. Work
// already in flight is allowed to finish; the budget only refuses to
// begin more.
//
// Budgets deliberately do not ride context.WithDeadline. A context
// deadline aborts in-flight work with an unclassified DeadlineExceeded
// that the taxonomy must not touch (cancellation is the caller's
// choice), and it would also leak one object's deadline to singleflight
// followers evaluating a different object. A check-only budget instead
// produces an ordinary outage-classified error at a deterministic
// boundary, so exhaustion flows through the exact degradation path PR 3
// built for dead sites.

// ErrBudgetExhausted is the cause recorded when a deadline budget
// refuses to start more work. Match with errors.Is (or
// IsBudgetExhausted); the surrounding error is outage-classified so the
// UR layer degrades the owning object.
var ErrBudgetExhausted = errors.New("web: deadline budget exhausted")

// IsBudgetExhausted reports whether err is a budget-exhaustion shed.
func IsBudgetExhausted(err error) bool { return errors.Is(err, ErrBudgetExhausted) }

// Budget is one evaluation unit's deadline budget. A nil *Budget is
// valid and never exhausted, so callers can check unconditionally.
type Budget struct {
	deadline time.Time
	clock    func() time.Time
}

// NewBudget returns a budget that exhausts d from now on the given
// clock (nil clock means time.Now). A non-positive d returns nil — no
// budget, never exhausted.
func NewBudget(d time.Duration, clock func() time.Time) *Budget {
	if d <= 0 {
		return nil
	}
	if clock == nil {
		clock = time.Now
	}
	return &Budget{deadline: clock().Add(d), clock: clock}
}

// Exhausted reports whether the budget's deadline has passed.
func (b *Budget) Exhausted() bool {
	if b == nil {
		return false
	}
	return !b.clock().Before(b.deadline)
}

// BudgetPolicy mints budgets. The core layer puts one on the query
// context; the UR layer calls NewBudget once per maximal object so each
// object's clock starts at its own evaluation, not at query start —
// sequential evaluation would otherwise burn the later objects' budgets
// while the earlier ones run, making Workers=1 degrade differently from
// Workers=8.
type BudgetPolicy struct {
	// Deadline is the per-object budget; 0 disables budgets.
	Deadline time.Duration
	// Clock supplies budget timestamps; nil means time.Now.
	Clock func() time.Time
}

// NewBudget mints a budget under the policy (nil when disabled).
func (p BudgetPolicy) NewBudget() *Budget { return NewBudget(p.Deadline, p.Clock) }

type budgetPolicyKey struct{}
type budgetKey struct{}

// ContextWithBudgetPolicy attaches the minting policy to ctx.
func ContextWithBudgetPolicy(ctx context.Context, p BudgetPolicy) context.Context {
	return context.WithValue(ctx, budgetPolicyKey{}, p)
}

// BudgetPolicyFrom returns the policy on ctx (zero policy if none).
func BudgetPolicyFrom(ctx context.Context) BudgetPolicy {
	if p, ok := ctx.Value(budgetPolicyKey{}).(BudgetPolicy); ok {
		return p
	}
	return BudgetPolicy{}
}

// ContextWithBudget attaches an evaluation unit's budget to ctx.
func ContextWithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the budget riding ctx, or nil (never exhausted).
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// budgetErr builds the shed error for a unit of work refused because
// its budget ran out. The message is static — no durations — because
// degradation reports must be byte-identical across schedules.
func budgetErr(host string) error {
	return MarkOutage(&HostError{Host: host, Err: ErrBudgetExhausted})
}

// WithDeadlineBudget refuses to start a fetch whose context carries an
// exhausted budget. It must be the OUTERMOST middleware: the shed is a
// per-caller verdict about this object's remaining time, and placing it
// above the cache/singleflight/memo keeps budget sheds out of every
// shared layer — a follower with time left still gets the page, and the
// outage memo never records "out of time" as a property of the site.
func WithDeadlineBudget(inner Fetcher, stats *Stats) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		if !BudgetFrom(req.Context()).Exhausted() {
			return inner.Fetch(req)
		}
		if stats != nil {
			stats.budgetSheds.Add(1)
		}
		trace.FromContext(req.Context()).Label("outcome", "budget-exhausted")
		return nil, budgetErr(hostOf(req.URL))
	})
}
