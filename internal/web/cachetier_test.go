package web

import (
	"sync"
	"testing"
	"time"
)

// fakeTier is an in-memory CacheTier double (the real disk tier lives in
// internal/store, which imports this package).
type fakeTier struct {
	mu          sync.Mutex
	entries     map[string]fakeTierEntry
	loads       int
	stores      int
	invalidates int
}

type fakeTierEntry struct {
	resp *Response
	at   time.Time
}

func newFakeTier() *fakeTier { return &fakeTier{entries: make(map[string]fakeTierEntry)} }

func (ft *fakeTier) Load(key string) (*Response, time.Time, bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.loads++
	e, ok := ft.entries[key]
	if !ok {
		return nil, time.Time{}, false
	}
	return e.resp, e.at, true
}

func (ft *fakeTier) Store(key string, resp *Response, at time.Time) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.stores++
	ft.entries[key] = fakeTierEntry{resp: resp, at: at}
}

func (ft *fakeTier) Invalidate() {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.invalidates++
	ft.entries = make(map[string]fakeTierEntry)
}

func (ft *fakeTier) len() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.entries)
}

// countingFetcher counts fetches through to a canned response.
type countingFetcher struct {
	mu    sync.Mutex
	calls int
}

func (cf *countingFetcher) Fetch(req *Request) (*Response, error) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	cf.calls++
	return HTML(req.URL, "network body"), nil
}

func (cf *countingFetcher) count() int {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.calls
}

func TestCacheTierWriteThroughAndServe(t *testing.T) {
	tier := newFakeTier()
	cache := NewCache()
	cache.Tier = tier
	net := &countingFetcher{}
	f := WithCache(net, cache)
	req := NewGet("http://a.test/page")

	// Miss both tiers: network fetch, write-through to the tier.
	if _, err := f.Fetch(req); err != nil {
		t.Fatal(err)
	}
	if net.count() != 1 || tier.stores != 1 {
		t.Fatalf("fill: network=%d tier-stores=%d, want 1/1", net.count(), tier.stores)
	}

	// A second cache over the same tier (a restarted process): the tier
	// answers, the network is not touched, and the hit counts as both a
	// hit and a tier hit.
	cache2 := NewCache()
	cache2.Tier = tier
	f2 := WithCache(net, cache2)
	resp, err := f2.Fetch(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "network body" {
		t.Fatalf("tier-served body = %q", resp.Body)
	}
	if net.count() != 1 {
		t.Fatalf("tier hit touched the network: %d fetches", net.count())
	}
	if cache2.Hits() != 1 || cache2.TierHits() != 1 {
		t.Fatalf("hits=%d tierHits=%d, want 1/1", cache2.Hits(), cache2.TierHits())
	}
	// Promotion: the page is now in memory; the next fetch does not even
	// consult the tier.
	loadsBefore := tier.loads
	if _, err := f2.Fetch(req); err != nil {
		t.Fatal(err)
	}
	if tier.loads != loadsBefore {
		t.Fatal("memory hit consulted the tier")
	}
	if cache2.TierHits() != 1 {
		t.Fatalf("memory hit counted as tier hit: %d", cache2.TierHits())
	}
}

func TestCacheClearInvalidatesTier(t *testing.T) {
	tier := newFakeTier()
	cache := NewCache()
	cache.Tier = tier
	f := WithCache(&countingFetcher{}, cache)
	if _, err := f.Fetch(NewGet("http://a.test/1")); err != nil {
		t.Fatal(err)
	}
	if tier.len() != 1 {
		t.Fatalf("tier holds %d entries before clear", tier.len())
	}
	cache.Clear()
	if tier.invalidates != 1 {
		t.Fatalf("Clear did not invalidate the tier: %d", tier.invalidates)
	}
	if tier.len() != 0 {
		t.Fatalf("tier still holds %d entries after clear", tier.len())
	}
}

// TestCacheTierExpiredEntryGoesToNetwork: a tier entry older than MaxAge
// does not satisfy a fetch — the network answers and refreshes both
// tiers — but it does stand in for stale-on-error when the site is down.
func TestCacheTierExpiredEntry(t *testing.T) {
	now := time.Unix(10_000, 0)
	clock := func() time.Time { return now }

	tier := newFakeTier()
	tier.Store(NewGet("http://a.test/p").Key(),
		HTML("http://a.test/p", "old body"), now.Add(-time.Hour))

	cache := NewCache()
	cache.Tier = tier
	cache.MaxAge = time.Minute
	cache.Clock = clock
	net := &countingFetcher{}
	f := WithCache(net, cache)

	resp, err := f.Fetch(NewGet("http://a.test/p"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "network body" || net.count() != 1 {
		t.Fatalf("expired tier entry served fresh: %q (net=%d)", resp.Body, net.count())
	}
	if cache.TierHits() != 0 {
		t.Fatalf("expired tier entry counted as hit")
	}

	// Same setup, but the network is down and stale-on-error is on: the
	// expired tier entry is the last answer standing.
	tier2 := newFakeTier()
	tier2.Store(NewGet("http://a.test/p").Key(),
		HTML("http://a.test/p", "old body"), now.Add(-time.Hour))
	cache2 := NewCache()
	cache2.Tier = tier2
	cache2.MaxAge = time.Minute
	cache2.AllowStale = true
	cache2.Clock = clock
	f2 := WithCache(FetcherFunc(func(req *Request) (*Response, error) {
		return nil, MarkOutage(&HostError{Host: "a.test", Err: ErrCircuitOpen})
	}), cache2)
	resp, err = f2.Fetch(NewGet("http://a.test/p"))
	if err != nil {
		t.Fatalf("stale-on-error from tier failed: %v", err)
	}
	if string(resp.Body) != "old body" {
		t.Fatalf("stale serve body = %q, want the tier's old body", resp.Body)
	}
	if cache2.Stale() != 1 {
		t.Fatalf("stale counter = %d, want 1", cache2.Stale())
	}
}
