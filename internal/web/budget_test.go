package web

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an advanceable clock safe for concurrent readers.
type fakeClock struct{ nanos atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.nanos.Store(time.Date(1998, 6, 1, 12, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

func TestBudgetExhaustion(t *testing.T) {
	clock := newFakeClock()
	b := NewBudget(100*time.Millisecond, clock.Now)
	if b.Exhausted() {
		t.Fatal("fresh budget already exhausted")
	}
	clock.Advance(99 * time.Millisecond)
	if b.Exhausted() {
		t.Fatal("budget exhausted before its deadline")
	}
	clock.Advance(time.Millisecond)
	if !b.Exhausted() {
		t.Fatal("budget not exhausted at its deadline")
	}
}

func TestBudgetNilSafety(t *testing.T) {
	var b *Budget
	if b.Exhausted() {
		t.Fatal("nil budget reported exhausted")
	}
	if NewBudget(0, nil) != nil {
		t.Fatal("zero deadline should yield a nil (unlimited) budget")
	}
	if got := BudgetFrom(context.Background()); got != nil {
		t.Fatalf("empty context carries budget %v", got)
	}
	if ctx := ContextWithBudget(context.Background(), nil); BudgetFrom(ctx) != nil {
		t.Fatal("attaching a nil budget should be a no-op")
	}
}

func TestBudgetPolicyMints(t *testing.T) {
	clock := newFakeClock()
	ctx := ContextWithBudgetPolicy(context.Background(), BudgetPolicy{Deadline: time.Second, Clock: clock.Now})
	b := BudgetPolicyFrom(ctx).NewBudget()
	if b == nil {
		t.Fatal("policy with a deadline minted no budget")
	}
	clock.Advance(2 * time.Second)
	if !b.Exhausted() {
		t.Fatal("minted budget ignores the policy clock")
	}
	// No policy → zero policy → nil budget.
	if BudgetPolicyFrom(context.Background()).NewBudget() != nil {
		t.Fatal("missing policy should mint no budget")
	}
}

func TestDeadlineBudgetMiddleware(t *testing.T) {
	var calls atomic.Int64
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		calls.Add(1)
		return HTML(req.URL, "<html></html>"), nil
	})
	stats := &Stats{}
	f := WithDeadlineBudget(inner, stats)

	// No budget on the context: passes through.
	if _, err := f.Fetch(NewGet("http://slow.example/p")); err != nil {
		t.Fatal(err)
	}
	// Healthy budget: passes through.
	clock := newFakeClock()
	b := NewBudget(100*time.Millisecond, clock.Now)
	ctx := ContextWithBudget(context.Background(), b)
	if _, err := f.Fetch(NewGet("http://slow.example/p").WithContext(ctx)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("inner fetched %d times, want 2", calls.Load())
	}
	// Exhausted budget: shed without touching inner.
	clock.Advance(time.Second)
	_, err := f.Fetch(NewGet("http://slow.example/p").WithContext(ctx))
	if err == nil {
		t.Fatal("exhausted budget did not shed the fetch")
	}
	if !IsBudgetExhausted(err) {
		t.Fatalf("shed error %v does not match ErrBudgetExhausted", err)
	}
	if !IsOutage(err) {
		t.Fatalf("shed error %v is not outage-classified (UR degradation depends on it)", err)
	}
	if host := FailingHost(err); host != "slow.example" {
		t.Fatalf("shed attributed to %q, want slow.example", host)
	}
	if calls.Load() != 2 {
		t.Fatalf("inner fetched %d times after the shed, want 2", calls.Load())
	}
	if stats.BudgetSheds() != 1 {
		t.Fatalf("budget sheds = %d, want 1", stats.BudgetSheds())
	}
}

// TestOutageMemoSkipsBudgetSheds pins that "out of time" is never
// memoized as a property of the site: an object with a healthy budget
// must not inherit a sibling's budget verdict.
func TestOutageMemoSkipsBudgetSheds(t *testing.T) {
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, budgetErr(hostOf(req.URL))
	})
	memo := NewOutageMemo()
	ctx := ContextWithOutageMemo(context.Background(), memo)
	f := WithOutageMemo(inner)
	if _, err := f.Fetch(NewGet("http://slow.example/p").WithContext(ctx)); !IsBudgetExhausted(err) {
		t.Fatalf("unexpected error %v", err)
	}
	if memo.Len() != 0 {
		t.Fatalf("memo recorded %d budget sheds, want 0", memo.Len())
	}
	// A genuine outage still memoizes.
	down := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, MarkOutage(&HostError{Host: hostOf(req.URL), Err: errors.New("dead")})
	})
	f = WithOutageMemo(down)
	if _, err := f.Fetch(NewGet("http://down.example/p").WithContext(ctx)); !IsOutage(err) {
		t.Fatalf("unexpected error %v", err)
	}
	if memo.Len() != 1 {
		t.Fatalf("memo recorded %d outages, want 1", memo.Len())
	}
}
