package web

import (
	"context"
	"errors"
)

// This file is the fetch stack's error taxonomy. The 1998 Web fails in
// qualitatively different ways — a dead site, a transient hiccup, a page
// that answers "404" — and the upper layers need to tell them apart:
// the UR layer degrades around an Outage but must propagate a SiteAnswer
// (the site spoke; its answer just wasn't a success), and nothing above
// should ever confuse either with the user cancelling the query.
//
// Classification rides the error chain: Mark wraps an error with a
// FaultClass that errors.Is surfaces through the standard sentinels
// (ErrTransient, ErrOutage, ErrSiteAnswer), and HostError pins the
// failure to the host that caused it so degradation reports can name the
// site. Context cancellation is deliberately outside the taxonomy:
// context.Canceled / DeadlineExceeded pass through every middleware
// unclassified, because "the user gave up" is not a site fault.

// FaultClass partitions fetch failures for the upper layers.
type FaultClass uint8

const (
	// FaultUnknown marks errors outside the taxonomy (including context
	// cancellation, which is never a site fault).
	FaultUnknown FaultClass = iota
	// FaultTransient marks failures worth retrying: the site may answer
	// on the next attempt.
	FaultTransient
	// FaultOutage marks terminal failures: retries are exhausted or the
	// breaker is open; the site is unreachable for this query.
	FaultOutage
	// FaultSiteAnswer marks responses that are the site's answer — a
	// non-success status is not a transport failure and retrying it is
	// pointless.
	FaultSiteAnswer
	// FaultDrift marks a healthy fetch whose pages no longer match the
	// navigation map: the site answered, but a mapped link, form or data
	// table has structurally vanished — the signature of a redesign, not
	// an outage.
	FaultDrift
)

// String renders the class name.
func (c FaultClass) String() string {
	switch c {
	case FaultTransient:
		return "transient"
	case FaultOutage:
		return "outage"
	case FaultSiteAnswer:
		return "site-answer"
	case FaultDrift:
		return "drift"
	default:
		return "unknown"
	}
}

// Taxonomy sentinels: match with errors.Is.
var (
	// ErrTransient matches failures classified as retryable.
	ErrTransient = errors.New("web: transient failure")
	// ErrOutage matches terminal site failures (retries exhausted,
	// breaker open, host down).
	ErrOutage = errors.New("web: site outage")
	// ErrSiteAnswer matches errors that carry the site's own answer
	// (e.g. a non-success status).
	ErrSiteAnswer = errors.New("web: site answered with an error")
	// ErrSiteDrift matches failures classified as site drift: the site is
	// up, but its pages no longer match the navigation map.
	ErrSiteDrift = errors.New("web: site drifted from its navigation map")
	// ErrCircuitOpen is the cause recorded when the circuit breaker
	// rejects a fetch without touching the network.
	ErrCircuitOpen = errors.New("web: circuit breaker open")
	// ErrHostSaturated is the cause recorded when a host bulkhead sheds
	// a fetch because both its slots and its wait queue are full.
	ErrHostSaturated = errors.New("web: host bulkhead saturated")
)

// classified attaches a FaultClass to an error chain. It matches the
// corresponding sentinel via errors.Is while leaving the underlying
// message and chain intact.
type classified struct {
	class FaultClass
	err   error
}

func (e *classified) Error() string { return e.err.Error() }
func (e *classified) Unwrap() error { return e.err }

// Is makes errors.Is(err, ErrOutage) and friends work without the
// sentinel appearing verbatim in the chain.
func (e *classified) Is(target error) bool {
	switch target {
	case ErrTransient:
		return e.class == FaultTransient
	case ErrOutage:
		return e.class == FaultOutage
	case ErrSiteAnswer:
		return e.class == FaultSiteAnswer
	case ErrSiteDrift:
		return e.class == FaultDrift
	}
	return false
}

// Mark classifies err. Context cancellation is never reclassified — the
// taxonomy describes site behavior, not the caller's — and a nil err
// stays nil.
func Mark(class FaultClass, err error) error {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &classified{class: class, err: err}
}

// MarkTransient classifies err as retryable.
func MarkTransient(err error) error { return Mark(FaultTransient, err) }

// MarkOutage classifies err as a terminal site outage.
func MarkOutage(err error) error { return Mark(FaultOutage, err) }

// MarkSiteAnswer classifies err as the site's own (non-success) answer.
func MarkSiteAnswer(err error) error { return Mark(FaultSiteAnswer, err) }

// MarkDrift classifies err as site drift: a redesign, not an outage.
func MarkDrift(err error) error { return Mark(FaultDrift, err) }

// ClassOf reports the classification of err: the outermost classified
// wrapper on the chain, i.e. the most recent verdict.
func ClassOf(err error) FaultClass {
	var ce *classified
	if errors.As(err, &ce) {
		return ce.class
	}
	return FaultUnknown
}

// IsOutage reports whether err is classified as a terminal site outage.
func IsOutage(err error) bool { return errors.Is(err, ErrOutage) }

// IsTransient reports whether err is classified as retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsSiteAnswer reports whether err carries the site's own answer.
func IsSiteAnswer(err error) bool { return errors.Is(err, ErrSiteAnswer) }

// IsDrift reports whether err is classified as site drift.
func IsDrift(err error) bool { return errors.Is(err, ErrSiteDrift) }

// HostError attributes a failure to the host that caused it, so that
// degradation reports can name the dead site rather than just the dead
// request.
type HostError struct {
	Host string
	Err  error
}

func (e *HostError) Error() string { return "host " + e.Host + ": " + e.Err.Error() }

// Unwrap keeps the chain intact for errors.Is/As.
func (e *HostError) Unwrap() error { return e.Err }

// FailingHost extracts the host a failure is attributed to, or "" when
// the chain carries no attribution.
func FailingHost(err error) string {
	var he *HostError
	if errors.As(err, &he) {
		return he.Host
	}
	return ""
}
