package web

import (
	"sync"
	"time"

	"webbase/internal/trace"
)

// This file holds the middlewares that make the fetch stack safe and
// efficient under parallel query evaluation: WithSingleflight collapses
// identical concurrent requests (Benedikt & Gottlob's "determining
// relevance of accesses at runtime" — don't repeat an access another
// branch is already performing), and WithHostLimit caps per-host
// concurrency so parallel union branches never hammer one site.

// WithSingleflight wraps inner so that concurrent fetches of the same
// request (same canonical Key) execute inner.Fetch once and share the
// answer. Union branches and dependent-join invocations frequently land
// on the same form submission at the same moment; without deduplication
// they would all miss the cache simultaneously and fetch redundantly.
// Followers are counted in stats.Deduped. The shared *Response is treated
// as immutable by the whole stack (the cache already shares responses).
func WithSingleflight(inner Fetcher, stats *Stats) Fetcher {
	type call struct {
		done chan struct{}
		resp *Response
		err  error
	}
	var mu sync.Mutex
	calls := make(map[string]*call)
	return FetcherFunc(func(req *Request) (*Response, error) {
		key := req.Key()
		mu.Lock()
		if c, ok := calls[key]; ok {
			mu.Unlock()
			<-c.done
			if stats != nil {
				stats.deduped.Add(1)
			}
			trace.FromContext(req.Context()).Label("outcome", "dedup")
			return c.resp, c.err
		}
		c := &call{done: make(chan struct{})}
		calls[key] = c
		mu.Unlock()

		c.resp, c.err = inner.Fetch(req)

		mu.Lock()
		delete(calls, key)
		mu.Unlock()
		close(c.done)
		return c.resp, c.err
	})
}

// WithHostLimit wraps inner with a per-host concurrency cap: at most
// perHost fetches execute against any one host at a time; excess fetches
// queue. This is the politeness guarantee that lets query evaluation run
// wide without turning the webbase into a load test of somebody's server.
// Waiting time accumulates in stats.LimiterWait and the global in-flight
// high-water mark in stats.PeakInFlight. perHost <= 0 disables the cap
// (inner is returned unwrapped).
//
// Fetches never hold one host's slot while waiting for another's, so the
// limiter cannot deadlock.
func WithHostLimit(inner Fetcher, perHost int, stats *Stats) Fetcher {
	if perHost <= 0 {
		return inner
	}
	var mu sync.Mutex
	slots := make(map[string]chan struct{})
	return FetcherFunc(func(req *Request) (*Response, error) {
		host := hostOf(req.URL)
		mu.Lock()
		sem, ok := slots[host]
		if !ok {
			sem = make(chan struct{}, perHost)
			slots[host] = sem
		}
		mu.Unlock()

		start := time.Now()
		sem <- struct{}{}
		defer func() { <-sem }()
		if stats != nil {
			stats.limiterWait.Add(int64(time.Since(start)))
			in := stats.inflight.Add(1)
			for {
				peak := stats.peakInflight.Load()
				if in <= peak || stats.peakInflight.CompareAndSwap(peak, in) {
					break
				}
			}
			defer stats.inflight.Add(-1)
		}
		return inner.Fetch(req)
	})
}
