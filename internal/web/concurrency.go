package web

import (
	"sync"
	"sync/atomic"
	"time"

	"webbase/internal/trace"
)

// This file holds the middlewares that make the fetch stack safe and
// efficient under parallel query evaluation: WithSingleflight collapses
// identical concurrent requests (Benedikt & Gottlob's "determining
// relevance of accesses at runtime" — don't repeat an access another
// branch is already performing), and WithHostLimit caps per-host
// concurrency so parallel union branches never hammer one site.

// WithSingleflight wraps inner so that concurrent fetches of the same
// request (same canonical Key) execute inner.Fetch once and share the
// answer. Union branches and dependent-join invocations frequently land
// on the same form submission at the same moment; without deduplication
// they would all miss the cache simultaneously and fetch redundantly.
// Followers are counted in stats.Deduped. The shared *Response is treated
// as immutable by the whole stack (the cache already shares responses).
func WithSingleflight(inner Fetcher, stats *Stats) Fetcher {
	type call struct {
		done chan struct{}
		resp *Response
		err  error
	}
	var mu sync.Mutex
	calls := make(map[string]*call)
	return FetcherFunc(func(req *Request) (*Response, error) {
		key := req.Key()
		mu.Lock()
		if c, ok := calls[key]; ok {
			mu.Unlock()
			<-c.done
			if stats != nil {
				stats.deduped.Add(1)
			}
			trace.FromContext(req.Context()).Label("outcome", "dedup")
			return c.resp, c.err
		}
		c := &call{done: make(chan struct{})}
		calls[key] = c
		mu.Unlock()

		c.resp, c.err = inner.Fetch(req)

		mu.Lock()
		delete(calls, key)
		mu.Unlock()
		close(c.done)
		return c.resp, c.err
	})
}

// WithHostLimit wraps inner with a per-host concurrency cap: at most
// perHost fetches execute against any one host at a time; excess fetches
// queue without bound — the historical PR 1 behavior, equivalent to
// WithBulkhead with an unbounded wait queue. perHost <= 0 disables the
// cap (inner is returned unwrapped).
func WithHostLimit(inner Fetcher, perHost int, stats *Stats) Fetcher {
	return WithBulkhead(inner, perHost, 0, stats)
}

// WithBulkhead wraps inner with a per-host bulkhead: at most perHost
// fetches execute against any one host at a time, at most maxQueue more
// wait behind them, and fetches beyond that are shed immediately with an
// outage-classified ErrHostSaturated so the owning maximal object
// degrades instead of camping on a worker-pool slot. This is how one
// slow-but-alive host is kept from absorbing the whole query's
// concurrency: the politeness cap of PR 1 plus a bound on how much work
// is allowed to pile up behind it. maxQueue <= 0 means an unbounded
// queue (no shedding); perHost <= 0 disables the bulkhead entirely.
//
// Queued fetches honor context cancellation, and blocked senders on the
// slot channel are woken in arrival order, so waiters that do run are
// served FIFO-ish. Waiting time accumulates in stats.LimiterWait, sheds
// in stats.BulkheadSheds, and the global in-flight high-water mark in
// stats.PeakInFlight.
//
// Like the circuit breaker, a saturation shed trades the byte-identical
// answer for bounded resource use: whether a fetch sheds depends on how
// much load is in front of it, which is a property of the schedule. Runs
// that need byte-identical answers under overload should bound load at
// admission (core's gate) rather than per host.
//
// Fetches never hold one host's slot while waiting for another's, so the
// bulkhead cannot deadlock.
func WithBulkhead(inner Fetcher, perHost, maxQueue int, stats *Stats) Fetcher {
	if perHost <= 0 {
		return inner
	}
	type bulkhead struct {
		sem     chan struct{}
		waiting atomic.Int64
	}
	var mu sync.Mutex
	hosts := make(map[string]*bulkhead)
	return FetcherFunc(func(req *Request) (*Response, error) {
		host := hostOf(req.URL)
		mu.Lock()
		bh, ok := hosts[host]
		if !ok {
			bh = &bulkhead{sem: make(chan struct{}, perHost)}
			hosts[host] = bh
		}
		mu.Unlock()

		start := time.Now()
		select {
		case bh.sem <- struct{}{}:
		default:
			// Every slot is busy: join the wait queue, bounded when
			// maxQueue > 0. Add-then-check keeps the bound exact under
			// concurrent arrivals.
			if w := bh.waiting.Add(1); maxQueue > 0 && w > int64(maxQueue) {
				bh.waiting.Add(-1)
				if stats != nil {
					stats.bulkheadSheds.Add(1)
				}
				trace.FromContext(req.Context()).Label("outcome", "host-saturated")
				return nil, MarkOutage(&HostError{Host: host, Err: ErrHostSaturated})
			}
			select {
			case bh.sem <- struct{}{}:
				bh.waiting.Add(-1)
			case <-req.Context().Done():
				bh.waiting.Add(-1)
				return nil, req.Context().Err()
			}
		}
		defer func() { <-bh.sem }()
		if stats != nil {
			stats.limiterWait.Add(int64(time.Since(start)))
			in := stats.inflight.Add(1)
			for {
				peak := stats.peakInflight.Load()
				if in <= peak || stats.peakInflight.CompareAndSwap(peak, in) {
					break
				}
			}
			defer stats.inflight.Add(-1)
		}
		return inner.Fetch(req)
	})
}
