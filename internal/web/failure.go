package web

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webbase/internal/trace"
)

// ErrSimulatedOutage is the error injected by Flaky.
var ErrSimulatedOutage = errors.New("web: simulated network outage")

// Flaky wraps a fetcher with deterministic failure injection: an attempt
// fails with ErrSimulatedOutage when the hash of (URL, per-request attempt
// number) falls under FailEvery. With FailEvery = 3 roughly every third
// fetch fails. The 1998 Web failed constantly; the webbase has to live
// with that.
//
// Attempt numbers are counted per canonical request key, not globally:
// hashing a global sequence number would make *which* URL fails depend on
// how goroutines interleave under parallel workers, and fault-injection
// tests would become schedule-dependent. With per-request counting, the
// n-th attempt at a given request fails or succeeds identically no matter
// what else is in flight.
type Flaky struct {
	Inner     Fetcher
	FailEvery uint64 // every n-th eligible attempt fails; 0 disables

	seq      atomic.Uint64 // total attempts across all requests
	mu       sync.Mutex
	attempts map[string]uint64 // canonical request key → attempts seen
}

// Fetch implements Fetcher with injected failures.
func (f *Flaky) Fetch(req *Request) (*Response, error) {
	f.seq.Add(1)
	if f.FailEvery > 0 {
		f.mu.Lock()
		if f.attempts == nil {
			f.attempts = make(map[string]uint64)
		}
		f.attempts[req.Key()]++
		n := f.attempts[req.Key()]
		f.mu.Unlock()
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s", n, req.URL)
		if h.Sum64()%f.FailEvery == 0 {
			return nil, fmt.Errorf("%w: %s", ErrSimulatedOutage, req.URL)
		}
	}
	return f.Inner.Fetch(req)
}

// Attempts reports how many fetches Flaky has seen (including failed
// ones).
func (f *Flaky) Attempts() uint64 { return f.seq.Load() }

// Backoff spaces re-issued attempts exponentially: the n-th retry waits
// roughly Base·2ⁿ⁻¹, capped at Max, with deterministic per-URL jitter —
// the final delay lands in [d/2, d] at a point chosen by hashing
// (attempt, URL), so concurrent retries against one host decorrelate
// without introducing real randomness (runs stay reproducible). The zero
// value disables waiting entirely (the historical tight loop).
type Backoff struct {
	Base time.Duration // first retry's nominal delay; 0 disables backoff
	Max  time.Duration // cap on the exponential growth; 0 = uncapped
}

// Delay returns the wait before the retry-th re-issued attempt (retry
// counts from 1) of rawurl.
func (b Backoff) Delay(rawurl string, retry int) time.Duration {
	if b.Base <= 0 || retry <= 0 {
		return 0
	}
	d := b.Base
	for i := 1; i < retry; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if half := d / 2; half > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s", retry, rawurl)
		d = half + time.Duration(h.Sum64()%uint64(half+1))
	}
	return d
}

// RetryPolicy configures WithRetryPolicy.
type RetryPolicy struct {
	// Retries is how many additional attempts follow a failed fetch.
	Retries int
	// Backoff spaces the attempts (zero value: no waiting).
	Backoff Backoff
	// Sleep waits between attempts; it must return early with ctx.Err()
	// when the context is cancelled mid-wait. nil uses a timer. Tests
	// inject an instant sleep to keep backoff assertions fast.
	Sleep func(ctx context.Context, d time.Duration) error
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// WithRetryPolicy wraps inner so that failed fetches are retried with
// exponential backoff. Retrying is safe: webbase navigation only performs
// idempotent reads (the paper's system never updates the sites it
// queries). Non-success status codes are returned as-is — they are the
// site's answer, not a transport failure.
//
// The request's context is honored between attempts: a cancelled context
// aborts the loop (and any backoff wait) immediately, returning the
// context's error unclassified rather than burning the remaining
// retries. A retry budget on the context (ContextWithRetryBudget) caps
// the total re-issues a query may spend across all its fetches; when it
// runs dry the fetch fails over to the terminal path without further
// attempts. Terminal failures — retries exhausted, budget dry — are
// classified as an Outage and attributed to the host (HostError), which
// is what lets the UR layer degrade around the dead site. Re-issued
// attempts accumulate in stats (which may be nil) and on the request's
// trace span.
func WithRetryPolicy(inner Fetcher, p RetryPolicy, stats *Stats) Fetcher {
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	return FetcherFunc(func(req *Request) (*Response, error) {
		ctx := req.Context()
		var lastErr error
		attempts := 0
		for attempt := 0; attempt <= p.Retries; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			resp, err := inner.Fetch(req)
			attempts++
			if err == nil {
				return resp, nil
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			lastErr = err
			if attempt == p.Retries {
				break
			}
			if !retryBudgetFrom(ctx).take() {
				trace.FromContext(ctx).Label("retry-budget", "exhausted")
				break
			}
			if stats != nil {
				stats.retries.Add(1)
			}
			trace.FromContext(ctx).Label("attempts", strconv.Itoa(attempt+2))
			if d := p.Backoff.Delay(req.URL, attempt+1); d > 0 {
				if err := sleep(ctx, d); err != nil {
					return nil, err
				}
			}
		}
		return nil, MarkOutage(&HostError{Host: hostOf(req.URL),
			Err: fmt.Errorf("web: %d attempts failed: %w", attempts, lastErr)})
	})
}

// WithRetry is WithRetryPolicy without backoff, kept for callers that
// only care about the attempt count.
func WithRetry(inner Fetcher, retries int, stats *Stats) Fetcher {
	return WithRetryPolicy(inner, RetryPolicy{Retries: retries}, stats)
}

// RetryBudget caps how many re-issued attempts a query may spend across
// all of its fetches, so a query over many flaky sites cannot multiply
// its own page count unboundedly. A nil budget (no budget on the
// context) is unlimited.
type RetryBudget struct {
	limited   bool
	remaining atomic.Int64
}

// NewRetryBudget returns a budget of n re-issues; n <= 0 means
// unlimited.
func NewRetryBudget(n int64) *RetryBudget {
	b := &RetryBudget{}
	if n > 0 {
		b.limited = true
		b.remaining.Store(n)
	}
	return b
}

// take consumes one re-issue, reporting false when the budget is dry.
func (b *RetryBudget) take() bool {
	if b == nil || !b.limited {
		return true
	}
	return b.remaining.Add(-1) >= 0
}

// Remaining reports the re-issues left (meaningless for unlimited
// budgets).
func (b *RetryBudget) Remaining() int64 { return b.remaining.Load() }

type retryBudgetKey struct{}

// ContextWithRetryBudget attaches a per-query retry budget consulted by
// WithRetryPolicy.
func ContextWithRetryBudget(ctx context.Context, b *RetryBudget) context.Context {
	return context.WithValue(ctx, retryBudgetKey{}, b)
}

func retryBudgetFrom(ctx context.Context) *RetryBudget {
	b, _ := ctx.Value(retryBudgetKey{}).(*RetryBudget)
	return b
}

// OutageMemo remembers, for the lifetime of one query, which requests
// have already failed terminally, so sibling maximal objects and later
// navigation steps don't re-pay the full retry ladder for a site the
// query already knows is down.
//
// The memo is keyed by canonical request key, not by host, and it sits
// directly below the singleflight middleware. That pairing makes failure
// outcomes schedule-independent: each request key's terminal verdict is
// decided exactly once (concurrent duplicates collapse in singleflight;
// later duplicates hit the memo), so a query's degradation behavior is
// identical at Workers=1 and Workers=8. A host-keyed memo would instead
// make request B's outcome depend on whether request A happened to fail
// first — exactly the schedule dependence the determinism suite forbids.
type OutageMemo struct {
	mu     sync.Mutex
	failed map[string]error
}

// NewOutageMemo returns an empty memo.
func NewOutageMemo() *OutageMemo {
	return &OutageMemo{failed: make(map[string]error)}
}

func (m *OutageMemo) lookup(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed[key]
}

func (m *OutageMemo) record(key string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.failed[key]; !ok {
		m.failed[key] = err
	}
}

// Len reports how many request keys have failed terminally.
func (m *OutageMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.failed)
}

type outageMemoKey struct{}

// ContextWithOutageMemo attaches a per-query outage memo consulted by
// WithOutageMemo.
func ContextWithOutageMemo(ctx context.Context, m *OutageMemo) context.Context {
	return context.WithValue(ctx, outageMemoKey{}, m)
}

func outageMemoFrom(ctx context.Context) *OutageMemo {
	m, _ := ctx.Value(outageMemoKey{}).(*OutageMemo)
	return m
}

// WithOutageMemo wraps inner so that Outage-classified failures are
// remembered in the request context's memo (if any) and replayed for
// subsequent fetches of the same request without touching inner.
// Replayed failures are labeled outcome=unavailable on the trace span.
func WithOutageMemo(inner Fetcher) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		memo := outageMemoFrom(req.Context())
		if memo == nil {
			return inner.Fetch(req)
		}
		key := req.Key()
		if err := memo.lookup(key); err != nil {
			trace.FromContext(req.Context()).Label("outcome", "unavailable")
			return nil, err
		}
		resp, err := inner.Fetch(req)
		// Budget exhaustion is outage-classified so the UR layer degrades
		// around it, but it is a statement about the calling object's
		// remaining time, not about the site — memoizing it would replay
		// "out of time" to objects whose budgets are healthy. (The budget
		// middleware sits above this one, so such errors only pass here if
		// the stack is ever reordered; the guard keeps the invariant
		// explicit.)
		if err != nil && IsOutage(err) && !IsBudgetExhausted(err) {
			memo.record(key, err)
		}
		return resp, err
	})
}
