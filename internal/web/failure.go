package web

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"

	"webbase/internal/trace"
)

// ErrSimulatedOutage is the error injected by Flaky.
var ErrSimulatedOutage = errors.New("web: simulated network outage")

// Flaky wraps a fetcher with deterministic failure injection: an attempt
// fails with ErrSimulatedOutage when the hash of (URL, per-request attempt
// number) falls under FailEvery. With FailEvery = 3 roughly every third
// fetch fails. The 1998 Web failed constantly; the webbase has to live
// with that.
//
// Attempt numbers are counted per canonical request key, not globally:
// hashing a global sequence number would make *which* URL fails depend on
// how goroutines interleave under parallel workers, and fault-injection
// tests would become schedule-dependent. With per-request counting, the
// n-th attempt at a given request fails or succeeds identically no matter
// what else is in flight.
type Flaky struct {
	Inner     Fetcher
	FailEvery uint64 // every n-th eligible attempt fails; 0 disables

	seq      atomic.Uint64 // total attempts across all requests
	mu       sync.Mutex
	attempts map[string]uint64 // canonical request key → attempts seen
}

// Fetch implements Fetcher with injected failures.
func (f *Flaky) Fetch(req *Request) (*Response, error) {
	f.seq.Add(1)
	if f.FailEvery > 0 {
		f.mu.Lock()
		if f.attempts == nil {
			f.attempts = make(map[string]uint64)
		}
		f.attempts[req.Key()]++
		n := f.attempts[req.Key()]
		f.mu.Unlock()
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s", n, req.URL)
		if h.Sum64()%f.FailEvery == 0 {
			return nil, fmt.Errorf("%w: %s", ErrSimulatedOutage, req.URL)
		}
	}
	return f.Inner.Fetch(req)
}

// Attempts reports how many fetches Flaky has seen (including failed
// ones).
func (f *Flaky) Attempts() uint64 { return f.seq.Load() }

// WithRetry wraps inner so that failed fetches are retried up to retries
// additional times. Retrying is safe: webbase navigation only performs
// idempotent reads (the paper's system never updates the sites it
// queries). Non-success status codes are returned as-is — they are the
// site's answer, not a transport failure. Re-issued attempts accumulate in
// stats (which may be nil) and on the request's trace span.
func WithRetry(inner Fetcher, retries int, stats *Stats) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		var lastErr error
		for attempt := 0; attempt <= retries; attempt++ {
			if attempt > 0 {
				if stats != nil {
					stats.retries.Add(1)
				}
				trace.FromContext(req.Context()).Label("attempts", strconv.Itoa(attempt+1))
			}
			resp, err := inner.Fetch(req)
			if err == nil {
				return resp, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("web: %d attempts failed: %w", retries+1, lastErr)
	})
}
