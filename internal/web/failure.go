package web

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// ErrSimulatedOutage is the error injected by Flaky.
var ErrSimulatedOutage = errors.New("web: simulated network outage")

// Flaky wraps a fetcher with deterministic failure injection: requests
// whose (sequence, URL) hash falls under failEveryN fail with
// ErrSimulatedOutage. With failEveryN = 3 roughly every third fetch
// fails; deterministic per run so tests are stable. The 1998 Web failed
// constantly; the webbase has to live with that.
type Flaky struct {
	Inner     Fetcher
	FailEvery uint64 // every n-th eligible request fails; 0 disables
	seq       atomic.Uint64
}

// Fetch implements Fetcher with injected failures.
func (f *Flaky) Fetch(req *Request) (*Response, error) {
	n := f.seq.Add(1)
	if f.FailEvery > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s", n, req.URL)
		if h.Sum64()%f.FailEvery == 0 {
			return nil, fmt.Errorf("%w: %s", ErrSimulatedOutage, req.URL)
		}
	}
	return f.Inner.Fetch(req)
}

// Attempts reports how many fetches Flaky has seen (including failed
// ones).
func (f *Flaky) Attempts() uint64 { return f.seq.Load() }

// WithRetry wraps inner so that failed fetches are retried up to retries
// additional times. Retrying is safe: webbase navigation only performs
// idempotent reads (the paper's system never updates the sites it
// queries). Non-success status codes are returned as-is — they are the
// site's answer, not a transport failure.
func WithRetry(inner Fetcher, retries int) Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		var lastErr error
		for attempt := 0; attempt <= retries; attempt++ {
			resp, err := inner.Fetch(req)
			if err == nil {
				return resp, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("web: %d attempts failed: %w", retries+1, lastErr)
	})
}
