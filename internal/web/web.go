// Package web provides the Web substrate the webbase navigates: an
// in-process simulated Web of dynamic sites, plus adapters to and from
// net/http.
//
// The paper's system retrieved pages from the live 1998 Web through the
// PiLLoW HTTP library. Here the "raw Web" is a collection of Site
// implementations served by a Server; the navigation calculus only ever
// sees the Fetcher interface, so the same code runs against the in-process
// web, an httptest server, or (through HTTPFetcher) a real network.
package web

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// Request is a page request: following a link issues a GET with no form
// data; submitting a form issues the form's method with its fields.
type Request struct {
	URL    string     // absolute URL
	Method string     // "GET" or "POST"; empty means GET
	Form   url.Values // submitted form fields (nil for plain navigation)

	// ctx carries the caller's context — and with it the current trace
	// span — through the middleware stack, following net/http's
	// Request.Context pattern. Set with WithContext; nil means Background.
	ctx context.Context
}

// Context returns the request's context (never nil).
func (r *Request) Context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// WithContext returns a shallow copy of the request carrying ctx. The
// navigation layer attaches its per-fetch trace span this way, so the
// middlewares can annotate the span (cache hit, deduplication, retries)
// without the Fetcher interface changing.
func (r *Request) WithContext(ctx context.Context) *Request {
	r2 := *r
	r2.ctx = ctx
	return &r2
}

// NewGet returns a GET request for rawurl.
func NewGet(rawurl string) *Request {
	return &Request{URL: rawurl, Method: "GET"}
}

// NewSubmit returns a form-submission request.
func NewSubmit(action, method string, form url.Values) *Request {
	m := strings.ToUpper(method)
	if m == "" {
		m = "GET"
	}
	return &Request{URL: action, Method: m, Form: form}
}

// Key returns a canonical cache key for the request: method, URL and the
// sorted form encoding.
func (r *Request) Key() string {
	m := r.Method
	if m == "" {
		m = "GET"
	}
	return m + " " + r.URL + "?" + r.Form.Encode()
}

// Param returns the first value of a form parameter, merging the URL query
// string with the submitted form (form wins). This is what a CGI script of
// the era saw.
func (r *Request) Param(name string) string {
	if v := r.Form.Get(name); v != "" {
		return v
	}
	if u, err := url.Parse(r.URL); err == nil {
		return u.Query().Get(name)
	}
	return ""
}

// Response is a fetched page.
type Response struct {
	Status int    // HTTP-style status code
	URL    string // final URL (after any redirect collapsing)
	Body   []byte // page bytes, typically HTML
}

// OK reports whether the response is a success.
func (r *Response) OK() bool { return r.Status >= 200 && r.Status < 300 }

// HTML builds a 200 response with the given body.
func HTML(finalURL, body string) *Response {
	return &Response{Status: 200, URL: finalURL, Body: []byte(body)}
}

// NotFound builds a 404 response.
func NotFound(rawurl string) *Response {
	return &Response{Status: 404, URL: rawurl, Body: []byte("<html><body>404 Not Found</body></html>")}
}

// Fetcher retrieves pages. All navigation in the webbase goes through this
// interface.
type Fetcher interface {
	Fetch(req *Request) (*Response, error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(req *Request) (*Response, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(req *Request) (*Response, error) { return f(req) }

// Site serves the pages of one simulated Web site.
type Site interface {
	// Host is the site's host name, e.g. "newsday.example".
	Host() string
	// Serve handles a request whose URL host equals Host().
	Serve(req *Request) (*Response, error)
}

// Server is the simulated Web: a set of sites indexed by host. It
// implements Fetcher. Server is safe for concurrent use once all sites are
// registered.
type Server struct {
	mu    sync.RWMutex
	sites map[string]Site
}

// NewServer returns an empty simulated Web.
func NewServer() *Server {
	return &Server{sites: make(map[string]Site)}
}

// Register adds a site, replacing any previous site on the same host.
func (s *Server) Register(site Site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[site.Host()] = site
}

// Hosts returns the registered host names, sorted.
func (s *Server) Hosts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hosts := make([]string, 0, len(s.sites))
	for h := range s.sites {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Fetch routes the request to the site owning the URL's host.
func (s *Server) Fetch(req *Request) (*Response, error) {
	u, err := url.Parse(req.URL)
	if err != nil {
		return nil, fmt.Errorf("web: bad URL %q: %w", req.URL, err)
	}
	s.mu.RLock()
	site, ok := s.sites[u.Host]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("web: no such host %q", u.Host)
	}
	return site.Serve(req)
}

// Mux dispatches requests within a site by URL path. The zero value is not
// usable; call NewMux.
type Mux struct {
	host     string
	mu       sync.RWMutex
	handlers map[string]FetcherFunc
}

// NewMux returns a Mux serving the given host.
func NewMux(host string) *Mux {
	return &Mux{host: host, handlers: make(map[string]FetcherFunc)}
}

// Host implements Site.
func (m *Mux) Host() string { return m.host }

// Handle registers a handler for an exact path ("/", "/cgi-bin/search").
func (m *Mux) Handle(path string, h FetcherFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[path] = h
}

// Serve implements Site: exact-path dispatch, 404 otherwise.
func (m *Mux) Serve(req *Request) (*Response, error) {
	u, err := url.Parse(req.URL)
	if err != nil {
		return nil, fmt.Errorf("web: bad URL %q: %w", req.URL, err)
	}
	path := u.Path
	if path == "" {
		path = "/"
	}
	m.mu.RLock()
	h, ok := m.handlers[path]
	m.mu.RUnlock()
	if !ok {
		return NotFound(req.URL), nil
	}
	return h(req)
}
