package web

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"webbase/internal/trace"
)

// BreakerConfig tunes the per-host circuit breaker. The zero value is
// usable: every field falls back to the documented default.
type BreakerConfig struct {
	// Window is the number of most recent fetch outcomes considered per
	// host (a ring buffer). Default 8.
	Window int
	// FailureRatio opens the circuit when failures/outcomes in the
	// window reaches this fraction, once MinSamples outcomes have been
	// seen. Default 0.5.
	FailureRatio float64
	// MinSamples is the minimum number of recorded outcomes before the
	// ratio is evaluated, so one unlucky first fetch cannot open the
	// circuit. Default: Window.
	MinSamples int
	// Cooldown is how long an open circuit rejects fetches before
	// letting a single probe through (half-open). Default 30s.
	Cooldown time.Duration
	// Clock supplies the breaker's notion of time. nil means time.Now;
	// tests inject a fake clock to step through state transitions
	// deterministically.
	Clock func() time.Time
	// OnChange, when non-nil, is called (outside all breaker locks) after
	// a circuit trips open or a half-open probe closes it — the durable
	// store's persist-on-transition hook. It must be safe for concurrent
	// calls and must not fetch through this breaker.
	OnChange func(host string, state BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// BreakerState is the classic three-state circuit: closed (traffic
// flows), open (fail fast), half-open (one probe decides).
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-host circuit breaker middleware. Each host gets an
// independent circuit: a sliding window of recent outcomes; when the
// failure ratio crosses the threshold the circuit opens and fetches to
// that host are rejected immediately with an Outage-classified
// ErrCircuitOpen — the fast-fail that keeps one dead site from stalling
// a whole multi-site query on timeouts. After Cooldown a single probe is
// let through (half-open): success closes the circuit, failure re-opens
// it for another cooldown.
//
// The breaker deliberately remembers across queries (it lives for the
// webbase's lifetime, unlike the per-query outage memo): a site that
// killed the last query starts the next one open.
type Breaker struct {
	inner Fetcher
	cfg   BreakerConfig
	stats *Stats

	mu    sync.Mutex
	hosts map[string]*hostCircuit
}

type hostCircuit struct {
	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring of recent outcomes; true = failure
	next     int
	filled   int
	failures int
	openedAt time.Time
	probing  bool  // a half-open probe is in flight
	opens    int64 // lifetime count of transitions to open
}

// NewBreaker wraps inner with a per-host circuit breaker. Rejections are
// counted in stats.BreakerRejects (stats may be nil).
func NewBreaker(inner Fetcher, cfg BreakerConfig, stats *Stats) *Breaker {
	return &Breaker{inner: inner, cfg: cfg.withDefaults(), stats: stats,
		hosts: make(map[string]*hostCircuit)}
}

// WithBreaker is NewBreaker as a plain middleware constructor.
func WithBreaker(inner Fetcher, cfg BreakerConfig, stats *Stats) Fetcher {
	return NewBreaker(inner, cfg, stats)
}

func (b *Breaker) host(host string) *hostCircuit {
	b.mu.Lock()
	defer b.mu.Unlock()
	hc := b.hosts[host]
	if hc == nil {
		hc = &hostCircuit{}
		b.hosts[host] = hc
	}
	return hc
}

// State reports the circuit state for a host (closed for hosts never
// fetched).
func (b *Breaker) State(host string) BreakerState {
	hc := b.host(host)
	hc.mu.Lock()
	defer hc.mu.Unlock()
	// Surface open→half-open lazily so tests and dashboards see the
	// state a fetch arriving now would see.
	if hc.state == BreakerOpen && b.cfg.Clock().Sub(hc.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return hc.state
}

// Opens reports how many times the host's circuit has transitioned to
// open over the breaker's lifetime.
func (b *Breaker) Opens(host string) int64 {
	hc := b.host(host)
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.opens
}

// Fetch implements Fetcher.
func (b *Breaker) Fetch(req *Request) (*Response, error) {
	host := hostOf(req.URL)
	hc := b.host(host)
	if !hc.allow(b.cfg.Clock(), b.cfg) {
		if b.stats != nil {
			b.stats.breakerRejects.Add(1)
		}
		trace.FromContext(req.Context()).Label("outcome", "breaker-open")
		return nil, MarkOutage(&HostError{Host: host,
			Err: fmt.Errorf("%w (cooling down)", ErrCircuitOpen)})
	}
	resp, err := b.inner.Fetch(req)
	failed := err != nil &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	if changed, state := hc.observe(failed, b.cfg.Clock(), b.cfg); changed && b.cfg.OnChange != nil {
		b.cfg.OnChange(host, state)
	}
	return resp, err
}

// BreakerSnapshot is the durable view of one open circuit: enough to
// restore fail-fast behavior after a restart. The outcome window is
// transient by design — a restored circuit re-earns closure through the
// normal half-open probe.
type BreakerSnapshot struct {
	State    string    `json:"state"`
	OpenedAt time.Time `json:"openedAt"`
	Opens    int64     `json:"opens"`
}

// Snapshot captures every currently open circuit (half-open and closed
// circuits are omitted: closed is the cold default, and a half-open
// circuit restored as open simply re-probes after the remaining
// cooldown).
func (b *Breaker) Snapshot() map[string]BreakerSnapshot {
	b.mu.Lock()
	hosts := make(map[string]*hostCircuit, len(b.hosts))
	for h, hc := range b.hosts {
		hosts[h] = hc
	}
	b.mu.Unlock()
	out := make(map[string]BreakerSnapshot)
	for h, hc := range hosts {
		hc.mu.Lock()
		if hc.state == BreakerOpen {
			out[h] = BreakerSnapshot{State: BreakerOpen.String(), OpenedAt: hc.openedAt, Opens: hc.opens}
		}
		hc.mu.Unlock()
	}
	return out
}

// Restore pre-populates circuits from a persisted snapshot, before the
// breaker takes traffic. Only open circuits are restored; anything else
// in the snapshot is ignored (cold default). The original openedAt is
// kept, so a circuit whose cooldown elapsed while the process was down
// goes straight to half-open on the first fetch — restored state never
// blocks recovery longer than live state would have.
func (b *Breaker) Restore(snap map[string]BreakerSnapshot) {
	for host, s := range snap {
		if s.State != BreakerOpen.String() {
			continue
		}
		hc := b.host(host)
		hc.mu.Lock()
		if hc.state == BreakerClosed && hc.filled == 0 {
			hc.state = BreakerOpen
			hc.openedAt = s.OpenedAt
			hc.opens = s.Opens
		}
		hc.mu.Unlock()
	}
}

// allow decides whether a fetch may proceed and performs the
// open→half-open transition when the cooldown has elapsed.
func (hc *hostCircuit) allow(now time.Time, cfg BreakerConfig) bool {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	switch hc.state {
	case BreakerOpen:
		if now.Sub(hc.openedAt) < cfg.Cooldown {
			return false
		}
		hc.state = BreakerHalfOpen
		hc.probing = true
		return true
	case BreakerHalfOpen:
		if hc.probing {
			return false // one probe at a time
		}
		hc.probing = true
		return true
	default:
		return true
	}
}

// observe records a fetch outcome and performs closed→open (threshold)
// and half-open→closed/open (probe verdict) transitions, reporting
// whether the circuit changed state (so the caller can fire OnChange
// outside the lock). Outcomes from fetches admitted before a trip land
// while the circuit is open and are ignored — they already counted
// toward opening it.
func (hc *hostCircuit) observe(failed bool, now time.Time, cfg BreakerConfig) (bool, BreakerState) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	switch hc.state {
	case BreakerClosed:
		hc.record(failed, cfg.Window)
		if hc.filled >= cfg.MinSamples &&
			float64(hc.failures) >= cfg.FailureRatio*float64(hc.filled) {
			hc.trip(now)
			return true, BreakerOpen
		}
	case BreakerHalfOpen:
		hc.probing = false
		if failed {
			hc.trip(now)
			return true, BreakerOpen
		}
		hc.state = BreakerClosed
		hc.reset()
		return true, BreakerClosed
	}
	return false, hc.state
}

func (hc *hostCircuit) trip(now time.Time) {
	hc.state = BreakerOpen
	hc.openedAt = now
	hc.opens++
	hc.probing = false
	hc.reset()
}

func (hc *hostCircuit) reset() {
	hc.outcomes = nil
	hc.next, hc.filled, hc.failures = 0, 0, 0
}

func (hc *hostCircuit) record(failed bool, window int) {
	if len(hc.outcomes) != window {
		hc.outcomes = make([]bool, window)
		hc.next, hc.filled, hc.failures = 0, 0, 0
	}
	if hc.filled == window {
		if hc.outcomes[hc.next] {
			hc.failures--
		}
	} else {
		hc.filled++
	}
	hc.outcomes[hc.next] = failed
	if failed {
		hc.failures++
	}
	hc.next = (hc.next + 1) % window
}
