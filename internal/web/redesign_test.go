package web

import (
	"strings"
	"testing"
)

// TestRedesignRewritesOnlyWhenActive: before Activate the double is
// transparent; after, it rewrites the configured host's pages — a pure
// function of the response, so results are schedule-independent.
func TestRedesignRewritesOnlyWhenActive(t *testing.T) {
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, `<html><a href="/auto">Automobiles</a></html>`), nil
	})
	rd := &Redesign{
		Inner: inner,
		Rewrites: map[string][]Rewrite{
			"a.example": {{Old: ">Automobiles<", New: ">Cars and Trucks<"}},
		},
	}
	resp, err := rd.Fetch(NewGet("http://a.example/"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "Automobiles") {
		t.Fatal("inactive redesign already rewrote the page")
	}

	rd.Activate()
	if !rd.Active() {
		t.Fatal("Active() false after Activate")
	}
	resp, err = rd.Fetch(NewGet("http://a.example/"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "Cars and Trucks") || strings.Contains(string(resp.Body), "Automobiles") {
		t.Fatalf("active redesign did not rewrite: %s", resp.Body)
	}
}

// TestRedesignLeavesOtherHostsAlone: rewrites are scoped to their host.
func TestRedesignLeavesOtherHostsAlone(t *testing.T) {
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, `<html>Automobiles</html>`), nil
	})
	rd := &Redesign{
		Inner:    inner,
		Rewrites: map[string][]Rewrite{"a.example": {{Old: "Automobiles", New: "Cars"}}},
	}
	rd.Activate()
	resp, err := rd.Fetch(NewGet("http://b.example/"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "Automobiles") {
		t.Fatalf("redesign leaked onto another host: %s", resp.Body)
	}
}
