package web

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"webbase/internal/trace"
)

// buildStack composes the full production middleware order — cache →
// singleflight → outage memo → breaker → host limiter → retry(flaky) —
// exactly as core.NewDomain assembles it, returning the outermost
// fetcher plus the observable pieces.
func buildStack(failEvery uint64, retries int) (Fetcher, *Stats, *Cache) {
	stats := &Stats{}
	raw := &Flaky{Inner: okFetcher(), FailEvery: failEvery}
	f := WithRetryPolicy(raw, RetryPolicy{Retries: retries}, stats)
	f = Counting(f, stats)
	f = WithHostLimit(f, 2, stats)
	f = WithBreaker(f, BreakerConfig{Window: 64, FailureRatio: 0.99,
		Cooldown: time.Hour, Clock: newTick().Clock()}, stats)
	f = WithOutageMemo(f)
	f = WithSingleflight(f, stats)
	cache := NewCache()
	f = WithCache(f, cache)
	return f, stats, cache
}

// TestStackEndToEndAccounting runs the same workload through the full
// stack at 1 and at 8 workers and checks the serving-outcome identity:
// every successful fetch was served exactly one way, so
//
//	cache hits + deduped + network pages + stale = total fetches
//
// and the trace outcome labels agree with the Stats counters.
func TestStackEndToEndAccounting(t *testing.T) {
	var urls []string
	for h := 0; h < 4; h++ {
		for p := 0; p < 5; p++ {
			urls = append(urls, fmt.Sprintf("http://host%d/page/%d", h, p))
		}
	}
	// Each URL fetched 5 times: plenty of cache hits, and under 8
	// workers plenty of chances for singleflight collapses.
	var ops []string
	for i := 0; i < 5; i++ {
		ops = append(ops, urls...)
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// FailEvery=2 with 5 retries: every request key recovers
			// (deterministically — Flaky hashes (attempt, URL)), so all
			// ops succeed and the identity covers the whole workload.
			f, stats, cache := buildStack(2, 5)
			tr := trace.New("stack", nil)
			ctx := trace.ContextWith(context.Background(), tr.Root)
			ctx = ContextWithOutageMemo(ctx, NewOutageMemo())

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(ops); i += workers {
						sp := trace.Start(ctx, trace.KindFetch, ops[i])
						req := NewGet(ops[i]).WithContext(trace.ContextWith(ctx, sp))
						resp, err := f.Fetch(req)
						sp.EndErr(err)
						if err != nil {
							t.Errorf("fetch %s: %v", ops[i], err)
						} else if len(resp.Body) == 0 {
							t.Errorf("fetch %s: empty body", ops[i])
						}
					}
				}(w)
			}
			wg.Wait()
			tr.Root.End()

			total := int64(len(ops))
			served := cache.Hits() + stats.Deduped() + stats.Pages() + cache.Stale()
			if served != total {
				t.Errorf("identity broken: hits=%d + deduped=%d + network=%d + stale=%d = %d, want %d",
					cache.Hits(), stats.Deduped(), stats.Pages(), cache.Stale(), served, total)
			}
			// Every distinct URL touched the network exactly once.
			if stats.Pages() != int64(len(urls)) {
				t.Errorf("network fetches = %d, want %d", stats.Pages(), len(urls))
			}
			if stats.BreakerRejects() != 0 {
				t.Errorf("breaker rejected %d fetches in a recovering workload", stats.BreakerRejects())
			}

			// Trace outcome labels must tell the same story as Stats.
			outcomes := map[string]int64{}
			tr.Root.Walk(func(sp *trace.Span) {
				if sp.Kind() == trace.KindFetch {
					outcomes[sp.LabelValue("outcome")]++
				}
			})
			if outcomes["cache"] != cache.Hits() {
				t.Errorf("outcome=cache spans = %d, cache hits = %d", outcomes["cache"], cache.Hits())
			}
			if outcomes["dedup"] != stats.Deduped() {
				t.Errorf("outcome=dedup spans = %d, deduped = %d", outcomes["dedup"], stats.Deduped())
			}
			if outcomes["network"] != stats.Pages() {
				t.Errorf("outcome=network spans = %d, pages = %d", outcomes["network"], stats.Pages())
			}
			if outcomes["stale"] != cache.Stale() {
				t.Errorf("outcome=stale spans = %d, stale = %d", outcomes["stale"], cache.Stale())
			}
			if sum := outcomes["cache"] + outcomes["dedup"] + outcomes["network"] + outcomes["stale"]; sum != total {
				t.Errorf("labeled spans = %d, want %d (outcomes: %v)", sum, total, outcomes)
			}
		})
	}
}

// TestStackDeadHostIsolated: with one host terminally down, the other
// hosts' fetches all succeed, the dead host's requests fail with a
// host-attributed outage decided once per request key (the memo), and
// the serving identity holds for the successes.
func TestStackDeadHostIsolated(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			stats := &Stats{}
			raw := FetcherFunc(func(req *Request) (*Response, error) {
				if hostOf(req.URL) == "dead" {
					return nil, ErrSimulatedOutage
				}
				return HTML(req.URL, "<html><body>ok</body></html>"), nil
			})
			f := WithRetryPolicy(raw, RetryPolicy{Retries: 2}, stats)
			f = Counting(f, stats)
			f = WithHostLimit(f, 2, stats)
			f = WithOutageMemo(f)
			f = WithSingleflight(f, stats)
			cache := NewCache()
			f = WithCache(f, cache)
			ctx := ContextWithOutageMemo(context.Background(), NewOutageMemo())

			var ops []string
			for p := 0; p < 4; p++ {
				ops = append(ops, fmt.Sprintf("http://dead/p/%d", p),
					fmt.Sprintf("http://alive/p/%d", p))
			}
			ops = append(ops, ops...) // every URL twice

			var mu sync.Mutex
			successes, failures := int64(0), 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(ops); i += workers {
						_, err := f.Fetch(NewGet(ops[i]).WithContext(ctx))
						mu.Lock()
						if err != nil {
							failures++
							if !IsOutage(err) || FailingHost(err) != "dead" {
								t.Errorf("%s: bad failure %v", ops[i], err)
							}
						} else {
							successes++
						}
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()

			if failures != 8 { // 4 dead URLs × 2 ops each
				t.Errorf("failures = %d, want 8", failures)
			}
			if served := cache.Hits() + stats.Deduped() + stats.Pages() + cache.Stale(); served < successes {
				t.Errorf("identity: served=%d < successes=%d", served, successes)
			}
		})
	}
}
