package web

import (
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

func demoSite(host string) *Mux {
	m := NewMux(host)
	m.Handle("/", FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "<html><body>home of "+host+"</body></html>"), nil
	}))
	m.Handle("/cgi/echo", FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "<html><body>q="+req.Param("q")+"</body></html>"), nil
	}))
	return m
}

func TestServerRouting(t *testing.T) {
	s := NewServer()
	s.Register(demoSite("a.example"))
	s.Register(demoSite("b.example"))

	resp, err := s.Fetch(NewGet("http://a.example/"))
	if err != nil || !resp.OK() {
		t.Fatalf("fetch a: %v %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "home of a.example") {
		t.Errorf("wrong body: %s", resp.Body)
	}
	if _, err := s.Fetch(NewGet("http://missing.example/")); err == nil {
		t.Error("expected error for unknown host")
	}
	if hosts := s.Hosts(); len(hosts) != 2 || hosts[0] != "a.example" {
		t.Errorf("hosts = %v", hosts)
	}
}

func TestMux404AndBadURL(t *testing.T) {
	m := demoSite("a.example")
	resp, err := m.Serve(NewGet("http://a.example/nope"))
	if err != nil || resp.Status != 404 {
		t.Errorf("expected 404, got %v %v", resp, err)
	}
	if _, err := m.Serve(NewGet("http://bad url")); err == nil {
		t.Error("expected parse error")
	}
}

func TestRequestParamMergesQueryAndForm(t *testing.T) {
	req := NewSubmit("http://h/cgi?q=fromurl&r=1", "GET", url.Values{"q": {"fromform"}})
	if got := req.Param("q"); got != "fromform" {
		t.Errorf("form should win: %q", got)
	}
	if got := req.Param("r"); got != "1" {
		t.Errorf("url query fallback: %q", got)
	}
	if got := req.Param("zz"); got != "" {
		t.Errorf("missing param: %q", got)
	}
}

func TestRequestKeyCanonical(t *testing.T) {
	a := NewSubmit("http://h/s", "POST", url.Values{"x": {"1"}, "y": {"2"}})
	b := NewSubmit("http://h/s", "POST", url.Values{"y": {"2"}, "x": {"1"}})
	if a.Key() != b.Key() {
		t.Error("keys should be order-independent")
	}
	c := NewGet("http://h/s")
	if a.Key() == c.Key() {
		t.Error("method must differentiate keys")
	}
}

func TestCountingStats(t *testing.T) {
	s := NewServer()
	s.Register(demoSite("a.example"))
	var stats Stats
	f := Counting(s, &stats)
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(NewGet("http://a.example/")); err != nil {
			t.Fatal(err)
		}
	}
	if stats.Pages() != 3 {
		t.Errorf("pages = %d", stats.Pages())
	}
	if stats.Bytes() == 0 {
		t.Error("bytes not recorded")
	}
	if stats.PerHost()["a.example"] != 3 {
		t.Errorf("per-host = %v", stats.PerHost())
	}
}

func TestCountingConcurrent(t *testing.T) {
	s := NewServer()
	s.Register(demoSite("a.example"))
	var stats Stats
	f := Counting(s, &stats)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				f.Fetch(NewGet("http://a.example/"))
			}
		}()
	}
	wg.Wait()
	if stats.Pages() != 200 {
		t.Errorf("pages = %d, want 200", stats.Pages())
	}
}

func TestLatencyModelDeterministic(t *testing.T) {
	m := LatencyModel{PerRequest: time.Millisecond, PerKB: time.Millisecond, Jitter: 5 * time.Millisecond}
	d1 := m.Latency("http://a/x", 2048)
	d2 := m.Latency("http://a/x", 2048)
	if d1 != d2 {
		t.Error("latency must be deterministic per URL")
	}
	if d1 < 3*time.Millisecond { // 1ms base + 2ms for 2KB
		t.Errorf("latency %v too small", d1)
	}
	if m.Latency("http://a/x", 0) == m.Latency("http://a/y", 0) {
		t.Log("jitter collision (allowed but unlikely)")
	}
}

func TestWithLatencyVirtualAccounting(t *testing.T) {
	s := NewServer()
	s.Register(demoSite("a.example"))
	var stats Stats
	f := WithLatency(s, LatencyModel{PerRequest: 10 * time.Millisecond}, &stats)
	start := time.Now()
	f.Fetch(NewGet("http://a.example/"))
	f.Fetch(NewGet("http://a.example/"))
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Errorf("non-sleeping latency fetcher slept: %v", el)
	}
	if got := stats.SimulatedLatency(); got != 20*time.Millisecond {
		t.Errorf("virtual latency = %v, want 20ms", got)
	}
}

func TestWithLatencySleeps(t *testing.T) {
	s := NewServer()
	s.Register(demoSite("a.example"))
	var stats Stats
	f := WithLatency(s, LatencyModel{PerRequest: 5 * time.Millisecond, Sleep: true}, &stats)
	start := time.Now()
	f.Fetch(NewGet("http://a.example/"))
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Errorf("sleeping latency fetcher returned too fast: %v", el)
	}
}

func TestCache(t *testing.T) {
	s := NewServer()
	s.Register(demoSite("a.example"))
	var stats Stats
	cache := NewCache()
	f := WithCache(Counting(s, &stats), cache)

	for i := 0; i < 5; i++ {
		resp, err := f.Fetch(NewGet("http://a.example/cgi/echo?q=ford"))
		if err != nil || !strings.Contains(string(resp.Body), "q=ford") {
			t.Fatalf("fetch %d: %v %v", i, resp, err)
		}
	}
	if stats.Pages() != 1 {
		t.Errorf("inner fetches = %d, want 1 (cache should absorb repeats)", stats.Pages())
	}
	if cache.Hits() != 4 || cache.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", cache.Hits(), cache.Misses())
	}
	// Distinct form values are distinct entries.
	f.Fetch(NewSubmit("http://a.example/cgi/echo", "GET", url.Values{"q": {"jaguar"}}))
	if cache.Len() != 2 {
		t.Errorf("cache len = %d, want 2", cache.Len())
	}
	cache.Clear()
	if cache.Len() != 0 {
		t.Error("clear failed")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	// Simulated web → net/http server → HTTPFetcher → same pages.
	s := NewServer()
	s.Register(demoSite("a.example"))
	ts := httptest.NewServer(HTTPHandler(s, "http", "a.example"))
	defer ts.Close()

	hf := &HTTPFetcher{Rewrite: func(u string) string {
		return strings.Replace(u, "http://a.example", ts.URL, 1)
	}}
	resp, err := hf.Fetch(NewGet("http://a.example/cgi/echo?q=ford"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "q=ford") {
		t.Errorf("body: %s", resp.Body)
	}
	// POST path.
	resp, err = hf.Fetch(NewSubmit("http://a.example/cgi/echo", "POST", url.Values{"q": {"gm"}}))
	if err != nil || !strings.Contains(string(resp.Body), "q=gm") {
		t.Errorf("post body: %v %v", resp, err)
	}
}

func TestParseQueryLenient(t *testing.T) {
	if v := ParseQuery("a=1&b=2"); v.Get("b") != "2" {
		t.Error("parse failed")
	}
	if v := ParseQuery("%zz=bad"); len(v) != 0 {
		t.Error("bad query should be empty")
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://a.example/x?y=1": "a.example",
		"http://a.example":       "a.example",
		"http://a.example?x=1":   "a.example",
		"noscheme":               "noscheme",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}
