package web

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// tick is a manually advanced clock for deterministic breaker tests.
type tick struct{ now time.Time }

func newTick() *tick { return &tick{now: time.Unix(1000, 0)} }

func (c *tick) Now() time.Time          { return c.now }
func (c *tick) Advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *tick) Clock() func() time.Time { return c.Now }

// switchFetcher fails while down is set and serves otherwise, counting
// the fetches that actually reach it.
type switchFetcher struct {
	down  atomic.Bool
	calls atomic.Int64
}

func (s *switchFetcher) Fetch(req *Request) (*Response, error) {
	s.calls.Add(1)
	if s.down.Load() {
		return nil, errors.New("connection refused")
	}
	return HTML(req.URL, "<html><body>ok</body></html>"), nil
}

// TestBreakerTransitions walks one host's circuit through the full
// closed → open → half-open → closed cycle, stepping the injected clock
// between phases so every transition is deterministic.
func TestBreakerTransitions(t *testing.T) {
	inner := &switchFetcher{}
	clk := newTick()
	stats := &Stats{}
	br := NewBreaker(inner, BreakerConfig{
		Window: 4, MinSamples: 4, FailureRatio: 0.5,
		Cooldown: 10 * time.Second, Clock: clk.Clock(),
	}, stats)
	const url = "http://h/x"

	// Closed: healthy traffic flows and keeps the circuit closed.
	for i := 0; i < 6; i++ {
		if _, err := br.Fetch(NewGet(url)); err != nil {
			t.Fatalf("healthy fetch %d: %v", i, err)
		}
	}
	if st := br.State("h"); st != BreakerClosed {
		t.Fatalf("state after healthy traffic = %v", st)
	}

	// The window holds the 4 most recent outcomes (all successes). Two
	// failures push the ratio to 2/4 = 0.5 ≥ threshold: the circuit
	// opens on exactly the second failure.
	inner.down.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := br.Fetch(NewGet(url)); err == nil {
			t.Fatalf("failing fetch %d unexpectedly succeeded", i)
		}
	}
	if st := br.State("h"); st != BreakerOpen {
		t.Fatalf("state after failures = %v, want open", st)
	}
	if br.Opens("h") != 1 {
		t.Fatalf("opens = %d", br.Opens("h"))
	}

	// Open: fetches are rejected without touching the network, with an
	// Outage-classified, host-attributed circuit-open error.
	before := inner.calls.Load()
	_, err := br.Fetch(NewGet(url))
	if err == nil {
		t.Fatal("open circuit let a fetch through")
	}
	if !errors.Is(err, ErrCircuitOpen) || !IsOutage(err) {
		t.Fatalf("rejection not taxonomized: %v", err)
	}
	if FailingHost(err) != "h" {
		t.Fatalf("rejection host = %q", FailingHost(err))
	}
	if inner.calls.Load() != before {
		t.Fatal("rejected fetch reached the inner fetcher")
	}
	if stats.BreakerRejects() != 1 {
		t.Fatalf("breaker rejects = %d", stats.BreakerRejects())
	}

	// Half-open after cooldown: the site is still down, so the probe
	// fails and the circuit re-opens for another cooldown.
	clk.Advance(10 * time.Second)
	if st := br.State("h"); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if _, err := br.Fetch(NewGet(url)); err == nil {
		t.Fatal("failed probe unexpectedly succeeded")
	}
	if st := br.State("h"); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if br.Opens("h") != 2 {
		t.Fatalf("opens after failed probe = %d", br.Opens("h"))
	}

	// Second cooldown; the site has recovered, so the probe succeeds and
	// the circuit closes.
	clk.Advance(10 * time.Second)
	inner.down.Store(false)
	if _, err := br.Fetch(NewGet(url)); err != nil {
		t.Fatalf("recovering probe failed: %v", err)
	}
	if st := br.State("h"); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	// And traffic flows again.
	if _, err := br.Fetch(NewGet(url)); err != nil {
		t.Fatalf("post-recovery fetch failed: %v", err)
	}
}

// TestBreakerPerHostIsolation: one dead host must not open another
// host's circuit.
func TestBreakerPerHostIsolation(t *testing.T) {
	clk := newTick()
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		if hostOf(req.URL) == "dead" {
			return nil, errors.New("connection refused")
		}
		return HTML(req.URL, "<html><body>ok</body></html>"), nil
	})
	br := NewBreaker(inner, BreakerConfig{
		Window: 2, MinSamples: 2, FailureRatio: 0.5,
		Cooldown: time.Hour, Clock: clk.Clock(),
	}, nil)
	for i := 0; i < 3; i++ {
		br.Fetch(NewGet("http://dead/x"))
		if _, err := br.Fetch(NewGet("http://alive/x")); err != nil {
			t.Fatalf("alive host affected: %v", err)
		}
	}
	if st := br.State("dead"); st != BreakerOpen {
		t.Fatalf("dead host state = %v", st)
	}
	if st := br.State("alive"); st != BreakerClosed {
		t.Fatalf("alive host state = %v", st)
	}
}

// TestBreakerHalfOpenSingleProbe: while one probe is in flight, other
// fetches of the same host are still rejected.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newTick()
	release := make(chan struct{})
	entered := make(chan struct{})
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		close(entered)
		<-release
		return HTML(req.URL, "<html><body>ok</body></html>"), nil
	})
	br := NewBreaker(inner, BreakerConfig{
		Window: 1, MinSamples: 1, FailureRatio: 0.5,
		Cooldown: time.Second, Clock: clk.Clock(),
	}, nil)
	// Trip the host's circuit directly (white-box): the transition
	// mechanics are covered by TestBreakerTransitions.
	br.host("h").trip(clk.Now())

	clk.Advance(time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := br.Fetch(NewGet("http://h/probe"))
		done <- err
	}()
	<-entered // the probe holds the half-open slot
	if _, err := br.Fetch(NewGet("http://h/second")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second fetch during probe: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if st := br.State("h"); st != BreakerClosed {
		t.Fatalf("state after probe = %v", st)
	}
}

// TestBreakerIgnoresCancellation: a cancelled fetch is the caller's
// doing, not the site's — it must not push the circuit toward open.
func TestBreakerIgnoresCancellation(t *testing.T) {
	clk := newTick()
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, context.Canceled
	})
	br := NewBreaker(inner, BreakerConfig{
		Window: 2, MinSamples: 2, FailureRatio: 0.5,
		Cooldown: time.Hour, Clock: clk.Clock(),
	}, nil)
	for i := 0; i < 10; i++ {
		br.Fetch(NewGet("http://h/x"))
	}
	if st := br.State("h"); st != BreakerClosed {
		t.Fatalf("cancellations opened the circuit: %v", st)
	}
}
