package web

import (
	"io"
	"net/http"
	"net/url"
	"strings"
)

// HTTPHandler exposes a Fetcher (typically a *Server) as a net/http
// handler, so the simulated web can also be served over real sockets —
// useful for demos and for driving the webbase against a live server.
func HTTPHandler(f Fetcher, scheme, host string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Rebuild the in-process absolute URL: the Host header selects the
		// simulated site when host == "", enabling virtual hosting.
		h := host
		if h == "" {
			h = r.Host
		}
		req := &Request{
			URL:    scheme + "://" + h + r.URL.Path + querySuffix(r.URL.RawQuery),
			Method: r.Method,
			Form:   r.PostForm,
		}
		resp, err := f.Fetch(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(resp.Status)
		w.Write(resp.Body)
	})
}

func querySuffix(raw string) string {
	if raw == "" {
		return ""
	}
	return "?" + raw
}

// HTTPFetcher adapts an *http.Client to the Fetcher interface, allowing the
// navigation calculus to run against a real HTTP server (e.g. an httptest
// instance serving HTTPHandler).
type HTTPFetcher struct {
	Client *http.Client
	// Rewrite optionally maps simulated URLs to real ones (e.g. replacing
	// the virtual host with an httptest server address).
	Rewrite func(string) string
}

// Fetch implements Fetcher over real HTTP.
func (h *HTTPFetcher) Fetch(req *Request) (*Response, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	target := req.URL
	if h.Rewrite != nil {
		target = h.Rewrite(target)
	}
	var (
		resp *http.Response
		err  error
	)
	if strings.EqualFold(req.Method, "POST") {
		body := ""
		if req.Form != nil {
			body = req.Form.Encode()
		}
		resp, err = client.Post(target, "application/x-www-form-urlencoded", strings.NewReader(body))
	} else {
		u := target
		if len(req.Form) > 0 {
			sep := "?"
			if strings.Contains(u, "?") {
				sep = "&"
			}
			u += sep + req.Form.Encode()
		}
		resp, err = client.Get(u)
	}
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &Response{Status: resp.StatusCode, URL: req.URL, Body: body}, nil
}

var _ Fetcher = (*HTTPFetcher)(nil)

// ParseQuery is a convenience wrapper over url.ParseQuery that swallows
// errors — simulated CGI scripts treat unparsable queries as empty, the way
// lenient 1990s servers did.
func ParseQuery(raw string) url.Values {
	v, err := url.ParseQuery(raw)
	if err != nil {
		return url.Values{}
	}
	return v
}
