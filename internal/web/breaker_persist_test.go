package web

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// tripBreaker drives a breaker's circuit for host open with failures.
func tripBreaker(t *testing.T, br *Breaker, host string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		br.Fetch(NewGet("http://" + host + "/p"))
	}
	if br.State(host) != BreakerOpen {
		t.Fatalf("circuit for %s = %v after %d failures, want open", host, br.State(host), n)
	}
}

func failingFetcher() Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		return nil, MarkOutage(&HostError{Host: hostOf(req.URL), Err: errors.New("down")})
	})
}

func TestBreakerSnapshotRestore(t *testing.T) {
	now := time.Unix(50_000, 0)
	clock := func() time.Time { return now }
	cfg := BreakerConfig{Window: 2, MinSamples: 2, Cooldown: time.Hour, Clock: clock}

	var changes []string
	cfg.OnChange = func(host string, state BreakerState) {
		changes = append(changes, host+":"+state.String())
	}
	br := NewBreaker(failingFetcher(), cfg, nil)
	tripBreaker(t, br, "dead.test", 2)
	br.Fetch(NewGet("http://alive.test/p")) // one failure: still closed

	if len(changes) != 1 || changes[0] != "dead.test:open" {
		t.Fatalf("OnChange fired %v, want exactly [dead.test:open]", changes)
	}

	// Snapshot holds only the open circuit, and survives the JSON
	// round-trip the durable store uses.
	snap := br.Snapshot()
	if len(snap) != 1 || snap["dead.test"].State != "open" || snap["dead.test"].Opens != 1 {
		t.Fatalf("snapshot = %+v, want only dead.test open with opens=1", snap)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]BreakerSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh breaker restored from the snapshot fails fast
	// without a single network fetch to the dead host.
	calls := 0
	br2 := NewBreaker(FetcherFunc(func(req *Request) (*Response, error) {
		calls++
		return HTML(req.URL, "ok"), nil
	}), cfg, nil)
	br2.Restore(decoded)
	if br2.State("dead.test") != BreakerOpen {
		t.Fatalf("restored state = %v, want open", br2.State("dead.test"))
	}
	if _, err := br2.Fetch(NewGet("http://dead.test/p")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("restored circuit admitted a fetch: %v", err)
	}
	if calls != 0 {
		t.Fatalf("restored open circuit let %d fetches through", calls)
	}
	if br2.Opens("dead.test") != 1 {
		t.Fatalf("lifetime opens not restored: %d", br2.Opens("dead.test"))
	}
	// The healthy host is untouched by the restore.
	if _, err := br2.Fetch(NewGet("http://alive.test/p")); err != nil {
		t.Fatalf("unrelated host affected by restore: %v", err)
	}
}

// TestBreakerRestoreElapsedCooldown: the original openedAt is kept, so a
// cooldown that elapsed while the process was down means the first fetch
// after restart is a half-open probe — persistence never delays recovery.
func TestBreakerRestoreElapsedCooldown(t *testing.T) {
	now := time.Unix(50_000, 0)
	cfg := BreakerConfig{Window: 2, MinSamples: 2, Cooldown: time.Minute,
		Clock: func() time.Time { return now }}
	br := NewBreaker(FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "recovered"), nil
	}), cfg, nil)
	br.Restore(map[string]BreakerSnapshot{
		"dead.test": {State: "open", OpenedAt: now.Add(-time.Hour), Opens: 3},
	})
	resp, err := br.Fetch(NewGet("http://dead.test/p"))
	if err != nil || string(resp.Body) != "recovered" {
		t.Fatalf("elapsed-cooldown probe = (%v, %v), want success", resp, err)
	}
	if br.State("dead.test") != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", br.State("dead.test"))
	}
}

// TestBreakerRestoreIsIgnoredOnLiveCircuit: restore never clobbers a
// circuit that has already seen traffic, and garbage states are ignored.
func TestBreakerRestoreIsIgnoredOnLiveCircuit(t *testing.T) {
	cfg := BreakerConfig{Window: 4, MinSamples: 4}
	br := NewBreaker(FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "ok"), nil
	}), cfg, nil)
	if _, err := br.Fetch(NewGet("http://live.test/p")); err != nil {
		t.Fatal(err)
	}
	br.Restore(map[string]BreakerSnapshot{
		"live.test": {State: "open", OpenedAt: time.Unix(1, 0)},
		"odd.test":  {State: "wedged"}, // unknown state string: ignored
	})
	if br.State("live.test") != BreakerClosed {
		t.Fatal("restore clobbered a circuit with live traffic")
	}
	if br.State("odd.test") != BreakerClosed {
		t.Fatal("garbage snapshot state restored")
	}
}
