package web

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// slowFirstAttempt answers the first attempt per request key slowly and
// later attempts instantly — the canonical hedge-win scenario.
type slowFirstAttempt struct {
	attempts atomic.Int64
	delay    time.Duration
	failSlow error // when non-nil, the slow attempt fails with this
	failFast error // when non-nil, the fast attempt fails with this
}

func (s *slowFirstAttempt) Fetch(req *Request) (*Response, error) {
	if s.attempts.Add(1) == 1 {
		time.Sleep(s.delay)
		if s.failSlow != nil {
			return nil, s.failSlow
		}
	} else if s.failFast != nil {
		return nil, s.failFast
	}
	return HTML(req.URL, "<html><body>"+req.URL+"</body></html>"), nil
}

func TestHedgeSecondAttemptWins(t *testing.T) {
	inner := &slowFirstAttempt{delay: 200 * time.Millisecond}
	stats := &Stats{}
	f := WithHedge(inner, 5*time.Millisecond, stats)

	start := time.Now()
	resp, err := f.Fetch(NewGet("http://slow.example/p"))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= inner.delay {
		t.Errorf("hedged fetch took %v, the full slow-attempt latency", elapsed)
	}
	if string(resp.Body) == "" {
		t.Fatal("empty response")
	}
	if stats.Hedges() != 1 {
		t.Errorf("hedges = %d, want 1", stats.Hedges())
	}
	if stats.HedgeWins() != 1 {
		t.Errorf("hedge wins = %d, want 1", stats.HedgeWins())
	}
}

func TestHedgeNotIssuedWhenPrimaryFast(t *testing.T) {
	var calls atomic.Int64
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		calls.Add(1)
		return HTML(req.URL, "<html></html>"), nil
	})
	stats := &Stats{}
	f := WithHedge(inner, 50*time.Millisecond, stats)
	if _, err := f.Fetch(NewGet("http://fast.example/p")); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("inner fetched %d times, want 1", calls.Load())
	}
	if stats.Hedges() != 0 {
		t.Errorf("hedges = %d, want 0", stats.Hedges())
	}
}

// TestHedgeBothFailReturnsPrimaryError pins deterministic loser
// selection: when both attempts fail, the PRIMARY attempt's error
// surfaces even though the hedge attempt failed first — so host
// attribution and degradation reports don't depend on the race.
func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	errPrimary := errors.New("primary transport failure")
	errHedge := errors.New("hedge transport failure")
	inner := &slowFirstAttempt{delay: 30 * time.Millisecond, failSlow: errPrimary, failFast: errHedge}
	f := WithHedge(inner, 5*time.Millisecond, &Stats{})
	_, err := f.Fetch(NewGet("http://down.example/p"))
	if !errors.Is(err, errPrimary) {
		t.Fatalf("got %v, want the primary attempt's error", err)
	}
	if errors.Is(err, errHedge) {
		t.Fatalf("hedge attempt's error leaked: %v", err)
	}
}

func TestHedgeHonorsCancellation(t *testing.T) {
	// Both attempts hang until the test ends, so only cancellation can
	// unblock the caller.
	gate := make(chan struct{})
	defer close(gate)
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		<-gate
		return HTML(req.URL, "<html></html>"), nil
	})
	f := WithHedge(inner, 5*time.Millisecond, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.Fetch(NewGet("http://hung.example/p").WithContext(ctx))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the hedge fire, then give up
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("cancelled hedged fetch did not return")
	}
}

func TestHedgeDisabled(t *testing.T) {
	inner := newCountingInner(0)
	if f := WithHedge(inner, 0, nil); f != Fetcher(inner) {
		t.Error("zero delay should return inner unwrapped")
	}
}

// slowEveryAttempt answers every attempt after the same delay, so each
// fetch through the hedge middleware is hedge-eligible.
type slowEveryAttempt struct {
	attempts atomic.Int64
	delay    time.Duration
}

func (s *slowEveryAttempt) Fetch(req *Request) (*Response, error) {
	s.attempts.Add(1)
	time.Sleep(s.delay)
	return HTML(req.URL, "<html><body>"+req.URL+"</body></html>"), nil
}

// TestHedgeBudgetCapsDuplicates: with a hedge budget of 1 on the context,
// only the first slow fetch hedges; later slow fetches wait for their
// primary attempt and are counted suppressed — identical answers, bounded
// duplicate load.
func TestHedgeBudgetCapsDuplicates(t *testing.T) {
	inner := &slowEveryAttempt{delay: 30 * time.Millisecond}
	stats := &Stats{}
	f := WithHedge(inner, 5*time.Millisecond, stats)
	ctx := ContextWithHedgeBudget(context.Background(), NewRetryBudget(1))

	for i := 0; i < 3; i++ {
		req := NewGet("http://slow.example/p" + string(rune('a'+i))).WithContext(ctx)
		if _, err := f.Fetch(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.Hedges(); got != 1 {
		t.Errorf("hedges = %d, want 1 (budget)", got)
	}
	if got := stats.HedgesSuppressed(); got != 2 {
		t.Errorf("hedges suppressed = %d, want 2", got)
	}
	// 3 primaries + 1 hedged duplicate.
	if got := inner.attempts.Load(); got != 4 {
		t.Errorf("inner attempts = %d, want 4", got)
	}
}

// TestHedgeNoBudgetIsUnlimited: without a budget on the context every
// eligible fetch may hedge (the historical behavior).
func TestHedgeNoBudgetIsUnlimited(t *testing.T) {
	inner := &slowEveryAttempt{delay: 30 * time.Millisecond}
	stats := &Stats{}
	f := WithHedge(inner, 5*time.Millisecond, stats)
	for i := 0; i < 2; i++ {
		if _, err := f.Fetch(NewGet("http://slow.example/q" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.Hedges(); got != 2 {
		t.Errorf("hedges = %d, want 2", got)
	}
	if got := stats.HedgesSuppressed(); got != 0 {
		t.Errorf("hedges suppressed = %d, want 0", got)
	}
}
