package web

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"webbase/internal/trace"
)

// TestCacheStaleOnError: an expired entry no longer satisfies a fetch
// outright, but when the network path fails it is served as a last
// resort, labeled outcome=stale, and counted.
func TestCacheStaleOnError(t *testing.T) {
	clk := newTick()
	inner := &switchFetcher{}
	cache := NewCache()
	cache.MaxAge = time.Minute
	cache.AllowStale = true
	cache.Clock = clk.Clock()
	f := WithCache(inner, cache)
	const url = "http://h/page"

	// Prime the cache, then hit it while fresh.
	if _, err := f.Fetch(NewGet(url)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch(NewGet(url)); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", cache.Hits(), cache.Misses())
	}

	// Expired + healthy network: refetches rather than serving stale.
	clk.Advance(2 * time.Minute)
	if _, err := f.Fetch(NewGet(url)); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 2 || cache.Stale() != 0 {
		t.Fatalf("after expiry: misses=%d stale=%d", cache.Misses(), cache.Stale())
	}

	// Expired + dead network: the stale entry is served with the label.
	clk.Advance(2 * time.Minute)
	inner.down.Store(true)
	tr := trace.New("stale", clk.Clock())
	sp := trace.Start(trace.ContextWith(context.Background(), tr.Root), trace.KindFetch, url)
	req := NewGet(url).WithContext(trace.ContextWith(context.Background(), sp))
	resp, err := f.Fetch(req)
	if err != nil {
		t.Fatalf("stale-on-error did not rescue: %v", err)
	}
	if resp == nil || len(resp.Body) == 0 {
		t.Fatal("empty stale response")
	}
	if cache.Stale() != 1 {
		t.Fatalf("stale = %d", cache.Stale())
	}
	sp.End()
	tr.Root.End()
	if lbl := sp.LabelValue("outcome"); lbl != "stale" {
		t.Fatalf("outcome label = %q, want stale", lbl)
	}
	if age := sp.LabelValue("stale-age"); age == "" {
		t.Fatal("stale-age label missing")
	}

	// Without AllowStale the same failure surfaces.
	cache2 := NewCache()
	cache2.MaxAge = time.Minute
	cache2.Clock = clk.Clock()
	inner2 := &switchFetcher{}
	f2 := WithCache(inner2, cache2)
	if _, err := f2.Fetch(NewGet(url)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	inner2.down.Store(true)
	if _, err := f2.Fetch(NewGet(url)); err == nil {
		t.Fatal("expired entry served without AllowStale on a dead network")
	}

	// Cancellation is never papered over with stale data.
	inner.down.Store(false)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ctxInner := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, req.Context().Err()
	})
	cache3 := NewCache()
	cache3.MaxAge = time.Minute
	cache3.AllowStale = true
	cache3.Clock = clk.Clock()
	f3 := WithCache(ctxInner, cache3)
	ok := FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "<html><body>x</body></html>"), nil
	})
	if _, err := WithCache(ok, cache3).Fetch(NewGet(url)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if _, err := f3.Fetch(NewGet(url).WithContext(cancelled)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation rescued by stale entry: %v", err)
	}
}

// TestCacheClearDropsInFlightFill is the generation-number regression
// test: a response that started fetching before Clear() must not be
// stored after it — the clear meant to discard exactly that page.
func TestCacheClearDropsInFlightFill(t *testing.T) {
	cache := NewCache()
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		close(entered)
		<-release
		return HTML(req.URL, "<html><body>pre-clear</body></html>"), nil
	})
	f := WithCache(inner, cache)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Errorf("fetch: %v", err)
		}
	}()
	<-entered
	cache.Clear() // the fill is mid-flight; its generation is now stale
	close(release)
	<-done
	if n := cache.Len(); n != 0 {
		t.Fatalf("pre-clear fill resurrected: cache len = %d", n)
	}
}

// TestCacheClearDuringFillRace hammers Clear against concurrent fills
// (run with -race): afterwards every cached entry must be from the
// current generation, i.e. refetchable state only.
func TestCacheClearDuringFillRace(t *testing.T) {
	cache := NewCache()
	inner := okFetcher()
	f := WithCache(inner, cache)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := "http://h/" + string(rune('a'+g)) + "/x"
				if _, err := f.Fetch(NewGet(url)); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				if i%7 == 0 {
					cache.Clear()
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
