package web

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingInner is a test fetcher that tracks total calls and, per host,
// the current and peak number of concurrently executing fetches.
type countingInner struct {
	mu      sync.Mutex
	calls   int64
	cur     map[string]int
	peak    map[string]int
	delay   time.Duration
	failAll bool
}

func newCountingInner(delay time.Duration) *countingInner {
	return &countingInner{cur: make(map[string]int), peak: make(map[string]int), delay: delay}
}

func (c *countingInner) Fetch(req *Request) (*Response, error) {
	host := hostOf(req.URL)
	c.mu.Lock()
	c.calls++
	c.cur[host]++
	if c.cur[host] > c.peak[host] {
		c.peak[host] = c.cur[host]
	}
	c.mu.Unlock()
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.mu.Lock()
	c.cur[host]--
	c.mu.Unlock()
	if c.failAll {
		return nil, errors.New("inner failure")
	}
	return HTML(req.URL, "<html><body>"+req.URL+"</body></html>"), nil
}

func (c *countingInner) Calls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func (c *countingInner) Peak(host string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak[host]
}

func TestSingleflightCollapsesConcurrentIdentical(t *testing.T) {
	inner := newCountingInner(20 * time.Millisecond)
	stats := &Stats{}
	f := WithSingleflight(inner, stats)
	req := NewGet("http://site.example/page")

	const n = 16
	var wg sync.WaitGroup
	bodies := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := f.Fetch(req)
			errs[i] = err
			if resp != nil {
				bodies[i] = string(resp.Body)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fetch %d: %v", i, errs[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("fetch %d saw a different body", i)
		}
	}
	if got := inner.Calls(); got != 1 {
		t.Errorf("inner fetched %d times, want 1", got)
	}
	if got := stats.Deduped(); got != n-1 {
		t.Errorf("deduped = %d, want %d", got, n-1)
	}
}

func TestSingleflightDistinctRequestsNotCollapsed(t *testing.T) {
	inner := newCountingInner(5 * time.Millisecond)
	stats := &Stats{}
	f := WithSingleflight(inner, stats)

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := f.Fetch(NewGet(fmt.Sprintf("http://site.example/page%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := inner.Calls(); got != n {
		t.Errorf("inner fetched %d times, want %d", got, n)
	}
	if got := stats.Deduped(); got != 0 {
		t.Errorf("deduped = %d, want 0", got)
	}
}

// TestSingleflightSequentialRefetches pins that deduplication only spans
// in-flight requests: a later identical fetch executes again (the cache,
// not singleflight, is responsible for cross-time reuse).
func TestSingleflightSequentialRefetches(t *testing.T) {
	inner := newCountingInner(0)
	f := WithSingleflight(inner, nil)
	req := NewGet("http://site.example/page")
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.Calls(); got != 3 {
		t.Errorf("inner fetched %d times, want 3", got)
	}
}

func TestSingleflightErrorSharedByFollowers(t *testing.T) {
	inner := newCountingInner(20 * time.Millisecond)
	inner.failAll = true
	f := WithSingleflight(inner, nil)
	req := NewGet("http://down.example/")

	const n = 6
	var wg sync.WaitGroup
	var errCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.Fetch(req); err != nil {
				errCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if errCount.Load() != n {
		t.Errorf("%d of %d callers saw the error", errCount.Load(), n)
	}
	if got := inner.Calls(); got == 0 || got > n {
		t.Errorf("inner calls = %d", got)
	}
}

// TestHostLimitCapRespected drives many concurrent fetches at two hosts
// through per-host caps of varying width and asserts the inner fetcher
// never sees more than the cap in flight per host — while other hosts
// proceed independently.
func TestHostLimitCapRespected(t *testing.T) {
	for _, cap := range []int{1, 2, 4} {
		cap := cap
		t.Run(fmt.Sprintf("cap=%d", cap), func(t *testing.T) {
			inner := newCountingInner(5 * time.Millisecond)
			stats := &Stats{}
			f := WithHostLimit(inner, cap, stats)

			const perHost = 12
			var wg sync.WaitGroup
			for i := 0; i < perHost; i++ {
				for _, host := range []string{"a.example", "b.example"} {
					wg.Add(1)
					go func(host string, i int) {
						defer wg.Done()
						if _, err := f.Fetch(NewGet(fmt.Sprintf("http://%s/p%d", host, i))); err != nil {
							t.Error(err)
						}
					}(host, i)
				}
			}
			wg.Wait()
			for _, host := range []string{"a.example", "b.example"} {
				if peak := inner.Peak(host); peak > cap {
					t.Errorf("%s: %d concurrent fetches, cap %d", host, peak, cap)
				}
			}
			if got := inner.Calls(); got != 2*perHost {
				t.Errorf("inner calls = %d, want %d", got, 2*perHost)
			}
			if stats.PeakInFlight() == 0 || stats.PeakInFlight() > int64(2*cap) {
				t.Errorf("peak in-flight = %d with two hosts capped at %d", stats.PeakInFlight(), cap)
			}
			if cap == 1 && stats.LimiterWait() == 0 {
				t.Error("no limiter wait recorded despite 12 fetches through a cap of 1")
			}
		})
	}
}

// TestHostLimitFIFOFairness pins the FIFO-ish service order: with a cap
// of 1, fetches that queued earlier execute earlier (Go wakes blocked
// channel senders in arrival order, so no waiter starves).
func TestHostLimitFIFOFairness(t *testing.T) {
	var mu sync.Mutex
	var order []int
	inner := FetcherFunc(func(req *Request) (*Response, error) {
		var i int
		fmt.Sscanf(req.Param("i"), "%d", &i)
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		return HTML(req.URL, "<html></html>"), nil
	})
	f := WithHostLimit(inner, 1, nil)

	const n = 8
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the single slot so the others must queue
		defer wg.Done()
		<-release
		f.Fetch(NewGet("http://one.example/?i=-1"))
	}()
	close(release)
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Fetch(NewGet(fmt.Sprintf("http://one.example/?i=%d", i)))
		}(i)
		time.Sleep(5 * time.Millisecond) // stagger arrivals
	}
	wg.Wait()
	if len(order) != n+1 {
		t.Fatalf("%d fetches recorded, want %d", len(order), n+1)
	}
	for i := 0; i < n; i++ {
		if order[i+1] != i {
			t.Fatalf("service order %v not FIFO", order)
		}
	}
}

// TestHostLimitDisabled pins that a non-positive cap is a no-op wrapper.
func TestHostLimitDisabled(t *testing.T) {
	inner := newCountingInner(0)
	if f := WithHostLimit(inner, 0, nil); f != Fetcher(inner) {
		t.Error("cap 0 should return inner unwrapped")
	}
	if f := WithHostLimit(inner, -1, nil); f != Fetcher(inner) {
		t.Error("negative cap should return inner unwrapped")
	}
}

// gatedInner blocks every fetch on a gate channel so tests can hold host
// slots occupied deterministically.
type gatedInner struct {
	gate    chan struct{}
	started chan string // receives the URL as each fetch begins executing
}

func newGatedInner() *gatedInner {
	return &gatedInner{gate: make(chan struct{}), started: make(chan string, 64)}
}

func (g *gatedInner) Fetch(req *Request) (*Response, error) {
	g.started <- req.URL
	<-g.gate
	return HTML(req.URL, "<html></html>"), nil
}

// TestBulkheadShedsWhenSaturated drives a perHost=1, maxQueue=1 bulkhead
// to saturation: one fetch executing, one queued, and the third must shed
// immediately with an outage-classified ErrHostSaturated — while another
// host proceeds untouched.
func TestBulkheadShedsWhenSaturated(t *testing.T) {
	inner := newGatedInner()
	stats := &Stats{}
	f := WithBulkhead(inner, 1, 1, stats)

	// Occupy the single slot.
	first := make(chan error, 1)
	go func() {
		_, err := f.Fetch(NewGet("http://one.example/a"))
		first <- err
	}()
	<-inner.started

	// Fill the wait queue.
	second := make(chan error, 1)
	go func() {
		_, err := f.Fetch(NewGet("http://one.example/b"))
		second <- err
	}()
	// The queued fetch never reaches inner, so give it a moment to
	// register in the wait queue before saturating it. If the third
	// fetch were to arrive before the second queued, it would queue
	// instead of shed — the timeout below catches that (rare) schedule.
	time.Sleep(50 * time.Millisecond)
	third := make(chan error, 1)
	go func() {
		_, err := f.Fetch(NewGet("http://one.example/c"))
		third <- err
	}()
	var shedErr error
	select {
	case shedErr = <-third:
	case <-time.After(2 * time.Second):
		t.Fatal("third fetch neither shed nor returned (queued against a closed gate?)")
	}
	if shedErr == nil {
		t.Fatal("third fetch completed against a closed gate")
	}
	if !errors.Is(shedErr, ErrHostSaturated) {
		t.Fatalf("shed error %v does not match ErrHostSaturated", shedErr)
	}
	if !IsOutage(shedErr) {
		t.Fatalf("shed error %v is not outage-classified", shedErr)
	}
	if host := FailingHost(shedErr); host != "one.example" {
		t.Fatalf("shed attributed to %q, want one.example", host)
	}
	if got := stats.BulkheadSheds(); got < 1 {
		t.Fatalf("bulkhead sheds = %d, want >= 1", got)
	}

	// A different host is isolated from the saturation.
	otherDone := make(chan error, 1)
	go func() {
		_, err := f.Fetch(NewGet("http://two.example/x"))
		otherDone <- err
	}()
	<-inner.started // two.example reached inner despite one.example being full

	// Open the gate: the occupant, the queued fetch and the other host
	// all complete.
	close(inner.gate)
	for name, ch := range map[string]chan error{"first": first, "second": second, "other": otherDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("%s fetch failed after gate opened: %v", name, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s fetch never completed", name)
		}
	}
}

// TestBulkheadQueuedFetchHonorsCancellation pins that a fetch parked in
// the bulkhead's wait queue unblocks when its context is cancelled.
func TestBulkheadQueuedFetchHonorsCancellation(t *testing.T) {
	inner := newGatedInner()
	f := WithBulkhead(inner, 1, 0, nil)

	go f.Fetch(NewGet("http://one.example/a")) // occupies the slot forever
	<-inner.started

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := f.Fetch(NewGet("http://one.example/b").WithContext(ctx))
		queued <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it queue
	cancel()
	select {
	case err := <-queued:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled queued fetch never returned")
	}
	close(inner.gate)
}

// TestBulkheadUnboundedQueueNeverSheds pins WithHostLimit compatibility:
// maxQueue=0 queues without bound, the historical PR 1 behavior.
func TestBulkheadUnboundedQueueNeverSheds(t *testing.T) {
	inner := newCountingInner(time.Millisecond)
	stats := &Stats{}
	f := WithBulkhead(inner, 1, 0, stats)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := f.Fetch(NewGet(fmt.Sprintf("http://one.example/p%d", i))); err != nil {
				t.Errorf("fetch %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if stats.BulkheadSheds() != 0 {
		t.Errorf("unbounded queue shed %d fetches", stats.BulkheadSheds())
	}
	if inner.Calls() != 32 {
		t.Errorf("inner calls = %d, want 32", inner.Calls())
	}
}

// TestSingleflightUnderSharedStats hammers singleflight + limiter + cache
// sharing one Stats from many goroutines; run under -race this is the
// middleware-stack race test.
func TestSingleflightUnderSharedStats(t *testing.T) {
	inner := newCountingInner(time.Millisecond)
	stats := &Stats{}
	cache := NewCache()
	f := WithCache(WithSingleflight(WithHostLimit(Counting(inner, stats), 2, stats), stats), cache)

	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				url := fmt.Sprintf("http://h%d.example/p%d", g%3, i%4)
				if _, err := f.Fetch(NewGet(url)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// 3 hosts × 4 pages = 12 distinct requests end up cached. Pages can
	// slightly exceed 12 (a fetch may miss the cache in the window before
	// the first fetcher stores its response) but the cache + singleflight
	// absorb the overwhelming majority of the 240 calls.
	if cache.Len() != 12 {
		t.Errorf("cache holds %d entries, want 12", cache.Len())
	}
	if p := stats.Pages(); p < 12 || p > 48 {
		t.Errorf("pages = %d, want ~12 (dedup not effective)", p)
	}
}
