package web

import (
	"net/url"
	"strings"
	"sync/atomic"
)

// Rewrite is one textual substitution a Redesign applies to a page body.
type Rewrite struct {
	Old string
	New string
}

// Redesign is the site-drift test double, the structural sibling of Flaky:
// where Flaky makes fetches fail, Redesign makes them succeed with changed
// pages. Once activated, it rewrites the response bodies of the listed
// hosts — renaming a link, a form or a table header — so that the site
// stays perfectly healthy at the HTTP level while its pages silently stop
// matching the navigation map. The rewriting is a pure function of the
// response, so outcomes are independent of goroutine scheduling.
type Redesign struct {
	Inner Fetcher
	// Rewrites maps a host to the substitutions applied, in order, to
	// every successful response body served from that host.
	Rewrites map[string][]Rewrite

	active atomic.Bool
}

// Activate makes the redesign visible: subsequent fetches see the
// rewritten pages. It may be called at most once, at a quiescent point, so
// that tests remain schedule-independent.
func (r *Redesign) Activate() { r.active.Store(true) }

// Active reports whether the redesign has been activated.
func (r *Redesign) Active() bool { return r.active.Load() }

// Fetch implements Fetcher.
func (r *Redesign) Fetch(req *Request) (*Response, error) {
	resp, err := r.Inner.Fetch(req)
	if err != nil || resp == nil || !r.active.Load() {
		return resp, err
	}
	u, perr := url.Parse(resp.URL)
	if perr != nil {
		return resp, err
	}
	rws, ok := r.Rewrites[u.Host]
	if !ok {
		return resp, err
	}
	body := string(resp.Body)
	for _, rw := range rws {
		body = strings.ReplaceAll(body, rw.Old, rw.New)
	}
	rewritten := *resp
	rewritten.Body = []byte(body)
	return &rewritten, err
}
