package web

import (
	"errors"
	"testing"
)

func okFetcher() Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "<html><body>ok</body></html>"), nil
	})
}

func TestFlakyInjectsDeterministically(t *testing.T) {
	f := &Flaky{Inner: okFetcher(), FailEvery: 3}
	failures := 0
	for i := 0; i < 300; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			if !errors.Is(err, ErrSimulatedOutage) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures == 0 || failures == 300 {
		t.Fatalf("failures = %d, want a deterministic fraction", failures)
	}
	if f.Attempts() != 300 {
		t.Errorf("attempts = %d", f.Attempts())
	}
	// Same sequence → same failures.
	g := &Flaky{Inner: okFetcher(), FailEvery: 3}
	failures2 := 0
	for i := 0; i < 300; i++ {
		if _, err := g.Fetch(NewGet("http://h/x")); err != nil {
			failures2++
		}
	}
	if failures != failures2 {
		t.Errorf("not deterministic: %d vs %d", failures, failures2)
	}
}

func TestFlakyDisabled(t *testing.T) {
	f := &Flaky{Inner: okFetcher()}
	for i := 0; i < 50; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Fatalf("disabled flaky failed: %v", err)
		}
	}
}

func TestWithRetryRecovers(t *testing.T) {
	flaky := &Flaky{Inner: okFetcher(), FailEvery: 2} // ~half of fetches fail
	f := WithRetry(flaky, 5)
	for i := 0; i < 100; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Fatalf("retry did not recover: %v", err)
		}
	}
}

func TestWithRetryGivesUp(t *testing.T) {
	always := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, ErrSimulatedOutage
	})
	f := WithRetry(always, 2)
	_, err := f.Fetch(NewGet("http://h/x"))
	if !errors.Is(err, ErrSimulatedOutage) {
		t.Fatalf("err = %v", err)
	}
}

func TestWithRetryPassesStatusThrough(t *testing.T) {
	notFound := FetcherFunc(func(req *Request) (*Response, error) {
		return NotFound(req.URL), nil
	})
	resp, err := WithRetry(notFound, 3).Fetch(NewGet("http://h/x"))
	if err != nil || resp.Status != 404 {
		t.Fatalf("404 should pass through unretried: %v %v", resp, err)
	}
}
