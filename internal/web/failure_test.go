package web

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func okFetcher() Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "<html><body>ok</body></html>"), nil
	})
}

func TestFlakyInjectsDeterministically(t *testing.T) {
	f := &Flaky{Inner: okFetcher(), FailEvery: 3}
	failures := 0
	for i := 0; i < 300; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			if !errors.Is(err, ErrSimulatedOutage) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures == 0 || failures == 300 {
		t.Fatalf("failures = %d, want a deterministic fraction", failures)
	}
	if f.Attempts() != 300 {
		t.Errorf("attempts = %d", f.Attempts())
	}
	// Same sequence → same failures.
	g := &Flaky{Inner: okFetcher(), FailEvery: 3}
	failures2 := 0
	for i := 0; i < 300; i++ {
		if _, err := g.Fetch(NewGet("http://h/x")); err != nil {
			failures2++
		}
	}
	if failures != failures2 {
		t.Errorf("not deterministic: %d vs %d", failures, failures2)
	}
}

// TestFlakyScheduleIndependent is the regression test for the rehash of
// Flaky onto (URL, per-URL attempt): whether the n-th attempt at a given
// URL fails must not depend on what other requests are in flight or in
// what order goroutines interleave. The old implementation hashed a global
// sequence number, so adding a concurrent fetcher of URL B silently
// changed which attempts at URL A failed.
func TestFlakyScheduleIndependent(t *testing.T) {
	urls := []string{"http://a/1", "http://b/2", "http://c/3", "http://d/4"}
	const attempts = 40

	// outcomes records, per URL, the failure pattern of its attempt sequence.
	outcomes := func(run func(f *Flaky, fetch func(url string))) map[string]string {
		f := &Flaky{Inner: okFetcher(), FailEvery: 3}
		var mu sync.Mutex
		got := make(map[string]string)
		run(f, func(url string) {
			_, err := f.Fetch(NewGet(url))
			mark := "."
			if err != nil {
				mark = "X"
			}
			mu.Lock()
			got[url] += mark
			mu.Unlock()
		})
		return got
	}

	// Reference: every URL's attempts issued back to back, URL by URL.
	sequential := outcomes(func(f *Flaky, fetch func(string)) {
		for _, u := range urls {
			for i := 0; i < attempts; i++ {
				fetch(u)
			}
		}
	})
	// Interleaved round-robin across URLs on one goroutine.
	interleaved := outcomes(func(f *Flaky, fetch func(string)) {
		for i := 0; i < attempts; i++ {
			for _, u := range urls {
				fetch(u)
			}
		}
	})
	// Concurrent: one goroutine per URL, schedules free to collide.
	concurrent := outcomes(func(f *Flaky, fetch func(string)) {
		var wg sync.WaitGroup
		for _, u := range urls {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				for i := 0; i < attempts; i++ {
					fetch(u)
				}
			}(u)
		}
		wg.Wait()
	})

	for _, u := range urls {
		if sequential[u] != interleaved[u] {
			t.Errorf("%s: interleaving changed the failure pattern\nsequential:  %s\ninterleaved: %s",
				u, sequential[u], interleaved[u])
		}
		if sequential[u] != concurrent[u] {
			t.Errorf("%s: concurrency changed the failure pattern\nsequential: %s\nconcurrent: %s",
				u, sequential[u], concurrent[u])
		}
	}
	// The injection must actually do something in this configuration.
	all := ""
	for _, u := range urls {
		all += sequential[u]
	}
	if !strings.Contains(all, "X") || !strings.Contains(all, ".") {
		t.Fatalf("degenerate failure pattern: %q", all)
	}
}

func TestFlakyDisabled(t *testing.T) {
	f := &Flaky{Inner: okFetcher()}
	for i := 0; i < 50; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Fatalf("disabled flaky failed: %v", err)
		}
	}
}

func TestWithRetryRecovers(t *testing.T) {
	flaky := &Flaky{Inner: okFetcher(), FailEvery: 2} // ~half of fetches fail
	f := WithRetry(flaky, 5, &Stats{})
	for i := 0; i < 100; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Fatalf("retry did not recover: %v", err)
		}
	}
}

func TestWithRetryGivesUp(t *testing.T) {
	always := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, ErrSimulatedOutage
	})
	f := WithRetry(always, 2, nil)
	_, err := f.Fetch(NewGet("http://h/x"))
	if !errors.Is(err, ErrSimulatedOutage) {
		t.Fatalf("err = %v", err)
	}
}

func TestWithRetryPassesStatusThrough(t *testing.T) {
	notFound := FetcherFunc(func(req *Request) (*Response, error) {
		return NotFound(req.URL), nil
	})
	resp, err := WithRetry(notFound, 3, nil).Fetch(NewGet("http://h/x"))
	if err != nil || resp.Status != 404 {
		t.Fatalf("404 should pass through unretried: %v %v", resp, err)
	}
}

// TestWithRetryCanceledContext is the regression test for the tight
// retry loop: a canceled context must abort immediately instead of
// burning the remaining retries against a dead site.
func TestWithRetryCanceledContext(t *testing.T) {
	var calls atomic.Int64
	always := FetcherFunc(func(req *Request) (*Response, error) {
		calls.Add(1)
		return nil, ErrSimulatedOutage
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first attempt
	f := WithRetry(always, 100, nil)
	_, err := f.Fetch(NewGet("http://h/x").WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("canceled fetch still made %d attempts", calls.Load())
	}

	// Cancel mid-retry: the attempt in flight is the last one issued.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls.Store(0)
	cancelling := FetcherFunc(func(req *Request) (*Response, error) {
		if calls.Add(1) == 2 {
			cancel2()
		}
		return nil, ErrSimulatedOutage
	})
	_, err = WithRetry(cancelling, 100, nil).Fetch(NewGet("http://h/y").WithContext(ctx2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-retry err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts after mid-retry cancel = %d, want 2", got)
	}
}

// TestWithRetryClassifiesTerminalFailure: retries exhausted must
// surface as a host-attributed Outage while keeping the original error
// reachable through the chain.
func TestWithRetryClassifiesTerminalFailure(t *testing.T) {
	always := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, ErrSimulatedOutage
	})
	_, err := WithRetry(always, 2, nil).Fetch(NewGet("http://dead.example/x"))
	if !IsOutage(err) {
		t.Fatalf("terminal failure not classified as outage: %v", err)
	}
	if got := FailingHost(err); got != "dead.example" {
		t.Fatalf("failing host = %q", got)
	}
	if !errors.Is(err, ErrSimulatedOutage) {
		t.Fatalf("original cause lost from chain: %v", err)
	}
	if IsOutage(context.Canceled) || IsSiteAnswer(err) {
		t.Fatal("taxonomy cross-talk")
	}
}

// TestBackoffDeterministicJitter: delays must grow exponentially, stay
// within [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹] (jitter), respect the cap, and be a
// pure function of (URL, attempt).
func TestBackoffDeterministicJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	prevFull := time.Duration(0)
	for retry := 1; retry <= 6; retry++ {
		full := b.Base << uint(retry-1)
		if full > b.Max {
			full = b.Max
		}
		d := b.Delay("http://h/x", retry)
		if d < full/2 || d > full {
			t.Errorf("retry %d: delay %v outside [%v, %v]", retry, d, full/2, full)
		}
		if d2 := b.Delay("http://h/x", retry); d2 != d {
			t.Errorf("retry %d: nondeterministic delay %v vs %v", retry, d, d2)
		}
		if prevFull > 0 && full < prevFull {
			t.Errorf("retry %d: cap not monotone", retry)
		}
		prevFull = full
	}
	// Different URLs decorrelate.
	same := 0
	for i := 0; i < 8; i++ {
		u := fmt.Sprintf("http://h/%d", i)
		if b.Delay(u, 1) == b.Delay("http://h/x", 1) {
			same++
		}
	}
	if same == 8 {
		t.Error("jitter ignores the URL")
	}
	if (Backoff{}).Delay("http://h/x", 1) != 0 {
		t.Error("zero backoff must not wait")
	}
}

// TestWithRetryPolicyBackoffWaits: the policy must sleep between
// attempts with the configured schedule and honor cancellation during
// the wait.
func TestWithRetryPolicyBackoffWaits(t *testing.T) {
	var slept []time.Duration
	always := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, ErrSimulatedOutage
	})
	p := RetryPolicy{
		Retries: 3,
		Backoff: Backoff{Base: 10 * time.Millisecond},
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	WithRetryPolicy(always, p, nil).Fetch(NewGet("http://h/x"))
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	for i, d := range slept {
		full := p.Backoff.Base << uint(i)
		if d < full/2 || d > full {
			t.Errorf("sleep %d = %v outside [%v, %v]", i, d, full/2, full)
		}
	}

	// A cancellation surfaced by Sleep aborts the loop.
	var calls atomic.Int64
	counting := FetcherFunc(func(req *Request) (*Response, error) {
		calls.Add(1)
		return nil, ErrSimulatedOutage
	})
	p.Sleep = func(ctx context.Context, d time.Duration) error { return context.Canceled }
	_, err := WithRetryPolicy(counting, p, nil).Fetch(NewGet("http://h/x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (abort during first backoff)", calls.Load())
	}
}

// TestRetryBudget: a per-query budget caps total re-issues across
// requests sharing the context; without a budget retries are unlimited.
func TestRetryBudget(t *testing.T) {
	var calls atomic.Int64
	always := FetcherFunc(func(req *Request) (*Response, error) {
		calls.Add(1)
		return nil, ErrSimulatedOutage
	})
	f := WithRetry(always, 10, nil)
	ctx := ContextWithRetryBudget(context.Background(), NewRetryBudget(3))

	_, err := f.Fetch(NewGet("http://h/a").WithContext(ctx))
	if !IsOutage(err) {
		t.Fatalf("err = %v", err)
	}
	// First request: initial attempt + 3 budgeted re-issues.
	if calls.Load() != 4 {
		t.Fatalf("attempts = %d, want 4 (budget of 3 re-issues)", calls.Load())
	}
	// Budget is shared and now dry: the next request gets one attempt.
	calls.Store(0)
	f.Fetch(NewGet("http://h/b").WithContext(ctx))
	if calls.Load() != 1 {
		t.Fatalf("attempts with dry budget = %d, want 1", calls.Load())
	}
	// No budget on the context: all retries run.
	calls.Store(0)
	f.Fetch(NewGet("http://h/c"))
	if calls.Load() != 11 {
		t.Fatalf("attempts without budget = %d, want 11", calls.Load())
	}
}

// TestOutageMemoReplays: a terminal failure is decided once per request
// key and replayed for later fetches without touching the network; other
// keys are unaffected, and other queries (other memos) start fresh.
func TestOutageMemoReplays(t *testing.T) {
	var calls atomic.Int64
	always := FetcherFunc(func(req *Request) (*Response, error) {
		calls.Add(1)
		if hostOf(req.URL) == "dead" {
			return nil, ErrSimulatedOutage
		}
		return HTML(req.URL, "<html><body>ok</body></html>"), nil
	})
	f := WithOutageMemo(WithRetry(always, 2, nil))
	memo := NewOutageMemo()
	ctx := ContextWithOutageMemo(context.Background(), memo)

	_, err1 := f.Fetch(NewGet("http://dead/x").WithContext(ctx))
	if !IsOutage(err1) {
		t.Fatalf("err = %v", err1)
	}
	after := calls.Load() // 3 attempts
	_, err2 := f.Fetch(NewGet("http://dead/x").WithContext(ctx))
	if calls.Load() != after {
		t.Fatal("memoized outage still touched the network")
	}
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("replayed error differs: %v vs %v", err2, err1)
	}
	if memo.Len() != 1 {
		t.Fatalf("memo len = %d", memo.Len())
	}
	// Different key: unaffected.
	if _, err := f.Fetch(NewGet("http://alive/x").WithContext(ctx)); err != nil {
		t.Fatalf("alive fetch failed: %v", err)
	}
	// A new query (fresh memo) retries the site.
	before := calls.Load()
	f.Fetch(NewGet("http://dead/x").WithContext(
		ContextWithOutageMemo(context.Background(), NewOutageMemo())))
	if calls.Load() == before {
		t.Fatal("fresh memo should have touched the network again")
	}
	// No memo on the context: pass-through.
	if _, err := f.Fetch(NewGet("http://alive/y")); err != nil {
		t.Fatalf("memoless fetch failed: %v", err)
	}
}
