package web

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func okFetcher() Fetcher {
	return FetcherFunc(func(req *Request) (*Response, error) {
		return HTML(req.URL, "<html><body>ok</body></html>"), nil
	})
}

func TestFlakyInjectsDeterministically(t *testing.T) {
	f := &Flaky{Inner: okFetcher(), FailEvery: 3}
	failures := 0
	for i := 0; i < 300; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			if !errors.Is(err, ErrSimulatedOutage) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures == 0 || failures == 300 {
		t.Fatalf("failures = %d, want a deterministic fraction", failures)
	}
	if f.Attempts() != 300 {
		t.Errorf("attempts = %d", f.Attempts())
	}
	// Same sequence → same failures.
	g := &Flaky{Inner: okFetcher(), FailEvery: 3}
	failures2 := 0
	for i := 0; i < 300; i++ {
		if _, err := g.Fetch(NewGet("http://h/x")); err != nil {
			failures2++
		}
	}
	if failures != failures2 {
		t.Errorf("not deterministic: %d vs %d", failures, failures2)
	}
}

// TestFlakyScheduleIndependent is the regression test for the rehash of
// Flaky onto (URL, per-URL attempt): whether the n-th attempt at a given
// URL fails must not depend on what other requests are in flight or in
// what order goroutines interleave. The old implementation hashed a global
// sequence number, so adding a concurrent fetcher of URL B silently
// changed which attempts at URL A failed.
func TestFlakyScheduleIndependent(t *testing.T) {
	urls := []string{"http://a/1", "http://b/2", "http://c/3", "http://d/4"}
	const attempts = 40

	// outcomes records, per URL, the failure pattern of its attempt sequence.
	outcomes := func(run func(f *Flaky, fetch func(url string))) map[string]string {
		f := &Flaky{Inner: okFetcher(), FailEvery: 3}
		var mu sync.Mutex
		got := make(map[string]string)
		run(f, func(url string) {
			_, err := f.Fetch(NewGet(url))
			mark := "."
			if err != nil {
				mark = "X"
			}
			mu.Lock()
			got[url] += mark
			mu.Unlock()
		})
		return got
	}

	// Reference: every URL's attempts issued back to back, URL by URL.
	sequential := outcomes(func(f *Flaky, fetch func(string)) {
		for _, u := range urls {
			for i := 0; i < attempts; i++ {
				fetch(u)
			}
		}
	})
	// Interleaved round-robin across URLs on one goroutine.
	interleaved := outcomes(func(f *Flaky, fetch func(string)) {
		for i := 0; i < attempts; i++ {
			for _, u := range urls {
				fetch(u)
			}
		}
	})
	// Concurrent: one goroutine per URL, schedules free to collide.
	concurrent := outcomes(func(f *Flaky, fetch func(string)) {
		var wg sync.WaitGroup
		for _, u := range urls {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				for i := 0; i < attempts; i++ {
					fetch(u)
				}
			}(u)
		}
		wg.Wait()
	})

	for _, u := range urls {
		if sequential[u] != interleaved[u] {
			t.Errorf("%s: interleaving changed the failure pattern\nsequential:  %s\ninterleaved: %s",
				u, sequential[u], interleaved[u])
		}
		if sequential[u] != concurrent[u] {
			t.Errorf("%s: concurrency changed the failure pattern\nsequential: %s\nconcurrent: %s",
				u, sequential[u], concurrent[u])
		}
	}
	// The injection must actually do something in this configuration.
	all := ""
	for _, u := range urls {
		all += sequential[u]
	}
	if !strings.Contains(all, "X") || !strings.Contains(all, ".") {
		t.Fatalf("degenerate failure pattern: %q", all)
	}
}

func TestFlakyDisabled(t *testing.T) {
	f := &Flaky{Inner: okFetcher()}
	for i := 0; i < 50; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Fatalf("disabled flaky failed: %v", err)
		}
	}
}

func TestWithRetryRecovers(t *testing.T) {
	flaky := &Flaky{Inner: okFetcher(), FailEvery: 2} // ~half of fetches fail
	f := WithRetry(flaky, 5, &Stats{})
	for i := 0; i < 100; i++ {
		if _, err := f.Fetch(NewGet("http://h/x")); err != nil {
			t.Fatalf("retry did not recover: %v", err)
		}
	}
}

func TestWithRetryGivesUp(t *testing.T) {
	always := FetcherFunc(func(req *Request) (*Response, error) {
		return nil, ErrSimulatedOutage
	})
	f := WithRetry(always, 2, nil)
	_, err := f.Fetch(NewGet("http://h/x"))
	if !errors.Is(err, ErrSimulatedOutage) {
		t.Fatalf("err = %v", err)
	}
}

func TestWithRetryPassesStatusThrough(t *testing.T) {
	notFound := FetcherFunc(func(req *Request) (*Response, error) {
		return NotFound(req.URL), nil
	})
	resp, err := WithRetry(notFound, 3, nil).Fetch(NewGet("http://h/x"))
	if err != nil || resp.Status != 404 {
		t.Fatalf("404 should pass through unretried: %v %v", resp, err)
	}
}
