package tlogic

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// counter is a toy state: a number plus a log of applied operations.
type counter struct {
	n   int
	log []string
}

func (c *counter) Clone() State {
	return &counter{n: c.n, log: append([]string(nil), c.log...)}
}

// op is a primitive that transforms the counter, optionally failing.
type op struct {
	name string
	fn   func(c *counter, env Env) ([]Outcome, error)
}

func (o op) Name() string { return o.name }
func (o op) Run(st State, env Env) ([]Outcome, error) {
	return o.fn(st.(*counter), env)
}

func inc(by int) Formula {
	return Prim{op{name: "inc", fn: func(c *counter, env Env) ([]Outcome, error) {
		nc := c.Clone().(*counter)
		nc.n += by
		nc.log = append(nc.log, "inc")
		return []Outcome{{State: nc, Env: env}}, nil
	}}}
}

// guardLess succeeds (state unchanged) iff n < limit.
func guardLess(limit int) Formula {
	return Prim{op{name: "less", fn: func(c *counter, env Env) ([]Outcome, error) {
		if c.n < limit {
			return []Outcome{{State: c, Env: env}}, nil
		}
		return nil, nil
	}}}
}

func bind(name, val string) Formula {
	return Prim{op{name: "bind", fn: func(c *counter, env Env) ([]Outcome, error) {
		return []Outcome{{State: c, Env: env.With(name, val)}}, nil
	}}}
}

func failing() Formula {
	return Prim{op{name: "boom", fn: func(c *counter, env Env) ([]Outcome, error) {
		return nil, errors.New("hardware on fire")
	}}}
}

func run(t *testing.T, in *Interp, goal Formula, start int) (Outcome, []State, bool) {
	t.Helper()
	out, path, ok, err := in.Run(goal, &counter{n: start}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, path, ok
}

func TestSerialExecutesInOrder(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	out, path, ok := run(t, in, Seq(inc(1), inc(10), inc(100)), 0)
	if !ok {
		t.Fatal("serial failed")
	}
	if got := out.State.(*counter).n; got != 111 {
		t.Errorf("n = %d, want 111", got)
	}
	// Path: initial + one state per action.
	if len(path) != 4 {
		t.Errorf("path length = %d, want 4", len(path))
	}
	ns := make([]int, len(path))
	for i, s := range path {
		ns[i] = s.(*counter).n
	}
	want := []int{0, 1, 11, 111}
	for i := range want {
		if ns[i] != want[i] {
			t.Errorf("path[%d] = %d, want %d", i, ns[i], want[i])
		}
	}
}

func TestChoicePrefersLeftAndBacktracks(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	// Left branch fails its guard after mutating: effects must not leak
	// into the right branch.
	left := Seq(inc(5), guardLess(0)) // always fails after the inc
	right := inc(1)
	out, _, ok := run(t, in, Choice{Left: left, Right: right}, 0)
	if !ok {
		t.Fatal("choice failed")
	}
	c := out.State.(*counter)
	if c.n != 1 {
		t.Errorf("n = %d, want 1 (left branch effects must be discarded)", c.n)
	}
	if len(c.log) != 1 {
		t.Errorf("log = %v, want one entry", c.log)
	}
}

func TestChoicePrefersLeftWhenBothSucceed(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	out, _, ok := run(t, in, Choice{Left: inc(1), Right: inc(2)}, 0)
	if !ok || out.State.(*counter).n != 1 {
		t.Error("ordered choice should take the left branch first")
	}
}

func TestRecursionCountsToLimit(t *testing.T) {
	// count ← (n < 7) ⊗ inc(1) ⊗ count  ∨  ¬(n < 7)
	p := NewProgram()
	p.Define("count", Choice{
		Left:  Seq(guardLess(7), inc(1), Call{Rule: "count"}),
		Right: Not{Body: guardLess(7)},
	})
	in := &Interp{Program: p}
	out, path, ok := run(t, in, Call{Rule: "count"}, 0)
	if !ok {
		t.Fatal("recursion failed")
	}
	if got := out.State.(*counter).n; got != 7 {
		t.Errorf("n = %d, want 7", got)
	}
	if len(path) < 8 {
		t.Errorf("path too short: %d", len(path))
	}
}

func TestRunAllEnumeratesOutcomes(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	goal := Seq(Alt(inc(1), inc(2)), Alt(inc(10), inc(20)))
	outs, err := in.RunAll(goal, &counter{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(outs))
	}
	got := map[int]bool{}
	for _, o := range outs {
		got[o.State.(*counter).n] = true
	}
	for _, want := range []int{11, 21, 12, 22} {
		if !got[want] {
			t.Errorf("missing outcome %d (got %v)", want, got)
		}
	}
	// max limits enumeration.
	outs, _ = in.RunAll(goal, &counter{}, nil, 2)
	if len(outs) != 2 {
		t.Errorf("limited outcomes = %d, want 2", len(outs))
	}
}

func TestEnvBindingsThread(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	out, _, ok := run(t, in, Seq(bind("make", "ford"), bind("model", "escort")), 0)
	if !ok {
		t.Fatal("failed")
	}
	if v, _ := out.Env.Lookup("make"); v != "ford" {
		t.Errorf("make = %q", v)
	}
	if v, _ := out.Env.Lookup("model"); v != "escort" {
		t.Errorf("model = %q", v)
	}
	if _, ok := out.Env.Lookup("zz"); ok {
		t.Error("phantom binding")
	}
}

func TestEnvImmutability(t *testing.T) {
	e := Env{"a": "1"}
	e2 := e.With("b", "2")
	if _, ok := e.Lookup("b"); ok {
		t.Error("With mutated the receiver")
	}
	if v, _ := e2.Lookup("a"); v != "1" {
		t.Error("With lost existing bindings")
	}
}

func TestNotIsHypothetical(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	// ¬(inc ⊗ fail-guard): body fails, so Not succeeds with state intact.
	out, _, ok := run(t, in, Seq(Not{Body: Seq(inc(5), guardLess(-1))}, inc(1)), 0)
	if !ok {
		t.Fatal("not-guard failed")
	}
	if got := out.State.(*counter).n; got != 1 {
		t.Errorf("n = %d, want 1 (hypothetical inc must be discarded)", got)
	}
	// ¬(succeeding body) fails.
	if _, _, ok := run(t, in, Not{Body: inc(1)}, 0); ok {
		t.Error("Not over a succeeding body must fail")
	}
}

func TestHardErrorAborts(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	_, _, _, err := in.Run(Choice{Left: failing(), Right: inc(1)}, &counter{}, nil)
	if err == nil || !strings.Contains(err.Error(), "hardware on fire") {
		t.Errorf("hard error should abort, got %v", err)
	}
}

func TestUnknownRule(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	_, _, _, err := in.Run(Call{Rule: "ghost"}, &counter{}, nil)
	if !errors.Is(err, ErrUnknownRule) {
		t.Errorf("err = %v", err)
	}
}

func TestDepthLimit(t *testing.T) {
	p := NewProgram()
	p.Define("loop", Call{Rule: "loop"}) // infinite recursion
	in := &Interp{Program: p, MaxDepth: 50}
	_, _, _, err := in.Run(Call{Rule: "loop"}, &counter{}, nil)
	if !errors.Is(err, ErrDepthExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestEmptyAndFailFormulas(t *testing.T) {
	in := &Interp{Program: NewProgram()}
	if _, _, ok := run(t, in, Empty{}, 0); !ok {
		t.Error("ε must succeed")
	}
	if _, _, ok := run(t, in, Alt(), 0); ok {
		t.Error("Alt() must fail")
	}
	if _, _, ok := run(t, in, Seq(), 0); !ok {
		t.Error("Seq() must succeed")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Seq(inc(1), Choice{Left: Empty{}, Right: Call{Rule: "r"}})
	s := f.String()
	for _, want := range []string{"⊗", "∨", "ε", "r", "inc"} {
		if !strings.Contains(s, want) {
			t.Errorf("formula rendering %q missing %q", s, want)
		}
	}
	if !strings.Contains((Not{Body: Empty{}}).String(), "¬") {
		t.Error("Not rendering")
	}
	if Alt().String() != "⊥" {
		t.Error("fail rendering")
	}
}

func TestProgramString(t *testing.T) {
	p := NewProgram()
	p.Define("b", Empty{})
	p.Define("a", Call{Rule: "b"})
	s := p.String()
	if !strings.Contains(s, "a ← b") || !strings.Contains(s, "b ← ε") {
		t.Errorf("program rendering:\n%s", s)
	}
	if strings.Index(s, "a ←") > strings.Index(s, "b ←") {
		t.Error("rules should render sorted")
	}
	if _, ok := p.Rule("a"); !ok {
		t.Error("Rule lookup failed")
	}
}

// outcomesOf collects the multiset of final counter values of all
// executions.
func outcomesOf(t *testing.T, f Formula, start int) []int {
	t.Helper()
	in := &Interp{Program: NewProgram()}
	outs, err := in.RunAll(f, &counter{n: start}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := make([]int, len(outs))
	for i, o := range outs {
		ns[i] = o.State.(*counter).n
	}
	return ns
}

// randomFormula builds a small random ⊗/∨ formula over inc/guard
// primitives.
func randomFormula(r *rand.Rand, depth int) Formula {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return inc(1 + r.Intn(5))
		case 1:
			return guardLess(5 + r.Intn(20))
		default:
			return Empty{}
		}
	}
	a, b := randomFormula(r, depth-1), randomFormula(r, depth-1)
	if r.Intn(2) == 0 {
		return Serial{Left: a, Right: b}
	}
	return Choice{Left: a, Right: b}
}

// TestSerialAssociativityProperty: (a ⊗ b) ⊗ c and a ⊗ (b ⊗ c) produce the
// same outcome sequences — Transaction Logic's ⊗ is associative.
func TestSerialAssociativityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomFormula(r, 2), randomFormula(r, 2), randomFormula(r, 2)
		left := Serial{Left: Serial{Left: a, Right: b}, Right: c}
		right := Serial{Left: a, Right: Serial{Left: b, Right: c}}
		lo, ro := outcomesOf(t, left, 0), outcomesOf(t, right, 0)
		if !reflect.DeepEqual(lo, ro) {
			t.Fatalf("trial %d: %v vs %v\n%s\n%s", trial, lo, ro, left, right)
		}
	}
}

// TestSerialDistributesOverChoice: a ⊗ (b ∨ c) ≡ (a ⊗ b) ∨ (a ⊗ c) as an
// outcome multiset (when a is nondeterministic the two sides enumerate in
// different orders) — the left-distributivity that justifies the navmap
// translation grouping parallel edges under one action.
func TestSerialDistributesOverChoice(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomFormula(r, 2), randomFormula(r, 2), randomFormula(r, 2)
		fused := Serial{Left: a, Right: Choice{Left: b, Right: c}}
		split := Choice{Left: Serial{Left: a, Right: b}, Right: Serial{Left: a, Right: c}}
		fo, so := outcomesOf(t, fused, 0), outcomesOf(t, split, 0)
		sort.Ints(fo)
		sort.Ints(so)
		if !reflect.DeepEqual(fo, so) {
			t.Fatalf("trial %d: %v vs %v", trial, fo, so)
		}
	}
}

// TestEpsilonIsSerialIdentity: ε ⊗ a ≡ a ≡ a ⊗ ε.
func TestEpsilonIsSerialIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		a := randomFormula(r, 3)
		base := outcomesOf(t, a, 1)
		if !reflect.DeepEqual(outcomesOf(t, Serial{Left: Empty{}, Right: a}, 1), base) {
			t.Fatalf("ε ⊗ a ≠ a for %s", a)
		}
		if !reflect.DeepEqual(outcomesOf(t, Serial{Left: a, Right: Empty{}}, 1), base) {
			t.Fatalf("a ⊗ ε ≠ a for %s", a)
		}
	}
}

func TestPruneRemovesUnreachableRules(t *testing.T) {
	p := NewProgram()
	p.Define("a", Serial{Left: Call{Rule: "b"}, Right: Empty{}})
	p.Define("b", Choice{Left: Empty{}, Right: Not{Body: Call{Rule: "c"}}})
	p.Define("c", Call{Rule: "c"}) // self-recursive, reachable through ¬
	p.Define("orphan", Empty{})
	p.Define("orphan2", Call{Rule: "orphan"}) // only reachable from orphans

	goal := Call{Rule: "a"}
	reach := p.Reachable(goal)
	for _, want := range []string{"a", "b", "c"} {
		if !reach[want] {
			t.Errorf("rule %s should be reachable", want)
		}
	}
	if reach["orphan"] || reach["orphan2"] {
		t.Error("orphans reported reachable")
	}
	pruned := p.Prune(goal)
	if pruned.Len() != 3 {
		t.Errorf("pruned to %d rules, want 3", pruned.Len())
	}
	// Pruned program still executes the goal identically.
	in := &Interp{Program: pruned}
	if _, _, ok, err := in.Run(goal, &counter{}, nil); err != nil || !ok {
		t.Errorf("pruned program broken: %v %v", ok, err)
	}
}

func TestPathIsolationAcrossBranches(t *testing.T) {
	// Both branches of a choice extend the same prefix; ensure RunAll sees
	// consistent per-branch outcomes (no shared-slice corruption).
	in := &Interp{Program: NewProgram()}
	goal := Seq(inc(1), Alt(inc(10), inc(20)))
	outs, err := in.RunAll(goal, &counter{}, nil, 0)
	if err != nil || len(outs) != 2 {
		t.Fatalf("outs = %v, err = %v", outs, err)
	}
	if outs[0].State.(*counter).n != 11 || outs[1].State.(*counter).n != 21 {
		t.Errorf("branch outcomes: %d, %d", outs[0].State.(*counter).n, outs[1].State.(*counter).n)
	}
}
