// Package tlogic implements the Transaction Logic half of the navigation
// calculus: the serial-Horn subset the paper uses (Section 4).
//
// Transaction Logic formulas are true over *paths* — finite sequences of
// database states — rather than at single states. Procedurally, a ⊗ b
// means "execute a, then execute b"; a ∨ b means "execute a or execute b,
// non-deterministically"; named rules give recursion. Executing a formula
// against an initial state searches for a path that makes it true; this
// interpreter performs that search by depth-first backtracking, exactly
// the executional entailment of Bonner & Kifer's proof theory restricted
// to the serial-Horn fragment.
package tlogic

import (
	"errors"
	"fmt"
	"strings"
)

// State is a database state. Clone must return a deep copy so that
// backtracking can discard the effects of a failed branch — this is how
// the interpreter provides the atomicity the paper notes transaction
// formulas share with database transactions.
type State interface {
	Clone() State
}

// Env is a set of logic-variable bindings threaded through an execution.
// Envs are treated as immutable: use With to extend.
type Env map[string]string

// With returns a copy of e with name bound to value.
func (e Env) With(name, value string) Env {
	out := make(Env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	out[name] = value
	return out
}

// Lookup returns the binding of name.
func (e Env) Lookup(name string) (string, bool) {
	v, ok := e[name]
	return v, ok
}

// Outcome is one result of executing an action or formula: the state the
// execution path ends in and the (possibly extended) bindings.
type Outcome struct {
	State State
	Env   Env
}

// Action is a primitive transaction: a query (state-preserving) or an
// update (state-transforming). Run returns every outcome the action can
// produce from the given state — an empty slice is logical failure
// (backtrack), a non-nil error is a hard abort that cancels the whole
// execution.
type Action interface {
	Name() string
	Run(st State, env Env) ([]Outcome, error)
}

// Formula is a serial-Horn Transaction Logic formula.
type Formula interface {
	fmt.Stringer
	formula()
}

// Empty is the trivially true formula (the empty path); the ε used to
// terminate iteration.
type Empty struct{}

func (Empty) formula()       {}
func (Empty) String() string { return "ε" }

// Prim lifts a primitive action into a formula.
type Prim struct{ Action Action }

func (Prim) formula()         {}
func (p Prim) String() string { return p.Action.Name() }

// Serial is the serial conjunction a ⊗ b: execute a, then b.
type Serial struct{ Left, Right Formula }

func (Serial) formula() {}
func (s Serial) String() string {
	return fmt.Sprintf("%s ⊗ %s", s.Left, s.Right)
}

// Choice is the disjunction a ∨ b: execute a or b. The interpreter tries
// Left first, so Choice doubles as the ordered if-then-else of the
// navigation expressions ("either extract data, or fill form f2").
type Choice struct{ Left, Right Formula }

func (Choice) formula() {}
func (c Choice) String() string {
	return fmt.Sprintf("(%s ∨ %s)", c.Left, c.Right)
}

// Call invokes a named rule of the program, providing recursion (the
// unbounded "More"-button iteration of Figure 2 is a recursive rule).
type Call struct{ Rule string }

func (Call) formula()         {}
func (c Call) String() string { return c.Rule }

// Not is negation as failure used as a guard: it succeeds, changing
// nothing, iff its body has no successful execution from the current
// state. The body runs hypothetically — its state changes are discarded.
type Not struct{ Body Formula }

func (Not) formula()         {}
func (n Not) String() string { return fmt.Sprintf("¬(%s)", n.Body) }

// Seq folds formulas into a right-nested serial conjunction. Seq() is ε.
func Seq(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Empty{}
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = Serial{Left: fs[i], Right: out}
	}
	return out
}

// Alt folds formulas into a left-preferring choice. Alt() always fails.
func Alt(fs ...Formula) Formula {
	if len(fs) == 0 {
		return fail{}
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = Choice{Left: fs[i], Right: out}
	}
	return out
}

// fail is the always-false formula produced by Alt().
type fail struct{}

func (fail) formula()       {}
func (fail) String() string { return "⊥" }

// Program is a set of named rules (the serial-Horn clauses).
type Program struct {
	rules map[string]Formula
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{rules: make(map[string]Formula)}
}

// Define adds (or replaces) the rule name ← body.
func (p *Program) Define(name string, body Formula) { p.rules[name] = body }

// Rule returns the body of the named rule.
func (p *Program) Rule(name string) (Formula, bool) {
	f, ok := p.rules[name]
	return f, ok
}

// String renders the program rule by rule, sorted for determinism.
func (p *Program) String() string {
	names := make([]string, 0, len(p.rules))
	for n := range p.rules {
		names = append(names, n)
	}
	sortStrings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s ← %s\n", n, p.rules[n])
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Reachable returns the names of the rules transitively callable from the
// goal formula — the navigation-expression analogue of dead-code
// elimination (the paper leaves expression optimization open; pruning
// unreachable rules is its cheapest instance, useful after map edits leave
// orphaned page rules behind).
func (p *Program) Reachable(goal Formula) map[string]bool {
	seen := make(map[string]bool)
	var visit func(f Formula)
	visit = func(f Formula) {
		switch f := f.(type) {
		case Serial:
			visit(f.Left)
			visit(f.Right)
		case Choice:
			visit(f.Left)
			visit(f.Right)
		case Not:
			visit(f.Body)
		case Call:
			if seen[f.Rule] {
				return
			}
			seen[f.Rule] = true
			if body, ok := p.rules[f.Rule]; ok {
				visit(body)
			}
		}
	}
	visit(goal)
	return seen
}

// Prune returns a copy of the program containing only the rules reachable
// from goal.
func (p *Program) Prune(goal Formula) *Program {
	reachable := p.Reachable(goal)
	out := NewProgram()
	for name, body := range p.rules {
		if reachable[name] {
			out.rules[name] = body
		}
	}
	return out
}

// Len returns the number of rules.
func (p *Program) Len() int { return len(p.rules) }

// Interp executes formulas against states.
type Interp struct {
	Program *Program
	// MaxDepth bounds rule-call nesting, catching runaway recursion (a
	// navigation map with an unbounded loop). Zero means the default.
	MaxDepth int
}

const defaultMaxDepth = 100000

// Errors reported by the interpreter.
var (
	ErrDepthExceeded = errors.New("tlogic: recursion depth exceeded")
	ErrUnknownRule   = errors.New("tlogic: unknown rule")
)

// Run searches for the first successful execution of goal from st and
// returns its outcome together with the path of states the execution
// passed through (the initial state first). ok is false when the formula
// has no successful execution.
func (in *Interp) Run(goal Formula, st State, env Env) (out Outcome, path []State, ok bool, err error) {
	if env == nil {
		env = Env{}
	}
	stop := func(o Outcome, p []State) (bool, error) {
		out, path, ok = o, p, true
		return true, nil
	}
	_, err = in.exec(goal, st, env, 0, []State{st}, stop)
	return out, path, ok, err
}

// RunAll collects up to max outcomes of goal (all of them when max <= 0).
func (in *Interp) RunAll(goal Formula, st State, env Env, max int) ([]Outcome, error) {
	if env == nil {
		env = Env{}
	}
	var outs []Outcome
	collect := func(o Outcome, _ []State) (bool, error) {
		outs = append(outs, o)
		return max > 0 && len(outs) >= max, nil
	}
	_, err := in.exec(goal, st, env, 0, []State{st}, collect)
	return outs, err
}

// cont receives each successful execution; returning true stops the
// search.
type cont func(o Outcome, path []State) (bool, error)

func (in *Interp) exec(f Formula, st State, env Env, depth int, path []State, k cont) (bool, error) {
	maxDepth := in.MaxDepth
	if maxDepth <= 0 {
		maxDepth = defaultMaxDepth
	}
	if depth > maxDepth {
		return false, ErrDepthExceeded
	}
	switch f := f.(type) {
	case Empty:
		return k(Outcome{State: st, Env: env}, path)
	case fail:
		return false, nil
	case Prim:
		outs, err := f.Action.Run(st, env)
		if err != nil {
			return false, fmt.Errorf("action %s: %w", f.Action.Name(), err)
		}
		for _, o := range outs {
			np := appendPath(path, o.State)
			stop, err := k(o, np)
			if stop || err != nil {
				return stop, err
			}
		}
		return false, nil
	case Serial:
		return in.exec(f.Left, st, env, depth, path, func(o Outcome, p []State) (bool, error) {
			return in.exec(f.Right, o.State, o.Env, depth, p, k)
		})
	case Choice:
		stop, err := in.exec(f.Left, st, env, depth, path, k)
		if stop || err != nil {
			return stop, err
		}
		return in.exec(f.Right, st, env, depth, path, k)
	case Call:
		body, ok := in.Program.Rule(f.Rule)
		if !ok {
			return false, fmt.Errorf("%w: %s", ErrUnknownRule, f.Rule)
		}
		return in.exec(body, st, env, depth+1, path, k)
	case Not:
		found := false
		// Hypothetical execution over a cloned state: effects discarded.
		_, err := in.exec(f.Body, st.Clone(), env, depth, []State{st}, func(Outcome, []State) (bool, error) {
			found = true
			return true, nil
		})
		if err != nil {
			return false, err
		}
		if found {
			return false, nil
		}
		return k(Outcome{State: st, Env: env}, path)
	default:
		return false, fmt.Errorf("tlogic: unknown formula type %T", f)
	}
}

// appendPath copies so sibling branches never share a backing array.
func appendPath(path []State, st State) []State {
	np := make([]State, len(path)+1)
	copy(np, path)
	np[len(path)] = st
	return np
}
