package navmap

import (
	"strings"
	"testing"

	"webbase/internal/navcalc"
	"webbase/internal/relation"
)

// toyMap builds a small valid map: entry --link--> form --submit--> data
// with a More self-loop.
func toyMap() *Map {
	m := New("toy", "http://t.example/", relation.NewSchema("A", "B"))
	m.AddNode(&Node{ID: "entry"})
	m.AddNode(&Node{ID: "form"})
	m.AddNode(&Node{ID: "data", IsData: true, Extract: navcalc.ExtractSpec{
		Columns: []navcalc.Column{{Header: "A", Attr: "A"}, {Header: "B", Attr: "B"}},
	}})
	m.AddEdge("entry", Action{Kind: ActFollowLink, LinkName: "Go"}, "form")
	m.AddEdge("form", Action{Kind: ActSubmitForm, FormName: "f",
		Fills: []navcalc.FieldFill{navcalc.Fill("a", "A")}}, "data")
	m.AddEdge("data", Action{Kind: ActFollowLink, LinkName: "More"}, "data")
	return m
}

func TestMapConstruction(t *testing.T) {
	m := toyMap()
	if n, e := m.Size(); n != 3 || e != 3 {
		t.Errorf("size = %d,%d", n, e)
	}
	if m.Start != "entry" {
		t.Errorf("start = %s (first node added should be start)", m.Start)
	}
	if m.Node("data") == nil || m.Node("ghost") != nil {
		t.Error("node lookup wrong")
	}
	if got := len(m.OutEdges("data")); got != 1 {
		t.Errorf("out edges of data = %d", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
}

func TestAddNodeAndEdgeDedup(t *testing.T) {
	m := toyMap()
	// Re-adding an existing node returns the original.
	orig := m.Node("entry")
	if got := m.AddNode(&Node{ID: "entry", Title: "changed"}); got != orig {
		t.Error("AddNode should return the existing node")
	}
	n0, e0 := m.Size()
	m.AddEdge("entry", Action{Kind: ActFollowLink, LinkName: "Go"}, "form")
	if n1, e1 := m.Size(); n1 != n0 || e1 != e0 {
		t.Error("duplicate edge not deduplicated")
	}
	// Same action to a different target is a new edge.
	m.AddEdge("entry", Action{Kind: ActFollowLink, LinkName: "Go"}, "data")
	if _, e1 := m.Size(); e1 != e0+1 {
		t.Error("parallel edge to new target should be added")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Map
		want  string
	}{
		{"no start", func() *Map {
			return New("x", "http://x/", relation.NewSchema("A"))
		}, "start node"},
		{"no data node", func() *Map {
			m := New("x", "http://x/", relation.NewSchema("A"))
			m.AddNode(&Node{ID: "e"})
			return m
		}, "no data node"},
		{"no extraction spec", func() *Map {
			m := New("x", "http://x/", relation.NewSchema("A"))
			m.AddNode(&Node{ID: "d", IsData: true})
			return m
		}, "no extraction spec"},
		{"attr outside schema", func() *Map {
			m := New("x", "http://x/", relation.NewSchema("A"))
			m.AddNode(&Node{ID: "d", IsData: true, Extract: navcalc.ExtractSpec{
				Columns: []navcalc.Column{{Header: "Z", Attr: "Z"}}}})
			return m
		}, "not in schema"},
		{"dangling edge", func() *Map {
			m := toyMap()
			m.edges = append(m.edges, &Edge{From: "data", To: "ghost"})
			return m
		}, "missing node"},
		{"no start URL", func() *Map {
			m := toyMap()
			m.StartURL = ""
			return m
		}, "no start URL"},
	}
	for _, c := range cases {
		err := c.build().Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestTranslateShape(t *testing.T) {
	m := toyMap()
	expr, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if expr.Name != "toy" || expr.StartURL != m.StartURL {
		t.Errorf("expression meta: %+v", expr)
	}
	// One rule per node.
	for _, id := range []string{"visit_entry", "visit_form", "visit_data"} {
		if _, ok := expr.Program.Rule(id); !ok {
			t.Errorf("missing rule %s", id)
		}
	}
	s := expr.Program.String()
	// The data node's rule must extract then choose More-or-stop.
	if !strings.Contains(s, "extract") || !strings.Contains(s, "ε") {
		t.Errorf("data rule malformed:\n%s", s)
	}
	// The goal calls the start node's rule.
	if got := expr.Goal.String(); got != "visit_entry" {
		t.Errorf("goal = %s", got)
	}
}

func TestTranslateGroupsParallelEdges(t *testing.T) {
	// Figure 2's pattern: one action, two possible targets.
	m := New("p", "http://x/", relation.NewSchema("A"))
	m.AddNode(&Node{ID: "formPg"})
	m.AddNode(&Node{ID: "narrow"})
	m.AddNode(&Node{ID: "data", IsData: true, Extract: navcalc.ExtractSpec{
		Columns: []navcalc.Column{{Header: "A", Attr: "A"}}}})
	act := Action{Kind: ActSubmitForm, FormName: "f"}
	m.AddEdge("formPg", act, "narrow")
	m.AddEdge("formPg", act, "data")
	m.AddEdge("narrow", Action{Kind: ActSubmitForm, FormName: "g"}, "data")

	expr, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	rule, _ := expr.Program.Rule("visit_formPg")
	s := rule.String()
	// The shared action must appear exactly once (executed once, targets
	// disambiguated by continuation choice).
	if strings.Count(s, "submit(form f;") != 1 {
		t.Errorf("shared action duplicated: %s", s)
	}
	// Data target must be tried before the non-data target.
	di, ni := strings.Index(s, "visit_data"), strings.Index(s, "visit_narrow")
	if di < 0 || ni < 0 || di > ni {
		t.Errorf("data target should be preferred: %s", s)
	}
}

func TestTranslateInvalidMap(t *testing.T) {
	m := New("bad", "http://x/", relation.NewSchema("A"))
	if _, err := Translate(m); err == nil {
		t.Error("translating an invalid map must fail")
	}
}

func TestTerminalNonDataNodeIsEpsilon(t *testing.T) {
	m := toyMap()
	m.AddNode(&Node{ID: "deadend"})
	m.AddEdge("entry", Action{Kind: ActFollowLink, LinkName: "Away"}, "deadend")
	expr, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	rule, _ := expr.Program.Rule("visit_deadend")
	if rule.String() != "ε" {
		t.Errorf("terminal node rule = %s, want ε", rule)
	}
}

func TestStringAndDOT(t *testing.T) {
	m := toyMap()
	s := m.String()
	for _, want := range []string{"navigation map toy", "start: entry", "link(Go)", "[data]", "form f(a)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	d := m.DOT()
	for _, want := range []string{"digraph", `"entry" -> "form"`, "ellipse", "link(More)"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT() missing %q:\n%s", want, d)
		}
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"link(More)":     {Kind: ActFollowLink, LinkName: "More"},
		"link(?Make)":    {Kind: ActFollowVar, EnvVar: "Make"},
		"form f1(make)":  {Kind: ActSubmitForm, FormName: "f1", Fills: []navcalc.FieldFill{navcalc.Fill("make", "Make")}},
		"form form(x=1)": {Kind: ActSubmitForm, Fills: []navcalc.FieldFill{navcalc.FillConst("x", "1")}},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("Action.String() = %q, want %q", got, want)
		}
	}
}
