package navmap_test

import (
	"encoding/json"
	"strings"
	"testing"

	"webbase/internal/carmaps"
	"webbase/internal/navmap"
	"webbase/internal/sites"
)

// TestMapJSONRoundTrip saves and reloads every standard map, then checks
// the reloaded map behaves identically (same derived expression results).
func TestMapJSONRoundTrip(t *testing.T) {
	w := sites.BuildWorld()
	inputs := map[string]map[string]string{
		"newsday":            {"Make": "ford", "Model": "escort"},
		"nyTimes":            {"Make": "ford", "Model": "escort"},
		"newYorkDaily":       {"Make": "ford"},
		"carPoint":           {"Make": "ford", "Model": "escort"},
		"autoWeb":            {"Make": "ford", "Model": "escort"},
		"wwWheels":           {"Make": "ford", "Model": "escort"},
		"autoConnect":        {"Make": "ford", "Condition": "good"},
		"yahooCars":          {"Make": "ford", "Model": "escort"},
		"kellys":             {"Make": "jaguar", "Model": "xj6", "Condition": "good"},
		"carAndDriver":       {"Make": "jaguar"},
		"carReviews":         {"Make": "honda", "Model": "civic"},
		"carFinance":         {"ZipCode": "11201"},
		"newsdayCarFeatures": nil, // needs a live Url; round-trip structurally only
	}
	for name, m := range carmaps.AllMaps() {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			var loaded navmap.Map
			if err := json.Unmarshal(data, &loaded); err != nil {
				t.Fatal(err)
			}
			// Structural identity.
			n1, e1 := m.Size()
			n2, e2 := loaded.Size()
			if n1 != n2 || e1 != e2 || m.Start != loaded.Start || m.Name != loaded.Name {
				t.Fatalf("structure changed: (%d,%d,%s) vs (%d,%d,%s)", n1, e1, m.Start, n2, e2, loaded.Start)
			}
			if loaded.String() != m.String() {
				t.Fatalf("rendering changed:\n%s\nvs\n%s", m, &loaded)
			}
			// Behavioural identity.
			in := inputs[name]
			if in == nil {
				return
			}
			origExpr, err := navmap.Translate(m)
			if err != nil {
				t.Fatal(err)
			}
			loadedExpr, err := navmap.Translate(&loaded)
			if err != nil {
				t.Fatal(err)
			}
			origRel, _, err := origExpr.Execute(w.Server, in)
			if err != nil {
				t.Fatal(err)
			}
			loadedRel, _, err := loadedExpr.Execute(w.Server, in)
			if err != nil {
				t.Fatal(err)
			}
			if origRel.Len() != loadedRel.Len() {
				t.Errorf("tuples: %d vs %d", origRel.Len(), loadedRel.Len())
			}
		})
	}
}

func TestMapJSONErrors(t *testing.T) {
	var m navmap.Map
	cases := map[string]string{
		"garbage":      `{`,
		"bad version":  `{"version": 99, "name": "x"}`,
		"unknown kind": `{"version":1,"name":"x","start_url":"http://x/","schema":["A"],"start":"d","nodes":[{"id":"d","is_data":true,"extract":{"columns":[{"header":"A","attr":"A"}]}}],"edges":[{"from":"d","to":"d","action":{"kind":"teleport"}}]}`,
		"invalid map":  `{"version":1,"name":"x","schema":["A"],"start":"missing","nodes":[],"edges":[]}`,
	}
	for name, data := range cases {
		if err := json.Unmarshal([]byte(data), &m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMapJSONStableFields(t *testing.T) {
	data, err := json.Marshal(carmaps.Newsday())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"version":1`, `"name":"newsday"`, `"kind":"submit"`,
		`"link_name":"Car Features"`, `"form_name":"f1"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized form missing %q:\n%s", want, s)
		}
	}
}
