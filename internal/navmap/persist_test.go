package navmap_test

import (
	"encoding/json"
	"strings"
	"testing"

	"webbase/internal/carmaps"
	"webbase/internal/navmap"
	"webbase/internal/sites"
)

// TestMapJSONRoundTrip saves and reloads every standard map, then checks
// the reloaded map behaves identically (same derived expression results).
func TestMapJSONRoundTrip(t *testing.T) {
	w := sites.BuildWorld()
	inputs := map[string]map[string]string{
		"newsday":            {"Make": "ford", "Model": "escort"},
		"nyTimes":            {"Make": "ford", "Model": "escort"},
		"newYorkDaily":       {"Make": "ford"},
		"carPoint":           {"Make": "ford", "Model": "escort"},
		"autoWeb":            {"Make": "ford", "Model": "escort"},
		"wwWheels":           {"Make": "ford", "Model": "escort"},
		"autoConnect":        {"Make": "ford", "Condition": "good"},
		"yahooCars":          {"Make": "ford", "Model": "escort"},
		"kellys":             {"Make": "jaguar", "Model": "xj6", "Condition": "good"},
		"carAndDriver":       {"Make": "jaguar"},
		"carReviews":         {"Make": "honda", "Model": "civic"},
		"carFinance":         {"ZipCode": "11201"},
		"newsdayCarFeatures": nil, // needs a live Url; round-trip structurally only
	}
	for name, m := range carmaps.AllMaps() {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			var loaded navmap.Map
			if err := json.Unmarshal(data, &loaded); err != nil {
				t.Fatal(err)
			}
			// Structural identity.
			n1, e1 := m.Size()
			n2, e2 := loaded.Size()
			if n1 != n2 || e1 != e2 || m.Start != loaded.Start || m.Name != loaded.Name {
				t.Fatalf("structure changed: (%d,%d,%s) vs (%d,%d,%s)", n1, e1, m.Start, n2, e2, loaded.Start)
			}
			if loaded.String() != m.String() {
				t.Fatalf("rendering changed:\n%s\nvs\n%s", m, &loaded)
			}
			// Behavioural identity.
			in := inputs[name]
			if in == nil {
				return
			}
			origExpr, err := navmap.Translate(m)
			if err != nil {
				t.Fatal(err)
			}
			loadedExpr, err := navmap.Translate(&loaded)
			if err != nil {
				t.Fatal(err)
			}
			origRel, _, err := origExpr.Execute(w.Server, in)
			if err != nil {
				t.Fatal(err)
			}
			loadedRel, _, err := loadedExpr.Execute(w.Server, in)
			if err != nil {
				t.Fatal(err)
			}
			if origRel.Len() != loadedRel.Len() {
				t.Errorf("tuples: %d vs %d", origRel.Len(), loadedRel.Len())
			}
		})
	}
}

func TestMapJSONErrors(t *testing.T) {
	var m navmap.Map
	cases := map[string]string{
		"garbage":      `{`,
		"bad version":  `{"version": 99, "name": "x"}`,
		"unknown kind": `{"version":1,"name":"x","start_url":"http://x/","schema":["A"],"start":"d","nodes":[{"id":"d","is_data":true,"extract":{"columns":[{"header":"A","attr":"A"}]}}],"edges":[{"from":"d","to":"d","action":{"kind":"teleport"}}]}`,
		"invalid map":  `{"version":1,"name":"x","schema":["A"],"start":"missing","nodes":[],"edges":[]}`,
	}
	for name, data := range cases {
		if err := json.Unmarshal([]byte(data), &m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMapJSONStableFields(t *testing.T) {
	data, err := json.Marshal(carmaps.Newsday())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"version":2`, `"fingerprint":"`, `"name":"newsday"`, `"kind":"submit"`,
		`"link_name":"Car Features"`, `"form_name":"f1"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized form missing %q:\n%s", want, s)
		}
	}
}

// TestMapJSONRepairedEdgeRoundTrip is the regression test for the v2
// format carrying repaired edges: a map whose edge was re-anchored onto a
// renamed link must round-trip byte-identically (including its
// fingerprint), and the reloaded copy must keep the repaired name.
func TestMapJSONRepairedEdgeRoundTrip(t *testing.T) {
	m := carmaps.Newsday().Clone()
	renamed := false
	for _, e := range m.Edges() {
		if e.Action.LinkName == "Automobiles" {
			e.Action.LinkName = "Cars & Trucks" // the post-redesign name
			renamed = true
		}
	}
	if !renamed {
		t.Fatal("newsday map no longer has the Automobiles edge")
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var loaded navmap.Map
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if got, want := navmap.Fingerprint(&loaded), navmap.Fingerprint(m); got != want {
		t.Errorf("fingerprint changed across round trip: %s vs %s", got, want)
	}
	if fp, base := navmap.Fingerprint(m), navmap.Fingerprint(carmaps.Newsday()); fp == base {
		t.Error("repaired map has the same fingerprint as the base map")
	}
	kept := false
	for _, e := range loaded.Edges() {
		if e.Action.LinkName == "Cars & Trucks" {
			kept = true
		}
	}
	if !kept {
		t.Error("repaired link name lost across round trip")
	}
	again, err := json.Marshal(&loaded)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("serialized form not byte-identical across round trip")
	}
}

// TestMapJSONVersion1Accepted: fingerprint-free v1 files (written before
// the format bump) still load.
func TestMapJSONVersion1Accepted(t *testing.T) {
	data := []byte(`{"version":1,"name":"x","start_url":"http://x/","schema":["A"],"start":"d","nodes":[{"id":"d","is_data":true,"extract":{"columns":[{"header":"A","attr":"A"}]}}],"edges":[]}`)
	var m navmap.Map
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("v1 map rejected: %v", err)
	}
	if m.Name != "x" {
		t.Errorf("loaded name %q", m.Name)
	}
}

// TestMapJSONCorruptFingerprintRejected: a v2 file whose content no
// longer matches its fingerprint is refused instead of silently loaded.
func TestMapJSONCorruptFingerprintRejected(t *testing.T) {
	data, err := json.Marshal(carmaps.Newsday())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(data), `"name":"newsday"`, `"name":"tampered"`, 1)
	var m navmap.Map
	err = json.Unmarshal([]byte(corrupt), &m)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt map loaded: err=%v", err)
	}
}
