package navmap

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"webbase/internal/navcalc"
	"webbase/internal/relation"
	"webbase/internal/wrapper"
)

// The JSON persistence format for navigation maps. Maps built once by the
// map builder (or rebuilt by the self-healing repair worker) are saved by
// the webbase designer and loaded at system start; the on-disk form is
// stable, versioned and independent of Go internals.

// FormatVersion identifies the persisted map format. Version 2 adds a
// content fingerprint so a loaded map can be checked for corruption and a
// hot-swapped map can be identified in traces; version 1 files (no
// fingerprint) are still accepted.
const FormatVersion = 2

type mapJSON struct {
	Version     int        `json:"version"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	Name        string     `json:"name"`
	StartURL    string     `json:"start_url,omitempty"`
	StartURLVar string     `json:"start_url_var,omitempty"`
	Schema      []string   `json:"schema"`
	Start       string     `json:"start"`
	Nodes       []nodeJSON `json:"nodes"`
	Edges       []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	ID      string       `json:"id"`
	Title   string       `json:"title,omitempty"`
	IsData  bool         `json:"is_data,omitempty"`
	Extract *extractJSON `json:"extract,omitempty"`
}

type extractJSON struct {
	Columns  []columnJSON  `json:"columns,omitempty"`
	LinkCols []linkColJSON `json:"link_cols,omitempty"`
	EnvCols  []envColJSON  `json:"env_cols,omitempty"`
	Pattern  *patternJSON  `json:"pattern,omitempty"`
}

type columnJSON struct {
	Header string `json:"header"`
	Attr   string `json:"attr"`
	Money  bool   `json:"money,omitempty"`
}

type linkColJSON struct {
	LinkName string `json:"link_name"`
	Attr     string `json:"attr"`
}

type envColJSON struct {
	Var  string `json:"var"`
	Attr string `json:"attr"`
}

type patternJSON struct {
	ItemTag string         `json:"item_tag,omitempty"`
	Fields  []patFieldJSON `json:"fields"`
}

type patFieldJSON struct {
	Label string `json:"label"`
	Attr  string `json:"attr"`
	Money bool   `json:"money,omitempty"`
}

type edgeJSON struct {
	From   string     `json:"from"`
	To     string     `json:"to"`
	Action actionJSON `json:"action"`
}

type actionJSON struct {
	Kind     string     `json:"kind"` // "follow" | "follow_var" | "submit"
	LinkName string     `json:"link_name,omitempty"`
	EnvVar   string     `json:"env_var,omitempty"`
	FormName string     `json:"form_name,omitempty"`
	Fills    []fillJSON `json:"fills,omitempty"`
}

type fillJSON struct {
	Field string `json:"field"`
	Var   string `json:"var,omitempty"`
	Const string `json:"const,omitempty"`
}

// encodeJSON builds the persisted form of the map, without a fingerprint.
func (m *Map) encodeJSON() mapJSON {
	out := mapJSON{
		Version:     FormatVersion,
		Name:        m.Name,
		StartURL:    m.StartURL,
		StartURLVar: m.StartURLVar,
		Schema:      append([]string(nil), m.Schema...),
		Start:       string(m.Start),
	}
	for _, n := range m.Nodes() {
		nj := nodeJSON{ID: string(n.ID), Title: n.Title, IsData: n.IsData}
		if n.IsData {
			nj.Extract = encodeExtract(n.Extract)
		}
		out.Nodes = append(out.Nodes, nj)
	}
	for _, e := range m.Edges() {
		out.Edges = append(out.Edges, edgeJSON{
			From: string(e.From), To: string(e.To), Action: encodeAction(e.Action),
		})
	}
	return out
}

// fingerprintOf hashes the persisted form with its fingerprint field
// cleared, so the value is stable across encode/decode and independent of
// on-disk formatting.
func fingerprintOf(j mapJSON) string {
	j.Fingerprint = ""
	data, err := json.Marshal(j)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Fingerprint returns a stable content hash of the map — the identity the
// VPS registry records when a repaired map is hot-swapped in, and the
// integrity check version-2 map files carry.
func Fingerprint(m *Map) string { return fingerprintOf(m.encodeJSON()) }

// MarshalJSON implements json.Marshaler for Map.
func (m *Map) MarshalJSON() ([]byte, error) {
	out := m.encodeJSON()
	out.Fingerprint = fingerprintOf(out)
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler for Map. The decoded map is
// validated.
func (m *Map) UnmarshalJSON(data []byte) error {
	var in mapJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("navmap: decoding map: %w", err)
	}
	if in.Version != 1 && in.Version != FormatVersion {
		return fmt.Errorf("navmap: unsupported map format version %d (want ≤ %d)", in.Version, FormatVersion)
	}
	// Version-2 files carry a content fingerprint; verify it when present.
	// (Version-1 files predate fingerprints and are accepted as-is.)
	if in.Version == FormatVersion && in.Fingerprint != "" {
		if got := fingerprintOf(in); got != in.Fingerprint {
			return fmt.Errorf("navmap: map %s is corrupt: fingerprint %s does not match content (%s)",
				in.Name, in.Fingerprint, got)
		}
	}
	schema, err := relation.ParseSchema(in.Schema)
	if err != nil {
		return fmt.Errorf("navmap: decoding map %s: %w", in.Name, err)
	}
	decoded := New(in.Name, in.StartURL, schema)
	decoded.StartURLVar = in.StartURLVar
	for _, nj := range in.Nodes {
		n := &Node{ID: NodeID(nj.ID), Title: nj.Title, IsData: nj.IsData}
		if nj.Extract != nil {
			n.Extract = decodeExtract(nj.Extract)
		}
		decoded.AddNode(n)
	}
	decoded.Start = NodeID(in.Start)
	for _, ej := range in.Edges {
		action, err := decodeAction(ej.Action)
		if err != nil {
			return err
		}
		decoded.AddEdge(NodeID(ej.From), action, NodeID(ej.To))
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*m = *decoded
	return nil
}

// EncodeMap renders a map in the persisted (version-2, fingerprinted)
// format — the payload the durable store writes when a repaired map is
// hot-swapped in.
func EncodeMap(m *Map) ([]byte, error) { return m.MarshalJSON() }

// DecodeMap parses and validates a persisted map. Any malformation —
// syntax, fingerprint mismatch, unknown version, graph that fails
// Validate — returns an error; a decoded map is safe to swap in.
func DecodeMap(data []byte) (*Map, error) {
	m := new(Map)
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeExtract(s navcalc.ExtractSpec) *extractJSON {
	out := &extractJSON{}
	for _, c := range s.Columns {
		out.Columns = append(out.Columns, columnJSON(c))
	}
	for _, lc := range s.LinkCols {
		out.LinkCols = append(out.LinkCols, linkColJSON(lc))
	}
	for _, ec := range s.EnvCols {
		out.EnvCols = append(out.EnvCols, envColJSON(ec))
	}
	if s.Pattern != nil {
		p := &patternJSON{ItemTag: s.Pattern.ItemTag}
		for _, f := range s.Pattern.Fields {
			p.Fields = append(p.Fields, patFieldJSON(f))
		}
		out.Pattern = p
	}
	return out
}

func decodeExtract(in *extractJSON) navcalc.ExtractSpec {
	var out navcalc.ExtractSpec
	for _, c := range in.Columns {
		out.Columns = append(out.Columns, navcalc.Column(c))
	}
	for _, lc := range in.LinkCols {
		out.LinkCols = append(out.LinkCols, navcalc.LinkCol(lc))
	}
	for _, ec := range in.EnvCols {
		out.EnvCols = append(out.EnvCols, navcalc.EnvCol(ec))
	}
	if in.Pattern != nil {
		p := &wrapper.Script{ItemTag: in.Pattern.ItemTag}
		for _, f := range in.Pattern.Fields {
			p.Fields = append(p.Fields, wrapper.Field(f))
		}
		out.Pattern = p
	}
	return out
}

func encodeAction(a Action) actionJSON {
	out := actionJSON{
		LinkName: a.LinkName, EnvVar: a.EnvVar, FormName: a.FormName,
	}
	switch a.Kind {
	case ActFollowLink:
		out.Kind = "follow"
	case ActFollowVar:
		out.Kind = "follow_var"
	default:
		out.Kind = "submit"
	}
	for _, f := range a.Fills {
		out.Fills = append(out.Fills, fillJSON(f))
	}
	return out
}

func decodeAction(in actionJSON) (Action, error) {
	out := Action{LinkName: in.LinkName, EnvVar: in.EnvVar, FormName: in.FormName}
	switch in.Kind {
	case "follow":
		out.Kind = ActFollowLink
	case "follow_var":
		out.Kind = ActFollowVar
	case "submit":
		out.Kind = ActSubmitForm
	default:
		return Action{}, fmt.Errorf("navmap: unknown action kind %q", in.Kind)
	}
	for _, f := range in.Fills {
		out.Fills = append(out.Fills, navcalc.FieldFill(f))
	}
	return out, nil
}
