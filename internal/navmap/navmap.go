// Package navmap implements navigation maps (Section 4): labeled directed
// graphs whose nodes represent the structure of static or dynamic Web
// pages and whose edges represent the actions (following a link, filling
// out a form) executable from a page.
//
// A navigation map codifies every access path a site offers for populating
// a virtual relation. Maps are what the map builder produces from recorded
// browsing sessions, and navigation expressions are derived from them
// automatically, in time linear in the size of the map (Translate).
package navmap

import (
	"fmt"
	"sort"
	"strings"

	"webbase/internal/navcalc"
	"webbase/internal/relation"
	"webbase/internal/tlogic"
)

// NodeID identifies a map node.
type NodeID string

// Node is one page schema in the map. A node with IsData set represents a
// data page carrying extractable tuples; its Extract spec is the page's
// data extraction method (which the paper assumes the designer provides).
type Node struct {
	ID      NodeID
	Title   string // human-readable label for map displays
	IsData  bool
	Extract navcalc.ExtractSpec
}

// ActionKind discriminates edge actions.
type ActionKind uint8

// Edge action kinds.
const (
	ActFollowLink ActionKind = iota
	ActFollowVar
	ActSubmitForm
)

// Action is the label of a map edge.
type Action struct {
	Kind     ActionKind
	LinkName string              // ActFollowLink: the link text
	EnvVar   string              // ActFollowVar: input attribute naming the link
	FormName string              // ActSubmitForm: the form's name ("" = first)
	Fills    []navcalc.FieldFill // ActSubmitForm: how the form is filled
}

// String renders the action the way Figure 2 labels its edges.
func (a Action) String() string {
	switch a.Kind {
	case ActFollowLink:
		return fmt.Sprintf("link(%s)", a.LinkName)
	case ActFollowVar:
		return fmt.Sprintf("link(?%s)", a.EnvVar)
	default:
		vars := make([]string, len(a.Fills))
		for i, f := range a.Fills {
			if f.Const != "" {
				vars[i] = f.Field + "=" + f.Const
			} else {
				vars[i] = f.Field
			}
		}
		name := a.FormName
		if name == "" {
			name = "form"
		}
		return fmt.Sprintf("form %s(%s)", name, strings.Join(vars, ", "))
	}
}

// key canonicalizes an action for grouping parallel edges.
func (a Action) key() string { return a.String() }

// formula compiles the action into its navigation-calculus primitive.
func (a Action) formula() tlogic.Formula {
	switch a.Kind {
	case ActFollowLink:
		return navcalc.Follow(a.LinkName)
	case ActFollowVar:
		return navcalc.FollowVar(a.EnvVar)
	default:
		return navcalc.Submit(a.FormName, a.Fills...)
	}
}

// Edge connects two nodes with an action.
type Edge struct {
	From, To NodeID
	Action   Action
}

// Map is a navigation map for one VPS relation of one site.
type Map struct {
	Name     string // the VPS relation this map populates
	StartURL string
	// StartURLVar optionally names the input attribute that supplies the
	// start URL (maps entered via a captured URL, like newsdayCarFeatures).
	StartURLVar string
	Schema      relation.Schema
	Start       NodeID

	nodes map[NodeID]*Node
	order []NodeID // insertion order, for deterministic output
	edges []*Edge
}

// New returns an empty map for the named relation.
func New(name, startURL string, schema relation.Schema) *Map {
	return &Map{
		Name:     name,
		StartURL: startURL,
		Schema:   schema,
		nodes:    make(map[NodeID]*Node),
	}
}

// AddNode inserts a node; the first node added becomes the start node.
// Adding an existing ID returns the existing node (maps are built
// incrementally; re-visits must not duplicate — Section 7's map builder
// "checks whether actions and Web page objects are new before adding").
func (m *Map) AddNode(n *Node) *Node {
	if old, ok := m.nodes[n.ID]; ok {
		return old
	}
	m.nodes[n.ID] = n
	m.order = append(m.order, n.ID)
	if len(m.order) == 1 {
		m.Start = n.ID
	}
	return n
}

// Node returns the node with the given id, or nil.
func (m *Map) Node(id NodeID) *Node { return m.nodes[id] }

// Nodes returns the nodes in insertion order.
func (m *Map) Nodes() []*Node {
	out := make([]*Node, len(m.order))
	for i, id := range m.order {
		out[i] = m.nodes[id]
	}
	return out
}

// AddEdge inserts an edge, deduplicating identical (from, action, to)
// triples.
func (m *Map) AddEdge(from NodeID, action Action, to NodeID) *Edge {
	for _, e := range m.edges {
		if e.From == from && e.To == to && e.Action.key() == action.key() {
			return e
		}
	}
	e := &Edge{From: from, To: to, Action: action}
	m.edges = append(m.edges, e)
	return e
}

// Edges returns all edges in insertion order.
func (m *Map) Edges() []*Edge { return m.edges }

// OutEdges returns the edges leaving the node, in insertion order.
func (m *Map) OutEdges(id NodeID) []*Edge {
	var out []*Edge
	for _, e := range m.edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// Size returns (#nodes, #edges), the map size the linear-time translation
// is measured against.
func (m *Map) Size() (nodes, edges int) { return len(m.nodes), len(m.edges) }

// Clone returns a deep-enough copy of the map for repair to edit: nodes
// and edges are fresh values (an edge's action can be re-anchored without
// touching the original), while extraction specs — immutable in practice —
// are shared. Node and edge order is preserved, so a repaired map that
// changes nothing round-trips to the same fingerprint.
func (m *Map) Clone() *Map {
	out := &Map{
		Name:        m.Name,
		StartURL:    m.StartURL,
		StartURLVar: m.StartURLVar,
		Schema:      m.Schema.Clone(),
		Start:       m.Start,
		nodes:       make(map[NodeID]*Node, len(m.nodes)),
		order:       append([]NodeID(nil), m.order...),
	}
	for id, n := range m.nodes {
		cp := *n
		out.nodes[id] = &cp
	}
	out.edges = make([]*Edge, len(m.edges))
	for i, e := range m.edges {
		cp := *e
		cp.Action.Fills = append([]navcalc.FieldFill(nil), e.Action.Fills...)
		out.edges[i] = &cp
	}
	return out
}

// Validate checks the map's structural invariants: a start node, edges
// referencing existing nodes, at least one data node, and every data node
// equipped with an extraction spec whose attributes fall inside the map's
// schema.
func (m *Map) Validate() error {
	if m.nodes[m.Start] == nil {
		return fmt.Errorf("navmap %s: start node %q missing", m.Name, m.Start)
	}
	if m.StartURL == "" && m.StartURLVar == "" {
		return fmt.Errorf("navmap %s: no start URL", m.Name)
	}
	hasData := false
	for _, n := range m.nodes {
		if !n.IsData {
			continue
		}
		hasData = true
		if len(n.Extract.Columns) == 0 && len(n.Extract.LinkCols) == 0 && n.Extract.Pattern == nil {
			return fmt.Errorf("navmap %s: data node %s has no extraction spec", m.Name, n.ID)
		}
		for _, c := range n.Extract.Columns {
			if !m.Schema.Has(c.Attr) {
				return fmt.Errorf("navmap %s: node %s extracts %q, not in schema %v", m.Name, n.ID, c.Attr, m.Schema)
			}
		}
		for _, lc := range n.Extract.LinkCols {
			if !m.Schema.Has(lc.Attr) {
				return fmt.Errorf("navmap %s: node %s extracts link %q → %q, not in schema %v", m.Name, n.ID, lc.LinkName, lc.Attr, m.Schema)
			}
		}
		for _, ec := range n.Extract.EnvCols {
			if !m.Schema.Has(ec.Attr) {
				return fmt.Errorf("navmap %s: node %s echoes input %q → %q, not in schema %v", m.Name, n.ID, ec.Var, ec.Attr, m.Schema)
			}
		}
		if n.Extract.Pattern != nil {
			for _, a := range n.Extract.Pattern.Attrs() {
				if !m.Schema.Has(a) {
					return fmt.Errorf("navmap %s: node %s pattern-extracts %q, not in schema %v", m.Name, n.ID, a, m.Schema)
				}
			}
		}
	}
	if !hasData {
		return fmt.Errorf("navmap %s: no data node — the map populates nothing", m.Name)
	}
	for _, e := range m.edges {
		if m.nodes[e.From] == nil || m.nodes[e.To] == nil {
			return fmt.Errorf("navmap %s: edge %s → %s references missing node", m.Name, e.From, e.To)
		}
	}
	return nil
}

// String renders the map as an adjacency listing, the textual analogue of
// Figure 2.
func (m *Map) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "navigation map %s %v\n", m.Name, m.Schema)
	fmt.Fprintf(&sb, "  start: %s (%s)\n", m.Start, m.startDescription())
	for _, id := range m.order {
		n := m.nodes[id]
		kind := ""
		if n.IsData {
			kind = " [data]"
		}
		fmt.Fprintf(&sb, "  %s%s\n", n.ID, kind)
		for _, e := range m.OutEdges(id) {
			fmt.Fprintf(&sb, "    --%s--> %s\n", e.Action, e.To)
		}
	}
	return sb.String()
}

func (m *Map) startDescription() string {
	if m.StartURLVar != "" {
		return "URL from input " + m.StartURLVar
	}
	return m.StartURL
}

// DOT renders the map in Graphviz DOT format for Figure 2-style pictures.
func (m *Map) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", m.Name)
	for _, id := range m.order {
		n := m.nodes[id]
		shape := "box"
		if n.IsData {
			shape = "ellipse"
		}
		label := string(n.ID)
		if n.Title != "" {
			label = n.Title
		}
		fmt.Fprintf(&sb, "  %q [shape=%s,label=%q];\n", n.ID, shape, label)
	}
	for _, e := range m.edges {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", e.From, e.To, e.Action.String())
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Translate derives the navigation expression from the map — the
// automatic, linear-time derivation the paper describes: "they can be
// derived automatically directly from that map in linear time in the size
// of the map."
//
// Each node becomes one rule. A data node's rule extracts the page and
// then either takes one of the node's outgoing actions (e.g. the More
// link) or stops; any other node's rule takes one of its outgoing actions.
// Parallel edges with the same action but different targets compile into
// one action followed by a choice of target rules (the action runs once;
// the target is disambiguated by which continuation succeeds, data-page
// targets first, exactly the "either extract data, or fill form f2"
// pattern of Figure 4).
func Translate(m *Map) (*navcalc.Expression, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Index out-edges once so translation is genuinely linear in
	// nodes + edges, as the paper claims.
	adjacency := make(map[NodeID][]*Edge, len(m.nodes))
	for _, e := range m.edges {
		adjacency[e.From] = append(adjacency[e.From], e)
	}
	names := nodeRuleNames(m)
	prog := tlogic.NewProgram()
	for _, id := range m.order {
		prog.Define(names[id], m.nodeRule(id, adjacency[id], names))
	}
	goal := tlogic.Call{Rule: names[m.Start]}
	return &navcalc.Expression{
		Name:        m.Name,
		StartURL:    m.StartURL,
		StartURLVar: m.StartURLVar,
		Schema:      m.Schema,
		// Rules for map nodes unreachable from the start (left behind by
		// incremental map edits) are pruned from the expression.
		Program: prog.Prune(goal),
		Goal:    goal,
	}, nil
}

// nodeRuleNames assigns each node a rule name that is a valid identifier
// in the textual expression syntax (map-builder node IDs are structural
// signatures full of punctuation), unique across the map.
func nodeRuleNames(m *Map) map[NodeID]string {
	taken := make(map[string]bool, len(m.order))
	out := make(map[NodeID]string, len(m.order))
	for _, id := range m.order {
		base := "visit_" + sanitizeIdent(string(id))
		name := base
		for i := 2; taken[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		taken[name] = true
		out[id] = name
	}
	return out
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "node"
	}
	return sb.String()
}

// nodeRule builds the rule body for one node given its out-edges.
func (m *Map) nodeRule(id NodeID, outEdges []*Edge, names map[NodeID]string) tlogic.Formula {
	n := m.nodes[id]
	// Group outgoing edges by action, preserving first-seen order.
	type group struct {
		action  Action
		targets []NodeID
	}
	var groups []*group
	index := make(map[string]*group)
	for _, e := range outEdges {
		k := e.Action.key()
		g, ok := index[k]
		if !ok {
			g = &group{action: e.Action}
			index[k] = g
			groups = append(groups, g)
		}
		g.targets = append(g.targets, e.To)
	}

	var branches []tlogic.Formula
	for _, g := range groups {
		// Data-page targets first: extraction doubles as the guard that
		// distinguishes a data page from a refine-your-search page.
		targets := append([]NodeID(nil), g.targets...)
		sort.SliceStable(targets, func(i, j int) bool {
			return m.nodes[targets[i]].IsData && !m.nodes[targets[j]].IsData
		})
		conts := make([]tlogic.Formula, len(targets))
		for i, t := range targets {
			conts[i] = tlogic.Call{Rule: names[t]}
		}
		branches = append(branches, tlogic.Seq(g.action.formula(), tlogic.Alt(conts...)))
	}

	if n.IsData {
		// extract ⊗ (branch1 ∨ ... ∨ ε): collect this page, then continue
		// (e.g. More) or stop.
		branches = append(branches, tlogic.Empty{})
		return tlogic.Seq(navcalc.Extract(n.Extract), tlogic.Alt(branches...))
	}
	if len(branches) == 0 {
		// A terminal non-data node contributes nothing; succeeding empty
		// keeps sibling branches' collections intact.
		return tlogic.Empty{}
	}
	return tlogic.Alt(branches...)
}
