package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webbase/internal/trace"
	"webbase/internal/web"
)

func pageTierOver(t *testing.T, dir string) (*PageTier, *Store) {
	t.Helper()
	s, err := Open(dir, Options{Metrics: trace.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPageTier(s, 0)
	t.Cleanup(pt.Close)
	return pt, s
}

func TestPageTierRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	pt, _ := pageTierOver(t, dir)
	fetched := time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
	resp := &web.Response{Status: 200, URL: "http://x.test/a", Body: []byte("<html>a</html>")}
	pt.Store("key-a", resp, fetched)
	pt.Flush()
	pt.Close()

	// Restart: a fresh tier over the same dir serves the page with its
	// original fetch time, so MaxAge semantics carry across the restart.
	pt2, _ := pageTierOver(t, dir)
	got, at, ok := pt2.Load("key-a")
	if !ok {
		t.Fatal("warm page lost across restart")
	}
	if got.Status != resp.Status || got.URL != resp.URL || !bytes.Equal(got.Body, resp.Body) {
		t.Fatalf("restored page = %+v, want %+v", got, resp)
	}
	if !at.Equal(fetched) {
		t.Fatalf("restored fetch time = %v, want %v", at, fetched)
	}
}

func TestPageTierInvalidateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	pt, _ := pageTierOver(t, dir)
	pt.Store("k", web.HTML("http://x.test/", "old design"), time.Unix(1, 0))
	pt.Flush()
	pt.Invalidate() // the Clear's intent must outlive the process
	pt.Close()

	pt2, _ := pageTierOver(t, dir)
	if _, _, ok := pt2.Load("k"); ok {
		t.Fatal("invalidated page resurrected after restart")
	}
	// Entries stored after the invalidation live under the new generation.
	pt2.Store("k", web.HTML("http://x.test/", "new design"), time.Unix(2, 0))
	pt2.Flush()
	if got, _, ok := pt2.Load("k"); !ok || string(got.Body) != "new design" {
		t.Fatalf("post-invalidate store not served: %v %q", ok, got)
	}
}

func TestPageTierCorruptGenerationDropsTier(t *testing.T) {
	dir := t.TempDir()
	pt, s := pageTierOver(t, dir)
	pt.Store("k", web.HTML("http://x.test/", "body"), time.Unix(1, 0))
	pt.Invalidate() // persist a non-zero generation
	pt.Store("k2", web.HTML("http://x.test/2", "body2"), time.Unix(2, 0))
	pt.Flush()
	pt.Close()

	// Corrupt the generation meta record: with no trusted generation, an
	// old entry could resurrect a cleared page, so the whole tier drops.
	metaPath := s.path(pagesTier, genMetaKey)
	if err := os.WriteFile(metaPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	pt2, s2 := pageTierOver(t, dir)
	if _, _, ok := pt2.Load("k2"); ok {
		t.Fatal("entry served from a tier whose generation bookkeeping was lost")
	}
	names, _ := os.ReadDir(filepath.Join(dir, pagesTier))
	for _, n := range names {
		t.Errorf("tier not emptied: %s remains", n.Name())
	}
	_ = s2
}

func TestPageTierCorruptEntryIsMissAndCollected(t *testing.T) {
	dir := t.TempDir()
	pt, s := pageTierOver(t, dir)
	pt.Store("k", web.HTML("http://x.test/", "body"), time.Unix(1, 0))
	pt.Flush()
	p := s.path(pagesTier, "k")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt.Load("k"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupt entry not garbage-collected")
	}
	// The memory tier refills over it as if it were a plain miss.
	pt.Store("k", web.HTML("http://x.test/", "refill"), time.Unix(2, 0))
	pt.Flush()
	if got, _, ok := pt.Load("k"); !ok || string(got.Body) != "refill" {
		t.Fatalf("refill after corruption failed: %v %q", ok, got)
	}
}

func TestPageTierStoreAfterCloseIsNoop(t *testing.T) {
	pt, _ := pageTierOver(t, t.TempDir())
	pt.Close()
	pt.Store("k", web.HTML("http://x.test/", "late"), time.Unix(1, 0)) // must not panic
	pt.Flush()                                                         // must not hang
	pt.Invalidate()
}

func boundedTier(t *testing.T, dir string, maxBytes int64) (*PageTier, *trace.Registry) {
	t.Helper()
	reg := trace.NewRegistry()
	s, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPageTier(s, maxBytes)
	t.Cleanup(pt.Close)
	return pt, reg
}

// pageOfSize builds pages whose persisted payloads are byte-identical in
// size, so eviction arithmetic in the tests is exact.
func pageOfSize(tag string) *web.Response {
	return &web.Response{Status: 200, URL: "http://x.test/" + tag, Body: bytes.Repeat([]byte(tag), 400)}
}

func payloadSize(t *testing.T) int64 {
	t.Helper()
	dir := t.TempDir()
	pt, _ := boundedTier(t, dir, 0)
	pt.Store("probe", pageOfSize("p"), time.Unix(1, 0))
	pt.Flush()
	s, err := Open(dir, Options{Metrics: trace.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := s.Get(pagesTier, "probe")
	if err != nil {
		t.Fatal(err)
	}
	return int64(len(payload))
}

// TestPageTierEvictsLeastRecentlyUsed: with a bound that fits two pages,
// storing a third evicts the least-recently-touched one — and a Load
// counts as a touch, so reading a page protects it.
func TestPageTierEvictsLeastRecentlyUsed(t *testing.T) {
	size := payloadSize(t)
	pt, reg := boundedTier(t, t.TempDir(), 2*size+size/2)

	pt.Store("a", pageOfSize("a"), time.Unix(1, 0))
	pt.Store("b", pageOfSize("b"), time.Unix(2, 0))
	pt.Flush()
	if _, _, ok := pt.Load("a"); !ok { // touch a: b becomes the LRU victim
		t.Fatal("page a missing before any eviction")
	}
	pt.Store("c", pageOfSize("c"), time.Unix(3, 0))
	pt.Flush()

	if _, _, ok := pt.Load("b"); ok {
		t.Fatal("LRU victim b survived past the bound")
	}
	for _, k := range []string{"a", "c"} {
		if _, _, ok := pt.Load(k); !ok {
			t.Fatalf("page %s evicted though it was not the LRU victim", k)
		}
	}
	if n := reg.Counter(`store_evicted_total{tier="pages"}`).Value(); n != 1 {
		t.Fatalf("store_evicted_total{tier=pages} = %d, want 1", n)
	}
	if n := reg.Counter("store_evicted_total").Value(); n != 1 {
		t.Fatalf("store_evicted_total = %d, want 1", n)
	}
}

// TestPageTierBoundHoldsAcrossRestart: an unbounded tier accumulates four
// pages; reopening it with a two-page bound trims the stalest-fetched
// pages at boot. The bound is a property of the directory's contents, not
// of one process's in-memory index.
func TestPageTierBoundHoldsAcrossRestart(t *testing.T) {
	size := payloadSize(t)
	dir := t.TempDir()
	pt, _ := boundedTier(t, dir, 0)
	for i, k := range []string{"w", "x", "y", "z"} {
		pt.Store(k, pageOfSize(k), time.Unix(int64(i+1), 0))
	}
	pt.Flush()
	pt.Close()

	pt2, reg := boundedTier(t, dir, 2*size+size/2)
	for _, k := range []string{"w", "x"} { // oldest fetch times evict first
		if _, _, ok := pt2.Load(k); ok {
			t.Fatalf("stale page %s survived the boot-time trim", k)
		}
	}
	for _, k := range []string{"y", "z"} {
		if _, _, ok := pt2.Load(k); !ok {
			t.Fatalf("fresh page %s lost by the boot-time trim", k)
		}
	}
	if n := reg.Counter(`store_evicted_total{tier="pages"}`).Value(); n != 2 {
		t.Fatalf("store_evicted_total{tier=pages} = %d, want 2", n)
	}

	// The rebuilt index keeps enforcing the bound for new writes.
	pt2.Store("q", pageOfSize("q"), time.Unix(9, 0))
	pt2.Flush()
	if _, _, ok := pt2.Load("y"); ok {
		t.Fatal("post-restart write did not evict the rebuilt-index LRU victim")
	}
	if _, _, ok := pt2.Load("q"); !ok {
		t.Fatal("post-restart write itself missing")
	}
	if n := reg.Counter(`store_evicted_total{tier="pages"}`).Value(); n != 3 {
		t.Fatalf("store_evicted_total{tier=pages} after restart write = %d, want 3", n)
	}
}

// TestPageTierOversizeEntryEvicted: the bound is absolute — a single
// entry larger than the whole budget does not take up residence.
func TestPageTierOversizeEntryEvicted(t *testing.T) {
	size := payloadSize(t)
	pt, reg := boundedTier(t, t.TempDir(), size/2)
	pt.Store("big", pageOfSize("b"), time.Unix(1, 0))
	pt.Flush()
	if _, _, ok := pt.Load("big"); ok {
		t.Fatal("entry larger than the tier bound survived")
	}
	if n := reg.Counter(`store_evicted_total{tier="pages"}`).Value(); n != 1 {
		t.Fatalf("store_evicted_total{tier=pages} = %d, want 1", n)
	}
}
