package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webbase/internal/trace"
	"webbase/internal/web"
)

func pageTierOver(t *testing.T, dir string) (*PageTier, *Store) {
	t.Helper()
	s, err := Open(dir, Options{Metrics: trace.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPageTier(s)
	t.Cleanup(pt.Close)
	return pt, s
}

func TestPageTierRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	pt, _ := pageTierOver(t, dir)
	fetched := time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
	resp := &web.Response{Status: 200, URL: "http://x.test/a", Body: []byte("<html>a</html>")}
	pt.Store("key-a", resp, fetched)
	pt.Flush()
	pt.Close()

	// Restart: a fresh tier over the same dir serves the page with its
	// original fetch time, so MaxAge semantics carry across the restart.
	pt2, _ := pageTierOver(t, dir)
	got, at, ok := pt2.Load("key-a")
	if !ok {
		t.Fatal("warm page lost across restart")
	}
	if got.Status != resp.Status || got.URL != resp.URL || !bytes.Equal(got.Body, resp.Body) {
		t.Fatalf("restored page = %+v, want %+v", got, resp)
	}
	if !at.Equal(fetched) {
		t.Fatalf("restored fetch time = %v, want %v", at, fetched)
	}
}

func TestPageTierInvalidateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	pt, _ := pageTierOver(t, dir)
	pt.Store("k", web.HTML("http://x.test/", "old design"), time.Unix(1, 0))
	pt.Flush()
	pt.Invalidate() // the Clear's intent must outlive the process
	pt.Close()

	pt2, _ := pageTierOver(t, dir)
	if _, _, ok := pt2.Load("k"); ok {
		t.Fatal("invalidated page resurrected after restart")
	}
	// Entries stored after the invalidation live under the new generation.
	pt2.Store("k", web.HTML("http://x.test/", "new design"), time.Unix(2, 0))
	pt2.Flush()
	if got, _, ok := pt2.Load("k"); !ok || string(got.Body) != "new design" {
		t.Fatalf("post-invalidate store not served: %v %q", ok, got)
	}
}

func TestPageTierCorruptGenerationDropsTier(t *testing.T) {
	dir := t.TempDir()
	pt, s := pageTierOver(t, dir)
	pt.Store("k", web.HTML("http://x.test/", "body"), time.Unix(1, 0))
	pt.Invalidate() // persist a non-zero generation
	pt.Store("k2", web.HTML("http://x.test/2", "body2"), time.Unix(2, 0))
	pt.Flush()
	pt.Close()

	// Corrupt the generation meta record: with no trusted generation, an
	// old entry could resurrect a cleared page, so the whole tier drops.
	metaPath := s.path(pagesTier, genMetaKey)
	if err := os.WriteFile(metaPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	pt2, s2 := pageTierOver(t, dir)
	if _, _, ok := pt2.Load("k2"); ok {
		t.Fatal("entry served from a tier whose generation bookkeeping was lost")
	}
	names, _ := os.ReadDir(filepath.Join(dir, pagesTier))
	for _, n := range names {
		t.Errorf("tier not emptied: %s remains", n.Name())
	}
	_ = s2
}

func TestPageTierCorruptEntryIsMissAndCollected(t *testing.T) {
	dir := t.TempDir()
	pt, s := pageTierOver(t, dir)
	pt.Store("k", web.HTML("http://x.test/", "body"), time.Unix(1, 0))
	pt.Flush()
	p := s.path(pagesTier, "k")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt.Load("k"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupt entry not garbage-collected")
	}
	// The memory tier refills over it as if it were a plain miss.
	pt.Store("k", web.HTML("http://x.test/", "refill"), time.Unix(2, 0))
	pt.Flush()
	if got, _, ok := pt.Load("k"); !ok || string(got.Body) != "refill" {
		t.Fatalf("refill after corruption failed: %v %q", ok, got)
	}
}

func TestPageTierStoreAfterCloseIsNoop(t *testing.T) {
	pt, _ := pageTierOver(t, t.TempDir())
	pt.Close()
	pt.Store("k", web.HTML("http://x.test/", "late"), time.Unix(1, 0)) // must not panic
	pt.Flush()                                                         // must not hang
	pt.Invalidate()
}
