package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"webbase/internal/trace"
)

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTest(t, Options{})
	key := "GET http://example.test/page?Make=ford&Model=escort"
	payload := []byte("hello, durable world")
	if err := s.Put("pages", key, 7, payload); err != nil {
		t.Fatal(err)
	}
	got, gen, err := s.Get("pages", key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || gen != 7 {
		t.Fatalf("Get = (%q, %d), want (%q, 7)", got, gen, payload)
	}
	// A second store rooted at the same dir sees the record (restart).
	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := s2.Get("pages", key); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: Get = (%q, %v)", got, err)
	}
}

func TestStoreMissIsNotExist(t *testing.T) {
	s := openTest(t, Options{Metrics: trace.NewRegistry()})
	_, _, err := s.Get("pages", "never written")
	if !IsNotExist(err) {
		t.Fatalf("miss error = %v, want ErrNotExist", err)
	}
	if IsCorrupt(err) {
		t.Fatal("a clean miss must not classify as corruption")
	}
}

func TestStoreDeleteAndScan(t *testing.T) {
	s := openTest(t, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put("maps", fmt.Sprintf("site-%d", i), uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("maps", "site-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("maps", "site-2"); err != nil {
		t.Fatalf("double delete errored: %v", err)
	}
	seen := map[string]uint64{}
	if err := s.Scan("maps", func(key string, gen uint64, _ []byte) { seen[key] = gen }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("scan saw %d records, want 4: %v", len(seen), seen)
	}
	if _, ok := seen["site-2"]; ok {
		t.Fatal("deleted record still scanned")
	}
	if seen["site-3"] != 3 {
		t.Fatalf("site-3 generation = %d, want 3", seen["site-3"])
	}
	if err := s.DeleteTier("maps"); err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Scan("maps", func(string, uint64, []byte) { n++ })
	if n != 0 {
		t.Fatalf("DeleteTier left %d records", n)
	}
}

// corruptFile finds the tier's single record file and rewrites it.
func corruptFile(t *testing.T, s *Store, tier string, mutate func([]byte) []byte) {
	t.Helper()
	dir := filepath.Join(s.Dir(), tier)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mutated := 0
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		mutated++
	}
	if mutated == 0 {
		t.Fatal("no record files to corrupt")
	}
}

// TestStoreCorruptionModes drives every corruption mode ISSUE 8 names
// through Get: each must come back as a typed ErrCorrupt (never a panic,
// never silently wrong data) with the per-tier metric incremented.
func TestStoreCorruptionModes(t *testing.T) {
	modes := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"bit-flip-payload", func(d []byte) []byte {
			d[len(d)-checksumLen-1] ^= 0x40
			return d
		}},
		{"bit-flip-header", func(d []byte) []byte {
			d[17] ^= 0x01 // key length
			return d
		}},
		{"version-skew", func(d []byte) []byte {
			binary.BigEndian.PutUint16(d[4:6], FormatVersion+1)
			return d
		}},
		{"bad-magic", func(d []byte) []byte {
			copy(d, "NOPE")
			return d
		}},
		{"appended-garbage", func(d []byte) []byte { return append(d, "tail"...) }},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			reg := trace.NewRegistry()
			s := openTest(t, Options{Metrics: reg})
			if err := s.Put("pages", "the-key", 1, []byte("the payload bytes")); err != nil {
				t.Fatal(err)
			}
			corruptFile(t, s, "pages", mode.mutate)
			_, _, err := s.Get("pages", "the-key")
			if !IsCorrupt(err) {
				t.Fatalf("corrupt read error = %v, want ErrCorrupt", err)
			}
			snap := reg.Snapshot()
			if got := snap.Counters["store_corrupt_total"]; got != 1 {
				t.Errorf("store_corrupt_total = %d, want 1", got)
			}
			if got := snap.Counters[`store_corrupt_total{tier="pages"}`]; got != 1 {
				t.Errorf(`store_corrupt_total{tier="pages"} = %d, want 1`, got)
			}
			// Scan skips the bad record instead of failing the tier.
			n := 0
			if err := s.Scan("pages", func(string, uint64, []byte) { n++ }); err != nil {
				t.Fatalf("scan over corrupt tier errored: %v", err)
			}
			if n != 0 {
				t.Errorf("scan yielded %d records from a corrupt tier", n)
			}
		})
	}
}

// TestStoreWrongKeyRecord: a record renamed onto another key's slot (or a
// hash collision) is detected by the embedded-key check.
func TestStoreWrongKeyRecord(t *testing.T) {
	reg := trace.NewRegistry()
	s := openTest(t, Options{Metrics: reg})
	if err := s.Put("pages", "key-a", 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Move key-a's file onto key-b's slot.
	if err := os.Rename(s.path("pages", "key-a"), s.path("pages", "key-b")); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Get("pages", "key-b")
	if !IsCorrupt(err) {
		t.Fatalf("wrong-key read = %v, want ErrCorrupt", err)
	}
	if got := reg.Snapshot().Counters[`store_corrupt_total{tier="pages"}`]; got != 1 {
		t.Errorf("corruption not counted: %d", got)
	}
}

// TestStoreTornWrite: a write that persisted only a prefix (crash between
// write and fsync) reads back as typed corruption via the FaultFS double.
func TestStoreTornWrite(t *testing.T) {
	reg := trace.NewRegistry()
	ffs := &FaultFS{TornWriteBytes: headerLen + 3}
	dir := t.TempDir()
	s, err := Open(dir, Options{Metrics: reg, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("health", "sites", 0, []byte(`{"host":"quarantined"}`)); err != nil {
		t.Fatalf("torn write must look like success to the writer: %v", err)
	}
	if ffs.Writes() == 0 {
		t.Fatal("fault double saw no writes")
	}
	_, _, err = s.Get("health", "sites")
	if !IsCorrupt(err) {
		t.Fatalf("read after torn write = %v, want ErrCorrupt", err)
	}
	if got := reg.Snapshot().Counters[`store_corrupt_total{tier="health"}`]; got != 1 {
		t.Errorf("torn write not counted as corruption: %d", got)
	}
}

// TestStoreReadFaults: hard read failures and corruption-on-read (bit rot
// below the filesystem) both degrade to typed errors.
func TestStoreReadFaults(t *testing.T) {
	t.Run("fail-reads", func(t *testing.T) {
		reg := trace.NewRegistry()
		ffs := &FaultFS{}
		s, err := Open(t.TempDir(), Options{Metrics: reg, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put("breaker", "circuits", 0, []byte("{}")); err != nil {
			t.Fatal(err)
		}
		ffs.FailReads = errors.New("disk yanked")
		if _, _, err := s.Get("breaker", "circuits"); !IsCorrupt(err) {
			t.Fatalf("failed read = %v, want ErrCorrupt", err)
		}
	})
	t.Run("corrupt-read", func(t *testing.T) {
		reg := trace.NewRegistry()
		ffs := &FaultFS{CorruptRead: func(d []byte) []byte {
			if len(d) > 0 {
				d[0] ^= 0xFF
			}
			return d
		}}
		s, err := Open(t.TempDir(), Options{Metrics: reg, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put("breaker", "circuits", 0, []byte("{}")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get("breaker", "circuits"); !IsCorrupt(err) {
			t.Fatalf("bit-rotted read = %v, want ErrCorrupt", err)
		}
	})
	t.Run("fail-writes", func(t *testing.T) {
		reg := trace.NewRegistry()
		ffs := &FaultFS{FailWrites: errors.New("disk full")}
		s, err := Open(t.TempDir(), Options{Metrics: reg, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put("pages", "k", 0, []byte("v")); err == nil {
			t.Fatal("write fault not reported")
		}
		if got := reg.Snapshot().Counters[`store_write_failed_total{tier="pages"}`]; got != 1 {
			t.Errorf("write failure not counted: %d", got)
		}
	})
}

// TestStoreConcurrentReplace: readers racing writers on the same key
// always see a complete record — the old one or the new one, never a
// hybrid — thanks to atomic temp-write+rename. Run with -race.
func TestStoreConcurrentReplace(t *testing.T) {
	s := openTest(t, Options{Metrics: trace.NewRegistry()})
	const key = "contended"
	if err := s.Put("pages", key, 0, []byte("gen-0")); err != nil {
		t.Fatal(err)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				payload := []byte(fmt.Sprintf("writer-%d-iteration-%d", w, i))
				if err := s.Put("pages", key, uint64(i), payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				got, _, err := s.Get("pages", key)
				if err != nil {
					t.Errorf("concurrent read: %v", err)
					return
				}
				if len(got) == 0 {
					t.Error("concurrent read returned an empty payload")
					return
				}
			}
		}()
	}
	readers.Wait() // every read raced live replacements
	close(stop)
	writers.Wait()
}
