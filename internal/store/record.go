package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The on-disk record format. Every state file the store writes — a cached
// page, a repaired map, a breaker or health snapshot — is one record:
//
//	magic   "WBS1"                        4 bytes
//	version uint16 (FormatVersion)        2 bytes
//	flags   uint16 (reserved, zero)       2 bytes
//	gen     uint64 (tier generation)      8 bytes
//	keyLen  uint32                        4 bytes
//	payLen  uint32                        4 bytes
//	key     keyLen bytes
//	payload payLen bytes
//	sum     sha256[:16] of all preceding  16 bytes
//
// The fingerprint makes every corruption mode the robustness suite
// injects — truncation, bit flips, torn writes, version skew, a file
// renamed onto the wrong key — a detected decode failure rather than
// silently wrong state. Decoding never panics on arbitrary input
// (FuzzStoreDecode pins this); every failure wraps ErrCorrupt so callers
// fall back to cold state with one errors.Is check.

// FormatVersion identifies the record format. A record carrying any other
// version — an older binary reading a newer state dir, or vice versa — is
// treated exactly like corruption: cold fallback, never a guess.
const FormatVersion = 1

const (
	recordMagic = "WBS1"
	headerLen   = 4 + 2 + 2 + 8 + 4 + 4
	checksumLen = 16
	// maxRecordLen bounds a single decoded field so a corrupted length
	// prefix cannot drive a huge allocation. 64 MiB is far above any
	// state this system persists.
	maxRecordLen = 64 << 20
)

// ErrCorrupt classifies a state file that failed an integrity check:
// truncated, bit-flipped, version-skewed, torn mid-write, or carrying the
// wrong key. Match with errors.Is. A corrupt file is never an operational
// failure — every tier falls back to cold state and counts
// store_corrupt_total.
var ErrCorrupt = errors.New("store: corrupt state file")

// ErrNotExist reports a clean miss: no state file for the key. Match with
// errors.Is.
var ErrNotExist = errors.New("store: no such entry")

// Record is one decoded state file.
type Record struct {
	// Key is the logical key the record was written under. File names are
	// hashes, so the key rides inside the record and is verified on read.
	Key string
	// Generation is the tier generation the record was written under;
	// tiers that invalidate in bulk (the page cache on Clear or drift)
	// ignore records from older generations.
	Generation uint64
	// Payload is the tier-specific body.
	Payload []byte
}

// encodeRecord renders a record in the on-disk format.
func encodeRecord(key string, gen uint64, payload []byte) []byte {
	n := headerLen + len(key) + len(payload) + checksumLen
	buf := make([]byte, 0, n)
	buf = append(buf, recordMagic...)
	buf = binary.BigEndian.AppendUint16(buf, FormatVersion)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint64(buf, gen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:checksumLen]...)
}

// DecodeRecord parses and verifies one state file. Any malformation —
// short file, bad magic, unsupported version, length prefixes that do not
// match the file size, checksum mismatch — returns an error wrapping
// ErrCorrupt. DecodeRecord never panics, whatever the input
// (FuzzStoreDecode).
func DecodeRecord(data []byte) (*Record, error) {
	if len(data) < headerLen+checksumLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d (truncated)",
			ErrCorrupt, len(data), headerLen+checksumLen)
	}
	if string(data[:4]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)",
			ErrCorrupt, v, FormatVersion)
	}
	gen := binary.BigEndian.Uint64(data[8:16])
	keyLen := uint64(binary.BigEndian.Uint32(data[16:20]))
	payLen := uint64(binary.BigEndian.Uint32(data[20:24]))
	if keyLen > maxRecordLen || payLen > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible lengths key=%d payload=%d", ErrCorrupt, keyLen, payLen)
	}
	want := uint64(headerLen) + keyLen + payLen + checksumLen
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: %d bytes, header declares %d", ErrCorrupt, len(data), want)
	}
	body := data[:len(data)-checksumLen]
	sum := sha256.Sum256(body)
	if string(sum[:checksumLen]) != string(data[len(data)-checksumLen:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &Record{
		Key:        string(data[headerLen : headerLen+int(keyLen)]),
		Generation: gen,
		Payload:    append([]byte(nil), data[headerLen+int(keyLen):len(data)-checksumLen]...),
	}, nil
}
