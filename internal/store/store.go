// Package store is the webbase's durable state tier: a dependency-free,
// crash-safe persistence layer under the in-memory stacks. It holds the
// expensive state the system accumulates — warmed pages, repaired
// navigation maps, breaker and health verdicts — across restarts, so a
// redeployed replica does not re-fetch the Web, re-probe known-dead hosts
// or re-learn site redesigns from scratch.
//
// The store is strictly a cache, never a source of truth: every layer
// above is a deterministic function of fetched pages, so a missing,
// truncated, bit-flipped, version-skewed or concurrently-replaced state
// file degrades to cold state (the system re-derives it) and may never
// fail a query or panic. Reads verify a content fingerprint and typed
// errors (ErrCorrupt, ErrNotExist) let every tier fall back with one
// errors.Is check; writes are atomic (temp file + fsync + rename) so a
// crash mid-write leaves the previous record intact. Corrupt files are
// counted per tier in store_corrupt_total{tier=...}.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"webbase/internal/trace"
)

// fileExt is the state-file suffix; foreign files in a tier directory are
// ignored rather than decoded.
const fileExt = ".wbs"

// Options tunes Open.
type Options struct {
	// Metrics, when non-nil, receives store_corrupt_total{tier=...} on
	// every integrity failure and store_write_failed_total{tier=...} on
	// write errors.
	Metrics *trace.Registry
	// FS is the filesystem seam; nil means the real filesystem with
	// atomic writes. Tests inject FaultFS.
	FS FS
}

// Store is one state directory: a set of named tiers, each a directory of
// fingerprinted record files keyed by hashed logical keys. Store is safe
// for concurrent use.
type Store struct {
	dir     string
	fs      FS
	metrics *trace.Registry
}

// Open roots a store at dir, creating it if needed. Open fails only when
// the directory cannot be created — callers treat that as "no store" and
// run cold, because a broken state dir may never take queries down.
func Open(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: opening state dir %s: %w", dir, err)
	}
	return &Store{dir: dir, fs: fs, metrics: opts.Metrics}, nil
}

// Dir returns the state directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// path maps (tier, key) to the record file: keys are hashed so any string
// — full request keys with URLs and form encodings included — is a safe
// file name, and the key itself rides inside the record for verification.
func (s *Store) path(tier, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, tier, hex.EncodeToString(sum[:16])+fileExt)
}

// Put atomically writes one record. Errors are reported (and counted) but
// callers treat them as lost cache fills, never failures.
func (s *Store) Put(tier, key string, gen uint64, payload []byte) error {
	if err := s.fs.MkdirAll(filepath.Join(s.dir, tier)); err != nil {
		s.countWriteFailed(tier)
		return fmt.Errorf("store: put %s/%s: %w", tier, key, err)
	}
	if err := s.fs.WriteFile(s.path(tier, key), encodeRecord(key, gen, payload)); err != nil {
		s.countWriteFailed(tier)
		return fmt.Errorf("store: put %s/%s: %w", tier, key, err)
	}
	return nil
}

// Get reads and verifies one record, returning its payload and the
// generation it was written under. A clean miss is ErrNotExist; any
// integrity failure — including a record whose embedded key does not
// match (a file renamed or hash-collided onto the wrong slot) — is
// ErrCorrupt, already counted against the tier.
func (s *Store) Get(tier, key string) ([]byte, uint64, error) {
	data, err := s.fs.ReadFile(s.path(tier, key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("%w: %s/%s", ErrNotExist, tier, key)
		}
		// An unreadable file is indistinguishable from a corrupt one for
		// fallback purposes.
		s.CountCorrupt(tier)
		return nil, 0, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, tier, key, err)
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		s.CountCorrupt(tier)
		return nil, 0, fmt.Errorf("%s/%s: %w", tier, key, err)
	}
	if rec.Key != key {
		s.CountCorrupt(tier)
		return nil, 0, fmt.Errorf("%w: %s/%s: record carries key %q", ErrCorrupt, tier, key, rec.Key)
	}
	return rec.Payload, rec.Generation, nil
}

// Delete removes one record (no error when absent).
func (s *Store) Delete(tier, key string) error {
	return s.fs.Remove(s.path(tier, key))
}

// DeleteTier removes every record of a tier — the bulk invalidation a
// tier uses when its generation bookkeeping itself is lost.
func (s *Store) DeleteTier(tier string) error {
	dir := filepath.Join(s.dir, tier)
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, name := range names {
		if filepath.Ext(name) != fileExt {
			continue
		}
		if err := s.fs.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Scan visits every valid record of a tier in sorted file order, so boot
// restores are deterministic. Corrupt files are counted and skipped —
// one bad record never hides the rest of the tier.
func (s *Store) Scan(tier string, fn func(key string, gen uint64, payload []byte)) error {
	dir := filepath.Join(s.dir, tier)
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		s.CountCorrupt(tier)
		return fmt.Errorf("%w: scanning %s: %v", ErrCorrupt, tier, err)
	}
	for _, name := range names {
		if filepath.Ext(name) != fileExt {
			continue
		}
		data, err := s.fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue // concurrently replaced or removed; the new record will be seen next boot
			}
			s.CountCorrupt(tier)
			continue
		}
		rec, err := DecodeRecord(data)
		if err != nil {
			s.CountCorrupt(tier)
			continue
		}
		fn(rec.Key, rec.Generation, rec.Payload)
	}
	return nil
}

// CountCorrupt counts one integrity failure against a tier. The store
// counts its own file-level failures; tiers call it for payload-level
// ones (a JSON snapshot or navigation map that fails its own validation)
// so every corruption mode lands in the same metric.
func (s *Store) CountCorrupt(tier string) {
	if s == nil || s.metrics == nil {
		return
	}
	s.metrics.Counter("store_corrupt_total").Add(1)
	s.metrics.Counter(`store_corrupt_total{tier="` + tier + `"}`).Add(1)
}

// CountEvicted counts one eviction against a tier
// (store_evicted_total{tier=...}): a page evicted past the size bound,
// a superseded map version, or a stale snapshot GCed at boot or on
// transition. Registered lazily, so a store that never evicts renders
// the historical /metrics page byte-identically.
func (s *Store) CountEvicted(tier string) {
	if s == nil || s.metrics == nil {
		return
	}
	s.metrics.Counter("store_evicted_total").Add(1)
	s.metrics.Counter(`store_evicted_total{tier="` + tier + `"}`).Add(1)
}

func (s *Store) countWriteFailed(tier string) {
	if s.metrics == nil {
		return
	}
	s.metrics.Counter("store_write_failed_total").Add(1)
	s.metrics.Counter(`store_write_failed_total{tier="` + tier + `"}`).Add(1)
}

// IsCorrupt reports whether err is an integrity failure (errors.Is
// ErrCorrupt).
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// IsNotExist reports a clean miss (errors.Is ErrNotExist).
func IsNotExist(err error) bool { return errors.Is(err, ErrNotExist) }
