package store

import (
	"bytes"
	"testing"
)

// FuzzStoreDecode pins the store's robustness contract at the decoder: no
// input — random, truncated, bit-flipped or adversarial — may panic, and
// anything that is not a valid record must fail with the typed ErrCorrupt
// so every tier can fall back to cold state with one errors.Is check.
func FuzzStoreDecode(f *testing.F) {
	// Seeds: a valid record, boundary sizes, and mutations of each
	// header field.
	valid := encodeRecord("GET http://x.test/page?", 42, []byte("payload"))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("WBS1"))
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:headerLen])
	f.Add(append(append([]byte{}, valid...), 0))
	skew := append([]byte{}, valid...)
	skew[5] = FormatVersion + 1
	f.Add(skew)
	huge := append([]byte{}, valid...)
	huge[16], huge[17], huge[18], huge[19] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)
	f.Add(encodeRecord("", 0, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("decode error is not typed ErrCorrupt: %v", err)
			}
			if rec != nil {
				t.Fatal("record returned alongside an error")
			}
			return
		}
		// A record that decodes must round-trip byte-identically: decode
		// is the inverse of encode on its image, so no mutated file can
		// alias a different logical record.
		if re := encodeRecord(rec.Key, rec.Generation, rec.Payload); !bytes.Equal(re, data) {
			t.Fatalf("decoded record does not re-encode to its input\n in: %x\nout: %x", data, re)
		}
	})
}
