package store

import (
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// FS is the store's filesystem seam. The production implementation (osFS)
// writes atomically — temp file in the same directory, fsync, rename — so
// a crash leaves either the old record or the new one, never a torn
// hybrid. FaultFS implements the same interface with injectable faults;
// every tier's corruption tests drive the store through it.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// ReadFile returns the file's contents.
	ReadFile(path string) ([]byte, error)
	// WriteFile atomically replaces path with data.
	WriteFile(path string, data []byte) error
	// Remove deletes path (no error if it does not exist).
	Remove(path string) error
	// ReadDir lists the file names in dir, sorted; a missing dir is an
	// empty listing.
	ReadDir(dir string) ([]string, error)
}

// osFS is the production filesystem.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile is the crash-safety core: the new record becomes visible only
// through the atomic rename, after its bytes are durably on disk. A
// reader concurrently holding the old file keeps a consistent record —
// replacement is never observed half-done.
func (osFS) WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wbs-tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func (osFS) Remove(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// FaultFS is the fault-injecting filesystem double the robustness suite
// reuses across every tier: it simulates torn writes (a crash between the
// first byte and the fsync), hard read/write failures (a full or yanked
// disk), and corruption on the read path (bit rot below the filesystem).
// Configure the fault fields at quiescent points — they are read without
// locks on the store's hot path, mirroring how web.Redesign is activated
// once at a safe point.
type FaultFS struct {
	// Inner is the wrapped filesystem; nil means the real one.
	Inner FS

	// TornWriteBytes, when > 0, makes every write persist only its first
	// N bytes — and still report success, the way a crash after write(2)
	// but before fsync completes looks at next boot.
	TornWriteBytes int
	// FailWrites, when non-nil, fails every write with this error.
	FailWrites error
	// FailReads, when non-nil, fails every read with this error.
	FailReads error
	// CorruptRead, when non-nil, transforms every successfully read file
	// before the store sees it (bit flips, truncation, version skew).
	CorruptRead func(data []byte) []byte

	// writes counts WriteFile calls (including failed and torn ones).
	writes atomic.Int64
}

// Writes reports how many WriteFile calls the double has seen (including
// failed and torn ones).
func (f *FaultFS) Writes() int64 { return f.writes.Load() }

func (f *FaultFS) inner() FS {
	if f.Inner != nil {
		return f.Inner
	}
	return osFS{}
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner().MkdirAll(dir) }

// ReadFile implements FS with read faults.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if f.FailReads != nil {
		return nil, f.FailReads
	}
	data, err := f.inner().ReadFile(path)
	if err != nil {
		return nil, err
	}
	if f.CorruptRead != nil {
		data = f.CorruptRead(append([]byte(nil), data...))
	}
	return data, nil
}

// WriteFile implements FS with write faults.
func (f *FaultFS) WriteFile(path string, data []byte) error {
	f.writes.Add(1)
	if f.FailWrites != nil {
		return f.FailWrites
	}
	if f.TornWriteBytes > 0 && len(data) > f.TornWriteBytes {
		// The torn prefix lands on disk and the writer believes it
		// succeeded; the next reader must detect the damage.
		if err := f.inner().WriteFile(path, data[:f.TornWriteBytes]); err != nil {
			return err
		}
		return nil
	}
	return f.inner().WriteFile(path, data)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error { return f.inner().Remove(path) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner().ReadDir(dir) }
