package store

import (
	"encoding/json"
	"sync"
	"time"

	"webbase/internal/web"
)

// pagesTier is the tier name the page cache persists under.
const pagesTier = "pages"

// genMetaKey is the reserved record that carries the page tier's current
// generation (in the record's generation header; the payload is empty).
// Entries written under an older generation are ignored and garbage
// collected — the durable analogue of web.Cache dropping in-flight fills
// from before a Clear.
const genMetaKey = "!generation"

// pagePayload is the JSON body of a persisted page: the response plus the
// fetch timestamp, so MaxAge/AllowStale freshness semantics apply across
// restarts exactly as they do in memory.
type pagePayload struct {
	Status    int    `json:"status"`
	URL       string `json:"url"`
	Body      []byte `json:"body"`
	FetchedAt int64  `json:"fetchedAt"` // UnixNano
}

// pageJob is one queued write: a page store, or a flush marker (done
// non-nil, page zero).
type pageJob struct {
	key  string
	gen  uint64
	data []byte
	done chan struct{}
}

// PageTier is the disk-backed second tier behind web.Cache. Stores are
// asynchronous — a single writer goroutine drains a bounded queue, and
// when the queue is full the caller writes synchronously rather than
// dropping the page — so the fetch path never waits on disk in the common
// case but warmth is never silently lost. Loads are synchronous reads of
// one fingerprinted file.
//
// The tier keeps its own generation, persisted in a meta record:
// Invalidate (web.Cache.Clear, drift-triggered clears) bumps it, making
// every existing disk entry unreadable-by-design. If the meta record
// itself is corrupt at open, the whole tier is dropped — with no trusted
// generation, an old entry could otherwise resurrect a page a clear meant
// to discard.
type PageTier struct {
	store *Store

	mu     sync.RWMutex // guards gen and jobs-channel lifecycle (Close vs Save)
	gen    uint64
	jobs   chan pageJob
	closed bool

	wg sync.WaitGroup
}

// NewPageTier opens the page tier over s, restoring the persisted
// generation (or starting fresh — and clearing untrusted entries — when
// it is missing or corrupt).
func NewPageTier(s *Store) *PageTier {
	t := &PageTier{store: s, jobs: make(chan pageJob, 256)}
	_, gen, err := s.Get(pagesTier, genMetaKey)
	switch {
	case err == nil:
		t.gen = gen
	case IsNotExist(err):
		// Fresh tier.
	default:
		// The generation bookkeeping itself is corrupt: without it, entries
		// from a pre-Clear era are indistinguishable from live ones. Drop
		// the tier and start cold. (Get already counted the corruption.)
		s.DeleteTier(pagesTier)
	}
	t.wg.Add(1)
	go t.writer()
	return t
}

func (t *PageTier) writer() {
	defer t.wg.Done()
	for job := range t.jobs {
		if job.done != nil {
			close(job.done)
			continue
		}
		t.store.Put(pagesTier, job.key, job.gen, job.data)
	}
}

// Load implements web.CacheTier: it returns the persisted page for key and
// its original fetch time. Misses, corruption and generation skew all
// come back as a plain miss — the memory tier re-fetches and re-stores.
func (t *PageTier) Load(key string) (*web.Response, time.Time, bool) {
	t.mu.RLock()
	gen := t.gen
	t.mu.RUnlock()
	payload, recGen, err := t.store.Get(pagesTier, key)
	if err != nil {
		if IsCorrupt(err) {
			t.store.Delete(pagesTier, key) // don't re-decode known-bad bytes
		}
		return nil, time.Time{}, false
	}
	if recGen != gen {
		// Written before an Invalidate: the clear's intent outlives the
		// process, so the entry is dead. Collect it.
		t.store.Delete(pagesTier, key)
		return nil, time.Time{}, false
	}
	var p pagePayload
	if err := json.Unmarshal(payload, &p); err != nil {
		t.store.CountCorrupt(pagesTier)
		t.store.Delete(pagesTier, key)
		return nil, time.Time{}, false
	}
	return &web.Response{Status: p.Status, URL: p.URL, Body: p.Body},
		time.Unix(0, p.FetchedAt), true
}

// Store implements web.CacheTier: it persists a freshly fetched page.
// The write is queued for the background writer; when the queue is full
// it happens synchronously so warmth is not lost under burst.
func (t *PageTier) Store(key string, resp *web.Response, fetchedAt time.Time) {
	data, err := json.Marshal(pagePayload{
		Status:    resp.Status,
		URL:       resp.URL,
		Body:      resp.Body,
		FetchedAt: fetchedAt.UnixNano(),
	})
	if err != nil {
		return
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return
	}
	job := pageJob{key: key, gen: t.gen, data: data}
	select {
	case t.jobs <- job:
	default:
		t.store.Put(pagesTier, key, t.gen, data)
	}
}

// Invalidate implements web.CacheTier: called under the memory cache's
// lock by Clear, it bumps the durable generation and persists it
// synchronously, so the invalidation itself survives a crash — entries
// from before the clear stay dead even if the process dies immediately
// after.
func (t *PageTier) Invalidate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	t.store.Put(pagesTier, genMetaKey, t.gen, nil)
}

// Flush blocks until every store queued before the call has been written.
func (t *PageTier) Flush() {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return
	}
	done := make(chan struct{})
	t.jobs <- pageJob{done: done}
	t.mu.RUnlock()
	<-done
}

// Close flushes and stops the background writer. The tier refuses further
// stores (loads keep working) — it is called once, at shutdown.
func (t *PageTier) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.jobs)
	t.mu.Unlock()
	t.wg.Wait()
}
