package store

import (
	"encoding/json"
	"sync"
	"time"

	"webbase/internal/web"
)

// pagesTier is the tier name the page cache persists under.
const pagesTier = "pages"

// genMetaKey is the reserved record that carries the page tier's current
// generation (in the record's generation header; the payload is empty).
// Entries written under an older generation are ignored and garbage
// collected — the durable analogue of web.Cache dropping in-flight fills
// from before a Clear.
const genMetaKey = "!generation"

// pagePayload is the JSON body of a persisted page: the response plus the
// fetch timestamp, so MaxAge/AllowStale freshness semantics apply across
// restarts exactly as they do in memory.
type pagePayload struct {
	Status    int    `json:"status"`
	URL       string `json:"url"`
	Body      []byte `json:"body"`
	FetchedAt int64  `json:"fetchedAt"` // UnixNano
}

// pageJob is one queued write: a page store, or a flush marker (done
// non-nil, page zero).
type pageJob struct {
	key  string
	gen  uint64
	data []byte
	done chan struct{}
}

// PageTier is the disk-backed second tier behind web.Cache. Stores are
// asynchronous — a single writer goroutine drains a bounded queue, and
// when the queue is full the caller writes synchronously rather than
// dropping the page — so the fetch path never waits on disk in the common
// case but warmth is never silently lost. Loads are synchronous reads of
// one fingerprinted file.
//
// The tier keeps its own generation, persisted in a meta record:
// Invalidate (web.Cache.Clear, drift-triggered clears) bumps it, making
// every existing disk entry unreadable-by-design. If the meta record
// itself is corrupt at open, the whole tier is dropped — with no trusted
// generation, an old entry could otherwise resurrect a page a clear meant
// to discard.
//
// With a positive maxBytes the tier is size-bounded: it keeps an
// in-memory index of live entries (payload bytes, last-touch order,
// rebuilt from disk at open so the bound holds across restarts) and
// evicts the least-recently-touched entries whenever the total exceeds
// the bound. Evictions are counted in store_evicted_total{tier="pages"};
// an evicted page is simply a future cache miss, never an error.
type PageTier struct {
	store    *Store
	maxBytes int64

	mu     sync.RWMutex // guards gen and jobs-channel lifecycle (Close vs Save)
	gen    uint64
	jobs   chan pageJob
	closed bool

	// The LRU-ish eviction index (maxBytes > 0 only), under its own lock
	// so eviction bookkeeping never contends with the generation path.
	emu   sync.Mutex
	sizes map[string]int64
	touch map[string]uint64
	seq   uint64
	total int64

	wg sync.WaitGroup
}

// NewPageTier opens the page tier over s, restoring the persisted
// generation (or starting fresh — and clearing untrusted entries — when
// it is missing or corrupt). A positive maxBytes bounds the tier's total
// payload bytes: the live-entry index is rebuilt from disk (initial
// recency = fetch time, so the stalest pages evict first) and trimmed
// immediately, so a bound tightened between restarts is enforced at boot.
func NewPageTier(s *Store, maxBytes int64) *PageTier {
	t := &PageTier{store: s, maxBytes: maxBytes, jobs: make(chan pageJob, 256)}
	_, gen, err := s.Get(pagesTier, genMetaKey)
	switch {
	case err == nil:
		t.gen = gen
	case IsNotExist(err):
		// Fresh tier.
	default:
		// The generation bookkeeping itself is corrupt: without it, entries
		// from a pre-Clear era are indistinguishable from live ones. Drop
		// the tier and start cold. (Get already counted the corruption.)
		s.DeleteTier(pagesTier)
	}
	if t.maxBytes > 0 {
		t.sizes = make(map[string]int64)
		t.touch = make(map[string]uint64)
		t.rebuildIndex()
	}
	t.wg.Add(1)
	go t.writer()
	return t
}

// rebuildIndex scans the tier at open, accounting every live record so
// the size bound survives restarts. Recency is seeded from each page's
// fetch time — with no access history yet, oldest-fetched is the best
// guess at least-recently-useful — then entries are trimmed to the bound.
func (t *PageTier) rebuildIndex() {
	type seed struct {
		key       string
		size      int64
		fetchedAt int64
	}
	var seeds []seed
	t.store.Scan(pagesTier, func(key string, gen uint64, payload []byte) {
		if key == genMetaKey || gen != t.gen {
			return
		}
		var p pagePayload
		fetched := int64(0)
		if err := json.Unmarshal(payload, &p); err == nil {
			fetched = p.FetchedAt
		}
		seeds = append(seeds, seed{key: key, size: int64(len(payload)), fetchedAt: fetched})
	})
	// Touch in fetch order: the most recently fetched page ends up the most
	// recently touched, so boot-time eviction drops the stalest warmth.
	for i := 1; i < len(seeds); i++ {
		for j := i; j > 0 && seeds[j].fetchedAt < seeds[j-1].fetchedAt; j-- {
			seeds[j], seeds[j-1] = seeds[j-1], seeds[j]
		}
	}
	t.emu.Lock()
	defer t.emu.Unlock()
	for _, sd := range seeds {
		t.seq++
		t.sizes[sd.key] = sd.size
		t.touch[sd.key] = t.seq
		t.total += sd.size
	}
	t.evictLocked()
}

// account records one written entry and trims the tier to its bound. A
// no-op without a size bound.
func (t *PageTier) account(key string, size int64) {
	if t.maxBytes <= 0 {
		return
	}
	t.emu.Lock()
	defer t.emu.Unlock()
	if old, ok := t.sizes[key]; ok {
		t.total -= old
	}
	t.seq++
	t.sizes[key] = size
	t.touch[key] = t.seq
	t.total += size
	t.evictLocked()
}

// touchKey refreshes an entry's recency on a successful load.
func (t *PageTier) touchKey(key string) {
	if t.maxBytes <= 0 {
		return
	}
	t.emu.Lock()
	defer t.emu.Unlock()
	if _, ok := t.touch[key]; ok {
		t.seq++
		t.touch[key] = t.seq
	}
}

// evictLocked removes least-recently-touched entries until the tier is
// within its bound. Called with emu held. A single entry larger than the
// whole bound is evicted too — the bound is absolute.
func (t *PageTier) evictLocked() {
	for t.total > t.maxBytes && len(t.sizes) > 0 {
		victim, oldest := "", uint64(0)
		for k, at := range t.touch {
			if victim == "" || at < oldest {
				victim, oldest = k, at
			}
		}
		t.total -= t.sizes[victim]
		delete(t.sizes, victim)
		delete(t.touch, victim)
		t.store.Delete(pagesTier, victim)
		t.store.CountEvicted(pagesTier)
	}
}

// dropIndex forgets every accounted entry (the tier files themselves are
// handled by the caller).
func (t *PageTier) dropIndex() {
	if t.maxBytes <= 0 {
		return
	}
	t.emu.Lock()
	defer t.emu.Unlock()
	t.sizes = make(map[string]int64)
	t.touch = make(map[string]uint64)
	t.total = 0
}

func (t *PageTier) writer() {
	defer t.wg.Done()
	for job := range t.jobs {
		if job.done != nil {
			close(job.done)
			continue
		}
		if t.store.Put(pagesTier, job.key, job.gen, job.data) == nil {
			t.account(job.key, int64(len(job.data)))
		}
	}
}

// Generation reports the tier's durable clear-generation: bumped by every
// Invalidate and persisted, so — unlike the in-memory cache generation —
// it survives restarts. The consistency token a resumable stream carries
// prefers this counter when a state dir is configured, because a resumed
// query on a restarted process must still detect a pre-restart Clear.
func (t *PageTier) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// Load implements web.CacheTier: it returns the persisted page for key and
// its original fetch time. Misses, corruption and generation skew all
// come back as a plain miss — the memory tier re-fetches and re-stores.
func (t *PageTier) Load(key string) (*web.Response, time.Time, bool) {
	t.mu.RLock()
	gen := t.gen
	t.mu.RUnlock()
	payload, recGen, err := t.store.Get(pagesTier, key)
	if err != nil {
		if IsCorrupt(err) {
			t.store.Delete(pagesTier, key) // don't re-decode known-bad bytes
		}
		return nil, time.Time{}, false
	}
	if recGen != gen {
		// Written before an Invalidate: the clear's intent outlives the
		// process, so the entry is dead. Collect it.
		t.store.Delete(pagesTier, key)
		return nil, time.Time{}, false
	}
	var p pagePayload
	if err := json.Unmarshal(payload, &p); err != nil {
		t.store.CountCorrupt(pagesTier)
		t.store.Delete(pagesTier, key)
		return nil, time.Time{}, false
	}
	t.touchKey(key)
	return &web.Response{Status: p.Status, URL: p.URL, Body: p.Body},
		time.Unix(0, p.FetchedAt), true
}

// Store implements web.CacheTier: it persists a freshly fetched page.
// The write is queued for the background writer; when the queue is full
// it happens synchronously so warmth is not lost under burst.
func (t *PageTier) Store(key string, resp *web.Response, fetchedAt time.Time) {
	data, err := json.Marshal(pagePayload{
		Status:    resp.Status,
		URL:       resp.URL,
		Body:      resp.Body,
		FetchedAt: fetchedAt.UnixNano(),
	})
	if err != nil {
		return
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return
	}
	job := pageJob{key: key, gen: t.gen, data: data}
	select {
	case t.jobs <- job:
	default:
		if t.store.Put(pagesTier, job.key, job.gen, job.data) == nil {
			t.account(job.key, int64(len(job.data)))
		}
	}
}

// Invalidate implements web.CacheTier: called under the memory cache's
// lock by Clear, it bumps the durable generation and persists it
// synchronously, so the invalidation itself survives a crash — entries
// from before the clear stay dead even if the process dies immediately
// after. With a size bound, dead entries are deleted eagerly (their bytes
// would otherwise stay accounted against nothing); without one they are
// collected lazily by Load, the historical behavior.
func (t *PageTier) Invalidate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	if t.maxBytes > 0 {
		t.store.DeleteTier(pagesTier)
		t.dropIndex()
	}
	t.store.Put(pagesTier, genMetaKey, t.gen, nil)
}

// Flush blocks until every store queued before the call has been written.
func (t *PageTier) Flush() {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return
	}
	done := make(chan struct{})
	t.jobs <- pageJob{done: done}
	t.mu.RUnlock()
	<-done
}

// Close flushes and stops the background writer. The tier refuses further
// stores (loads keep working) — it is called once, at shutdown.
func (t *PageTier) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.jobs)
	t.mu.Unlock()
	t.wg.Wait()
}
