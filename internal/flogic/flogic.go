// Package flogic implements the F-logic object model underlying the
// navigation calculus (Section 4 of the paper, Figure 3).
//
// F-logic represents complex objects — Web pages, links, forms,
// attribute/value pairs — on a par with flat relations. An object has an
// identity, class memberships (isa), single-valued ("functional", the
// paper's →) attributes and set-valued (the paper's ⇒) attributes. Class
// signatures declare the types of attributes and are checked against
// object states, mirroring the paper's double-shafted signature arrows.
package flogic

import (
	"fmt"
	"sort"
	"strings"
)

// OID is an object identity.
type OID string

// TermKind discriminates attribute values.
type TermKind uint8

// Term kinds: scalar string, scalar integer, or a reference to another
// object.
const (
	TermString TermKind = iota
	TermInt
	TermRef
)

// Term is an attribute value: a string, an integer, or an object
// reference.
type Term struct {
	Kind TermKind
	Str  string
	Int  int64
	Ref  OID
}

// S makes a string term.
func S(s string) Term { return Term{Kind: TermString, Str: s} }

// I makes an integer term.
func I(i int64) Term { return Term{Kind: TermInt, Int: i} }

// R makes an object-reference term.
func R(id OID) Term { return Term{Kind: TermRef, Ref: id} }

// String renders the term.
func (t Term) String() string {
	switch t.Kind {
	case TermString:
		return fmt.Sprintf("%q", t.Str)
	case TermInt:
		return fmt.Sprintf("%d", t.Int)
	default:
		return string(t.Ref)
	}
}

// Equal reports term equality.
func (t Term) Equal(o Term) bool { return t == o }

// Object is one F-logic object.
type Object struct {
	ID      OID
	classes map[string]bool
	funct   map[string]Term   // single-valued attributes (→)
	setval  map[string][]Term // set-valued attributes (⇒)
}

// newObject allocates an empty object.
func newObject(id OID) *Object {
	return &Object{
		ID:      id,
		classes: make(map[string]bool),
		funct:   make(map[string]Term),
		setval:  make(map[string][]Term),
	}
}

// Classes returns the direct classes of the object, sorted.
func (o *Object) Classes() []string {
	out := make([]string, 0, len(o.classes))
	for c := range o.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Get returns the functional attribute's value.
func (o *Object) Get(attr string) (Term, bool) {
	t, ok := o.funct[attr]
	return t, ok
}

// GetAll returns the set-valued attribute's members (nil when absent).
func (o *Object) GetAll(attr string) []Term { return o.setval[attr] }

// FunctAttrs returns the names of the functional attributes, sorted.
func (o *Object) FunctAttrs() []string { return sortedKeys(o.funct) }

// SetAttrs returns the names of the set-valued attributes, sorted.
func (o *Object) SetAttrs() []string { return sortedKeys(o.setval) }

// AttrCount returns the total number of attribute assertions on the
// object: functional attributes count one each, set-valued attributes one
// per member. The map-builder statistics of Section 7 are counted in these
// units.
func (o *Object) AttrCount() int {
	n := len(o.funct)
	for _, ts := range o.setval {
		n += len(ts)
	}
	return n
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AttrSig declares one attribute in a class signature: its name, whether
// it is set-valued (⇒ vs →), and its type — "string", "int", or a class
// name for object-valued attributes.
type AttrSig struct {
	Name      string
	SetValued bool
	Type      string
}

// Signature is the schema of a class, the paper's Figure 3 declarations.
type Signature struct {
	Class string
	Attrs []AttrSig
}

// attr returns the declaration of the named attribute.
func (s *Signature) attr(name string) (AttrSig, bool) {
	for _, a := range s.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrSig{}, false
}

// String renders the signature in the paper's style.
func (s *Signature) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s[", s.Class)
	for i, a := range s.Attrs {
		if i > 0 {
			sb.WriteString("; ")
		}
		arrow := "=>"
		if a.SetValued {
			arrow = "=>>"
		}
		fmt.Fprintf(&sb, "%s %s %s", a.Name, arrow, a.Type)
	}
	sb.WriteString("]")
	return sb.String()
}

// Store is a collection of F-logic objects with class signatures and a
// subclass lattice. A Store is the object half of a navigation-calculus
// database state.
type Store struct {
	objects    map[OID]*Object
	signatures map[string]*Signature
	supers     map[string][]string // class → direct superclasses
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		objects:    make(map[OID]*Object),
		signatures: make(map[string]*Signature),
		supers:     make(map[string][]string),
	}
}

// DeclareClass registers a class signature.
func (st *Store) DeclareClass(sig *Signature) { st.signatures[sig.Class] = sig }

// DeclareSubclass records sub ⊑ super (the paper's page :: web_page style
// declarations, e.g. data_page is a subclass of web_page).
func (st *Store) DeclareSubclass(sub, super string) {
	st.supers[sub] = append(st.supers[sub], super)
}

// Signatures returns all declared signatures sorted by class name.
func (st *Store) Signatures() []*Signature {
	out := make([]*Signature, 0, len(st.signatures))
	for _, s := range st.signatures {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Put creates (or returns the existing) object with the given id.
func (st *Store) Put(id OID) *Object {
	if o, ok := st.objects[id]; ok {
		return o
	}
	o := newObject(id)
	st.objects[id] = o
	return o
}

// Get returns the object with the given id, or nil.
func (st *Store) Get(id OID) *Object { return st.objects[id] }

// Len returns the number of objects in the store.
func (st *Store) Len() int { return len(st.objects) }

// AddClass asserts id : class.
func (st *Store) AddClass(id OID, class string) { st.Put(id).classes[class] = true }

// SetAttr asserts the functional attribute id[attr → val].
func (st *Store) SetAttr(id OID, attr string, val Term) { st.Put(id).funct[attr] = val }

// AddAttr asserts membership in the set-valued attribute id[attr ⇒ val],
// deduplicating.
func (st *Store) AddAttr(id OID, attr string, val Term) {
	o := st.Put(id)
	for _, t := range o.setval[attr] {
		if t.Equal(val) {
			return
		}
	}
	o.setval[attr] = append(o.setval[attr], val)
}

// IsA reports whether the object belongs to the class, directly or through
// the subclass lattice.
func (st *Store) IsA(id OID, class string) bool {
	o := st.objects[id]
	if o == nil {
		return false
	}
	seen := make(map[string]bool)
	var reach func(c string) bool
	reach = func(c string) bool {
		if c == class {
			return true
		}
		if seen[c] {
			return false
		}
		seen[c] = true
		for _, sup := range st.supers[c] {
			if reach(sup) {
				return true
			}
		}
		return false
	}
	for c := range o.classes {
		if reach(c) {
			return true
		}
	}
	return false
}

// Members returns the ids of all objects belonging to the class (including
// through subclassing), sorted.
func (st *Store) Members(class string) []OID {
	var out []OID
	for id := range st.objects {
		if st.IsA(id, class) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns all object ids, sorted.
func (st *Store) Objects() []OID {
	out := make([]OID, 0, len(st.objects))
	for id := range st.objects {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path evaluates the F-logic path expression id.a1.a2...an over functional
// attributes, dereferencing object-valued steps, and returns the final
// term.
func (st *Store) Path(id OID, attrs ...string) (Term, bool) {
	cur := R(id)
	for _, a := range attrs {
		if cur.Kind != TermRef {
			return Term{}, false
		}
		o := st.objects[cur.Ref]
		if o == nil {
			return Term{}, false
		}
		t, ok := o.funct[a]
		if !ok {
			return Term{}, false
		}
		cur = t
	}
	return cur, true
}

// TypeErrors checks every object against the signatures of its classes and
// returns a description of each violation: undeclared attributes, a
// set-valued attribute used functionally (or vice versa), and scalar type
// mismatches. Objects of undeclared classes are not checked — the open
// world of the Web always contains unanticipated structure.
func (st *Store) TypeErrors() []string {
	var errs []string
	for _, id := range st.Objects() {
		o := st.objects[id]
		for c := range o.classes {
			sig := st.signatures[c]
			if sig == nil {
				continue
			}
			for attr, val := range o.funct {
				decl, ok := sig.attr(attr)
				if !ok {
					continue // attribute may belong to another of o's classes
				}
				if decl.SetValued {
					errs = append(errs, fmt.Sprintf("%s: attribute %s of class %s is set-valued but used functionally", id, attr, c))
				} else if msg := typeMatch(decl.Type, val); msg != "" {
					errs = append(errs, fmt.Sprintf("%s.%s: %s", id, attr, msg))
				}
			}
			for attr, vals := range o.setval {
				decl, ok := sig.attr(attr)
				if !ok {
					continue
				}
				if !decl.SetValued {
					errs = append(errs, fmt.Sprintf("%s: attribute %s of class %s is functional but used set-valued", id, attr, c))
					continue
				}
				for _, val := range vals {
					if msg := typeMatch(decl.Type, val); msg != "" {
						errs = append(errs, fmt.Sprintf("%s.%s: %s", id, attr, msg))
					}
				}
			}
		}
	}
	sort.Strings(errs)
	return errs
}

func typeMatch(declared string, val Term) string {
	switch declared {
	case "string":
		if val.Kind != TermString {
			return fmt.Sprintf("expected string, got %s", val)
		}
	case "int":
		if val.Kind != TermInt {
			return fmt.Sprintf("expected int, got %s", val)
		}
	default: // class-typed attribute: value must reference an object
		if val.Kind != TermRef {
			return fmt.Sprintf("expected %s object, got %s", declared, val)
		}
	}
	return ""
}

// Clone deep-copies the store's objects. Signatures and the subclass
// lattice are shared: they are schema, not state.
func (st *Store) Clone() *Store {
	out := &Store{
		objects:    make(map[OID]*Object, len(st.objects)),
		signatures: st.signatures,
		supers:     st.supers,
	}
	for id, o := range st.objects {
		n := newObject(id)
		for c := range o.classes {
			n.classes[c] = true
		}
		for k, v := range o.funct {
			n.funct[k] = v
		}
		for k, vs := range o.setval {
			n.setval[k] = append([]Term(nil), vs...)
		}
		out.objects[id] = n
	}
	return out
}
