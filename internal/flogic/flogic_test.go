package flogic

import (
	"strings"
	"testing"
	"testing/quick"
)

// figure3Store builds a store with the paper's Figure 3 signatures and the
// Newsday form object of Section 4.
func figure3Store() *Store {
	st := NewStore()
	st.DeclareClass(&Signature{Class: "form", Attrs: []AttrSig{
		{Name: "cgi", Type: "string"},
		{Name: "method", Type: "string"},
		{Name: "mandatory", SetValued: true, Type: "string"},
		{Name: "optional", SetValued: true, Type: "string"},
	}})
	st.DeclareClass(&Signature{Class: "action", Attrs: []AttrSig{
		{Name: "source", Type: "page"},
	}})
	st.DeclareClass(&Signature{Class: "submit_form", Attrs: []AttrSig{
		{Name: "form", Type: "form"},
		{Name: "source", Type: "page"},
	}})
	st.DeclareClass(&Signature{Class: "web_page", Attrs: []AttrSig{
		{Name: "address", Type: "string"},
		{Name: "title", Type: "string"},
		{Name: "actions", SetValued: true, Type: "action"},
	}})
	st.DeclareSubclass("submit_form", "action")
	st.DeclareSubclass("follow_link", "action")
	st.DeclareSubclass("data_page", "web_page")

	st.AddClass("form01", "form")
	st.SetAttr("form01", "cgi", S("cgi_bin/nclassy"))
	st.SetAttr("form01", "method", S("post"))
	st.AddAttr("form01", "mandatory", S("make"))
	st.AddAttr("form01", "mandatory", S("model"))
	st.AddAttr("form01", "optional", S("year"))

	st.AddClass("submit01", "submit_form")
	st.SetAttr("submit01", "form", R("form01"))
	st.SetAttr("submit01", "source", R("page01"))

	st.AddClass("page01", "web_page")
	st.SetAttr("page01", "address", S("http://www.newsday.com"))
	st.SetAttr("page01", "title", S("Newsday Classified"))
	st.AddAttr("page01", "actions", R("submit01"))
	return st
}

func TestObjectBasics(t *testing.T) {
	st := figure3Store()
	f := st.Get("form01")
	if f == nil {
		t.Fatal("form01 missing")
	}
	if got, _ := f.Get("cgi"); got.Str != "cgi_bin/nclassy" {
		t.Errorf("cgi = %v", got)
	}
	if got := f.GetAll("mandatory"); len(got) != 2 {
		t.Errorf("mandatory = %v", got)
	}
	if f.AttrCount() != 5 { // cgi, method + 2 mandatory + 1 optional
		t.Errorf("AttrCount = %d, want 5", f.AttrCount())
	}
	if got := f.Classes(); len(got) != 1 || got[0] != "form" {
		t.Errorf("classes = %v", got)
	}
	if got := f.FunctAttrs(); strings.Join(got, ",") != "cgi,method" {
		t.Errorf("funct attrs = %v", got)
	}
	if got := f.SetAttrs(); strings.Join(got, ",") != "mandatory,optional" {
		t.Errorf("set attrs = %v", got)
	}
}

func TestAddAttrDedupes(t *testing.T) {
	st := NewStore()
	st.AddAttr("x", "s", S("a"))
	st.AddAttr("x", "s", S("a"))
	if got := st.Get("x").GetAll("s"); len(got) != 1 {
		t.Errorf("dedup failed: %v", got)
	}
}

func TestIsAWithSubclassing(t *testing.T) {
	st := figure3Store()
	if !st.IsA("submit01", "submit_form") {
		t.Error("direct class failed")
	}
	if !st.IsA("submit01", "action") {
		t.Error("subclass inference failed")
	}
	if st.IsA("submit01", "web_page") {
		t.Error("wrong class accepted")
	}
	if st.IsA("nosuch", "action") {
		t.Error("missing object accepted")
	}
	// Cycles in the lattice must not loop forever.
	st.DeclareSubclass("a", "b")
	st.DeclareSubclass("b", "a")
	st.AddClass("o", "a")
	if !st.IsA("o", "b") || st.IsA("o", "zzz") {
		t.Error("cyclic lattice handled wrong")
	}
}

func TestMembers(t *testing.T) {
	st := figure3Store()
	actions := st.Members("action")
	if len(actions) != 1 || actions[0] != "submit01" {
		t.Errorf("members(action) = %v", actions)
	}
	if got := st.Members("web_page"); len(got) != 1 {
		t.Errorf("members(web_page) = %v", got)
	}
}

func TestPathExpressions(t *testing.T) {
	st := figure3Store()
	// page01.actions is set-valued; path works over functional chains:
	// submit01.form.cgi
	got, ok := st.Path("submit01", "form", "cgi")
	if !ok || got.Str != "cgi_bin/nclassy" {
		t.Errorf("path = %v %v", got, ok)
	}
	if _, ok := st.Path("submit01", "form", "nosuch"); ok {
		t.Error("missing attr should fail")
	}
	if _, ok := st.Path("submit01", "form", "cgi", "deeper"); ok {
		t.Error("path through scalar should fail")
	}
	if _, ok := st.Path("ghost", "x"); ok {
		t.Error("missing object should fail")
	}
	// Zero-length path returns the object reference itself.
	if got, ok := st.Path("form01"); !ok || got.Ref != "form01" {
		t.Errorf("empty path = %v %v", got, ok)
	}
}

func TestTypeCheckClean(t *testing.T) {
	st := figure3Store()
	if errs := st.TypeErrors(); len(errs) != 0 {
		t.Errorf("unexpected type errors: %v", errs)
	}
}

func TestTypeCheckViolations(t *testing.T) {
	st := figure3Store()
	// Wrong scalar type.
	st.SetAttr("form01", "cgi", I(42))
	// Functional attribute used set-valued.
	st.AddAttr("form01", "method", S("get"))
	// Set-valued used functionally.
	st.SetAttr("form01", "mandatory", S("oops"))
	// Object-typed attribute holding a scalar.
	st.SetAttr("submit01", "form", S("not-a-ref"))
	errs := st.TypeErrors()
	if len(errs) != 4 {
		t.Fatalf("got %d errors, want 4: %v", len(errs), errs)
	}
}

func TestSignatureString(t *testing.T) {
	sig := &Signature{Class: "form", Attrs: []AttrSig{
		{Name: "cgi", Type: "string"},
		{Name: "mandatory", SetValued: true, Type: "string"},
	}}
	got := sig.String()
	if !strings.Contains(got, "form[") || !strings.Contains(got, "cgi => string") ||
		!strings.Contains(got, "mandatory =>> string") {
		t.Errorf("signature rendering: %q", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	st := figure3Store()
	cp := st.Clone()
	cp.SetAttr("form01", "cgi", S("changed"))
	cp.AddAttr("form01", "mandatory", S("extra"))
	cp.AddClass("newobj", "form")

	if got, _ := st.Get("form01").Get("cgi"); got.Str != "cgi_bin/nclassy" {
		t.Error("clone mutation leaked into original (funct)")
	}
	if len(st.Get("form01").GetAll("mandatory")) != 2 {
		t.Error("clone mutation leaked into original (setval)")
	}
	if st.Get("newobj") != nil {
		t.Error("clone mutation leaked into original (objects)")
	}
	// Signatures are intentionally shared.
	if len(cp.Signatures()) != len(st.Signatures()) {
		t.Error("signatures should be shared")
	}
}

func TestTermString(t *testing.T) {
	if S("x").String() != `"x"` || I(3).String() != "3" || R("o").String() != "o" {
		t.Error("term rendering wrong")
	}
}

// Property: Clone always yields a store with identical object ids and
// attribute counts, and mutating the clone never changes the original's
// total attribute count.
func TestClonePreservesShape(t *testing.T) {
	prop := func(ids []string, attrs []string) bool {
		st := NewStore()
		for i, id := range ids {
			if id == "" {
				continue
			}
			st.AddClass(OID(id), "c")
			if len(attrs) > 0 {
				a := attrs[i%len(attrs)]
				if a == "" {
					a = "a"
				}
				st.SetAttr(OID(id), a, I(int64(i)))
				st.AddAttr(OID(id), a+"_s", S(id))
			}
		}
		before := totalAttrs(st)
		cp := st.Clone()
		if totalAttrs(cp) != before || cp.Len() != st.Len() {
			return false
		}
		for _, id := range cp.Objects() {
			cp.SetAttr(id, "mut", S("x"))
		}
		return totalAttrs(st) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func totalAttrs(st *Store) int {
	n := 0
	for _, id := range st.Objects() {
		n += st.Get(id).AttrCount()
	}
	return n
}
