package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/trace"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// manualClock is a settable time source for cache-expiry tests; unlike
// fakeClock it only moves when told to, so "two minutes later" is an
// explicit test step.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(1999, 6, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// switchableFetcher forwards until down is set, then refuses every host.
type switchableFetcher struct {
	inner web.Fetcher
	down  atomic.Bool
}

func (s *switchableFetcher) Fetch(req *web.Request) (*web.Response, error) {
	if s.down.Load() {
		return nil, fmt.Errorf("host %s: connection refused", web.HostOf(req.URL))
	}
	return s.inner.Fetch(req)
}

// hostCountFetcher counts the requests that reach one host.
type hostCountFetcher struct {
	inner web.Fetcher
	host  string
	calls atomic.Int64
}

func (h *hostCountFetcher) Fetch(req *web.Request) (*web.Response, error) {
	if web.HostOf(req.URL) == h.host {
		h.calls.Add(1)
	}
	return h.inner.Fetch(req)
}

// relationLines splits a rendered relation into its tuple lines for
// subset checks.
func relationLines(s string) map[string]bool {
	m := make(map[string]bool)
	for _, line := range strings.Split(s, "\n") {
		if line != "" {
			m[line] = true
		}
	}
	return m
}

// TestQueryDegradesOneSiteDown is the acceptance test for graceful
// degradation: with one site terminally down, Query returns exactly the
// surviving objects' tuples plus a populated Degradation report, and both
// are byte-identical at Workers=1 and Workers=8.
func TestQueryDegradesOneSiteDown(t *testing.T) {
	healthyWB, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	healthy, _, err := healthyWB.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degradation != nil {
		t.Fatalf("healthy query degraded: %+v", healthy.Degradation)
	}

	run := func(workers int) (*ur.Result, *QueryStats) {
		wb, err := New(Config{
			Fetcher: &hostDownFetcher{inner: sites.BuildWorld().Server, down: sites.NewsdayHost},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, qs, err := wb.QueryString(wideCarQuery)
		if err != nil {
			t.Fatalf("workers=%d: degraded query failed outright: %v", workers, err)
		}
		return res, qs
	}
	seq, seqStats := run(1)
	par, parStats := run(8)

	// The partial answer and the report are schedule-independent.
	if seq.Relation.String() != par.Relation.String() {
		t.Errorf("degraded answer differs across worker counts\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			seq.Relation, par.Relation)
	}
	if seq.Degradation.String() != par.Degradation.String() {
		t.Errorf("degradation report differs across worker counts\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
			seq.Degradation, par.Degradation)
	}
	if fmt.Sprint(seq.Skipped) != fmt.Sprint(par.Skipped) {
		t.Errorf("skipped objects differ: %v vs %v", seq.Skipped, par.Skipped)
	}

	// The report names the dead host and the object it took down.
	if seq.Degradation == nil || len(seq.Degradation.Unavailable) == 0 {
		t.Fatalf("degradation report empty: %+v", seq.Degradation)
	}
	f := seq.Degradation.Unavailable[0]
	if f.Host != sites.NewsdayHost {
		t.Errorf("unavailable host = %q, want %q", f.Host, sites.NewsdayHost)
	}
	if !strings.Contains(strings.Join(f.Object, ","), "Classifieds") {
		t.Errorf("unavailable object %v does not name Classifieds", f.Object)
	}
	if seqStats.DegradedObjects != len(seq.Degradation.Unavailable) ||
		parStats.DegradedObjects != len(par.Degradation.Unavailable) {
		t.Errorf("qs.DegradedObjects = %d/%d, report has %d",
			seqStats.DegradedObjects, parStats.DegradedObjects, len(seq.Degradation.Unavailable))
	}

	// Exactly the surviving objects' tuples: a subset of the healthy
	// answer, strictly smaller (newsday contributes jaguar ads).
	healthyLines := relationLines(healthy.Relation.String())
	for line := range relationLines(seq.Relation.String()) {
		if !healthyLines[line] {
			t.Errorf("degraded answer invented tuple %q", line)
		}
	}
	if seq.Relation.Len() >= healthy.Relation.Len() {
		t.Errorf("degraded answer has %d tuples, healthy %d — nothing was lost?",
			seq.Relation.Len(), healthy.Relation.Len())
	}
}

// TestQueryStrictFailsFast: the same outage under Config.Strict aborts
// the whole query with the taxonomized per-site error.
func TestQueryStrictFailsFast(t *testing.T) {
	wb, err := New(Config{
		Fetcher: &hostDownFetcher{inner: sites.BuildWorld().Server, down: sites.NewsdayHost},
		Workers: 4,
		Strict:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = wb.QueryString(wideCarQuery)
	if err == nil {
		t.Fatal("strict query succeeded over a dead site")
	}
	if !web.IsOutage(err) {
		t.Errorf("strict failure not classified as outage: %v", err)
	}
	if web.FailingHost(err) != sites.NewsdayHost {
		t.Errorf("strict failure host = %q, want %q", web.FailingHost(err), sites.NewsdayHost)
	}
}

// TestQueryStaleOnError: after the whole web goes dark, a webbase with
// stale-on-error answers the same query from expired cache entries, and
// the staleness is visible everywhere it should be — QueryStats, the
// Degradation report, trace labels, the metrics registry, and the
// EXPLAIN ANALYZE footer.
func TestQueryStaleOnError(t *testing.T) {
	clk := newManualClock()
	sw := &switchableFetcher{inner: sites.BuildWorld().Server}
	wb, err := New(Config{
		Fetcher:     sw,
		Workers:     4,
		Clock:       clk.Now,
		CacheMaxAge: time.Minute,
		AllowStale:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}

	healthy, hqs, err := wb.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hqs.StaleServed != 0 || healthy.Degradation != nil {
		t.Fatalf("healthy run: stale=%d degradation=%+v", hqs.StaleServed, healthy.Degradation)
	}

	// Every cache entry expires, then the web goes down entirely.
	clk.Advance(2 * time.Minute)
	sw.down.Store(true)

	res, qs, tr, err := wb.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatalf("stale-on-error did not rescue the query: %v", err)
	}
	if res.Relation.String() != healthy.Relation.String() {
		t.Errorf("stale answer differs from the healthy answer\n--- healthy ---\n%s\n--- stale ---\n%s",
			healthy.Relation, res.Relation)
	}
	if qs.StaleServed == 0 {
		t.Error("qs.StaleServed = 0 after serving from a dead web")
	}
	if res.Degradation == nil || res.Degradation.StaleServed != qs.StaleServed {
		t.Errorf("degradation report stale count: %+v, qs says %d", res.Degradation, qs.StaleServed)
	}
	var staleSpans int64
	tr.Root.Walk(func(sp *trace.Span) {
		if sp.Kind() == trace.KindFetch && sp.LabelValue("outcome") == "stale" {
			staleSpans++
		}
	})
	if staleSpans != qs.StaleServed {
		t.Errorf("outcome=stale spans = %d, qs.StaleServed = %d", staleSpans, qs.StaleServed)
	}
	if got := wb.Metrics().Snapshot().Counters["stale_served_total"]; got != qs.StaleServed {
		t.Errorf("stale_served_total = %d, want %d", got, qs.StaleServed)
	}

	// The EXPLAIN ANALYZE footer reports the degraded, stale-served run.
	clk.Advance(2 * time.Minute)
	report, err := wb.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "stale-served=") || !strings.Contains(report, "degraded:") {
		t.Errorf("EXPLAIN ANALYZE footer misses the degradation report:\n%s", report)
	}
}

// TestQueryBreakerOpensAndRejects: with the opt-in breaker configured, a
// dead site's circuit opens during the first query; the second query is
// degraded the same way but never touches the dead host again.
func TestQueryBreakerOpensAndRejects(t *testing.T) {
	clk := newManualClock()
	counter := &hostCountFetcher{
		inner: &hostDownFetcher{inner: sites.BuildWorld().Server, down: sites.NewsdayHost},
		host:  sites.NewsdayHost,
	}
	wb, err := New(Config{
		Fetcher: counter,
		Workers: 4,
		Clock:   clk.Now,
		Breaker: &web.BreakerConfig{Window: 1, MinSamples: 1, FailureRatio: 1.0, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}

	first, _, err := wb.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Degradation == nil {
		t.Fatal("first query over the dead site not degraded")
	}
	if st := wb.Breaker().State(sites.NewsdayHost); st != web.BreakerOpen {
		t.Fatalf("breaker state after first query = %v, want open", st)
	}
	touched := counter.calls.Load()
	if touched == 0 {
		t.Fatal("dead host never probed at all")
	}

	second, qs, err := wb.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if counter.calls.Load() != touched {
		t.Errorf("open circuit let %d more fetches reach the dead host",
			counter.calls.Load()-touched)
	}
	if qs.BreakerRejects == 0 {
		t.Error("qs.BreakerRejects = 0 with an open circuit in the path")
	}
	if second.Relation.String() != first.Relation.String() {
		t.Errorf("breaker-rejected query answered differently\n--- first ---\n%s\n--- second ---\n%s",
			first.Relation, second.Relation)
	}
	if got := wb.Metrics().Snapshot().Counters["breaker_rejects_total"]; got != qs.BreakerRejects {
		t.Errorf("breaker_rejects_total = %d, want %d", got, qs.BreakerRejects)
	}
}
