// Package core assembles the paper's three-layer webbase (Figure 1): the
// virtual physical schema (navigation independence), the logical layer
// (site independence) and the external schema layer (the structured
// universal relation), all executing against a Web fetcher.
//
// This is the system a user of the library instantiates: New builds the
// standard used-car webbase over any fetcher (the in-process simulated
// Web, an HTTP adapter, ...); Query answers ad hoc universal-relation
// queries end to end — UR planning → logical views → binding-aware
// dependent joins → navigation-calculus execution → pages.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"webbase/internal/algebra"
	"webbase/internal/health"
	"webbase/internal/logical"
	"webbase/internal/mapbuilder"
	"webbase/internal/navmap"
	"webbase/internal/prune"
	"webbase/internal/relation"
	"webbase/internal/store"
	"webbase/internal/trace"
	"webbase/internal/ur"
	"webbase/internal/vps"
	"webbase/internal/web"
)

// DefaultHostLimit is the per-host concurrency cap applied when
// Config.HostLimit is zero: wide parallel evaluation, polite sites.
const DefaultHostLimit = 4

// Config controls webbase assembly.
type Config struct {
	// Fetcher retrieves raw pages. Required.
	Fetcher web.Fetcher
	// Latency, when non-zero, wraps the fetcher with the simulated
	// network latency model (see web.LatencyModel.Sleep for whether it
	// actually sleeps or only accounts).
	Latency web.LatencyModel
	// DisableCache turns off the page cache. The default (caching on)
	// follows Section 7's observation that caching is needed for
	// acceptable response times.
	DisableCache bool
	// Workers bounds parallel query evaluation: union branches,
	// dependent-join handle invocations and maximal objects evaluate on
	// up to Workers goroutines (and PopulateAll sweeps up to Workers
	// sites at once). 0 means GOMAXPROCS; 1 forces strictly sequential
	// evaluation, byte-identical to the historical evaluator.
	Workers int
	// Retries re-attempts failed page fetches (transport errors only;
	// webbase navigation is read-only, so retrying is safe). 0 disables.
	Retries int
	// HostLimit caps concurrent fetches per site — the politeness bound
	// that keeps Workers-wide parallelism from hammering one host. 0
	// applies DefaultHostLimit; negative disables the cap.
	HostLimit int
	// Clock supplies timestamps for trace spans and query timing. nil
	// means time.Now; tests inject a fake clock to make every rendered
	// timing reproducible.
	Clock func() time.Time
	// Backoff spaces re-issued retry attempts exponentially with
	// deterministic per-URL jitter. The zero value retries immediately
	// (the historical behavior).
	Backoff web.Backoff
	// RetryBudget caps the total re-issued attempts any single query may
	// spend across all of its fetches. 0 = unlimited.
	RetryBudget int64
	// Breaker, when non-nil, installs the per-host circuit breaker with
	// this configuration (its Clock defaults to Config.Clock). nil
	// disables the breaker. Note that breaker verdicts depend on fetch
	// completion order, so under partial failure a breaker-enabled
	// webbase trades the byte-identical-across-workers guarantee for
	// fast-fail; with the breaker off, degraded answers stay
	// schedule-independent.
	Breaker *web.BreakerConfig
	// CacheMaxAge bounds how long a cached page satisfies a fetch
	// outright. 0 = entries never expire (the historical behavior).
	CacheMaxAge time.Duration
	// AllowStale serves expired cache entries when a site cannot be
	// reached (stale-on-error), labeled outcome=stale in traces.
	AllowStale bool
	// Strict restores whole-query fail-fast: a site outage aborts the
	// query with the taxonomized per-site error instead of degrading to
	// the surviving maximal objects.
	Strict bool
	// MaxInFlight caps concurrently executing queries (admission
	// control). Excess queries wait in a bounded FIFO queue of QueueDepth
	// and are shed with ErrShedded beyond that. 0 disables the gate.
	MaxInFlight int
	// QueueDepth bounds the admission wait queue behind MaxInFlight.
	// 0 means no queue: with the gate full, queries shed immediately.
	QueueDepth int
	// Deadline is the per-maximal-object time budget: once an object has
	// run this long, no new fetch or dependent-join invocation starts on
	// its behalf and the object degrades out of the answer exactly like
	// an unreachable site (Result.Degradation names the budget). 0
	// disables budgets. Like the breaker, budgets trade byte-identical
	// answers for bounded latency when the clock (not the simulated web)
	// decides what completes.
	Deadline time.Duration
	// HedgeAfter issues a second attempt for any fetch still unanswered
	// after this delay, taking the first success (tail-latency hedging;
	// sits below the singleflight so only network attempts duplicate,
	// never logical work). 0 disables hedging.
	HedgeAfter time.Duration
	// HostQueue bounds each per-host bulkhead's wait queue: fetches
	// beyond HostLimit executing + HostQueue waiting are shed with an
	// outage-classified error and the owning object degrades. 0 keeps
	// the historical unbounded queue.
	HostQueue int
	// HedgeBudget caps the total hedged (duplicate) attempts any single
	// query may spend across all of its fetches; beyond it, slow fetches
	// wait for their primary attempt instead of doubling load. 0 =
	// unlimited (every eligible fetch may hedge).
	HedgeBudget int64
	// QueryClass is the default admission class of this webbase's
	// queries; WithQueryClass overrides it per query. Under overload the
	// gate sheds ClassBatch before ClassInteractive.
	QueryClass QueryClass
	// DriftThreshold is how many drift-degraded queries confirm a site
	// redesign and quarantine the site (self-healing; active only when
	// the Domain supplies SampleInputs). <= 0 means 2 — one bad page
	// never triggers a remap.
	DriftThreshold int
	// MaxRepairAttempts bounds background remap attempts per quarantined
	// site; a site that cannot be repaired stays quarantined instead of
	// remap-looping. <= 0 means 3.
	MaxRepairAttempts int
	// RepairBackoff spaces repair attempts exponentially. <= 0 means
	// 100ms.
	RepairBackoff time.Duration
	// StateDir, when non-empty, roots the durable state tier: warmed
	// pages, repaired navigation maps and breaker/health verdicts are
	// persisted there (crash-safely, fingerprinted) and restored at the
	// next boot. The store sits strictly below the in-memory stacks as a
	// second cache tier — never a source of truth — so answers are
	// byte-identical with it on or off, and a missing or corrupt state
	// dir degrades to a cold start (counted in store_corrupt_total)
	// rather than failing assembly or any query. Empty disables
	// persistence (the historical behavior).
	StateDir string
	// StateMaxBytes bounds the durable page tier's total payload bytes
	// (Config.StateDir): beyond it the least-recently-touched persisted
	// pages are evicted, counted in store_evicted_total{tier="pages"}.
	// The bound is rebuilt from disk at boot, so it holds across restarts
	// (a tightened bound trims the tier immediately). 0 keeps the tier
	// unbounded (the historical behavior). An evicted page is a future
	// cache miss, never an error — the tier stays strictly a cache.
	StateMaxBytes int64
	// RecoveryBackoff, when > 0, gives repair-exhausted quarantined sites
	// a slow background re-probe with doubling backoff, so a permanently-
	// quarantined-then-fixed site eventually heals without a restart. 0
	// keeps exhaustion terminal (the historical behavior).
	RecoveryBackoff time.Duration
	// Prune enables runtime access-relevance pruning (Benedikt, Gottlob &
	// Senellart): handle invocations whose bound inputs already violate
	// the query's WHERE clause are skipped before any page is fetched,
	// dependent-join feeds whose upstream bindings are doomed are never
	// invoked, and — for LIMIT queries where truncation is
	// order-oblivious — maximal objects stop launching once the limit is
	// satisfied. The answer is always byte-identical to the unpruned one;
	// only the fetch count changes. Off by default.
	Prune bool
}

// Webbase is an assembled three-layer webbase.
type Webbase struct {
	Registry *vps.Registry    // the virtual physical schema
	Logical  *logical.Catalog // the logical layer
	UR       *ur.Schema       // the external schema layer

	fetcher     web.Fetcher
	stats       *web.Stats
	cache       *web.Cache
	breaker     *web.Breaker
	workers     int
	clock       func() time.Time
	metrics     *trace.Registry
	retryBudget int64
	hedgeBudget int64
	strict      bool
	prune       bool
	admission   *admission
	deadline    time.Duration
	class       QueryClass

	// Self-healing: health tracks per-site drift state and drives the
	// background repair worker; repairFetcher is the middleware stack
	// below the cache (a repair must see the live site, never a cached
	// pre-redesign page); sampleInputs feed the repair walk through the
	// site's forms.
	health        *health.Tracker
	repairFetcher web.Fetcher
	sampleInputs  map[string]string

	// Durable state tier (nil without Config.StateDir): the store holds
	// the state files, pageTier is the disk tier behind the page cache.
	store    *store.Store
	pageTier *store.PageTier
}

// Domain describes how to assemble the three layers of one application
// domain (the paper: "webbases will be designed for application domains —
// such as cars, jobs, houses — by the experts in those domains"). The
// used-car domain is built in; other domains (e.g. internal/apartments)
// provide their own Domain.
type Domain struct {
	// Registry builds the domain's virtual physical schema.
	Registry func() (*vps.Registry, error)
	// Logical builds the domain's view catalog over the VPS.
	Logical func(reg *vps.Registry, f web.Fetcher) (*logical.Catalog, error)
	// UR builds the domain's structured universal relation.
	UR func() (*ur.Schema, error)
	// SampleInputs are representative query inputs the self-healing
	// repair worker uses to walk a drifted site's forms and verify a
	// repaired map end to end. nil disables self-healing for the domain.
	SampleInputs map[string]string
}

// UsedCarsDomain is the paper's running domain.
var UsedCarsDomain = Domain{
	Registry: vps.StandardRegistry,
	Logical:  logical.StandardCatalog,
	UR:       ur.UsedCarUR,
	// Inputs every standard site's forms accept, so the repair worker can
	// walk any of them; the make/model pair is one the simulated sites
	// list, letting a repaired map be verified end to end.
	SampleInputs: map[string]string{
		"Make": "ford", "Model": "escort", "Condition": "good",
		"Year": "1994", "ZipCode": "11201", "Duration": "36",
	},
}

// New assembles the standard used-car webbase over the configured fetcher.
func New(cfg Config) (*Webbase, error) {
	return NewDomain(cfg, UsedCarsDomain)
}

// NewDomain assembles a webbase for an arbitrary application domain.
func NewDomain(cfg Config, d Domain) (*Webbase, error) {
	if cfg.Fetcher == nil {
		return nil, fmt.Errorf("core: Config.Fetcher is required")
	}
	wb := &Webbase{stats: &web.Stats{}, workers: cfg.Workers,
		clock: cfg.Clock, metrics: trace.NewRegistry(),
		retryBudget: cfg.RetryBudget, hedgeBudget: cfg.HedgeBudget,
		strict: cfg.Strict, prune: cfg.Prune, class: cfg.QueryClass,
		sampleInputs: d.SampleInputs}
	if wb.workers <= 0 {
		wb.workers = runtime.GOMAXPROCS(0)
	}
	// Durable state tier: opened first so the stacks below can plug into
	// it. An unopenable state dir is a cold start with a metric, never an
	// assembly failure — the store is a cache, and a broken cache may not
	// take the system down.
	if cfg.StateDir != "" {
		st, err := store.Open(cfg.StateDir, store.Options{Metrics: wb.metrics})
		if err != nil {
			wb.metrics.Counter("store_corrupt_total").Add(1)
			wb.metrics.Counter(`store_corrupt_total{tier="open"}`).Add(1)
		} else {
			wb.store = st
		}
	}
	hostLimit := cfg.HostLimit
	if hostLimit == 0 {
		hostLimit = DefaultHostLimit
	}

	// The middleware stack, outermost first as a fetch traverses it:
	//
	//	deadline budget → cache → singleflight → outage memo → breaker →
	//	hedge → bulkhead → latency → counting → retry → raw
	//
	// The deadline budget is outermost: a shed is this object's verdict
	// about its own remaining time and must never leak into the shared
	// cache/singleflight/memo layers. Cache next so hits bypass
	// everything; singleflight so concurrent identical misses collapse to
	// one fetch before anyone queues for a host slot; the per-query
	// outage memo sits directly below singleflight so each request key's
	// terminal verdict is decided exactly once and replayed
	// schedule-independently; the breaker (when enabled) rejects before a
	// doomed fetch can queue for a host slot, and it sits above the hedge
	// so it records one verdict per logical fetch rather than one per
	// attempt; the hedge duplicates only the network attempt (everything
	// above it sees a single fetch); the bulkhead wraps the
	// latency/counting pair so a
	// fetch holds its host slot for the whole (simulated) network
	// exchange; retry hugs the raw fetcher so each attempt is an
	// independent transport try — and, being the innermost failure
	// handler, it is also where terminal failures get classified as
	// outages and attributed to their host.
	raw := web.WithRetryPolicy(cfg.Fetcher,
		web.RetryPolicy{Retries: cfg.Retries, Backoff: cfg.Backoff}, wb.stats)
	f := web.Counting(raw, wb.stats)
	if cfg.Latency != (web.LatencyModel{}) {
		f = web.WithLatency(f, cfg.Latency, wb.stats)
	}
	f = web.WithBulkhead(f, hostLimit, cfg.HostQueue, wb.stats)
	// The repair worker fetches through the stack up to here — retry,
	// latency accounting and the politeness bulkhead apply, but never the
	// cache (a repair must see the live redesigned site, not a cached
	// pre-redesign page), the breaker, hedging or per-query state.
	wb.repairFetcher = f
	if cfg.HedgeAfter > 0 {
		f = web.WithHedge(f, cfg.HedgeAfter, wb.stats)
	}
	if cfg.Breaker != nil {
		bc := *cfg.Breaker
		if bc.Clock == nil {
			bc.Clock = cfg.Clock
		}
		if wb.store != nil {
			bc.OnChange = func(string, web.BreakerState) { wb.persistBreaker() }
		}
		wb.breaker = web.NewBreaker(f, bc, wb.stats)
		wb.restoreBreaker()
		f = wb.breaker
	}
	f = web.WithOutageMemo(f)
	f = web.WithSingleflight(f, wb.stats)
	if !cfg.DisableCache {
		wb.cache = web.NewCache()
		wb.cache.MaxAge = cfg.CacheMaxAge
		wb.cache.AllowStale = cfg.AllowStale
		wb.cache.Clock = cfg.Clock
		if wb.store != nil {
			wb.pageTier = store.NewPageTier(wb.store, cfg.StateMaxBytes)
			wb.cache.Tier = wb.pageTier
		}
		f = web.WithCache(f, wb.cache)
	}
	if cfg.Deadline > 0 {
		f = web.WithDeadlineBudget(f, wb.stats)
	}
	wb.fetcher = f
	wb.deadline = cfg.Deadline
	wb.admission = newAdmission(cfg.MaxInFlight, cfg.QueueDepth, wb.metrics, cfg.Clock)

	reg, err := d.Registry()
	if err != nil {
		return nil, err
	}
	wb.Registry = reg
	// A healed fleet survives restarts: persisted repaired maps are
	// installed as overrides before any query runs, at the version they
	// were healed at — no re-running mapbuilder.Repair at boot.
	wb.restoreMaps()

	cat, err := d.Logical(reg, f)
	if err != nil {
		return nil, err
	}
	wb.Logical = cat

	schema, err := d.UR()
	if err != nil {
		return nil, err
	}
	wb.UR = schema

	// Self-healing: active only when the domain supplies the sample
	// inputs the repair walk needs to exercise site forms.
	if d.SampleInputs != nil {
		hcfg := health.Config{
			Threshold:       cfg.DriftThreshold,
			MaxAttempts:     cfg.MaxRepairAttempts,
			Backoff:         cfg.RepairBackoff,
			Repair:          wb.repairHost,
			Metrics:         wb.metrics,
			RecoveryBackoff: cfg.RecoveryBackoff,
		}
		if wb.store != nil {
			hcfg.OnChange = func() { wb.persistHealth() }
		}
		wb.health = health.New(hcfg)
		// Restored quarantines resume where they left off: a restarted
		// process does not re-probe a known-dead host or reset the repair
		// attempt budget.
		wb.restoreHealth()
	}
	return wb, nil
}

// SiteHealth exposes the self-healing tracker (nil when the domain has no
// SampleInputs). Tracker methods are nil-safe, so callers may chain
// unconditionally: wb.SiteHealth().Wait() is the quiescent point after
// which every launched background repair has finished.
func (wb *Webbase) SiteHealth() *health.Tracker { return wb.health }

// repairHost is the background remap: for every relation whose navigation
// map starts at the quarantined host, re-check the map against the live
// site, re-anchor drifted edges, verify the repaired map answers end to
// end, and hot-swap it into the registry. Any failure leaves the registry
// untouched and reports the attempt failed (the health tracker bounds how
// often this retries).
func (wb *Webbase) repairHost(host string) error {
	repaired := 0
	for _, ri := range wb.Registry.Relations() {
		m := wb.Registry.CurrentMap(ri.Name)
		if m == nil || m.StartURLVar != "" {
			// No recorded map, or a map entered at a query-supplied URL:
			// nothing to walk from.
			continue
		}
		if web.HostOf(m.StartURL) != host {
			continue
		}
		b := &mapbuilder.Builder{Fetcher: wb.repairFetcher}
		drifts, err := b.CheckMap(m, wb.sampleInputs)
		if err != nil {
			return fmt.Errorf("core: repairing %s: %w", host, err)
		}
		next := m
		if len(drifts) > 0 {
			if next, err = b.Repair(m, wb.sampleInputs); err != nil {
				return fmt.Errorf("core: repairing %s: %w", host, err)
			}
		}
		// Verify end to end before swapping: CheckMap walks navigation but
		// cannot see extraction drift (a renamed table header yields an
		// empty relation, not a navigation failure), so execute the map
		// with the sample inputs and require a non-empty answer.
		expr, err := navmap.Translate(next)
		if err != nil {
			return fmt.Errorf("core: repairing %s: %w", host, err)
		}
		rel, _, err := expr.Execute(wb.repairFetcher, wb.sampleInputs)
		if err != nil {
			return fmt.Errorf("core: repairing %s: verifying %s: %w", host, ri.Name, err)
		}
		if rel.Len() == 0 {
			return fmt.Errorf("core: repairing %s: verifying %s: repaired map returns no tuples for the sample inputs", host, ri.Name)
		}
		if len(drifts) > 0 {
			version, err := wb.Registry.SwapMap(ri.Name, next)
			if err != nil {
				return fmt.Errorf("core: repairing %s: %w", host, err)
			}
			wb.persistMap(ri.Name, version, next)
			repaired++
		}
	}
	// Cached pages of the old design would keep answering queries with the
	// pre-redesign layout; drop them so the swapped-in map sees live pages.
	if repaired > 0 && wb.cache != nil {
		wb.cache.Clear()
	}
	return nil
}

// Stats exposes the cumulative fetch statistics.
func (wb *Webbase) Stats() *web.Stats { return wb.stats }

// Cache exposes the page cache (nil when disabled).
func (wb *Webbase) Cache() *web.Cache { return wb.cache }

// Fetcher returns the fully wrapped fetcher the webbase navigates with.
func (wb *Webbase) Fetcher() web.Fetcher { return wb.fetcher }

// Breaker exposes the per-host circuit breaker (nil unless Config.Breaker
// enabled it).
func (wb *Webbase) Breaker() *web.Breaker { return wb.breaker }

// Metrics exposes the webbase's metrics registry: counters, gauges and
// histograms aggregated across every query this webbase has run.
func (wb *Webbase) Metrics() *trace.Registry { return wb.metrics }

// now reads the webbase clock (time.Now unless Config.Clock was injected).
func (wb *Webbase) now() time.Time {
	if wb.clock != nil {
		return wb.clock()
	}
	return time.Now()
}

// QueryStats reports what one query cost.
type QueryStats struct {
	Pages     int64         // pages fetched from sites (cache misses)
	Bytes     int64         // body bytes fetched
	Elapsed   time.Duration // wall-clock time of the evaluation
	Simulated time.Duration // simulated network latency accrued
	CacheHits int64         // pages served from the cache
	// Deduped counts fetches collapsed onto an identical in-flight
	// request by the singleflight middleware during this query.
	Deduped int64
	// LimiterWait is the total time this query's fetches spent queued
	// behind the per-host concurrency cap.
	LimiterWait time.Duration
	// PeakInFlight is the webbase's high-water mark of concurrently
	// executing fetches as of the end of this query (a lifetime maximum,
	// not a per-query delta).
	PeakInFlight int64
	// Retries counts re-issued fetch attempts (transport failures retried
	// by the retry middleware) during this query.
	Retries int64
	// StaleServed counts pages served from expired cache entries because
	// the network path failed (stale-on-error) during this query.
	StaleServed int64
	// BreakerRejects counts fetches an open circuit breaker rejected
	// without touching the network during this query.
	BreakerRejects int64
	// DegradedObjects counts maximal objects abandoned because their
	// sites were unreachable (see Result.Degradation for the per-site
	// detail).
	DegradedObjects int
	// AdmissionWait is how long the query sat in the admission gate's
	// wait queue before executing. Elapsed deliberately excludes it —
	// Elapsed times execution, AdmissionWait times queueing, and the two
	// never double-count (LimiterWait, by contrast, happens during
	// execution and is part of Elapsed).
	AdmissionWait time.Duration
	// Hedges counts fetches backed by a second attempt because the first
	// had not answered within Config.HedgeAfter; HedgeWins counts those
	// answered by the second attempt.
	Hedges    int64
	HedgeWins int64
	// BulkheadSheds counts fetches shed by a saturated host bulkhead
	// during this query.
	BulkheadSheds int64
	// BudgetSheds counts fetches refused because their object's deadline
	// budget was exhausted during this query.
	BudgetSheds int64
	// HedgesSuppressed counts fetches that were eligible to hedge but
	// waited for their primary attempt because the query's hedge budget
	// was spent.
	HedgesSuppressed int64
	// DriftDetected counts maximal objects this query lost to site drift
	// (sites answering, but no longer matching their navigation maps) —
	// the observations that feed the self-healing tracker.
	DriftDetected int
	// PrunedFetches counts access attempts skipped by runtime relevance
	// pruning during this query — handle invocations, dependent-join
	// feeds and whole maximal objects that provably could not contribute
	// answer tuples. PrunedByReason breaks the count down by decision
	// rule (prune.ReasonUnsatWhere, prune.ReasonLimit). Zero/nil unless
	// Config.Prune is on.
	PrunedFetches  int64
	PrunedByReason map[string]int64
}

// String renders the stats line the experiment harness prints.
func (qs *QueryStats) String() string {
	return fmt.Sprintf("pages=%d bytes=%d elapsed=%v simulated-net=%v cache-hits=%d deduped=%d retries=%d stale=%d breaker-rejects=%d degraded-objects=%d peak-inflight=%d limiter-wait=%v admission-wait=%v hedges=%d hedge-wins=%d hedges-suppressed=%d bulkhead-shed=%d budget-shed=%d drift-detected=%d pruned=%d",
		qs.Pages, qs.Bytes, qs.Elapsed, qs.Simulated, qs.CacheHits, qs.Deduped, qs.Retries, qs.StaleServed, qs.BreakerRejects, qs.DegradedObjects, qs.PeakInFlight, qs.LimiterWait, qs.AdmissionWait, qs.Hedges, qs.HedgeWins, qs.HedgesSuppressed, qs.BulkheadSheds, qs.BudgetSheds, qs.DriftDetected, qs.PrunedFetches)
}

// Query evaluates a universal relation query end to end. Evaluation runs
// on up to Config.Workers goroutines; the answer is identical tuple for
// tuple to sequential (Workers=1) evaluation.
func (wb *Webbase) Query(q ur.Query) (*ur.Result, *QueryStats, error) {
	return wb.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: once ctx is done, evaluation
// stops issuing page fetches (in-flight fetches complete), every layer
// unwinds, and ctx.Err() is returned. Use it to put deadlines on queries
// over slow or hung sites.
func (wb *Webbase) QueryContext(ctx context.Context, q ur.Query) (*ur.Result, *QueryStats, error) {
	return wb.run(ctx, q)
}

// QueryTraced is QueryContext with execution tracing: the returned trace
// holds one span per maximal object, algebra operator, dependent-join
// invocation, handle execution and page fetch, annotated with actual
// cardinalities and costs. The trace is returned even when the query
// fails — a failed query's accesses are exactly what one wants to see.
// Pass the trace to ExplainAnalyze for the rendered plan, or Export it as
// JSON. Tracing adds spans but never changes the answer: the result is
// tuple-for-tuple identical to QueryContext's.
//
// A query the admission gate sheds returns a nil trace: it never
// executed, so there is nothing to trace. Admission happens before the
// root span starts, so queue time never inflates the trace's timings
// (it is reported separately in QueryStats.AdmissionWait).
func (wb *Webbase) QueryTraced(ctx context.Context, q ur.Query) (*ur.Result, *QueryStats, *trace.Trace, error) {
	wait, err := wb.admission.acquire(ctx, queryClassFrom(ctx, wb.class))
	if err != nil {
		return nil, nil, nil, err
	}
	defer wb.admission.release()
	tr := trace.New(q.String(), wb.clock)
	res, qs, err := wb.runAdmitted(trace.ContextWith(ctx, tr.Root), q, wait, nil)
	if err != nil {
		tr.Root.EndErr(err)
		return nil, nil, tr, err
	}
	tr.Root.Set("tuples", int64(res.Relation.Len()))
	tr.Root.End()
	return res, qs, tr, nil
}

// QueryStream is QueryContext with incremental answer delivery: as each
// maximal object completes, sink receives its finished contribution
// (new unique tuples, a degradation failure, or a binding skip) in plan
// order, so a caller can ship partial answers while later objects are
// still navigating their sites. The concatenation of delivered tuples
// is byte-identical to the Result.Relation the call returns, whatever
// Config.Workers is. Queries with ORDER BY or LIMIT deliver once,
// buffered, after sort and truncation (see ur.ObjectDelivery.Buffered).
func (wb *Webbase) QueryStream(ctx context.Context, q ur.Query, sink ur.ObjectSink) (*ur.Result, *QueryStats, error) {
	wait, err := wb.admission.acquire(ctx, queryClassFrom(ctx, wb.class))
	if err != nil {
		return nil, nil, err
	}
	defer wb.admission.release()
	return wb.runAdmitted(ctx, q, wait, sink)
}

// QueryStreamTraced is QueryStream with execution tracing (see
// QueryTraced). Like QueryTraced, a query the admission gate sheds
// returns a nil trace; the sink never fires for a shed query.
func (wb *Webbase) QueryStreamTraced(ctx context.Context, q ur.Query, sink ur.ObjectSink) (*ur.Result, *QueryStats, *trace.Trace, error) {
	wait, err := wb.admission.acquire(ctx, queryClassFrom(ctx, wb.class))
	if err != nil {
		return nil, nil, nil, err
	}
	defer wb.admission.release()
	tr := trace.New(q.String(), wb.clock)
	res, qs, err := wb.runAdmitted(trace.ContextWith(ctx, tr.Root), q, wait, sink)
	if err != nil {
		tr.Root.EndErr(err)
		return nil, nil, tr, err
	}
	tr.Root.Set("tuples", int64(res.Relation.Len()))
	tr.Root.End()
	return res, qs, tr, nil
}

// run is the common evaluation path of Query and QueryContext: admission,
// then execution.
func (wb *Webbase) run(ctx context.Context, q ur.Query) (*ur.Result, *QueryStats, error) {
	wait, err := wb.admission.acquire(ctx, queryClassFrom(ctx, wb.class))
	if err != nil {
		return nil, nil, err
	}
	defer wb.admission.release()
	return wb.runAdmitted(ctx, q, wait, nil)
}

// runAdmitted evaluates an already-admitted query: per-query stats delta,
// bounded worker pool, metrics observation. The execution clock starts
// here — after admission — so queue time appears only in AdmissionWait,
// never in Elapsed or in span durations. A non-nil sink receives
// per-object deliveries as evaluation streams (see QueryStream).
func (wb *Webbase) runAdmitted(ctx context.Context, q ur.Query, admissionWait time.Duration, sink ur.ObjectSink) (*ur.Result, *QueryStats, error) {
	before := wb.snapshot()
	start := wb.now()
	ctx = algebra.WithPool(ctx, algebra.NewPool(wb.workers))
	// Per-query fault-tolerance state: the outage memo replays terminal
	// site failures within this query; the retry budget (when configured)
	// caps this query's total re-issued attempts; strict mode turns
	// degradation back into fail-fast; the budget policy lets the UR
	// layer mint one deadline budget per maximal object.
	ctx = web.ContextWithOutageMemo(ctx, web.NewOutageMemo())
	if wb.retryBudget > 0 {
		ctx = web.ContextWithRetryBudget(ctx, web.NewRetryBudget(wb.retryBudget))
	}
	if wb.hedgeBudget > 0 {
		ctx = web.ContextWithHedgeBudget(ctx, web.NewRetryBudget(wb.hedgeBudget))
	}
	if wb.strict {
		ctx = ur.WithStrict(ctx)
	}
	if wb.deadline > 0 {
		ctx = web.ContextWithBudgetPolicy(ctx, web.BudgetPolicy{Deadline: wb.deadline, Clock: wb.clock})
	}
	// Quarantine snapshot: the set of drift-confirmed hosts is read once,
	// here, so a health transition mid-query cannot change which sites a
	// running query consults (outcomes stay schedule-independent).
	ctx = vps.ContextWithQuarantine(ctx, wb.health.Quarantined())
	// Access-relevance pruning: compile the query's WHERE clause once;
	// every layer below consults the state through the context (vps skips
	// irrelevant handle invocations pre-fetch, algebra skips doomed
	// dependent-join feeds, ur stops launching objects once LIMIT is
	// satisfied).
	var pst *prune.State
	if wb.prune {
		pst = ur.NewPruneState(q)
		ctx = prune.ContextWith(ctx, pst)
	}
	res, err := wb.UR.EvalStream(ctx, q, wb.Logical, sink)
	if err != nil {
		wb.metrics.Counter("queries_failed_total").Add(1)
		return nil, nil, err
	}
	qs := wb.delta(before, wb.now().Sub(start))
	qs.AdmissionWait = admissionWait
	if pst != nil {
		qs.PrunedFetches = pst.Total()
		qs.PrunedByReason = pst.Counts()
	}
	// Degradation is reported whenever the answer differs from (or was
	// rescued relative to) the fully-healthy one: objects lost to
	// outages, or pages served stale.
	if res.Degradation == nil && qs.StaleServed > 0 {
		res.Degradation = &ur.Degradation{}
	}
	if res.Degradation != nil {
		res.Degradation.StaleServed = qs.StaleServed
		qs.DegradedObjects = len(res.Degradation.Unavailable)
		// Self-healing feedback: each drift-degraded object is one
		// observation against its host; enough of them quarantine the site
		// and launch its background remap. Reported after evaluation so
		// this query's own outcome was fixed before the tracker moved.
		for _, f := range res.Degradation.Unavailable {
			if f.Kind == ur.FailureDrift {
				qs.DriftDetected++
				wb.health.ReportDrift(f.Host)
			}
		}
	}
	wb.observe(qs)
	return res, qs, nil
}

// observe folds one query's stats into the webbase-lifetime metrics.
func (wb *Webbase) observe(qs *QueryStats) {
	m := wb.metrics
	m.Counter("queries_total").Add(1)
	m.Counter("pages_fetched_total").Add(qs.Pages)
	m.Counter("bytes_fetched_total").Add(qs.Bytes)
	m.Counter("cache_hits_total").Add(qs.CacheHits)
	m.Counter("deduped_total").Add(qs.Deduped)
	m.Counter("retries_total").Add(qs.Retries)
	m.Counter("stale_served_total").Add(qs.StaleServed)
	m.Counter("breaker_rejects_total").Add(qs.BreakerRejects)
	m.Counter("fetch_hedges_total").Add(qs.Hedges)
	m.Counter("hedge_wins_total").Add(qs.HedgeWins)
	m.Counter("bulkhead_shed_total").Add(qs.BulkheadSheds)
	m.Counter("budget_shed_total").Add(qs.BudgetSheds)
	m.Counter("hedges_suppressed_total").Add(qs.HedgesSuppressed)
	m.Counter("site_drift_detected_total").Add(int64(qs.DriftDetected))
	if wb.prune {
		// Registered only on pruning-enabled webbases, so a pruning-off
		// /metrics page is byte-identical to the historical one.
		m.Counter("fetches_pruned_total").Add(qs.PrunedFetches)
		for r, n := range qs.PrunedByReason {
			m.Counter(`fetches_pruned_total{reason="` + r + `"}`).Add(n)
		}
	}
	if qs.DegradedObjects > 0 {
		m.Counter("queries_degraded_total").Add(1)
		m.Counter("objects_unavailable_total").Add(int64(qs.DegradedObjects))
	}
	m.Gauge("peak_inflight").SetMax(qs.PeakInFlight)
	m.Histogram("query_elapsed_seconds", 0.001, 0.01, 0.1, 1, 10).Observe(qs.Elapsed.Seconds())
	m.Histogram("query_pages", 1, 5, 10, 50, 100, 500).Observe(float64(qs.Pages))
	if qs.AdmissionWait > 0 {
		m.Histogram("admission_wait_seconds", 0.001, 0.01, 0.1, 1, 10).Observe(qs.AdmissionWait.Seconds())
	}
}

// QueryString parses and evaluates the CLI query syntax
// (SELECT ... WHERE ...).
func (wb *Webbase) QueryString(text string) (*ur.Result, *QueryStats, error) {
	return wb.QueryStringContext(context.Background(), text)
}

// QueryStringContext is QueryString with cancellation.
func (wb *Webbase) QueryStringContext(ctx context.Context, text string) (*ur.Result, *QueryStats, error) {
	q, err := ur.ParseQuery(wb.UR, text)
	if err != nil {
		return nil, nil, err
	}
	return wb.QueryContext(ctx, q)
}

type statSnapshot struct {
	pages, bytes, hits, deduped, retries, stale, breakerRejects     int64
	hedges, hedgeWins, hedgesSuppressed, bulkheadSheds, budgetSheds int64
	simulated, limiterWait                                          time.Duration
}

func (wb *Webbase) snapshot() statSnapshot {
	s := statSnapshot{
		pages:            wb.stats.Pages(),
		bytes:            wb.stats.Bytes(),
		simulated:        wb.stats.SimulatedLatency(),
		deduped:          wb.stats.Deduped(),
		retries:          wb.stats.Retries(),
		breakerRejects:   wb.stats.BreakerRejects(),
		limiterWait:      wb.stats.LimiterWait(),
		hedges:           wb.stats.Hedges(),
		hedgeWins:        wb.stats.HedgeWins(),
		hedgesSuppressed: wb.stats.HedgesSuppressed(),
		bulkheadSheds:    wb.stats.BulkheadSheds(),
		budgetSheds:      wb.stats.BudgetSheds(),
	}
	if wb.cache != nil {
		s.hits = wb.cache.Hits()
		s.stale = wb.cache.Stale()
	}
	return s
}

func (wb *Webbase) delta(before statSnapshot, elapsed time.Duration) *QueryStats {
	qs := &QueryStats{
		Pages:            wb.stats.Pages() - before.pages,
		Bytes:            wb.stats.Bytes() - before.bytes,
		Simulated:        wb.stats.SimulatedLatency() - before.simulated,
		Elapsed:          elapsed,
		Deduped:          wb.stats.Deduped() - before.deduped,
		Retries:          wb.stats.Retries() - before.retries,
		BreakerRejects:   wb.stats.BreakerRejects() - before.breakerRejects,
		LimiterWait:      wb.stats.LimiterWait() - before.limiterWait,
		PeakInFlight:     wb.stats.PeakInFlight(),
		Hedges:           wb.stats.Hedges() - before.hedges,
		HedgeWins:        wb.stats.HedgeWins() - before.hedgeWins,
		HedgesSuppressed: wb.stats.HedgesSuppressed() - before.hedgesSuppressed,
		BulkheadSheds:    wb.stats.BulkheadSheds() - before.bulkheadSheds,
		BudgetSheds:      wb.stats.BudgetSheds() - before.budgetSheds,
	}
	if wb.cache != nil {
		qs.CacheHits = wb.cache.Hits() - before.hits
		qs.StaleServed = wb.cache.Stale() - before.stale
	}
	return qs
}

// SiteResult is the outcome of populating one VPS relation during a
// multi-site sweep.
type SiteResult struct {
	Relation string
	Rel      *relation.Relation
	Err      error
}

// PopulateAll populates the named VPS relations with the same inputs,
// running up to Workers sites concurrently — the parallelization Section 7
// finds "crucial for obtaining acceptable response times". Results arrive
// keyed and sorted by relation name; per-site errors are reported in the
// results rather than aborting the sweep.
//
// Workers write into indexed slots and the final ordering is a stable
// sort, so the output sequence is deterministic even when the input lists
// a relation more than once — the same slot-then-deterministic-merge
// pattern the parallel union evaluator uses.
func (wb *Webbase) PopulateAll(relations []string, inputs map[string]relation.Value) []SiteResult {
	return wb.PopulateAllContext(context.Background(), relations, inputs)
}

// PopulateAllContext is PopulateAll with cancellation: sites not yet
// started when ctx is done report ctx.Err() in their SiteResult, and
// running navigations abort at their next page load.
func (wb *Webbase) PopulateAllContext(ctx context.Context, relations []string, inputs map[string]relation.Value) []SiteResult {
	results := make([]SiteResult, len(relations))
	sweepCtx := algebra.WithPool(ctx, algebra.NewPool(wb.workers))
	errs := algebra.ForEach(sweepCtx, len(relations), false, func(i int) error {
		name := relations[i]
		rel, _, err := wb.Registry.PopulateContext(ctx, wb.fetcher, name, inputs)
		results[i] = SiteResult{Relation: name, Rel: rel, Err: err}
		return nil
	})
	for i, err := range errs {
		if err != nil { // slot skipped because ctx was already done
			results[i] = SiteResult{Relation: relations[i], Err: err}
		}
	}
	sortSiteResults(results)
	return results
}

// PopulateSequential is the sequential baseline of PopulateAll, used by
// the parallelization experiment.
func (wb *Webbase) PopulateSequential(relations []string, inputs map[string]relation.Value) []SiteResult {
	results := make([]SiteResult, len(relations))
	for i, name := range relations {
		rel, _, err := wb.Registry.Populate(wb.fetcher, name, inputs)
		results[i] = SiteResult{Relation: name, Rel: rel, Err: err}
	}
	sortSiteResults(results)
	return results
}

// sortSiteResults orders sweep results by relation name, stably: inputs
// naming the same relation twice keep their submission order instead of
// landing in whichever order the unstable sort's pivoting produced.
func sortSiteResults(results []SiteResult) {
	sort.SliceStable(results, func(i, j int) bool { return results[i].Relation < results[j].Relation })
}
