package core

import (
	"context"
	"testing"

	"webbase/internal/sites"
	"webbase/internal/ur"
)

// TestStoreDifferential is the determinism proof for the durable state
// tier: the store is strictly below the in-memory stacks, so for a corpus
// of query shapes the observable outcome — answer bytes, skipped objects,
// degradation report, stream deliveries — is byte-identical across
// store-off, store-on-cold (empty state dir) and store-on-warm (a state
// dir pre-warmed by a previous process), at Workers=1 and Workers=8.
// Only fetch economics may differ (warm serves from disk), never content.
func TestStoreDifferential(t *testing.T) {
	queries := []struct{ name, query string }{
		{"wide", wideCarQuery},
		{"dependent-join", "SELECT Make, Model, Year, Price, BBPrice " +
			"WHERE Make = 'ford' AND Model = 'escort' AND Condition = 'good' AND Price < BBPrice"},
		{"order-by-limit", "SELECT Make, Model, Price WHERE Make = 'ford' ORDER BY Price LIMIT 2"},
	}
	for _, tc := range queries {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// run evaluates the query on a fresh webbase (dir = "" means
			// store off) and folds the stream deliveries plus the buffered
			// outcome into one comparable string.
			run := func(workers int, dir string) string {
				cfg := Config{Fetcher: sites.BuildWorld().Server, Workers: workers, StateDir: dir}
				wb, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer wb.Close()
				q, err := ur.ParseQuery(wb.UR, tc.query)
				if err != nil {
					t.Fatal(err)
				}
				var ds []ur.ObjectDelivery
				res, _, err := wb.QueryStream(context.Background(), q,
					func(d ur.ObjectDelivery) { ds = append(ds, d) })
				if err != nil {
					t.Fatalf("workers=%d dir=%q: %v", workers, dir, err)
				}
				return renderDeliveries(ds) + "---\n" + renderOutcome(res)
			}
			// warmDir returns a state dir a prior process already populated
			// with this query's pages (flushed through Close).
			warmDir := func(workers int) string {
				dir := t.TempDir()
				run(workers, dir)
				return dir
			}

			base := run(1, "")
			for _, cell := range []struct {
				name    string
				workers int
				dir     string
			}{
				{"off-w8", 8, ""},
				{"cold-w1", 1, t.TempDir()},
				{"cold-w8", 8, t.TempDir()},
				{"warm-w1", 1, warmDir(1)},
				{"warm-w8", 8, warmDir(8)},
			} {
				if got := run(cell.workers, cell.dir); got != base {
					t.Errorf("%s diverges from store-off workers=1\ngot:\n%s\nwant:\n%s",
						cell.name, got, base)
				}
			}
			// And warm really is warm: a second process over a warmed dir
			// answers without any network fetch.
			dir := warmDir(1)
			wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 1, StateDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer wb.Close()
			_, qs, err := wb.QueryString(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if qs.Pages != 0 {
				t.Errorf("warm restart fetched %d pages, want 0", qs.Pages)
			}
		})
	}
}
