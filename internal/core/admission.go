package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"webbase/internal/trace"
)

// This file is the admission gate: the outermost overload defense. Under
// a burst, every query admitted past capacity makes every other query
// slower — the dependent-join fan-out multiplies one admitted query into
// dozens of handle invocations competing for the same host slots. The
// gate bounds concurrently executing queries, parks a bounded FIFO queue
// of waiters behind them, and sheds everything beyond that immediately
// with ErrShedded. Shedding at admission (rather than deep in the worker
// pool) means a rejected query costs microseconds of mutex work instead
// of pages, goroutines and host slots — the caller learns "try later"
// before the system spends anything on it.

// ErrShedded is returned when the admission gate rejects a query because
// the maximum number of queries are already executing and the wait queue
// is full. Match with errors.Is. A shed query performed no work: no
// pages were fetched, no trace was started, no stats were accrued.
var ErrShedded = errors.New("core: query shed: admission gate and queue are full")

// admitWaiter is one queued query; granted is closed by release when an
// executing slot transfers to it.
type admitWaiter struct {
	granted chan struct{}
}

// admission is the bounded gate. A nil *admission admits everything
// (gate disabled), so callers can use it unconditionally.
type admission struct {
	metrics *trace.Registry
	clock   func() time.Time

	mu       sync.Mutex
	max      int // concurrently executing queries
	depth    int // bounded wait queue behind them
	inflight int
	queue    []*admitWaiter // FIFO: index 0 is the longest-waiting query
}

// newAdmission builds a gate of max executing slots and a wait queue of
// depth. max <= 0 disables the gate (returns nil).
func newAdmission(max, depth int, metrics *trace.Registry, clock func() time.Time) *admission {
	if max <= 0 {
		return nil
	}
	if depth < 0 {
		depth = 0
	}
	if clock == nil {
		clock = time.Now
	}
	return &admission{metrics: metrics, clock: clock, max: max, depth: depth}
}

// acquire blocks until the query may execute, returning how long it
// waited in the queue. When the gate and the queue are both full it
// returns ErrShedded without blocking; when ctx is cancelled while
// queued it returns ctx.Err(). The caller must release() after a nil
// error, and must not after a non-nil one.
func (a *admission) acquire(ctx context.Context) (time.Duration, error) {
	if a == nil {
		return 0, nil
	}
	a.mu.Lock()
	if a.inflight < a.max {
		a.inflight++
		a.mu.Unlock()
		return 0, nil
	}
	if len(a.queue) >= a.depth {
		a.mu.Unlock()
		a.metrics.Counter("queries_shed_total").Add(1)
		return 0, ErrShedded
	}
	w := &admitWaiter{granted: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.gaugeLocked()
	a.mu.Unlock()

	start := a.clock()
	select {
	case <-w.granted:
		return a.clock().Sub(start), nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.granted:
			// The grant raced the cancellation: we own a slot after all.
			// Hand it on rather than strand it.
			a.mu.Unlock()
			a.release()
		default:
			// Not granted, so w is still queued (only release dequeues,
			// under this lock, and it closes granted when it does).
			// Remove it so it stops occupying one of the depth slots.
			for i, q := range a.queue {
				if q == w {
					a.queue = append(a.queue[:i], a.queue[i+1:]...)
					break
				}
			}
			a.gaugeLocked()
			a.mu.Unlock()
		}
		return a.clock().Sub(start), ctx.Err()
	}
}

// release returns a slot: the longest-waiting queued query (if any)
// inherits it, otherwise the gate's inflight count drops.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		// The slot transfers: inflight is unchanged.
		close(w.granted)
	} else {
		a.inflight--
	}
	a.gaugeLocked()
}

// gaugeLocked publishes queue/inflight depth; a.mu must be held.
func (a *admission) gaugeLocked() {
	a.metrics.Gauge("admission_queue_depth").Set(int64(len(a.queue)))
	a.metrics.Gauge("admission_inflight").Set(int64(a.inflight))
}
