package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"webbase/internal/trace"
)

// This file is the admission gate: the outermost overload defense. Under
// a burst, every query admitted past capacity makes every other query
// slower — the dependent-join fan-out multiplies one admitted query into
// dozens of handle invocations competing for the same host slots. The
// gate bounds concurrently executing queries, parks a bounded FIFO queue
// of waiters behind them, and sheds everything beyond that immediately
// with ErrShedded. Shedding at admission (rather than deep in the worker
// pool) means a rejected query costs microseconds of mutex work instead
// of pages, goroutines and host slots — the caller learns "try later"
// before the system spends anything on it.

// ErrShedded is returned when the admission gate rejects a query because
// the maximum number of queries are already executing and the wait queue
// is full. Match with errors.Is. A shed query performed no work: no
// pages were fetched, no trace was started, no stats were accrued.
var ErrShedded = errors.New("core: query shed: admission gate and queue are full")

// QueryClass is a query's admission priority. Under overload the gate
// sheds the lowest class first: an arriving interactive query evicts a
// queued batch query rather than being shed itself, and freed slots go to
// the highest-class waiter. Classes never preempt executing queries —
// they only decide who waits and who is shed.
type QueryClass uint8

const (
	// ClassInteractive is the default: a user is waiting on the answer.
	ClassInteractive QueryClass = iota
	// ClassBatch marks background work (report sweeps, cache warmers)
	// that should be the first shed under load.
	ClassBatch
)

// String renders the class name used in shed metrics.
func (c QueryClass) String() string {
	if c == ClassBatch {
		return "batch"
	}
	return "interactive"
}

// queryClassKey carries a per-query class override (see WithQueryClass).
type queryClassKey struct{}

// WithQueryClass marks ctx so queries issued under it are admitted at the
// given class, overriding Config.QueryClass.
func WithQueryClass(ctx context.Context, c QueryClass) context.Context {
	return context.WithValue(ctx, queryClassKey{}, c)
}

func queryClassFrom(ctx context.Context, def QueryClass) QueryClass {
	if c, ok := ctx.Value(queryClassKey{}).(QueryClass); ok {
		return c
	}
	return def
}

// admitWaiter is one queued query; granted is closed by release when an
// executing slot transfers to it, shedded by an arriving higher-class
// query that evicted it.
type admitWaiter struct {
	class   QueryClass
	granted chan struct{}
	shedded chan struct{}
}

// admission is the bounded gate. A nil *admission admits everything
// (gate disabled), so callers can use it unconditionally.
type admission struct {
	metrics *trace.Registry
	clock   func() time.Time

	mu       sync.Mutex
	max      int // concurrently executing queries
	depth    int // bounded wait queue behind them
	inflight int
	queue    []*admitWaiter // FIFO: index 0 is the longest-waiting query
}

// newAdmission builds a gate of max executing slots and a wait queue of
// depth. max <= 0 disables the gate (returns nil).
func newAdmission(max, depth int, metrics *trace.Registry, clock func() time.Time) *admission {
	if max <= 0 {
		return nil
	}
	if depth < 0 {
		depth = 0
	}
	if clock == nil {
		clock = time.Now
	}
	return &admission{metrics: metrics, clock: clock, max: max, depth: depth}
}

// acquire blocks until the query may execute, returning how long it
// waited in the queue. When the gate and the queue are both full, a
// query is shed — but class decides which one: an arriving query evicts
// the newest queued waiter of a strictly lower class before shedding
// itself. When ctx is cancelled while queued it returns ctx.Err(). The
// caller must release() after a nil error, and must not after a non-nil
// one.
func (a *admission) acquire(ctx context.Context, class QueryClass) (time.Duration, error) {
	if a == nil {
		return 0, nil
	}
	a.mu.Lock()
	if a.inflight < a.max {
		a.inflight++
		a.mu.Unlock()
		return 0, nil
	}
	if len(a.queue) >= a.depth {
		// Queue full: evict the newest waiter of the lowest class below
		// ours (newest so the longest-waiting batch query is the last of
		// its class to go); if nobody outranks, shed ourselves.
		victim := -1
		for i := len(a.queue) - 1; i >= 0; i-- {
			if a.queue[i].class > class && (victim < 0 || a.queue[i].class > a.queue[victim].class) {
				victim = i
			}
		}
		if victim < 0 {
			a.mu.Unlock()
			a.shed(class)
			return 0, ErrShedded
		}
		v := a.queue[victim]
		a.queue = append(a.queue[:victim], a.queue[victim+1:]...)
		close(v.shedded)
		a.shed(v.class)
	}
	w := &admitWaiter{class: class, granted: make(chan struct{}), shedded: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.gaugeLocked()
	a.mu.Unlock()

	start := a.clock()
	select {
	case <-w.granted:
		return a.clock().Sub(start), nil
	case <-w.shedded:
		return a.clock().Sub(start), ErrShedded
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.granted:
			// The grant raced the cancellation: we own a slot after all.
			// Hand it on rather than strand it.
			a.mu.Unlock()
			a.release()
		default:
			// Not granted, so w is either still queued or was evicted
			// (only release dequeues-and-grants, under this lock).
			// Remove it so it stops occupying one of the depth slots.
			for i, q := range a.queue {
				if q == w {
					a.queue = append(a.queue[:i], a.queue[i+1:]...)
					break
				}
			}
			a.gaugeLocked()
			a.mu.Unlock()
		}
		return a.clock().Sub(start), ctx.Err()
	}
}

// release returns a slot: the highest-class queued query inherits it
// (FIFO within a class), otherwise the gate's inflight count drops.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) > 0 {
		best := 0
		for i, q := range a.queue {
			if q.class < a.queue[best].class {
				best = i
			}
		}
		w := a.queue[best]
		a.queue = append(a.queue[:best], a.queue[best+1:]...)
		// The slot transfers: inflight is unchanged.
		close(w.granted)
	} else {
		a.inflight--
	}
	a.gaugeLocked()
}

// shed counts one shed query, overall and per class.
func (a *admission) shed(class QueryClass) {
	a.metrics.Counter("queries_shed_total").Add(1)
	a.metrics.Counter(`queries_shed_total{class="` + class.String() + `"}`).Add(1)
}

// gaugeLocked publishes queue/inflight depth; a.mu must be held.
func (a *admission) gaugeLocked() {
	a.metrics.Gauge("admission_queue_depth").Set(int64(len(a.queue)))
	a.metrics.Gauge("admission_inflight").Set(int64(a.inflight))
}
