package core

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/trace"
	"webbase/internal/ur"
)

// wideCarQuery is the paper's Section 1 headline query — the widest plan
// the used-car domain produces (two maximal objects, dependent joins into
// the feature and safety sites), which makes it the acceptance query for
// trace determinism.
const wideCarQuery = "SELECT Make, Model, Year, Price, BBPrice, Contact " +
	"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' " +
	"AND Condition = 'good' AND Price < BBPrice"

// fakeClock is a deterministic time source: every reading advances 1ms.
// It is safe for concurrent use, which matters because parallel workers
// read the webbase clock from many goroutines.
func fakeClock() func() time.Time {
	var n atomic.Int64
	base := time.Date(1999, 6, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return base.Add(time.Duration(n.Add(1)) * time.Millisecond) }
}

func tracedRun(t *testing.T, workers int) (*ur.Result, *QueryStats, *trace.Trace, *Webbase) {
	t.Helper()
	wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: workers, Clock: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, qs, tr, err := wb.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return res, qs, tr, wb
}

// TestTraceParallelDeterminism is the acceptance test of the tracing
// design: the trace *structure* — span IDs, kinds, names, deterministic
// counters — and the aggregated rendering minus timings must be
// byte-identical whether the query ran on one worker or eight.
func TestTraceParallelDeterminism(t *testing.T) {
	_, _, seqTr, _ := tracedRun(t, 1)
	_, _, parTr, _ := tracedRun(t, 8)

	seqStruct, parStruct := seqTr.Structure(), parTr.Structure()
	if seqStruct != parStruct {
		t.Errorf("trace structure differs between Workers=1 and Workers=8\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqStruct, parStruct)
	}
	seqRender := trace.StripTimings(seqTr.Render(trace.RenderOptions{Timings: true}))
	parRender := trace.StripTimings(parTr.Render(trace.RenderOptions{Timings: true}))
	if seqRender != parRender {
		t.Errorf("rendered plan (minus timings) differs between Workers=1 and Workers=8\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqRender, parRender)
	}
	if seqStruct == "" || !strings.Contains(seqRender, "invocations=") {
		t.Fatalf("suspiciously empty trace output:\n%s", seqRender)
	}
}

// TestExplainAnalyzeParallelDeterminism asserts the same property one
// level up: the structural section of ExplainAnalyze (everything above the
// volatile-totals footer, minus time=… fields) is byte-identical across
// worker counts, and reports per-operator tuples, handle invocations,
// fetches and latency.
func TestExplainAnalyzeParallelDeterminism(t *testing.T) {
	section := func(workers int) string {
		wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: workers, Clock: fakeClock()})
		if err != nil {
			t.Fatal(err)
		}
		q, err := ur.ParseQuery(wb.UR, wideCarQuery)
		if err != nil {
			t.Fatal(err)
		}
		out, err := wb.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		structural, _, ok := strings.Cut(out, "=== totals (volatile) ===")
		if !ok {
			t.Fatalf("ExplainAnalyze output missing the volatile-totals footer:\n%s", out)
		}
		return trace.StripTimings(structural)
	}
	seq, par := section(1), section(8)
	if seq != par {
		t.Errorf("ExplainAnalyze structural section differs between Workers=1 and Workers=8\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq, par)
	}
	for _, want := range []string{"tuples=", "invocations=", "fetches=", "answer:"} {
		if !strings.Contains(seq, want) {
			t.Errorf("ExplainAnalyze structural section missing %q:\n%s", want, seq)
		}
	}
	// Timings belong to the full output, not the stripped section.
	if strings.Contains(seq, " time=") {
		t.Error("StripTimings left time= fields behind")
	}
}

// TestTraceAccounting is the cross-layer accounting property: what the
// trace records must reconcile with what the fetch stack counted.
func TestTraceAccounting(t *testing.T) {
	res, qs, tr, _ := tracedRun(t, 4)

	var total, network, cacheHits, deduped int64
	tr.Root.Walk(func(s *trace.Span) {
		if s.Kind() != trace.KindFetch {
			return
		}
		total++
		switch s.LabelValue("outcome") {
		case "network":
			network++
		case "cache":
			cacheHits++
		case "dedup":
			deduped++
		}
	})
	if network != qs.Pages {
		t.Errorf("trace records %d network fetches; stats counted %d pages", network, qs.Pages)
	}
	if cacheHits != qs.CacheHits {
		t.Errorf("trace records %d cache hits; stats counted %d", cacheHits, qs.CacheHits)
	}
	if deduped != qs.Deduped {
		t.Errorf("trace records %d deduped fetches; stats counted %d", deduped, qs.Deduped)
	}
	if network+cacheHits+deduped != total {
		t.Errorf("%d fetch spans lack an outcome label (total=%d network=%d cache=%d dedup=%d)",
			total-network-cacheHits-deduped, total, network, cacheHits, deduped)
	}
	if total == 0 {
		t.Fatal("no fetch spans recorded")
	}
	if got := tr.Root.Counter("tuples"); got != int64(res.Relation.Len()) {
		t.Errorf("root span tuples=%d; answer has %d", got, res.Relation.Len())
	}
}

// TestTraceTupleConsistency checks parent/child cardinality invariants on
// the operator spans: selections and projections never grow their input,
// and a union's output is bounded by the sum of its branches.
func TestTraceTupleConsistency(t *testing.T) {
	_, _, tr, _ := tracedRun(t, 4)

	ops := 0
	tr.Root.Walk(func(s *trace.Span) {
		if s.Kind() != trace.KindOp || s.Err() != "" {
			return
		}
		var kids []*trace.Span
		for _, c := range s.Children() {
			if c.Kind() == trace.KindOp {
				kids = append(kids, c)
			}
		}
		name, tuples := s.Name(), s.Counter("tuples")
		switch {
		case strings.HasPrefix(name, "σ["), strings.HasPrefix(name, "π["):
			if len(kids) == 1 && tuples > kids[0].Counter("tuples") {
				t.Errorf("%s %s produced %d tuples from an input of %d",
					s.ID(), name, tuples, kids[0].Counter("tuples"))
			}
			ops++
		case name == "∪", name == "∪ʳ":
			var sum int64
			for _, c := range kids {
				sum += c.Counter("tuples")
			}
			if len(kids) > 0 && tuples > sum {
				t.Errorf("%s %s produced %d tuples from branches totalling %d",
					s.ID(), name, tuples, sum)
			}
			ops++
		}
	})
	if ops == 0 {
		t.Fatal("no σ/π/∪ operator spans found; is the algebra layer traced?")
	}
}

// TestQueryTracedMatchesUntraced: tracing must observe, never change —
// the traced answer is tuple-for-tuple the untraced one, and the traced
// stats account the same pages.
func TestQueryTracedMatchesUntraced(t *testing.T) {
	wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := wb.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, tr, err := wb.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Relation.String() != traced.Relation.String() {
		t.Error("traced query answer differs from untraced")
	}
	if tr == nil || tr.Root == nil {
		t.Fatal("no trace returned")
	}
}

// TestMetricsAccumulate: the webbase-lifetime registry aggregates across
// queries and snapshots consistently.
func TestMetricsAccumulate(t *testing.T) {
	wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := wb.QueryString(wideCarQuery); err != nil {
			t.Fatal(err)
		}
	}
	snap := wb.Metrics().Snapshot()
	if got := snap.Counters["queries_total"]; got != 2 {
		t.Errorf("queries_total = %d, want 2", got)
	}
	if snap.Counters["pages_fetched_total"] == 0 {
		t.Error("pages_fetched_total is zero after two queries")
	}
	// Second run is cache-served: hits must have registered.
	if snap.Counters["cache_hits_total"] == 0 {
		t.Error("cache_hits_total is zero; the repeat query should hit the cache")
	}
	h, ok := snap.Histograms["query_pages"]
	if !ok || h.Count != 2 {
		t.Errorf("query_pages histogram count = %+v, want 2 observations", h)
	}
	if !strings.Contains(snap.String(), "counter queries_total 2") {
		t.Errorf("snapshot rendering missing queries_total:\n%s", snap)
	}
}
