package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/web"
)

// Chaos × pruning interaction tests. The contract under faults is
// conditional: pruning only ever removes fetches, and web.Flaky decides
// failures per (URL, per-URL attempt), so a fetch that still happens gets
// the same verdict with pruning on or off. Whenever the same maximal
// objects survive, the whole observable outcome — answer bytes, skipped
// objects, degradation report — must match the unpruned run byte for
// byte. When they differ, it can only be because pruning rescued an
// object (skipped the fetch that would have doomed it): the pruned run's
// failed-object set must be a subset of the unpruned run's, never new
// failures. And in every case the pruned run itself must stay
// deterministic across worker counts.

// pruneChaosOutcome folds one chaotic run; failed carries the degraded
// objects in a comparable rendering.
type pruneChaosResult struct {
	fold   string
	failed []string
}

func pruneChaosOutcome(t *testing.T, cfg Config, query string) pruneChaosResult {
	t.Helper()
	wb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := wb.QueryString(query)
	if err != nil {
		return pruneChaosResult{fold: "error: " + err.Error()}
	}
	var sb strings.Builder
	sb.WriteString(res.Relation.String())
	fmt.Fprintf(&sb, "\nskipped: %v\n", res.Skipped)
	var failed []string
	if res.Degradation != nil {
		sb.WriteString(staleCount.ReplaceAllString(res.Degradation.String(), "stale-served=masked"))
		for _, f := range res.Degradation.Unavailable {
			failed = append(failed, fmt.Sprintf("{%s} %s %s", strings.Join(f.Object, ","), f.Host, f.Kind))
		}
	}
	sort.Strings(failed)
	return pruneChaosResult{fold: sb.String(), failed: failed}
}

// subset reports whether every element of a appears in b (as multisets).
func subset(a, b []string) bool {
	remaining := make(map[string]int, len(b))
	for _, s := range b {
		remaining[s]++
	}
	for _, s := range a {
		if remaining[s] == 0 {
			return false
		}
		remaining[s]--
	}
	return true
}

// comparePruneChaos applies the conditional contract to an off/on pair.
func comparePruneChaos(t *testing.T, label string, off, on pruneChaosResult) {
	t.Helper()
	if !subset(on.failed, off.failed) {
		t.Errorf("%s: pruning introduced new failures\npruned:   %v\nunpruned: %v",
			label, on.failed, off.failed)
	}
	if fmt.Sprint(on.failed) == fmt.Sprint(off.failed) && on.fold != off.fold {
		t.Errorf("%s: same objects survive but outcomes diverge\n--- prune=off ---\n%s\n--- prune=on ---\n%s",
			label, off.fold, on.fold)
	}
}

// TestPruneChaosFlaky crosses pruning with fault injection on the wide
// acceptance query (where unsat-where pruning provably fires) at several
// failure rates and worker counts.
func TestPruneChaosFlaky(t *testing.T) {
	for _, failEvery := range []uint64{2, 3, 7} {
		t.Run(fmt.Sprintf("failevery=%d", failEvery), func(t *testing.T) {
			mk := func(workers int, prune bool) pruneChaosResult {
				return pruneChaosOutcome(t, Config{
					Fetcher: &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: failEvery},
					Workers: workers,
					Retries: 2,
					Prune:   prune,
				}, wideCarQuery)
			}
			off1, on1 := mk(1, false), mk(1, true)
			comparePruneChaos(t, "workers=1", off1, on1)
			// The pruned run is as schedule-independent as the unpruned one.
			if on8 := mk(8, true); on8.fold != on1.fold {
				t.Errorf("pruned outcome differs across worker counts\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					on1.fold, on8.fold)
			}
			comparePruneChaos(t, "workers=8", mk(8, false), mk(8, true))
			// Deterministic rerun.
			if again := mk(1, true); again.fold != on1.fold {
				t.Errorf("pruned outcome not self-consistent")
			}
		})
	}
}

// TestPruneChaosStaleDrift crosses pruning with the full degraded-mode
// stack: a flaky network, a redesigned site, stale-on-error serving and
// drift quarantine, over three query stages with the repair worker
// quiesced in between (the chaosDriftOutcome lifecycle).
func TestPruneChaosStaleDrift(t *testing.T) {
	lifecycle := func(failEvery uint64, workers int, prune bool) string {
		clk := newManualClock()
		rd := &web.Redesign{
			Inner:    sites.BuildWorld().Server,
			Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Automobiles<", New: ">Cars and Trucks<"}}},
		}
		wb, err := New(Config{
			Fetcher:           &web.Flaky{Inner: rd, FailEvery: failEvery},
			Workers:           workers,
			Retries:           2,
			Clock:             clk.Now,
			CacheMaxAge:       time.Minute,
			AllowStale:        true,
			DriftThreshold:    2,
			MaxRepairAttempts: 2,
			RepairBackoff:     time.Millisecond,
			Prune:             prune,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		stage := func(name string) {
			res, qs, err := wb.QueryString(wideCarQuery)
			fmt.Fprintf(&sb, "=== %s (newsday=%s) ===\n", name, wb.SiteHealth().SiteState(sites.NewsdayHost))
			if err != nil {
				fmt.Fprintf(&sb, "error: %s\n", err)
				return
			}
			sb.WriteString(res.Relation.String())
			fmt.Fprintf(&sb, "\nskipped: %v\ndrift-detected: %d\n", res.Skipped, qs.DriftDetected)
			if res.Degradation != nil {
				sb.WriteString(staleCount.ReplaceAllString(res.Degradation.String(), "stale-served=masked"))
			}
		}
		stage("warm")
		rd.Activate()
		clk.Advance(2 * time.Minute)
		for i := 0; i < 3; i++ {
			stage(fmt.Sprintf("chaos-%d", i))
			wb.SiteHealth().Wait()
		}
		return sb.String()
	}

	for _, failEvery := range []uint64{3, 7} {
		t.Run(fmt.Sprintf("failevery=%d", failEvery), func(t *testing.T) {
			// The pruned lifecycle must be deterministic: byte-identical
			// across worker counts and reruns, exactly like the unpruned one.
			seqOn := lifecycle(failEvery, 1, true)
			if parOn := lifecycle(failEvery, 8, true); parOn != seqOn {
				t.Fatalf("pruned lifecycle differs across worker counts\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					seqOn, parOn)
			}
			if again := lifecycle(failEvery, 1, true); again != seqOn {
				t.Fatalf("pruned lifecycle not self-consistent")
			}
			// Healthy-path sanity: the warm stage (before the redesign
			// activates) must match the unpruned lifecycle byte for byte —
			// same objects trivially survive a healthy Web.
			seqOff := lifecycle(failEvery, 1, false)
			warm := func(s string) string {
				if i := strings.Index(s, "=== chaos-0"); i >= 0 {
					return s[:i]
				}
				return s
			}
			if warm(seqOn) != warm(seqOff) {
				t.Errorf("healthy warm stage diverges under pruning\n--- prune=off ---\n%s\n--- prune=on ---\n%s",
					warm(seqOff), warm(seqOn))
			}
		})
	}
}

// TestPruneChaosDeadlineBudget crosses pruning with per-object deadline
// budgets (generous, so they never fire — budgets measure wall time and a
// tight budget would be schedule-dependent) and fault injection.
func TestPruneChaosDeadlineBudget(t *testing.T) {
	mk := func(workers int, prune bool) pruneChaosResult {
		return pruneChaosOutcome(t, Config{
			Fetcher:  &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: 3},
			Workers:  workers,
			Retries:  2,
			Deadline: time.Hour,
			Prune:    prune,
		}, wideCarQuery)
	}
	for _, workers := range []int{1, 8} {
		comparePruneChaos(t, fmt.Sprintf("workers=%d", workers), mk(workers, false), mk(workers, true))
	}
	if on1, on8 := mk(1, true), mk(8, true); on1.fold != on8.fold {
		t.Errorf("pruned outcome differs across worker counts under budgets\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			on1.fold, on8.fold)
	}
}

// TestPrunedBeforeFailureAbsentFromDegradation is the "pruned before
// failure" semantics pin: with LIMIT 1 satisfied by the first plan-order
// object, the second object (the dealer sites) is never launched — so a
// hard outage of a dealer host must not surface in the pruned run's
// degradation report, while the unpruned run degrades on it. The answer
// bytes stay identical either way.
func TestPrunedBeforeFailureAbsentFromDegradation(t *testing.T) {
	const q = "SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 1"
	mk := func(prune bool) (*Webbase, error) {
		return New(Config{
			Fetcher: &hostDownFetcher{inner: sites.BuildWorld().Server, down: sites.CarPointHost},
			Workers: 1,
			Prune:   prune,
		})
	}
	off, err := mk(false)
	if err != nil {
		t.Fatal(err)
	}
	resOff, _, err := off.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if !resOff.Degradation.Degraded() {
		t.Fatal("unpruned run should degrade on the carpoint outage")
	}

	on, err := mk(true)
	if err != nil {
		t.Fatal(err)
	}
	resOn, qs, err := on.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Degradation.Degraded() {
		t.Errorf("object pruned before its site failure must not appear in the degradation report:\n%s",
			resOn.Degradation)
	}
	if qs.PrunedFetches == 0 {
		t.Error("expected the dealer object to be pruned")
	}
	if resOn.Relation.String() != resOff.Relation.String() {
		t.Errorf("answers diverge\n--- prune=off ---\n%s\n--- prune=on ---\n%s",
			resOff.Relation, resOn.Relation)
	}
}
