package core

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/web"
)

var staleCount = regexp.MustCompile(`stale-served=\d+`)

// chaosOutcome runs the acceptance query through a webbase whose network
// fails every n-th attempt and folds everything observable about the
// answer — tuples, skipped objects, the degradation report, or the error —
// into one string.
func chaosOutcome(t *testing.T, failEvery uint64, workers int) string {
	t.Helper()
	wb, err := New(Config{
		Fetcher: &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: failEvery},
		Workers: workers,
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := wb.QueryString(wideCarQuery)
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString(res.Relation.String())
	fmt.Fprintf(&sb, "\nskipped: %v\n", res.Skipped)
	if res.Degradation != nil {
		sb.WriteString(res.Degradation.String())
	}
	return sb.String()
}

// TestChaosDeterministicDegradation is the fault-injection acceptance
// test: whatever a flaky network does to the query — full recovery,
// partial answer, or total failure — the outcome is byte-identical at
// Workers=1 and Workers=8. Terminal failure verdicts are decided once per
// request key (the outage memo) and Flaky hashes per-request attempt
// numbers, so nothing observable depends on goroutine interleaving.
// Run with -race and -count=2.
func TestChaosDeterministicDegradation(t *testing.T) {
	for _, failEvery := range []uint64{2, 3, 7} {
		t.Run(fmt.Sprintf("failevery=%d", failEvery), func(t *testing.T) {
			seq := chaosOutcome(t, failEvery, 1)
			for run := 0; run < 2; run++ {
				if par := chaosOutcome(t, failEvery, 8); par != seq {
					t.Fatalf("outcome differs from sequential (run %d)\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
						run, seq, par)
				}
			}
			if again := chaosOutcome(t, failEvery, 1); again != seq {
				t.Fatalf("sequential outcome not even self-consistent\n--- first ---\n%s\n--- second ---\n%s",
					seq, again)
			}
		})
	}
}

// chaosDriftOutcome runs the full self-healing lifecycle under a network
// that is flaky AND a site that redesigns AND a cache old enough to serve
// stale — drift, outage and staleness all in play at once — and folds
// every stage's observable outcome into one string. Flaky decides
// per-request-key, drift observations are counted after evaluation, the
// quarantine snapshot is taken at query start, and SiteHealth().Wait()
// quiesces the repair worker between stages, so the fold must not depend
// on scheduling.
func chaosDriftOutcome(t *testing.T, failEvery uint64, workers int) string {
	t.Helper()
	clk := newManualClock()
	rd := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Automobiles<", New: ">Cars and Trucks<"}}},
	}
	wb, err := New(Config{
		Fetcher:           &web.Flaky{Inner: rd, FailEvery: failEvery},
		Workers:           workers,
		Retries:           2,
		Clock:             clk.Now,
		CacheMaxAge:       time.Minute,
		AllowStale:        true,
		DriftThreshold:    2,
		MaxRepairAttempts: 2,
		RepairBackoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	stage := func(name string) {
		res, qs, err := wb.QueryString(wideCarQuery)
		fmt.Fprintf(&sb, "=== %s (newsday=%s) ===\n", name, wb.SiteHealth().SiteState(sites.NewsdayHost))
		if err != nil {
			fmt.Fprintf(&sb, "error: %s\n", err)
			return
		}
		sb.WriteString(res.Relation.String())
		fmt.Fprintf(&sb, "\nskipped: %v\ndrift-detected: %d\n", res.Skipped, qs.DriftDetected)
		if res.Degradation != nil {
			// The stale-served count is an execution cost, not part of the
			// answer: how many failing fetches found a stale rescue depends
			// on how far each worker got before its object's terminal
			// verdict — mask it like Pages or CacheHits.
			sb.WriteString(staleCount.ReplaceAllString(res.Degradation.String(), "stale-served=masked"))
		}
	}
	stage("warm")
	rd.Activate()
	clk.Advance(2 * time.Minute) // the whole cache is now stale-eligible
	for i := 0; i < 3; i++ {
		stage(fmt.Sprintf("chaos-%d", i))
		wb.SiteHealth().Wait()
	}
	fmt.Fprintf(&sb, "attempts=%d\n", wb.SiteHealth().Attempts(sites.NewsdayHost))
	return sb.String()
}

// TestChaosDriftDeterministicSelfHealing extends the fault-injection
// acceptance test to the self-healing path: with outages, a redesign and
// stale serving all active, whatever happens — degraded answers, stale
// rescues, quarantine, a repair that itself fights the flaky network —
// the outcome is byte-identical at Workers=1 and Workers=8. Run with
// -race and -count=2.
func TestChaosDriftDeterministicSelfHealing(t *testing.T) {
	for _, failEvery := range []uint64{2, 3, 7} {
		t.Run(fmt.Sprintf("failevery=%d", failEvery), func(t *testing.T) {
			seq := chaosDriftOutcome(t, failEvery, 1)
			for run := 0; run < 2; run++ {
				if par := chaosDriftOutcome(t, failEvery, 8); par != seq {
					t.Fatalf("outcome differs from sequential (run %d)\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
						run, seq, par)
				}
			}
			if again := chaosDriftOutcome(t, failEvery, 1); again != seq {
				t.Fatalf("sequential outcome not even self-consistent\n--- first ---\n%s\n--- second ---\n%s",
					seq, again)
			}
		})
	}
}
