package core

import (
	"fmt"
	"strings"
	"testing"

	"webbase/internal/sites"
	"webbase/internal/web"
)

// chaosOutcome runs the acceptance query through a webbase whose network
// fails every n-th attempt and folds everything observable about the
// answer — tuples, skipped objects, the degradation report, or the error —
// into one string.
func chaosOutcome(t *testing.T, failEvery uint64, workers int) string {
	t.Helper()
	wb, err := New(Config{
		Fetcher: &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: failEvery},
		Workers: workers,
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := wb.QueryString(wideCarQuery)
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString(res.Relation.String())
	fmt.Fprintf(&sb, "\nskipped: %v\n", res.Skipped)
	if res.Degradation != nil {
		sb.WriteString(res.Degradation.String())
	}
	return sb.String()
}

// TestChaosDeterministicDegradation is the fault-injection acceptance
// test: whatever a flaky network does to the query — full recovery,
// partial answer, or total failure — the outcome is byte-identical at
// Workers=1 and Workers=8. Terminal failure verdicts are decided once per
// request key (the outage memo) and Flaky hashes per-request attempt
// numbers, so nothing observable depends on goroutine interleaving.
// Run with -race and -count=2.
func TestChaosDeterministicDegradation(t *testing.T) {
	for _, failEvery := range []uint64{2, 3, 7} {
		t.Run(fmt.Sprintf("failevery=%d", failEvery), func(t *testing.T) {
			seq := chaosOutcome(t, failEvery, 1)
			for run := 0; run < 2; run++ {
				if par := chaosOutcome(t, failEvery, 8); par != seq {
					t.Fatalf("outcome differs from sequential (run %d)\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
						run, seq, par)
				}
			}
			if again := chaosOutcome(t, failEvery, 1); again != seq {
				t.Fatalf("sequential outcome not even self-consistent\n--- first ---\n%s\n--- second ---\n%s",
					seq, again)
			}
		})
	}
}
