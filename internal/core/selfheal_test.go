package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"webbase/internal/health"
	"webbase/internal/sites"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// selfHealWebbase builds a webbase over a Redesign-wrapped world with a
// drift threshold of 2 and fast repair backoff.
func selfHealWebbase(t *testing.T, workers int, rewrites ...web.Rewrite) (*Webbase, *web.Redesign) {
	t.Helper()
	rd := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: rewrites},
	}
	wb, err := New(Config{
		Fetcher:           rd,
		Workers:           workers,
		DriftThreshold:    2,
		MaxRepairAttempts: 3,
		RepairBackoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wb, rd
}

// queryOutcome folds everything observable about one query — tuples,
// skipped objects, degradation report, drift count, or the error — into a
// comparable string.
func queryOutcome(t *testing.T, wb *Webbase) string {
	t.Helper()
	res, qs, err := wb.QueryString(wideCarQuery)
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString(res.Relation.String())
	fmt.Fprintf(&sb, "\nskipped: %v\ndrift-detected: %d\n", res.Skipped, qs.DriftDetected)
	if res.Degradation != nil {
		sb.WriteString(res.Degradation.String())
	}
	return sb.String()
}

// selfHealSequence runs the full lifecycle — healthy, redesign, detect,
// quarantine, background repair, recovered — and folds each stage's
// observable outcome plus the health-state transitions into one string.
func selfHealSequence(t *testing.T, workers int) string {
	t.Helper()
	wb, rd := selfHealWebbase(t, workers,
		web.Rewrite{Old: ">Automobiles<", New: ">Cars and Trucks<"})

	var sb strings.Builder
	stage := func(name string, outcome string) {
		fmt.Fprintf(&sb, "=== %s (newsday=%s) ===\n%s\n",
			name, wb.SiteHealth().SiteState(sites.NewsdayHost), outcome)
	}

	// Stage 1: pristine site, full answer.
	stage("healthy", queryOutcome(t, wb))

	// The site redesigns mid-workload. Cached pre-redesign pages would
	// mask it from this test's first post-redesign query, so drop them
	// (in production the cache ages out on MaxAge).
	rd.Activate()
	wb.Cache().Clear()

	// Stage 2: first drift observation — answer degrades, site is suspect.
	stage("first drift", queryOutcome(t, wb))

	// Stage 3: second observation confirms; quarantine + background repair.
	stage("second drift", queryOutcome(t, wb))

	// Quiescent point: every launched repair has finished.
	wb.SiteHealth().Wait()

	// Stage 4: repaired map hot-swapped in; full answer is back.
	stage("healed", queryOutcome(t, wb))
	fmt.Fprintf(&sb, "attempts=%d\n", wb.SiteHealth().Attempts(sites.NewsdayHost))
	return sb.String()
}

// TestSelfHealEndToEnd is the acceptance test for the self-healing loop:
// a site redesign mid-workload degrades queries as drift (never an
// error), two observations quarantine the site and launch exactly one
// background remap, the repaired map is swapped in atomically, and
// subsequent queries return the full pre-redesign answer.
func TestSelfHealEndToEnd(t *testing.T) {
	wb, rd := selfHealWebbase(t, 4,
		web.Rewrite{Old: ">Automobiles<", New: ">Cars and Trucks<"})

	healthyRes, _, err := wb.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if healthyRes.Degradation.Degraded() {
		t.Fatalf("pristine site degraded: %s", healthyRes.Degradation)
	}
	healthyAnswer := healthyRes.Relation.String()

	rd.Activate()
	wb.Cache().Clear()

	// First post-redesign query: answers, degraded, kind=drift.
	res, qs, err := wb.QueryString(wideCarQuery)
	if err != nil {
		t.Fatalf("query errored instead of degrading: %v", err)
	}
	if qs.DriftDetected == 0 {
		t.Fatal("redesign not detected as drift")
	}
	if !res.Degradation.Degraded() {
		t.Fatal("drifted query reported no degradation")
	}
	for _, f := range res.Degradation.Unavailable {
		if f.Host == sites.NewsdayHost && f.Kind != ur.FailureDrift {
			t.Errorf("newsday failure kind = %q, want drift", f.Kind)
		}
	}
	if got := wb.SiteHealth().SiteState(sites.NewsdayHost); got != health.Suspect {
		t.Fatalf("after one observation newsday = %s, want suspect", got)
	}

	// Second observation confirms the drift and launches the remap.
	if _, _, err := wb.QueryString(wideCarQuery); err != nil {
		t.Fatal(err)
	}
	wb.SiteHealth().Wait()

	if got := wb.SiteHealth().SiteState(sites.NewsdayHost); got != health.Healthy {
		t.Fatalf("after repair newsday = %s, want healthy", got)
	}
	if got := wb.SiteHealth().Attempts(sites.NewsdayHost); got != 0 {
		t.Errorf("attempts counter not reset after successful repair: %d", got)
	}
	if v, _ := wb.Registry.MapVersion("newsday"); v != 2 {
		t.Errorf("newsday map version = %d, want 2 (one hot-swap)", v)
	}

	// Recovered: the full answer is back, byte for byte, against the
	// redesigned site — and without another remap.
	healedRes, qs, err := wb.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if healedRes.Degradation.Degraded() {
		t.Fatalf("healed query still degraded: %s", healedRes.Degradation)
	}
	if qs.DriftDetected != 0 {
		t.Errorf("healed query still detects drift: %d", qs.DriftDetected)
	}
	if got := healedRes.Relation.String(); got != healthyAnswer {
		t.Errorf("healed answer differs from the pre-redesign answer\n--- before ---\n%s\n--- after ---\n%s",
			healthyAnswer, got)
	}

	m := wb.Metrics().Snapshot()
	if got := m.Counters["site_drift_detected_total"]; got < 2 {
		t.Errorf("site_drift_detected_total = %d, want >= 2", got)
	}
	if got := m.Counters["remaps_started_total"]; got != 1 {
		t.Errorf("remaps_started_total = %d, want exactly 1", got)
	}
	if got := m.Counters["remaps_succeeded_total"]; got != 1 {
		t.Errorf("remaps_succeeded_total = %d, want 1", got)
	}
	if got := m.Gauges["sites_quarantined"]; got != 0 {
		t.Errorf("sites_quarantined gauge = %d after recovery", got)
	}
}

// TestSelfHealUnfixableSiteBoundsRepairs: a redesign the repair walk
// cannot express (a renamed extraction header — navigation checks clean
// but the map answers nothing) burns exactly MaxRepairAttempts remap
// attempts, then the site parks in quarantine and queries keep answering
// degraded instead of remap-looping a dead site.
func TestSelfHealUnfixableSiteBoundsRepairs(t *testing.T) {
	wb, rd := selfHealWebbase(t, 4,
		web.Rewrite{Old: ">Price<", New: ">Asking<"})
	if _, _, err := wb.QueryString(wideCarQuery); err != nil {
		t.Fatal(err)
	}
	rd.Activate()
	wb.Cache().Clear()

	// Two observations quarantine the site and launch the doomed repair.
	for i := 0; i < 2; i++ {
		if _, _, err := wb.QueryString(wideCarQuery); err != nil {
			t.Fatalf("query %d errored instead of degrading: %v", i, err)
		}
	}
	wb.SiteHealth().Wait()

	if got := wb.SiteHealth().SiteState(sites.NewsdayHost); got != health.Quarantined {
		t.Fatalf("unfixable site state = %s, want quarantined", got)
	}
	if got := wb.SiteHealth().Attempts(sites.NewsdayHost); got != 3 {
		t.Errorf("repair attempts = %d, want exactly MaxRepairAttempts (3)", got)
	}
	m := wb.Metrics().Snapshot()
	if got := m.Counters["remaps_started_total"]; got != 3 {
		t.Errorf("remaps_started_total = %d, want 3", got)
	}
	if got := m.Counters["remaps_succeeded_total"]; got != 0 {
		t.Errorf("remaps_succeeded_total = %d, want 0", got)
	}

	// Further queries answer degraded from the quarantine short-circuit —
	// without touching the site and without relaunching repair.
	res, _, err := wb.QueryString(wideCarQuery)
	if err != nil {
		t.Fatalf("post-exhaustion query errored: %v", err)
	}
	if !res.Degradation.Degraded() {
		t.Fatal("post-exhaustion query not degraded")
	}
	wb.SiteHealth().Wait()
	if got := wb.Metrics().Snapshot().Counters["remaps_started_total"]; got != 3 {
		t.Errorf("exhausted site relaunched repair: remaps_started_total = %d", got)
	}
	if v, _ := wb.Registry.MapVersion("newsday"); v != 1 {
		t.Errorf("failed repairs moved the map version to %d", v)
	}
}

// TestSelfHealDeterministicAcrossWorkers: the entire lifecycle — detect,
// quarantine, repair, recover — produces byte-identical observable
// outcomes at Workers=1 and Workers=8. Drift observations are counted
// after evaluation, quarantine snapshots are taken at query start, and
// the repair worker runs between queries (Wait), so nothing observable
// depends on goroutine interleaving. Run with -race.
func TestSelfHealDeterministicAcrossWorkers(t *testing.T) {
	seq := selfHealSequence(t, 1)
	if par := selfHealSequence(t, 8); par != seq {
		t.Fatalf("self-heal outcome differs from sequential\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			seq, par)
	}
	if again := selfHealSequence(t, 1); again != seq {
		t.Fatalf("sequential self-heal not self-consistent\n--- first ---\n%s\n--- second ---\n%s",
			seq, again)
	}
}
