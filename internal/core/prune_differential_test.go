package core

import (
	"context"
	"fmt"
	"testing"

	"webbase/internal/apartments"
	"webbase/internal/sites"
	"webbase/internal/ur"
)

// The differential property suite behind Config.Prune: for a corpus of
// query shapes (selection constants present and absent, ORDER BY, LIMIT
// 0/1/n, dependent joins, statically unsatisfiable clauses), the pruned
// evaluation must be observationally identical to the unpruned one —
// byte-identical answer relation, skipped objects, degradation report and
// stream deliveries — at Workers=1 and Workers=8, while never fetching
// more pages and fetching strictly fewer on the seeded cases where
// pruning provably bites.

type pruneDiffDomain struct {
	name  string
	build func(cfg Config) (*Webbase, error)
}

func pruneDiffDomains() []pruneDiffDomain {
	return []pruneDiffDomain{
		{
			name: "usedcars",
			build: func(cfg Config) (*Webbase, error) {
				cfg.Fetcher = sites.BuildWorld().Server
				return New(cfg)
			},
		},
		{
			name: "apartments",
			build: func(cfg Config) (*Webbase, error) {
				cfg.Fetcher = apartments.BuildWorld().Server
				return NewDomain(cfg, Domain{
					Registry: apartments.Registry,
					Logical:  apartments.Logical,
					UR:       apartments.UR,
				})
			},
		},
	}
}

// pruneDiffCorpus is the generated query corpus. wantStrict marks the
// seeded cases where pruning must fetch strictly fewer pages at
// Workers=1 — a statically unsatisfiable clause (no access is relevant)
// and a LIMIT already satisfied by the first plan-order objects.
var pruneDiffCorpus = map[string][]struct {
	name       string
	query      string
	wantStrict bool
}{
	"usedcars": {
		{name: "no-where", query: "SELECT Make, Model, Year, Price"},
		{name: "eq-constant", query: "SELECT Make, Model, Safety WHERE Make = 'honda'"},
		{name: "dependent-join", query: "SELECT Make, Model, Year, Price, BBPrice " +
			"WHERE Make = 'ford' AND Model = 'escort' AND Condition = 'good' AND Price < BBPrice"},
		{name: "wide", query: "SELECT Make, Model, Year, Price, BBPrice, Contact " +
			"WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' " +
			"AND Condition = 'good' AND Price < BBPrice"},
		{name: "order-by", query: "SELECT Make, Model, Price WHERE Make = 'ford' ORDER BY Price DESC"},
		{name: "order-by-limit", query: "SELECT Make, Model, Price WHERE Make = 'ford' " +
			"ORDER BY Price LIMIT 2"},
		{name: "order-discharged-limit", query: "SELECT Make, Model, Price WHERE Make = 'jaguar' " +
			"ORDER BY Make LIMIT 2"},
		{name: "limit-zero", query: "SELECT Make, Model WHERE Make = 'bmw' LIMIT 0"},
		{name: "limit-one", query: "SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 1",
			wantStrict: true},
		{name: "limit-n", query: "SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 3",
			wantStrict: true},
		{name: "unsat-eq", query: "SELECT Make, Model WHERE Make = 'jaguar' AND Make = 'ford'",
			wantStrict: true},
		{name: "unsat-range", query: "SELECT Make, Model, Year WHERE Make = 'ford' " +
			"AND Year >= 1995 AND Year <= 1992", wantStrict: true},
		{name: "range-sat", query: "SELECT Make, Model, Year WHERE Year >= 1990 AND Year <= 1999"},
	},
	"apartments": {
		{name: "dependent-join", query: "SELECT Neighborhood, Rent, MedianRent, Contact " +
			"WHERE Borough = 'brooklyn' AND Bedrooms = 2 AND Rent < MedianRent"},
		{name: "order-by-limit", query: "SELECT Neighborhood, Rent WHERE Borough = 'queens' " +
			"AND Bedrooms = 1 ORDER BY Rent LIMIT 2"},
		{name: "unsat-eq", query: "SELECT Neighborhood, Rent WHERE Borough = 'brooklyn' " +
			"AND Borough = 'queens'", wantStrict: true},
	},
}

// renderOutcome flattens everything a caller can observe about a buffered
// query: the answer bytes, the skipped objects, the degradation report.
func renderOutcome(res *ur.Result) string {
	out := res.Relation.String() + "\nskipped: " + fmt.Sprint(res.Skipped)
	if res.Degradation != nil {
		out += "\ndegraded: " + res.Degradation.String()
	}
	return out
}

// renderDeliveries flattens a stream's delivery sequence.
func renderDeliveries(ds []ur.ObjectDelivery) string {
	out := ""
	for _, d := range ds {
		out += fmt.Sprintf("#%d %v tuples=%v", d.Index, d.Object, d.Tuples)
		if d.Failure != nil {
			out += fmt.Sprintf(" failure=%v", *d.Failure)
		}
		if len(d.Skipped) > 0 {
			out += fmt.Sprintf(" skipped=%v", d.Skipped)
		}
		out += "\n"
	}
	return out
}

func TestPruneDifferential(t *testing.T) {
	for _, dom := range pruneDiffDomains() {
		dom := dom
		t.Run(dom.name, func(t *testing.T) {
			sawStrict := false
			for _, tc := range pruneDiffCorpus[dom.name] {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					type outcome struct {
						rendered string
						pages    int64
					}
					// workers × prune matrix, every cell on a fresh webbase
					// so caches cannot leak savings across runs.
					run := func(workers int, prune bool) outcome {
						wb, err := dom.build(Config{Workers: workers, Prune: prune})
						if err != nil {
							t.Fatal(err)
						}
						res, qs, err := wb.QueryString(tc.query)
						if err != nil {
							t.Fatalf("workers=%d prune=%v: %v", workers, prune, err)
						}
						if prune {
							var byReason int64
							for _, n := range qs.PrunedByReason {
								byReason += n
							}
							if byReason != qs.PrunedFetches {
								t.Errorf("PrunedByReason sums to %d, PrunedFetches=%d",
									byReason, qs.PrunedFetches)
							}
						} else if qs.PrunedFetches != 0 {
							t.Errorf("pruning disabled but PrunedFetches=%d", qs.PrunedFetches)
						}
						return outcome{rendered: renderOutcome(res), pages: qs.Pages}
					}
					base := run(1, false)
					for _, cell := range []struct {
						workers int
						prune   bool
					}{{1, true}, {8, false}, {8, true}} {
						got := run(cell.workers, cell.prune)
						if got.rendered != base.rendered {
							t.Errorf("workers=%d prune=%v diverges from workers=1 prune=off\ngot:\n%s\nwant:\n%s",
								cell.workers, cell.prune, got.rendered, base.rendered)
						}
					}
					// Fetch economics at the deterministic worker count:
					// pruning never fetches more, and strictly fewer on the
					// seeded cases.
					pruned := run(1, true)
					if pruned.pages > base.pages {
						t.Errorf("pruning fetched more pages: %d > %d", pruned.pages, base.pages)
					}
					if tc.wantStrict {
						if pruned.pages >= base.pages {
							t.Errorf("seeded case: want strictly fewer pages, got %d vs %d",
								pruned.pages, base.pages)
						} else {
							sawStrict = true
						}
					}
				})
			}
			if !sawStrict && !t.Failed() {
				t.Error("no seeded case showed a strict fetch reduction")
			}
		})
	}
}

// TestPruneDifferentialStream repeats the differential over the streaming
// interface: the delivery sequence (plan-order objects for streamable
// queries, the single buffered terminal delivery for ORDER BY / LIMIT
// ones) must be byte-identical with pruning on and off at both worker
// counts.
func TestPruneDifferentialStream(t *testing.T) {
	for _, dom := range pruneDiffDomains() {
		dom := dom
		t.Run(dom.name, func(t *testing.T) {
			for _, tc := range pruneDiffCorpus[dom.name] {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					run := func(workers int, prune bool) string {
						wb, err := dom.build(Config{Workers: workers, Prune: prune})
						if err != nil {
							t.Fatal(err)
						}
						q, err := ur.ParseQuery(wb.UR, tc.query)
						if err != nil {
							t.Fatal(err)
						}
						var ds []ur.ObjectDelivery
						res, _, err := wb.QueryStream(context.Background(), q,
							func(d ur.ObjectDelivery) { ds = append(ds, d) })
						if err != nil {
							t.Fatalf("workers=%d prune=%v: %v", workers, prune, err)
						}
						return renderDeliveries(ds) + "---\n" + renderOutcome(res)
					}
					base := run(1, false)
					for _, cell := range []struct {
						workers int
						prune   bool
					}{{1, true}, {8, false}, {8, true}} {
						if got := run(cell.workers, cell.prune); got != base {
							t.Errorf("stream workers=%d prune=%v diverges\ngot:\n%s\nwant:\n%s",
								cell.workers, cell.prune, got, base)
						}
					}
				})
			}
		})
	}
}
