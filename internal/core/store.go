package core

// The webbase side of the durable state tier: persist-on-transition hooks
// and boot-time restores for the three durable tiers (pages are handled
// inline by store.PageTier behind web.Cache; this file owns maps, breaker
// and health). Every restore path tolerates missing or corrupt state by
// falling back cold — a broken state dir may never fail assembly or a
// query — and payload-level decode failures are counted through
// Store.CountCorrupt so they land in the same store_corrupt_total{tier=...}
// metric as file-level ones.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"webbase/internal/health"
	"webbase/internal/navmap"
	"webbase/internal/store"
	"webbase/internal/vps"
	"webbase/internal/web"
)

// Store tier names.
const (
	tierMaps    = "maps"
	tierBreaker = "breaker"
	tierHealth  = "health"
)

// Single-record keys for the snapshot tiers.
const (
	breakerKey = "circuits"
	healthKey  = "sites"
)

// persistMap writes a freshly repaired, already-swapped map. The record's
// generation field carries the map version, so a restore re-installs the
// override at the version it was healed at. A swap replaces the previous
// version's record in place — map records are keyed by relation name —
// and the superseded version counts as a map-tier eviction.
func (wb *Webbase) persistMap(name string, version int, m *navmap.Map) {
	if wb.store == nil {
		return
	}
	data, err := navmap.EncodeMap(m)
	if err != nil {
		return
	}
	if _, prev, err := wb.store.Get(tierMaps, name); err == nil && prev != uint64(version) {
		wb.store.CountEvicted(tierMaps)
	}
	wb.store.Put(tierMaps, name, uint64(version), data)
}

// restoreMaps installs every persisted repaired map as a registry
// override at boot. A map that fails decoding, validation or the schema
// check changes nothing and counts as corruption — the relation simply
// serves from its base map until the next repair. Boot doubles as the
// map tier's GC pass: records that can never be restored again — a
// relation this domain no longer serves, an undecodable payload — are
// deleted rather than rescanned forever, counted as map-tier evictions
// (corrupt ones were already counted as corruption too).
func (wb *Webbase) restoreMaps() {
	if wb.store == nil {
		return
	}
	wb.store.Scan(tierMaps, func(key string, gen uint64, payload []byte) {
		m, err := navmap.DecodeMap(payload)
		if err != nil {
			wb.store.CountCorrupt(tierMaps)
			wb.gcRecord(tierMaps, key)
			return
		}
		if err := wb.Registry.RestoreMap(key, m, int(gen)); err != nil {
			if errors.Is(err, vps.ErrUnknownRelation) {
				wb.gcRecord(tierMaps, key)
				return
			}
			wb.store.CountCorrupt(tierMaps)
		}
	})
}

// persistBreaker snapshots the open circuits. Called from the breaker's
// OnChange hook (outside its locks) on every trip and close, so the
// durable view tracks transitions, not a shutdown-only flush. An empty
// snapshot — every circuit closed again — carries nothing a cold boot
// wouldn't assume, so the stale record is GCed instead of rewritten.
func (wb *Webbase) persistBreaker() {
	if wb.store == nil || wb.breaker == nil {
		return
	}
	snap := wb.breaker.Snapshot()
	if len(snap) == 0 {
		wb.gcRecord(tierBreaker, breakerKey)
		return
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return
	}
	wb.store.Put(tierBreaker, breakerKey, 0, data)
}

// restoreBreaker pre-populates open circuits at boot: a restarted process
// fast-fails a known-dead host immediately instead of re-earning the
// verdict through a fresh failure window.
func (wb *Webbase) restoreBreaker() {
	if wb.store == nil || wb.breaker == nil {
		return
	}
	payload, _, err := wb.store.Get(tierBreaker, breakerKey)
	if err != nil {
		return // missing = cold; corrupt was already counted by Get
	}
	var snap map[string]web.BreakerSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		wb.store.CountCorrupt(tierBreaker)
		return
	}
	if len(snap) == 0 {
		// A stale record from before delete-on-empty: GC it at boot.
		wb.gcRecord(tierBreaker, breakerKey)
		return
	}
	wb.breaker.Restore(snap)
}

// persistHealth snapshots site health. Called from the tracker's OnChange
// hook (outside its lock) on every transition. Like the breaker tier, an
// empty snapshot GCs the record instead of persisting emptiness.
func (wb *Webbase) persistHealth() {
	if wb.store == nil || wb.health == nil {
		return
	}
	snap := wb.health.Snapshot()
	if len(snap) == 0 {
		wb.gcRecord(tierHealth, healthKey)
		return
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return
	}
	wb.store.Put(tierHealth, healthKey, 0, data)
}

// restoreHealth resumes persisted quarantines at boot (attempt counts
// preserved; exhausted sites stay terminal apart from slow recovery
// probes). May relaunch repair workers, exactly as the original process
// would have after the same transitions.
func (wb *Webbase) restoreHealth() {
	if wb.store == nil || wb.health == nil {
		return
	}
	payload, _, err := wb.store.Get(tierHealth, healthKey)
	if err != nil {
		return
	}
	var snap map[string]health.SiteSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		wb.store.CountCorrupt(tierHealth)
		return
	}
	if len(snap) == 0 {
		wb.gcRecord(tierHealth, healthKey)
		return
	}
	wb.health.Restore(snap)
}

// gcRecord deletes one durable record that no longer carries information
// — a superseded or unrestorable map, an empty snapshot — and counts the
// eviction, but only when a record was actually present: the common case
// (nothing there) must stay metric-silent so store_evicted_total means
// what it says.
func (wb *Webbase) gcRecord(tier, key string) {
	if _, _, err := wb.store.Get(tier, key); store.IsNotExist(err) {
		return
	}
	if wb.store.Delete(tier, key) == nil {
		wb.store.CountEvicted(tier)
	}
}

// ConsistencyToken fingerprints the webbase state a streamed answer is a
// function of: the page-cache clear-generation and every relation's
// navigation-map version and fingerprint. Two queries observing the same
// token ran against the same web view, so a stream interrupted under one
// token can be resumed by re-execution under the same token and stitch to
// a byte-identical event sequence; a changed token means the answers
// could differ and the resume must be refused rather than spliced.
//
// With a state dir the durable page-tier generation is used (it survives
// restarts, so a warm-restarted process keeps its token); without one the
// in-memory cache generation stands in, and restored map versions default
// back to 1 — a cold restart deliberately changes the token, because a
// process that forgot its healed maps can no longer promise the same
// answer bytes.
func (wb *Webbase) ConsistencyToken() string {
	h := sha256.New()
	gen := uint64(0)
	switch {
	case wb.pageTier != nil:
		gen = wb.pageTier.Generation()
	case wb.cache != nil:
		gen = wb.cache.Generation()
	}
	fmt.Fprintf(h, "cache-gen=%d\n", gen)
	// Relations() is sorted by name, so the digest is deterministic.
	for _, ri := range wb.Registry.Relations() {
		v, fp := wb.Registry.MapVersion(ri.Name)
		fmt.Fprintf(h, "map=%s:%d:%s\n", ri.Name, v, fp)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:12])
}

// FlushState forces every dirty durable-tier write to disk: queued page
// writes, plus fresh breaker and health snapshots. It is the
// graceful-shutdown flush — and a no-op without Config.StateDir.
func (wb *Webbase) FlushState() {
	if wb.store == nil {
		return
	}
	wb.persistBreaker()
	wb.persistHealth()
	if wb.pageTier != nil {
		wb.pageTier.Flush()
	}
}

// Close releases the webbase's background resources: it ends health
// recovery probe loops, flushes durable state and stops the page tier's
// writer. Queries must have drained first. Safe without Config.StateDir
// (only the health shutdown applies) and safe to call more than once.
func (wb *Webbase) Close() {
	wb.health.Close()
	wb.FlushState()
	if wb.pageTier != nil {
		wb.pageTier.Close()
	}
}
