package core

import (
	"sync"
	"testing"

	"webbase/internal/sites"
	"webbase/internal/ur"
)

var pruneFuzzOnce sync.Once
var pruneFuzzOff, pruneFuzzOn *Webbase

func pruneFuzzSystems(tb testing.TB) (*Webbase, *Webbase) {
	pruneFuzzOnce.Do(func() {
		var err error
		pruneFuzzOff, err = New(Config{Fetcher: sites.BuildWorld().Server, Workers: 2})
		if err != nil {
			tb.Fatal(err)
		}
		pruneFuzzOn, err = New(Config{Fetcher: sites.BuildWorld().Server, Workers: 2, Prune: true})
		if err != nil {
			tb.Fatal(err)
		}
	})
	return pruneFuzzOff, pruneFuzzOn
}

// FuzzPrunedQuery is the pruning safety net beyond the hand-written
// corpus: for any query text that parses and evaluates over the healthy
// simulated Web, the pruned answer must be byte-identical to the unpruned
// one — never more tuples than LIMIT allows, never fewer than the
// unpruned evaluation found. The two systems are built once and shared
// across iterations; answers do not depend on cache state, so warmth
// cannot mask a divergence.
func FuzzPrunedQuery(f *testing.F) {
	seeds := []string{
		"SELECT Make, Model, Year, Price WHERE Make = 'ford'",
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 1",
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 3",
		"SELECT Make, Model WHERE Make = 'jaguar' AND Make = 'ford'",
		"SELECT Make, Model, Year WHERE Make = 'ford' AND Year >= 1995 AND Year <= 1992",
		"SELECT Make, Model, Price WHERE Make = 'jaguar' ORDER BY Make LIMIT 2",
		"SELECT Make, Model, Price WHERE Make = 'ford' ORDER BY Price DESC LIMIT 2",
		"SELECT Make, Model, Year, Price, BBPrice, Contact WHERE Make = 'jaguar' AND Year >= 1993 " +
			"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice",
		"SELECT Make, Model, Safety WHERE Make = 'honda' LIMIT 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		off, on := pruneFuzzSystems(t)
		q, err := ur.ParseQuery(off.UR, text)
		if err != nil {
			return // not a runnable query; the parser fuzzer owns this space
		}
		resOff, _, errOff := off.Query(q)
		resOn, qsOn, errOn := on.Query(q)
		// Pruning only removes fetches, so it can never introduce a
		// failure. The converse is legal: a query whose every maximal
		// object would fail (e.g. a nonsense constant that breaks
		// navigation on all sites) errors unpruned, but when the clause is
		// provably unsatisfiable the pruned run skips those doomed
		// accesses and proves the empty answer instead — that is the
		// pruned-before-failure semantics, and it requires pruning to
		// actually have fired.
		if errOn != nil && errOff == nil {
			t.Fatalf("%q: pruning introduced an error: %v", text, errOn)
		}
		if errOff != nil {
			if errOn == nil && qsOn.PrunedFetches == 0 {
				t.Fatalf("%q: error divergence without any pruning decision: off=%v", text, errOff)
			}
			return
		}
		if q.Limit > 0 && resOn.Relation.Len() > q.Limit {
			t.Fatalf("%q: pruned answer exceeds LIMIT %d: %d tuples", text, q.Limit, resOn.Relation.Len())
		}
		if resOn.Relation.String() != resOff.Relation.String() {
			t.Fatalf("%q: pruned answer diverges\n--- prune=off ---\n%s\n--- prune=on ---\n%s",
				text, resOff.Relation, resOn.Relation)
		}
	})
}
