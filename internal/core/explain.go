package core

import (
	"fmt"
	"strings"

	"webbase/internal/algebra"
	"webbase/internal/ur"
)

// Explain renders how a universal-relation query would be answered,
// without fetching anything: the maximal objects and minimal covers the
// planner chose, each object's optimized algebra expression, the binding
// sets of every logical relation involved, and the VPS handles those
// bindings resolve to. It is the paper's whole pipeline made visible.
func (wb *Webbase) Explain(q ur.Query) (string, error) {
	plan, err := wb.UR.Plan(q)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", q)
	fmt.Fprintf(&sb, "universal relation: %s (%d attributes, %d maximal objects)\n",
		wb.UR.Name, len(wb.UR.Hierarchy.AllAttrs()), len(wb.UR.MaximalObjects()))

	logicalSeen := map[string]bool{}
	for i, obj := range plan.Objects {
		fmt.Fprintf(&sb, "\nobject %d: {%s}\n", i+1, strings.Join(obj.Object, ", "))
		fmt.Fprintf(&sb, "  minimal cover: %s\n", strings.Join(obj.Relations, " ⋈ "))
		opt := algebra.Optimize(obj.Expr, wb.Logical)
		fmt.Fprintf(&sb, "  expression:    %s\n", opt)
		for _, r := range obj.Relations {
			logicalSeen[wb.UR.LogicalName(r)] = true
		}
	}

	sb.WriteString("\nlogical relations involved:\n")
	for _, v := range wb.Logical.Views() {
		if !logicalSeen[v.Name] {
			continue
		}
		bs, err := wb.Logical.Bindings(v.Name)
		if err != nil {
			return "", err
		}
		alts := make([]string, len(bs))
		for i, b := range bs {
			alts[i] = b.String()
		}
		fmt.Fprintf(&sb, "  %-12s needs %s\n", v.Name, strings.Join(alts, " or "))
		fmt.Fprintf(&sb, "  %-12s   ≡   %s\n", "", v.Def)
	}

	sb.WriteString("\nVPS handles behind those views:\n")
	for _, ri := range wb.Registry.Relations() {
		used := false
		for _, v := range wb.Logical.Views() {
			if logicalSeen[v.Name] && strings.Contains(v.Def.String(), ri.Name) {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		for _, h := range ri.Handles {
			fmt.Fprintf(&sb, "  %s\n", h)
		}
	}
	return sb.String(), nil
}
