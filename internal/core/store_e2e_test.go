package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webbase/internal/health"
	"webbase/internal/navmap"
	"webbase/internal/sites"
	"webbase/internal/store"
	"webbase/internal/web"
)

// The restart-survival acceptance suite for the durable state tier: a
// webbase killed and rebuilt over the same -state-dir resumes with warm
// pages, healed maps and breaker/health verdicts — and a state dir
// corrupted behind its back degrades to a cold start with a metric,
// never a failed query.

// durableCarWebbase assembles a used-cars webbase over dir with the
// self-healing knobs the selfheal tests use.
func durableCarWebbase(t *testing.T, dir string, fetcher web.Fetcher, mut func(*Config)) *Webbase {
	t.Helper()
	cfg := Config{
		Fetcher:           fetcher,
		Workers:           1,
		StateDir:          dir,
		DriftThreshold:    2,
		MaxRepairAttempts: 3,
		RepairBackoff:     time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	wb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wb.Close)
	return wb
}

func TestStoreRestartSurvivalWarmPages(t *testing.T) {
	dir := t.TempDir()
	wb1 := durableCarWebbase(t, dir, sites.BuildWorld().Server, nil)
	res1, qs1, err := wb1.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qs1.Pages == 0 {
		t.Fatal("cold query fetched no pages")
	}
	answer := renderOutcome(res1)
	wb1.Close()

	// Restart: every page the first process fetched is served from the
	// disk tier — the same answer with zero network fetches.
	wb2 := durableCarWebbase(t, dir, sites.BuildWorld().Server, nil)
	res2, qs2, err := wb2.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qs2.Pages != 0 {
		t.Errorf("restarted query fetched %d pages from the network, want 0", qs2.Pages)
	}
	if qs2.CacheHits == 0 {
		t.Error("restarted query recorded no cache hits")
	}
	if got := renderOutcome(res2); got != answer {
		t.Errorf("restarted answer differs\n--- cold ---\n%s\n--- warm restart ---\n%s", answer, got)
	}
}

func TestStoreRestartSurvivalHealedMap(t *testing.T) {
	dir := t.TempDir()
	rd1 := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Automobiles<", New: ">Cars and Trucks<"}}},
	}
	wb1 := durableCarWebbase(t, dir, rd1, nil)

	if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
		t.Fatal(err)
	}
	rd1.Activate()
	wb1.Cache().Clear()
	for i := 0; i < 2; i++ { // two drift observations quarantine + repair
		if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
			t.Fatal(err)
		}
	}
	wb1.SiteHealth().Wait()
	if v, _ := wb1.Registry.MapVersion("newsday"); v != 2 {
		t.Fatalf("site not healed before restart: map version %d", v)
	}
	healedRes, _, err := wb1.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	healedAnswer := renderOutcome(healedRes)
	wb1.Close()

	// Restart against the still-redesigned site: the repaired map is
	// restored as an override at boot, so the full answer comes back with
	// no drift detection and no re-repair.
	rd2 := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Automobiles<", New: ">Cars and Trucks<"}}},
	}
	rd2.Activate()
	wb2 := durableCarWebbase(t, dir, rd2, nil)
	if v, _ := wb2.Registry.MapVersion("newsday"); v != 2 {
		t.Fatalf("restored map version = %d, want 2 at boot", v)
	}
	res, qs, err := wb2.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qs.DriftDetected != 0 {
		t.Errorf("restored map still drifts: %d", qs.DriftDetected)
	}
	if got := renderOutcome(res); got != healedAnswer {
		t.Errorf("restarted healed answer differs\n--- healed ---\n%s\n--- restart ---\n%s",
			healedAnswer, got)
	}
	wb2.SiteHealth().Wait()
	if got := wb2.Metrics().Snapshot().Counters["remaps_started_total"]; got != 0 {
		t.Errorf("restart re-repaired a healed site: remaps_started_total = %d", got)
	}
}

func TestStoreRestartSurvivalQuarantine(t *testing.T) {
	dir := t.TempDir()
	rd1 := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Price<", New: ">Asking<"}}},
	}
	wb1 := durableCarWebbase(t, dir, rd1, nil)
	if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
		t.Fatal(err)
	}
	rd1.Activate()
	wb1.Cache().Clear()
	for i := 0; i < 2; i++ {
		if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
			t.Fatal(err)
		}
	}
	wb1.SiteHealth().Wait() // repair exhausts: the rewrite is unfixable
	if got := wb1.SiteHealth().Attempts(sites.NewsdayHost); got != 3 {
		t.Fatalf("attempts before restart = %d, want 3", got)
	}
	wb1.Close()

	// Restart: the exhausted quarantine is restored at boot. The known-
	// dead site is not re-probed — no repair attempts, no fetches to the
	// host — and queries answer degraded from the short-circuit.
	rd2 := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Price<", New: ">Asking<"}}},
	}
	rd2.Activate()
	wb2 := durableCarWebbase(t, dir, rd2, nil)
	if got := wb2.SiteHealth().SiteState(sites.NewsdayHost); got != health.Quarantined {
		t.Fatalf("restored state = %s, want quarantined", got)
	}
	if got := wb2.SiteHealth().Attempts(sites.NewsdayHost); got != 3 {
		t.Errorf("restart reset the attempt budget: %d, want 3", got)
	}
	res, _, err := wb2.QueryString(wideCarQuery)
	if err != nil {
		t.Fatalf("post-restart query errored instead of degrading: %v", err)
	}
	if !res.Degradation.Degraded() {
		t.Error("post-restart query not degraded despite restored quarantine")
	}
	wb2.SiteHealth().Wait()
	if got := wb2.Metrics().Snapshot().Counters["remaps_started_total"]; got != 0 {
		t.Errorf("restart re-probed an exhausted site: remaps_started_total = %d", got)
	}
	if got := wb2.Stats().PerHost()[sites.NewsdayHost]; got != 0 {
		t.Errorf("restart fetched %d pages from the quarantined host", got)
	}
}

// downHost fails every fetch to one host and passes the rest through.
func downHost(host string, inner web.Fetcher) web.Fetcher {
	return web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if web.HostOf(req.URL) == host {
			return nil, web.MarkOutage(&web.HostError{Host: host, Err: errors.New("connection refused")})
		}
		return inner.Fetch(req)
	})
}

func TestStoreRestartSurvivalBreaker(t *testing.T) {
	dir := t.TempDir()
	bcfg := &web.BreakerConfig{Window: 1, MinSamples: 1, Cooldown: time.Hour}
	wb1 := durableCarWebbase(t, dir, downHost(sites.NewsdayHost, sites.BuildWorld().Server),
		func(cfg *Config) { cfg.Breaker = bcfg })
	if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
		t.Fatal(err)
	}
	if got := wb1.Breaker().State(sites.NewsdayHost); got != web.BreakerOpen {
		t.Fatalf("circuit after failing query = %v, want open", got)
	}
	wb1.Close()

	// Restart: the open circuit is restored before traffic, so the dead
	// host is rejected without a single network fetch re-earning the
	// verdict.
	wb2 := durableCarWebbase(t, dir, downHost(sites.NewsdayHost, sites.BuildWorld().Server),
		func(cfg *Config) { cfg.Breaker = bcfg })
	if got := wb2.Breaker().State(sites.NewsdayHost); got != web.BreakerOpen {
		t.Fatalf("restored circuit = %v, want open at boot", got)
	}
	res, qs, err := wb2.QueryString(wideCarQuery)
	if err != nil {
		t.Fatalf("post-restart query errored: %v", err)
	}
	if !res.Degradation.Degraded() {
		t.Error("query over restored-open circuit not degraded")
	}
	if qs.BreakerRejects == 0 {
		t.Error("no breaker rejects recorded after restore")
	}
	if got := wb2.Stats().PerHost()[sites.NewsdayHost]; got != 0 {
		t.Errorf("restored-open circuit let %d fetches reach the host", got)
	}
}

// TestStoreCorruptionInjectionE2E: every record file in a populated state
// dir is corrupted (rotating truncation, bit-flip, version-skew, and
// whole-file garbage), then a webbase boots over the wreckage. The
// contract: boot succeeds, queries succeed (degrading at worst), each
// touched tier counts corruption — and nothing panics.
func TestStoreCorruptionInjectionE2E(t *testing.T) {
	dir := t.TempDir()
	// Populate all four tiers with live state: pages (healthy fetches),
	// maps (a healed redesign), health (a second, unfixable redesign that
	// exhausts repair), breaker (a downed host's open circuit). Empty
	// snapshots are GCed rather than persisted, so each snapshot tier
	// must hold real evidence at Close for its record file to exist.
	rdHeal := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Automobiles<", New: ">Cars and Trucks<"}}},
	}
	rdBreakAgain := &web.Redesign{
		Inner:    rdHeal,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Price<", New: ">Asking<"}}},
	}
	wb1 := durableCarWebbase(t, dir, downHost(sites.NYTimesHost, rdBreakAgain), func(cfg *Config) {
		cfg.Breaker = &web.BreakerConfig{Window: 1, MinSamples: 1, Cooldown: time.Hour}
	})
	if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
		t.Fatal(err)
	}
	rdHeal.Activate()
	wb1.Cache().Clear()
	for i := 0; i < 2; i++ {
		if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
			t.Fatal(err)
		}
	}
	wb1.SiteHealth().Wait() // heals: the maps tier gets its record
	rdBreakAgain.Activate()
	wb1.Cache().Clear()
	for i := 0; i < 2; i++ {
		if _, _, err := wb1.QueryString(wideCarQuery); err != nil {
			t.Fatal(err)
		}
	}
	wb1.SiteHealth().Wait() // repair exhausts: health keeps its quarantine
	wb1.Close()

	// Corrupt every record file, a different way each time.
	corruptions := []func([]byte) []byte{
		func(d []byte) []byte { return d[:len(d)/2] },
		func(d []byte) []byte {
			if len(d) > 30 {
				d[30] ^= 0x20
			}
			return d
		},
		func(d []byte) []byte { d[5] ^= 0x7F; return d }, // version byte
		func(d []byte) []byte { return []byte("not a record at all") },
	}
	mutated := 0
	tiers := map[string]bool{}
	err := filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || filepath.Ext(path) != ".wbs" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, corruptions[mutated%len(corruptions)](data), 0o644); err != nil {
			return err
		}
		tiers[filepath.Base(filepath.Dir(path))] = true
		mutated++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutated == 0 {
		t.Fatal("no record files found to corrupt")
	}
	for _, tier := range []string{"pages", "maps", "breaker", "health"} {
		if !tiers[tier] {
			t.Fatalf("tier %q produced no record files; corruption sweep covers %v", tier, tiers)
		}
	}

	// Boot over the wreckage, site still redesigned: everything falls
	// back cold — base map, fresh health, cold cache — so the site
	// drifts again, heals again, and answers; never an error.
	rd2 := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {{Old: ">Automobiles<", New: ">Cars and Trucks<"}}},
	}
	rd2.Activate()
	wb2 := durableCarWebbase(t, dir, rd2, func(cfg *Config) {
		cfg.Breaker = &web.BreakerConfig{Window: 8}
	})
	if v, _ := wb2.Registry.MapVersion("newsday"); v != 1 {
		t.Errorf("corrupt map restored anyway: version %d", v)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := wb2.QueryString(wideCarQuery); err != nil {
			t.Fatalf("query %d over corrupted state dir errored: %v", i, err)
		}
	}
	wb2.SiteHealth().Wait()
	snap := wb2.Metrics().Snapshot()
	if snap.Counters["store_corrupt_total"] == 0 {
		t.Error("corruption sweep left store_corrupt_total at 0")
	}
	for _, c := range []string{
		`store_corrupt_total{tier="maps"}`,
		`store_corrupt_total{tier="breaker"}`,
		`store_corrupt_total{tier="health"}`,
		`store_corrupt_total{tier="pages"}`,
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("%s = 0, want > 0", c)
		}
	}
	// The system healed over the wreckage exactly as it would cold.
	res, qs, err := wb2.QueryString(wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation.Degraded() || qs.DriftDetected != 0 {
		t.Errorf("system did not re-heal over corrupted state: degraded=%v drift=%d",
			res.Degradation.Degraded(), qs.DriftDetected)
	}
}

// TestStoreBootGCStaleRecords: boot is the map/snapshot tiers' GC pass.
// A map record no boot can restore (a relation the domain does not
// serve) and empty breaker/health snapshots (what an older binary
// persisted on every calm transition) are deleted at boot and counted in
// store_evicted_total{tier=...} — they would otherwise be rescanned,
// redecoded and refused forever.
func TestStoreBootGCStaleRecords(t *testing.T) {
	dir := t.TempDir()
	wb1 := durableCarWebbase(t, dir, sites.BuildWorld().Server, nil)
	mapData, err := navmap.EncodeMap(wb1.Registry.CurrentMap("newsday"))
	if err != nil {
		t.Fatal(err)
	}
	wb1.Close()

	// Plant the stale records behind the webbase's back, as leftovers
	// from an older deployment would appear.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(tierMaps, "no-such-relation", 2, mapData); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(tierBreaker, breakerKey, 0, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(tierHealth, healthKey, 0, []byte("{}")); err != nil {
		t.Fatal(err)
	}

	// The breaker tier only restores (and GCs) when a breaker is wired.
	wb2 := durableCarWebbase(t, dir, sites.BuildWorld().Server, func(cfg *Config) {
		cfg.Breaker = &web.BreakerConfig{Window: 8}
	})
	snap := wb2.Metrics().Snapshot()
	for _, c := range []string{
		`store_evicted_total{tier="maps"}`,
		`store_evicted_total{tier="breaker"}`,
		`store_evicted_total{tier="health"}`,
	} {
		if got := snap.Counters[c]; got != 1 {
			t.Errorf("%s = %d, want 1", c, got)
		}
	}
	if snap.Counters["store_corrupt_total"] != 0 {
		t.Errorf("boot GC counted stale records as corruption: %d", snap.Counters["store_corrupt_total"])
	}
	for _, rec := range []struct{ tier, key string }{
		{tierMaps, "no-such-relation"}, {tierBreaker, breakerKey}, {tierHealth, healthKey},
	} {
		if _, _, err := wb2.store.Get(rec.tier, rec.key); !store.IsNotExist(err) {
			t.Errorf("stale %s/%s record survived boot GC: %v", rec.tier, rec.key, err)
		}
	}
	// The GCed records changed nothing: a query runs clean.
	if res, _, err := wb2.QueryString(wideCarQuery); err != nil || res.Degradation.Degraded() {
		t.Fatalf("query after boot GC: err=%v degraded", err)
	}
}

// TestStoreUnopenableStateDirIsColdStart: a StateDir that cannot be
// created (a file sits where the directory should be) still assembles,
// runs cold and counts the failure.
func TestStoreUnopenableStateDirIsColdStart(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(blocked, []byte("a file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	wb := durableCarWebbase(t, blocked, sites.BuildWorld().Server, nil)
	res, _, err := wb.QueryString(wideCarQuery)
	if err != nil {
		t.Fatalf("cold-start query errored: %v", err)
	}
	if res.Degradation.Degraded() {
		t.Error("cold start degraded the answer")
	}
	if got := wb.Metrics().Snapshot().Counters[`store_corrupt_total{tier="open"}`]; got != 1 {
		t.Errorf(`store_corrupt_total{tier="open"} = %d, want 1`, got)
	}
}
