package core

import (
	"strings"
	"testing"

	"webbase/internal/apartments"
	"webbase/internal/sites"
	"webbase/internal/trace"
	"webbase/internal/ur"
)

// Golden EXPLAIN ANALYZE renders with pruning on (Workers=1, so the
// pruned spans and counts are deterministic). The apartments query is
// statically unsatisfiable, so every handle invocation the binding
// analysis allows is pruned pre-fetch (pruned=1 spans, zero pages); the
// usedcars query's LIMIT is satisfied by the first plan-order object, so
// the second is skipped outright.

const goldenApartmentsPrunedAnalyze = `query: SELECT Neighborhood, Rent WHERE Borough = brooklyn AND Borough = queens
universal relation: ApartmentUR (8 attributes, 2 maximal objects)
answer: 0 tuples

=== execution (actual) ===
SELECT Neighborhood, Rent WHERE Borough = brooklyn AND Borough = queens invocations=1 tuples=0
  object {Brokered} invocations=1 errors=1
    π[Neighborhood, Rent] invocations=1 errors=1
      σ[Borough = queens] invocations=1 errors=1
        σ[Borough = brooklyn] invocations=1 errors=1
          brokered invocations=1 errors=1
            aptFinder invocations=1 errors=1
              aptFinder (no usable handle) invocations=1 errors=1
  object {Listings} invocations=1 tuples=0
    π[Neighborhood, Rent] invocations=1 tuples=0
      σ[Borough = queens] invocations=1 tuples=0
        σ[Borough = brooklyn] invocations=1 tuples=0
          listings invocations=1 tuples=0
            ∪ʳ invocations=1 tuples=0
              cityRentals invocations=1 tuples=0
                cityRentals{Borough} via cityRentals invocations=1 pruned=1
              π[Borough, Neighborhood, Bedrooms, Rent, Contact] invocations=1 errors=1
                aptFinder invocations=1 errors=1
                  aptFinder (no usable handle) invocations=1 errors=1

skipped objects (binding unsatisfied):
  {Brokered}: logical: populating brokered: algebra: no binding set satisfied by inputs: vps: no handle invocable with the given inputs: relation aptFinder with inputs {Borough} (bindings: {Bedrooms, Borough})

`

// structuralSection cuts an EXPLAIN ANALYZE render at the volatile
// totals footer and strips the time=… fields.
func structuralSection(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "=== totals")
	if i < 0 {
		t.Fatalf("no totals section in:\n%s", out)
	}
	return trace.StripTimings(out[:i])
}

// prunedFooterLine extracts the relevance-pruning footer line.
func prunedFooterLine(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "pruned: ") {
			return line
		}
	}
	return ""
}

func TestExplainAnalyzePrunedGoldenApartments(t *testing.T) {
	wb, err := NewDomain(Config{Fetcher: apartments.BuildWorld().Server, Workers: 1, Prune: true}, Domain{
		Registry: apartments.Registry,
		Logical:  apartments.Logical,
		UR:       apartments.UR,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, "SELECT Neighborhood, Rent WHERE Borough = 'brooklyn' AND Borough = 'queens'")
	if err != nil {
		t.Fatal(err)
	}
	out, err := wb.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := structuralSection(t, out); got != goldenApartmentsPrunedAnalyze {
		t.Errorf("structural render diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
			got, goldenApartmentsPrunedAnalyze)
	}
	if got, want := prunedFooterLine(out), "pruned: 1 access(es) skipped by relevance pruning (unsat-where=1)"; got != want {
		t.Errorf("footer line = %q, want %q", got, want)
	}
	// The clause is statically unsatisfiable: nothing was fetched.
	if !strings.Contains(out, "pages=0 ") {
		t.Errorf("expected zero pages fetched:\n%s", out)
	}
}

func TestExplainAnalyzePrunedGoldenUsedCars(t *testing.T) {
	wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 1, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, "SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := wb.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	structural := structuralSection(t, out)
	// The second plan-order object (the dealer sites) is never launched:
	// its whole span is one pruned=1 line with zero tuples.
	if !strings.Contains(structural, "\n  object {Dealers} invocations=1 pruned=1 tuples=0\n") {
		t.Errorf("missing pruned object span:\n%s", structural)
	}
	// The first object still rendered its full evaluation tree.
	if !strings.Contains(structural, "object {Classifieds}") ||
		!strings.Contains(structural, "newsday{Make} via newsday") {
		t.Errorf("first object's tree missing:\n%s", structural)
	}
	if got, want := prunedFooterLine(out), "pruned: 1 access(es) skipped by relevance pruning (limit=1)"; got != want {
		t.Errorf("footer line = %q, want %q", got, want)
	}
	if !strings.Contains(out, "answer: 1 tuples") {
		t.Errorf("LIMIT 1 answer missing:\n%s", out)
	}
}

// TestPruneMetricsAgreement pins the accounting identity: the
// fetches_pruned_total counter (and its per-reason labels) accumulated by
// the metrics registry must equal the QueryStats.PrunedFetches /
// PrunedByReason sums over the queries that ran — and with pruning off,
// the counter must not even exist, keeping the historical /metrics
// output byte-identical.
func TestPruneMetricsAgreement(t *testing.T) {
	wb, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 1, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' LIMIT 1",
		"SELECT Make, Model WHERE Make = 'jaguar' AND Make = 'ford'",
		wideCarQuery,
	}
	var total int64
	byReason := map[string]int64{}
	for _, text := range queries {
		_, qs, err := wb.QueryString(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		total += qs.PrunedFetches
		for r, n := range qs.PrunedByReason {
			byReason[r] += n
		}
	}
	if total == 0 {
		t.Fatal("corpus pruned nothing; the agreement check is vacuous")
	}
	snap := wb.Metrics().Snapshot()
	if got := snap.Counters["fetches_pruned_total"]; got != total {
		t.Errorf("fetches_pruned_total = %d, QueryStats sum = %d", got, total)
	}
	var labelled int64
	for r, n := range byReason {
		name := `fetches_pruned_total{reason="` + r + `"}`
		if got := snap.Counters[name]; got != n {
			t.Errorf("%s = %d, QueryStats sum = %d", name, snap.Counters[name], n)
		}
		labelled += n
	}
	if labelled != total {
		t.Errorf("per-reason sums (%d) disagree with total (%d)", labelled, total)
	}

	// Pruning off: no pruning counters registered at all.
	off, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range queries {
		if _, _, err := off.QueryString(text); err != nil {
			t.Fatal(err)
		}
	}
	for name := range off.Metrics().Snapshot().Counters {
		if strings.HasPrefix(name, "fetches_pruned_total") {
			t.Errorf("pruning disabled but counter %q registered", name)
		}
	}
}
