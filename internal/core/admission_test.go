package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/trace"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// waitQueueLen polls the gate until its wait queue reaches n.
func waitQueueLen(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		l := len(a.queue)
		a.mu.Unlock()
		if l == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission queue never reached length %d", n)
}

// TestAdmissionGateFIFO pins the queue's service order: queued queries
// are granted the slot strictly in arrival order.
func TestAdmissionGateFIFO(t *testing.T) {
	a := newAdmission(1, 3, trace.NewRegistry(), nil)
	if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.release()
		}(i)
		waitQueueLen(t, a, i+1) // enqueue deterministically, one at a time
	}
	a.release() // hand the slot down the chain
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("service order broke FIFO: got waiter %d, want %d", got, want)
		}
		want++
	}
	if want != 3 {
		t.Fatalf("only %d waiters served", want)
	}
}

// TestAdmissionShedWhenFull: with the gate and queue both full, acquire
// sheds immediately with ErrShedded and counts it.
func TestAdmissionShedWhenFull(t *testing.T) {
	metrics := trace.NewRegistry()
	a := newAdmission(1, 1, metrics, nil)
	if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		if _, err := a.acquire(context.Background(), ClassInteractive); err == nil {
			close(granted)
		}
	}()
	waitQueueLen(t, a, 1)
	if _, err := a.acquire(context.Background(), ClassInteractive); !errors.Is(err, ErrShedded) {
		t.Fatalf("full gate returned %v, want ErrShedded", err)
	}
	if got := metrics.Snapshot().Counters["queries_shed_total"]; got != 1 {
		t.Fatalf("queries_shed_total = %d, want 1", got)
	}
	a.release()
	<-granted
	a.release()
	// Fully drained: the next acquire is immediate.
	if wait, err := a.acquire(context.Background(), ClassInteractive); err != nil || wait != 0 {
		t.Fatalf("drained gate: wait=%v err=%v", wait, err)
	}
}

// TestAdmissionCancelWhileQueued: a queued query whose context is
// cancelled unblocks with ctx.Err(), vacates its queue slot, and leaks
// no executing slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 2, trace.NewRegistry(), nil)
	if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, ClassInteractive)
		res <- err
	}()
	waitQueueLen(t, a, 1)
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	waitQueueLen(t, a, 0) // the abandoned waiter vacated its queue slot
	a.release()
	if wait, err := a.acquire(context.Background(), ClassInteractive); err != nil || wait != 0 {
		t.Fatalf("slot leaked past the cancelled waiter: wait=%v err=%v", wait, err)
	}
}

// TestAdmissionInteractiveEvictsQueuedBatch: with the gate and queue
// full, an arriving interactive query is not shed — it evicts the newest
// queued batch waiter (who gets ErrShedded) and takes the queue slot. The
// shed is attributed to the batch class.
func TestAdmissionInteractiveEvictsQueuedBatch(t *testing.T) {
	metrics := trace.NewRegistry()
	a := newAdmission(1, 2, metrics, nil)
	if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	batchErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := a.acquire(context.Background(), ClassBatch)
			batchErr <- err
		}()
		waitQueueLen(t, a, i+1)
	}
	granted := make(chan struct{})
	go func() {
		if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
			t.Errorf("interactive query shed despite a batch victim: %v", err)
			return
		}
		close(granted)
	}()
	// The eviction is synchronous: the newest batch waiter is gone before
	// the interactive query even starts waiting.
	select {
	case err := <-batchErr:
		if !errors.Is(err, ErrShedded) {
			t.Fatalf("evicted batch waiter got %v, want ErrShedded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no batch waiter was evicted")
	}
	snap := metrics.Snapshot()
	if got := snap.Counters[`queries_shed_total{class="batch"}`]; got != 1 {
		t.Errorf(`queries_shed_total{class="batch"} = %d, want 1`, got)
	}
	if got := snap.Counters["queries_shed_total"]; got != 1 {
		t.Errorf("queries_shed_total = %d, want 1", got)
	}
	// Freed slot goes to the interactive waiter, not the older batch one.
	a.release()
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("interactive waiter not granted the freed slot")
	}
	a.release() // interactive done; the surviving batch waiter runs
	select {
	case err := <-batchErr:
		if err != nil {
			t.Fatalf("surviving batch waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving batch waiter never granted")
	}
	a.release()
}

// TestAdmissionBatchNeverEvicts: a batch query arriving at a full queue
// sheds itself — even when every queued waiter is interactive — and the
// shed is attributed to the batch class. Same-class arrivals never evict
// either (no churn among equals).
func TestAdmissionBatchNeverEvicts(t *testing.T) {
	metrics := trace.NewRegistry()
	a := newAdmission(1, 1, metrics, nil)
	if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		if _, err := a.acquire(context.Background(), ClassInteractive); err == nil {
			close(granted)
		}
	}()
	waitQueueLen(t, a, 1)
	if _, err := a.acquire(context.Background(), ClassBatch); !errors.Is(err, ErrShedded) {
		t.Fatalf("batch arrival got %v, want ErrShedded", err)
	}
	if _, err := a.acquire(context.Background(), ClassInteractive); !errors.Is(err, ErrShedded) {
		t.Fatalf("same-class arrival got %v, want ErrShedded (no equal-class eviction)", err)
	}
	snap := metrics.Snapshot()
	if got := snap.Counters[`queries_shed_total{class="batch"}`]; got != 1 {
		t.Errorf(`queries_shed_total{class="batch"} = %d, want 1`, got)
	}
	if got := snap.Counters[`queries_shed_total{class="interactive"}`]; got != 1 {
		t.Errorf(`queries_shed_total{class="interactive"} = %d, want 1`, got)
	}
	waitQueueLen(t, a, 1) // the interactive waiter still holds its place
	a.release()
	<-granted
	a.release()
}

// TestAdmissionReleaseGrantsInteractiveFirst: a freed slot goes to the
// highest class in the queue, FIFO within the class — queued batch work
// waits out every queued interactive query but is never starved of its
// arrival order among batch peers.
func TestAdmissionReleaseGrantsInteractiveFirst(t *testing.T) {
	a := newAdmission(1, 4, trace.NewRegistry(), nil)
	if _, err := a.acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 4)
	var wg sync.WaitGroup
	enqueue := func(name string, class QueryClass) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.acquire(context.Background(), class); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			order <- name
			a.release()
		}()
	}
	// Arrival order: batch-1, interactive-1, batch-2, interactive-2.
	for i, e := range []struct {
		name  string
		class QueryClass
	}{
		{"batch-1", ClassBatch},
		{"interactive-1", ClassInteractive},
		{"batch-2", ClassBatch},
		{"interactive-2", ClassInteractive},
	} {
		enqueue(e.name, e.class)
		waitQueueLen(t, a, i+1)
	}
	a.release() // hand the slot down the chain
	wg.Wait()
	close(order)
	want := []string{"interactive-1", "interactive-2", "batch-1", "batch-2"}
	i := 0
	for got := range order {
		if got != want[i] {
			t.Fatalf("service order[%d] = %s, want %s", i, got, want[i])
		}
		i++
	}
}

// TestQueryClassFromContext: WithQueryClass overrides the webbase default
// for one query; absent an override the configured default applies.
func TestQueryClassFromContext(t *testing.T) {
	if got := queryClassFrom(context.Background(), ClassBatch); got != ClassBatch {
		t.Errorf("default class = %v, want batch", got)
	}
	ctx := WithQueryClass(context.Background(), ClassInteractive)
	if got := queryClassFrom(ctx, ClassBatch); got != ClassInteractive {
		t.Errorf("override class = %v, want interactive", got)
	}
}

// gatedWorldFetcher forwards to the simulated world but blocks every
// fetch until the gate opens, so admitted queries stay executing for as
// long as the test wants.
type gatedWorldFetcher struct {
	inner web.Fetcher
	gate  chan struct{}
}

func (g *gatedWorldFetcher) Fetch(req *web.Request) (*web.Response, error) {
	select {
	case <-g.gate:
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
	return g.inner.Fetch(req)
}

// TestOverloadShedsFastAndExactly is the overload acceptance test: 64
// concurrent queries against max-inflight 8 + queue 8. Exactly 8 execute,
// 8 queue and 48 shed — each shed with ErrShedded in well under 10ms —
// and once the load drains every admitted query completes with the same
// answer. queries_shed_total matches the shed count exactly, and the 8
// queued queries (and only they) report a positive AdmissionWait that is
// excluded from Elapsed.
func TestOverloadShedsFastAndExactly(t *testing.T) {
	gate := make(chan struct{})
	wb, err := New(Config{
		Fetcher:     &gatedWorldFetcher{inner: sites.BuildWorld().Server, gate: gate},
		Workers:     4,
		MaxInFlight: 8,
		QueueDepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	var (
		wg        sync.WaitGroup
		shedCount atomic.Int64
		mu        sync.Mutex
		answers   []string
		waited    []time.Duration
		elapsed   []time.Duration
		slowShed  atomic.Int64 // sheds slower than the 10ms bound
	)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			t0 := time.Now()
			res, qs, err := wb.QueryContext(context.Background(), q)
			if errors.Is(err, ErrShedded) {
				if time.Since(t0) >= 10*time.Millisecond {
					slowShed.Add(1)
				}
				shedCount.Add(1)
				return
			}
			if err != nil {
				t.Errorf("admitted query failed: %v", err)
				return
			}
			mu.Lock()
			answers = append(answers, res.Relation.String())
			waited = append(waited, qs.AdmissionWait)
			elapsed = append(elapsed, qs.Elapsed)
			mu.Unlock()
		}()
	}
	close(start)

	// No admitted query can finish while the fetch gate is closed, so the
	// gate+queue occupancy only grows: exactly 16 get in, 48 shed.
	deadline := time.Now().Add(10 * time.Second)
	for shedCount.Load() < clients-16 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := shedCount.Load(); got != clients-16 {
		t.Fatalf("sheds = %d before opening the gate, want %d", got, clients-16)
	}
	close(gate)
	wg.Wait()

	if slow := slowShed.Load(); slow != 0 {
		t.Errorf("%d sheds took 10ms or longer", slow)
	}
	if len(answers) != 16 {
		t.Fatalf("%d queries completed, want 16", len(answers))
	}
	for i, a := range answers {
		if a != answers[0] {
			t.Fatalf("answer %d differs from answer 0", i)
		}
	}
	if got := wb.Metrics().Snapshot().Counters["queries_shed_total"]; got != clients-16 {
		t.Errorf("queries_shed_total = %d, want %d", got, clients-16)
	}
	// Exactly the 8 queued queries saw a positive admission wait, and
	// queue time is not folded into execution time: a queued query's
	// Elapsed covers only its run after the gate opened.
	queued := 0
	for i, w := range waited {
		if w > 0 {
			queued++
			if elapsed[i] <= 0 {
				t.Errorf("queued query %d: elapsed = %v", i, elapsed[i])
			}
		}
	}
	if queued != 8 {
		t.Errorf("%d queries report AdmissionWait > 0, want exactly the 8 queued ones", queued)
	}
}
