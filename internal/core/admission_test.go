package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/trace"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// waitQueueLen polls the gate until its wait queue reaches n.
func waitQueueLen(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		l := len(a.queue)
		a.mu.Unlock()
		if l == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission queue never reached length %d", n)
}

// TestAdmissionGateFIFO pins the queue's service order: queued queries
// are granted the slot strictly in arrival order.
func TestAdmissionGateFIFO(t *testing.T) {
	a := newAdmission(1, 3, trace.NewRegistry(), nil)
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := a.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.release()
		}(i)
		waitQueueLen(t, a, i+1) // enqueue deterministically, one at a time
	}
	a.release() // hand the slot down the chain
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("service order broke FIFO: got waiter %d, want %d", got, want)
		}
		want++
	}
	if want != 3 {
		t.Fatalf("only %d waiters served", want)
	}
}

// TestAdmissionShedWhenFull: with the gate and queue both full, acquire
// sheds immediately with ErrShedded and counts it.
func TestAdmissionShedWhenFull(t *testing.T) {
	metrics := trace.NewRegistry()
	a := newAdmission(1, 1, metrics, nil)
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		if _, err := a.acquire(context.Background()); err == nil {
			close(granted)
		}
	}()
	waitQueueLen(t, a, 1)
	if _, err := a.acquire(context.Background()); !errors.Is(err, ErrShedded) {
		t.Fatalf("full gate returned %v, want ErrShedded", err)
	}
	if got := metrics.Snapshot().Counters["queries_shed_total"]; got != 1 {
		t.Fatalf("queries_shed_total = %d, want 1", got)
	}
	a.release()
	<-granted
	a.release()
	// Fully drained: the next acquire is immediate.
	if wait, err := a.acquire(context.Background()); err != nil || wait != 0 {
		t.Fatalf("drained gate: wait=%v err=%v", wait, err)
	}
}

// TestAdmissionCancelWhileQueued: a queued query whose context is
// cancelled unblocks with ctx.Err(), vacates its queue slot, and leaks
// no executing slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 2, trace.NewRegistry(), nil)
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		res <- err
	}()
	waitQueueLen(t, a, 1)
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	waitQueueLen(t, a, 0) // the abandoned waiter vacated its queue slot
	a.release()
	if wait, err := a.acquire(context.Background()); err != nil || wait != 0 {
		t.Fatalf("slot leaked past the cancelled waiter: wait=%v err=%v", wait, err)
	}
}

// gatedWorldFetcher forwards to the simulated world but blocks every
// fetch until the gate opens, so admitted queries stay executing for as
// long as the test wants.
type gatedWorldFetcher struct {
	inner web.Fetcher
	gate  chan struct{}
}

func (g *gatedWorldFetcher) Fetch(req *web.Request) (*web.Response, error) {
	select {
	case <-g.gate:
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
	return g.inner.Fetch(req)
}

// TestOverloadShedsFastAndExactly is the overload acceptance test: 64
// concurrent queries against max-inflight 8 + queue 8. Exactly 8 execute,
// 8 queue and 48 shed — each shed with ErrShedded in well under 10ms —
// and once the load drains every admitted query completes with the same
// answer. queries_shed_total matches the shed count exactly, and the 8
// queued queries (and only they) report a positive AdmissionWait that is
// excluded from Elapsed.
func TestOverloadShedsFastAndExactly(t *testing.T) {
	gate := make(chan struct{})
	wb, err := New(Config{
		Fetcher:     &gatedWorldFetcher{inner: sites.BuildWorld().Server, gate: gate},
		Workers:     4,
		MaxInFlight: 8,
		QueueDepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	var (
		wg        sync.WaitGroup
		shedCount atomic.Int64
		mu        sync.Mutex
		answers   []string
		waited    []time.Duration
		elapsed   []time.Duration
		slowShed  atomic.Int64 // sheds slower than the 10ms bound
	)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			t0 := time.Now()
			res, qs, err := wb.QueryContext(context.Background(), q)
			if errors.Is(err, ErrShedded) {
				if time.Since(t0) >= 10*time.Millisecond {
					slowShed.Add(1)
				}
				shedCount.Add(1)
				return
			}
			if err != nil {
				t.Errorf("admitted query failed: %v", err)
				return
			}
			mu.Lock()
			answers = append(answers, res.Relation.String())
			waited = append(waited, qs.AdmissionWait)
			elapsed = append(elapsed, qs.Elapsed)
			mu.Unlock()
		}()
	}
	close(start)

	// No admitted query can finish while the fetch gate is closed, so the
	// gate+queue occupancy only grows: exactly 16 get in, 48 shed.
	deadline := time.Now().Add(10 * time.Second)
	for shedCount.Load() < clients-16 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := shedCount.Load(); got != clients-16 {
		t.Fatalf("sheds = %d before opening the gate, want %d", got, clients-16)
	}
	close(gate)
	wg.Wait()

	if slow := slowShed.Load(); slow != 0 {
		t.Errorf("%d sheds took 10ms or longer", slow)
	}
	if len(answers) != 16 {
		t.Fatalf("%d queries completed, want 16", len(answers))
	}
	for i, a := range answers {
		if a != answers[0] {
			t.Fatalf("answer %d differs from answer 0", i)
		}
	}
	if got := wb.Metrics().Snapshot().Counters["queries_shed_total"]; got != clients-16 {
		t.Errorf("queries_shed_total = %d, want %d", got, clients-16)
	}
	// Exactly the 8 queued queries saw a positive admission wait, and
	// queue time is not folded into execution time: a queued query's
	// Elapsed covers only its run after the gate opened.
	queued := 0
	for i, w := range waited {
		if w > 0 {
			queued++
			if elapsed[i] <= 0 {
				t.Errorf("queued query %d: elapsed = %v", i, elapsed[i])
			}
		}
	}
	if queued != 8 {
		t.Errorf("%d queries report AdmissionWait > 0, want exactly the 8 queued ones", queued)
	}
}
