package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"webbase/internal/apartments"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/web"
)

// TestParallelQueryByteIdentical is the acceptance golden test: parallel
// evaluation (Workers=4) must produce byte-identical results to
// sequential evaluation (Workers=1) on both application domains.
func TestParallelQueryByteIdentical(t *testing.T) {
	domains := []struct {
		name    string
		build   func(cfg Config) (*Webbase, error)
		queries []string
	}{
		{
			name: "usedcars",
			build: func(cfg Config) (*Webbase, error) {
				cfg.Fetcher = sites.BuildWorld().Server
				return New(cfg)
			},
			queries: []string{
				"SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'",
				"SELECT Make, Model, Year, Price, BBPrice, Contact WHERE Make = 'jaguar' AND Year >= 1993 " +
					"AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice",
				"SELECT Make, BBPrice WHERE Make = 'bmw' AND Model = '325i' AND Condition = 'good'",
				"SELECT Make, Model, Safety WHERE Make = 'honda'",
			},
		},
		{
			name: "apartments",
			build: func(cfg Config) (*Webbase, error) {
				cfg.Fetcher = apartments.BuildWorld().Server
				return NewDomain(cfg, Domain{
					Registry: apartments.Registry,
					Logical:  apartments.Logical,
					UR:       apartments.UR,
				})
			},
			queries: []string{
				"SELECT Neighborhood, Rent, MedianRent, CrimeRate, Contact WHERE Borough = 'brooklyn' " +
					"AND Bedrooms = 2 AND Rent < MedianRent AND CrimeRate <= 5 ORDER BY Rent",
				"SELECT Neighborhood, Rent, Fee WHERE Borough = 'queens' AND Bedrooms = 1 AND Fee < 120",
			},
		},
	}
	for _, d := range domains {
		t.Run(d.name, func(t *testing.T) {
			seq, err := d.build(Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := d.build(Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range d.queries {
				sres, _, err := seq.QueryString(q)
				if err != nil {
					t.Fatalf("sequential %s: %v", q, err)
				}
				pres, _, err := par.QueryString(q)
				if err != nil {
					t.Fatalf("parallel %s: %v", q, err)
				}
				if sres.Relation.String() != pres.Relation.String() {
					t.Errorf("%s: parallel answer differs\nsequential:\n%s\nparallel:\n%s",
						q, sres.Relation, pres.Relation)
				}
				if fmt.Sprint(sres.Skipped) != fmt.Sprint(pres.Skipped) {
					t.Errorf("%s: skipped objects differ: %v vs %v", q, sres.Skipped, pres.Skipped)
				}
			}
		})
	}
}

// TestParallelQueryOverFlakyWeb is the fault-injection test: parallel
// union branches and dependent joins over a Web where every fourth fetch
// fails, healed by retries, must still produce the reliable answers.
func TestParallelQueryOverFlakyWeb(t *testing.T) {
	const q = "SELECT Make, Model, Year, Price, BBPrice WHERE Make = 'ford' AND Model = 'escort' AND Condition = 'good'"
	reliable, err := New(Config{Fetcher: sites.BuildWorld().Server, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := reliable.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}

	flaky := &web.Flaky{Inner: sites.BuildWorld().Server, FailEvery: 4}
	sys, err := New(Config{Fetcher: flaky, Retries: 6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.QueryString(q)
	if err != nil {
		t.Fatalf("parallel query over flaky web: %v", err)
	}
	if got.Relation.String() != want.Relation.String() {
		t.Errorf("flaky parallel answers differ:\n%s\nwant:\n%s", got.Relation, want.Relation)
	}
	if flaky.Attempts() == 0 {
		t.Error("flaky fetcher unused")
	}
}

// hostDownFetcher fails every fetch against one host and forwards the
// rest — one site is having an outage.
type hostDownFetcher struct {
	inner web.Fetcher
	down  string
}

func (h *hostDownFetcher) Fetch(req *web.Request) (*web.Response, error) {
	if web.HostOf(req.URL) == h.down {
		return nil, fmt.Errorf("host %s: connection refused", h.down)
	}
	return h.inner.Fetch(req)
}

// TestPopulateAllSiteErrorIsolation knocks one site offline and sweeps
// all ten: the dead site's error must land in its own SiteResult without
// aborting or emptying the sibling sites — the per-branch error surface
// the sweep promises.
func TestPopulateAllSiteErrorIsolation(t *testing.T) {
	w := sites.BuildWorld()
	wb, err := New(Config{
		Fetcher: &hostDownFetcher{inner: w.Server, down: sites.NewsdayHost},
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]relation.Value{
		"Make": relation.String("ford"), "Model": relation.String("escort"),
		"Condition": relation.String("good"),
	}
	results := wb.PopulateAll(TimingTableRelations, inputs)
	if len(results) != len(TimingTableRelations) {
		t.Fatalf("results = %d", len(results))
	}
	var failed, succeeded int
	for _, r := range results {
		if r.Relation == "newsday" {
			if r.Err == nil {
				t.Error("newsday sweep should report the outage")
			}
			failed++
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: sibling aborted by newsday outage: %v", r.Relation, r.Err)
			continue
		}
		succeeded++
	}
	if failed != 1 || succeeded != len(TimingTableRelations)-1 {
		t.Errorf("failed=%d succeeded=%d", failed, succeeded)
	}
}

// cancelAfterFetcher cancels a context after a fixed number of fetches —
// a user abort landing mid-navigation.
type cancelAfterFetcher struct {
	inner  web.Fetcher
	cancel context.CancelFunc
	after  int64
	n      atomic.Int64
}

func (c *cancelAfterFetcher) Fetch(req *web.Request) (*web.Response, error) {
	if c.n.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Fetch(req)
}

// TestQueryCancellationStopsFetches cancels the query context partway
// through navigation and asserts (a) the query unwinds with
// context.Canceled and (b) evaluation stopped issuing fetches — the
// counter stops far short of the full run and does not move after
// QueryContext returns.
func TestQueryCancellationStopsFetches(t *testing.T) {
	const q = "SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'"
	w := sites.BuildWorld()

	// Baseline: how many fetches does the full query need?
	counter := &cancelAfterFetcher{inner: w.Server, cancel: func() {}, after: -1}
	full, err := New(Config{Fetcher: counter, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := full.QueryString(q); err != nil {
		t.Fatal(err)
	}
	fullFetches := counter.n.Load()
	if fullFetches < 10 {
		t.Fatalf("query too small to test cancellation (%d fetches)", fullFetches)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aborter := &cancelAfterFetcher{inner: w.Server, cancel: cancel, after: 3}
	wb, err := New(Config{Fetcher: aborter, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = wb.QueryStringContext(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	atReturn := aborter.n.Load()
	// In-flight fetches complete, but no new navigation starts: the count
	// must be well below the full run (each site alone needs several
	// pages, and there are ten sites).
	if atReturn >= fullFetches/2 {
		t.Errorf("cancelled query still fetched %d of %d pages", atReturn, fullFetches)
	}
	// All evaluation goroutines joined before QueryContext returned, so
	// the counter is quiescent.
	if again := aborter.n.Load(); again != atReturn {
		t.Errorf("fetches continued after return: %d → %d", atReturn, again)
	}
}

// TestPopulateAllDuplicateNamesDeterministic is the regression test for
// the sweep-ordering hazard: with duplicate relation names, the old
// unstable sort could interleave slots in scheduler-dependent order. The
// stable sort pins submission order among equals, so repeated parallel
// sweeps agree with each other and with the sequential baseline.
func TestPopulateAllDuplicateNamesDeterministic(t *testing.T) {
	wb, _ := newTestWebbase(t)
	rels := []string{"kellys", "newsday", "kellys", "autoWeb", "newsday", "kellys"}
	inputs := map[string]relation.Value{
		"Make": relation.String("ford"), "Model": relation.String("escort"),
		"Condition": relation.String("good"),
	}
	render := func(results []SiteResult) string {
		out := ""
		for _, r := range results {
			out += r.Relation
			if r.Err != nil {
				out += "(err)"
			} else {
				out += fmt.Sprintf("(%d)", r.Rel.Len())
			}
			out += " "
		}
		return out
	}
	want := render(wb.PopulateSequential(rels, inputs))
	for i := 0; i < 5; i++ {
		if got := render(wb.PopulateAll(rels, inputs)); got != want {
			t.Fatalf("sweep %d ordering diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}
