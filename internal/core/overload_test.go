package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"webbase/internal/sites"
	"webbase/internal/ur"
	"webbase/internal/web"
)

// slowHostsFetcher delays every fetch to the named hosts by delay — a
// real sleep, so Config.Deadline (which reads the wall clock) sees the
// time pass.
type slowHostsFetcher struct {
	inner web.Fetcher
	slow  map[string]bool
	delay time.Duration
}

func (s *slowHostsFetcher) Fetch(req *web.Request) (*web.Response, error) {
	if s.slow[web.HostOf(req.URL)] {
		time.Sleep(s.delay)
	}
	return s.inner.Fetch(req)
}

// slowClassifieds makes both classifieds sites slow enough that any
// object touching them exhausts a 150ms budget after its first fetch.
func slowClassifieds(delay time.Duration) web.Fetcher {
	return &slowHostsFetcher{
		inner: sites.BuildWorld().Server,
		slow:  map[string]bool{sites.NewsdayHost: true, sites.NYTimesHost: true},
		delay: delay,
	}
}

// deadlineOutcome folds a budget-limited run into one comparable string:
// the partial answer, the skipped objects and the degradation report.
func deadlineOutcome(t *testing.T, workers int) (string, *ur.Result) {
	t.Helper()
	wb, err := New(Config{
		Fetcher:  slowClassifieds(400 * time.Millisecond),
		Workers:  workers,
		Deadline: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := wb.QueryString(wideCarQuery)
	if err != nil {
		t.Fatalf("workers=%d: budget-limited query failed outright: %v", workers, err)
	}
	var sb strings.Builder
	sb.WriteString(res.Relation.String())
	sb.WriteString("\n")
	sb.WriteString(res.Degradation.String())
	return sb.String(), res
}

// TestDeadlineDegradationDeterministic is the budget acceptance test: a
// query whose classifieds object outlives Config.Deadline degrades to
// the surviving objects, and the answer AND the degradation report are
// byte-identical at Workers=1 and Workers=8 — the shed error is a static
// verdict about the budget, not about which goroutine lost a race.
func TestDeadlineDegradationDeterministic(t *testing.T) {
	seq, seqRes := deadlineOutcome(t, 1)
	par, parRes := deadlineOutcome(t, 8)
	if seq != par {
		t.Errorf("budget-degraded outcome differs across worker counts\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	for _, res := range []*ur.Result{seqRes, parRes} {
		if !res.Degradation.Degraded() {
			t.Fatal("budget-limited query did not degrade")
		}
		if n := len(res.Degradation.Unavailable); n != 1 {
			t.Fatalf("%d objects degraded, want 1 (only Classifieds touches the slow hosts):\n%s",
				n, res.Degradation)
		}
		f := res.Degradation.Unavailable[0]
		if !strings.Contains(strings.Join(f.Object, ","), "Classifieds") {
			t.Errorf("degraded object %v, want the Classifieds one", f.Object)
		}
		if !strings.Contains(f.Err, web.ErrBudgetExhausted.Error()) {
			t.Errorf("degradation cause %q does not name the budget", f.Err)
		}
		// The surviving Dealers object ran on its own (healthy) budget:
		// a partial answer survives.
		if res.Relation.Len() == 0 {
			t.Error("budget degradation emptied the answer; the Dealers object should survive")
		}
	}
}

// TestDeadlineStrictSurfacesBudget pins the strict-mode contract: with
// Strict on, the budget verdict aborts the query and is classified as
// both an outage and a budget exhaustion.
func TestDeadlineStrictSurfacesBudget(t *testing.T) {
	wb, err := New(Config{
		Fetcher:  slowClassifieds(400 * time.Millisecond),
		Workers:  4,
		Deadline: 150 * time.Millisecond,
		Strict:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = wb.QueryString(wideCarQuery)
	if err == nil {
		t.Fatal("strict budget-limited query succeeded")
	}
	if !web.IsOutage(err) {
		t.Errorf("strict budget error %v is not outage-classified", err)
	}
	if !web.IsBudgetExhausted(err) {
		t.Errorf("strict budget error %v does not match ErrBudgetExhausted", err)
	}
}

// TestDeadlineExplainAnalyzeAnnotation: budget exhaustion is visible in
// EXPLAIN ANALYZE — the exhausted object's span carries the
// budget-exhausted annotation and the volatile footer carries the
// degradation report.
func TestDeadlineExplainAnalyzeAnnotation(t *testing.T) {
	wb, err := New(Config{
		Fetcher:  slowClassifieds(400 * time.Millisecond),
		Workers:  4,
		Deadline: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wb.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "budget-exhausted=1") {
		t.Errorf("EXPLAIN ANALYZE output lacks the budget-exhausted span annotation:\n%s", out)
	}
	if !strings.Contains(out, "degraded:") {
		t.Errorf("EXPLAIN ANALYZE output lacks the degradation footer:\n%s", out)
	}
	if got := wb.Metrics().Snapshot().Counters["budget_shed_total"]; got == 0 {
		t.Error("budget_shed_total = 0 after a budget-degraded query")
	}
}

// TestHedgedDeterminism: hedging duplicates network attempts, never
// answers — the relation is byte-identical with hedging on and off, at
// Workers=1 and Workers=8, because both attempts of any fetch carry the
// same deterministic bytes and the winner is selected deterministically.
func TestHedgedDeterminism(t *testing.T) {
	run := func(hedge time.Duration, workers int) (string, *Webbase) {
		wb, err := New(Config{
			Fetcher:    sites.BuildWorld().Server,
			Latency:    web.LatencyModel{PerRequest: 4 * time.Millisecond, Sleep: true},
			Workers:    workers,
			HedgeAfter: hedge,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := wb.QueryString(wideCarQuery)
		if err != nil {
			t.Fatalf("hedge=%v workers=%d: %v", hedge, workers, err)
		}
		return res.Relation.String(), wb
	}

	base, _ := run(0, 1)
	for _, cfg := range []struct {
		hedge   time.Duration
		workers int
	}{{0, 8}, {2 * time.Millisecond, 1}, {2 * time.Millisecond, 8}} {
		got, wb := run(cfg.hedge, cfg.workers)
		if got != base {
			t.Errorf("hedge=%v workers=%d: answer differs from the unhedged sequential baseline",
				cfg.hedge, cfg.workers)
		}
		if cfg.hedge > 0 {
			// Every fetch sleeps 4ms and the hedge fires at 2ms, so hedges
			// must have been issued — and recorded end to end.
			if wb.Stats().Hedges() == 0 {
				t.Errorf("hedge=%v workers=%d: no hedges issued", cfg.hedge, cfg.workers)
			}
			if got := wb.Metrics().Snapshot().Counters["fetch_hedges_total"]; got == 0 {
				t.Errorf("hedge=%v workers=%d: fetch_hedges_total = 0", cfg.hedge, cfg.workers)
			}
		}
	}
}

// TestDeadlineDisabledNoBudget: without Config.Deadline the slow hosts
// simply take their time — nothing degrades, pinning that budgets are
// opt-in.
func TestDeadlineDisabledNoBudget(t *testing.T) {
	wb, err := New(Config{Fetcher: slowClassifieds(40 * time.Millisecond), Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := wb.QueryContext(context.Background(), mustParse(t, wb, wideCarQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation.Degraded() {
		t.Fatalf("undeadlined query degraded: %s", res.Degradation)
	}
}

func mustParse(t *testing.T, wb *Webbase, text string) ur.Query {
	t.Helper()
	q, err := ur.ParseQuery(wb.UR, text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
