package core

import (
	"testing"

	"webbase/internal/apartments"
	"webbase/internal/sites"
	"webbase/internal/ur"
)

// The golden tests lock down the static Explain rendering for both
// application domains: the planner's object choice, the optimized
// expressions, the binding sets, and the handle quadruples. Any change to
// planning, optimization or handle registration shows up here as a diff.

const goldenCarsExplain = `query: SELECT Make, Model, Year, Price, BBPrice, Contact WHERE Make = jaguar AND Year ≥ 1993 AND Safety = good AND Condition = good AND Price < BBPrice
universal relation: UsedCarUR (13 attributes, 2 maximal objects)

object 1: {BluePrice, Classifieds, Interest, Reviews, Safety}
  minimal cover: BluePrice ⋈ Classifieds ⋈ Safety
  expression:    π[Make, Model, Year, Price, BBPrice, Contact]((σ[Price < BBPrice]((σ[Year ≥ 1993](σ[Condition = good](σ[Make = jaguar](bluePrice))) ⋈ σ[Make = jaguar](classifieds))) ⋈ σ[Safety = good](σ[Make = jaguar](reliability))))

object 2: {BluePrice, Dealers, Interest, Reviews, Safety}
  minimal cover: BluePrice ⋈ Dealers ⋈ Safety
  expression:    π[Make, Model, Year, Price, BBPrice, Contact]((σ[Price < BBPrice]((σ[Year ≥ 1993](σ[Condition = good](σ[Make = jaguar](bluePrice))) ⋈ σ[Make = jaguar](dealers))) ⋈ σ[Safety = good](σ[Make = jaguar](reliability))))

logical relations involved:
  bluePrice    needs {Condition, Make, Model}
                 ≡   kellys
  classifieds  needs {Make}
                 ≡   (π[Make, Model, Year, Price, Contact, Features]((newsday ⋈ newsdayCarFeatures)) ∪ π[Make, Model, Year, Price, Contact, Features](nyTimes))
  dealers      needs {Make}
                 ≡   (((carPoint ∪ʳ autoWeb) ∪ʳ wwWheels) ∪ʳ yahooCars)
  reliability  needs {Make}
                 ≡   carAndDriver

VPS handles behind those views:
  ⟨{Make}, {Make, Model}, autoWeb, autoWeb⟩
  ⟨{Make}, {Make}, carAndDriver, carAndDriver⟩
  ⟨{Make}, {Make, Model, ZipCode}, carPoint, carPoint⟩
  ⟨{Condition, Make, Model}, {Condition, Make, Model, Year}, kellys, kellys⟩
  ⟨{Make}, {Make, Model}, newsday, newsday⟩
  ⟨{Make, Model}, {Make, Model}, newsday, newsday⟩
  ⟨{Url}, {Url}, newsdayCarFeatures, newsdayCarFeatures⟩
  ⟨{Make}, {Make, Model}, nyTimes, nyTimes⟩
  ⟨{Make}, {Make, Model}, wwWheels, wwWheels⟩
  ⟨{Make, Model}, {Make, Model}, yahooCars, yahooCars⟩
`

const goldenApartmentsExplain = `query: SELECT Neighborhood, Rent, MedianRent, CrimeRate, Contact WHERE Borough = brooklyn AND Bedrooms = 2 AND Rent < MedianRent AND CrimeRate ≤ 5
universal relation: ApartmentUR (8 attributes, 2 maximal objects)

object 1: {Brokered, Medians, Safety}
  minimal cover: Brokered ⋈ Medians ⋈ Safety
  expression:    π[Neighborhood, Rent, MedianRent, CrimeRate, Contact]((σ[Rent < MedianRent]((σ[Bedrooms = 2](σ[Borough = brooklyn](brokered)) ⋈ σ[Bedrooms = 2](σ[Borough = brooklyn](medians)))) ⋈ σ[CrimeRate ≤ 5](σ[Borough = brooklyn](safety))))

object 2: {Listings, Medians, Safety}
  minimal cover: Listings ⋈ Medians ⋈ Safety
  expression:    π[Neighborhood, Rent, MedianRent, CrimeRate, Contact]((σ[Rent < MedianRent]((σ[Bedrooms = 2](σ[Borough = brooklyn](listings)) ⋈ σ[Bedrooms = 2](σ[Borough = brooklyn](medians)))) ⋈ σ[CrimeRate ≤ 5](σ[Borough = brooklyn](safety))))

logical relations involved:
  brokered     needs {Bedrooms, Borough}
                 ≡   aptFinder
  listings     needs {Borough}
                 ≡   (cityRentals ∪ʳ π[Borough, Neighborhood, Bedrooms, Rent, Contact](aptFinder))
  medians      needs {Borough}
                 ≡   rentIndex
  safety       needs {Borough}
                 ≡   safeStreets

VPS handles behind those views:
  ⟨{Bedrooms, Borough}, {Bedrooms, Borough}, aptFinder, aptFinder⟩
  ⟨{Borough}, {Bedrooms, Borough}, cityRentals, cityRentals⟩
  ⟨{Borough}, {Bedrooms, Borough}, rentIndex, rentIndex⟩
  ⟨{Borough}, {Borough}, safeStreets, safeStreets⟩
`

func TestExplainGoldenUsedCars(t *testing.T) {
	wb, err := New(Config{Fetcher: sites.BuildWorld().Server})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR, wideCarQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wb.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenCarsExplain {
		t.Errorf("used-cars Explain output drifted from golden\n--- got ---\n%s\n--- want ---\n%s", got, goldenCarsExplain)
	}
}

func TestExplainGoldenApartments(t *testing.T) {
	wb, err := NewDomain(Config{Fetcher: apartments.BuildWorld().Server}, Domain{
		Registry: apartments.Registry,
		Logical:  apartments.Logical,
		UR:       apartments.UR,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ur.ParseQuery(wb.UR,
		"SELECT Neighborhood, Rent, MedianRent, CrimeRate, Contact "+
			"WHERE Borough = 'brooklyn' AND Bedrooms = 2 AND Rent < MedianRent AND CrimeRate <= 5")
	if err != nil {
		t.Fatal(err)
	}
	got, err := wb.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenApartmentsExplain {
		t.Errorf("apartments Explain output drifted from golden\n--- got ---\n%s\n--- want ---\n%s", got, goldenApartmentsExplain)
	}
}
