package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"webbase/internal/trace"
	"webbase/internal/ur"
)

// ExplainAnalyze runs the query for real and renders the optimized plan
// annotated with what each operator actually did: per-operator tuple
// counts, handle invocations, page fetches and (when Timings is on via the
// trace renderer) wall time. It is Explain's runtime twin — the paper's
// plan made visible, plus the evidence of what the Web gave back.
//
// The output has two parts. The structural section — plan header, the
// aggregated execution tree, skipped objects — is byte-identical across
// worker counts (minus time=… fields, which StripTimings removes). The
// "totals (volatile)" footer carries the schedule-dependent aggregates:
// which fetches hit the cache, how many were deduplicated onto in-flight
// twins, elapsed wall time. The determinism suite compares everything
// above the footer.
func (wb *Webbase) ExplainAnalyze(q ur.Query) (string, error) {
	return wb.ExplainAnalyzeContext(context.Background(), q)
}

// ExplainAnalyzeContext is ExplainAnalyze with cancellation.
func (wb *Webbase) ExplainAnalyzeContext(ctx context.Context, q ur.Query) (string, error) {
	res, qs, tr, err := wb.QueryTraced(ctx, q)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", q)
	fmt.Fprintf(&sb, "universal relation: %s (%d attributes, %d maximal objects)\n",
		wb.UR.Name, len(wb.UR.Hierarchy.AllAttrs()), len(wb.UR.MaximalObjects()))
	fmt.Fprintf(&sb, "answer: %d tuples\n", res.Relation.Len())

	sb.WriteString("\n=== execution (actual) ===\n")
	sb.WriteString(tr.Render(trace.RenderOptions{Timings: true}))

	if len(res.Skipped) > 0 {
		sb.WriteString("\nskipped objects (binding unsatisfied):\n")
		for _, s := range res.Skipped {
			fmt.Fprintf(&sb, "  %s\n", s)
		}
	}

	sb.WriteString("\n=== totals (volatile) ===\n")
	fmt.Fprintf(&sb, "%s\n", qs)
	// Relevance-pruning footer: how many access attempts the query never
	// made, by decision rule. The unsat-where counts are deterministic at
	// a fixed worker count; the limit counts depend on completion order
	// (like cache hits), which is why the line lives in the volatile
	// section. The pruned=1 spans above carry the per-access detail.
	if qs.PrunedFetches > 0 {
		reasons := make([]string, 0, len(qs.PrunedByReason))
		for r := range qs.PrunedByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, r := range reasons {
			parts[i] = fmt.Sprintf("%s=%d", r, qs.PrunedByReason[r])
		}
		fmt.Fprintf(&sb, "pruned: %d access(es) skipped by relevance pruning (%s)\n",
			qs.PrunedFetches, strings.Join(parts, " "))
	}
	// The degradation report joins the volatile footer: which hosts are
	// down is a runtime fact, not part of the plan's structure.
	if res.Degradation != nil {
		sb.WriteString(res.Degradation.String())
	}
	return sb.String(), nil
}
