package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webbase/internal/algebra"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/ur"
	"webbase/internal/web"
)

func newTestWebbase(t *testing.T) (*Webbase, *sites.World) {
	t.Helper()
	w := sites.BuildWorld()
	wb, err := New(Config{Fetcher: w.Server})
	if err != nil {
		t.Fatal(err)
	}
	return wb, w
}

func TestNewRequiresFetcher(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing fetcher accepted")
	}
}

// TestHeadlineQuery runs the paper's Section 1 query end to end: "make a
// list of used Jaguars advertised in New York City area, such that each
// car is a 1993 or later model, has good safety ratings, and its selling
// price is less than its Blue Book value."
func TestHeadlineQuery(t *testing.T) {
	wb, _ := newTestWebbase(t)
	q := ur.Query{
		Output: []string{"Make", "Model", "Year", "Price", "BBPrice", "Contact"},
		Conditions: []algebra.Condition{
			{Attr: "Make", Op: algebra.EQ, Val: relation.String("jaguar")},
			{Attr: "Year", Op: algebra.GE, Val: relation.Int(1993)},
			{Attr: "Safety", Op: algebra.EQ, Val: relation.String("good")},
			{Attr: "Condition", Op: algebra.EQ, Val: relation.String("good")},
			{Attr: "Price", Op: algebra.LT, Attr2: "BBPrice"},
		},
	}
	res, stats, err := wb.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() == 0 {
		t.Fatal("headline query returned nothing; the synthetic world should contain bargain jaguars")
	}
	for _, tp := range res.Relation.Tuples() {
		mk, _ := res.Relation.Get(tp, "Make")
		yr, _ := res.Relation.Get(tp, "Year")
		p, _ := res.Relation.Get(tp, "Price")
		bb, _ := res.Relation.Get(tp, "BBPrice")
		if mk.Str() != "jaguar" || yr.IntVal() < 1993 || p.FloatVal() >= bb.FloatVal() {
			t.Fatalf("bad answer tuple: %v", tp)
		}
	}
	// Both ad-source maximal objects participate (classifieds + dealers).
	if len(res.Plan.Objects) != 2 {
		t.Errorf("plan objects = %d, want 2", len(res.Plan.Objects))
	}
	if stats.Pages == 0 {
		t.Error("no pages counted")
	}
	t.Logf("headline: %d answers, %s", res.Relation.Len(), stats)
}

func TestQueryString(t *testing.T) {
	wb, _ := newTestWebbase(t)
	res, _, err := wb.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort' AND Year >= 1994")
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() == 0 {
		t.Fatal("no answers")
	}
	for _, tp := range res.Relation.Tuples() {
		yr, _ := res.Relation.Get(tp, "Year")
		if yr.IntVal() < 1994 {
			t.Fatalf("year filter leaked: %v", tp)
		}
	}
	if _, _, err := wb.QueryString("nonsense"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestQueryCacheEffect(t *testing.T) {
	wb, _ := newTestWebbase(t)
	q := "SELECT Make, Price WHERE Make = 'honda' AND Model = 'civic'"
	_, first, err := wb.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := wb.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Pages != 0 {
		t.Errorf("repeat query fetched %d pages; cache should absorb all", second.Pages)
	}
	if second.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
	if first.Pages == 0 {
		t.Error("first query fetched nothing")
	}
}

func TestPopulateAllMatchesSequential(t *testing.T) {
	wb, _ := newTestWebbase(t)
	rels := TimingTableRelations
	inputs := map[string]relation.Value{
		"Make": relation.String("ford"), "Model": relation.String("escort"),
		"Condition": relation.String("good"),
	}
	par := wb.PopulateAll(rels, inputs)
	seq := wb.PopulateSequential(rels, inputs)
	if len(par) != len(seq) {
		t.Fatalf("lengths differ: %d vs %d", len(par), len(seq))
	}
	for i := range par {
		if par[i].Relation != seq[i].Relation {
			t.Fatalf("order differs at %d", i)
		}
		if (par[i].Err == nil) != (seq[i].Err == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", par[i].Relation, par[i].Err, seq[i].Err)
		}
		if par[i].Err == nil && par[i].Rel.Len() != seq[i].Rel.Len() {
			t.Errorf("%s: %d vs %d tuples", par[i].Relation, par[i].Rel.Len(), seq[i].Rel.Len())
		}
	}
}

func TestSiteTimingsShape(t *testing.T) {
	w := sites.BuildWorld()
	rows, err := SiteTimings(w.Server, DefaultLatency)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]SiteTiming)
	for _, r := range rows {
		byName[r.Site] = r
		if r.Pages == 0 {
			t.Errorf("%s: no pages", r.Site)
		}
		// The paper's shape: elapsed (network-bound) dominates cpu.
		if r.Elapsed <= r.CPU {
			t.Errorf("%s: elapsed %v not greater than cpu %v", r.Site, r.Elapsed, r.CPU)
		}
	}
	// Shape: the single-form site navigates fewer pages than the
	// paginated classifieds.
	if byName["wwWheels"].Pages >= byName["newsday"].Pages {
		t.Errorf("wwWheels pages (%d) should be below newsday (%d)",
			byName["wwWheels"].Pages, byName["newsday"].Pages)
	}
	out := FormatSiteTimings(rows)
	if !strings.Contains(out, "newsday") || !strings.Contains(out, "#pages") {
		t.Errorf("format:\n%s", out)
	}
}

func TestParallelSweepSpeedsUp(t *testing.T) {
	w := sites.BuildWorld()
	model := web.LatencyModel{PerRequest: 3 * time.Millisecond}
	rows, err := ParallelSweep(w.Server, model, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	seq, par := rows[0].Elapsed, rows[1].Elapsed
	if par >= seq {
		t.Errorf("10 workers (%v) not faster than 1 (%v)", par, seq)
	}
	// With 10 network-bound sites, expect a substantial speedup (allow
	// slack for scheduling noise).
	if float64(seq)/float64(par) < 2 {
		t.Errorf("speedup only %.2fx", float64(seq)/float64(par))
	}
	if !strings.Contains(FormatParallelSweep(rows), "speedup") {
		t.Error("format")
	}
}

func TestScaledSweep(t *testing.T) {
	model := web.LatencyModel{PerRequest: 2 * time.Millisecond}
	rows, err := ScaledSweep(24, model, []int{1, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Elapsed >= rows[0].Elapsed {
		t.Errorf("12 workers (%v) not faster than 1 (%v) over 24 sites",
			rows[1].Elapsed, rows[0].Elapsed)
	}
	if speedup := float64(rows[0].Elapsed) / float64(rows[1].Elapsed); speedup < 3 {
		t.Errorf("speedup only %.1fx over 24 homogeneous sites", speedup)
	}
}

func TestMapStats(t *testing.T) {
	w := sites.BuildWorld()
	stats, err := MapStats(w.Server)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 13 {
		t.Fatalf("stats rows = %d", len(stats))
	}
	for _, s := range stats {
		if s.Objects == 0 || s.Attributes == 0 {
			t.Errorf("%s: no automatic extraction", s.Site)
		}
		if r := s.ManualRatio(); r > 0.25 {
			t.Errorf("%s: manual ratio %.2f too high", s.Site, r)
		}
	}
}

func TestMeasureTimeSplit(t *testing.T) {
	w := sites.BuildWorld()
	ts, err := MeasureTimeSplit(w.Server, DefaultLatency)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Pages == 0 || ts.Fetch == 0 {
		t.Errorf("split incomplete: %s", ts)
	}
	if ts.Parse <= 0 {
		t.Errorf("parse time not measured: %s", ts)
	}
	if !strings.Contains(ts.String(), "parse=") {
		t.Error("format")
	}
}

func TestPaperArtifactRenderings(t *testing.T) {
	wb, _ := newTestWebbase(t)

	t1 := wb.Table1()
	for _, want := range []string{"Blue Book Prices", "kellys", "newsday", "Interest Rates"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2 := wb.Table2()
	for _, want := range []string{"classifieds", "newsdayCarFeatures", "∪", "dealers", "∪ʳ"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	t3 := wb.Table3()
	for _, want := range []string{"kellys", "{Condition, Make, Model}", "{Url}"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
	text, dot := Figure2()
	if !strings.Contains(text, "form f1(make)") || !strings.Contains(dot, "digraph") {
		t.Error("Figure2 rendering")
	}
	f3 := Figure3()
	for _, want := range []string{"web_page[", "attrValPair[", "mandatory =>> attrValPair"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure3 missing %q", want)
		}
	}
	f4, err := Figure4()
	if err != nil || !strings.Contains(f4, "visit_carData") {
		t.Errorf("Figure4: %v\n%s", err, f4)
	}
	f5 := wb.Figure5()
	if !strings.Contains(f5, "Classifieds [relation]") {
		t.Errorf("Figure5:\n%s", f5)
	}
	e62, err := Example62()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(e62, "⋈") != 15 { // 5 objects × 3 joins each
		t.Errorf("Example62 objects wrong:\n%s", e62)
	}
	if !strings.Contains(e62, "Lease ⊖ Classifieds") {
		t.Errorf("Example62 constraints missing:\n%s", e62)
	}
}

// TestQueryOverFlakyWeb answers correctly over a Web where roughly every
// fourth fetch fails, using retries — the failure-injection test of the
// paper's observation that navigation processes fail and must be coped
// with.
func TestQueryOverFlakyWeb(t *testing.T) {
	w := sites.BuildWorld()
	flaky := &web.Flaky{Inner: w.Server, FailEvery: 4}
	sys, err := New(Config{Fetcher: flaky, Retries: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'")
	if err != nil {
		t.Fatalf("query over flaky web failed: %v", err)
	}
	// Same answers as a reliable run.
	reliable, _ := New(Config{Fetcher: w.Server})
	want, _, err := reliable.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != want.Relation.Len() {
		t.Errorf("flaky answers = %d, reliable = %d", res.Relation.Len(), want.Relation.Len())
	}
	if flaky.Attempts() == 0 {
		t.Error("flaky fetcher unused")
	}
}

// TestQueryOverFlakyWebWithoutRetries documents the failure mode: without
// retries an outage during navigation surfaces as an error (or, on
// relaxed-union branches, a partial answer), never a wrong answer.
func TestQueryOverFlakyWebWithoutRetries(t *testing.T) {
	w := sites.BuildWorld()
	flaky := &web.Flaky{Inner: w.Server, FailEvery: 3}
	sys, err := New(Config{Fetcher: flaky})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'")
	if err != nil {
		return // expected: the outage aborted evaluation
	}
	// If it survived (outages may fall on retried-anyway cache paths or
	// skipped branches), the answers that did arrive must be correct.
	for _, tp := range res.Relation.Tuples() {
		mk, _ := res.Relation.Get(tp, "Make")
		if mk.Str() != "ford" {
			t.Fatalf("wrong answer under failure: %v", tp)
		}
	}
}

// TestConcurrentQueries hammers one webbase from many goroutines: the
// shared cache, stats and registries must be race-free (run with -race)
// and answers must match the sequential ones.
func TestConcurrentQueries(t *testing.T) {
	wb, _ := newTestWebbase(t)
	queries := []string{
		"SELECT Make, Price WHERE Make = 'ford' AND Model = 'escort'",
		"SELECT Make, Price WHERE Make = 'honda' AND Model = 'civic'",
		"SELECT Make, Model, Safety WHERE Make = 'jaguar'",
		"SELECT Make, BBPrice WHERE Make = 'bmw' AND Model = '325i' AND Condition = 'good'",
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		res, _, err := wb.QueryString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want[i] = res.Relation.Len()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			res, _, err := wb.QueryString(q)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", q, err)
				return
			}
			if res.Relation.Len() != want[g%len(queries)] {
				errs <- fmt.Errorf("%s: %d answers, want %d", q, res.Relation.Len(), want[g%len(queries)])
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSystemOracleProperty is the end-to-end correctness property: for
// every make/model in the catalog, the UR answer to
// SELECT Make, Model, Year, Price equals the distinct set computed
// directly from the ground-truth datasets of the sites the logical views
// cover (newsday + nyTimes via classifieds; carPoint, autoWeb, wwWheels,
// yahooCars via dealers).
func TestSystemOracleProperty(t *testing.T) {
	wb, w := newTestWebbase(t)
	coveredHosts := []string{
		sites.NewsdayHost, sites.NYTimesHost,
		sites.CarPointHost, sites.AutoWebHost, sites.WWWheelsHost, sites.YahooCarsHost,
	}
	for mk, models := range sites.Catalog {
		for _, md := range models {
			oracle := map[string]bool{}
			for _, host := range coveredHosts {
				for _, ad := range w.Datasets[host].ByMakeModel(mk, md) {
					oracle[fmt.Sprintf("%d|%d", ad.Year, ad.Price)] = true
				}
			}
			res, _, err := wb.QueryString(fmt.Sprintf(
				"SELECT Make, Model, Year, Price WHERE Make = '%s' AND Model = '%s'", mk, md))
			if len(oracle) == 0 {
				// No ads anywhere: the UR answer must be empty (query still
				// succeeds — empty data pages are data pages).
				if err == nil && res.Relation.Len() != 0 {
					t.Errorf("%s %s: got %d answers, oracle empty", mk, md, res.Relation.Len())
				}
				continue
			}
			if err != nil {
				t.Errorf("%s %s: %v", mk, md, err)
				continue
			}
			if res.Relation.Len() != len(oracle) {
				t.Errorf("%s %s: %d answers, oracle %d", mk, md, res.Relation.Len(), len(oracle))
				continue
			}
			for _, tp := range res.Relation.Tuples() {
				yr, _ := res.Relation.Get(tp, "Year")
				p, _ := res.Relation.Get(tp, "Price")
				if !oracle[fmt.Sprintf("%d|%d", yr.IntVal(), p.IntVal())] {
					t.Errorf("%s %s: answer (%v, %v) not in oracle", mk, md, yr, p)
				}
			}
		}
	}
}

func TestExplain(t *testing.T) {
	wb, _ := newTestWebbase(t)
	q, err := ur.ParseQuery(wb.UR, "SELECT Make, Price, BBPrice WHERE Make = 'jaguar' AND Condition = 'good' AND Price < BBPrice")
	if err != nil {
		t.Fatal(err)
	}
	before := wb.Stats().Pages()
	out, err := wb.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"query: SELECT Make, Price, BBPrice",
		"minimal cover:",
		"classifieds", "dealers", "bluePrice",
		"needs {Make}",
		"⟨", // handle quadruples
		"kellys",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	if wb.Stats().Pages() != before {
		t.Error("Explain must not fetch pages")
	}
	if _, err := wb.Explain(ur.Query{Output: []string{"Nope"}}); err == nil {
		t.Error("bad query should fail to explain")
	}
}

func TestQueryStatsString(t *testing.T) {
	qs := &QueryStats{Pages: 3, Bytes: 100, Elapsed: time.Millisecond}
	if !strings.Contains(qs.String(), "pages=3") {
		t.Error("stats rendering")
	}
}
