package algebra

import (
	"errors"
	"fmt"
	"sync"

	"webbase/internal/relation"
)

// MemCatalog is an in-memory Catalog for tests and benchmarks: each
// relation holds materialized tuples plus binding sets that emulate VPS
// access restrictions. Populate refuses to run unless some binding set is
// covered by the inputs, exactly like a VPS relation behind forms.
//
// Once all relations are Added, a MemCatalog is safe for concurrent use —
// parallel evaluation hits Populate from many goroutines.
type MemCatalog struct {
	mu   sync.Mutex // guards populateCount; the rels map is read-only after Add
	rels map[string]*memRel
}

type memRel struct {
	schema   relation.Schema
	bindings []relation.AttrSet
	data     *relation.Relation
	// populateCount tallies Populate calls (benchmarks observe access
	// patterns through it).
	populateCount int
}

// NewMemCatalog returns an empty catalog.
func NewMemCatalog() *MemCatalog {
	return &MemCatalog{rels: make(map[string]*memRel)}
}

// ErrBindingUnsatisfied reports a Populate call missing mandatory inputs.
var ErrBindingUnsatisfied = errors.New("algebra: no binding set satisfied by inputs")

// Add registers a relation with its data and binding sets. Empty bindings
// means unrestricted access (an ordinary materialized relation).
func (c *MemCatalog) Add(rel *relation.Relation, bindings ...relation.AttrSet) {
	c.rels[rel.Name()] = &memRel{
		schema:   rel.Schema().Clone(),
		bindings: bindings,
		data:     rel,
	}
}

// Schema implements Catalog.
func (c *MemCatalog) Schema(name string) (relation.Schema, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("algebra: unknown relation %q", name)
	}
	return r.schema, nil
}

// Bindings implements Catalog.
func (c *MemCatalog) Bindings(name string) ([]relation.AttrSet, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("algebra: unknown relation %q", name)
	}
	return r.bindings, nil
}

// Populate implements Catalog: it checks the binding restriction, then
// filters the materialized data by the inputs (a site returns only
// matching rows).
func (c *MemCatalog) Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("algebra: unknown relation %q", name)
	}
	c.mu.Lock()
	r.populateCount++
	c.mu.Unlock()
	if len(r.bindings) > 0 {
		provided := relation.NewAttrSet()
		for a, v := range inputs {
			if !v.IsNull() {
				provided.Add(a)
			}
		}
		if !Satisfiable(r.bindings, provided) {
			return nil, fmt.Errorf("%w: %s needs %s, got %s",
				ErrBindingUnsatisfied, name, bindingAlternatives(r.bindings), provided)
		}
	}
	return r.data.Select(func(t relation.Tuple) bool {
		for a, v := range inputs {
			i := r.schema.IndexOf(a)
			if i < 0 || v.IsNull() {
				continue
			}
			if !t[i].Equal(v) {
				return false
			}
		}
		return true
	}), nil
}

// PopulateCount returns how many times the named relation was populated.
func (c *MemCatalog) PopulateCount(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.rels[name]; ok {
		return r.populateCount
	}
	return 0
}
